#!/usr/bin/env python3
"""CI perf guard for the incremental max-min engine.

Compares the deterministic `visits_per_event` counter from
`micro_engine --benchmark_filter=FlowModelChurn --benchmark_format=json`
against the checked-in baseline.  The counter measures solver flow-visits
per simulated change-point event with a fixed seed, so it is stable across
machines and build types — a >20% increase means the partial re-solve path
got structurally worse (e.g. components over-merging or dirty-marking too
eagerly), not that the runner was noisy.

Usage: perf_guard.py <baseline.json> <current.json> [--tolerance 0.20]
"""
import argparse
import json
import sys


def counters(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if "visits_per_event" in b:
            out[b["name"]] = float(b["visits_per_event"])
    if not out:
        sys.exit(f"perf_guard: no visits_per_event counters in {path}")
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional increase (default 0.20)")
    args = ap.parse_args()

    base = counters(args.baseline)
    curr = counters(args.current)
    failed = False
    for name, base_v in sorted(base.items()):
        if name not in curr:
            print(f"MISSING   {name}: benchmark disappeared from current run")
            failed = True
            continue
        curr_v = curr[name]
        ratio = curr_v / base_v if base_v else float("inf")
        status = "OK" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"{status:10s}{name}: visits/event {base_v:.3f} -> {curr_v:.3f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        if status != "OK":
            failed = True
    for name in sorted(set(curr) - set(base)):
        print(f"NEW       {name}: visits/event {curr[name]:.3f} "
              f"(add it to the baseline)")
    if failed:
        sys.exit("perf_guard: flow-visit regression beyond tolerance "
                 "(re-baseline only with a justification in the PR)")
    print("perf_guard: all flow-visit counters within tolerance")


if __name__ == "__main__":
    main()
