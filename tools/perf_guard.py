#!/usr/bin/env python3
"""CI perf guard over deterministic benchmark counters.

Compares a named per-benchmark counter from a google-benchmark JSON run
against a checked-in baseline.  The guarded counters are derived from
fixed-seed simulations (solver flow-visits per event, transport
retransmits per message, ...), so they are stable across machines and
build types — an increase beyond tolerance means the guarded code path
got structurally worse, not that the runner was noisy.

Usage: perf_guard.py <baseline.json> <current.json>
                     [--key visits_per_event] [--tolerance 0.20]
"""
import argparse
import json
import sys


def counters(path, key):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if key in b:
            out[b["name"]] = float(b[key])
    if not out:
        sys.exit(f"perf_guard: no {key} counters in {path}")
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--key", default="visits_per_event",
                    help="counter field to compare (default visits_per_event)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional increase (default 0.20)")
    args = ap.parse_args()

    base = counters(args.baseline, args.key)
    curr = counters(args.current, args.key)
    failed = False
    for name, base_v in sorted(base.items()):
        if name not in curr:
            print(f"MISSING   {name}: benchmark disappeared from current run")
            failed = True
            continue
        curr_v = curr[name]
        # A zero baseline (e.g. retransmits at loss 0) must stay exactly zero.
        if base_v == 0.0:
            ratio = 1.0 if curr_v == 0.0 else float("inf")
        else:
            ratio = curr_v / base_v
        status = "OK" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"{status:10s}{name}: {args.key} {base_v:.3f} -> {curr_v:.3f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        if status != "OK":
            failed = True
    for name in sorted(set(curr) - set(base)):
        print(f"NEW       {name}: {args.key} {curr[name]:.3f} "
              f"(add it to the baseline)")
    if failed:
        sys.exit(f"perf_guard: {args.key} regression beyond tolerance "
                 "(re-baseline only with a justification in the PR)")
    print(f"perf_guard: all {args.key} counters within tolerance")


if __name__ == "__main__":
    main()
