#!/usr/bin/env python3
"""CI perf guard over deterministic benchmark counters.

Compares a named per-benchmark counter from a google-benchmark JSON run
against a checked-in baseline.  The guarded counters are derived from
fixed-seed simulations (solver flow-visits per event, transport
retransmits per message, ...), so they are stable across machines and
build types — an increase beyond tolerance means the guarded code path
got structurally worse, not that the runner was noisy.

Usage: perf_guard.py <baseline.json> <current.json>
                     [--key visits_per_event] [--tolerance 0.20]
       perf_guard.py <file.json> --list-keys
"""
import argparse
import json
import sys


def load(path):
    """Parse a google-benchmark JSON file, exiting with a readable message
    (not a traceback) when the file is absent or not valid JSON."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"perf_guard: baseline/run file not found: {path}\n"
                 "  (did the benchmark step run, and is the baseline checked in "
                 "under bench/baselines/?)")
    except json.JSONDecodeError as e:
        sys.exit(f"perf_guard: {path} is not valid JSON ({e})")


def counter_keys(doc):
    """Counter-ish fields present in any benchmark entry (numeric fields
    that are not google-benchmark bookkeeping)."""
    bookkeeping = {
        "real_time", "cpu_time", "iterations", "repetitions",
        "repetition_index", "threads", "family_index",
        "per_family_instance_index",
    }
    keys = set()
    for b in doc.get("benchmarks", []):
        for k, v in b.items():
            if k in bookkeeping or not isinstance(v, (int, float)):
                continue
            keys.add(k)
    return sorted(keys)


def counters(path, key):
    doc = load(path)
    out = {}
    for b in doc.get("benchmarks", []):
        if key in b:
            out[b["name"]] = float(b[key])
    if not out:
        available = counter_keys(doc)
        hint = ("available keys: " + ", ".join(available)) if available \
            else "the file has no benchmark counters at all"
        sys.exit(f"perf_guard: no '{key}' counters in {path}; {hint}\n"
                 "  (run with --list-keys to inspect a file)")
    return out


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="?",
                    help="current-run JSON (omit with --list-keys)")
    ap.add_argument("--key", default="visits_per_event",
                    help="counter field to compare (default visits_per_event)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional increase (default 0.20)")
    ap.add_argument("--list-keys", action="store_true",
                    help="print the counter keys found in <baseline> and exit")
    args = ap.parse_args(argv)

    if args.list_keys:
        for k in counter_keys(load(args.baseline)):
            print(k)
        return
    if args.current is None:
        ap.error("current is required unless --list-keys is given")

    base = counters(args.baseline, args.key)
    curr = counters(args.current, args.key)
    failed = False
    for name, base_v in sorted(base.items()):
        if name not in curr:
            print(f"MISSING   {name}: benchmark disappeared from current run")
            failed = True
            continue
        curr_v = curr[name]
        # A zero baseline (e.g. retransmits at loss 0) must stay exactly zero.
        if base_v == 0.0:
            ratio = 1.0 if curr_v == 0.0 else float("inf")
        else:
            ratio = curr_v / base_v
        status = "OK" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"{status:10s}{name}: {args.key} {base_v:.3f} -> {curr_v:.3f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        if status != "OK":
            failed = True
    for name in sorted(set(curr) - set(base)):
        print(f"NEW       {name}: {args.key} {curr[name]:.3f} "
              f"(add it to the baseline)")
    if failed:
        sys.exit(f"perf_guard: {args.key} regression beyond tolerance "
                 "(re-baseline only with a justification in the PR)")
    print(f"perf_guard: all {args.key} counters within tolerance")


if __name__ == "__main__":
    main()
