"""Tests for perf_guard.py's CLI behaviour: friendly errors instead of
tracebacks, --list-keys, and the zero-baseline rule.  Runs under pytest or
plain `python3 tools/test_perf_guard.py` (stdlib unittest only)."""
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import perf_guard  # noqa: E402


def bench_doc(**counters_by_name):
    return {"benchmarks": [
        {"name": name, "real_time": 1.0, "cpu_time": 1.0, "iterations": 3, **fields}
        for name, fields in counters_by_name.items()
    ]}


class PerfGuardTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_main(self, argv):
        """Run perf_guard.main, returning (exit_message_or_None, stdout)."""
        import contextlib
        import io
        out = io.StringIO()
        try:
            with contextlib.redirect_stdout(out):
                perf_guard.main(argv)
        except SystemExit as e:
            return str(e.code) if e.code not in (None, 0) else None, out.getvalue()
        return None, out.getvalue()

    def test_missing_file_is_a_clear_message_not_a_traceback(self):
        base = self.write("base.json", bench_doc(b={"visits_per_event": 1.0}))
        err, _ = self.run_main([base, os.path.join(self.tmp.name, "absent.json")])
        self.assertIsNotNone(err)
        self.assertIn("not found", err)
        self.assertIn("absent.json", err)

    def test_missing_key_lists_available_keys(self):
        base = self.write("base.json", bench_doc(b={"retransmits_per_msg": 2.0}))
        curr = self.write("curr.json", bench_doc(b={"retransmits_per_msg": 2.0}))
        err, _ = self.run_main([base, curr, "--key", "visits_per_event"])
        self.assertIsNotNone(err)
        self.assertIn("no 'visits_per_event' counters", err)
        self.assertIn("retransmits_per_msg", err)

    def test_invalid_json_is_a_clear_message(self):
        path = os.path.join(self.tmp.name, "garbage.json")
        with open(path, "w") as f:
            f.write("{not json")
        err, _ = self.run_main([path, path])
        self.assertIsNotNone(err)
        self.assertIn("not valid JSON", err)

    def test_list_keys(self):
        base = self.write("base.json", bench_doc(
            b={"visits_per_event": 1.0, "allocs_per_event": 0.0}))
        err, out = self.run_main([base, "--list-keys"])
        self.assertIsNone(err)
        self.assertEqual(out.split(), ["allocs_per_event", "visits_per_event"])

    def test_within_tolerance_passes(self):
        base = self.write("base.json", bench_doc(b={"visits_per_event": 10.0}))
        curr = self.write("curr.json", bench_doc(b={"visits_per_event": 11.0}))
        err, out = self.run_main([base, curr])
        self.assertIsNone(err)
        self.assertIn("within tolerance", out)

    def test_regression_fails(self):
        base = self.write("base.json", bench_doc(b={"visits_per_event": 10.0}))
        curr = self.write("curr.json", bench_doc(b={"visits_per_event": 20.0}))
        err, out = self.run_main([base, curr])
        self.assertIsNotNone(err)
        self.assertIn("REGRESSED", out)

    def test_zero_baseline_must_stay_zero(self):
        base = self.write("base.json", bench_doc(b={"allocs_per_event": 0.0}))
        curr = self.write("curr.json", bench_doc(b={"allocs_per_event": 0.001}))
        err, out = self.run_main([base, curr, "--key", "allocs_per_event"])
        self.assertIsNotNone(err)
        self.assertIn("REGRESSED", out)


if __name__ == "__main__":
    unittest.main()
