// Properties and examples for the weighted bottleneck max-min solver.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "sim/maxmin.hpp"
#include "sim/rng.hpp"

namespace cci::sim {
namespace {

constexpr double kTol = 1e-9;

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  MaxMinProblem p;
  p.capacity = {10.0};
  p.flows.push_back({1.0, 0.0, {{0, 1.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 10.0, kTol);
  EXPECT_NEAR(sol.load[0], 10.0, kTol);
}

TEST(MaxMin, EqualFlowsShareEqually) {
  MaxMinProblem p;
  p.capacity = {12.0};
  for (int i = 0; i < 4; ++i) p.flows.push_back({1.0, 0.0, {{0, 1.0}}});
  auto sol = solve_max_min(p);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(sol.rate[static_cast<std::size_t>(i)], 3.0, kTol);
}

TEST(MaxMin, WeightsScaleShares) {
  MaxMinProblem p;
  p.capacity = {9.0};
  p.flows.push_back({2.0, 0.0, {{0, 1.0}}});
  p.flows.push_back({1.0, 0.0, {{0, 1.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 6.0, kTol);
  EXPECT_NEAR(sol.rate[1], 3.0, kTol);
}

TEST(MaxMin, RateCapFreesCapacityForOthers) {
  MaxMinProblem p;
  p.capacity = {10.0};
  p.flows.push_back({1.0, 2.0, {{0, 1.0}}});  // capped at 2
  p.flows.push_back({1.0, 0.0, {{0, 1.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 2.0, kTol);
  EXPECT_NEAR(sol.rate[1], 8.0, kTol);
}

TEST(MaxMin, DemandScalesUsage) {
  // Flow consuming 2 units per rate unit gets half the rate on the same pipe.
  MaxMinProblem p;
  p.capacity = {8.0};
  p.flows.push_back({1.0, 0.0, {{0, 2.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 4.0, kTol);
  EXPECT_NEAR(sol.load[0], 8.0, kTol);
}

TEST(MaxMin, TwoHopFlowBottlenecksOnTightestResource) {
  MaxMinProblem p;
  p.capacity = {10.0, 4.0};
  p.flows.push_back({1.0, 0.0, {{0, 1.0}, {1, 1.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 4.0, kTol);
  EXPECT_NEAR(sol.load[0], 4.0, kTol);
  EXPECT_NEAR(sol.load[1], 4.0, kTol);
}

TEST(MaxMin, ClassicThreeFlowLine) {
  // Textbook line network: flow A crosses both links, B and C one each.
  // Capacities 10 each: A=5, B=5, C=5.
  MaxMinProblem p;
  p.capacity = {10.0, 10.0};
  p.flows.push_back({1.0, 0.0, {{0, 1.0}, {1, 1.0}}});  // A
  p.flows.push_back({1.0, 0.0, {{0, 1.0}}});            // B
  p.flows.push_back({1.0, 0.0, {{1, 1.0}}});            // C
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 5.0, kTol);
  EXPECT_NEAR(sol.rate[1], 5.0, kTol);
  EXPECT_NEAR(sol.rate[2], 5.0, kTol);
}

TEST(MaxMin, UnevenLineGivesLeftoverToSingleHopFlow) {
  // Link0 cap 10 shared by A and B; link1 cap 2 crossed only by A.
  // A bottlenecks on link1 at 2; B then gets 8.
  MaxMinProblem p;
  p.capacity = {10.0, 2.0};
  p.flows.push_back({1.0, 0.0, {{0, 1.0}, {1, 1.0}}});
  p.flows.push_back({1.0, 0.0, {{0, 1.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 2.0, kTol);
  EXPECT_NEAR(sol.rate[1], 8.0, kTol);
}

TEST(MaxMin, FlowWithoutDemandsIsUnconstrained) {
  MaxMinProblem p;
  p.capacity = {1.0};
  p.flows.push_back({1.0, 0.0, {}});
  auto sol = solve_max_min(p);
  EXPECT_TRUE(std::isinf(sol.rate[0]));
}

TEST(MaxMin, FlowWithoutDemandsButCappedGetsCap) {
  MaxMinProblem p;
  p.flows.push_back({1.0, 3.5, {}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 3.5, kTol);
}

TEST(MaxMin, ZeroCapacityResourceStallsItsFlows) {
  MaxMinProblem p;
  p.capacity = {0.0, 10.0};
  p.flows.push_back({1.0, 0.0, {{0, 1.0}}});
  p.flows.push_back({1.0, 0.0, {{1, 1.0}}});
  auto sol = solve_max_min(p);
  EXPECT_NEAR(sol.rate[0], 0.0, kTol);
  EXPECT_NEAR(sol.rate[1], 10.0, kTol);
}

// ---- randomized property sweep -------------------------------------------

struct RandomCase {
  std::uint64_t seed;
};

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

MaxMinProblem random_problem(Rng& rng) {
  MaxMinProblem p;
  std::size_t n_res = 1 + rng.below(6);
  std::size_t n_flows = 1 + rng.below(12);
  for (std::size_t r = 0; r < n_res; ++r) p.capacity.push_back(rng.uniform(0.5, 100.0));
  for (std::size_t f = 0; f < n_flows; ++f) {
    MaxMinFlow flow;
    flow.weight = rng.uniform(0.1, 4.0);
    flow.rate_cap = rng.uniform() < 0.3 ? rng.uniform(0.1, 50.0) : 0.0;
    std::size_t hops = 1 + rng.below(n_res);
    for (std::size_t h = 0; h < hops; ++h) {
      std::size_t r = rng.below(n_res);
      flow.entries.push_back({r, rng.uniform(0.1, 3.0)});
    }
    p.flows.push_back(std::move(flow));
  }
  return p;
}

TEST_P(MaxMinProperty, FeasibleParetoAndBottlenecked) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    MaxMinProblem p = random_problem(rng);
    auto sol = solve_max_min(p);

    // Feasibility: per-resource usage within capacity (+slack).
    std::vector<double> usage(p.capacity.size(), 0.0);
    for (std::size_t f = 0; f < p.flows.size(); ++f) {
      EXPECT_GE(sol.rate[f], -kTol);
      if (p.flows[f].rate_cap > 0.0) {
        EXPECT_LE(sol.rate[f], p.flows[f].rate_cap * (1.0 + 1e-9));
      }
      for (const auto& e : p.flows[f].entries) usage[e.resource] += sol.rate[f] * e.demand;
    }
    for (std::size_t r = 0; r < p.capacity.size(); ++r) {
      EXPECT_LE(usage[r], p.capacity[r] * (1.0 + 1e-6) + 1e-9)
          << "resource " << r << " overcommitted";
      EXPECT_NEAR(usage[r], sol.load[r], 1e-6 * std::max(1.0, usage[r]));
    }

    // Pareto efficiency / bottleneck property: every flow is blocked either
    // by its own cap or by at least one saturated resource it crosses.
    for (std::size_t f = 0; f < p.flows.size(); ++f) {
      if (p.flows[f].entries.empty()) continue;
      bool capped = p.flows[f].rate_cap > 0.0 &&
                    sol.rate[f] >= p.flows[f].rate_cap * (1.0 - 1e-6);
      if (capped) continue;
      bool bottlenecked = false;
      for (const auto& e : p.flows[f].entries) {
        if (e.demand <= 0.0) continue;
        if (usage[e.resource] >= p.capacity[e.resource] * (1.0 - 1e-6)) {
          bottlenecked = true;
          break;
        }
      }
      EXPECT_TRUE(bottlenecked) << "flow " << f << " could still grow";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 42ull, 1337ull, 0xDEADBEEFull));

}  // namespace
}  // namespace cci::sim
