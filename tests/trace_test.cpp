// Stats, tables, frequency traces.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/freq_trace.hpp"
#include "trace/stats.hpp"
#include "trace/table.hpp"

namespace cci::trace {
namespace {

TEST(Stats, MedianAndDeciles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  Stats s = Stats::of(v);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.decile1, 10.9, 1e-9);
  EXPECT_NEAR(s.decile9, 90.1, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(Stats, EmptyAndSingleton) {
  Stats empty = Stats::of({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.median, 0.0);
  Stats one = Stats::of({7.0});
  EXPECT_EQ(one.median, 7.0);
  EXPECT_EQ(one.decile1, 7.0);
  EXPECT_EQ(one.decile9, 7.0);
}

TEST(Table, AlignedOutputContainsData) {
  Table t({"cores", "latency"});
  t.add_row({1.0, 1.5e-6});
  t.add_row({36.0, 3.0e-6});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("cores"), std::string::npos);
  EXPECT_NE(os.str().find("36"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("cores,latency"), std::string::npos);
}

TEST(Formatters, HumanReadableUnits) {
  EXPECT_EQ(format_time(1.5e-6), "1.50 us");
  EXPECT_EQ(format_time(2.5e-3), "2.50 ms");
  EXPECT_EQ(format_bw(10.5e9), "10.50 GB/s");
  EXPECT_EQ(format_bytes(64.0 * (1 << 20)), "64 MB");
}

TEST(FreqTrace, RecordsGovernorTransitions) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  hw::Machine machine(model, hw::MachineConfig::henri());
  FreqTrace trace(machine);
  engine.call_at(1.0, [&] { machine.governor().core_busy(0, hw::VectorClass::kScalar); });
  engine.call_at(2.0, [&] { machine.governor().core_idle(0); });
  engine.run();
  EXPECT_DOUBLE_EQ(trace.freq_at(0, 0.5), 1.0e9);   // idle min
  EXPECT_DOUBLE_EQ(trace.freq_at(0, 1.5), 3.7e9);   // single-core turbo
  EXPECT_DOUBLE_EQ(trace.freq_at(0, 2.5), 1.0e9);   // idle again
  auto sampled = trace.sample(0.0, 3.0, 0.5, 1);
  ASSERT_EQ(sampled.times.size(), 7u);
  EXPECT_DOUBLE_EQ(sampled.core_freqs[0][2], 3.7e9);  // t=1.0
}

}  // namespace
}  // namespace cci::trace
