// LLC working-set model: cache-resident kernels stop generating DRAM
// traffic, and therefore stop interfering with the network.
#include <gtest/gtest.h>

#include "core/interference_lab.hpp"
#include "hw/workload.hpp"
#include "kernels/cg.hpp"

namespace cci::hw {
namespace {

TEST(CacheResidency, DramFractionInterpolates) {
  KernelTraits t{"k", 2.0, 8.0, VectorClass::kSse};
  t.working_set_bytes = 0.0;
  EXPECT_DOUBLE_EQ(t.dram_fraction(25e6), 1.0);  // streaming default
  t.working_set_bytes = 10e6;
  EXPECT_DOUBLE_EQ(t.dram_fraction(25e6), 0.0);  // fully resident
  t.working_set_bytes = 50e6;
  EXPECT_DOUBLE_EQ(t.dram_fraction(25e6), 0.5);
  t.working_set_bytes = 250e6;
  EXPECT_DOUBLE_EQ(t.dram_fraction(25e6), 0.9);
}

TEST(CacheResidency, ResidentKernelHasNoMemoryDemands) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  Machine machine(model, MachineConfig::henri());
  KernelTraits t{"small", 2.0, 8.0, VectorClass::kSse};
  t.working_set_bytes = 1e6;  // << 25 MB LLC
  auto spec = make_compute_spec(machine, 0, 0, t, 1e6);
  // Only the core demand remains.
  ASSERT_EQ(spec.demands.size(), 1u);
  EXPECT_EQ(spec.demands[0].resource, machine.core(0));
}

TEST(CacheResidency, CgTraitsScaleWithProblemSize) {
  auto small = kernels::cg_gemv_traits_for(1024);   // 8 MB matrix: resident
  auto large = kernels::cg_gemv_traits_for(32768);  // 8.6 GB: streaming
  EXPECT_LT(small.dram_fraction(25e6), 0.01);
  EXPECT_GT(large.dram_fraction(25e6), 0.99);
}

TEST(CacheResidency, ResidentWorkingSetStopsHurtingTheNetwork) {
  auto bw_ratio_for = [](double working_set) {
    core::Scenario s;
    s.kernel = KernelTraits{"tuned", 2.0, 24.0, VectorClass::kSse};
    s.kernel.working_set_bytes = working_set;
    s.computing_cores = 20;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    auto r = core::InterferenceLab(s).run();
    return r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
  };
  double streaming = bw_ratio_for(0.0);      // default: full DRAM pressure
  double resident = bw_ratio_for(4e6);       // fits the LLC
  EXPECT_LT(streaming, 0.6);
  EXPECT_GT(resident, 0.95);
}

}  // namespace
}  // namespace cci::hw
