// Property tests for the mini-MPI: random traffic always completes, FIFO
// per-channel ordering holds, and whole simulations are deterministic.
#include <gtest/gtest.h>

#include <memory>

#include "mpi/pingpong.hpp"
#include "mpi/world.hpp"
#include "sim/rng.hpp"

namespace cci::mpi {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

class RandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraffic, AllMessagesDelivered) {
  // N ranks, random (src, dst, size, tag) messages with matching receives
  // posted in random order and at random times: everything must complete.
  sim::Rng rng(GetParam());
  const int nodes = 2 + static_cast<int>(rng.below(3));
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr(), nodes);
  std::vector<RankConfig> rc;
  for (int n = 0; n < nodes; ++n) rc.push_back({n, -1});
  World world(cluster, rc);

  struct Msg {
    int src, dst, tag;
    std::size_t bytes;
  };
  std::vector<Msg> msgs;
  for (int i = 0; i < 30; ++i) {
    Msg m;
    m.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    do {
      m.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (m.dst == m.src);
    m.tag = 100 + i;
    // Mix of eager (tiny) and rendezvous (large) messages.
    m.bytes = rng.uniform() < 0.5 ? 16 + rng.below(4096) : (1u << 16) + rng.below(1u << 21);
    msgs.push_back(m);
  }

  std::vector<RequestPtr> reqs;
  for (const Msg& m : msgs) {
    double t_send = rng.uniform(0.0, 2e-3);
    double t_recv = rng.uniform(0.0, 2e-3);
    cluster.engine().call_at(t_send, [&world, m, &reqs] {
      reqs.push_back(world.isend(m.src, m.dst, m.tag, MsgView{m.bytes, 0, 0}));
    });
    cluster.engine().call_at(t_recv, [&world, m, &reqs] {
      reqs.push_back(world.irecv(m.dst, m.src, m.tag, MsgView{m.bytes, 0, 0}));
    });
  }
  cluster.engine().run();
  for (const auto& r : reqs) EXPECT_TRUE(r->test());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic, ::testing::Values(3ull, 17ull, 23ull, 71ull));

TEST(WorldProperty, SameSeedSameLatencies) {
  auto run_once = [] {
    Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2, /*seed=*/1234);
    World world(cluster, {{0, -1}, {1, -1}});
    PingPongOptions opt;
    opt.bytes = 4096;
    opt.iterations = 25;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().run();
    return pp.latencies();
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(WorldProperty, DifferentSeedsDifferentNoise) {
  auto run_with_seed = [](std::uint64_t seed) {
    Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2, seed);
    World world(cluster, {{0, -1}, {1, -1}});
    PingPongOptions opt;
    opt.bytes = 4;
    opt.iterations = 10;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().run();
    return pp.latencies();
  };
  auto a = run_with_seed(1);
  auto b = run_with_seed(2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(WorldProperty, SameChannelMessagesMatchInOrder) {
  // Two same-tag messages on one channel: receives complete in post order
  // with sizes matching the send order (MPI non-overtaking).
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  World world(cluster, {{0, -1}, {1, -1}});
  std::vector<int> completion_order;
  cluster.engine().spawn([](World& w, std::vector<int>& order) -> sim::Coro {
    auto r1 = w.irecv(1, 0, 5, MsgView{64, 0, 0});
    auto r2 = w.irecv(1, 0, 5, MsgView{64, 0, 0});
    co_await *r1;
    order.push_back(1);
    co_await *r2;
    order.push_back(2);
  }(world, completion_order));
  cluster.engine().spawn([](World& w) -> sim::Coro {
    co_await *w.isend(0, 1, 5, MsgView{64, 0, 0});
    co_await *w.isend(0, 1, 5, MsgView{64, 0, 0});
  }(world));
  cluster.engine().run();
  EXPECT_EQ(completion_order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace cci::mpi
