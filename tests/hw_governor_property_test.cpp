// Governor property tests: invariants under random busy/idle sequences.
#include <gtest/gtest.h>

#include "hw/frequency_governor.hpp"
#include "hw/machine.hpp"
#include "sim/rng.hpp"

namespace cci::hw {
namespace {

class GovernorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GovernorProperty, FrequenciesStayInsideTheEnvelope) {
  sim::Rng rng(GetParam());
  for (const auto& cfg : MachineConfig::all_presets()) {
    sim::Engine engine;
    sim::FlowModel model(engine);
    Machine machine(model, cfg);
    auto& gov = machine.governor();
    const double fmax = cfg.turbo_freq(VectorClass::kScalar, 1);

    std::vector<bool> busy(static_cast<std::size_t>(cfg.total_cores()), false);
    for (int step = 0; step < 300; ++step) {
      int core = static_cast<int>(rng.below(static_cast<std::uint64_t>(cfg.total_cores())));
      auto idx = static_cast<std::size_t>(core);
      if (busy[idx]) {
        gov.core_idle(core);
        busy[idx] = false;
      } else {
        VectorClass vc = rng.uniform() < 0.3 ? VectorClass::kAvx512 : VectorClass::kScalar;
        gov.core_busy(core, vc);
        busy[idx] = true;
      }
      for (int c = 0; c < cfg.total_cores(); ++c) {
        double f = gov.core_freq(c);
        EXPECT_GE(f, cfg.core_freq_min_hz) << cfg.name;
        EXPECT_LE(f, fmax) << cfg.name;
        EXPECT_DOUBLE_EQ(machine.core(c)->capacity(), f) << cfg.name;
      }
      for (int s = 0; s < cfg.sockets; ++s) {
        EXPECT_GE(gov.uncore_freq(s), cfg.uncore_freq_min_hz) << cfg.name;
        EXPECT_LE(gov.uncore_freq(s), cfg.uncore_freq_max_hz) << cfg.name;
      }
    }
  }
}

TEST_P(GovernorProperty, MoreActiveCoresNeverRaiseTurbo) {
  // Monotonicity: adding busy cores to a socket can only lower (or keep)
  // the busy cores' frequency.
  sim::Rng rng(GetParam());
  auto cfg = MachineConfig::henri();
  sim::Engine engine;
  sim::FlowModel model(engine);
  Machine machine(model, cfg);
  auto& gov = machine.governor();
  gov.core_busy(0, VectorClass::kAvx512);
  double prev = gov.core_freq(0);
  for (int c = 1; c < 18; ++c) {
    gov.core_busy(c, rng.uniform() < 0.5 ? VectorClass::kAvx512 : VectorClass::kScalar);
    double now = gov.core_freq(0);
    EXPECT_LE(now, prev + 1.0);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GovernorProperty, ::testing::Values(5ull, 19ull, 101ull));

TEST(GovernorProperty, ActiveCountMatchesBookkeeping) {
  auto cfg = MachineConfig::henri();
  sim::Engine engine;
  sim::FlowModel model(engine);
  Machine machine(model, cfg);
  auto& gov = machine.governor();
  EXPECT_EQ(gov.active_cores(0), 0);
  gov.core_busy(0, VectorClass::kScalar);
  gov.core_busy(5, VectorClass::kScalar);
  gov.core_comm(17);
  EXPECT_EQ(gov.active_cores(0), 3);
  EXPECT_EQ(gov.active_cores(1), 0);
  gov.core_idle(5);
  EXPECT_EQ(gov.active_cores(0), 2);
}

}  // namespace
}  // namespace cci::hw
