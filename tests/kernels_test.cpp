// Real kernels: numerical correctness and trait accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/cg.hpp"
#include "kernels/dense.hpp"
#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"
#include "kernels/vecflops.hpp"

namespace cci::kernels {
namespace {

TEST(Stream, CopyMovesData) {
  StreamArrays s(4096);
  std::size_t bytes = s.copy();
  EXPECT_EQ(bytes, 4096u * 16u);
  EXPECT_TRUE(s.verify_copy());
}

TEST(Stream, TriadComputesFma) {
  StreamArrays s(4096, 2.5);
  std::size_t bytes = s.triad();
  EXPECT_EQ(bytes, 4096u * 24u);
  EXPECT_TRUE(s.verify_triad());
}

TEST(Stream, TraitsMatchStreamAccounting) {
  EXPECT_DOUBLE_EQ(copy_traits().bytes_per_iter, 16.0);
  EXPECT_DOUBLE_EQ(copy_traits().flops_per_iter, 0.0);
  EXPECT_DOUBLE_EQ(triad_traits().bytes_per_iter, 24.0);
  EXPECT_DOUBLE_EQ(triad_traits().flops_per_iter, 2.0);
}

class TunableTriadCursor : public ::testing::TestWithParam<int> {};

TEST_P(TunableTriadCursor, VerifiesAndAccountsIntensity) {
  const int cursor = GetParam();
  TunableTriad t(2048, cursor);
  std::size_t flops = t.run();
  EXPECT_EQ(flops, 2048u * 2u * static_cast<unsigned>(cursor));
  EXPECT_TRUE(t.verify());
  EXPECT_NEAR(t.arithmetic_intensity(), 2.0 * cursor / 24.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Cursors, TunableTriadCursor,
                         ::testing::Values(1, 2, 4, 8, 18, 72, 100, 500, 1200));

TEST(TunableTriad, CursorForIntensityRoundTrips) {
  // The paper's henri boundary: 6 flop/B needs cursor 72.
  EXPECT_EQ(TunableTriad::cursor_for_intensity(6.0), 72);
  for (double ai : {0.1, 0.5, 1.0, 6.0, 20.0, 70.0}) {
    int c = TunableTriad::cursor_for_intensity(ai);
    TunableTriad t(16, c);
    EXPECT_GE(t.arithmetic_intensity(), ai - 1e-9);
    EXPECT_LT(t.arithmetic_intensity(), ai + 1.0 / 12.0 + 1e-9);
  }
}

TEST(Primes, KnownCounts) {
  EXPECT_FALSE(is_prime_naive(0));
  EXPECT_FALSE(is_prime_naive(1));
  EXPECT_TRUE(is_prime_naive(2));
  EXPECT_TRUE(is_prime_naive(97));
  EXPECT_FALSE(is_prime_naive(91));  // 7 * 13
  EXPECT_EQ(count_primes(0, 100), 25u);     // pi(100)
  EXPECT_EQ(count_primes(0, 1000), 168u);   // pi(1000)
  EXPECT_EQ(count_primes(100, 200), 21u);
}

TEST(Primes, TrialDivisionCostIsPositiveAndGrows) {
  double small = prime_trial_divisions(2, 100);
  double large = prime_trial_divisions(10000, 10100);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  EXPECT_DOUBLE_EQ(prime_traits().bytes_per_iter, 0.0);
}

TEST(VecFlops, RunsStablyAndProducesFiniteChecksum) {
  VecFlops v;
  double sum = v.run(100000);
  EXPECT_TRUE(std::isfinite(sum));
  EXPECT_GT(sum, 0.0);
  EXPECT_DOUBLE_EQ(VecFlops::traits().flops_per_iter, 16.0);
  EXPECT_EQ(VecFlops::traits().vec, hw::VectorClass::kAvx512);
}

TEST(Dense, BlockedGemmMatchesNaive) {
  for (std::size_t n : {17u, 32u, 65u}) {
    Matrix a(n, n), b(n, n), c1(n, n), c2(n, n);
    a.randomize(1);
    b.randomize(2);
    gemm_naive(a, b, c1);
    gemm_blocked(a, b, c2, 16);
    EXPECT_LT(c1.frobenius_distance(c2), 1e-9) << "n=" << n;
  }
}

TEST(Dense, GemvMatchesManual) {
  Matrix a(3, 3);
  a.at(0, 0) = 1;
  a.at(1, 1) = 2;
  a.at(2, 2) = 3;
  std::vector<double> x{1.0, 1.0, 1.0}, y(3);
  gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(Cg, SolvesDenseSpdSystem) {
  const std::size_t n = 64;
  Matrix a(n, n);
  a.randomize(7);
  a.make_spd();
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(static_cast<double>(i));
  gemv(a, x_true, b);
  CgResult res = cg_solve(a, b, x, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  double err = 0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(x[i] - x_true[i]));
  EXPECT_LT(err, 1e-6);
}

TEST(Cg, SolvesSparseLaplacian) {
  auto a = CsrMatrix::laplacian2d(24);
  std::vector<double> b(a.n, 1.0), x(a.n, 0.0);
  CgResult res = cg_solve_csr(a, b, x, 1e-9, 2000);
  EXPECT_TRUE(res.converged);
  // Spot-check: residual really is small in the 2-norm.
  std::vector<double> ax(a.n);
  a.spmv(x, ax);
  double r2 = 0;
  for (std::size_t i = 0; i < a.n; ++i) r2 += (ax[i] - b[i]) * (ax[i] - b[i]);
  EXPECT_LT(std::sqrt(r2), 1e-6);
}

TEST(Cg, TraitsReflectArithmeticIntensity) {
  EXPECT_NEAR(cg_gemv_traits().arithmetic_intensity(), 0.25, 1e-12);
  EXPECT_NEAR(gemm_tile_traits(480).arithmetic_intensity(), 40.0, 1e-9);
  // GEMM is far more compute-dense than CG - the root cause of Fig. 10.
  EXPECT_GT(gemm_tile_traits(480).arithmetic_intensity() /
                cg_gemv_traits().arithmetic_intensity(),
            100.0);
}

TEST(Cg, LaplacianStructureIsSymmetric) {
  auto a = CsrMatrix::laplacian2d(8);
  // Dense mirror to verify symmetry.
  Matrix d(a.n, a.n);
  for (std::size_t i = 0; i < a.n; ++i)
    for (std::size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) d.at(i, a.col[k]) = a.val[k];
  for (std::size_t i = 0; i < a.n; ++i)
    for (std::size_t j = 0; j < a.n; ++j) EXPECT_DOUBLE_EQ(d.at(i, j), d.at(j, i));
}

}  // namespace
}  // namespace cci::kernels
