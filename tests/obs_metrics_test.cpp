// obs metrics: histogram bucketing, snapshot determinism, disabled no-ops.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cci::obs {
namespace {

// --- Histogram bucketing ---------------------------------------------------

TEST(Histogram, NonPositiveValuesLandInUnderflow) {
  EXPECT_EQ(Histogram::bucket_index(0.0), Histogram::kUnderflow);
  EXPECT_EQ(Histogram::bucket_index(-1.0), Histogram::kUnderflow);
  EXPECT_EQ(Histogram::bucket_index(-1e300), Histogram::kUnderflow);
}

TEST(Histogram, BucketIndexIsMonotonic) {
  std::vector<double> values;
  for (double v = 1e-9; v < 1e9; v *= 1.17) values.push_back(v);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(Histogram::bucket_index(values[i - 1]), Histogram::bucket_index(values[i]))
        << "at " << values[i];
  }
}

TEST(Histogram, BucketValueRoundTripsWithinResolution) {
  // The log-linear layout guarantees ~1/kSubBuckets relative resolution:
  // a bucket's representative value must be within one sub-bucket width of
  // anything that maps into it.
  for (double v : {1e-9, 3.7e-6, 1.0, 1.5, 2.0, 123.456, 7.2e8}) {
    int idx = Histogram::bucket_index(v);
    double rep = Histogram::bucket_value(idx);
    EXPECT_EQ(Histogram::bucket_index(rep), idx) << "rep not in own bucket for " << v;
    EXPECT_NEAR(rep / v, 1.0, 2.0 / Histogram::kSubBuckets) << "v=" << v;
  }
}

TEST(Histogram, PowersOfTwoFallInDistinctOctaves) {
  int prev = Histogram::bucket_index(1.0);
  for (double v = 2.0; v <= 1024.0; v *= 2.0) {
    int idx = Histogram::bucket_index(v);
    EXPECT_EQ(idx - prev, Histogram::kSubBuckets) << "octave step at " << v;
    prev = idx;
  }
}

TEST(Histogram, SummaryStatistics) {
  Registry reg;
  reg.set_enabled(true);
  Histogram& h = reg.histogram("t");
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(Histogram, QuantilesAreBucketAccurate) {
  Registry reg;
  reg.set_enabled(true);
  Histogram& h = reg.histogram("q");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  double tol = 2.0 / Histogram::kSubBuckets;
  EXPECT_NEAR(h.quantile(0.5) / 50.0, 1.0, tol + 1.0 / 50.0);
  EXPECT_NEAR(h.quantile(0.9) / 90.0, 1.0, tol + 1.0 / 90.0);
  EXPECT_NEAR(h.quantile(1.0) / 100.0, 1.0, tol);
  EXPECT_NEAR(h.quantile(0.0) / 1.0, 1.0, tol);
}

TEST(Histogram, ValueAtQuantileTieBreaksToTheLowerBucket) {
  Registry reg;
  reg.set_enabled(true);
  Histogram& h = reg.histogram("tie");
  // Two samples per bucket: the median rank ceil(0.5 * 4) = 2 lands exactly
  // on the boundary between the buckets — the lower-indexed bucket wins.
  h.record(1.0);
  h.record(1.0);
  h.record(1000.0);
  h.record(1000.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.5),
                   Histogram::bucket_value(Histogram::bucket_index(1.0)));
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.75),
                   Histogram::bucket_value(Histogram::bucket_index(1000.0)));
  // q = 0 maps to the first sample; q out of range clamps.
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.0), h.value_at_quantile(-1.0));
  EXPECT_DOUBLE_EQ(h.value_at_quantile(1.0), h.value_at_quantile(2.0));
  // The historical name stays an exact alias.
  EXPECT_DOUBLE_EQ(h.quantile(0.9), h.value_at_quantile(0.9));
}

TEST(Snapshot, TryValueOfDistinguishesAbsentFromZero) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("present.zero");  // created but never incremented
  reg.counter("present.nonzero").add(3.0);
  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.try_value_of("present.zero"), std::optional<double>(0.0));
  EXPECT_EQ(s.try_value_of("present.nonzero"), std::optional<double>(3.0));
  EXPECT_EQ(s.try_value_of("absent"), std::nullopt);
  // value_of conflates the first and third cases — the documented trap.
  EXPECT_DOUBLE_EQ(s.value_of("present.zero"), s.value_of("absent"));
  // string_view find: no std::string materialization required of callers.
  const std::string_view key = "present.nonzero";
  const Snapshot::Entry* e = s.find(key);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->value, 3.0);
}

// --- Registry / snapshot ---------------------------------------------------

TEST(Registry, FindOrCreateReturnsSameHandle) {
  Registry reg;
  EXPECT_EQ(&reg.counter("a.b"), &reg.counter("a.b"));
  EXPECT_EQ(&reg.gauge("a.g"), &reg.gauge("a.g"));
  EXPECT_EQ(&reg.histogram("a.h"), &reg.histogram("a.h"));
}

void drive(Registry& reg) {
  reg.counter("sim.engine.events").add(3);
  reg.counter("mpi.world.bytes").add(4096);
  reg.gauge("runtime.rank0.pollers").set(7);
  reg.gauge("runtime.rank0.pollers").set(5);
  for (double v : {1e-6, 2e-6, 5e-6, 8e-6}) reg.histogram("mpi.dma_rate").record(v);
}

TEST(Registry, SnapshotIsDeterministicAcrossIdenticalRuns) {
  Registry a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  drive(a);
  drive(b);
  Snapshot sa = a.snapshot(), sb = b.snapshot();
  ASSERT_EQ(sa.entries.size(), sb.entries.size());
  for (std::size_t i = 0; i < sa.entries.size(); ++i) {
    EXPECT_EQ(sa.entries[i].name, sb.entries[i].name);
    EXPECT_EQ(sa.entries[i].kind, sb.entries[i].kind);
    EXPECT_DOUBLE_EQ(sa.entries[i].value, sb.entries[i].value);
    EXPECT_DOUBLE_EQ(sa.entries[i].p50, sb.entries[i].p50);
    EXPECT_EQ(sa.entries[i].count, sb.entries[i].count);
  }
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("z.last").add(1);
  reg.gauge("a.first").set(1);
  reg.histogram("m.middle").record(1);
  Snapshot s = reg.snapshot();
  ASSERT_EQ(s.entries.size(), 3u);
  for (std::size_t i = 1; i < s.entries.size(); ++i)
    EXPECT_LT(s.entries[i - 1].name, s.entries[i].name);
  EXPECT_DOUBLE_EQ(s.value_of("z.last"), 1.0);
  EXPECT_EQ(s.find("nope"), nullptr);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  Registry reg;
  reg.set_enabled(true);
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.add(9);
  h.record(1.0);
  reg.tracer().set_enabled(true);
  TrackId t = reg.tracer().track("row");
  reg.tracer().span(t, "s", 0.0, 1.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(reg.tracer().spans().empty());
  EXPECT_TRUE(reg.enabled());  // reset does not flip the switch
  c.add(2);                    // handle still live
  EXPECT_DOUBLE_EQ(c.value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().value_of("c"), 2.0);
}

// --- Disabled registry records nothing -------------------------------------

TEST(Registry, DisabledRecordsNothing) {
  Registry reg;  // disabled by default
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(3);
  h.record(1.0);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;  // disabled by default
  TrackId t = tr.track("row");  // interning works even while disabled
  tr.span(t, "s", 0.0, 1.0);
  tr.counter_sample("c", 0.5, 1.0);
  tr.instant(t, "i", 0.25);
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_TRUE(tr.counter_samples().empty());
  EXPECT_TRUE(tr.instants().empty());
  ASSERT_EQ(tr.track_names().size(), 1u);
  EXPECT_EQ(tr.track_names()[0], "row");
}

TEST(Tracer, BackwardsSpanIsIgnored) {
  Tracer tr;
  tr.set_enabled(true);
  TrackId t = tr.track("row");
  tr.span(t, "bad", 2.0, 1.0);
  EXPECT_TRUE(tr.spans().empty());
}

}  // namespace
}  // namespace cci::obs
