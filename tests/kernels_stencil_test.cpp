// Stencil kernel: correctness, boundary handling, traits.
#include <gtest/gtest.h>

#include "kernels/stencil.hpp"

namespace cci::kernels {
namespace {

TEST(Stencil, SweepMatchesReference) {
  Stencil3D s(12, 14, 16);
  std::size_t updated = s.sweep();
  EXPECT_EQ(updated, 10u * 12u * 14u);
  EXPECT_TRUE(s.verify());
}

TEST(Stencil, BoundariesStayUntouched) {
  Stencil3D s(8, 8, 8);
  s.sweep();
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t k = 0; k < 8; ++k) {
      EXPECT_DOUBLE_EQ(s.at_out(0, j, k), 0.0);
      EXPECT_DOUBLE_EQ(s.at_out(7, j, k), 0.0);
    }
}

TEST(Stencil, RepeatedSweepsConvergeTowardSmoothField) {
  // The operator is a contraction (|c0| + 6|c1| = 1.0): the range of the
  // interior must not expand over sweeps.
  Stencil3D s(16, 16, 16);
  auto range_of = [&](bool use_out) {
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 1; i < 15; ++i)
      for (std::size_t j = 1; j < 15; ++j)
        for (std::size_t k = 1; k < 15; ++k) {
          double v = use_out ? s.at_out(i, j, k) : s.at_in(i, j, k);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
    return hi - lo;
  };
  double before = range_of(false);
  s.sweep();
  double after = range_of(true);
  EXPECT_LE(after, before * 1.0001);
}

TEST(Stencil, TraitsAreMemoryBound) {
  auto t = Stencil3D::traits();
  EXPECT_NEAR(t.arithmetic_intensity(), 0.5, 1e-12);
  // Well below henri's ~6 flop/B boundary: the interference regime.
  EXPECT_LT(t.arithmetic_intensity(), 6.0);
}

class StencilSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StencilSizes, VerifiesAtAnySize) {
  std::size_t n = GetParam();
  Stencil3D s(n, n, n);
  s.sweep();
  EXPECT_TRUE(s.verify());
  s.swap_buffers();
  s.sweep();
  EXPECT_TRUE(s.verify());
}

INSTANTIATE_TEST_SUITE_P(Cubes, StencilSizes, ::testing::Values(4u, 5u, 9u, 17u, 32u));

}  // namespace
}  // namespace cci::kernels
