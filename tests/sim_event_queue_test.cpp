// EventQueue: retime semantics, cancelled-entry compaction, node recycling.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace cci::sim {
namespace {

TEST(EventQueue, CancelRescheduleDoesNotGrowHeapUnboundedly) {
  // The engine's old change-point pattern: cancel the completion timer and
  // schedule a fresh one, thousands of times.  Every cancelled node used to
  // linger in the heap until its (possibly far-future) time surfaced; the
  // compaction pass now bounds the heap to ~2x the live entries.
  EventQueue q;
  EventQueue::Handle timer;
  for (int i = 0; i < 100000; ++i) {
    timer.cancel();
    timer = q.schedule(1e9 + i, [] {});  // far future: never pops naturally
  }
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_LE(q.size_estimate(), 16u);  // compaction threshold, not 100000
}

TEST(EventQueue, RetimeLeavesNoGarbageAtAll) {
  EventQueue q;
  EventQueue::Handle timer = q.schedule(1e9, [] {});
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(q.retime(timer, 1e9 + i));
  EXPECT_EQ(q.size_estimate(), 1u);
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_TRUE(timer.pending());
}

TEST(EventQueue, RetimeMovesEventAndKeepsCallback) {
  EventQueue q;
  std::vector<int> order;
  auto a = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  ASSERT_TRUE(q.retime(a, 3.0));  // 1 -> after 2
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RetimeResequencesLikeAFreshSchedule) {
  // Two events at the same instant run in scheduling order; a retimed event
  // counts as freshly scheduled (exactly what cancel+reschedule used to do).
  EventQueue q;
  std::vector<int> order;
  auto a = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(5.0, [&] { order.push_back(2); });
  ASSERT_TRUE(q.retime(a, 5.0));
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RetimeFailsOnFiredCancelledOrInertHandles) {
  EventQueue q;
  EventQueue::Handle inert;
  EXPECT_FALSE(q.retime(inert, 1.0));

  auto fired = q.schedule(1.0, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.retime(fired, 2.0));
  EXPECT_FALSE(fired.pending());

  auto cancelled = q.schedule(1.0, [] {});
  cancelled.cancel();
  EXPECT_FALSE(q.retime(cancelled, 2.0));
}

TEST(EventQueue, RecycledNodesDoNotResurrectOldHandles) {
  EventQueue q;
  auto h1 = q.schedule(1.0, [] {});
  (void)q.pop();  // node goes to the free-list
  auto h2 = q.schedule(2.0, [] {});  // recycles the same node
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  h1.cancel();  // stale handle: must be inert, not cancel h2's event
  EXPECT_TRUE(h2.pending());
  EXPECT_EQ(q.live_size(), 1u);
}

TEST(EventQueue, CompactionPreservesPopOrder) {
  Rng rng(17);
  EventQueue q;
  std::vector<EventQueue::Handle> handles;
  std::vector<double> expected;
  for (int i = 0; i < 400; ++i) {
    double t = rng.uniform(0.0, 100.0);
    handles.push_back(q.schedule(t, [] {}));
    expected.push_back(t);
  }
  // Cancel ~three quarters, triggering at least one compaction sweep.
  std::vector<double> surviving;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (i % 4 != 0) {
      handles[i].cancel();
    } else {
      surviving.push_back(expected[i]);
    }
  }
  std::sort(surviving.begin(), surviving.end());
  EXPECT_EQ(q.live_size(), surviving.size());
  std::vector<double> popped;
  while (!q.empty()) popped.push_back(q.pop().first);
  EXPECT_EQ(popped, surviving);
}

TEST(EventQueue, LiveSizeExcludesLazilyCancelledEntries) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  EXPECT_EQ(q.live_size(), 3u);
  a.cancel();
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_GE(q.size_estimate(), q.live_size());
}

TEST(EventQueue, RetimeBurstSweepsCancelledEntriesLeftByPops) {
  // Pops shrink the heap without re-checking the cancelled fraction, so a
  // heap can sit at > 50% cancelled entries indefinitely if no further
  // cancel arrives.  A retime burst through such a heap must trigger the
  // sweep itself (it used to sift through the garbage forever).
  EventQueue q;
  std::vector<EventQueue::Handle> far;
  for (int i = 0; i < 100; ++i) q.schedule(static_cast<double>(i), [] {});
  for (int i = 0; i < 80; ++i)
    far.push_back(q.schedule(1e9 + i, [] {}));  // never pops naturally
  auto live_far = q.schedule(2e9, [] {});
  // 80 cancels against a heap of 181: never crosses the half bound.
  for (auto& h : far) h.cancel();
  ASSERT_EQ(q.live_size(), 101u);
  // Pop the 100 near entries: the heap shrinks to 81 slots of which 80 are
  // cancelled — way past the bound, with no cancel left to notice it.
  for (int i = 0; i < 100; ++i) (void)q.pop();
  ASSERT_EQ(q.live_size(), 1u);
  ASSERT_GT(q.size_estimate(), 40u);
  EXPECT_TRUE(q.retime(live_far, 3e9));
  EXPECT_EQ(q.size_estimate(), 1u);  // retime compacted before sifting
  EXPECT_EQ(q.live_size(), 1u);
  q.check_live_size();
}

TEST(EventQueue, CheckLiveSizeAuditHoldsThroughChurn) {
  Rng rng(23);
  EventQueue q;
  std::vector<EventQueue::Handle> handles;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i)
      handles.push_back(q.schedule(rng.uniform(0.0, 100.0), [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 3) handles[i].cancel();
    for (std::size_t i = 1; i < handles.size(); i += 3)
      q.retime(handles[i], rng.uniform(0.0, 100.0));
    for (int i = 0; i < 5 && !q.empty(); ++i) (void)q.pop();
    ASSERT_NO_THROW(q.check_live_size()) << "round " << round;
  }
}

TEST(EngineRetime, RetimedCallbackFiresAtNewTime) {
  Engine engine;
  Time fired_at = -1.0;
  auto h = engine.call_at(1.0, [&] { fired_at = engine.now(); });
  EXPECT_TRUE(engine.retime(h, 4.0));
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

}  // namespace
}  // namespace cci::sim
