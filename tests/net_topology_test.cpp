// Topology-graph fabric: builder shapes, materialized resources, minimal
// and adaptive routing (fat-tree spines, dragonfly Valiant detours),
// single-switch bitwise compatibility and the PDES carve hints.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.hpp"
#include "net/fabric_graph.hpp"
#include "obs/metrics.hpp"
#include "sim/flow_model.hpp"
#include "sim/partition.hpp"

namespace cci::net {
namespace {

using hw::MachineConfig;

ClusterSpec spec_with(Topology t, int nodes, std::uint64_t seed = 42) {
  ClusterSpec spec;
  spec.topology = std::move(t);
  spec.nodes = nodes;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> path_names(const Cluster::FabricPath& path) {
  std::vector<std::string> names;
  for (sim::Resource* r : path) names.push_back(r->name());
  return names;
}

/// Pin a unit-demand flow on `r` so its utilization reads 1.0 — the
/// congestion signal adaptive routing reacts to.
sim::ActivityPtr load_link(Cluster& cluster, const char* name) {
  sim::Resource* r = cluster.find_link(name);
  EXPECT_NE(r, nullptr) << name;
  sim::ActivitySpec spec;
  spec.work = 1e18;  // effectively forever
  spec.demands.push_back({r, 1.0});
  return cluster.model().start(spec);
}

// ---- builders ---------------------------------------------------------------

TEST(Topology, FatTreeShapeAndNames) {
  Topology t = Topology::fat_tree(4, 0.5);
  EXPECT_EQ(t.kind(), Topology::Kind::kFatTree);
  EXPECT_EQ(t.switch_count(), 6);  // 4 leaves + 2 spines
  EXPECT_EQ(t.max_hosts(), 8);     // k/2 hosts per leaf
  EXPECT_EQ(t.group_count(), 4);   // one group per leaf
  ASSERT_EQ(t.links().size(), 16u);  // 4 leaves x 2 spines x 2 directions
  // Leaf-major, up immediately followed by down for each (leaf, spine).
  EXPECT_EQ(t.links()[0].src, 0);
  EXPECT_EQ(t.links()[0].dst, 4);
  EXPECT_EQ(t.links()[0].cls, LinkClass::kUp);
  EXPECT_EQ(t.links()[0].bw_scale, 0.5);
  EXPECT_EQ(t.links()[1].src, 4);
  EXPECT_EQ(t.links()[1].dst, 0);
  EXPECT_EQ(t.links()[1].cls, LinkClass::kDown);
  EXPECT_EQ(t.switch_name(0), "leaf0");
  EXPECT_EQ(t.switch_name(5), "spine1");
  EXPECT_EQ(t.host_switch(5), 2);  // 2 hosts per leaf
  EXPECT_EQ(t.group_of_switch(2), 2);
  EXPECT_EQ(t.group_of_switch(4), -1);  // spines belong to every group
}

TEST(Topology, DragonflyShapeAndGateways) {
  Topology t = Topology::dragonfly(3, 2, 2);
  EXPECT_EQ(t.kind(), Topology::Kind::kDragonfly);
  EXPECT_EQ(t.switch_count(), 6);
  EXPECT_EQ(t.max_hosts(), 12);
  EXPECT_EQ(t.group_count(), 3);
  // Intra-group meshes (2 per group) then one global per ordered pair (6).
  ASSERT_EQ(t.links().size(), 12u);
  int locals = 0, globals = 0;
  for (const Topology::Link& l : t.links()) {
    if (l.cls == LinkClass::kLocal) ++locals;
    if (l.cls == LinkClass::kGlobal) ++globals;
  }
  EXPECT_EQ(locals, 6);
  EXPECT_EQ(globals, 6);
  EXPECT_EQ(t.switch_name(3), "g1.r1");
  EXPECT_EQ(t.host_switch(4), 2);  // node 4 -> g1.r0
  EXPECT_EQ(t.group_of_node(4), 1);
  // The g0 -> g1 global link attaches at deterministic gateway routers.
  bool found = false;
  for (const Topology::Link& l : t.links())
    if (l.cls == LinkClass::kGlobal && l.src == 0 && l.dst == 2) found = true;
  EXPECT_TRUE(found) << "expected global link g0.r0 -> g1.r0";
}

TEST(Topology, BuildersRejectDegenerateShapes) {
  EXPECT_THROW(Topology::single_switch(0.0), std::invalid_argument);
  EXPECT_THROW(Topology::fat_tree(3), std::invalid_argument);
  EXPECT_THROW(Topology::fat_tree(0), std::invalid_argument);
  EXPECT_THROW(Topology::fat_tree(4, -1.0), std::invalid_argument);
  EXPECT_THROW(Topology::dragonfly(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Topology::dragonfly(2, 0, 1), std::invalid_argument);
}

TEST(Topology, SerializeCoversEveryRoutingKnob) {
  std::ostringstream ss;
  Topology::single_switch().serialize(ss);
  EXPECT_NE(ss.str().find("t.kind=0;"), std::string::npos);
  EXPECT_NE(ss.str().find("t.routing=minimal;"), std::string::npos);

  std::ostringstream df;
  Topology::dragonfly(3, 2, 2)
      .routing(RoutingPolicy::kAdaptive)
      .adaptive_threshold(0.7)
      .serialize(df);
  EXPECT_NE(df.str().find("t.routing=adaptive;"), std::string::npos);
  EXPECT_NE(df.str().find("t.groups=3;"), std::string::npos);
  EXPECT_NE(df.str(), ss.str());

  // Routing policy alone must change the serialization (it changes paths).
  std::ostringstream a, b;
  Topology::fat_tree(4).serialize(a);
  Topology::fat_tree(4).routing(RoutingPolicy::kAdaptive).serialize(b);
  EXPECT_NE(a.str(), b.str());
}

TEST(Topology, MinRemoteDelayScalesWithTheCrossGroupLinkClass) {
  const NetworkParams net = NetworkParams::ib_edr();
  const double base = net.min_remote_delay();
  EXPECT_DOUBLE_EQ(Topology::single_switch().min_remote_delay(net), base);
  EXPECT_DOUBLE_EQ(Topology::fat_tree(4).min_remote_delay(net), base);
  // Dragonfly groups couple through long global links only.
  EXPECT_DOUBLE_EQ(Topology::dragonfly(3, 2, 2).min_remote_delay(net), 3.0 * base);
  // A single-group dragonfly never crosses a global link.
  EXPECT_DOUBLE_EQ(Topology::dragonfly(1, 2, 2).min_remote_delay(net), base);
}

// ---- single-switch compatibility --------------------------------------------

TEST(Fabric, SingleSwitchSpecMatchesLegacyClusterExactly) {
  Cluster legacy(MachineConfig::henri(), NetworkParams::ib_edr(), 4, 42);
  Cluster topo(spec_with(Topology::single_switch(), 4));
  // Same solver resource table: same count, and the fabric is one crossbar
  // with the same name and capacity.
  EXPECT_EQ(topo.model().solver().resource_count(),
            legacy.model().solver().resource_count());
  ASSERT_EQ(topo.fabric_resources().size(), 1u);
  EXPECT_TRUE(topo.fabric_links().empty());
  sim::Resource* a = legacy.find_link("switch");
  sim::Resource* b = topo.find_link("switch");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->capacity(), b->capacity());
  // Paths are the historical {tx, crossbar, rx} chain.
  EXPECT_EQ(path_names(topo.fabric_path(0, 3)),
            (std::vector<std::string>{"node0.tx", "switch", "node3.rx"}));
  // No routing decisions are ever recorded on the single switch.
  topo.enable_route_trace(true);
  (void)topo.fabric_path(1, 2);
  EXPECT_TRUE(topo.route_trace().empty());
}

TEST(Fabric, NodeCountValidatedAgainstTopologyCapacity) {
  EXPECT_THROW(Cluster(spec_with(Topology::fat_tree(4), 9)), std::invalid_argument);
  EXPECT_THROW(Cluster(spec_with(Topology::dragonfly(2, 2, 1), 5)),
               std::invalid_argument);
  EXPECT_NO_THROW(Cluster(spec_with(Topology::fat_tree(4), 8)));
  // The single switch scales with the node count: any size attaches.
  EXPECT_NO_THROW(Cluster(spec_with(Topology::single_switch(), 16)));
}

// ---- fat-tree routing -------------------------------------------------------

TEST(FatTreeRouting, MinimalSpineIsAPureLeafPairFunction) {
  Cluster cluster(spec_with(Topology::fat_tree(4, 0.5), 8));
  cluster.enable_route_trace(true);
  // Same leaf: one crossbar, no spine, no recorded decision.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 1)),
            (std::vector<std::string>{"node0.tx", "switch.leaf0", "node1.rx"}));
  EXPECT_TRUE(cluster.route_trace().empty());
  // Cross leaf: spine (ls + ld) % spines = (0 + 1) % 2 = 1.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 2)),
            (std::vector<std::string>{"node0.tx", "switch.leaf0", "link.leaf0-spine1",
                                      "switch.spine1", "link.spine1-leaf1",
                                      "switch.leaf1", "node2.rx"}));
  ASSERT_EQ(cluster.route_trace().size(), 1u);
  EXPECT_EQ(cluster.route_trace()[0].via, 1);
  // Minimal routing never consults utilization or the RNG: repeat calls
  // return the identical chain.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 2)), path_names(cluster.fabric_path(0, 2)));
}

TEST(FatTreeRouting, AdaptiveDeviatesOffTheLoadedSpine) {
  Cluster cluster(
      spec_with(Topology::fat_tree(4, 0.5).routing(RoutingPolicy::kAdaptive), 8));
  cluster.enable_route_trace(true);
  // Unloaded fabric: cost 0 on the minimal spine is never above the
  // threshold, so adaptive routing degrades to minimal.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 2))[3], "switch.spine1");
  // Saturate the minimal uplink; the next decision moves to spine0 (the
  // only alternative — deterministically, no tie to break).
  sim::ActivityPtr pin = load_link(cluster, "link.leaf0-spine1");
  EXPECT_EQ(path_names(cluster.fabric_path(0, 2))[3], "switch.spine0");
  ASSERT_EQ(cluster.route_trace().size(), 2u);
  EXPECT_EQ(cluster.route_trace()[0].via, 1);
  EXPECT_EQ(cluster.route_trace()[1].via, 0);
  cluster.model().cancel(pin);
}

TEST(FatTreeRouting, ThresholdHoldsTheMinimalRouteUnderLightLoad) {
  Cluster cluster(spec_with(
      Topology::fat_tree(4, 0.5).routing(RoutingPolicy::kAdaptive).adaptive_threshold(2.0),
      8));
  // Even a saturated minimal spine stays below an impossible threshold.
  sim::ActivityPtr pin = load_link(cluster, "link.leaf0-spine1");
  EXPECT_EQ(path_names(cluster.fabric_path(0, 2))[3], "switch.spine1");
  cluster.model().cancel(pin);
}

TEST(FatTreeRouting, RngTieBreaksAreSeedDeterministic) {
  // k = 8: four spines; loading the minimal one leaves three zero-cost
  // candidates, so every decision draws the cluster RNG.
  auto trace_of = [](std::uint64_t seed) {
    Cluster cluster(
        spec_with(Topology::fat_tree(8, 1.0).routing(RoutingPolicy::kAdaptive), 8, seed));
    cluster.enable_route_trace(true);
    sim::ActivityPtr pin = load_link(cluster, "link.leaf0-spine1");
    std::vector<int> vias;
    for (int i = 0; i < 8; ++i) {
      (void)cluster.fabric_path(0, 4);  // leaf0 -> leaf1: minimal spine 1
      vias.push_back(cluster.route_trace().back().via);
    }
    cluster.model().cancel(pin);
    return vias;
  };
  const std::vector<int> a = trace_of(42);
  const std::vector<int> b = trace_of(42);
  EXPECT_EQ(a, b);
  for (int via : a) EXPECT_NE(via, 1);  // never the loaded minimal spine
}

// ---- dragonfly routing ------------------------------------------------------

TEST(DragonflyRouting, LocalAndMinimalGlobalPaths) {
  Cluster cluster(spec_with(Topology::dragonfly(3, 2, 2), 12));
  cluster.enable_route_trace(true);
  // Same router: the crossbar alone.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 1)),
            (std::vector<std::string>{"node0.tx", "switch.g0.r0", "node1.rx"}));
  // Same group, different router: one local hop (via = -1 recorded).
  EXPECT_EQ(path_names(cluster.fabric_path(0, 2)),
            (std::vector<std::string>{"node0.tx", "switch.g0.r0", "link.g0.r0-g0.r1",
                                      "switch.g0.r1", "node2.rx"}));
  // Cross group, source on the gateway: one global hop.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 4)),
            (std::vector<std::string>{"node0.tx", "switch.g0.r0", "link.g0.r0-g1.r0",
                                      "switch.g1.r0", "node4.rx"}));
  ASSERT_EQ(cluster.route_trace().size(), 2u);
  EXPECT_EQ(cluster.route_trace()[0].via, -1);
  EXPECT_EQ(cluster.route_trace()[1].via, -1);
}

TEST(DragonflyRouting, AdaptiveTakesTheValiantDetourPastACongestedGlobal) {
  Cluster cluster(
      spec_with(Topology::dragonfly(3, 2, 2).routing(RoutingPolicy::kAdaptive), 12));
  cluster.enable_route_trace(true);
  sim::ActivityPtr pin = load_link(cluster, "link.g0.r0-g1.r0");
  Cluster::FabricPath path = cluster.fabric_path(0, 4);
  // UGAL detour via the only intermediate group (2): the longest route the
  // builders emit — and it still fits the FabricPath inline capacity.
  const std::vector<std::string> names = path_names(path);
  ASSERT_EQ(names.size(), 13u);
  EXPECT_LE(path.size(), 16u);
  EXPECT_EQ(names[4], "link.g0.r1-g2.r0");   // g0 gateway out to group 2
  EXPECT_EQ(names[8], "link.g2.r1-g1.r1");   // group 2 gateway into g1
  ASSERT_EQ(cluster.route_trace().size(), 1u);
  EXPECT_EQ(cluster.route_trace()[0].via, 2);
  cluster.model().cancel(pin);
  // With the pin gone the next registration reverts to minimal.
  EXPECT_EQ(path_names(cluster.fabric_path(0, 4)).size(), 5u);
  EXPECT_EQ(cluster.route_trace().back().via, -1);
}

TEST(DragonflyRouting, TwoGroupFabricNeverDetours) {
  // groups = 2: there is no intermediate group, so adaptive must hold the
  // minimal global route no matter the load.
  Cluster cluster(
      spec_with(Topology::dragonfly(2, 2, 2).routing(RoutingPolicy::kAdaptive), 8));
  cluster.enable_route_trace(true);
  sim::ActivityPtr pin = load_link(cluster, "link.g0.r0-g1.r0");
  (void)cluster.fabric_path(0, 4);
  ASSERT_EQ(cluster.route_trace().size(), 1u);
  EXPECT_EQ(cluster.route_trace()[0].via, -1);
  cluster.model().cancel(pin);
}

// ---- fabric metrics and carve hints -----------------------------------------

TEST(Fabric, RouteCountersRegisterOnMultiSwitchTopologiesOnly) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Registry::ScopedThreadLocal scope(reg);
  {
    Cluster single(spec_with(Topology::single_switch(), 2));
    (void)single.fabric_path(0, 1);
  }
  for (const auto& e : reg.snapshot().entries)
    EXPECT_EQ(e.name.rfind("net.fabric.", 0), std::string::npos) << e.name;
  {
    Cluster tree(spec_with(Topology::fat_tree(4), 8));
    (void)tree.fabric_path(0, 2);
    (void)tree.fabric_path(2, 4);
  }
  EXPECT_DOUBLE_EQ(reg.counter("net.fabric.routes").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.counter("net.fabric.adaptive_reroutes").value(), 0.0);
}

TEST(Fabric, ResourceGroupsFollowTopologyGroups) {
  Cluster cluster(spec_with(Topology::dragonfly(3, 2, 2), 12));
  const std::vector<int> groups = cluster.resource_groups();
  ASSERT_EQ(groups.size(), cluster.model().solver().resource_count());
  // Tail of the table: 6 crossbars (group-major), 6 local links pinned to
  // their group, 6 global links shared (-1).
  const std::size_t n = groups.size();
  for (std::size_t i = n - 6; i < n; ++i) EXPECT_EQ(groups[i], -1);
  const std::vector<int> local_links(groups.end() - 12, groups.end() - 6);
  EXPECT_EQ(local_links, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  const std::vector<int> xbars(groups.end() - 18, groups.end() - 12);
  EXPECT_EQ(xbars, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  // Every node-local resource carries its node's group; node 0 is group 0,
  // node 11 group 2.
  EXPECT_EQ(groups.front(), 0);
  // Shard lookahead crosses a global link (3x base latency).
  EXPECT_DOUBLE_EQ(cluster.shard_lookahead(),
                   3.0 * cluster.net().min_remote_delay());
}

TEST(Fabric, SingleSwitchResourcesAllShareOneGroup) {
  Cluster cluster(spec_with(Topology::single_switch(), 3));
  for (int g : cluster.resource_groups()) EXPECT_EQ(g, 0);
  EXPECT_DOUBLE_EQ(cluster.shard_lookahead(), cluster.net().min_remote_delay());
}

// ---- cross-shard carve: group graph, cut links, fabric replicas -------------

TEST(Topology, GroupGraphCondensesInterGroupCapacity) {
  // Dragonfly: one global link per ordered group pair folds to an
  // undirected edge of capacity 2; locals stay inside their group vertex.
  const Topology df = Topology::dragonfly(4, 2, 2);
  const sim::GroupGraph g = df.group_graph(16);
  EXPECT_EQ(g.groups, 4);
  ASSERT_EQ(g.load.size(), 4u);
  for (double l : g.load) EXPECT_EQ(l, 4.0);
  ASSERT_EQ(g.edges.size(), 6u);
  for (const sim::GroupGraph::Edge& e : g.edges) {
    EXPECT_LT(e.a, e.b);
    EXPECT_DOUBLE_EQ(e.capacity, 2.0);
  }
  // Fat-tree: every link touches a group-less spine, so the whole fabric
  // capacity (16 unit links) spreads uniformly over the 6 leaf pairs.
  const Topology ft = Topology::fat_tree(4);
  const sim::GroupGraph t = ft.group_graph(8);
  EXPECT_EQ(t.groups, 4);
  ASSERT_EQ(t.load.size(), 4u);
  for (double l : t.load) EXPECT_EQ(l, 2.0);
  ASSERT_EQ(t.edges.size(), 6u);
  for (const sim::GroupGraph::Edge& e : t.edges)
    EXPECT_DOUBLE_EQ(e.capacity, 16.0 / 6.0);
}

TEST(Topology, CutLinksFollowTheShardMap) {
  const NetworkParams net = NetworkParams::ib_edr();
  const Topology df = Topology::dragonfly(4, 2, 2);
  // Trivial map: nothing is cut.
  EXPECT_TRUE(df.cut_links({0, 0, 0, 0}).empty());
  // {0,1} vs {2,3}: exactly the 8 ordered global pairs across the split;
  // locals and same-side globals stay shard-internal.
  const std::vector<int> cut = df.cut_links({0, 0, 1, 1});
  EXPECT_EQ(cut.size(), 8u);
  for (int li : cut)
    EXPECT_EQ(df.links()[static_cast<std::size_t>(li)].cls, LinkClass::kGlobal);
  // A global-only cut earns the 3x lookahead; an empty cut falls back to
  // the topology's cross-group floor.
  EXPECT_DOUBLE_EQ(df.min_cut_delay(net, cut), 3.0 * net.min_remote_delay());
  EXPECT_DOUBLE_EQ(df.min_cut_delay(net, {}), df.min_remote_delay(net));

  // Fat-tree spines are shared fabric: any non-trivial carve cuts every
  // link, and leaf-spine hops keep the base (1x) lookahead.
  const Topology ft = Topology::fat_tree(4);
  const std::vector<int> tcut = ft.cut_links({0, 0, 1, 1});
  EXPECT_EQ(tcut.size(), ft.links().size());
  EXPECT_DOUBLE_EQ(ft.min_cut_delay(net, tcut), net.min_remote_delay());
}

TEST(FabricGraph, ReplicaMirrorsClusterResourcesExactly) {
  struct Case {
    Topology topo;
    int nodes;
  };
  const Case cases[] = {{Topology::single_switch(), 4},
                        {Topology::fat_tree(4, 0.5), 8},
                        {Topology::dragonfly(3, 2, 2), 12}};
  for (const Case& c : cases) {
    Cluster cluster(spec_with(c.topo, c.nodes));
    FabricGraph fg(c.topo, cluster.net(), c.nodes);
    for (int n = 0; n < c.nodes; ++n) {
      EXPECT_EQ(fg.name(fg.tx_key(n)), cluster.tx_port(n)->name());
      EXPECT_EQ(fg.base_capacity(fg.tx_key(n)), cluster.tx_port(n)->capacity());
      EXPECT_EQ(fg.name(fg.rx_key(n)), cluster.rx_port(n)->name());
      EXPECT_EQ(fg.base_capacity(fg.rx_key(n)), cluster.rx_port(n)->capacity());
    }
    const std::vector<sim::Resource*>& fabric = cluster.fabric_resources();
    for (int s = 0; s < c.topo.switch_count(); ++s) {
      EXPECT_EQ(fg.name(fg.xbar_key(s)), fabric[static_cast<std::size_t>(s)]->name());
      EXPECT_EQ(fg.base_capacity(fg.xbar_key(s)),
                fabric[static_cast<std::size_t>(s)]->capacity());
    }
    const std::vector<sim::Resource*>& links = cluster.fabric_links();
    ASSERT_EQ(links.size(), c.topo.links().size());
    for (std::size_t li = 0; li < links.size(); ++li) {
      const int key = fg.link_key(static_cast<int>(li));
      EXPECT_EQ(fg.name(key), links[li]->name());
      EXPECT_EQ(fg.base_capacity(key), links[li]->capacity());
    }
  }
}

TEST(FabricGraph, MinimalPathMatchesTheClusterRoute) {
  struct Case {
    Topology topo;
    int nodes;
    std::vector<std::pair<int, int>> pairs;
  };
  const Case cases[] = {
      // Dragonfly 4x2x2: same router, same group, cross group (gateway on
      // and off the source/destination routers).
      {Topology::dragonfly(4, 2, 2), 16, {{0, 1}, {0, 2}, {0, 9}, {5, 14}, {2, 4}}},
      // Fat-tree k=4: same leaf and the deterministic (ls + ld) % 2 spine.
      {Topology::fat_tree(4), 8, {{0, 1}, {0, 2}, {1, 7}, {4, 6}}},
      {Topology::single_switch(), 4, {{0, 3}, {2, 1}}},
  };
  for (const Case& c : cases) {
    Cluster cluster(spec_with(c.topo, c.nodes));
    FabricGraph fg(c.topo, cluster.net(), c.nodes);
    for (auto [src, dst] : c.pairs) {
      const Cluster::FabricPath path = cluster.fabric_path(src, dst);
      std::vector<int> keys;
      fg.minimal_path(src, dst, keys);
      ASSERT_EQ(keys.size(), path.size()) << src << "->" << dst;
      for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(fg.name(keys[i]), path[i]->name()) << src << "->" << dst;
    }
  }
}

TEST(FabricGraph, AdaptiveRoutingIsRejectedAtConstruction) {
  Topology t = Topology::dragonfly(2, 2, 2);
  t.routing(RoutingPolicy::kAdaptive);
  EXPECT_THROW(FabricGraph(t, NetworkParams::ib_edr(), 8), std::invalid_argument);
  EXPECT_THROW(FabricGraph(Topology::fat_tree(4), NetworkParams::ib_edr(), 9),
               std::invalid_argument);  // beyond max_hosts
}

// ---- route-trace ring -------------------------------------------------------

TEST(Fabric, RouteTraceRingKeepsTheTailAndCountsEvictions) {
  Cluster cluster(spec_with(Topology::fat_tree(4), 8));
  cluster.enable_route_trace(true);
  EXPECT_EQ(cluster.route_trace_capacity(), 65536u);  // default ring bound
  cluster.set_route_trace_capacity(4);
  const std::pair<int, int> routed[6] = {{0, 2}, {0, 4}, {0, 6},
                                         {2, 4}, {2, 6}, {4, 6}};
  for (auto [src, dst] : routed) (void)cluster.fabric_path(src, dst);
  EXPECT_EQ(cluster.route_trace_dropped(), 2u);
  const std::vector<Cluster::RouteChoice> trace = cluster.route_trace();
  ASSERT_EQ(trace.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [src, dst] = routed[i + 2];
    EXPECT_EQ(trace[i].src, src) << i;
    EXPECT_EQ(trace[i].dst, dst) << i;
    // Minimal fat-tree routing records its deterministic (ls + ld) % spines
    // pick, which is what lets reroute accounting spot adaptive deviations.
    EXPECT_EQ(trace[i].via, (src / 2 + dst / 2) % 2) << i;
  }
  // Resizing clears the ring and the eviction counter.
  cluster.set_route_trace_capacity(8);
  EXPECT_TRUE(cluster.route_trace().empty());
  EXPECT_EQ(cluster.route_trace_dropped(), 0u);
}

}  // namespace
}  // namespace cci::net
