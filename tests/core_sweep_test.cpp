// Sweep framework: axes, metrics, table assembly.
//
// core::Sweep is deprecated (it survives as a thin wrapper over the typed
// campaign API); this suite pins the wrapper's behaviour until the last
// callers migrate.  See tests/core_campaign_test.cpp for the replacement.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sweep.hpp"
#include "kernels/stream.hpp"

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace cci::core {
namespace {

Scenario quick_base() {
  Scenario s;
  s.kernel = kernels::triad_traits();
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 3;
  s.pingpong_warmup = 1;
  s.compute_repetitions = 2;
  s.target_pass_seconds = 0.01;
  return s;
}

TEST(Sweep, ProducesOneRowPerAxisValue) {
  auto table = Sweep(quick_base())
                   .axis("cores", {0, 5, 20}, Sweep::cores_axis())
                   .metric("bw_ratio", Sweep::bandwidth_ratio())
                   .metric("stream", Sweep::stream_per_core_gbps())
                   .run();
  EXPECT_EQ(table.rows(), 3u);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("cores,bw_ratio,stream"), std::string::npos);
}

TEST(Sweep, BandwidthRatioDeclinesAlongTheCoresAxis) {
  auto table = Sweep(quick_base())
                   .axis("cores", {0, 20}, Sweep::cores_axis())
                   .metric("bw_ratio", Sweep::bandwidth_ratio())
                   .run();
  std::ostringstream os;
  table.print_csv(os);
  // Parse the two data rows.
  std::string csv = os.str();
  auto second_line = csv.find('\n') + 1;
  auto third_line = csv.find('\n', second_line) + 1;
  double r0 = std::stod(csv.substr(csv.find(',', second_line) + 1));
  double r20 = std::stod(csv.substr(csv.find(',', third_line) + 1));
  EXPECT_GT(r0, 0.95);
  EXPECT_LT(r20, 0.8 * r0);
}

TEST(Sweep, CustomAxisMutatesScenario) {
  // Sweep the message size with a latency metric; small sizes must have
  // lower latency than the 16 MB point.
  auto table = Sweep(quick_base())
                   .axis("bytes", {4.0, 16.0 * (1 << 20)}, Sweep::message_bytes_axis())
                   .metric("lat_us", Sweep::latency_together_us())
                   .run();
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace cci::core
