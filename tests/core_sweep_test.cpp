// Single-axis sweep behaviour, expressed on the campaign API.
//
// These cases originally pinned the deprecated core::Sweep wrapper; they now
// exercise the same behaviour (fixed seed, serial engine, one axis) through
// SweepSpec/Campaign directly, keeping the historical expectations — one row
// per axis value, bandwidth decline along the cores axis, custom axes — as
// regression anchors.  See tests/core_campaign_test.cpp for the full
// multi-axis/parallel/cache coverage.
#include <gtest/gtest.h>

#include <sstream>

#include "core/campaign.hpp"
#include "kernels/stream.hpp"

namespace cci::core {
namespace {

Scenario quick_base() {
  Scenario s;
  s.kernel = kernels::triad_traits();
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 3;
  s.pingpong_warmup = 1;
  s.compute_repetitions = 2;
  s.target_pass_seconds = 0.01;
  return s;
}

trace::Table run_serial(Campaign& campaign) {
  CampaignEngine engine;
  CampaignRun run = engine.run(campaign);
  return run.table(campaign);
}

TEST(Sweep, ProducesOneRowPerAxisValue) {
  Campaign campaign("sweep:cores", SweepSpec(quick_base())
                                       .seed_policy(SeedPolicy::kFixed)
                                       .cores("cores", {0, 5, 20}));
  campaign.column("bw_ratio", Campaign::bandwidth_ratio())
      .column("stream", Campaign::stream_per_core_gbps());
  trace::Table table = run_serial(campaign);
  EXPECT_EQ(table.rows(), 3u);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("cores,bw_ratio,stream"), std::string::npos);
}

TEST(Sweep, BandwidthRatioDeclinesAlongTheCoresAxis) {
  Campaign campaign("sweep:cores", SweepSpec(quick_base())
                                       .seed_policy(SeedPolicy::kFixed)
                                       .cores("cores", {0, 20}));
  campaign.column("bw_ratio", Campaign::bandwidth_ratio());
  trace::Table table = run_serial(campaign);
  std::ostringstream os;
  table.print_csv(os);
  // Parse the two data rows.
  std::string csv = os.str();
  auto second_line = csv.find('\n') + 1;
  auto third_line = csv.find('\n', second_line) + 1;
  double r0 = std::stod(csv.substr(csv.find(',', second_line) + 1));
  double r20 = std::stod(csv.substr(csv.find(',', third_line) + 1));
  EXPECT_GT(r0, 0.95);
  EXPECT_LT(r20, 0.8 * r0);
}

TEST(Sweep, CustomAxisMutatesScenario) {
  // Sweep the message size with a latency metric; small sizes must have
  // lower latency than the 16 MB point.
  Campaign campaign(
      "sweep:bytes",
      SweepSpec(quick_base())
          .seed_policy(SeedPolicy::kFixed)
          .values("bytes", {4.0, 16.0 * (1 << 20)}, [](Scenario& s, double v) {
            s.message_bytes = static_cast<std::size_t>(v);
          }));
  campaign.column("lat_us", Campaign::latency_together_us());
  trace::Table table = run_serial(campaign);
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace cci::core
