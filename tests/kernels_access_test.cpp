// Transpose and RandomAccess kernels: correctness and traits.
#include <gtest/gtest.h>

#include "kernels/access_patterns.hpp"

namespace cci::kernels {
namespace {

class TransposeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransposeSizes, RoundTripsCorrectly) {
  Transpose t(GetParam(), 8);
  std::size_t bytes = t.run();
  EXPECT_EQ(bytes, GetParam() * GetParam() * 16);
  EXPECT_TRUE(t.verify());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransposeSizes, ::testing::Values(3u, 8u, 31u, 64u, 100u));

TEST(Transpose, BlockSizeDoesNotChangeResult) {
  Transpose a(48, 4), b(48, 48);
  a.run();
  b.run();
  EXPECT_TRUE(a.verify());
  EXPECT_TRUE(b.verify());
}

TEST(RandomAccess, ChecksumIsDeterministic) {
  RandomAccess a(1 << 12), b(1 << 12);
  EXPECT_EQ(a.run(10000), b.run(10000));
}

TEST(RandomAccess, XorUpdatesAreInvolutive) {
  RandomAccess r(1 << 10);
  EXPECT_TRUE(r.verify_involution(5000));
}

TEST(AccessTraits, CaptureThePatternCost) {
  // GUPS wastes a full line per 8 useful bytes; transpose streams lines.
  EXPECT_DOUBLE_EQ(RandomAccess::traits().bytes_per_iter, 64.0);
  EXPECT_DOUBLE_EQ(Transpose::traits().bytes_per_iter, 16.0);
  EXPECT_DOUBLE_EQ(RandomAccess::traits().flops_per_iter, 0.0);
  // Both are deep in the memory-bound regime of Fig. 7.
  EXPECT_LT(Transpose::traits().arithmetic_intensity(), 1.0);
}

}  // namespace
}  // namespace cci::kernels
