// Mini-MPI: matching semantics, protocols, and latency/bandwidth
// calibration against the paper's §3 numbers on quiet machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "hw/frequency_governor.hpp"
#include "mpi/pingpong.hpp"
#include "mpi/world.hpp"

namespace cci::mpi {
namespace {

using hw::CpuPolicy;
using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

std::unique_ptr<Cluster> henri_cluster() {
  return std::make_unique<Cluster>(MachineConfig::henri(), NetworkParams::ib_edr());
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

TEST(World, BlockingSendRecvDeliversInOrder) {
  auto cluster = henri_cluster();
  World world(*cluster, {{0, -1}, {1, -1}});
  std::vector<int> order;
  cluster->engine().spawn([](World& w, std::vector<int>& o) -> sim::Coro {
    co_await *w.isend(0, 1, 1, MsgView{64, 0, 0});
    o.push_back(1);
    co_await *w.isend(0, 1, 2, MsgView{64, 0, 0});
    o.push_back(2);
  }(world, order));
  cluster->engine().spawn([](World& w, std::vector<int>& o) -> sim::Coro {
    co_await *w.irecv(1, 0, 1, MsgView{64, 0, 0});
    o.push_back(11);
    co_await *w.irecv(1, 0, 2, MsgView{64, 0, 0});
    o.push_back(12);
  }(world, order));
  cluster->engine().run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_LT(std::find(order.begin(), order.end(), 1), std::find(order.begin(), order.end(), 11));
}

TEST(World, UnexpectedEagerMessageIsBuffered) {
  auto cluster = henri_cluster();
  World world(*cluster, {{0, -1}, {1, -1}});
  bool received = false;
  // Send happens immediately; recv posted 1 ms later.
  cluster->engine().spawn([](World& w) -> sim::Coro {
    co_await *w.isend(0, 1, 7, MsgView{256, 0, 0});
  }(world));
  cluster->engine().spawn([](World& w, bool& flag) -> sim::Coro {
    co_await w.engine().sleep(1e-3);
    co_await *w.irecv(1, 0, 7, MsgView{256, 0, 0});
    flag = true;
  }(world, received));
  cluster->engine().run();
  EXPECT_TRUE(received);
}

TEST(World, RendezvousWaitsForReceiver) {
  auto cluster = henri_cluster();
  World world(*cluster, {{0, -1}, {1, -1}});
  sim::Time send_done = -1.0;
  cluster->engine().spawn([](World& w, sim::Time& t) -> sim::Coro {
    co_await *w.isend(0, 1, 7, MsgView{1 << 20, 0, 0});  // 1 MB: rendezvous
    t = w.engine().now();
  }(world, send_done));
  cluster->engine().spawn([](World& w) -> sim::Coro {
    co_await w.engine().sleep(5e-3);  // receiver shows up late
    co_await *w.irecv(1, 0, 7, MsgView{1 << 20, 0, 0});
  }(world));
  cluster->engine().run();
  // The DMA cannot start before the recv was posted at t=5ms.
  EXPECT_GT(send_done, 5e-3);
}

TEST(World, WildcardsMatch) {
  auto cluster = henri_cluster();
  World world(*cluster, {{0, -1}, {1, -1}});
  bool got = false;
  cluster->engine().spawn([](World& w, bool& flag) -> sim::Coro {
    co_await *w.irecv(1, kAnySource, kAnyTag, MsgView{64, 0, 0});
    flag = true;
  }(world, got));
  cluster->engine().spawn([](World& w) -> sim::Coro {
    co_await *w.isend(0, 1, 42, MsgView{64, 0, 0});
  }(world));
  cluster->engine().run();
  EXPECT_TRUE(got);
}

TEST(World, RegistrationCostPaidOncePerBuffer) {
  auto cluster = henri_cluster();
  World world(*cluster, {{0, -1}, {1, -1}});
  std::vector<sim::Time> durations;
  cluster->engine().spawn([](World& w, std::vector<sim::Time>& d) -> sim::Coro {
    for (int i = 0; i < 3; ++i) {
      sim::Time t0 = w.engine().now();
      co_await *w.isend(0, 1, 7 + i, MsgView{1 << 20, 0, /*buffer_id=*/55});
      d.push_back(w.engine().now() - t0);
    }
  }(world, durations));
  cluster->engine().spawn([](World& w) -> sim::Coro {
    for (int i = 0; i < 3; ++i) co_await *w.irecv(1, 0, 7 + i, MsgView{1 << 20, 0, 66});
  }(world));
  cluster->engine().run();
  ASSERT_EQ(durations.size(), 3u);
  // First send pays two registrations (~50 us + bytes); later ones do not.
  EXPECT_GT(durations[0], durations[1] + 80e-6);
  EXPECT_NEAR(durations[1], durations[2], 0.2 * durations[1]);
}

// ---- calibration against §3 ------------------------------------------------

struct LatencyFixture {
  std::unique_ptr<Cluster> cluster = henri_cluster();
  double run_latency(int comm_core, std::size_t bytes = 4, int data_numa = 0) {
    World world(*cluster, {{0, comm_core}, {1, comm_core}});
    PingPongOptions opt;
    opt.bytes = bytes;
    opt.iterations = 30;
    opt.data_numa_a = data_numa;
    opt.data_numa_b = data_numa;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster->engine().run();
    return median(pp.latencies());
  }
};

TEST(Calibration, QuietLatencyNearNicMatchesPaper) {
  LatencyFixture f;
  // Comm thread on NUMA 0 (NIC side): paper reports 1.39 us.
  double lat = f.run_latency(/*comm_core=*/8);
  EXPECT_GT(lat, 1.1e-6);
  EXPECT_LT(lat, 1.7e-6);
}

TEST(Calibration, QuietLatencyFarFromNicMatchesPaper) {
  LatencyFixture f;
  // Comm thread on the last core (socket 1): paper reports 1.67 us.
  double lat = f.run_latency(/*comm_core=*/35);
  EXPECT_GT(lat, 1.4e-6);
  EXPECT_LT(lat, 2.0e-6);
  // And near < far.
  LatencyFixture g;
  EXPECT_LT(g.run_latency(8), lat);
}

TEST(Calibration, PinnedCoreFrequencyMovesLatencyAsFig1a) {
  // 2300 MHz -> ~1.8 us; 1000 MHz -> ~3.1 us (far placement, as Fig. 1).
  auto run_pinned = [](double hz) {
    auto cluster = henri_cluster();
    for (int n = 0; n < 2; ++n) cluster->machine(n).governor().pin_core_freq(hz);
    World world(*cluster, {{0, 35}, {1, 35}});
    PingPongOptions opt;
    opt.bytes = 4;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster->engine().run();
    return median(pp.latencies());
  };
  double fast = run_pinned(2.3e9);
  double slow = run_pinned(1.0e9);
  EXPECT_NEAR(fast, 1.8e-6, 0.25e-6);
  EXPECT_NEAR(slow, 3.1e-6, 0.4e-6);
  EXPECT_GT(slow / fast, 1.6);  // paper: +72%
}

TEST(Calibration, AsymptoticBandwidthMatchesFig1b) {
  auto run_bw = [](double uncore_hz) {
    auto cluster = henri_cluster();
    if (uncore_hz > 0)
      for (int n = 0; n < 2; ++n) cluster->machine(n).governor().pin_uncore_freq(uncore_hz);
    World world(*cluster, {{0, 35}, {1, 35}});
    PingPongOptions opt;
    opt.bytes = 64 << 20;
    opt.iterations = 6;
    opt.warmup = 2;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster->engine().run();
    return median(pp.bandwidths());
  };
  double bw_max = run_bw(2.4e9);
  double bw_min = run_bw(1.2e9);
  // Paper: 10.5 GB/s vs 10.1 GB/s.
  EXPECT_NEAR(bw_max, 10.5e9, 0.6e9);
  EXPECT_NEAR(bw_min, 10.1e9, 0.6e9);
  EXPECT_GT(bw_max, bw_min);
}

TEST(Calibration, UncoreBarelyMovesLatency) {
  // Fig. 1a: +5% when changing only the uncore, vs +72% for the core.
  auto run_lat = [](double uncore_hz) {
    auto cluster = henri_cluster();
    for (int n = 0; n < 2; ++n) {
      cluster->machine(n).governor().pin_core_freq(2.3e9);
      cluster->machine(n).governor().pin_uncore_freq(uncore_hz);
    }
    World world(*cluster, {{0, 35}, {1, 35}});
    PingPongOptions opt;
    opt.bytes = 4;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster->engine().run();
    return median(pp.latencies());
  };
  double hi = run_lat(2.4e9);
  double lo = run_lat(1.2e9);
  EXPECT_GT(lo, hi);
  EXPECT_LT((lo - hi) / hi, 0.10);
}

TEST(Calibration, SendStatsAccumulate) {
  auto cluster = henri_cluster();
  World world(*cluster, {{0, -1}, {1, -1}});
  PingPongOptions opt;
  opt.bytes = 1 << 20;
  opt.iterations = 5;
  opt.warmup = 1;
  PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster->engine().run();
  const auto& stats = world.send_stats(0);
  EXPECT_EQ(stats.bytes, 6.0 * (1 << 20));
  EXPECT_GT(stats.sending_bw(), 1e9);
}

TEST(Calibration, MessageSizeSweepIsMonotoneInTime) {
  // One-way time must be non-decreasing with message size, and bandwidth
  // must approach the asymptote from below.
  auto cluster = henri_cluster();
  World world(*cluster, {{0, 35}, {1, 35}});
  double prev_lat = 0.0;
  int tag = 100;
  for (std::size_t bytes : {4u, 64u, 1024u, 16384u, 262144u, 4u << 20}) {
    PingPongOptions opt;
    opt.bytes = bytes;
    opt.iterations = 8;
    opt.warmup = 2;
    opt.tag = tag;
    tag += 10;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster->engine().run();
    double lat = median(pp.latencies());
    EXPECT_GT(lat, prev_lat * 0.98) << bytes;
    prev_lat = lat;
  }
}

}  // namespace
}  // namespace cci::mpi
