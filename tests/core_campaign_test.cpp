// Campaign engine: typed multi-axis expansion, deterministic seeding,
// parallel == serial bitwise, content-addressed caching, sharding.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "kernels/stream.hpp"
#include "obs/metrics.hpp"

namespace cci::core {
namespace {

Scenario quick_base() {
  Scenario s;
  s.kernel = kernels::triad_traits();
  s.message_bytes = 4;
  s.pingpong_iterations = 2;
  s.pingpong_warmup = 0;
  s.compute_repetitions = 1;
  s.target_pass_seconds = 0.002;
  return s;
}

Campaign quick_campaign(SeedPolicy policy = SeedPolicy::kPerPoint) {
  Campaign c("test_campaign", SweepSpec(quick_base())
                                  .seed_policy(policy)
                                  .cores("cores", {0, 2, 4})
                                  .message_bytes("msg_bytes", {4, 65536}));
  c.column("lat_us", Campaign::latency_together_us())
      .column("bw_ratio", Campaign::bandwidth_ratio());
  return c;
}

CampaignOptions opts(int jobs, std::string cache_dir = "", int shard_index = 0,
                     int shard_count = 1) {
  CampaignOptions o;
  o.jobs = jobs;
  o.cache_dir = std::move(cache_dir);
  o.shard_index = shard_index;
  o.shard_count = shard_count;
  return o;
}

/// Unique per-test scratch directory under the system tmp dir.
std::string scratch_dir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("cci_campaign_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(SweepSpec, ExpandsRowMajorWithTypedLabels) {
  auto points = quick_campaign().spec().expand();
  ASSERT_EQ(points.size(), 6u);
  // First axis (cores) slowest, second (msg_bytes) fastest.
  EXPECT_EQ(points[0].labels, (std::vector<std::string>{"0", "4"}));
  EXPECT_EQ(points[1].labels, (std::vector<std::string>{"0", "65536"}));
  EXPECT_EQ(points[2].labels, (std::vector<std::string>{"2", "4"}));
  EXPECT_EQ(points[5].labels, (std::vector<std::string>{"4", "65536"}));
  // Native types survive: no double round-trip on the size_t axis.
  EXPECT_EQ(points[1].scenario.message_bytes, 65536u);
  EXPECT_EQ(points[5].scenario.computing_cores, 4);
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);
}

TEST(SweepSpec, LargeSizesDoNotTruncate) {
  // The old double-typed Sweep axis could not represent every size_t; the
  // typed axis must hand back exactly what was declared.
  const std::size_t big = (1ull << 53) + 1;  // not representable in double
  SweepSpec spec(quick_base());
  spec.message_bytes("msg_bytes", {big});
  auto points = spec.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].scenario.message_bytes, big);
}

TEST(SweepSpec, PerPointSeedsAreStableAndDistinct) {
  auto points = quick_campaign(SeedPolicy::kPerPoint).spec().expand();
  std::set<std::uint64_t> seeds;
  for (const auto& p : points) {
    EXPECT_EQ(p.scenario.seed, mix_seed(quick_base().seed, p.index));
    seeds.insert(p.scenario.seed);
  }
  EXPECT_EQ(seeds.size(), points.size());  // no collisions on this grid

  auto fixed = quick_campaign(SeedPolicy::kFixed).spec().expand();
  for (const auto& p : fixed) EXPECT_EQ(p.scenario.seed, quick_base().seed);
}

TEST(Campaign, ParallelRunIsBitwiseIdenticalToSerial) {
  Campaign c = quick_campaign();
  CampaignEngine serial(opts(1));
  CampaignEngine parallel(opts(8));
  CampaignRun a = serial.run(c);
  CampaignRun b = parallel.run(c);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i)
    for (std::size_t j = 0; j < a.values[i].size(); ++j)
      EXPECT_EQ(a.values[i][j], b.values[i][j]) << "point " << i << " col " << j;

  std::ostringstream ta, tb;
  a.table(c).print(ta);
  b.table(c).print(tb);
  EXPECT_EQ(ta.str(), tb.str());
}

TEST(Campaign, ParallelRunMergesWorkerMetricsDeterministically) {
  obs::Registry& reg = obs::Registry::process();
  reg.set_enabled(true);
  Campaign c = quick_campaign();

  reg.reset();
  CampaignEngine(opts(1)).run(c);
  const double serial_events = reg.counter("sim.engine.events_dispatched").value();

  reg.reset();
  CampaignEngine(opts(8)).run(c);
  const double parallel_events = reg.counter("sim.engine.events_dispatched").value();

  EXPECT_GT(serial_events, 0.0);
  EXPECT_EQ(serial_events, parallel_events);
  reg.set_enabled(false);
  reg.reset();
}

TEST(Campaign, WarmCacheExecutesZeroPointsWithIdenticalTable) {
  const std::string dir = scratch_dir("warm");
  Campaign c = quick_campaign();

  CampaignEngine cold(opts(2, dir));
  CampaignRun first = cold.run(c);
  EXPECT_EQ(first.executed, 6u);
  EXPECT_EQ(first.cached, 0u);

  CampaignEngine warm(opts(2, dir));
  CampaignRun second = warm.run(c);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.cached, 6u);
  EXPECT_EQ(warm.points_executed(), 0u);

  std::ostringstream ta, tb;
  first.table(c).print(ta);
  second.table(c).print(tb);
  EXPECT_EQ(ta.str(), tb.str());
  std::filesystem::remove_all(dir);
}

TEST(Campaign, ShardsPartitionTheGridAndUnionToTheFullRun) {
  Campaign c = quick_campaign();
  CampaignRun full = CampaignEngine(opts(1)).run(c);

  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (int shard = 0; shard < 3; ++shard) {
    CampaignEngine engine(opts(1, "", shard, 3));
    CampaignRun run = engine.run(c);
    EXPECT_EQ(run.grid_total, full.points.size());
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      auto [it, inserted] = seen.insert(run.points[i].index);
      EXPECT_TRUE(inserted) << "point " << run.points[i].index << " in two shards";
      // Shard values match the full run bitwise.
      EXPECT_EQ(run.values[i], full.values[run.points[i].index]);
    }
    total += run.points.size();
  }
  EXPECT_EQ(total, full.points.size());
  EXPECT_EQ(seen.size(), full.points.size());
}

TEST(Campaign, ShardedCacheWarmsTheUnsharededRun) {
  const std::string dir = scratch_dir("shards");
  Campaign c = quick_campaign();
  for (int shard = 0; shard < 2; ++shard) {
    CampaignEngine engine(opts(2, dir, shard, 2));
    CampaignRun run = engine.run(c);
    EXPECT_EQ(run.cached, 0u);
  }
  CampaignEngine merged(opts(1, dir));
  CampaignRun run = merged.run(c);
  EXPECT_EQ(run.executed, 0u);
  EXPECT_EQ(run.cached, 6u);
  std::filesystem::remove_all(dir);
}

TEST(Campaign, CacheKeySeparatesScenariosColumnsAndEvaluators) {
  Campaign c = quick_campaign();
  auto points = c.spec().expand();
  std::set<std::uint64_t> keys;
  for (const auto& p : points) keys.insert(cache_key(c, p));
  EXPECT_EQ(keys.size(), points.size());  // distinct scenarios -> distinct keys

  // Same grid, different column set -> different keys.
  Campaign other("test_campaign", SweepSpec(quick_base())
                                      .cores("cores", {0, 2, 4})
                                      .message_bytes("msg_bytes", {4, 65536}));
  other.column("stall", Campaign::stall_fraction());
  EXPECT_NE(cache_key(c, points[0]), cache_key(other, other.spec().expand()[0]));

  // Same grid and columns, custom evaluator -> different keys.
  Campaign custom = quick_campaign();
  custom.evaluator("custom.v1",
                   [](const SweepPoint&) { return std::vector<double>{0.0, 0.0}; });
  EXPECT_NE(cache_key(c, points[0]), cache_key(custom, points[0]));
}

TEST(Campaign, CustomEvaluatorRunsInsteadOfTheLab) {
  Campaign c("custom", SweepSpec(quick_base()).cores("cores", {1, 2, 3}));
  c.column("double_cores", Campaign::Metric{});
  c.evaluator("doubler.v1", [](const SweepPoint& p) {
    return std::vector<double>{2.0 * p.numeric[0]};
  });
  CampaignRun run = CampaignEngine(opts(2)).run(c);
  ASSERT_EQ(run.values.size(), 3u);
  EXPECT_EQ(run.values[0][0], 2.0);
  EXPECT_EQ(run.values[1][0], 4.0);
  EXPECT_EQ(run.values[2][0], 6.0);
}

TEST(Campaign, TimelineOffKeepsEveryRunTimelineFree) {
  Campaign c = quick_campaign();
  CampaignRun run = CampaignEngine(opts(2)).run(c);
  EXPECT_TRUE(run.timelines.empty());
  std::ostringstream os;
  run.write_timeline_csv(os, "test_campaign");
  EXPECT_TRUE(os.str().empty());
}

TEST(Campaign, TimelineCsvIsBitwiseIdenticalAcrossJobs) {
  Campaign c = quick_campaign();
  auto run_with_jobs = [&](int jobs) {
    CampaignOptions o = opts(jobs);
    o.timeline_period = 1e-4;
    CampaignRun run = CampaignEngine(o).run(c);
    std::ostringstream os;
    run.write_timeline_csv(os, "test_campaign");
    return std::pair<std::string, std::size_t>(os.str(), run.timelines.size());
  };
  auto [serial, n_serial] = run_with_jobs(1);
  auto [parallel, n_parallel] = run_with_jobs(8);
  EXPECT_EQ(n_serial, 6u);
  EXPECT_EQ(n_parallel, 6u);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // The header appears exactly once, up front.
  EXPECT_EQ(serial.rfind("campaign,point,time,series,value\n", 0), 0u);
  EXPECT_EQ(serial.find("campaign,point,time,series,value\n", 1), std::string::npos);
}

TEST(Campaign, ShardTimelinesMatchTheFullRunPerPoint) {
  Campaign c = quick_campaign();
  auto with_timeline = [&](int shard_index, int shard_count) {
    CampaignOptions o = opts(1, "", shard_index, shard_count);
    o.timeline_period = 1e-4;
    return CampaignEngine(o).run(c);
  };
  CampaignRun full = with_timeline(0, 1);
  ASSERT_EQ(full.timelines.size(), full.points.size());
  std::size_t covered = 0;
  for (int shard = 0; shard < 3; ++shard) {
    CampaignRun run = with_timeline(shard, 3);
    ASSERT_EQ(run.timelines.size(), run.points.size());
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      std::ostringstream shard_csv, full_csv;
      run.timelines[i].write_csv(shard_csv);
      full.timelines[run.points[i].index].write_csv(full_csv);
      EXPECT_EQ(shard_csv.str(), full_csv.str())
          << "point " << run.points[i].index << " differs in shard " << shard;
      ++covered;
    }
  }
  EXPECT_EQ(covered, full.points.size());
}

TEST(Campaign, TimelineRunsLeaveTheProcessRegistryAlone) {
  // A disabled process registry must stay untouched even though timeline
  // points run against enabled per-point registries (merge_from would
  // otherwise leak raw values through the disabled switch).
  obs::Registry& reg = obs::Registry::process();
  reg.reset();
  ASSERT_FALSE(reg.enabled());
  Campaign c = quick_campaign();
  CampaignOptions o = opts(2);
  o.timeline_period = 1e-4;
  CampaignEngine(o).run(c);
  EXPECT_DOUBLE_EQ(reg.counter("sim.engine.events_dispatched").value(), 0.0);
}

Campaign attribution_campaign() {
  Campaign c("attrib_campaign",
             SweepSpec(quick_base()).cores("cores", {0, 2}));
  c.with_attribution();
  c.column("comm_slow_by_compute", Campaign::comm_slowdown_from_compute())
      .column("compute_slow_by_comm", Campaign::compute_slowdown_from_comm())
      .column("comm_frac", Campaign::comm_contended_fraction())
      .column("compute_frac", Campaign::compute_contended_fraction());
  return c;
}

TEST(Campaign, AttributionColumnsAreDeterministicAndSane) {
  Campaign c = attribution_campaign();
  CampaignRun a = CampaignEngine(opts(1)).run(c);
  CampaignRun b = CampaignEngine(opts(8)).run(c);
  ASSERT_EQ(a.values.size(), 2u);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(a.values[i].size(), 4u);
    for (std::size_t j = 0; j < a.values[i].size(); ++j) {
      EXPECT_EQ(a.values[i][j], b.values[i][j]) << "point " << i << " col " << j;
      EXPECT_GE(a.values[i][j], 0.0);
    }
  }
  // cores=0: the side-by-side phase has no computation, so communication
  // cannot be slowed by the compute class.
  EXPECT_EQ(a.values[0][0], 0.0);
  // contended fractions are fractions.
  EXPECT_LE(a.values[1][2], 1.0);
  EXPECT_LE(a.values[1][3], 1.0);
}

TEST(Campaign, AttributionFoldsIntoTheCacheKey) {
  Campaign plain = quick_campaign();
  Campaign attrib = quick_campaign();
  attrib.with_attribution();
  auto points = plain.spec().expand();
  EXPECT_NE(cache_key(plain, points[0]), cache_key(attrib, points[0]));
}

TEST(Campaign, SeedOverrideChangesTheMixBase) {
  SweepSpec spec(quick_base());
  spec.cores("cores", {0, 1});
  const std::uint64_t other = 1234;
  auto def = spec.expand();
  auto ovr = spec.expand(&other);
  ASSERT_EQ(def.size(), ovr.size());
  EXPECT_NE(def[0].scenario.seed, ovr[0].scenario.seed);
  EXPECT_EQ(ovr[0].scenario.seed, mix_seed(other, 0));
}

TEST(Campaign, StaleCacheTmpFilesAreSweptOnOpen) {
  const std::string dir = scratch_dir("tmpsweep");
  Campaign c = quick_campaign();
  CampaignEngine(opts(1, dir)).run(c);  // warm the cache

  // Plant litter from writers that died between write and rename: one
  // modern unique-suffix tmp and one legacy shared-name tmp.
  const auto stale1 = std::filesystem::path(dir) / "00000000deadbeef.json.tmp.4242.7";
  const auto stale2 = std::filesystem::path(dir) / "00000000deadbeef.json.tmp";
  for (const auto& p : {stale1, stale2}) {
    std::ofstream os(p);
    os << "half-written";
  }

  obs::Registry& reg = obs::Registry::process();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();
  CampaignRun run = CampaignEngine(opts(1, dir)).run(c);
  EXPECT_EQ(run.executed, 0u);  // litter never shadows real entries
  EXPECT_EQ(run.cached, 6u);
  EXPECT_FALSE(std::filesystem::exists(stale1));
  EXPECT_FALSE(std::filesystem::exists(stale2));
  EXPECT_EQ(reg.counter("campaign.cache_tmp_swept").value(), 2.0);
  reg.reset();
  reg.set_enabled(was_enabled);
  std::filesystem::remove_all(dir);
}

TEST(Campaign, ConcurrentCacheWritersUseUniqueTmpsAndConverge) {
  const std::string dir = scratch_dir("tmprace");
  Campaign c = quick_campaign();
  obs::Registry& reg = obs::Registry::process();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(false);  // keep the shared registry write-free under races
  reg.counter("campaign.cache_tmp_swept");  // pre-create: no concurrent insert
  CampaignRun ref = CampaignEngine(opts(1)).run(c);  // also pre-warms metric names

  // Four engines filling the same cache dir at once.  Every writer renames
  // its own unique tmp, so published entries are always one writer's
  // complete bytes no matter how the stores interleave.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&c, &dir] {
      obs::Registry scratch;  // sim metrics stay off the process registry
      obs::Registry::ScopedThreadLocal tls(scratch);
      CampaignEngine(opts(1, dir)).run(c);
    });
  for (auto& t : writers) t.join();

  // A sibling's stale-tmp sweep may race a live writer's rename (documented
  // best-effort: that point just stays uncached), so top up once serially
  // before asserting a fully warm cache.
  CampaignEngine(opts(1, dir)).run(c);
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos) << entry.path();
  CampaignRun cached = CampaignEngine(opts(1, dir)).run(c);
  EXPECT_EQ(cached.executed, 0u);
  EXPECT_EQ(cached.cached, 6u);
  ASSERT_EQ(cached.values.size(), ref.values.size());
  for (std::size_t i = 0; i < ref.values.size(); ++i)
    EXPECT_EQ(cached.values[i], ref.values[i]) << "point " << i;
  reg.set_enabled(was_enabled);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cci::core
