// InterferenceProfiler: exact victim/aggressor decomposition of flow-model
// busy time (sim/attribution.hpp).  Every scenario is fluid-exact, so the
// expectations are closed-form, and the identity
//   busy[v] == isolated[v] + sum_a contended[v][a]
// must hold to rounding.
#include <gtest/gtest.h>

#include "sim/flow_model.hpp"

namespace cci::sim {
namespace {

ActivitySpec classed(Resource* r, double work, ProfileClass pc, double demand = 1.0) {
  ActivitySpec spec;
  spec.work = work;
  spec.demands = {{r, demand}};
  spec.profile_class = pc;
  return spec;
}

void expect_identity(const AttributionReport& rep) {
  for (std::size_t v = 0; v < kProfileClasses; ++v) {
    double sum = rep.isolated[v];
    for (std::size_t a = 0; a < kProfileClasses; ++a) sum += rep.contended[v][a];
    EXPECT_NEAR(rep.busy[v], sum, 1e-9) << "class " << profile_class_name(
        static_cast<ProfileClass>(v));
  }
}

TEST(Attribution, LoneFlowIsFullyIsolated) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 10.0);
  model.start(classed(pipe, 50.0, kClassComm));
  engine.run();
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassComm], 5.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassComm], 5.0, 1e-9);
  for (std::size_t a = 0; a < kProfileClasses; ++a)
    EXPECT_NEAR(rep.contended[kClassComm][a], 0.0, 1e-12);
  EXPECT_NEAR(rep.total_slowdown(kClassComm), 1.0, 1e-9);
  EXPECT_NEAR(rep.contended_fraction(kClassComm), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.busy[kClassCompute], 0.0);
  EXPECT_NEAR(rep.total_slowdown(kClassCompute), 1.0, 1e-12);  // idle: no slowdown
  expect_identity(rep);
}

TEST(Attribution, EqualShareChargesTheOtherClass) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 10.0);
  model.start(classed(pipe, 50.0, kClassComm));
  model.start(classed(pipe, 50.0, kClassCompute));
  engine.run();
  // Both run [0,10] at rate 5 with solo rate 10: half the busy time is
  // isolated-equivalent, half is contention charged entirely to the other
  // class (the victim's own class holds nothing else on the bottleneck).
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassComm], 10.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassComm], 5.0, 1e-9);
  EXPECT_NEAR(rep.contended[kClassComm][kClassCompute], 5.0, 1e-9);
  EXPECT_NEAR(rep.contended[kClassComm][kClassComm], 0.0, 1e-12);
  EXPECT_NEAR(rep.contended[kClassCompute][kClassComm], 5.0, 1e-9);
  EXPECT_NEAR(rep.slowdown(kClassComm, kClassCompute), 1.0, 1e-9);
  EXPECT_NEAR(rep.total_slowdown(kClassComm), 2.0, 1e-9);
  EXPECT_NEAR(rep.contended_fraction(kClassComm), 0.5, 1e-9);
  expect_identity(rep);
}

TEST(Attribution, SelfContentionStaysInClass) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 10.0);
  model.start(classed(pipe, 50.0, kClassCompute));
  model.start(classed(pipe, 50.0, kClassCompute));
  engine.run();
  const AttributionReport& rep = profiler.report();
  // Two compute flows: each is slowed only by its own class.
  EXPECT_NEAR(rep.busy[kClassCompute], 20.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassCompute], 10.0, 1e-9);
  EXPECT_NEAR(rep.contended[kClassCompute][kClassCompute], 10.0, 1e-9);
  EXPECT_NEAR(rep.contended[kClassCompute][kClassComm], 0.0, 1e-12);
  expect_identity(rep);
}

TEST(Attribution, AsymmetricDemandsWeightTheCharge) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 12.0);
  // Max-min equalizes rates at 3: A (demand 1) uses 3 of 12, B (demand 3)
  // uses 9 of 12.  Solo rates: A = 12, B = 4.
  model.start(classed(pipe, 30.0, kClassComm, /*demand=*/1.0));
  model.start(classed(pipe, 30.0, kClassCompute, /*demand=*/3.0));
  engine.run();
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassComm], 10.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassComm], 2.5, 1e-9);  // 10 * (3/12)
  EXPECT_NEAR(rep.contended[kClassComm][kClassCompute], 7.5, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassCompute], 7.5, 1e-9);  // 10 * (3/4)
  EXPECT_NEAR(rep.contended[kClassCompute][kClassComm], 2.5, 1e-9);
  EXPECT_NEAR(rep.slowdown(kClassComm, kClassCompute), 3.0, 1e-9);
  EXPECT_NEAR(rep.slowdown(kClassCompute, kClassComm), 2.5 / 7.5, 1e-9);
  expect_identity(rep);
}

TEST(Attribution, RateCappedFlowIsNotContendedByItsCap) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 100.0);
  ActivitySpec spec = classed(pipe, 30.0, kClassComm);
  spec.rate_cap = 3.0;
  model.start(spec);
  engine.run();
  // The cap is part of the flow's own isolated profile: running exactly at
  // solo rate means zero contention, even though utilization is 3%.
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassComm], 10.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassComm], 10.0, 1e-9);
  EXPECT_NEAR(rep.contended_fraction(kClassComm), 0.0, 1e-12);
  expect_identity(rep);
}

TEST(Attribution, CapacityChangeReusesTheSoloBaseline) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 10.0);
  model.start(classed(pipe, 100.0, kClassCompute));
  engine.call_at(4.0, [&] { pipe->set_capacity(2.0); });
  engine.run();
  // DVFS-style capacity drops redefine the isolated baseline too: a lone
  // flow on a slower resource is slower, not contended.
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassCompute], 34.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassCompute], 34.0, 1e-9);
  EXPECT_NEAR(rep.contended_fraction(kClassCompute), 0.0, 1e-12);
  expect_identity(rep);
}

TEST(Attribution, LateArrivalSplitsThePhases) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  model.set_profiler(&profiler);
  Resource* pipe = model.add_resource("pipe", 10.0);
  model.start(classed(pipe, 100.0, kClassComm));
  engine.call_at(5.0, [&] { model.start(classed(pipe, 25.0, kClassCompute)); });
  engine.run();
  // comm: [0,5] alone (isolated 5), [5,10] shared at rate 5 (isolated 2.5,
  // contended 2.5 charged to compute), [10,12.5] alone again.
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassComm], 12.5, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassComm], 10.0, 1e-9);
  EXPECT_NEAR(rep.contended[kClassComm][kClassCompute], 2.5, 1e-9);
  // compute: [5,10] at rate 5 with solo 10.
  EXPECT_NEAR(rep.busy[kClassCompute], 5.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassCompute], 2.5, 1e-9);
  EXPECT_NEAR(rep.contended[kClassCompute][kClassComm], 2.5, 1e-9);
  expect_identity(rep);
}

TEST(Attribution, DetachFreezesTheReportAndAccumulationResumes) {
  Engine engine;
  FlowModel model(engine);
  InterferenceProfiler profiler;
  Resource* pipe = model.add_resource("pipe", 10.0);
  model.start(classed(pipe, 200.0, kClassComm));
  engine.call_at(2.0, [&] { model.set_profiler(&profiler); });
  engine.call_at(8.0, [&] { model.set_profiler(nullptr); });
  engine.run();  // flow finishes at t=20; only [2,8] is observed
  const AttributionReport& rep = profiler.report();
  EXPECT_NEAR(rep.busy[kClassComm], 6.0, 1e-9);
  EXPECT_NEAR(rep.isolated[kClassComm], 6.0, 1e-9);
  profiler.reset();
  EXPECT_DOUBLE_EQ(profiler.report().busy[kClassComm], 0.0);
}

TEST(Attribution, ReportsAccumulateAcrossRuns) {
  AttributionReport a{};
  AttributionReport b{};
  a.busy[kClassComm] = 2.0;
  a.isolated[kClassComm] = 1.0;
  a.contended[kClassComm][kClassCompute] = 1.0;
  b.busy[kClassComm] = 4.0;
  b.isolated[kClassComm] = 4.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.busy[kClassComm], 6.0);
  EXPECT_DOUBLE_EQ(a.isolated[kClassComm], 5.0);
  EXPECT_DOUBLE_EQ(a.contended[kClassComm][kClassCompute], 1.0);
  EXPECT_NEAR(a.total_slowdown(kClassComm), 1.2, 1e-12);
}

}  // namespace
}  // namespace cci::sim
