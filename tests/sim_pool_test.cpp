// Hot-path memory pools: slab recycling, intrusive refcounts, frame arena,
// label interning, and the headline property — a steady-state event loop
// that performs zero heap allocations.
//
// This binary replaces the global operator new/delete with counting
// versions (tests are one binary per file, so the override is private to
// this suite); the steady-state test measures the delta across a warmed
// engine.run() and requires it to be exactly zero.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "sim/flow_model.hpp"
#include "sim/pool.hpp"
#include "sim/sync.hpp"

// GCC cannot see that the counting operator new below is malloc-backed, so
// it flags the matching std::free() — and with the replacement visible it
// also trips a known vector::resize -Warray-bounds false positive.  Both are
// artifacts of the counting shim, not real bugs.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace {
std::uint64_t g_allocs = 0;  // bumped by every global operator new below
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  const std::size_t size = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, size != 0 ? size : align)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace cci::sim {
namespace {

struct Obj : RcPooled<Obj> {
  explicit Obj(int x) : v(x) {}
  int v;
};

// ---- SlabPool / RcPtr -------------------------------------------------------

TEST(SlabPool, RecyclesFreedObjects) {
  SlabPool<Obj> pool("test");
  void* first = nullptr;
  {
    RcPtr<Obj> a = pool.make(1);
    first = a.get();
  }
  RcPtr<Obj> b = pool.make(2);
  EXPECT_EQ(static_cast<void*>(b.get()), first);  // free list handed it back
  EXPECT_EQ(pool.stats().allocated, 2u);
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().live, 1u);
  EXPECT_EQ(pool.stats().slabs, 1u);
}

TEST(SlabPool, RefcountKeepsObjectsAliveAcrossCopies) {
  SlabPool<Obj> pool("test");
  RcPtr<Obj> a = pool.make(7);
  RcPtr<Obj> b = a;           // copy bumps
  RcPtr<Obj> c = std::move(a);  // move transfers
  EXPECT_FALSE(a);
  a = b;
  b.reset();
  c.reset();
  ASSERT_TRUE(a);
  EXPECT_EQ(a->v, 7);
  EXPECT_EQ(pool.stats().live, 1u);
  a.reset();
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(SlabPool, ObjectsMayOutliveThePool) {
  // The blackout-cancel path can leave an ActivityPtr alive after its
  // FlowModel (and pool) died; orphaned slabs are freed by the last release.
  RcPtr<Obj> survivor;
  {
    SlabPool<Obj> pool("test");
    survivor = pool.make(42);
    RcPtr<Obj> dies_with_pool = pool.make(43);
  }
  ASSERT_TRUE(survivor);
  EXPECT_EQ(survivor->v, 42);  // ASan: the slab must still be live memory
  survivor.reset();            // last ref frees the orphaned slab
}

TEST(SlabPool, DisabledPoolsFallBackToHeap) {
  const bool was = pools_enabled();
  set_pools_enabled(false);
  SlabPool<Obj> pool("test");
  RcPtr<Obj> heap_obj = pool.make(1);
  set_pools_enabled(true);
  RcPtr<Obj> pooled_obj = pool.make(2);
  // Provenance is per object: the heap one is plain-deleted, the pooled one
  // recycles, regardless of the flag's current value.
  set_pools_enabled(false);
  heap_obj.reset();
  pooled_obj.reset();
  set_pools_enabled(was);
  EXPECT_EQ(pool.stats().allocated, 2u);
  EXPECT_EQ(pool.stats().live, 0u);
}

// ---- SmallVec ---------------------------------------------------------------

TEST(SmallVec, InlineThenSpill) {
  SmallVec<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  const std::uint64_t before = g_allocs;
  EXPECT_EQ(v.capacity(), 2u);
  v.push_back(3);  // spills to the heap
  EXPECT_GT(g_allocs, before);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVec, CopyMoveAndInitList) {
  SmallVec<std::string, 2> v = {"a", "b", "c"};
  SmallVec<std::string, 2> copy(v);
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[2], "c");
  SmallVec<std::string, 2> moved(std::move(copy));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0], "a");
  v = {"x"};
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "x");
  v = moved;  // copy-assign over spilled storage
  EXPECT_EQ(v.size(), 3u);
  v.pop_back();
  EXPECT_EQ(v.back(), "b");
  v.clear();
  EXPECT_TRUE(v.empty());
}

// ---- label interning --------------------------------------------------------

TEST(SimLabel, InternRoundTrip) {
  Engine engine;
  const LabelId a = engine.intern("alpha");
  const LabelId b = engine.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(engine.intern("alpha"), a);  // stable id for the same text
  EXPECT_EQ(engine.label_str(a), "alpha");
  EXPECT_EQ(engine.label_str(b), "beta");
  EXPECT_EQ(engine.intern(""), kNoLabel);
  EXPECT_EQ(engine.label_str(kNoLabel), "");
}

// ---- recycling through the engine ------------------------------------------

Coro churn(Engine& engine, FlowModel& model, Resource* r, LabelId label, int iters) {
  for (int i = 0; i < iters; ++i) {
    ActivitySpec spec;
    spec.label = label;
    spec.work = 1.0;
    spec.demands.push_back({r, 1.0});
    co_await *model.start(spec);
  }
  (void)engine;
}

TEST(SimPool, ActivitiesStatesAndFramesRecycleAcrossRuns) {
  obs::Registry::global().set_enabled(true);
  obs::Registry::global().reset();
  {
    Engine engine;
    FlowModel model(engine);
    Resource* pipe = model.add_resource("pipe", 4.0);
    const LabelId label = engine.intern("churn");
    engine.spawn(churn(engine, model, pipe, label, 50));
    engine.run();
    engine.spawn(churn(engine, model, pipe, label, 50));
    engine.run();
  }
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  obs::Registry::global().set_enabled(false);
  // 100 sequential activities: the first bump-allocates slab space, every
  // later one is served from the free list.
  EXPECT_EQ(snap.value_of("sim.pool.activity.allocated"), 100.0);
  EXPECT_GE(snap.value_of("sim.pool.activity.reused"), 99.0);
  EXPECT_EQ(snap.value_of("sim.pool.activity.slabs"), 1.0);
  EXPECT_EQ(snap.value_of("sim.pool.activity.live"), 0.0);
  // The second spawn reuses the first run's completion record and frame.
  EXPECT_EQ(snap.value_of("sim.pool.process_state.allocated"), 2.0);
  EXPECT_GE(snap.value_of("sim.pool.process_state.reused"), 1.0);
  EXPECT_EQ(snap.value_of("sim.pool.process_state.live"), 0.0);
  EXPECT_GE(snap.value_of("sim.pool.frames.reused"), 1.0);
}

TEST(SimPool, WhenAnyAbandonmentReleasesEverything) {
  // The PR 3 blackout-cancel shape: a process waits on when_any(done,
  // abort), the abort fires first, the activity is cancelled (done never
  // set) and dropped.  The wait node parked on the never-fired event and
  // the activity itself must both return to their pools.
  obs::Registry::global().set_enabled(true);
  obs::Registry::global().reset();
  bool resumed = false;
  {
    Engine engine;
    FlowModel model(engine);
    Resource* pipe = model.add_resource("pipe", 1.0);
    ActivityPtr act;
    OneShotEvent abort(engine);
    struct Body {
      static Coro run(Engine& e, FlowModel& m, Resource* pipe, ActivityPtr& act,
                      OneShotEvent& abort, bool& resumed) {
        ActivitySpec spec;
        spec.work = 1000.0;  // would finish at t=1000; abort wins at t=0.5
        spec.demands.push_back({pipe, 1.0});
        act = m.start(spec);
        WhenAny done_or_abort = when_any(e, {&act->done(), &abort});
        co_await done_or_abort;
        resumed = true;
      }
    };
    engine.spawn(Body::run(engine, model, pipe, act, abort, resumed));
    engine.call_at(0.5, [&] { abort.set(); });
    engine.call_at(0.6, [&] {
      model.cancel(act);
      act.reset();  // last reference: activity (and its watcher) released
    });
    engine.run();
    EXPECT_TRUE(resumed);
    EXPECT_EQ(engine.live_processes(), 0);
  }
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  obs::Registry::global().set_enabled(false);
  EXPECT_EQ(snap.value_of("sim.pool.activity.live"), 0.0);
  EXPECT_EQ(snap.value_of("sim.pool.wait_node.live"), 0.0);
  EXPECT_EQ(snap.value_of("sim.pool.process_state.live"), 0.0);
}

TEST(SimPool, SteadyStateEventLoopIsAllocationFree) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 8.0);
  const LabelId label = engine.intern("steady");
  // Warm-up: create the frame bucket, slab space, solver scratch, event-
  // queue nodes, and heat every vector to its steady-state capacity.  128
  // iterations crosses the solver's partition-rebuild threshold, so even
  // the rebuild scratch is warm before we start counting.
  engine.spawn(churn(engine, model, pipe, label, 128));
  engine.run();
  const std::uint64_t events_before = engine.events_dispatched();
  engine.spawn(churn(engine, model, pipe, label, 512));
  const std::uint64_t allocs_before = g_allocs;
  engine.run();
  const std::uint64_t allocs = g_allocs - allocs_before;
  const std::uint64_t events = engine.events_dispatched() - events_before;
  EXPECT_GT(events, 500u);
  EXPECT_EQ(allocs, 0u) << "steady-state loop allocated " << allocs << " times over "
                        << events << " events";
}

}  // namespace
}  // namespace cci::sim
