// Topology-group partitioning (sim/partition.hpp): identity degeneration,
// load balance, cut-capacity refinement, non-empty shards and determinism
// of the pure-function carve feeding FabricLab::run_sharded.
#include <gtest/gtest.h>

#include <vector>

#include "sim/partition.hpp"

namespace cci::sim {
namespace {

/// Ring of `groups` equal-load groups with unit-capacity edges — the
/// dragonfly group graph once global links are folded pairwise.
GroupGraph ring(int groups, double load = 1.0, double cap = 1.0) {
  GroupGraph g;
  g.groups = groups;
  g.load.assign(static_cast<std::size_t>(groups), load);
  for (int i = 0; i < groups; ++i)
    g.edges.push_back({i, (i + 1) % groups, cap});
  return g;
}

TEST(Partition, GroupsAtMostShardsIsTheIdentity) {
  for (int groups = 1; groups <= 4; ++groups) {
    const GroupGraph g = ring(groups);
    const std::vector<int> out = partition_groups(g, 4);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(groups));
    for (int i = 0; i < groups; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  }
}

TEST(Partition, EqualLoadRingSplitsIntoBalancedContiguousRuns) {
  const GroupGraph g = ring(16);
  const std::vector<int> out = partition_groups(g, 4);
  std::vector<double> load(4, 0.0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_GE(out[static_cast<std::size_t>(i)], 0);
    ASSERT_LT(out[static_cast<std::size_t>(i)], 4);
    load[static_cast<std::size_t>(out[static_cast<std::size_t>(i)])] += 1.0;
  }
  for (int s = 0; s < 4; ++s) EXPECT_EQ(load[static_cast<std::size_t>(s)], 4.0) << s;
  // A ring cut into 4 contiguous arcs severs exactly 4 edges.
  EXPECT_EQ(cut_capacity(g, out), 4.0);
  EXPECT_EQ(max_shard_load(g, out), 4.0);
}

TEST(Partition, NoShardLeftEmptyWhenGroupsExceedShards) {
  for (int groups : {5, 7, 9, 16, 33}) {
    for (int shards : {2, 3, 4}) {
      const GroupGraph g = ring(groups);
      const std::vector<int> out = partition_groups(g, shards);
      std::vector<int> count(static_cast<std::size_t>(shards), 0);
      for (int s : out) {
        ASSERT_GE(s, 0);
        ASSERT_LT(s, shards);
        ++count[static_cast<std::size_t>(s)];
      }
      for (int s = 0; s < shards; ++s)
        EXPECT_GT(count[static_cast<std::size_t>(s)], 0)
            << "groups=" << groups << " shards=" << shards;
    }
  }
}

TEST(Partition, SkewedLoadsKeepTheMaximumShardBounded) {
  // One heavy group (8 hosts) among seven light ones (1 host), 4 shards:
  // the heavy group dominates any shard it lands on, so the best possible
  // max load is 8; the seed must not pile light groups on top of it.
  GroupGraph g = ring(8);
  g.load[0] = 8.0;
  const std::vector<int> out = partition_groups(g, 4);
  EXPECT_LE(max_shard_load(g, out), 9.0);
  // All shards still populated.
  std::vector<int> count(4, 0);
  for (int s : out) ++count[static_cast<std::size_t>(s)];
  for (int s = 0; s < 4; ++s) EXPECT_GT(count[static_cast<std::size_t>(s)], 0) << s;
}

TEST(Partition, CarveCutsTheWeakBridgeNotTheCliques) {
  // Two 3-group cliques bridged by one thin edge: the carve should cut the
  // bridge (capacity 0.1), not a clique edge (capacity 10 each).
  GroupGraph g;
  g.groups = 6;
  g.load.assign(6, 1.0);
  for (int base : {0, 3})
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j) g.edges.push_back({base + i, base + j, 10.0});
  g.edges.push_back({2, 3, 0.1});
  const std::vector<int> out = partition_groups(g, 2);
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(out[1], out[2]);
  EXPECT_EQ(out[3], out[4]);
  EXPECT_EQ(out[4], out[5]);
  EXPECT_NE(out[0], out[3]);
  EXPECT_EQ(cut_capacity(g, out), 0.1);
}

TEST(Partition, CarveIsAPureFunctionOfTheGraph) {
  const GroupGraph g = ring(12, 2.0, 3.0);
  const std::vector<int> first = partition_groups(g, 4);
  for (int run = 0; run < 3; ++run) {
    // Rebuilt from scratch each time: no state can leak between calls.
    const GroupGraph fresh = ring(12, 2.0, 3.0);
    EXPECT_EQ(partition_groups(fresh, 4), first);
  }
}

}  // namespace
}  // namespace cci::sim
