// FabricLab::run_sharded — the cross-shard fabric simulation: thousand-node
// dragonfly carves, boundary-proxy exchange, bitwise run-to-run determinism
// (tables and timelines), serial-engine equivalence at shards == 1 and the
// degenerate shapes (single switch, adaptive routing).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fabric_lab.hpp"
#include "net/fabric_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "sim/engine.hpp"
#include "sim/flow_model.hpp"

namespace cci::core {
namespace {

JobSpec ring_job(std::string label, std::vector<int> nodes, int iterations) {
  JobSpec j;
  j.label = std::move(label);
  j.nodes = std::move(nodes);
  j.iterations = iterations;
  j.pattern = TrafficPattern::kRing;
  return j;
}

/// Two ring tenants interleaved across every node of a dragonfly — traffic
/// on every router and a dense set of cross-group globals, so any carve
/// into > 1 shard must cut links.
Scenario interleaved_rings(int groups, int routers, int hosts, int iterations) {
  Scenario s;
  s.topology = net::Topology::dragonfly(groups, routers, hosts);
  const int nodes = groups * routers * hosts;
  std::vector<int> even, odd;
  for (int n = 0; n < nodes; n += 2) even.push_back(n);
  for (int n = 1; n < nodes; n += 2) odd.push_back(n);
  s.jobs = {ring_job("even", std::move(even), iterations),
            ring_job("odd", std::move(odd), iterations)};
  return s;
}

/// Everything determinism cares about, rendered to exact text: tenant
/// tables, link tables and the shard/window/exchange counters.
std::string report_text(const FabricReport& r) {
  std::ostringstream os;
  char buf[512];
  for (const TenantReport& t : r.tenants) {
    const trace::Stats& d = t.delivery_latency;
    std::snprintf(buf, sizeof buf,
                  "tenant %s %.17g %.17g %.17g | %zu %.17g %.17g %.17g %.17g %.17g\n",
                  t.label.c_str(), t.bytes, t.finish, t.achieved_bw, d.n, d.median,
                  d.decile1, d.decile9, d.mean, d.max);
    os << buf;
  }
  for (const LinkReport& l : r.links) {
    std::snprintf(buf, sizeof buf, "link %s %.17g %.17g\n", l.name.c_str(), l.mean,
                  l.peak);
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "elapsed %.17g total %.17g routes %llu shards %d populated %d "
                "boundary %d windows %llu exchanges %llu visits %llu events %llu\n",
                r.elapsed, r.total_bytes, static_cast<unsigned long long>(r.routes),
                r.shards, r.populated_shards, r.boundary_links,
                static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.exchanges),
                static_cast<unsigned long long>(r.solver_flow_visits),
                static_cast<unsigned long long>(r.events));
  os << buf;
  return os.str();
}

TEST(FabricShard, ThousandNodeDragonflyCarvesAcrossFourShards) {
  // 16 groups x 8 routers x 8 hosts = 1024 nodes — the scale the serial
  // engine cannot carve (every flow couples through the globals).
  Scenario s = interleaved_rings(16, 8, 8, /*iterations=*/2);
  FabricLab lab(s);
  FabricReport r = lab.run_sharded(4);
  EXPECT_EQ(r.shards, 4);
  EXPECT_GT(r.populated_shards, 1);
  EXPECT_GT(r.boundary_links, 0);
  EXPECT_GT(r.windows, 1u);
  EXPECT_GT(r.exchanges, 0u);
  // Every stream delivers all its bytes regardless of the carve.
  const double per_tenant = 512.0 * 2.0 * static_cast<double>(1 << 20);
  EXPECT_EQ(r.tenant("even")->bytes, per_tenant);
  EXPECT_EQ(r.tenant("odd")->bytes, per_tenant);
  EXPECT_GT(r.routes, 0u);
  EXPECT_GT(r.solver_flow_visits, 0u);
  EXPECT_GT(r.events, 0u);
  ASSERT_EQ(r.links.size(), s.topology.links().size());
  double peak = 0.0;
  for (const LinkReport& l : r.links) peak = std::max(peak, l.peak);
  EXPECT_GT(peak, 0.0);
}

TEST(FabricShard, FourShardRunsAreBitwiseIdentical) {
  Scenario s = interleaved_rings(8, 4, 4, /*iterations=*/3);
  std::string first_text, first_timeline;
  for (int run = 0; run < 2; ++run) {
    // Shard registries inherit the coordinator registry's enabled state;
    // the sampler only sees metrics that actually record.
    obs::Registry reg;
    reg.set_enabled(true);
    obs::Registry::ScopedThreadLocal rscope(reg);
    obs::TimelineStore store;
    obs::RunSampling rs;
    rs.timeline_period = 2e-5;
    rs.timeline = &store;
    obs::ScopedRunSampling scope(rs);
    FabricLab lab(s);
    const FabricReport r = lab.run_sharded(4);
    const std::string text = report_text(r);
    std::ostringstream csv;
    store.write_csv(csv);
    if (run == 0) {
      first_text = text;
      first_timeline = csv.str();
      EXPECT_GT(store.size(), 0u);
    } else {
      EXPECT_EQ(text, first_text);
      EXPECT_EQ(csv.str(), first_timeline);
    }
  }
}

/// The shards == 1 path is the plain serial engine: no workers, proxies or
/// barriers.  Rebuild the same fluid scenario by hand on a standalone
/// Engine + FabricGraph and demand bitwise-equal delivery instants.
TEST(FabricShard, SingleShardMatchesAStandaloneSerialEngine) {
  Scenario s;
  s.topology = net::Topology::dragonfly(4, 2, 2);  // 16 nodes
  JobSpec j;
  j.label = "pair";
  j.nodes = {0, 9};  // cross-group: the full gateway route
  j.iterations = 3;
  s.jobs = {j};
  FabricLab lab(s);
  const FabricReport sharded = lab.run_sharded(1);
  EXPECT_EQ(sharded.shards, 1);
  EXPECT_EQ(sharded.populated_shards, 1);
  EXPECT_EQ(sharded.boundary_links, 0);
  EXPECT_EQ(sharded.exchanges, 0u);

  // Serial reference: one open-loop stream, injected on run_sharded()'s
  // schedule (sleep to slot i * gap, one activity over the static route).
  sim::Engine eng;
  sim::FlowModel model(eng);
  net::FabricGraph fabric(s.topology, s.network, 16);
  fabric.materialize(model);
  std::vector<int> keys;
  fabric.minimal_path(0, 9, keys);
  std::vector<double> finishes;
  const double bytes = static_cast<double>(j.message_bytes);
  const double gap = bytes / s.network.wire_bw;
  auto stream = [&](void) -> sim::Coro {
    for (int i = 0; i < 3; ++i) {
      const double due = static_cast<double>(i) * gap;
      if (eng.now() < due) co_await eng.sleep_until(due);
      sim::ActivitySpec spec;
      spec.label = eng.intern("fabric.pair");
      spec.work = bytes;
      for (int key : keys) spec.demands.push_back({fabric.at(key), 1.0});
      co_await *model.start(spec);
      finishes.push_back(eng.now());
    }
  };
  eng.spawn(stream());
  eng.run();
  ASSERT_EQ(finishes.size(), 3u);
  EXPECT_EQ(sharded.tenant("pair")->bytes, 3.0 * bytes);
  EXPECT_EQ(sharded.tenant("pair")->finish, finishes.back());  // bitwise
  EXPECT_EQ(sharded.tenant("pair")->delivery_latency.max,
            finishes.back() - 2.0 * gap);
}

TEST(FabricShard, ShardedRunDeliversTheSameBytesAsSerial) {
  Scenario s = interleaved_rings(4, 2, 2, /*iterations=*/3);
  FabricLab lab(s);
  const FabricReport serial = lab.run_sharded(1);
  const FabricReport split = lab.run_sharded(2);
  EXPECT_EQ(serial.boundary_links, 0);
  EXPECT_EQ(serial.windows, 0u);  // inline serial engine: no barriers at all
  EXPECT_EQ(split.populated_shards, 2);
  EXPECT_GT(split.boundary_links, 0);
  // Delivered bytes and routing decisions are carve-invariant; only the
  // contention model (fair-share proxies vs global max-min) may differ.
  for (const TenantReport& t : serial.tenants) {
    const TenantReport* o = split.tenant(t.label);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->bytes, t.bytes);
    EXPECT_EQ(o->delivery_latency.n, t.delivery_latency.n);
  }
  EXPECT_EQ(split.routes, serial.routes);
  EXPECT_GT(split.elapsed, 0.0);
}

TEST(FabricShard, AdaptiveRoutingIsRejected) {
  Scenario s = interleaved_rings(4, 2, 2, 2);
  s.topology.routing(net::RoutingPolicy::kAdaptive);
  FabricLab lab(s);
  EXPECT_THROW(lab.run_sharded(2), std::invalid_argument);
}

TEST(FabricShard, SingleSwitchCollapsesToOneShard) {
  Scenario s;  // default single switch
  JobSpec a, b;
  a.label = "a";
  a.nodes = {0, 1};
  b.label = "b";
  b.nodes = {2, 3};
  s.jobs = {a, b};
  FabricLab lab(s);
  const FabricReport r = lab.run_sharded(4);
  // One topology group: every stream lands on one shard and the carve has
  // nothing to cut — no proxies, no exchange, a single window.
  EXPECT_EQ(r.shards, 4);
  EXPECT_EQ(r.populated_shards, 1);
  EXPECT_EQ(r.boundary_links, 0);
  EXPECT_EQ(r.exchanges, 0u);
  EXPECT_EQ(r.tenant("a")->bytes, 4.0 * static_cast<double>(1 << 20));
  EXPECT_TRUE(r.links.empty());
}

}  // namespace
}  // namespace cci::core
