// Multi-seed repetition: run-to-run spread and determinism.
#include <gtest/gtest.h>

#include "core/repeat.hpp"
#include "kernels/stream.hpp"

namespace cci::core {
namespace {

Scenario quick() {
  Scenario s;
  s.kernel = kernels::triad_traits();
  s.computing_cores = 8;
  s.message_bytes = 4;
  s.pingpong_iterations = 10;
  s.compute_repetitions = 2;
  s.target_pass_seconds = 0.01;
  return s;
}

TEST(Repeat, AggregatesAcrossSeeds) {
  auto r = run_repeated(quick(), 5);
  EXPECT_EQ(r.runs, 5);
  EXPECT_EQ(r.latency_alone.n, 5u);
  EXPECT_GT(r.latency_alone.median, 1e-6);
  // Different seeds give non-degenerate spread (noise model active).
  EXPECT_GT(r.latency_alone.max, r.latency_alone.min);
}

TEST(Repeat, RepeatedRunsAreReproducible) {
  auto a = run_repeated(quick(), 3);
  auto b = run_repeated(quick(), 3);
  EXPECT_DOUBLE_EQ(a.latency_together.median, b.latency_together.median);
  EXPECT_DOUBLE_EQ(a.bandwidth_alone.median, b.bandwidth_alone.median);
}

TEST(Repeat, SpreadIsSmallRelativeToTheMedian) {
  // The noise model is a few percent, not order-of-magnitude.
  auto r = run_repeated(quick(), 5);
  EXPECT_LT((r.latency_alone.max - r.latency_alone.min) / r.latency_alone.median, 0.2);
}

}  // namespace
}  // namespace cci::core
