// Watchdog: event budgets, livelock detection, blocked-process reports.
#include <gtest/gtest.h>

#include <functional>

#include "obs/metrics.hpp"
#include "sim/flow_model.hpp"
#include "sim/stall.hpp"

namespace cci::sim {
namespace {

Coro ticker(Engine& engine) {
  for (;;) co_await engine.sleep(1e-3);
}

TEST(Watchdog, EventBudgetTripsOnRunawaySimulation) {
  Engine engine;
  WatchdogConfig cfg;
  cfg.max_events = 50;
  engine.set_watchdog(cfg);
  engine.spawn(ticker(engine));
  try {
    engine.run();
    FAIL() << "expected SimStalled";
  } catch (const SimStalled& e) {
    EXPECT_EQ(e.reason(), StallReason::kEventBudget);
    EXPECT_GE(e.events(), 50u);
    EXPECT_GT(e.at(), 0.0);  // time was advancing; this is a runaway, not a livelock
  }
}

TEST(Watchdog, PerInstantBudgetTripsOnLivelock) {
  Engine engine;
  WatchdogConfig cfg;
  cfg.max_events_per_instant = 200;
  engine.set_watchdog(cfg);
  // An event that reposts itself at the current instant: time never advances.
  std::function<void()> storm = [&] { engine.call_at(engine.now(), storm); };
  engine.call_at(0.5, storm);
  try {
    engine.run();
    FAIL() << "expected SimStalled";
  } catch (const SimStalled& e) {
    EXPECT_EQ(e.reason(), StallReason::kNoProgress);
    EXPECT_DOUBLE_EQ(e.at(), 0.5);
  }
}

TEST(Watchdog, DrainWithBlockedProcessNamesTheStalledActivity) {
  obs::Registry::global().set_enabled(true);
  obs::Registry::global().reset();
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  WatchdogConfig cfg;
  cfg.report_blocked_on_drain = true;
  engine.set_watchdog(cfg);
  ActivitySpec spec;
  spec.label = engine.intern("doomed-transfer");
  spec.work = 100.0;
  spec.demands = {{pipe, 1.0}};
  auto act = model.start(spec);
  engine.spawn([](ActivityPtr a) -> Coro { co_await a->done(); }(act));
  engine.call_at(1.0, [&] { pipe->set_capacity(0.0); });  // rate -> 0 forever
  try {
    engine.run();
    FAIL() << "expected SimStalled";
  } catch (const SimStalled& e) {
    EXPECT_EQ(e.reason(), StallReason::kBlockedProcesses);
    EXPECT_GE(e.live_processes(), 1);
    ASSERT_FALSE(e.blocked().empty());
    bool named = false;
    for (const std::string& b : e.blocked())
      if (b.find("doomed-transfer") != std::string::npos &&
          b.find("STALLED") != std::string::npos)
        named = true;
    EXPECT_TRUE(named) << e.what();
  }
  EXPECT_GE(obs::Registry::global().counter("sim.watchdog_trips").value(), 1.0);
  obs::Registry::global().set_enabled(false);
}

TEST(Watchdog, HealthyRunUnderFullGuardsDoesNotTrip) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  WatchdogConfig cfg;
  cfg.max_events = 100000;
  cfg.max_events_per_instant = 10000;
  cfg.report_blocked_on_drain = true;
  engine.set_watchdog(cfg);
  ActivitySpec spec;
  spec.label = engine.intern("fine");
  spec.work = 50.0;
  spec.demands = {{pipe, 1.0}};
  auto act = model.start(spec);
  engine.spawn([](ActivityPtr a) -> Coro { co_await a->done(); }(act));
  EXPECT_NO_THROW(engine.run());
  EXPECT_TRUE(act->finished());
}

TEST(Watchdog, OffByDefault) {
  Engine engine;
  EXPECT_FALSE(engine.watchdog().any());
}

}  // namespace
}  // namespace cci::sim
