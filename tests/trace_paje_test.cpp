// Paje export: structurally valid trace output.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/paje.hpp"

namespace cci::trace {
namespace {

TEST(Paje, HeaderComesFirstAndOnce) {
  std::ostringstream os;
  PajeWriter w(os);
  w.write_header();
  w.write_header();
  std::string out = os.str();
  EXPECT_EQ(out.find("%EventDef PajeDefineContainerType 0"), 0u);
  // Only one header despite two calls.
  EXPECT_EQ(out.find("%EventDef PajeDefineContainerType 0", 1), std::string::npos);
}

TEST(Paje, MachineDefinitionCreatesContainers) {
  std::ostringstream os;
  PajeWriter w(os);
  w.define_machine("henri", 4);
  std::string out = os.str();
  EXPECT_NE(out.find("3 0.000000 m M 0 henri"), std::string::npos);
  EXPECT_NE(out.find("core3"), std::string::npos);
  EXPECT_EQ(out.find("core4"), std::string::npos);
}

TEST(Paje, TaskStatesOpenAndClose) {
  std::ostringstream os;
  PajeWriter w(os);
  w.define_machine("henri", 2);
  w.task_state(1, "gemv", 0.5, 0.75);
  std::string out = os.str();
  EXPECT_NE(out.find("4 0.5 S c1 gemv"), std::string::npos);
  EXPECT_NE(out.find("4 0.75 S c1 idle"), std::string::npos);
}

TEST(Paje, FrequencyTraceExports) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  hw::Machine machine(model, hw::MachineConfig::henri());
  FreqTrace trace(machine);
  engine.call_at(1.0, [&] { machine.governor().core_busy(0, hw::VectorClass::kScalar); });
  engine.run();
  std::ostringstream os;
  PajeWriter w(os);
  w.define_machine("henri", 36);
  w.write_freq_trace(trace);
  // The busy transition of core 0 (3.7 GHz) must appear as a variable set.
  EXPECT_NE(os.str().find("5 1 F c0 3.7"), std::string::npos);
}

}  // namespace
}  // namespace cci::trace
