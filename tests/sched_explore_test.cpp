// Explorer-driven determinism oracles over the real concurrent layers:
// campaign jobs=8 vs serial, 2-shard ShardGroup runs, mailbox drain order,
// the planted merge-order mutation, and a bounded-exhaustive small
// campaign.  These tests only bite in instrumented builds (-DCCI_SCHED=ON);
// elsewhere the whole suite skips so default ctest stays seed-equivalent.
//
// Environment knobs (all optional):
//   CCI_SCHED_SEEDS      how many random seeds per oracle test (default 5;
//                        CI cranks this to 50)
//   CCI_SCHED_TRACE_DIR  where to save the schedule trace of any failing
//                        seed, for upload as a CI artifact and offline
//                        --sched-replay
#include <gtest/gtest.h>

#ifndef CCI_SCHED

TEST(SchedExplore, RequiresInstrumentedBuild) {
  GTEST_SKIP() << "built without -DCCI_SCHED=ON; schedule hooks compile to nothing";
}

#else  // CCI_SCHED

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/fabric_lab.hpp"
#include "kernels/stream.hpp"
#include "obs/metrics.hpp"
#include "sched/explorer.hpp"
#include "sim/flow_model.hpp"
#include "sim/shard.hpp"

namespace cci {
namespace {

int seeds_from_env() {
  const char* env = std::getenv("CCI_SCHED_SEEDS");
  if (env == nullptr || *env == '\0') return 5;
  const int n = std::atoi(env);
  return n > 0 ? n : 5;
}

/// Save `trace` under CCI_SCHED_TRACE_DIR (if set) so CI can upload it;
/// returns a human-readable pointer for the assertion message.
std::string save_failing_trace(const sched::Trace& trace, const std::string& tag) {
  const char* dir = std::getenv("CCI_SCHED_TRACE_DIR");
  if (dir == nullptr || *dir == '\0')
    return "set CCI_SCHED_TRACE_DIR to save the failing trace";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = (std::filesystem::path(dir) / (tag + ".trace")).string();
  try {
    trace.save(path);
  } catch (const std::exception& e) {
    return std::string("failed to save trace: ") + e.what();
  }
  return "failing trace saved to " + path;
}

core::Scenario quick_base() {
  core::Scenario s;
  s.kernel = kernels::triad_traits();
  s.message_bytes = 4;
  s.pingpong_iterations = 2;
  s.pingpong_warmup = 0;
  s.compute_repetitions = 1;
  s.target_pass_seconds = 0.002;
  return s;
}

core::Campaign quick_campaign() {
  core::Campaign c("sched_explore_campaign",
                   core::SweepSpec(quick_base())
                       .cores("cores", {0, 2, 4})
                       .message_bytes("msg_bytes", {4, 65536}));
  c.column("lat_us", core::Campaign::latency_together_us())
      .column("bw_ratio", core::Campaign::bandwidth_ratio());
  return c;
}

core::CampaignOptions campaign_opts(int jobs) {
  core::CampaignOptions o;
  o.jobs = jobs;
  return o;
}

std::string table_text(const core::Campaign& c, const core::CampaignRun& run) {
  std::ostringstream os;
  run.table(c).print(os);
  return os.str();
}

std::string timeline_text(const core::Campaign& c, const core::CampaignRun& run) {
  std::ostringstream os;
  run.write_timeline_csv(os, c.name(), true);
  return os.str();
}

/// RAII for the planted merge mutation so a failing assertion cannot leak
/// the broken merge into later tests.
struct MutationGuard {
  explicit MutationGuard(bool on) { sched::set_mutation_merge_overwrite(on); }
  ~MutationGuard() { sched::set_mutation_merge_overwrite(false); }
};

// ---- campaign oracle --------------------------------------------------------

TEST(SchedExplore, CampaignJobs8MatchesSerialAcrossRandomSchedules) {
  const core::Campaign c = quick_campaign();
  core::CampaignOptions serial = campaign_opts(1);
  serial.timeline_period = 1e-3;
  const core::CampaignRun ref = core::CampaignEngine(serial).run(c);
  const std::string ref_table = table_text(c, ref);
  const std::string ref_timeline = timeline_text(c, ref);

  const int seeds = seeds_from_env();
  for (int seed = 1; seed <= seeds; ++seed) {
    sched::Options o;
    o.mode = sched::Options::Mode::kRandom;
    o.seed = static_cast<std::uint64_t>(seed);
    sched::Session session(o);
    core::CampaignOptions par = campaign_opts(8);
    par.timeline_period = 1e-3;
    const core::CampaignRun run = core::CampaignEngine(par).run(c);
    ASSERT_EQ(session.error(), "") << "seed " << seed;
    const bool tables_match = table_text(c, run) == ref_table;
    const bool timelines_match = timeline_text(c, run) == ref_timeline;
    if (!tables_match || !timelines_match)
      FAIL() << "jobs=8 diverged from serial under schedule seed " << seed << " ("
             << (tables_match ? "timeline CSV" : "campaign table") << "); "
             << save_failing_trace(session.trace(),
                                   "campaign_jobs8_seed" + std::to_string(seed));
  }
}

// ---- adaptive-routing oracle ------------------------------------------------

/// Adaptive-routing campaign over an oversubscribed fat-tree: two tenants
/// fight for the minimal spine, so every point's values depend on the
/// exact sequence of RNG tie-broken routing decisions.  Those draws come
/// from the per-point cluster seed, never from thread timing — the table
/// must be schedule-invariant at jobs=8.
core::Campaign fabric_campaign() {
  core::Scenario base;
  base.topology =
      net::Topology::fat_tree(4, 0.5).routing(net::RoutingPolicy::kAdaptive);
  core::JobSpec victim, aggressor;
  victim.label = "victim";
  victim.nodes = {0, 2};
  aggressor.label = "aggressor";
  aggressor.nodes = {1, 3};
  for (core::JobSpec* j : {&victim, &aggressor}) {
    j->message_bytes = std::size_t{4} << 20;
    j->iterations = 3;
  }
  base.jobs = {std::move(victim), std::move(aggressor)};
  core::SweepSpec spec(base);
  spec.seed_policy(core::SeedPolicy::kFixed)
      .values("offered_load", {0.5, 1.0}, [](core::Scenario& s, double v) {
        for (core::JobSpec& j : s.jobs) j.offered_load = v;
      });
  core::Campaign c("sched_fabric_campaign", std::move(spec));
  c.column("elapsed_ms", 3, core::Campaign::Metric{})
      .column("reroutes", 0, core::Campaign::Metric{})
      .evaluator("sched_fabric.v1",
                 [](const core::SweepPoint& p) -> std::vector<double> {
                   core::FabricLab lab(p.scenario);
                   core::FabricReport r = lab.run();
                   return {r.elapsed * 1e3, static_cast<double>(r.reroutes)};
                 });
  return c;
}

TEST(SchedExplore, AdaptiveRoutingTableIsScheduleInvariantAtJobs8) {
  const core::Campaign c = fabric_campaign();
  const std::string ref_table =
      table_text(c, core::CampaignEngine(campaign_opts(1)).run(c));

  const int seeds = seeds_from_env();
  for (int seed = 1; seed <= seeds; ++seed) {
    sched::Options o;
    o.mode = sched::Options::Mode::kRandom;
    o.seed = static_cast<std::uint64_t>(seed);
    sched::Session session(o);
    const core::CampaignRun run = core::CampaignEngine(campaign_opts(8)).run(c);
    ASSERT_EQ(session.error(), "") << "seed " << seed;
    if (table_text(c, run) != ref_table)
      FAIL() << "adaptive-routing table diverged under schedule seed " << seed << "; "
             << save_failing_trace(session.trace(),
                                   "fabric_jobs8_seed" + std::to_string(seed));
  }
}

// ---- sharded-sim oracle -----------------------------------------------------

/// Tiny churn workload on a 2-shard group; returns per-group completion
/// instants — the observable that must not depend on the schedule.
std::vector<std::vector<sim::Time>> run_sharded_churn() {
  sim::ShardGroup::Options go;
  go.shards = 2;
  sim::ShardGroup group(go);  // shard-closed: no cross-shard traffic
  struct Group {
    std::unique_ptr<sim::FlowModel> model;
    std::vector<sim::Time> completions;
  };
  std::vector<Group> groups(4);
  for (int g = 0; g < 4; ++g) {
    Group& ng = groups[g];
    group.with_shard(g % 2, [&ng, g](sim::Engine& eng) {
      ng.model = std::make_unique<sim::FlowModel>(eng);
      sim::Resource* a = ng.model->add_resource("g" + std::to_string(g) + ".a", 4.0);
      sim::Resource* b = ng.model->add_resource("g" + std::to_string(g) + ".b", 5.0);
      const sim::LabelId label = eng.intern("churn");
      struct Churn {
        static sim::Coro run(sim::Engine& eng, sim::FlowModel& model, sim::Resource* a,
                             sim::Resource* b, sim::LabelId label,
                             std::vector<sim::Time>* done) {
          for (int i = 0; i < 12; ++i) {
            sim::ActivitySpec spec;
            spec.label = label;
            spec.work = 1.0 + 0.25 * static_cast<double>(i % 4);
            spec.demands.push_back({a, 1.0});
            if (i % 2 != 0) spec.demands.push_back({b, 0.5});
            co_await *model.start(spec);
            done->push_back(eng.now());
          }
        }
      };
      for (int p = 0; p < 2; ++p)
        eng.spawn(Churn::run(eng, *ng.model, p % 2 == 0 ? a : b, p % 2 == 0 ? b : a,
                             label, &ng.completions));
    });
  }
  group.run();
  std::vector<std::vector<sim::Time>> out;
  out.reserve(groups.size());
  for (int g = 0; g < 4; ++g) {
    Group& ng = groups[g];
    out.push_back(ng.completions);
    group.with_shard(g % 2, [&ng](sim::Engine&) { ng.model.reset(); });
  }
  return out;
}

TEST(SchedExplore, TwoShardRunsAreScheduleInvariant) {
  const auto ref = run_sharded_churn();  // uncontrolled reference
  const int seeds = seeds_from_env();
  for (int seed = 1; seed <= seeds; ++seed) {
    sched::Options o;
    o.mode = sched::Options::Mode::kRandom;
    o.seed = static_cast<std::uint64_t>(seed);
    sched::Session session(o);
    const auto got = run_sharded_churn();
    ASSERT_EQ(session.error(), "") << "seed " << seed;
    if (got != ref)
      FAIL() << "2-shard completions diverged under schedule seed " << seed << "; "
             << save_failing_trace(session.trace(),
                                   "shards2_seed" + std::to_string(seed));
  }
}

// ---- mailbox-lane stress (satellite: drain order + spill accounting) --------

struct MailboxRun {
  std::vector<std::vector<std::string>> delivered;  // per receiver, in order
  std::uint64_t messages = 0;
  std::uint64_t spills = 0;

  bool operator==(const MailboxRun& o) const {
    return delivered == o.delivered && messages == o.messages && spills == o.spills;
  }
};

/// Every shard posts tagged messages to both other shards at staggered
/// times, overflowing the tiny per-lane capacity on purpose.  Each
/// receiver's delivery sequence is recorded by its own worker only, so the
/// observable is race-free by construction and must be schedule-invariant.
MailboxRun run_mailbox_stress() {
  sim::ShardGroup::Options go;
  go.shards = 3;
  go.lookahead = 1.0;
  go.mailbox_capacity = 2;
  sim::ShardGroup group(go);
  MailboxRun out;
  out.delivered.resize(3);
  for (int from = 0; from < 3; ++from) {
    group.with_shard(from, [&group, &out, from](sim::Engine& eng) {
      eng.call_at(0.0, [&group, &out, from] {
        for (int burst = 0; burst < 4; ++burst)
          for (int hop = 1; hop <= 2; ++hop) {
            const int to = (from + hop) % 3;
            const sim::Time at = 1.0 + 0.125 * burst;
            const std::string tag = std::to_string(from) + "->" + std::to_string(to) +
                                    "@" + std::to_string(burst);
            group.post(from, to, at, [&out, to, tag] {
              out.delivered[static_cast<std::size_t>(to)].push_back(tag);
            });
          }
      });
    });
  }
  group.run();
  out.messages = group.stats().messages;
  out.spills = group.stats().spills;
  return out;
}

TEST(SchedExplore, MailboxDrainOrderAndSpillsAreScheduleInvariant) {
  const MailboxRun ref = run_mailbox_stress();  // uncontrolled reference
  ASSERT_EQ(ref.messages, 24u);                 // 3 senders x 2 receivers x 4 bursts
  ASSERT_GT(ref.spills, 0u) << "stress must overflow the lane capacity";
  for (const auto& seq : ref.delivered) ASSERT_EQ(seq.size(), 8u);

  const int seeds = seeds_from_env();
  for (int seed = 1; seed <= seeds; ++seed) {
    sched::Options o;
    o.mode = sched::Options::Mode::kRandom;
    o.seed = static_cast<std::uint64_t>(seed);
    sched::Session session(o);
    const MailboxRun got = run_mailbox_stress();
    ASSERT_EQ(session.error(), "") << "seed " << seed;
    if (!(got == ref))
      FAIL() << "mailbox drain order or spill accounting changed under schedule seed "
             << seed << "; "
             << save_failing_trace(session.trace(),
                                   "mailbox_seed" + std::to_string(seed));
  }
}

// ---- mutation: the explorer must catch a planted merge-order bug ------------

TEST(SchedExplore, PlantedMergeBugIsCaughtReplayedAndMinimized) {
  const core::Campaign c = quick_campaign();
  obs::Registry& reg = obs::Registry::process();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);

  reg.reset();
  core::CampaignEngine(campaign_opts(1)).run(c);
  const double expected = reg.counter("sim.engine.events_dispatched").value();
  ASSERT_GT(expected, 0.0);

  MutationGuard mutation(true);
  constexpr int kBudget = 10;  // schedules the explorer gets to find the bug
  sched::Trace failing;
  double broken_total = 0.0;
  int caught_at = 0;
  for (int seed = 1; seed <= kBudget && caught_at == 0; ++seed) {
    reg.reset();
    sched::Options o;
    o.mode = sched::Options::Mode::kRandom;
    o.seed = static_cast<std::uint64_t>(seed);
    sched::Session session(o);
    core::CampaignEngine(campaign_opts(4)).run(c);
    if (!session.error().empty()) continue;
    const double got = reg.counter("sim.engine.events_dispatched").value();
    if (got != expected) {
      caught_at = seed;
      failing = session.trace();
      broken_total = got;
    }
  }
  ASSERT_GT(caught_at, 0) << "planted merge bug not caught within " << kBudget
                          << " schedules";

  // The recorded schedule replays the failure bitwise: same wrong total.
  {
    reg.reset();
    sched::Options o;
    o.mode = sched::Options::Mode::kReplay;
    o.replay = failing;
    sched::Session session(o);
    core::CampaignEngine(campaign_opts(4)).run(c);
    ASSERT_EQ(session.error(), "");
    EXPECT_EQ(reg.counter("sim.engine.events_dispatched").value(), broken_total);
  }

  // Greedy minimization: the shrunken override trace must still fail.
  const auto fails = [&](const sched::Trace& cand) {
    reg.reset();
    sched::Options o;
    o.mode = sched::Options::Mode::kOverrides;
    o.replay = cand;
    sched::Session session(o);
    core::CampaignEngine(campaign_opts(4)).run(c);
    if (!session.error().empty()) return false;
    return reg.counter("sim.engine.events_dispatched").value() != expected;
  };
  const sched::Trace minimized = sched::minimize_trace(failing, fails);
  EXPECT_LE(minimized.size(), sched::to_overrides(failing).size());
  EXPECT_TRUE(fails(minimized)) << minimized.serialize();

  reg.reset();
  reg.set_enabled(was_enabled);
}

// ---- bounded exhaustive enumeration over a small campaign -------------------

TEST(SchedExplore, BoundedExhaustiveSmallCampaignNeverDiverges) {
  core::Campaign c("sched_exhaustive_campaign",
                   core::SweepSpec(quick_base()).cores("cores", {0, 2}));
  c.column("lat_us", core::Campaign::latency_together_us());
  const std::string ref_table = table_text(c, core::CampaignEngine(campaign_opts(1)).run(c));

  bool diverged = false;
  std::string divergence;
  const auto result = sched::explore_exhaustive(
      2, 120,
      [&] {
        const core::CampaignRun run = core::CampaignEngine(campaign_opts(2)).run(c);
        if (table_text(c, run) != ref_table) diverged = true;
      },
      [&](const sched::Session& session) {
        if (!session.error().empty()) {
          divergence = session.error();
          return false;
        }
        if (diverged) {
          divergence = "table diverged; " +
                       save_failing_trace(session.trace(), "exhaustive_campaign");
          return false;
        }
        return true;
      });
  EXPECT_FALSE(result.stopped) << divergence;
  EXPECT_GT(result.schedules, 1);
}

}  // namespace
}  // namespace cci

#endif  // CCI_SCHED
