// when_any / when_all combinators and flow-model conservation properties.
#include <gtest/gtest.h>

#include <memory>

#include "sim/flow_model.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"

namespace cci::sim {
namespace {

TEST(WhenAny, ResumesOnFirstEvent) {
  Engine engine;
  OneShotEvent a(engine), b(engine);
  Time resumed = -1.0;
  engine.spawn([](Engine& e, OneShotEvent& x, OneShotEvent& y, Time& t) -> Coro {
    std::vector<OneShotEvent*> evs{&x, &y};
    co_await when_any(e, evs);
    t = e.now();
  }(engine, a, b, resumed));
  engine.call_at(2.0, [&] { b.set(); });
  engine.call_at(5.0, [&] { a.set(); });
  engine.run();
  EXPECT_DOUBLE_EQ(resumed, 2.0);
}

TEST(WhenAny, AlreadySetEventIsImmediate) {
  Engine engine;
  OneShotEvent a(engine), b(engine);
  a.set();
  bool ran = false;
  engine.spawn([](Engine& e, OneShotEvent& x, OneShotEvent& y, bool& f) -> Coro {
    std::vector<OneShotEvent*> evs{&x, &y};
    co_await when_any(e, evs);
    f = true;
  }(engine, a, b, ran));
  engine.run();
  EXPECT_TRUE(ran);
}

TEST(WhenAny, DoubleFireResumesOnlyOnce) {
  Engine engine;
  OneShotEvent a(engine), b(engine);
  int resumes = 0;
  engine.spawn([](Engine& e, OneShotEvent& x, OneShotEvent& y, int& n) -> Coro {
    std::vector<OneShotEvent*> evs{&x, &y};
    co_await when_any(e, evs);
    ++n;
  }(engine, a, b, resumes));
  engine.call_at(1.0, [&] {
    a.set();
    b.set();
  });
  engine.run();
  EXPECT_EQ(resumes, 1);
}

TEST(WhenAll, WaitsForTheLastEvent) {
  Engine engine;
  OneShotEvent a(engine), b(engine), c(engine);
  Time resumed = -1.0;
  engine.spawn([](Engine& e, OneShotEvent& x, OneShotEvent& y, OneShotEvent& z,
                  Time& t) -> Coro {
    std::vector<OneShotEvent*> evs{&x, &y, &z};
    co_await when_all(e, evs);
    t = e.now();
  }(engine, a, b, c, resumed));
  engine.call_at(1.0, [&] { b.set(); });
  engine.call_at(4.0, [&] { a.set(); });
  engine.call_at(3.0, [&] { c.set(); });
  engine.run();
  EXPECT_DOUBLE_EQ(resumed, 4.0);
}

TEST(WhenAll, AllPreSetIsImmediate) {
  Engine engine;
  OneShotEvent a(engine), b(engine);
  a.set();
  b.set();
  bool ran = false;
  engine.spawn([](Engine& e, OneShotEvent& x, OneShotEvent& y, bool& f) -> Coro {
    std::vector<OneShotEvent*> evs{&x, &y};
    co_await when_all(e, evs);
    f = true;
  }(engine, a, b, ran));
  engine.run();
  EXPECT_TRUE(ran);
}

// ---- conservation property -------------------------------------------------

class FlowConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservation, CompletedWorkEqualsSpecifiedWork) {
  // Under random arrivals, cancellations and capacity changes, every
  // completed activity has done exactly its work, all completions respect
  // capacity lower bounds (duration >= work / best-case rate), and loads
  // never exceed capacity.
  Rng rng(GetParam());
  Engine engine;
  FlowModel model(engine);
  std::vector<Resource*> res;
  for (int r = 0; r < 4; ++r)
    res.push_back(model.add_resource("r" + std::to_string(r), rng.uniform(1.0, 20.0)));

  std::vector<ActivityPtr> acts;
  for (int i = 0; i < 40; ++i) {
    double at = rng.uniform(0.0, 5.0);
    engine.call_at(at, [&, i] {
      ActivitySpec spec;
      spec.label = engine.intern("a" + std::to_string(i));
      spec.work = rng.uniform(0.5, 30.0);
      int hops = 1 + static_cast<int>(rng.below(3));
      for (int h = 0; h < hops; ++h)
        spec.demands.push_back({res[rng.below(res.size())], rng.uniform(0.2, 2.0)});
      acts.push_back(model.start(spec));
    });
  }
  for (int k = 0; k < 6; ++k) {
    engine.call_at(rng.uniform(0.5, 6.0), [&, k] {
      res[static_cast<std::size_t>(k) % res.size()]->set_capacity(rng.uniform(0.5, 25.0));
    });
  }
  engine.run();

  for (const auto& a : acts) {
    ASSERT_TRUE(a->finished()) << engine.label_str(a->spec().label);
    EXPECT_NEAR(a->work_done(), a->spec().work, 1e-6 * a->spec().work);
    EXPECT_GE(a->duration(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull));

TEST(FlowModel, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    FlowModel model(engine);
    Resource* pipe = model.add_resource("pipe", 7.0);
    std::vector<double> finish;
    for (int i = 0; i < 10; ++i) {
      engine.call_at(0.1 * i, [&, i] {
        ActivitySpec spec;
        spec.work = 3.0 + i;
        spec.demands = {{pipe, 1.0}};
        auto act = model.start(spec);
        act->done().on_set([&finish, act] { finish.push_back(act->finished_at()); });
      });
    }
    engine.run();
    return finish;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cci::sim
