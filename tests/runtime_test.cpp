// Task runtime: DAG execution, §5 overheads/polling, §6 app shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "mpi/pingpong.hpp"
#include "runtime/apps.hpp"
#include "runtime/rt_pingpong.hpp"
#include "runtime/runtime.hpp"

namespace cci::runtime {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

struct Rig {
  Rig() : cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2),
          world(cluster, {{0, -1}, {1, -1}}) {}
  Cluster cluster;
  mpi::World world;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

TEST(Runtime, ReservesMainAndCommCores) {
  Rig rig;
  Runtime rt(rig.world, 0, RuntimeConfig{});
  EXPECT_EQ(rt.worker_count(), 34);  // 36 - comm - main
  for (int core : rt.worker_cores()) {
    EXPECT_NE(core, 35);  // comm
    EXPECT_NE(core, 34);  // main
  }
}

TEST(Runtime, ExecutesDependentTasksInOrder) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 4;
  Runtime rt(rig.world, 0, cfg);
  hw::KernelTraits flops{"f", 8.0, 0.0, hw::VectorClass::kScalar};
  Task* a = rt.add_task({"a", flops, 1e6}, 0);
  Task* b = rt.add_task({"b", flops, 1e6}, 0);
  Task* c = rt.add_task({"c", flops, 1e6}, 0);
  Runtime::add_dependency(a, b);
  Runtime::add_dependency(b, c);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  EXPECT_TRUE(done.is_set());
  EXPECT_EQ(rt.tasks_completed(), 3);
}

TEST(Runtime, ParallelTasksUseMultipleWorkers) {
  // 8 independent equal tasks on 4 workers finish in ~2 task-times, not 8.
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 4;
  Runtime rt(rig.world, 0, cfg);
  hw::KernelTraits flops{"f", 8.0, 0.0, hw::VectorClass::kScalar};
  // 4 cycles/iter * 2.5e8 iters -> ~0.4s/task at ~2.5 GHz turbo.
  for (int i = 0; i < 8; ++i) rt.add_task({"t", flops, 2.5e8}, 0);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  sim::Time t0 = rig.cluster.engine().now();
  rig.cluster.engine().run();
  double elapsed = rig.cluster.engine().now() - t0;
  EXPECT_LT(elapsed, 4 * 0.45);   // parallel
  EXPECT_GT(elapsed, 2 * 0.25);   // but not more than 4-wide
  EXPECT_EQ(rt.tasks_completed(), 8);
}

TEST(Runtime, SendRecvTasksMoveDataBetweenRanks) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt0(rig.world, 0, cfg);
  Runtime rt1(rig.world, 1, cfg);
  hw::KernelTraits flops{"f", 8.0, 0.0, hw::VectorClass::kScalar};
  Task* produce = rt0.add_task({"produce", flops, 1e6}, 0);
  Task* send = rt0.add_send(1, 42, mpi::MsgView{1 << 20, 0, 0});
  Runtime::add_dependency(produce, send);
  Task* recv = rt1.add_recv(0, 42, mpi::MsgView{1 << 20, 0, 0});
  Task* consume = rt1.add_task({"consume", flops, 1e6}, 0);
  Runtime::add_dependency(recv, consume);

  auto& d0 = rt0.run();
  auto& d1 = rt1.run();
  rig.cluster.engine().spawn(
      [](Runtime& a, Runtime& b, sim::OneShotEvent& ea, sim::OneShotEvent& eb) -> sim::Coro {
        co_await ea;
        co_await eb;
        a.shutdown();
        b.shutdown();
      }(rt0, rt1, d0, d1));
  rig.cluster.engine().run();
  EXPECT_TRUE(d0.is_set());
  EXPECT_TRUE(d1.is_set());
  EXPECT_GT(rig.world.send_stats(0).bytes, 0.0);
}

TEST(Runtime, MessageOverheadMatchesSection52) {
  // §5.2: +38 us on henri, +23 us on billy, +45 us on pyxis.
  EXPECT_DOUBLE_EQ(RuntimeConfig::for_machine("henri").message_overhead, 38e-6);
  EXPECT_DOUBLE_EQ(RuntimeConfig::for_machine("billy").message_overhead, 23e-6);
  EXPECT_DOUBLE_EQ(RuntimeConfig::for_machine("pyxis").message_overhead, 45e-6);
}

TEST(Runtime, RtPingPongPaysRuntimeOverhead) {
  Rig rig;
  // Raw MPI baseline.
  mpi::PingPongOptions raw_opt;
  raw_opt.bytes = 4;
  raw_opt.tag = 800;
  mpi::PingPong raw(rig.world, 0, 1, raw_opt);
  raw.start();
  rig.cluster.engine().run();
  double raw_lat = median(raw.latencies());

  RuntimeConfig cfg = RuntimeConfig::for_machine("henri");
  cfg.workers_paused = true;  // isolate the software-stack overhead
  Runtime rt0(rig.world, 0, cfg);
  Runtime rt1(rig.world, 1, cfg);
  RtPingPongOptions opt;
  opt.bytes = 4;
  opt.tag = 900;
  RtPingPong pp(rt0, rt1, opt);
  pp.start();
  rig.cluster.engine().run();
  double rt_lat = median(pp.latencies());
  EXPECT_NEAR(rt_lat - raw_lat, 38e-6, 4e-6);
}

TEST(Runtime, PollingWorkersIncreaseLatency) {
  // Fig. 9: latency ordering paused <= huge backoff < default < small.
  auto run_with = [](int backoff, bool paused) {
    Rig rig;
    RuntimeConfig cfg = RuntimeConfig::for_machine("henri");
    cfg.backoff_max_nops = backoff;
    cfg.workers_paused = paused;
    Runtime rt0(rig.world, 0, cfg);
    Runtime rt1(rig.world, 1, cfg);
    rt0.start_workers_idle();
    rt1.start_workers_idle();
    RtPingPongOptions opt;
    opt.bytes = 4;
    opt.tag = 910;
    opt.iterations = 20;
    RtPingPong pp(rt0, rt1, opt);
    pp.start();
    rig.cluster.engine().run(5.0);  // workers poll forever; bounded horizon
    return median(pp.latencies());
  };
  double paused = run_with(32, true);
  double huge = run_with(10000, false);
  double dflt = run_with(32, false);
  double tiny = run_with(2, false);
  EXPECT_LE(paused, huge * 1.02);
  EXPECT_LT(huge, dflt);
  EXPECT_LT(dflt, tiny);
}

TEST(Apps, CgLosesMoreSendingBandwidthThanGemm) {
  // Fig. 10 headline: CG (memory-bound) degrades communications far more
  // than GEMM (compute-bound), and stalls explain it.
  auto machine = MachineConfig::henri();
  auto net = NetworkParams::ib_edr();
  auto rt_cfg = RuntimeConfig::for_machine("henri");

  CgAppOptions cg_few;
  cg_few.n = 32768;
  cg_few.iterations = 2;
  cg_few.workers = 2;
  CgAppOptions cg_many = cg_few;
  cg_many.workers = 34;

  auto cg2 = run_cg_app(machine, net, rt_cfg, cg_few);
  auto cg34 = run_cg_app(machine, net, rt_cfg, cg_many);
  EXPECT_GT(cg2.sending_bw, 0.0);
  // More workers -> more stalls and less sending bandwidth.
  EXPECT_GT(cg34.stall_fraction, cg2.stall_fraction - 0.05);
  EXPECT_LT(cg34.sending_bw, 0.85 * cg2.sending_bw);

  GemmAppOptions gm;
  gm.m = 2048;
  gm.tile = 256;
  gm.workers = 34;
  auto gemm34 = run_gemm_app(machine, net, rt_cfg, gm);
  // GEMM's arithmetic intensity shields both its stalls and the network.
  EXPECT_LT(gemm34.stall_fraction, 0.3);
  EXPECT_GT(cg34.stall_fraction, gemm34.stall_fraction + 0.2);
  double cg_loss = 1.0 - cg34.sending_bw / cg2.sending_bw;
  GemmAppOptions gm_few = gm;
  gm_few.workers = 2;
  auto gemm2 = run_gemm_app(machine, net, rt_cfg, gm_few);
  double gemm_loss = 1.0 - gemm34.sending_bw / gemm2.sending_bw;
  EXPECT_GT(cg_loss, gemm_loss);
}

TEST(Apps, CommunicationVolumeConstantAcrossWorkerCounts) {
  // §6: execution parameters fixed -> the amount of communication is the
  // same whatever the number of computing cores.
  auto machine = MachineConfig::henri();
  auto net = NetworkParams::ib_edr();
  auto rt_cfg = RuntimeConfig::for_machine("henri");
  CgAppOptions a;
  a.n = 8192;
  a.iterations = 2;
  a.workers = 4;
  CgAppOptions b = a;
  b.workers = 16;
  auto ra = run_cg_app(machine, net, rt_cfg, a);
  auto rb = run_cg_app(machine, net, rt_cfg, b);
  EXPECT_EQ(ra.tasks, rb.tasks);
}

}  // namespace
}  // namespace cci::runtime
