// Incremental max-min engine: the partial re-solve path must be
// indistinguishable from a from-scratch solve.
//
//  * Solver level: after any randomized sequence of add/remove/capacity
//    mutations, the persistent solver's rates and loads must match a fresh
//    solve_max_min over the surviving problem (within 1e-9).
//  * Model level: a whole randomized simulation (starts, cancels, capacity
//    changes, several disjoint resource clusters) must produce bitwise
//    identical completion times with partial re-solves on and off.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/flow_model.hpp"
#include "sim/maxmin.hpp"
#include "sim/rng.hpp"

namespace cci::sim {
namespace {

double tol(double x) { return 1e-9 * std::max(1.0, std::fabs(x)); }

// ---- solver-level equivalence ----------------------------------------------

struct LiveFlow {
  MaxMinSolver::FlowId id;
  MaxMinFlow flow;
};

/// Rebuild the current problem from scratch and compare against the
/// incrementally maintained state.
void expect_matches_reference(MaxMinSolver& solver, const std::vector<LiveFlow>& live,
                              const std::vector<double>& caps) {
  MaxMinProblem p;
  p.capacity = caps;
  for (const auto& lf : live) p.flows.push_back(lf.flow);
  MaxMinSolution ref = solve_max_min(p);
  for (std::size_t i = 0; i < live.size(); ++i) {
    double got = solver.rate(live[i].id);
    if (std::isinf(ref.rate[i])) {
      EXPECT_TRUE(std::isinf(got)) << "flow " << i;
    } else {
      EXPECT_NEAR(got, ref.rate[i], tol(ref.rate[i])) << "flow " << i;
    }
  }
  for (std::size_t r = 0; r < caps.size(); ++r)
    EXPECT_NEAR(solver.load(r), ref.load[r], tol(ref.load[r])) << "resource " << r;
}

class IncrementalSolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalSolverProperty, MutationSequencesMatchFromScratch) {
  Rng rng(GetParam());
  MaxMinSolver solver;

  // Component-structured resources: a few disjoint clusters, flows confined
  // to one cluster each (plus the occasional cluster-spanning flow, which
  // must merge components).
  const std::size_t n_clusters = 2 + rng.below(4);
  const std::size_t res_per_cluster = 1 + rng.below(4);
  std::vector<double> caps;
  for (std::size_t r = 0; r < n_clusters * res_per_cluster; ++r) {
    caps.push_back(rng.uniform(0.5, 100.0));
    solver.add_resource(caps.back());
  }

  std::vector<LiveFlow> live;
  auto add_random_flow = [&] {
    MaxMinFlow flow;
    flow.weight = rng.uniform(0.1, 4.0);
    flow.rate_cap = rng.uniform() < 0.3 ? rng.uniform(0.1, 50.0) : 0.0;
    if (rng.uniform() < 0.95) {
      // Confined to one cluster.
      std::size_t c = rng.below(n_clusters);
      std::size_t hops = 1 + rng.below(res_per_cluster);
      for (std::size_t h = 0; h < hops; ++h)
        flow.entries.push_back(
            {c * res_per_cluster + rng.below(res_per_cluster), rng.uniform(0.1, 3.0)});
    } else if (rng.uniform() < 0.9) {
      // Cluster-spanning flow: forces a component merge.
      for (int h = 0; h < 2; ++h)
        flow.entries.push_back({rng.below(caps.size()), rng.uniform(0.1, 3.0)});
    }  // else: no demands at all (unconstrained)
    MaxMinSolver::FlowId id = solver.add_flow(flow.weight, flow.rate_cap, flow.entries);
    live.push_back({id, std::move(flow)});
  };

  for (int step = 0; step < 120; ++step) {
    double dice = rng.uniform();
    if (live.empty() || dice < 0.45) {
      add_random_flow();
    } else if (dice < 0.8) {
      std::size_t victim = rng.below(live.size());
      solver.remove_flow(live[victim].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      std::size_t r = rng.below(caps.size());
      caps[r] = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.5, 100.0);
      solver.set_capacity(r, caps[r]);
    }
    solver.solve();
    expect_matches_reference(solver, live, caps);
  }
  // The clustered structure must actually have exercised the partial path.
  EXPECT_GT(solver.stats().partial_solves, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSolverProperty,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull, 0xC0FFEEull));

// ---- model-level A/B determinism -------------------------------------------

struct ScenarioResult {
  std::vector<Time> finished_at;
  std::vector<double> final_loads;
  std::uint64_t partial_solves = 0;
  std::uint64_t flow_visits = 0;
};

/// A randomized multi-cluster workload: staggered starts, cancellations and
/// capacity wobbles across disjoint NUMA-ish resource groups.
ScenarioResult run_scenario(std::uint64_t seed, bool incremental) {
  Rng rng(seed);
  Engine engine;
  FlowModel model(engine);
  model.set_incremental(incremental);

  constexpr std::size_t kClusters = 6;
  constexpr std::size_t kResPerCluster = 3;
  std::vector<Resource*> res;
  for (std::size_t c = 0; c < kClusters; ++c)
    for (std::size_t r = 0; r < kResPerCluster; ++r)
      res.push_back(model.add_resource("r" + std::to_string(c) + "_" + std::to_string(r),
                                       rng.uniform(5.0, 50.0)));

  std::vector<ActivityPtr> acts;
  acts.reserve(160);
  for (int i = 0; i < 160; ++i) {
    ActivitySpec spec;
    spec.work = rng.uniform(1.0, 200.0);
    spec.weight = rng.uniform(0.5, 2.0);
    spec.rate_cap = rng.uniform() < 0.25 ? rng.uniform(1.0, 20.0) : 0.0;
    std::size_t c = rng.below(kClusters);
    std::size_t hops = 1 + rng.below(kResPerCluster);
    for (std::size_t h = 0; h < hops; ++h)
      spec.demands.push_back({res[c * kResPerCluster + rng.below(kResPerCluster)],
                              rng.uniform(0.2, 2.0)});
    Time at = rng.uniform(0.0, 5.0);
    engine.call_at(at, [&model, &acts, spec]() mutable { acts.push_back(model.start(spec)); });
  }
  // Capacity wobbles on random resources.
  for (int i = 0; i < 30; ++i) {
    Resource* r = res[rng.below(res.size())];
    double cap = rng.uniform(5.0, 50.0);
    engine.call_at(rng.uniform(0.5, 6.0), [r, cap] { r->set_capacity(cap); });
  }
  // A few cancellations of whatever happens to be running.
  for (int i = 0; i < 10; ++i) {
    engine.call_at(rng.uniform(1.0, 6.0), [&model, &acts, i] {
      if (acts.size() > static_cast<std::size_t>(i * 3) && !acts[i * 3]->finished())
        model.cancel(acts[i * 3]);
    });
  }
  engine.run();

  ScenarioResult out;
  for (const auto& a : acts) out.finished_at.push_back(a->finished_at());
  for (const Resource* r : res) out.final_loads.push_back(r->load());
  out.partial_solves = model.solver().stats().partial_solves;
  out.flow_visits = model.solver().stats().flow_visits;
  return out;
}

class IncrementalModelAB : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalModelAB, PartialResolvesAreBitwiseIdenticalToFull) {
  ScenarioResult inc = run_scenario(GetParam(), true);
  ScenarioResult full = run_scenario(GetParam(), false);
  ASSERT_EQ(inc.finished_at.size(), full.finished_at.size());
  for (std::size_t i = 0; i < inc.finished_at.size(); ++i)
    EXPECT_EQ(inc.finished_at[i], full.finished_at[i]) << "activity " << i;
  for (std::size_t r = 0; r < inc.final_loads.size(); ++r)
    EXPECT_EQ(inc.final_loads[r], full.final_loads[r]) << "resource " << r;
  // The incremental run must skip clean components and do strictly less
  // solver work than the from-scratch run.
  EXPECT_GT(inc.partial_solves, 0u);
  EXPECT_EQ(full.partial_solves, 0u);
  EXPECT_LT(inc.flow_visits, full.flow_visits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalModelAB,
                         ::testing::Values(3ull, 11ull, 99ull, 0xDEADBEEFull));

}  // namespace
}  // namespace cci::sim
