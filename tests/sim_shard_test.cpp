// Conservative-window shard-parallel simulation: partition seeding,
// serial-path equivalence, run-to-run and cross-shard-count determinism,
// mailbox delivery, and error propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "sim/flow_model.hpp"
#include "sim/maxmin.hpp"
#include "sim/shard.hpp"
#include "sim/stall.hpp"

namespace cci::sim {
namespace {

// ---- helpers ----------------------------------------------------------------

/// Render a snapshot for byte-comparison, dropping the host-dependent
/// series (pool occupancy, wall-clock histograms) exactly like the
/// sampler's deny lists do.
std::string snapshot_text(const obs::Snapshot& snap) {
  std::ostringstream os;
  for (const auto& e : snap.entries) {
    if (e.name.rfind("sim.pool.", 0) == 0) continue;
    if (e.name.find("wall_us") != std::string::npos) continue;
    char buf[256];
    std::snprintf(buf, sizeof buf, " %d %.17g %.17g %llu %.17g %.17g\n",
                  static_cast<int>(e.kind), e.value, e.max,
                  static_cast<unsigned long long>(e.count), e.sum, e.min);
    os << e.name << buf;
  }
  return os.str();
}

sim::Coro churn(Engine& engine, FlowModel& model, Resource* a, Resource* b,
                LabelId label, int acts, std::vector<Time>* done) {
  for (int i = 0; i < acts; ++i) {
    ActivitySpec spec;
    spec.label = label;
    spec.work = 1.0 + 0.25 * static_cast<double>(i % 4);
    spec.demands.push_back({a, 1.0});
    if (i % 2 != 0) spec.demands.push_back({b, 0.5});
    co_await *model.start(spec);
    if (done != nullptr) done->push_back(engine.now());
  }
}

constexpr int kGroups = 4;
constexpr int kProcsPerGroup = 2;
constexpr int kActs = 24;

/// kGroups independent node groups (own FlowModel + private resources ->
/// shard-closed), dealt to shards round-robin.  Completion instants are
/// recorded per group so runs are comparable across shard counts.
struct GroupedScenario {
  ShardGroup group;
  struct NodeGroup {
    std::unique_ptr<FlowModel> model;
    Resource* res[2] = {nullptr, nullptr};
    LabelId label = kNoLabel;
    std::vector<Time> completions;
  };
  NodeGroup groups[kGroups];

  static ShardGroup::Options make_options(int shards, Time lookahead) {
    ShardGroup::Options o;
    o.shards = shards;
    o.lookahead = lookahead;
    return o;
  }

  explicit GroupedScenario(int shards, Time lookahead = kNever)
      : group(make_options(shards, lookahead)) {
    for (int g = 0; g < kGroups; ++g) {
      NodeGroup& ng = groups[g];
      group.with_shard(shard_of(g), [&](Engine& eng) {
        ng.model = std::make_unique<FlowModel>(eng);
        ng.res[0] = ng.model->add_resource("g" + std::to_string(g) + ".a", 4.0);
        ng.res[1] = ng.model->add_resource("g" + std::to_string(g) + ".b", 5.0);
        ng.label = eng.intern("churn");
        for (int p = 0; p < kProcsPerGroup; ++p)
          eng.spawn(churn(eng, *ng.model, ng.res[p % 2], ng.res[(p + 1) % 2],
                          ng.label, kActs, &ng.completions));
      });
    }
  }
  ~GroupedScenario() {
    for (int g = 0; g < kGroups; ++g)
      group.with_shard(shard_of(g), [&](Engine&) { groups[g].model.reset(); });
  }
  [[nodiscard]] int shard_of(int g) const { return g % group.shards(); }
  std::uint64_t total_events() {
    std::uint64_t n = 0;
    for (int s = 0; s < group.shards(); ++s) n += group.engine(s).events_dispatched();
    return n;
  }
};

// ---- partition seeding ------------------------------------------------------

TEST(ShardConfig, ConfiguredShardsParsesEnvironment) {
  unsetenv("CCI_SIM_SHARDS");
  EXPECT_EQ(configured_shards(), 1);
  setenv("CCI_SIM_SHARDS", "4", 1);
  EXPECT_EQ(configured_shards(), 4);
  setenv("CCI_SIM_SHARDS", "0", 1);
  EXPECT_EQ(configured_shards(), 1);
  setenv("CCI_SIM_SHARDS", "garbage", 1);
  EXPECT_EQ(configured_shards(), 1);
  unsetenv("CCI_SIM_SHARDS");
}

TEST(ShardAssignment, FollowsSolverComponentsRoundRobin) {
  MaxMinSolver solver;
  for (int r = 0; r < 6; ++r) solver.add_resource(1.0);
  // Couple {0,3}, {1,4}; 2 and 5 stay singletons -> components ranked by
  // smallest member: {0,3}=0, {1,4}=1, {2}=2, {5}=3.
  solver.add_flow(1.0, 0.0, {{0, 1.0}, {3, 1.0}});
  solver.add_flow(1.0, 0.0, {{1, 1.0}, {4, 1.0}});

  const std::vector<int> one = shard_assignment(solver, 1);
  EXPECT_EQ(one, (std::vector<int>{0, 0, 0, 0, 0, 0}));

  const std::vector<int> two = shard_assignment(solver, 2);
  EXPECT_EQ(two, (std::vector<int>{0, 1, 0, 0, 1, 1}));

  // Coupled resources always co-locate, at any shard count.
  for (int n = 1; n <= 4; ++n) {
    const std::vector<int> a = shard_assignment(solver, n);
    EXPECT_EQ(a[0], a[3]) << "shards=" << n;
    EXPECT_EQ(a[1], a[4]) << "shards=" << n;
  }
}

TEST(ShardAssignment, TopologyGroupsPinComponentsToShards) {
  MaxMinSolver solver;
  for (int r = 0; r < 6; ++r) solver.add_resource(1.0);
  solver.add_flow(1.0, 0.0, {{0, 1.0}, {3, 1.0}});
  solver.add_flow(1.0, 0.0, {{1, 1.0}, {4, 1.0}});

  // Pin {0,3} to group 1 and resource 2 to group 0; 1/4/5 stay free (-1).
  // Pinned components land on group % shards; free ones keep round-robin.
  const std::vector<int> groups = {1, -1, 0, 1, -1, -1};
  const std::vector<int> two = shard_assignment(solver, 2, groups);
  EXPECT_EQ(two[0], 1);
  EXPECT_EQ(two[3], 1);
  EXPECT_EQ(two[2], 0);
  EXPECT_EQ(two[1], two[4]);  // coupled free component still co-locates

  // A component whose members span two groups collapses to the smaller.
  const std::vector<int> split = {1, -1, 0, 0, -1, -1};  // 0 -> g1, 3 -> g0
  const std::vector<int> merged = shard_assignment(solver, 2, split);
  EXPECT_EQ(merged[0], 0);
  EXPECT_EQ(merged[3], 0);

  // Single shard: everything on shard 0 regardless of pins.
  const std::vector<int> one = shard_assignment(solver, 1, groups);
  EXPECT_EQ(one, (std::vector<int>(6, 0)));
}

// Degenerate carve shapes the 1k-node fabrics actually hit: more topology
// groups than shards (dragonfly 16 groups / 4 shards), more shards than
// groups, and heavily imbalanced group populations.  The contract is
// bounded load skew and a stable assignment — never an exotic best cut.

TEST(ShardAssignment, GroupPinningDealsExcessGroupsEvenly) {
  // 12 singleton resources, each pinned to its own group, 4 shards: the
  // modulo deal lands group g on shard g % 4, three groups per shard.
  MaxMinSolver solver;
  std::vector<int> groups;
  for (int r = 0; r < 12; ++r) {
    solver.add_resource(1.0);
    groups.push_back(r);
  }
  const std::vector<int> out = shard_assignment(solver, 4, groups);
  std::vector<int> per_shard(4, 0);
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(out[static_cast<std::size_t>(r)], r % 4) << "resource " << r;
    ++per_shard[static_cast<std::size_t>(out[static_cast<std::size_t>(r)])];
  }
  for (int s = 0; s < 4; ++s) EXPECT_EQ(per_shard[static_cast<std::size_t>(s)], 3);
  // Same solver, same call -> same assignment (no hidden RNG or hashing).
  EXPECT_EQ(shard_assignment(solver, 4, groups), out);
}

TEST(ShardAssignment, GroupPinningShardsExceedingGroupsLeaveShardsIdle) {
  // 3 groups of 2 resources across 8 shards: groups map to shards 0..2,
  // the remaining five shards stay empty rather than splitting a group.
  MaxMinSolver solver;
  std::vector<int> groups;
  for (int r = 0; r < 6; ++r) {
    solver.add_resource(1.0);
    groups.push_back(r / 2);
  }
  const std::vector<int> out = shard_assignment(solver, 8, groups);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(out[static_cast<std::size_t>(r)], r / 2) << "resource " << r;
  }
  std::vector<bool> used(8, false);
  for (int s : out) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    used[static_cast<std::size_t>(s)] = true;
  }
  EXPECT_EQ(std::count(used.begin(), used.end(), true), 3);
  EXPECT_EQ(shard_assignment(solver, 8, groups), out);
}

TEST(ShardAssignment, GroupPinningKeepsImbalancedGroupsWholeWithBoundedSkew) {
  // One giant group (8 resources) plus five singletons over 3 shards.  The
  // giant group must stay whole; the deal bounds every other shard's load
  // by the singleton spread, so the worst-case skew is the giant group
  // itself — never giant-plus-everything.
  MaxMinSolver solver;
  std::vector<int> groups;
  for (int r = 0; r < 8; ++r) {
    solver.add_resource(1.0);
    groups.push_back(0);
  }
  for (int g = 1; g <= 5; ++g) {
    solver.add_resource(1.0);
    groups.push_back(g);
  }
  const std::vector<int> out = shard_assignment(solver, 3, groups);
  // Giant group co-located.
  for (int r = 1; r < 8; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], out[0]);
  std::vector<int> per_shard(3, 0);
  for (int s : out) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 3);
    ++per_shard[static_cast<std::size_t>(s)];
  }
  // Every shard populated; no shard beyond giant-group + its modulo share.
  for (int s = 0; s < 3; ++s) {
    EXPECT_GE(per_shard[static_cast<std::size_t>(s)], 1) << "shard " << s;
    EXPECT_LE(per_shard[static_cast<std::size_t>(s)], 8 + 2) << "shard " << s;
  }
  // Stable across repeated calls and across a freshly-built identical solver.
  EXPECT_EQ(shard_assignment(solver, 3, groups), out);
  MaxMinSolver rebuilt;
  for (int r = 0; r < 13; ++r) rebuilt.add_resource(1.0);
  EXPECT_EQ(shard_assignment(rebuilt, 3, groups), out);
}

// ---- boundary proxies -------------------------------------------------------

/// One fluid transfer of `work` through `res`; records its finish instant.
sim::Coro one_transfer(Engine& engine, FlowModel& model, Resource* res, double work,
                       std::vector<Time>* done) {
  ActivitySpec spec;
  spec.label = engine.intern("xfer");
  spec.work = work;
  spec.demands.push_back({res, 1.0});
  co_await *model.start(spec);
  done->push_back(engine.now());
}

/// Two shards sharing one boundary link (base 8.0): each runs transfers
/// through its own proxy replica.  Returns the per-shard finish instants.
struct BoundaryScenario {
  ShardGroup group;
  struct Side {
    std::unique_ptr<FlowModel> model;
    Resource* res = nullptr;
    std::vector<Time> done;
  };
  Side side[2];

  static ShardGroup::Options make_options() {
    ShardGroup::Options o;
    o.shards = 2;
    o.lookahead = 1.0;
    return o;
  }

  explicit BoundaryScenario(double work0, double work1) : group(make_options()) {
    const int link = group.add_boundary_link("link.shared", 8.0);
    const double work[2] = {work0, work1};
    for (int s = 0; s < 2; ++s) {
      group.with_shard(s, [&](Engine& eng) {
        side[s].model = std::make_unique<FlowModel>(eng);
        side[s].res = side[s].model->add_resource("proxy" + std::to_string(s), 8.0);
        eng.spawn(one_transfer(eng, *side[s].model, side[s].res, work[s], &side[s].done));
      });
      group.bind_boundary(link, s, side[s].res);
    }
  }
  ~BoundaryScenario() {
    for (int s = 0; s < 2; ++s)
      group.with_shard(s, [&](Engine&) { side[s].model.reset(); });
  }
};

TEST(ShardBoundary, ResidualExchangeSplitsASharedLinkFairly) {
  BoundaryScenario sc(40.0, 40.0);
  sc.group.run();
  ASSERT_EQ(sc.side[0].done.size(), 1u);
  ASSERT_EQ(sc.side[1].done.size(), 1u);
  // Symmetric contenders finish together; the damped exchange throttles
  // both replicas toward base/2, so each transfer lands well past the
  // uncontended 40/8 = 5s and near the fair-share 40/4 = 10s.
  EXPECT_EQ(sc.side[0].done[0], sc.side[1].done[0]);
  EXPECT_GT(sc.side[0].done[0], 7.0);
  EXPECT_LT(sc.side[0].done[0], 12.0);
  EXPECT_GT(sc.group.stats().exchanges, 0u);
  EXPECT_GT(sc.group.stats().windows, 4u);
  // No cross-shard mail is involved: the exchange is the only coupling.
  EXPECT_EQ(sc.group.stats().messages, 0u);
}

TEST(ShardBoundary, ExchangeRestoresCapacityWhenALoadDrains) {
  BoundaryScenario sc(16.0, 80.0);
  sc.group.run();
  ASSERT_EQ(sc.side[0].done.size(), 1u);
  ASSERT_EQ(sc.side[1].done.size(), 1u);
  const Time short_done = sc.side[0].done[0];
  const Time long_done = sc.side[1].done[0];
  EXPECT_LT(short_done, long_done);
  // The long transfer is slower than uncontended (80/8 = 10s) but much
  // faster than a permanently-halved link (~19s): once the short side
  // drains, the residual exchange hands its bandwidth back.
  EXPECT_GT(long_done, 10.0);
  EXPECT_LT(long_done, 16.0);
  // With both loads gone the replicas converge (and snap) back to base.
  EXPECT_NEAR(sc.side[0].res->capacity(), 8.0, 1e-5);
  EXPECT_NEAR(sc.side[1].res->capacity(), 8.0, 1e-5);
}

TEST(ShardBoundary, ExchangeIsRunToRunDeterministic) {
  std::vector<Time> first;
  std::uint64_t first_windows = 0, first_exchanges = 0;
  for (int run = 0; run < 2; ++run) {
    BoundaryScenario sc(24.0, 56.0);
    sc.group.run();
    std::vector<Time> done;
    for (int s = 0; s < 2; ++s)
      done.insert(done.end(), sc.side[s].done.begin(), sc.side[s].done.end());
    if (run == 0) {
      first = done;
      first_windows = sc.group.stats().windows;
      first_exchanges = sc.group.stats().exchanges;
    } else {
      // Bitwise: completion instants and barrier counters match exactly.
      ASSERT_EQ(done.size(), first.size());
      for (std::size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(std::memcmp(&done[i], &first[i], sizeof(Time)), 0) << i;
      EXPECT_EQ(sc.group.stats().windows, first_windows);
      EXPECT_EQ(sc.group.stats().exchanges, first_exchanges);
    }
  }
}

// ---- serial equivalence -----------------------------------------------------

TEST(ShardGroupSerial, SingleShardMatchesPlainEngine) {
  // Reference: the exact same scenario built directly on an Engine.
  obs::Registry ref_reg;
  ref_reg.set_enabled(true);
  Time ref_end = 0.0;
  std::uint64_t ref_events = 0;
  std::vector<std::vector<Time>> ref_completions(kGroups);
  {
    obs::Registry::ScopedThreadLocal scope(ref_reg);
    Engine engine;
    std::vector<std::unique_ptr<FlowModel>> models;
    for (int g = 0; g < kGroups; ++g) {
      auto model = std::make_unique<FlowModel>(engine);
      Resource* res[2] = {model->add_resource("g" + std::to_string(g) + ".a", 4.0),
                          model->add_resource("g" + std::to_string(g) + ".b", 5.0)};
      LabelId label = engine.intern("churn");
      for (int p = 0; p < kProcsPerGroup; ++p)
        engine.spawn(churn(engine, *model, res[p % 2], res[(p + 1) % 2], label,
                           kActs, &ref_completions[g]));
      models.push_back(std::move(model));
    }
    ref_end = engine.run();
    ref_events = engine.events_dispatched();
  }

  obs::Registry shard_reg;
  shard_reg.set_enabled(true);
  Time end = 0.0;
  std::uint64_t events = 0;
  std::vector<std::vector<Time>> completions(kGroups);
  {
    obs::Registry::ScopedThreadLocal scope(shard_reg);
    GroupedScenario s(1);
    end = s.group.run();
    events = s.total_events();
    for (int g = 0; g < kGroups; ++g) completions[g] = s.groups[g].completions;
  }

  EXPECT_EQ(end, ref_end);  // bitwise: both are the same double computation
  EXPECT_EQ(events, ref_events);
  for (int g = 0; g < kGroups; ++g) EXPECT_EQ(completions[g], ref_completions[g]);
  EXPECT_EQ(snapshot_text(shard_reg.snapshot()), snapshot_text(ref_reg.snapshot()));
}

// ---- determinism ------------------------------------------------------------

struct ShardRunResult {
  Time end = 0.0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::vector<std::vector<Time>> completions;
  std::string metrics;
  std::string timeline_csv;
};

ShardRunResult run_sharded(int shards, Time lookahead, bool with_timeline) {
  ShardRunResult out;
  out.completions.resize(kGroups);
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Registry::ScopedThreadLocal scope(reg);
  GroupedScenario s(shards, lookahead);
  // Optional per-shard simulated-time sampling: sampler and store live and
  // die on the worker (the store's row blocks come from the worker's pool).
  struct ShardSampling {
    std::unique_ptr<obs::TimelineStore> store;
    std::unique_ptr<obs::Sampler> sampler;
  };
  std::vector<ShardSampling> sampling(static_cast<std::size_t>(s.group.shards()));
  if (with_timeline) {
    for (int sh = 0; sh < s.group.shards(); ++sh) {
      ShardSampling& sl = sampling[static_cast<std::size_t>(sh)];
      s.group.with_shard(sh, [&](Engine& eng) {
        sl.store = std::make_unique<obs::TimelineStore>();
        obs::SamplerConfig cfg;
        cfg.period = 0.25;
        sl.sampler =
            std::make_unique<obs::Sampler>(s.group.registry(sh), *sl.store, cfg);
        eng.set_sampler(sl.sampler.get());
      });
    }
  }
  out.end = s.group.run();
  out.events = s.total_events();
  out.windows = s.group.stats().windows;
  for (int g = 0; g < kGroups; ++g) out.completions[g] = s.groups[g].completions;
  if (with_timeline) {
    std::ostringstream csv;
    for (int sh = 0; sh < s.group.shards(); ++sh) {
      ShardSampling& sl = sampling[static_cast<std::size_t>(sh)];
      sl.store->write_csv(csv, "shard", std::to_string(sh), sh == 0);
      s.group.with_shard(sh, [&](Engine& eng) {
        eng.set_sampler(nullptr);
        sl.sampler.reset();
        sl.store.reset();
      });
    }
    out.timeline_csv = csv.str();
  }
  s.group.merge_obs(reg);
  out.metrics = snapshot_text(reg.snapshot());
  return out;
}

TEST(ShardGroupDeterminism, FourShardsRunToRunBitwiseIdentical) {
  const ShardRunResult a = run_sharded(4, 3.0, /*with_timeline=*/true);
  const ShardRunResult b = run_sharded(4, 3.0, /*with_timeline=*/true);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_FALSE(a.timeline_csv.empty());
  EXPECT_EQ(a.timeline_csv, b.timeline_csv);
}

TEST(ShardGroupDeterminism, ShardClosedRunsIdenticalAcrossShardCounts) {
  // Shard-closed scenario (kNever lookahead): the node groups never
  // interact, so the per-group event sequences — and every completion
  // instant — are a pure function of the group, not of the partition.
  const ShardRunResult one = run_sharded(1, kNever, /*with_timeline=*/false);
  const ShardRunResult two = run_sharded(2, kNever, /*with_timeline=*/false);
  const ShardRunResult four = run_sharded(4, kNever, /*with_timeline=*/false);
  EXPECT_EQ(one.completions, two.completions);
  EXPECT_EQ(one.completions, four.completions);
  EXPECT_EQ(one.events, two.events);
  EXPECT_EQ(one.events, four.events);
  EXPECT_EQ(one.end, two.end);
  EXPECT_EQ(one.end, four.end);
  // Windowing differs by design: serial runs take the fast path (0), and a
  // shard-closed multi-shard run needs exactly one window.
  EXPECT_EQ(one.windows, 0u);
  EXPECT_EQ(two.windows, 1u);
  EXPECT_EQ(four.windows, 1u);
}

TEST(ShardGroupDeterminism, FiniteLookaheadMatchesShardClosedResults) {
  // Windowed execution changes the barrier schedule, never the physics.
  const ShardRunResult closed = run_sharded(4, kNever, /*with_timeline=*/false);
  const ShardRunResult windowed = run_sharded(4, 2.5, /*with_timeline=*/false);
  EXPECT_EQ(closed.completions, windowed.completions);
  EXPECT_EQ(closed.events, windowed.events);
  EXPECT_EQ(closed.end, windowed.end);
  EXPECT_GT(windowed.windows, 1u);
}

// ---- cross-shard mail -------------------------------------------------------

TEST(ShardMailbox, DeliversCrossShardPostsAtTheirInstant) {
  ShardGroup::Options o;
  o.shards = 2;
  o.lookahead = 2.0;
  ShardGroup group(o);
  std::vector<Time> received;  // written by shard 1's worker only
  group.with_shard(0, [&](Engine& eng) {
    for (int i = 0; i < 3; ++i) {
      const Time t = static_cast<Time>(i);
      eng.call_at(t, [&group, &received, t] {
        group.post(0, 1, t + 2.0, [&group, &received] {
          received.push_back(group.engine(1).now());
        });
      });
    }
  });
  group.run();
  EXPECT_EQ(received, (std::vector<Time>{2.0, 3.0, 4.0}));
  EXPECT_EQ(group.stats().messages, 3u);
  EXPECT_GE(group.stats().windows, 2u);
  EXPECT_EQ(group.stats().spills, 0u);
}

TEST(ShardMailbox, SpillsAreCountedNeverDropped) {
  ShardGroup::Options o;
  o.shards = 2;
  o.lookahead = 1.0;
  o.mailbox_capacity = 1;
  ShardGroup group(o);
  std::vector<Time> received;
  group.with_shard(0, [&](Engine& eng) {
    eng.call_at(0.0, [&group, &received] {
      for (int i = 0; i < 3; ++i)
        group.post(0, 1, 1.0 + 0.125 * i, [&group, &received] {
          received.push_back(group.engine(1).now());
        });
    });
  });
  group.run();
  EXPECT_EQ(received, (std::vector<Time>{1.0, 1.125, 1.25}));
  EXPECT_EQ(group.stats().messages, 3u);
  EXPECT_EQ(group.stats().spills, 2u);  // lane pushes 2 and 3 exceeded cap 1
}

TEST(ShardMailbox, CrossShardPostInShardClosedGroupThrows) {
  ShardGroup::Options o;
  o.shards = 2;  // lookahead stays kNever: declared shard-closed
  ShardGroup group(o);
  bool threw = false;
  group.with_shard(0, [&](Engine& eng) {
    eng.call_at(0.0, [&group, &threw] {
      try {
        group.post(0, 1, 100.0, [] {});
      } catch (const std::logic_error&) {
        threw = true;
      }
    });
  });
  group.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(group.stats().messages, 0u);
}

// ---- error propagation ------------------------------------------------------

TEST(ShardGroupErrors, WatchdogTripOnAWorkerPropagatesToRun) {
  GroupedScenario s(2);
  s.group.with_shard(0, [](Engine& eng) {
    WatchdogConfig w;
    w.max_events = 16;  // far below what the churn workload dispatches
    eng.set_watchdog(w);
  });
  EXPECT_THROW(s.group.run(), SimStalled);
}

TEST(ShardGroupErrors, StallNamesTheWedgedShardAndWindow) {
  GroupedScenario s(2);
  s.group.with_shard(1, [](Engine& eng) {
    WatchdogConfig w;
    w.max_events = 16;
    eng.set_watchdog(w);
  });
  try {
    s.group.run();
    FAIL() << "expected SimStalled";
  } catch (const SimStalled& stalled) {
    // The group-level rewrap prepends which shard wedged in which window;
    // the engine-level inspector lines (if any) follow untouched.
    ASSERT_FALSE(stalled.blocked().empty());
    const std::string& head = stalled.blocked().front();
    EXPECT_NE(head.find("shard 1"), std::string::npos) << head;
    EXPECT_NE(head.find("window 0"), std::string::npos) << head;
    EXPECT_NE(head.find("horizon"), std::string::npos) << head;
    EXPECT_NE(std::string(stalled.what()).find("wedged in window"), std::string::npos);
  }
}

TEST(ShardGroupErrors, InvalidLookaheadRejectedAtConstruction) {
  ShardGroup::Options o;
  o.shards = 2;
  o.lookahead = 0.0;
  EXPECT_THROW(ShardGroup g(o), std::invalid_argument);
}

}  // namespace
}  // namespace cci::sim
