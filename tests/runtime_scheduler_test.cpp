// NUMA-aware scheduling and the worker-count advisor (the paper's
// future-work features), plus scheduler correctness properties.
#include <gtest/gtest.h>

#include "kernels/stream.hpp"
#include "runtime/advisor.hpp"
#include "runtime/apps.hpp"
#include "runtime/runtime.hpp"
#include "sim/rng.hpp"

namespace cci::runtime {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

struct Rig {
  Rig() : cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2),
          world(cluster, {{0, -1}, {1, -1}}) {}
  Cluster cluster;
  mpi::World world;
};

void run_to_completion(Rig& rig, Runtime& rt) {
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  ASSERT_TRUE(done.is_set());
}

TEST(NumaScheduler, ReducesRemoteTaskFraction) {
  auto remote_fraction = [](bool numa_aware) {
    Rig rig;
    RuntimeConfig cfg;
    cfg.workers = 16;  // spread over NUMA 0 and 1
    cfg.numa_aware_scheduling = numa_aware;
    Runtime rt(rig.world, 0, cfg);
    hw::KernelTraits triad = kernels::triad_traits();
    // Tasks homed alternately on NUMA 0 and 1 (where the workers are).
    for (int i = 0; i < 64; ++i) rt.add_task({"t", triad, 1e6}, i % 2);
    run_to_completion(rig, rt);
    EXPECT_EQ(rt.tasks_completed(), 64);
    return rt.remote_task_fraction();
  };
  double fifo = remote_fraction(false);
  double numa = remote_fraction(true);
  EXPECT_LT(numa, fifo * 0.8);
  EXPECT_LT(numa, 0.2);
}

TEST(NumaScheduler, StealsWorkInsteadOfStarving) {
  // All tasks on NUMA 3 but all workers on NUMA 0: locality is impossible,
  // the scheduler must still run everything.
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 8;  // cores 0..7 = NUMA 0
  cfg.numa_aware_scheduling = true;
  Runtime rt(rig.world, 0, cfg);
  for (int i = 0; i < 32; ++i)
    rt.add_task({"t", kernels::triad_traits(), 1e6}, 3);
  run_to_completion(rig, rt);
  EXPECT_EQ(rt.tasks_completed(), 32);
  EXPECT_DOUBLE_EQ(rt.remote_task_fraction(), 1.0);
}

TEST(NumaScheduler, RandomDagsExecuteEveryTaskOnce) {
  // Property: arbitrary DAGs complete fully under both schedulers.
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    for (bool numa_aware : {false, true}) {
      Rig rig;
      sim::Rng rng(seed);
      RuntimeConfig cfg;
      cfg.workers = 6;
      cfg.numa_aware_scheduling = numa_aware;
      Runtime rt(rig.world, 0, cfg);
      std::vector<Task*> tasks;
      for (int i = 0; i < 40; ++i) {
        Task* t = rt.add_task({"t", kernels::triad_traits(), 1e5 + rng.below(1000)},
                              static_cast<int>(rng.below(4)));
        // Edges only to earlier tasks: guaranteed acyclic.
        for (int e = 0; e < 2 && !tasks.empty(); ++e)
          if (rng.uniform() < 0.5)
            Runtime::add_dependency(tasks[rng.below(tasks.size())], t);
        tasks.push_back(t);
      }
      run_to_completion(rig, rt);
      EXPECT_EQ(rt.tasks_completed(), 40) << "seed " << seed;
    }
  }
}

TEST(Advisor, FindsTheKneeOfASyntheticCurve) {
  // Synthetic makespan: parallel speedup up to 12 workers, contention after.
  auto makespan = [](int n) {
    double ideal = 100.0 / std::min(n, 12);
    double contention = n > 12 ? 2.0 * (n - 12) : 0.0;
    return ideal + contention;
  };
  auto report = select_worker_count(makespan, 34);
  EXPECT_GE(report.best_workers, 10);
  EXPECT_LE(report.best_workers, 16);
  // The advisor tried a bounded number of configurations.
  EXPECT_LE(report.samples.size(), 12u);
}

TEST(Advisor, MonotoneCurvePicksMaximum) {
  auto report = select_worker_count([](int n) { return 100.0 / n; }, 34);
  EXPECT_EQ(report.best_workers, 34);
}

TEST(Advisor, WorksOnTheRealCgApp) {
  auto machine = MachineConfig::henri();
  auto np = NetworkParams::ib_edr();
  auto rt_cfg = RuntimeConfig::for_machine("henri");
  auto makespan = [&](int workers) {
    CgAppOptions opt;
    opt.n = 8192;
    opt.iterations = 2;
    opt.workers = workers;
    return run_cg_app(machine, np, rt_cfg, opt).makespan;
  };
  auto report = select_worker_count(makespan, 34);
  EXPECT_GT(report.best_workers, 1);
  EXPECT_GT(report.best_makespan, 0.0);
  // The best configuration is no slower than the max-worker one.
  double full = makespan(34);
  EXPECT_LE(report.best_makespan, full * 1.001);
}

}  // namespace
}  // namespace cci::runtime
