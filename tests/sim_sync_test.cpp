// Synchronisation primitives: events, mailboxes, semaphores.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sync.hpp"

namespace cci::sim {
namespace {

TEST(OneShotEvent, WaitersResumeOnSet) {
  Engine engine;
  OneShotEvent ev(engine);
  std::vector<Time> woke;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Engine& e, OneShotEvent& event, std::vector<Time>& w) -> Coro {
      co_await event;
      w.push_back(e.now());
    }(engine, ev, woke));
  }
  engine.call_at(2.5, [&] { ev.set(); });
  engine.run();
  ASSERT_EQ(woke.size(), 3u);
  for (Time t : woke) EXPECT_DOUBLE_EQ(t, 2.5);
}

TEST(OneShotEvent, AwaitAfterSetDoesNotSuspend) {
  Engine engine;
  OneShotEvent ev(engine);
  ev.set();
  bool ran = false;
  engine.spawn([](OneShotEvent& event, bool& flag) -> Coro {
    co_await event;
    flag = true;
  }(ev, ran));
  engine.run();
  EXPECT_TRUE(ran);
}

TEST(OneShotEvent, DoubleSetIsIdempotent) {
  Engine engine;
  OneShotEvent ev(engine);
  ev.set();
  ev.set();
  EXPECT_TRUE(ev.is_set());
}

TEST(Mailbox, FifoDelivery) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<int> got;
  engine.spawn([](Mailbox<int>& b, std::vector<int>& out) -> Coro {
    for (int i = 0; i < 3; ++i) out.push_back(co_await b.get());
  }(box, got));
  engine.call_at(1.0, [&] {
    box.put(10);
    box.put(20);
    box.put(30);
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, ReceiverBlocksUntilPut) {
  Engine engine;
  Mailbox<std::string> box(engine);
  Time got_at = -1.0;
  engine.spawn([](Engine& e, Mailbox<std::string>& b, Time& t) -> Coro {
    std::string s = co_await b.get();
    EXPECT_EQ(s, "hello");
    t = e.now();
  }(engine, box, got_at));
  engine.call_at(3.0, [&] { box.put("hello"); });
  engine.run();
  EXPECT_DOUBLE_EQ(got_at, 3.0);
}

TEST(Mailbox, EachItemWakesExactlyOneWaiter) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<int> got;
  for (int i = 0; i < 2; ++i) {
    engine.spawn([](Mailbox<int>& b, std::vector<int>& out) -> Coro {
      out.push_back(co_await b.get());
    }(box, got));
  }
  engine.call_at(1.0, [&] { box.put(7); });
  engine.run(10.0);
  ASSERT_EQ(got.size(), 1u);  // second waiter still blocked
  EXPECT_EQ(got[0], 7);
  EXPECT_EQ(engine.live_processes(), 1);
}

TEST(Mailbox, ReadyPathConsumerCannotStealReservedItem) {
  // A waiter is woken by put(); before it runs, another consumer tries a
  // ready-path get.  The reservation must protect the woken waiter's item.
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<std::pair<int, int>> got;  // (who, value)
  engine.spawn([](Mailbox<int>& b, std::vector<std::pair<int, int>>& out) -> Coro {
    out.emplace_back(1, co_await b.get());  // blocks first
  }(box, got));
  engine.call_at(1.0, [&] {
    box.put(111);  // reserves for waiter 1
    // Spawn a competing consumer at the same instant.
  });
  engine.call_at(1.0, [&] {
    int v = 0;
    EXPECT_FALSE(box.try_get(v));  // reserved: not visible
    box.put(222);
  });
  engine.spawn([](Engine& e, Mailbox<int>& b, std::vector<std::pair<int, int>>& out) -> Coro {
    co_await e.sleep(1.0);
    out.emplace_back(2, co_await b.get());
  }(engine, box, got));
  engine.run();
  ASSERT_EQ(got.size(), 2u);
  // Completion order between the two consumers is a scheduling detail, but
  // the pairing is not: waiter 1 was first in line and owns the first value.
  for (const auto& [who, value] : got) {
    EXPECT_EQ(value, who == 1 ? 111 : 222);
  }
}

TEST(Mailbox, TryGetNonBlocking) {
  Engine engine;
  Mailbox<int> box(engine);
  int v = 0;
  EXPECT_FALSE(box.try_get(v));
  box.put(5);
  EXPECT_TRUE(box.try_get(v));
  EXPECT_EQ(v, 5);
  EXPECT_FALSE(box.try_get(v));
}

TEST(Semaphore, LimitsConcurrency) {
  Engine engine;
  SimSemaphore sem(engine, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 5; ++i) {
    engine.spawn([](Engine& e, SimSemaphore& s, int& cur, int& pk) -> Coro {
      co_await s.acquire();
      ++cur;
      pk = std::max(pk, cur);
      co_await e.sleep(1.0);
      --cur;
      s.release();
    }(engine, sem, concurrent, peak));
  }
  engine.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.count(), 2u);
}

TEST(Semaphore, ReleaseHandsOffDirectly) {
  Engine engine;
  SimSemaphore sem(engine, 0);
  Time acquired_at = -1.0;
  engine.spawn([](Engine& e, SimSemaphore& s, Time& t) -> Coro {
    co_await s.acquire();
    t = e.now();
  }(engine, sem, acquired_at));
  engine.call_at(4.0, [&] { sem.release(); });
  engine.run();
  EXPECT_DOUBLE_EQ(acquired_at, 4.0);
  EXPECT_EQ(sem.count(), 0u);  // permit was transferred, not banked
}

}  // namespace
}  // namespace cci::sim
