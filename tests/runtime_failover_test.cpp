// Failover: worker deaths, rank deaths, heartbeat detection, abortable
// barriers, graceful job abort with diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "runtime/distributed.hpp"
#include "runtime/runtime.hpp"

namespace cci::runtime {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

const hw::KernelTraits kFlops{"f", 8.0, 0.0, hw::VectorClass::kScalar};

struct Rig {
  Rig() : cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2),
          world(cluster, {{0, -1}, {1, -1}}) {}
  Cluster cluster;
  mpi::World world;
};

TEST(Failover, DeadWorkersTasksReexecuteElsewhere) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 4;
  Runtime rt(rig.world, 0, cfg);
  // 8 tasks of ~0.4 s on 4 workers; worker 0 dies mid-first-task.
  for (int i = 0; i < 8; ++i) rt.add_task({"t", kFlops, 2.5e8}, 0);
  rt.kill_worker_at(0, 0.2);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  EXPECT_TRUE(done.is_set());
  EXPECT_EQ(rt.tasks_completed(), 8);  // nothing lost
  EXPECT_GE(rt.tasks_reexecuted(), 1);
}

TEST(Failover, IdleWorkerDeathDoesNotStallTheGraph) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 4;
  Runtime rt(rig.world, 0, cfg);
  Task* a = rt.add_task({"a", kFlops, 1e6}, 0);
  Task* b = rt.add_task({"b", kFlops, 1e6}, 0);
  Runtime::add_dependency(a, b);
  rt.arm_failover();
  auto& done = rt.run();
  // Kill a worker that is almost certainly idle (2 serial tasks, 4 workers).
  rig.cluster.engine().call_at(1e-4, [&] { rt.fail_worker(3); });
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  EXPECT_TRUE(done.is_set());
  EXPECT_EQ(rt.tasks_completed(), 2);
}

TEST(Failover, HealthyDistributedRunWithHeartbeatsCompletes) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;
  DistributedOptions opts;
  opts.heartbeat_interval = 0.01;
  DistributedRuntime drt(rig.world, cfg, opts);
  for (int r = 0; r < drt.ranks(); ++r)
    for (int i = 0; i < 4; ++i) drt.runtime(r).add_task({"t", kFlops, 5e7}, 0);
  DistributedRuntime::Report rep = drt.run_to_completion();
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.dead_rank, -1);
  EXPECT_GT(rep.makespan, 0.0);
  EXPECT_EQ(drt.runtime(0).tasks_completed(), 4);
  EXPECT_EQ(drt.runtime(1).tasks_completed(), 4);
}

TEST(Failover, SilentRankIsDeclaredDeadByHeartbeats) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;
  DistributedOptions opts;
  opts.heartbeat_interval = 0.01;  // death declared ~3 intervals after kill
  DistributedRuntime drt(rig.world, cfg, opts);
  // Long tasks on both ranks so the job is mid-flight when rank 1 dies.
  drt.runtime(0).add_task({"long0", kFlops, 2.5e8}, 0);
  drt.runtime(1).add_task({"long1", kFlops, 2.5e8}, 0);
  drt.kill_rank(1, 0.05);
  DistributedRuntime::Report rep = drt.run_to_completion();
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.dead_rank, 1);
  EXPECT_NE(rep.diagnostic.find("rank 1"), std::string::npos) << rep.diagnostic;
  EXPECT_NE(rep.diagnostic.find("no heartbeat"), std::string::npos) << rep.diagnostic;
  EXPECT_TRUE(drt.failed());
}

TEST(Failover, KillWithoutHeartbeatsIsDeclaredImmediately) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;
  DistributedRuntime drt(rig.world, cfg);  // heartbeats off
  drt.runtime(0).add_task({"long0", kFlops, 2.5e8}, 0);
  drt.runtime(1).add_task({"long1", kFlops, 2.5e8}, 0);
  drt.kill_rank(1, 0.05);
  DistributedRuntime::Report rep = drt.run_to_completion();
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.dead_rank, 1);
  EXPECT_NE(rep.diagnostic.find("killed"), std::string::npos) << rep.diagnostic;
}

TEST(Failover, BarrierAbortsWhenAPeerDies) {
  Rig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;
  DistributedRuntime drt(rig.world, cfg);
  drt.kill_rank(1, 0.01);  // declared dead at t=0.01 (no heartbeats)
  sim::OneShotEvent done0(rig.cluster.engine());
  bool aborted0 = false;
  // Rank 0 enters the barrier; rank 1 never will.
  rig.cluster.engine().spawn(drt.barrier(0, &done0, &aborted0));
  rig.cluster.engine().run();
  EXPECT_TRUE(done0.is_set());  // returned rather than hanging
  EXPECT_TRUE(aborted0);
  EXPECT_EQ(drt.dead_rank(), 1);
}

}  // namespace
}  // namespace cci::runtime
