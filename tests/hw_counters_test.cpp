// CounterSampler: utilization/pressure aggregation and frequency residency.
#include <gtest/gtest.h>

#include "hw/counters.hpp"
#include "hw/workload.hpp"

namespace cci::hw {
namespace {

TEST(Counters, IdleMachineShowsZeroUtilization) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  Machine machine(model, MachineConfig::henri());
  CounterSampler sampler(machine, 1e-3);
  sampler.start();
  engine.call_at(0.05, [&] { sampler.stop(); });
  engine.run(0.1);
  auto stats = sampler.mem_ctrl_stats(0);
  EXPECT_DOUBLE_EQ(stats.mean_utilization, 0.0);
  EXPECT_DOUBLE_EQ(stats.bytes_transferred, 0.0);
  EXPECT_GT(sampler.sample_count(), 40u);
}

TEST(Counters, StreamLoadShowsUpOnTheRightController) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  Machine machine(model, MachineConfig::henri());
  machine.governor().set_policy(CpuPolicy::kPerformance);
  CounterSampler sampler(machine, 1e-3);
  sampler.start();

  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  // 0.05 s of single-core STREAM against NUMA 2.
  machine.governor().core_busy(18, VectorClass::kSse);
  double iters = 12e9 / 24.0 * 0.05;
  model.start(make_compute_spec(machine, 18, 2, triad, iters));
  engine.call_at(0.05, [&] { sampler.stop(); });
  engine.run(0.2);

  auto hot = sampler.mem_ctrl_stats(2);
  auto cold = sampler.mem_ctrl_stats(0);
  EXPECT_GT(hot.mean_utilization, 0.1);
  EXPECT_NEAR(hot.bytes_transferred, 12e9 * 0.05, 0.15 * 12e9 * 0.05);
  EXPECT_DOUBLE_EQ(cold.mean_utilization, 0.0);
  EXPECT_GT(hot.peak_pressure, 0.0);
}

TEST(Counters, FrequencyResidencyTracksGovernor) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  Machine machine(model, MachineConfig::henri());
  CounterSampler sampler(machine, 1e-3);
  sampler.start();
  engine.call_at(0.02, [&] { machine.governor().core_busy(0, VectorClass::kScalar); });
  engine.call_at(0.06, [&] { machine.governor().core_idle(0); });
  engine.call_at(0.10, [&] { sampler.stop(); });
  engine.run(0.2);

  auto residency = sampler.freq_residency(0);
  // ~20 ms at idle-min before busy, ~40 ms at single-core turbo, rest idle.
  EXPECT_NEAR(residency[3.7e9], 0.04, 0.005);
  EXPECT_NEAR(residency[1.0e9], 0.06, 0.01);
}

}  // namespace
}  // namespace cci::hw
