// The schedule explorer itself, driven by hand-made threads calling the
// sched:: runtime directly — these tests run in every build (the hook
// *macros* compile out without CCI_SCHED, but the library is always there).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sched/explorer.hpp"

namespace cci::sched {
namespace {

/// Two controlled threads, each hitting `points_per_thread` kQueuePop
/// points and appending "<name><i>" to a shared log while holding the
/// scheduler token.  Returns the log; optionally exports the error string
/// and the recorded full trace.
std::vector<std::string> run_pair_workload(const Options& o, int points_per_thread,
                                           std::string* err = nullptr,
                                           Trace* full = nullptr) {
  std::vector<std::string> log;
  std::mutex log_mu;  // belt-and-braces for aborted (free-running) schedules
  Session session(o);
  expect_thread("a");
  expect_thread("b");
  auto body = [&](const char* name) {
    ThreadScope scope(name);
    for (int i = 0; i < points_per_thread; ++i) {
      point(Kind::kQueuePop, static_cast<std::uint64_t>(i));
      std::lock_guard<std::mutex> lk(log_mu);
      log.push_back(std::string(name) + std::to_string(i));
    }
  };
  std::thread ta(body, "a");
  std::thread tb(body, "b");
  await_thread_exit("a");
  await_thread_exit("b");
  {
    BlockedScope scope;
    ta.join();
    tb.join();
  }
  if (err != nullptr) *err = session.error();
  if (full != nullptr) *full = session.trace();
  return log;
}

TEST(SchedKind, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Kind::kBlockedExit); ++i) {
    const Kind k = static_cast<Kind>(i);
    Kind back = Kind::kThreadBegin;
    ASSERT_TRUE(kind_from_name(kind_name(k), back)) << kind_name(k);
    EXPECT_EQ(back, k);
  }
  Kind out = Kind::kThreadBegin;
  EXPECT_FALSE(kind_from_name("no_such_kind", out));
}

TEST(SchedTrace, FullShapeSerializeParseRoundTrips) {
  Trace t;
  t.steps.push_back(Decision{0, "main", Kind::kCacheRead, 42, {"main"}});
  t.steps.push_back(Decision{1, "a", Kind::kQueuePop, 0, {"a", "b", "main"}});
  t.steps.push_back(Decision{2, "b#2", Kind::kBarrierArrive, 7, {"b#2", "main"}});
  const Trace back = Trace::parse(t.serialize());
  ASSERT_FALSE(back.sparse);
  ASSERT_EQ(back.steps.size(), t.steps.size());
  for (std::size_t i = 0; i < t.steps.size(); ++i) {
    EXPECT_EQ(back.steps[i].step, t.steps[i].step);
    EXPECT_EQ(back.steps[i].thread, t.steps[i].thread);
    EXPECT_EQ(back.steps[i].kind, t.steps[i].kind);
    EXPECT_EQ(back.steps[i].id, t.steps[i].id);
    EXPECT_EQ(back.steps[i].runnable, t.steps[i].runnable);
  }
  // Byte-stable: serializing the parse reproduces the original text.
  EXPECT_EQ(back.serialize(), t.serialize());
}

TEST(SchedTrace, OverridesShapeSerializeParseRoundTrips) {
  Trace t;
  t.sparse = true;
  t.overrides[3] = "b";
  t.overrides[17] = "campaign.worker.1";
  const Trace back = Trace::parse(t.serialize());
  EXPECT_TRUE(back.sparse);
  EXPECT_EQ(back.overrides, t.overrides);
}

TEST(SchedTrace, ParseRejectsGarbage) {
  EXPECT_THROW(Trace::parse(""), std::runtime_error);
  EXPECT_THROW(Trace::parse("bogus header\nend\n"), std::runtime_error);
  EXPECT_THROW(Trace::parse("cci-sched-trace v1 full\n"), std::runtime_error);  // no end
  EXPECT_THROW(Trace::parse("cci-sched-trace v1 full\nstep x\nend\n"),
               std::runtime_error);
}

TEST(SchedSession, PointsAreNoOpsWithoutASession) {
  EXPECT_FALSE(active());
  EXPECT_FALSE(controlled());
  point(Kind::kQueuePop, 0);  // must simply return
  yield_wait(1);
  expect_thread("nobody");
  await_thread_exit("nobody");
  ThreadScope scope("uncontrolled");
  BlockedScope blocked;
}

TEST(SchedSession, SameSeedSameSchedule) {
  Options o;
  o.mode = Options::Mode::kRandom;
  o.seed = 1234;
  std::string e1;
  std::string e2;
  Trace t1;
  Trace t2;
  const auto log1 = run_pair_workload(o, 4, &e1, &t1);
  const auto log2 = run_pair_workload(o, 4, &e2, &t2);
  EXPECT_EQ(e1, "");
  EXPECT_EQ(e2, "");
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(t1.serialize(), t2.serialize());
  EXPECT_EQ(log1.size(), 8u);
}

TEST(SchedSession, DifferentSeedsExploreDifferentSchedules) {
  std::set<std::string> seen;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Options o;
    o.mode = Options::Mode::kRandom;
    o.seed = seed;
    std::string err;
    const auto log = run_pair_workload(o, 3, &err);
    ASSERT_EQ(err, "") << "seed " << seed;
    std::string flat;
    for (const auto& s : log) flat += s + ",";
    seen.insert(flat);
  }
  // 16 seeds over interleavings of 2x3 points: more than one distinct order.
  EXPECT_GT(seen.size(), 1u);
}

TEST(SchedSession, PctModeIsSeedDeterministicToo) {
  Options o;
  o.mode = Options::Mode::kPct;
  o.seed = 99;
  o.pct_depth = 3;
  std::string e1;
  std::string e2;
  const auto log1 = run_pair_workload(o, 4, &e1);
  const auto log2 = run_pair_workload(o, 4, &e2);
  EXPECT_EQ(e1, "");
  EXPECT_EQ(e2, "");
  EXPECT_EQ(log1, log2);
}

TEST(SchedSession, RecordedTraceReplaysBitwise) {
  Options record;
  record.mode = Options::Mode::kRandom;
  record.seed = 7;
  std::string err;
  Trace full;
  const auto recorded_log = run_pair_workload(record, 4, &err, &full);
  ASSERT_EQ(err, "");

  Options replay;
  replay.mode = Options::Mode::kReplay;
  replay.replay = full;
  Trace replayed;
  const auto replay_log = run_pair_workload(replay, 4, &err, &replayed);
  EXPECT_EQ(err, "");
  EXPECT_EQ(replay_log, recorded_log);
  EXPECT_EQ(replayed.serialize(), full.serialize());
}

TEST(SchedSession, ReplayOfTheWrongWorkloadAbortsWithDivergence) {
  Options record;
  record.mode = Options::Mode::kRandom;
  record.seed = 7;
  std::string err;
  Trace full;
  run_pair_workload(record, 4, &err, &full);
  ASSERT_EQ(err, "");

  Options replay;
  replay.mode = Options::Mode::kReplay;
  replay.replay = full;
  run_pair_workload(replay, 2, &err);  // fewer points: workload diverges
  EXPECT_NE(err.find("divergence"), std::string::npos) << err;
}

TEST(SchedSession, OverridesReproduceTheRecordedOrder) {
  Options record;
  record.mode = Options::Mode::kRandom;
  record.seed = 21;
  std::string err;
  Trace full;
  const auto recorded_log = run_pair_workload(record, 4, &err, &full);
  ASSERT_EQ(err, "");

  Options replay;
  replay.mode = Options::Mode::kOverrides;
  replay.replay = to_overrides(full);
  const auto replay_log = run_pair_workload(replay, 4, &err);
  EXPECT_EQ(err, "");
  EXPECT_EQ(replay_log, recorded_log);
}

TEST(SchedSession, CondWaitDeadlockIsDetectedNotHung) {
  Options o;
  o.mode = Options::Mode::kRandom;
  o.seed = 3;
  std::atomic<bool> flag{false};
  Session session(o);
  expect_thread("waiter");
  std::thread t([&flag] {
    ThreadScope scope("waiter");
    while (!flag.load()) yield_wait(1);
  });
  await_thread_exit("waiter");  // both sides now wait on a cond nobody can set
  EXPECT_NE(session.error().find("deadlock"), std::string::npos) << session.error();
  flag.store(true);  // release the free-running waiter
  t.join();
  EXPECT_THROW(session.finish(), ScheduleError);
}

TEST(SchedSession, NativeWaitWithoutBlockedScopeTimesOutWithDiagnostic) {
  Options o;
  o.mode = Options::Mode::kPrefix;
  o.prefix = {"a"};  // force the granted thread to be the one that blocks
  o.timeout = std::chrono::milliseconds(200);
  std::promise<void> gate;
  std::shared_future<void> release = gate.get_future().share();
  Session session(o);
  expect_thread("a");
  std::thread t([release] {
    ThreadScope scope("a");
    release.wait();  // native wait while holding the token: a schedule bug
  });
  point(Kind::kQueuePop, 0);  // parks "main"; "a" is granted and wedges
  EXPECT_NE(session.error().find("waited"), std::string::npos) << session.error();
  gate.set_value();
  t.join();
}

TEST(SchedMinimize, ShrinksAnOrderBugToItsDecisiveOverride) {
  // Planted order bug: the failure shows iff "b" logs before "a" ever logs.
  const auto first_is_b = [](const std::vector<std::string>& log) {
    return !log.empty() && log.front()[0] == 'b';
  };
  // Find a failing random schedule.
  Trace failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    Options o;
    o.mode = Options::Mode::kRandom;
    o.seed = seed;
    std::string err;
    Trace full;
    const auto log = run_pair_workload(o, 3, &err, &full);
    if (err.empty() && first_is_b(log)) {
      failing = full;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no random schedule let b run first in 64 seeds";

  const auto fails = [&first_is_b](const Trace& cand) {
    Options o;
    o.mode = Options::Mode::kOverrides;
    o.replay = cand;
    std::string err;
    const auto log = run_pair_workload(o, 3, &err);
    return err.empty() && first_is_b(log);
  };
  ASSERT_TRUE(fails(to_overrides(failing)));  // sanity: sparse form still fails
  const Trace minimized = minimize_trace(failing, fails);
  // "b" needs exactly two non-default grants to log first: one to leave its
  // thread-begin park and one for its first pop, both before "a"'s first pop.
  // The default policy picks "a" at both steps, so two overrides are provably
  // minimal — the minimizer must land there, never above.
  EXPECT_EQ(minimized.overrides.size(), 2u) << minimized.serialize();
  EXPECT_TRUE(fails(minimized));
}

TEST(SchedExhaustive, EnumeratesAllInterleavingsOfATinyWorkload) {
  std::set<std::string> orders;
  const auto result = explore_exhaustive(
      8, 512,
      [&orders] {
        std::vector<std::string> log;
        std::mutex log_mu;
        expect_thread("a");
        expect_thread("b");
        auto body = [&](const char* name) {
          ThreadScope scope(name);
          for (int i = 0; i < 2; ++i) {
            point(Kind::kQueuePop, static_cast<std::uint64_t>(i));
            std::lock_guard<std::mutex> lk(log_mu);
            log.push_back(std::string(name) + std::to_string(i));
          }
        };
        std::thread ta(body, "a");
        std::thread tb(body, "b");
        await_thread_exit("a");
        await_thread_exit("b");
        {
          BlockedScope scope;
          ta.join();
          tb.join();
        }
        std::string flat;
        for (const auto& s : log) flat += s + ",";
        orders.insert(flat);
      },
      [](const Session& s) { return s.error().empty(); });
  EXPECT_TRUE(result.exhausted) << result.schedules << " schedules";
  EXPECT_FALSE(result.stopped);
  // Interleavings of two 2-step sequences: C(4,2) = 6 distinct log orders.
  EXPECT_EQ(orders.size(), 6u);
}

TEST(SchedExhaustive, PreemptionBoundPrunesTheFrontier) {
  const auto count_with_bound = [](int bound) {
    const auto result = explore_exhaustive(
        bound, 512,
        [] {
          expect_thread("a");
          expect_thread("b");
          auto body = [](const char* name) {
            ThreadScope scope(name);
            for (int i = 0; i < 2; ++i)
              point(Kind::kQueuePop, static_cast<std::uint64_t>(i));
          };
          std::thread ta(body, "a");
          std::thread tb(body, "b");
          await_thread_exit("a");
          await_thread_exit("b");
          BlockedScope scope;
          ta.join();
          tb.join();
        },
        [](const Session& s) { return s.error().empty(); });
    EXPECT_TRUE(result.exhausted);
    return result.schedules;
  };
  const int tight = count_with_bound(0);
  const int loose = count_with_bound(8);
  EXPECT_GE(tight, 1);
  EXPECT_LT(tight, loose);
}

}  // namespace
}  // namespace cci::sched
