// Chrome trace-event export: output must be valid JSON, timed events must
// carry monotonically non-decreasing ts, and every lane's B/E events must
// form a properly nested (stack-matched) sequence — Perfetto rejects
// anything less.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cci::obs {
namespace {

// --- Minimal JSON parser (objects, arrays, strings, numbers, bools) --------
// Just enough to validate our own exporter; throws std::runtime_error on
// malformed input via ADD_FAILURE + nullptr returns.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::unique_ptr<JsonValue>> array;
  std::map<std::string, std::unique_ptr<JsonValue>> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::unique_ptr<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing garbage");
    return v;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::unique_ptr<JsonValue> fail(const std::string& why) {
    ok_ = false;
    if (error_.empty()) error_ = why + " at offset " + std::to_string(pos_);
    return nullptr;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::unique_ptr<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  std::unique_ptr<JsonValue> object() {
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kObject;
    if (!consume('{')) return fail("expected {");
    if (consume('}')) return v;
    do {
      skip_ws();
      auto key = string_value();
      if (!key) return nullptr;
      if (!consume(':')) return fail("expected :");
      auto val = value();
      if (!val) return nullptr;
      v->object[key->str] = std::move(val);
    } while (consume(','));
    if (!consume('}')) return fail("expected }");
    return v;
  }

  std::unique_ptr<JsonValue> array() {
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kArray;
    if (!consume('[')) return fail("expected [");
    if (consume(']')) return v;
    do {
      auto val = value();
      if (!val) return nullptr;
      v->array.push_back(std::move(val));
    } while (consume(','));
    if (!consume(']')) return fail("expected ]");
    return v;
  }

  std::unique_ptr<JsonValue> string_value() {
    if (!consume('"')) return fail("expected string");
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("bad escape");
        switch (s_[pos_]) {
          case 'n': v->str += '\n'; break;
          case 't': v->str += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return fail("bad \\u escape");
            pos_ += 4;  // keep validation simple: skip the code point
            break;
          default: v->str += s_[pos_];
        }
        ++pos_;
      } else {
        v->str += s_[pos_++];
      }
    }
    if (!consume('"')) return fail("unterminated string");
    return v;
  }

  std::unique_ptr<JsonValue> boolean() {
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      return fail("bad literal");
    }
    return v;
  }

  std::unique_ptr<JsonValue> null_value() {
    if (s_.compare(pos_, 4, "null") != 0) return fail("bad literal");
    pos_ += 4;
    return std::make_unique<JsonValue>();
  }

  std::unique_ptr<JsonValue> number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return fail("expected number");
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kNumber;
    v->number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

std::unique_ptr<JsonValue> export_and_parse(const Tracer& tracer, std::string* raw = nullptr) {
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  if (raw) *raw = os.str();
  std::string text = os.str();
  JsonParser p(text);
  auto doc = p.parse();
  EXPECT_TRUE(p.ok()) << p.error();
  return doc;
}

Tracer make_busy_tracer() {
  Tracer tr;
  tr.set_enabled(true);
  TrackId core = tr.track("rt.rank0.core0");
  TrackId rank = tr.track("mpi.rank0");
  TrackId res = tr.track("sim.res.node0.memctrl0");
  // Nested spans on one track.
  tr.span(core, "outer", 0.0, 10.0e-6);
  tr.span(core, "inner", 2.0e-6, 5.0e-6);
  // Genuinely overlapping spans (MPI lifecycle style) — forces lane spill.
  tr.span(rank, "rndv A", 1.0e-6, 8.0e-6);
  tr.span(rank, "rndv B", 4.0e-6, 12.0e-6);
  tr.span(res, "activity", 0.5e-6, 9.0e-6);
  tr.counter_sample("sim.resource.load", 3.0e-6, 0.75);
  tr.instant(rank, "unexpected msg", 6.0e-6);
  return tr;
}

// --- Tests ------------------------------------------------------------------

TEST(ChromeTrace, EmptyTracerProducesValidJson) {
  Tracer tr;
  auto doc = export_and_parse(tr);
  ASSERT_NE(doc, nullptr);
  const JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->type, JsonValue::Type::kArray);
}

TEST(ChromeTrace, ProducesValidJsonWithAllEventKinds) {
  Tracer tr = make_busy_tracer();
  auto doc = export_and_parse(tr);
  ASSERT_NE(doc, nullptr);
  const JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_b = false, saw_e = false, saw_i = false, saw_c = false, saw_m = false;
  for (const auto& ev : events->array) {
    const JsonValue* ph = ev->get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "B") saw_b = true;
    if (ph->str == "E") saw_e = true;
    if (ph->str == "i") saw_i = true;
    if (ph->str == "C") saw_c = true;
    if (ph->str == "M") saw_m = true;
  }
  EXPECT_TRUE(saw_b && saw_e && saw_i && saw_c && saw_m);
}

TEST(ChromeTrace, TimedEventTimestampsAreMonotonic) {
  Tracer tr = make_busy_tracer();
  auto doc = export_and_parse(tr);
  ASSERT_NE(doc, nullptr);
  double prev = -1.0;
  int timed = 0;
  for (const auto& ev : doc->get("traceEvents")->array) {
    const std::string& ph = ev->get("ph")->str;
    if (ph == "M") continue;  // metadata carries no ts
    const JsonValue* ts = ev->get("ts");
    ASSERT_NE(ts, nullptr) << "timed event without ts";
    EXPECT_GE(ts->number, prev) << "ts went backwards";
    prev = ts->number;
    ++timed;
  }
  EXPECT_GT(timed, 6);
}

TEST(ChromeTrace, BeginEndEventsMatchPerLane) {
  Tracer tr = make_busy_tracer();
  auto doc = export_and_parse(tr);
  ASSERT_NE(doc, nullptr);
  std::map<int, std::vector<std::string>> stacks;  // tid -> open span names
  for (const auto& ev : doc->get("traceEvents")->array) {
    const std::string& ph = ev->get("ph")->str;
    if (ph != "B" && ph != "E") continue;
    int tid = static_cast<int>(ev->get("tid")->number);
    const std::string& name = ev->get("name")->str;
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else {
      ASSERT_FALSE(stacks[tid].empty()) << "E without matching B on tid " << tid;
      EXPECT_EQ(stacks[tid].back(), name) << "mis-nested E on tid " << tid;
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(ChromeTrace, OverlappingSpansSpillToSeparateLanes) {
  Tracer tr = make_busy_tracer();
  auto doc = export_and_parse(tr);
  ASSERT_NE(doc, nullptr);
  // The two overlapping rndv spans cannot share a lane; thread_name
  // metadata must therefore include an overflow row "mpi.rank0 #2".
  bool saw_overflow = false;
  for (const auto& ev : doc->get("traceEvents")->array) {
    if (ev->get("ph")->str != "M") continue;
    const JsonValue* args = ev->get("args");
    if (!args) continue;
    const JsonValue* name = args->get("name");
    if (name && name->str == "mpi.rank0 #2") saw_overflow = true;
  }
  EXPECT_TRUE(saw_overflow);
}

TEST(ChromeTrace, SimSecondsBecomeTraceMicroseconds) {
  Tracer tr;
  tr.set_enabled(true);
  TrackId t = tr.track("row");
  tr.span(t, "s", 1.5e-6, 2.0);  // 1.5 us .. 2 s
  auto doc = export_and_parse(tr);
  ASSERT_NE(doc, nullptr);
  double b_ts = -1, e_ts = -1;
  for (const auto& ev : doc->get("traceEvents")->array) {
    if (ev->get("ph")->str == "B") b_ts = ev->get("ts")->number;
    if (ev->get("ph")->str == "E") e_ts = ev->get("ts")->number;
  }
  EXPECT_NEAR(b_ts, 1.5, 1e-9);
  EXPECT_NEAR(e_ts, 2e6, 1e-3);
}

TEST(ChromeTrace, SpanNamesAreEscaped) {
  Tracer tr;
  tr.set_enabled(true);
  TrackId t = tr.track("row \"quoted\"");
  tr.span(t, "name with \"quotes\" and \\slash\\", 0.0, 1.0e-6);
  std::string raw;
  auto doc = export_and_parse(tr, &raw);
  ASSERT_NE(doc, nullptr) << raw;
  bool found = false;
  for (const auto& ev : doc->get("traceEvents")->array) {
    if (ev->get("ph")->str == "B" &&
        ev->get("name")->str == "name with \"quotes\" and \\slash\\")
      found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cci::obs
