// Integration tests: the paper's headline qualitative results must emerge
// from the model (§4, Fig. 4-7).  Bounds are intentionally loose — shapes,
// onsets and orderings, not absolute numbers.
#include <gtest/gtest.h>

#include "core/interference_lab.hpp"
#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"

namespace cci::core {
namespace {

Scenario base_scenario() {
  Scenario s;  // henri + EDR defaults
  s.kernel = kernels::triad_traits();
  s.comm_thread = Placement::kFarFromNic;
  s.data = Placement::kNearNic;
  s.pingpong_iterations = 30;
  s.pingpong_warmup = 3;
  s.compute_repetitions = 5;
  s.target_pass_seconds = 0.02;
  return s;
}

TEST(Interference, LatencyUnaffectedByFewMemoryBoundCores) {
  Scenario s = base_scenario();
  s.computing_cores = 5;
  s.message_bytes = 4;
  auto r = InterferenceLab(s).run();
  // Fig. 4a: no visible latency impact at 5 cores.
  EXPECT_LT(r.comm_together.latency.median, 1.25 * r.comm_alone.latency.median);
}

TEST(Interference, LatencyDegradesWithManyMemoryBoundCores) {
  Scenario s = base_scenario();
  s.computing_cores = 35;
  s.message_bytes = 4;
  auto r = InterferenceLab(s).run();
  // Fig. 4a: latency roughly doubles with all cores computing.
  EXPECT_GT(r.comm_together.latency.median, 1.5 * r.comm_alone.latency.median);
  EXPECT_LT(r.comm_together.latency.median, 3.5 * r.comm_alone.latency.median);
  // STREAM itself is NOT slowed by a 4-byte ping-pong.
  EXPECT_LT(r.compute_together.pass_duration.median,
            1.05 * r.compute_alone.pass_duration.median);
}

TEST(Interference, BandwidthDegradesEarlierThanLatency) {
  // Fig. 4b: the network bandwidth is already impacted at 5 computing
  // cores, while latency is not (previous test).
  Scenario s = base_scenario();
  s.computing_cores = 5;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 4;
  s.pingpong_warmup = 1;
  auto r = InterferenceLab(s).run();
  EXPECT_LT(r.comm_together.bandwidth.median, 0.92 * r.comm_alone.bandwidth.median);
}

TEST(Interference, BandwidthLosesRoughlyTwoThirdsAtFullMachine) {
  Scenario s = base_scenario();
  s.computing_cores = 35;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 4;
  s.pingpong_warmup = 1;
  auto r = InterferenceLab(s).run();
  double ratio = r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
  // Paper: "reduced by almost two thirds".  Weighted max-min with the
  // onset calibrated at 3-4 cores lands somewhat deeper at full machine
  // (see EXPERIMENTS.md); the shape — severe loss, monotone in cores — holds.
  EXPECT_LT(ratio, 0.5);
  EXPECT_GT(ratio, 0.05);
}

TEST(Interference, StreamLosesUpToQuarterAgainstBigMessages) {
  // Fig. 4b / §4.3: STREAM loses at most ~25% (worst around 5 cores).
  Scenario s = base_scenario();
  s.computing_cores = 5;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 6;
  s.pingpong_warmup = 1;
  s.compute_repetitions = 8;
  auto r = InterferenceLab(s).run();
  double ratio = r.compute_together.per_core_bandwidth.median /
                 r.compute_alone.per_core_bandwidth.median;
  EXPECT_LT(ratio, 0.97);
  EXPECT_GT(ratio, 0.6);
}

TEST(Interference, CpuBoundComputationDoesNotHurtCommunication) {
  // §3.2: prime counting (no memory traffic) leaves latency and bandwidth
  // intact; latency may even improve slightly via uncore.
  Scenario s = base_scenario();
  s.kernel = kernels::prime_traits();
  s.computing_cores = 20;
  s.message_bytes = 4;
  auto r = InterferenceLab(s).run();
  EXPECT_LT(r.comm_together.latency.median, 1.05 * r.comm_alone.latency.median);
}

TEST(Interference, DataFarFromNicDropsBandwidthMoreAbruptly) {
  // Table 1: with data far from the NIC the DMA crosses the socket link,
  // so contention hits bandwidth harder than with data near the NIC.
  auto run_with_data = [](Placement data) {
    Scenario s = base_scenario();
    s.data = data;
    s.computing_cores = 20;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    auto r = InterferenceLab(s).run();
    return r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
  };
  double near_ratio = run_with_data(Placement::kNearNic);
  double far_ratio = run_with_data(Placement::kFarFromNic);
  EXPECT_LT(far_ratio, near_ratio);
}

TEST(Interference, CommThreadNearNicSuffersLessLatencyContention) {
  // Table 1: latency increases highly only when the comm thread is far.
  auto run_with_thread = [](Placement thread) {
    Scenario s = base_scenario();
    s.comm_thread = thread;
    s.computing_cores = 35;
    s.message_bytes = 4;
    auto r = InterferenceLab(s).run();
    return r.comm_together.latency.median / r.comm_alone.latency.median;
  };
  double near_ratio = run_with_thread(Placement::kNearNic);
  double far_ratio = run_with_thread(Placement::kFarFromNic);
  EXPECT_LT(near_ratio, far_ratio);
}

class IntensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(IntensitySweep, HighIntensityRestoresBandwidth) {
  // Fig. 7b: below ~6 flop/B the bandwidth drops hard; well above it the
  // program is CPU-bound and communication returns to nominal.
  double ai = GetParam();
  Scenario s = base_scenario();
  int cursor = kernels::TunableTriad::cursor_for_intensity(ai);
  s.kernel = kernels::TunableTriad(16, cursor).traits();
  s.computing_cores = 35;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 4;
  s.pingpong_warmup = 1;
  auto r = InterferenceLab(s).run();
  double ratio = r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
  if (ai <= 1.0) {
    EXPECT_LT(ratio, 0.6) << "AI=" << ai;
  } else if (ai >= 30.0) {
    EXPECT_GT(ratio, 0.9) << "AI=" << ai;
  }
}

INSTANTIATE_TEST_SUITE_P(FlopPerByte, IntensitySweep,
                         ::testing::Values(0.25, 1.0, 30.0, 100.0));

}  // namespace
}  // namespace cci::core
