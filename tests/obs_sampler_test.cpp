// Simulated-time sampler + timeline store: tick grid, delta semantics,
// deny lists, ring bound, and byte-stable CSV export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

namespace cci::obs {
namespace {

// --- TimelineStore ----------------------------------------------------------

TEST(TimelineStore, InternsSeriesOnce) {
  TimelineStore store;
  const std::uint32_t a = store.series("a");
  EXPECT_EQ(store.series("b"), a + 1);
  EXPECT_EQ(store.series("a"), a);
  ASSERT_EQ(store.series_names().size(), 2u);
  EXPECT_EQ(store.series_names()[0], "a");
}

TEST(TimelineStore, AppendAndRandomAccess) {
  TimelineStore store;
  const std::uint32_t s = store.series("x");
  for (int i = 0; i < 3000; ++i)
    store.append(static_cast<double>(i), s, static_cast<double>(i) * 2.0);
  ASSERT_EQ(store.size(), 3000u);
  EXPECT_EQ(store.dropped(), 0u);
  EXPECT_DOUBLE_EQ(store.row(0).time, 0.0);
  EXPECT_DOUBLE_EQ(store.row(2999).value, 5998.0);
}

TEST(TimelineStore, RingBoundDropsOldestBlock) {
  TimelineStore store(/*max_rows=*/TimelineStore::kBlockRows * 2);
  const std::uint32_t s = store.series("x");
  const std::size_t n = TimelineStore::kBlockRows * 3;
  for (std::size_t i = 0; i < n; ++i) store.append(static_cast<double>(i), s, 1.0);
  EXPECT_EQ(store.size(), TimelineStore::kBlockRows * 2);
  EXPECT_EQ(store.dropped(), TimelineStore::kBlockRows);
  // Oldest retained row is the first of the second block.
  EXPECT_DOUBLE_EQ(store.row(0).time, static_cast<double>(TimelineStore::kBlockRows));
}

TEST(TimelineStore, CsvIsByteStableAndPrefixable) {
  auto fill = [](TimelineStore& store) {
    const std::uint32_t s = store.series("net.bw");
    store.append(0.001, s, 1.5);
    store.append(0.002, s, 2.5);
  };
  TimelineStore a, b;
  fill(a);
  fill(b);
  std::ostringstream oa, ob;
  a.write_csv(oa);
  b.write_csv(ob);
  EXPECT_EQ(oa.str(), ob.str());
  EXPECT_EQ(oa.str(),
            "time,series,value\n"
            "0.001,net.bw,1.5\n"
            "0.002,net.bw,2.5\n");

  std::ostringstream op;
  a.write_csv(op, "campaign,point", "smoke,7");
  EXPECT_EQ(op.str(),
            "campaign,point,time,series,value\n"
            "smoke,7,0.001,net.bw,1.5\n"
            "smoke,7,0.002,net.bw,2.5\n");

  std::ostringstream oh;
  a.write_csv(oh, "campaign,point", "smoke,7", /*with_header=*/false);
  EXPECT_EQ(oh.str(),
            "smoke,7,0.001,net.bw,1.5\n"
            "smoke,7,0.002,net.bw,2.5\n");
}

// --- Sampler ----------------------------------------------------------------

struct SamplerFixture {
  Registry reg;
  TimelineStore store;

  SamplerFixture() { reg.set_enabled(true); }

  Sampler make(double period) {
    SamplerConfig config;
    config.period = period;
    return Sampler(reg, store, std::move(config));
  }
};

TEST(Sampler, FiresOnTheTickGridWithoutDrift) {
  SamplerFixture f;
  Sampler s = f.make(0.25);
  EXPECT_DOUBLE_EQ(s.next_tick(), 0.25);  // tick 0 is skipped: all-zero deltas
  s.advance_to(1.0);
  EXPECT_EQ(s.samples_taken(), 4u);  // 0.25 0.5 0.75 1.0
  EXPECT_DOUBLE_EQ(s.next_tick(), 1.25);
  s.advance_to(0.5);  // non-monotonic: no-op
  EXPECT_EQ(s.samples_taken(), 4u);
  // The grid is k * period (multiplication), so after millions of ticks the
  // next tick is still exactly on the grid — no accumulated-addition drift.
  Sampler fine = f.make(0.25);
  fine.advance_to(1e6);
  EXPECT_EQ(fine.samples_taken(), 4000000u);
  EXPECT_DOUBLE_EQ(fine.next_tick(), 1000000.25);
}

TEST(Sampler, CounterRowsAreDeltasAndQuietTicksAreSkipped) {
  SamplerFixture f;
  Sampler s = f.make(1.0);
  Counter& c = f.reg.counter("sim.events");
  c.add(3.0);
  s.advance_to(1.0);  // delta 3
  s.advance_to(2.0);  // no change: no row
  c.add(2.0);
  s.advance_to(3.0);  // delta 2
  ASSERT_EQ(f.store.size(), 2u);
  EXPECT_DOUBLE_EQ(f.store.row(0).time, 1.0);
  EXPECT_DOUBLE_EQ(f.store.row(0).value, 3.0);
  EXPECT_DOUBLE_EQ(f.store.row(1).time, 3.0);
  EXPECT_DOUBLE_EQ(f.store.row(1).value, 2.0);
  EXPECT_EQ(f.store.series_names()[f.store.row(0).series], "sim.events");
}

TEST(Sampler, GaugeRowsRecordChangesOnly) {
  SamplerFixture f;
  Sampler s = f.make(1.0);
  Gauge& g = f.reg.gauge("net.queue");
  g.set(4.0);
  s.advance_to(1.0);
  g.set(4.0);  // unchanged
  s.advance_to(2.0);
  g.set(0.0);  // back to zero is a change
  s.advance_to(3.0);
  ASSERT_EQ(f.store.size(), 2u);
  EXPECT_DOUBLE_EQ(f.store.row(0).value, 4.0);
  EXPECT_DOUBLE_EQ(f.store.row(1).value, 0.0);
}

TEST(Sampler, HistogramRowsCarryCountDeltaAndQuantiles) {
  SamplerFixture f;
  Sampler s = f.make(1.0);
  Histogram& h = f.reg.histogram("lat");
  h.record(1.0);
  h.record(2.0);
  s.advance_to(1.0);
  s.advance_to(2.0);  // count unchanged: nothing
  ASSERT_EQ(f.store.size(), 4u);
  EXPECT_EQ(f.store.series_names()[f.store.row(0).series], "lat.count");
  EXPECT_DOUBLE_EQ(f.store.row(0).value, 2.0);
  EXPECT_EQ(f.store.series_names()[f.store.row(1).series], "lat.p50");
  EXPECT_DOUBLE_EQ(f.store.row(1).value, h.value_at_quantile(0.5));
  EXPECT_EQ(f.store.series_names()[f.store.row(2).series], "lat.p90");
  EXPECT_EQ(f.store.series_names()[f.store.row(3).series], "lat.p99");
}

TEST(Sampler, DenyListsFilterByPrefixAndSubstring) {
  SamplerFixture f;
  Sampler s = f.make(1.0);  // default deny: sim.pool.* and *wall_us*
  f.reg.counter("sim.pool.activity.reused").add(5.0);
  f.reg.histogram("campaign.point_wall_us").record(10.0);
  f.reg.counter("sim.events").add(1.0);
  s.advance_to(1.0);
  ASSERT_EQ(f.store.size(), 1u);
  EXPECT_EQ(f.store.series_names()[f.store.row(0).series], "sim.events");
}

TEST(Sampler, MirrorsRowsAsTracerCounterSamples) {
  SamplerFixture f;
  f.reg.tracer().set_enabled(true);
  Sampler s = f.make(1.0);
  f.reg.counter("sim.events").add(7.0);
  s.advance_to(1.0);
  ASSERT_EQ(f.reg.tracer().counter_samples().size(), 1u);
  const auto& cs = f.reg.tracer().counter_samples()[0];
  EXPECT_DOUBLE_EQ(cs.t, 1.0);
  EXPECT_DOUBLE_EQ(cs.value, 7.0);
}

TEST(Sampler, IdenticalFeedsProduceByteIdenticalCsv) {
  auto run = [](std::ostream& os) {
    Registry reg;
    reg.set_enabled(true);
    TimelineStore store;
    SamplerConfig config;
    config.period = 0.5;
    Sampler s(reg, store, std::move(config));
    Counter& c = reg.counter("a.count");
    Gauge& g = reg.gauge("b.gauge");
    for (int i = 1; i <= 20; ++i) {
      c.add(static_cast<double>(i));
      g.set(static_cast<double>(i % 3));
      s.advance_to(0.5 * i);
    }
    store.write_csv(os);
  };
  std::ostringstream a, b;
  run(a);
  run(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_GT(a.str().size(), 100u);
}

// --- RunSampling ambient ----------------------------------------------------

TEST(RunSampling, DefaultIsOffAndScopeRestores) {
  EXPECT_FALSE(run_sampling().sampling_on());
  TimelineStore store;
  {
    RunSampling rs;
    rs.timeline_period = 1e-3;
    rs.timeline = &store;
    rs.attribution = true;
    ScopedRunSampling scope(rs);
    EXPECT_TRUE(run_sampling().sampling_on());
    EXPECT_EQ(run_sampling().timeline, &store);
    {
      ScopedRunSampling inner{RunSampling{}};
      EXPECT_FALSE(run_sampling().sampling_on());
    }
    EXPECT_TRUE(run_sampling().sampling_on());
  }
  EXPECT_FALSE(run_sampling().sampling_on());
  EXPECT_FALSE(run_sampling().attribution);
}

}  // namespace
}  // namespace cci::obs
