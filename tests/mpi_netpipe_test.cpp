// NetPIPE driver: curve shape, n1/2, protocol-cliff detection.
#include <gtest/gtest.h>

#include "mpi/netpipe.hpp"

namespace cci::mpi {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

struct NetpipeFixture : public ::testing::Test {
  NetpipeFixture() : cluster(MachineConfig::henri(), NetworkParams::ib_edr()),
                     world(cluster, {{0, -1}, {1, -1}}) {}
  Cluster cluster;
  World world;
};

TEST_F(NetpipeFixture, CurveCoversTheRequestedRange) {
  NetpipeOptions opt;
  opt.max_bytes = 1 << 20;
  auto curve = run_netpipe(world, opt);
  ASSERT_FALSE(curve.points.empty());
  EXPECT_EQ(curve.points.front().bytes, 4u);
  EXPECT_GE(curve.points.back().bytes, (1u << 20) - 4);
  // Perturbed sizes are present.
  bool found_perturbed = false;
  for (const auto& p : curve.points)
    if (p.bytes == 1021 || p.bytes == 1027) found_perturbed = true;
  EXPECT_TRUE(found_perturbed);
}

TEST_F(NetpipeFixture, PeakBandwidthNearAsymptote) {
  NetpipeOptions opt;
  opt.perturbation = 0;
  auto curve = run_netpipe(world, opt);
  EXPECT_NEAR(curve.peak_bandwidth(), 10.4e9, 0.7e9);
  EXPECT_GE(curve.best_size(), 16u << 20);
}

TEST_F(NetpipeFixture, HalfPeakSizeIsMidRange) {
  NetpipeOptions opt;
  opt.perturbation = 0;
  auto curve = run_netpipe(world, opt);
  std::size_t n_half = curve.half_peak_size();
  // n1/2 sits between the latency-dominated and streaming regimes.
  EXPECT_GE(n_half, 4u * 1024u);
  EXPECT_LE(n_half, 1u << 20);
}

TEST_F(NetpipeFixture, WellTunedStackHasNoProtocolCliff) {
  // The MadMPI-like defaults switch protocols smoothly: no latency cliff
  // anywhere on the curve (what NetPIPE's perturbed sweep is for).
  NetpipeOptions opt;
  opt.perturbation = 0;
  opt.min_bytes = 1024;
  opt.max_bytes = 1 << 20;
  auto curve = run_netpipe(world, opt);
  EXPECT_TRUE(curve.latency_cliffs(1.6).empty());
}

TEST(NetpipeMistuned, ExpensiveHandshakeShowsAsACliff) {
  // A stack with a 20 us RTS/CTS pays dearly right above the eager
  // threshold — the classic NetPIPE cliff at the protocol switch.
  auto params = NetworkParams::ib_edr();
  params.control_latency = 20e-6;
  Cluster cluster(MachineConfig::henri(), params);
  World world(cluster, {{0, -1}, {1, -1}});
  NetpipeOptions opt;
  opt.perturbation = 0;
  opt.min_bytes = 1024;
  opt.max_bytes = 1 << 20;
  auto curve = run_netpipe(world, opt);
  auto cliffs = curve.latency_cliffs(1.6);
  bool found = false;
  for (std::size_t s : cliffs)
    if (s == 64u * 1024u) found = true;
  EXPECT_TRUE(found) << "expected a cliff at the 64 KB rendezvous switch";
}

TEST_F(NetpipeFixture, BandwidthIsMonotoneAboveTheCliff) {
  NetpipeOptions opt;
  opt.perturbation = 0;
  opt.min_bytes = 128 * 1024;
  auto curve = run_netpipe(world, opt);
  for (std::size_t i = 1; i < curve.points.size(); ++i)
    EXPECT_GE(curve.points[i].bandwidth, curve.points[i - 1].bandwidth * 0.98) << i;
}

}  // namespace
}  // namespace cci::mpi
