// Cross-layer instrumentation, end to end: one small two-rank runtime
// ping-pong must leave spans from at least three layers (sim resource
// activity, MPI message lifecycle, runtime comm/poll) in the global
// tracer, and the registry must hold the headline counters.  The same
// run with observability disabled must record nothing.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "mpi/world.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/rt_pingpong.hpp"
#include "runtime/runtime.hpp"

namespace cci {
namespace {

void run_pingpong() {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  runtime::RuntimeConfig cfg = runtime::RuntimeConfig::for_machine("henri");
  cfg.workers = 4;
  runtime::Runtime rt0(world, 0, cfg);
  runtime::Runtime rt1(world, 1, cfg);
  rt0.start_workers_idle();
  rt1.start_workers_idle();
  runtime::RtPingPongOptions opt;
  opt.bytes = 256 * 1024;  // rendezvous path: RTS/CTS handshake + DMA flow
  opt.iterations = 3;
  runtime::RtPingPong pp(rt0, rt1, opt);
  pp.start();
  cluster.engine().run(1.0);
  rt0.shutdown();  // flushes the poll-count integral
  rt1.shutdown();
}

TEST(ObsIntegration, TracingCapturesAtLeastThreeLayers) {
  auto& reg = obs::Registry::global();
  reg.reset();
  reg.set_enabled(true);
  reg.tracer().set_enabled(true);

  run_pingpong();

  const obs::Tracer& tr = reg.tracer();
  EXPECT_GT(tr.span_count_on("sim.res."), 0u) << "no simulated-resource activity spans";
  EXPECT_GT(tr.span_count_on("mpi.rank"), 0u) << "no MPI message lifecycle spans";
  EXPECT_GT(tr.span_count_on("rt.rank"), 0u) << "no runtime spans";

  obs::Snapshot s = reg.snapshot();
  EXPECT_GT(s.value_of("sim.engine.events_dispatched"), 0.0);
  EXPECT_GT(s.value_of("sim.flow.resolves"), 0.0);
  EXPECT_GT(s.value_of("mpi.world.rndv_msgs"), 0.0);
  EXPECT_GT(s.value_of("mpi.world.bytes_sent"), 0.0);
  EXPECT_GT(s.value_of("runtime.worker.polls"), 0.0);

  reg.reset();
  reg.set_enabled(false);
  reg.tracer().set_enabled(false);
}

TEST(ObsIntegration, DisabledRunRecordsNothing) {
  auto& reg = obs::Registry::global();
  reg.reset();
  reg.set_enabled(false);
  reg.tracer().set_enabled(false);

  run_pingpong();

  EXPECT_TRUE(reg.tracer().spans().empty());
  EXPECT_TRUE(reg.tracer().counter_samples().empty());
  obs::Snapshot s = reg.snapshot();
  EXPECT_DOUBLE_EQ(s.value_of("sim.engine.events_dispatched"), 0.0);
  EXPECT_DOUBLE_EQ(s.value_of("mpi.world.bytes_sent"), 0.0);
  EXPECT_DOUBLE_EQ(s.value_of("runtime.worker.polls"), 0.0);
}

TEST(ObsIntegration, IdenticalRunsProduceIdenticalSnapshots) {
  auto& reg = obs::Registry::global();
  reg.reset();
  reg.set_enabled(true);
  run_pingpong();
  obs::Snapshot first = reg.snapshot();

  reg.reset();
  run_pingpong();
  obs::Snapshot second = reg.snapshot();

  ASSERT_EQ(first.entries.size(), second.entries.size());
  for (std::size_t i = 0; i < first.entries.size(); ++i) {
    EXPECT_EQ(first.entries[i].name, second.entries[i].name);
    if (first.entries[i].name.find("wall_us") != std::string::npos)
      continue;  // solver wall-time is host-clock noise by design
    if (first.entries[i].name.find("sim.pool.frames.") != std::string::npos)
      continue;  // the frame arena is a thread-level cache that deliberately
                 // stays warm across engines, so its allocated/reused split
                 // depends on what already ran in this process.  Engine-owned
                 // pools (activity, process_state, wait_node) are fresh per
                 // run and stay under the exact comparison below.
    EXPECT_DOUBLE_EQ(first.entries[i].value, second.entries[i].value)
        << first.entries[i].name;
    EXPECT_EQ(first.entries[i].count, second.entries[i].count) << first.entries[i].name;
  }

  reg.reset();
  reg.set_enabled(false);
}

}  // namespace
}  // namespace cci
