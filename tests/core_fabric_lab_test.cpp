// FabricLab: multi-tenant traffic over topology fabrics — tenant reports,
// victim/aggressor slowdowns, adaptive-routing relief, and the campaign
// determinism contract (threads, shards, schema-v3 cache keys).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <vector>

#include "core/campaign.hpp"
#include "core/fabric_lab.hpp"

namespace cci::core {
namespace {

JobSpec job(std::string label, std::vector<int> nodes) {
  JobSpec j;
  j.label = std::move(label);
  j.nodes = std::move(nodes);
  j.message_bytes = std::size_t{4} << 20;  // rendezvous: traffic on-fabric
  j.iterations = 3;
  return j;
}

/// Two tenants whose pair streams share the leaf0 -> leaf1 minimal spine
/// of an oversubscribed fat-tree: the canonical victim/aggressor clash.
Scenario contended_fat_tree() {
  Scenario s;
  s.topology = net::Topology::fat_tree(4, /*oversubscription=*/0.5);
  s.jobs = {job("victim", {0, 2}), job("aggressor", {1, 3})};
  return s;
}

TEST(FabricLab, EmptyJobListRunsTheDefaultTwoNodePair) {
  Scenario s;  // single switch, no jobs
  FabricLab lab(s);
  FabricReport r = lab.run();
  ASSERT_EQ(r.tenants.size(), 1u);
  EXPECT_EQ(r.tenants[0].label, "job");
  EXPECT_EQ(r.tenants[0].bytes, 4.0 * (1 << 20));  // default 4 x 1 MB
  EXPECT_GT(r.tenants[0].finish, 0.0);
  EXPECT_GT(r.aggregate_bw, 0.0);
  EXPECT_EQ(r.elapsed, r.tenants[0].finish);
  // Single switch has no inter-switch links and records no routes.
  EXPECT_TRUE(r.links.empty());
  EXPECT_EQ(r.routes, 0u);
  EXPECT_EQ(r.reroutes, 0u);
}

TEST(FabricLab, TenantsDeliverTheirBytesAcrossAFatTree) {
  Scenario s = contended_fat_tree();
  FabricLab lab(s);
  FabricReport r = lab.run();
  ASSERT_EQ(r.tenants.size(), 2u);
  const double expect_bytes = 3.0 * (std::size_t{4} << 20);
  EXPECT_EQ(r.tenant("victim")->bytes, expect_bytes);
  EXPECT_EQ(r.tenant("aggressor")->bytes, expect_bytes);
  EXPECT_EQ(r.tenant("missing"), nullptr);
  EXPECT_EQ(r.total_bytes, 2.0 * expect_bytes);
  // Delivery latency is measured per message against the injection grid.
  EXPECT_EQ(r.tenant("victim")->delivery_latency.n, 3u);
  // All 16 fat-tree links are summarized; the shared uplink saw traffic.
  ASSERT_EQ(r.links.size(), 16u);
  double peak = 0.0;
  for (const LinkReport& l : r.links) peak = std::max(peak, l.peak);
  EXPECT_GT(peak, 0.0);
  EXPECT_GT(r.routes, 0u);
  EXPECT_EQ(r.reroutes, 0u);  // minimal routing never deviates
}

TEST(FabricLab, AggressorSlowsTheVictimOnTheSharedSpine) {
  Scenario s = contended_fat_tree();
  FabricLab lab(s);
  const double alone = lab.run("victim").tenant("victim")->finish;
  FabricReport both = lab.run({"victim", "aggressor"});
  const double together = both.tenant("victim")->finish;
  EXPECT_GT(alone, 0.0);
  // Both tenants squeeze through the same half-rate uplink pair.
  EXPECT_GT(together, 1.2 * alone);
  // The silent tenant reports nothing in the alone run.
  FabricReport alone_report = lab.run("victim");
  EXPECT_EQ(alone_report.tenant("aggressor")->bytes, 0.0);
  EXPECT_EQ(alone_report.tenant("aggressor")->finish, 0.0);
}

TEST(FabricLab, AdaptiveRoutingRelievesTheSharedSpine) {
  Scenario minimal = contended_fat_tree();
  Scenario adaptive = contended_fat_tree();
  adaptive.topology.routing(net::RoutingPolicy::kAdaptive);
  FabricLab lab_min(minimal);
  FabricLab lab_ad(adaptive);
  FabricReport r_min = lab_min.run();
  FabricReport r_ad = lab_ad.run();
  // Adaptive spreads the two streams over both spines: strictly earlier
  // finish and at least one recorded deviation from the minimal spine.
  EXPECT_LT(r_ad.elapsed, r_min.elapsed);
  EXPECT_GT(r_ad.reroutes, 0u);
  EXPECT_EQ(r_min.reroutes, 0u);
}

TEST(FabricLab, RepeatRunsAreBitwiseIdentical) {
  Scenario s = contended_fat_tree();
  s.topology.routing(net::RoutingPolicy::kAdaptive);
  FabricLab lab(s);
  FabricReport a = lab.run();
  std::vector<net::Cluster::RouteChoice> trace_a = lab.cluster().route_trace();
  FabricReport b = lab.run();
  std::vector<net::Cluster::RouteChoice> trace_b = lab.cluster().route_trace();
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.reroutes, b.reroutes);
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].finish, b.tenants[i].finish);
    EXPECT_EQ(a.tenants[i].delivery_latency.median, b.tenants[i].delivery_latency.median);
  }
  // The exact routing decision sequence reproduces, RNG tie-breaks and all.
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].src, trace_b[i].src);
    EXPECT_EQ(trace_a[i].dst, trace_b[i].dst);
    EXPECT_EQ(trace_a[i].via, trace_b[i].via);
  }
}

TEST(FabricLab, SimShardCountDoesNotTouchTheLab) {
  // FabricLab always runs its cluster serially (one engine, one event
  // order); CCI_SIM_SHARDS must not leak into its physics.
  Scenario s = contended_fat_tree();
  s.topology.routing(net::RoutingPolicy::kAdaptive);
  FabricReport base = FabricLab(s).run();
  setenv("CCI_SIM_SHARDS", "4", 1);
  FabricReport sharded = FabricLab(s).run();
  unsetenv("CCI_SIM_SHARDS");
  EXPECT_EQ(base.elapsed, sharded.elapsed);
  EXPECT_EQ(base.routes, sharded.routes);
  EXPECT_EQ(base.reroutes, sharded.reroutes);
  for (std::size_t i = 0; i < base.tenants.size(); ++i)
    EXPECT_EQ(base.tenants[i].finish, sharded.tenants[i].finish);
}

// ---- campaign integration ---------------------------------------------------

Campaign fabric_campaign() {
  Scenario base = contended_fat_tree();
  SweepSpec spec(base);
  spec.seed_policy(SeedPolicy::kFixed)
      .axis<net::RoutingPolicy>(
          "routing", {net::RoutingPolicy::kMinimal, net::RoutingPolicy::kAdaptive},
          [](Scenario& s, const net::RoutingPolicy& p) { s.topology.routing(p); },
          [](const net::RoutingPolicy& p) { return std::string(net::to_string(p)); },
          [](const net::RoutingPolicy& p) { return static_cast<double>(p); })
      .values("offered_load", {0.5, 1.0},
              [](Scenario& s, double v) {
                for (JobSpec& j : s.jobs) j.offered_load = v;
              });
  Campaign c("fabric_test", std::move(spec));
  c.column("elapsed_ms", 3, Campaign::Metric{})
      .column("victim_bw", 3, Campaign::Metric{})
      .evaluator("fabric_test.v1", [](const SweepPoint& p) -> std::vector<double> {
        FabricLab lab(p.scenario);
        FabricReport r = lab.run();
        return {r.elapsed * 1e3, r.tenant("victim")->achieved_bw / 1e9};
      });
  return c;
}

TEST(FabricLab, CampaignValuesAreThreadCountInvariant) {
  Campaign c = fabric_campaign();
  CampaignOptions serial, parallel;
  serial.jobs = 1;
  parallel.jobs = 8;
  CampaignRun a = CampaignEngine(serial).run(c);
  CampaignRun b = CampaignEngine(parallel).run(c);
  ASSERT_EQ(a.values.size(), 4u);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i)
    EXPECT_EQ(a.values[i], b.values[i]) << "point " << i;
  std::ostringstream ta, tb;
  a.table(c).print(ta);
  b.table(c).print(tb);
  EXPECT_EQ(ta.str(), tb.str());
}

TEST(FabricLab, CampaignShardsUnionToTheFullGrid) {
  Campaign c = fabric_campaign();
  CampaignRun full = CampaignEngine(CampaignOptions{}).run(c);
  std::set<std::size_t> seen;
  for (int shard = 0; shard < 2; ++shard) {
    CampaignOptions o;
    o.shard_index = shard;
    o.shard_count = 2;
    CampaignRun run = CampaignEngine(o).run(c);
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      EXPECT_TRUE(seen.insert(run.points[i].index).second);
      EXPECT_EQ(run.values[i], full.values[run.points[i].index]);
    }
  }
  EXPECT_EQ(seen.size(), full.points.size());
}

TEST(CampaignSchemaV3, CacheKeySeesTopologyAndTenantChanges) {
  Campaign c = fabric_campaign();
  SweepPoint base = c.spec().expand()[0];

  SweepPoint other_topology = base;
  other_topology.scenario.topology = net::Topology::dragonfly(3, 2, 2);
  EXPECT_NE(cache_key(c, base), cache_key(c, other_topology));

  SweepPoint other_threshold = base;
  other_threshold.scenario.topology.adaptive_threshold(0.9);
  EXPECT_NE(cache_key(c, base), cache_key(c, other_threshold));

  SweepPoint other_placement = base;
  other_placement.scenario.jobs[0].nodes = {0, 4};  // different leaf
  EXPECT_NE(cache_key(c, base), cache_key(c, other_placement));

  SweepPoint other_pattern = base;
  other_pattern.scenario.jobs[0].pattern = TrafficPattern::kRing;
  EXPECT_NE(cache_key(c, base), cache_key(c, other_pattern));

  SweepPoint fewer_jobs = base;
  fewer_jobs.scenario.jobs.pop_back();
  EXPECT_NE(cache_key(c, base), cache_key(c, fewer_jobs));

  // And the serialization itself names the new fields.
  std::ostringstream os;
  serialize_scenario(os, base.scenario);
  EXPECT_NE(os.str().find("t.kind="), std::string::npos);
  EXPECT_NE(os.str().find("s.jobs=2;"), std::string::npos);
  EXPECT_NE(os.str().find("victim"), std::string::npos);
}

}  // namespace
}  // namespace cci::core
