// JSON result serialization: structure and round-trippable values.
#include <gtest/gtest.h>

#include <sstream>

#include "core/result_io.hpp"
#include "kernels/stream.hpp"

namespace cci::core {
namespace {

TEST(ResultIo, JsonWriterNestsAndSeparates) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("a", 1.5);
    w.field("b", std::string("x"));
    w.object_field("inner");
    w.field("c", 2);
    w.end_object();
    w.begin_array("arr");
    w.begin_object();
    w.field("d", 3);
    w.end_object();
    w.end_array();
    w.end_object();
  }
  std::string out = os.str();
  EXPECT_NE(out.find("\"a\": 1.5"), std::string::npos);
  EXPECT_NE(out.find("\"inner\": {"), std::string::npos);
  EXPECT_NE(out.find("\"arr\": ["), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['), std::count(out.begin(), out.end(), ']'));
  // No trailing comma before a closing brace.
  EXPECT_EQ(out.find(",\n}"), std::string::npos);
}

TEST(ResultIo, FullResultSerializes) {
  Scenario s;
  s.kernel = kernels::triad_traits();
  s.computing_cores = 5;
  s.message_bytes = 4;
  s.pingpong_iterations = 10;
  s.compute_repetitions = 2;
  s.target_pass_seconds = 0.005;
  auto r = InterferenceLab(s).run();
  std::ostringstream os;
  write_result_json(os, s, r);
  std::string out = os.str();
  EXPECT_NE(out.find("\"machine\": \"henri\""), std::string::npos);
  EXPECT_NE(out.find("\"kernel\": \"stream-triad\""), std::string::npos);
  EXPECT_NE(out.find("\"comm_together\""), std::string::npos);
  EXPECT_NE(out.find("\"mem_stall_fraction\""), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), std::count(out.begin(), out.end(), '}'));
}

TEST(ResultIo, NonFiniteValuesBecomeNull) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("bad", std::numeric_limits<double>::infinity());
    w.end_object();
  }
  EXPECT_NE(os.str().find("\"bad\": null"), std::string::npos);
}

}  // namespace
}  // namespace cci::core
