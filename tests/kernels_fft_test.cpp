// FFT kernel: correctness against the reference DFT, round trips, traits.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fft.hpp"
#include "sim/rng.hpp"

namespace cci::kernels {
namespace {

std::vector<Fft::Complex> random_signal(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Fft::Complex> v(n);
  for (auto& x : v) x = Fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

double max_err(const std::vector<Fft::Complex>& a, const std::vector<Fft::Complex>& b) {
  double e = 0;
  for (std::size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 42);
  auto want = Fft::dft_reference(signal);
  auto got = signal;
  Fft(n).forward(got);
  EXPECT_LT(max_err(got, want), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, ForwardInverseRoundTrips) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 7);
  auto data = signal;
  Fft fft(n);
  fft.forward(data);
  fft.inverse(data);
  EXPECT_LT(max_err(data, signal), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes, ::testing::Values(2u, 4u, 8u, 64u, 256u, 1024u));

TEST(Fft, ImpulseTransformsToConstant) {
  std::vector<Fft::Complex> impulse(16, {0, 0});
  impulse[0] = {1, 0};
  Fft(16).forward(impulse);
  for (const auto& x : impulse) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  auto signal = random_signal(512, 3);
  double time_energy = 0;
  for (auto& x : signal) time_energy += std::norm(x);
  auto freq = signal;
  Fft(512).forward(freq);
  double freq_energy = 0;
  for (auto& x : freq) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 512.0, time_energy, 1e-9 * time_energy);
}

TEST(Fft, TraitsScaleWithSize) {
  auto small = Fft::traits(1024);       // 16 KB: cache resident
  auto large = Fft::traits(1u << 24);   // 256 MB: streaming
  EXPECT_LT(small.dram_fraction(25e6), 0.01);
  EXPECT_GT(large.dram_fraction(25e6), 0.9);
  EXPECT_DOUBLE_EQ(Fft::butterflies(8), 12.0);  // 4 * 3 levels
}

}  // namespace
}  // namespace cci::kernels
