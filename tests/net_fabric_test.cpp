// Switched-fabric topology: bisection bandwidth, incast, oversubscription,
// and the per-message network trace.
#include <gtest/gtest.h>

#include "mpi/world.hpp"
#include "trace/stats.hpp"

namespace cci::net {
namespace {

using hw::MachineConfig;

struct Flow {
  int src, dst;
  mpi::RequestPtr sreq, rreq;
  sim::Time done_at = -1;
};

/// Launch concurrent 256 MB transfers and return per-flow completion times.
std::vector<double> run_flows(Cluster& cluster, mpi::World& world,
                              const std::vector<std::pair<int, int>>& pairs) {
  std::vector<std::unique_ptr<Flow>> flows;
  int tag = 100;
  for (auto [src, dst] : pairs) {
    auto f = std::make_unique<Flow>();
    f->src = src;
    f->dst = dst;
    f->rreq = world.irecv(dst, src, tag, mpi::MsgView{256u << 20, 0, 0});
    f->sreq = world.isend(src, dst, tag, mpi::MsgView{256u << 20, 0, 0});
    ++tag;
    flows.push_back(std::move(f));
  }
  cluster.engine().run();
  std::vector<double> times;
  for (auto& f : flows) {
    EXPECT_TRUE(f->sreq->test());
    times.push_back(cluster.engine().now());
  }
  return times;
}

TEST(Fabric, DisjointPairsGetFullBisection) {
  // 0->1 and 2->3 simultaneously: a non-blocking switch gives both full
  // speed — same completion time as a single transfer.
  Cluster four(MachineConfig::henri(), NetworkParams::ib_edr(), 4);
  mpi::World world4(four, {{0, -1}, {1, -1}, {2, -1}, {3, -1}});
  run_flows(four, world4, {{0, 1}, {2, 3}});
  double t_pair = four.engine().now();

  Cluster two(MachineConfig::henri(), NetworkParams::ib_edr(), 2);
  mpi::World world2(two, {{0, -1}, {1, -1}});
  run_flows(two, world2, {{0, 1}});
  double t_single = two.engine().now();
  EXPECT_NEAR(t_pair, t_single, 0.15 * t_single);
}

TEST(Fabric, IncastSharesTheReceiverPort) {
  // 1->0 and 2->0: both squeeze through node 0's rx port (and its NIC).
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 3);
  mpi::World world(cluster, {{0, -1}, {1, -1}, {2, -1}});
  run_flows(cluster, world, {{1, 0}, {2, 0}});
  double t_incast = cluster.engine().now();

  Cluster solo(MachineConfig::henri(), NetworkParams::ib_edr(), 3);
  mpi::World world1(solo, {{0, -1}, {1, -1}, {2, -1}});
  run_flows(solo, world1, {{1, 0}});
  double t_solo = solo.engine().now();
  EXPECT_GT(t_incast, 1.6 * t_solo);
}

TEST(Fabric, OversubscribedCrossbarThrottlesDisjointPairs) {
  ClusterSpec spec;
  spec.topology = Topology::single_switch(0.25);  // core carries 1/4 of ports
  spec.nodes = 4;
  Cluster cluster(std::move(spec));
  mpi::World world(cluster, {{0, -1}, {1, -1}, {2, -1}, {3, -1}});
  run_flows(cluster, world, {{0, 1}, {2, 3}});
  double t_oversub = cluster.engine().now();

  Cluster healthy(MachineConfig::henri(), NetworkParams::ib_edr(), 4);
  mpi::World world2(healthy, {{0, -1}, {1, -1}, {2, -1}, {3, -1}});
  run_flows(healthy, world2, {{0, 1}, {2, 3}});
  EXPECT_GT(t_oversub, 1.5 * healthy.engine().now());
}

TEST(Fabric, MessageTraceRecordsProtocolAndWindows) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2);
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  world.enable_message_trace(true);
  world.irecv(1, 0, 7, mpi::MsgView{64, 0, 0});
  world.isend(0, 1, 7, mpi::MsgView{64, 0, 0});
  world.irecv(1, 0, 8, mpi::MsgView{4u << 20, 0, 0});
  world.isend(0, 1, 8, mpi::MsgView{4u << 20, 0, 0});
  cluster.engine().run();
  const auto& trace = world.message_trace();
  ASSERT_EQ(trace.size(), 2u);
  const auto& small = trace[0].bytes == 64 ? trace[0] : trace[1];
  const auto& big = trace[0].bytes == 64 ? trace[1] : trace[0];
  EXPECT_TRUE(small.eager);
  EXPECT_FALSE(big.eager);
  EXPECT_GT(big.transfer_start, big.post_time);  // rendezvous handshake first
  EXPECT_GT(big.complete_time, big.transfer_start);
  EXPECT_DOUBLE_EQ(small.post_time, small.transfer_start);
}

}  // namespace
}  // namespace cci::net
