// Overlap benchmark (reference [7] of the paper): nonblocking transfers
// hide behind computation unless the computation hogs the memory bus.
#include <gtest/gtest.h>

#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "mpi/overlap.hpp"

namespace cci::mpi {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

TEST(Overlap, PureWaitOverlapsNothingButCostsNothing) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  World world(cluster, {{0, -1}, {1, -1}});
  OverlapOptions opt;
  opt.bytes = 4 << 20;
  opt.compute_cores = {};  // communication only
  auto r = measure_overlap(world, opt);
  EXPECT_GT(r.t_comm, 0.0);
  EXPECT_DOUBLE_EQ(r.t_comp, 0.0);
}

TEST(Overlap, CpuBoundComputationOverlapsWell) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  World world(cluster, {{0, -1}, {1, -1}});
  OverlapOptions opt;
  opt.bytes = 8 << 20;
  opt.kernel = kernels::prime_traits();  // zero memory traffic
  opt.compute_cores = {0, 1, 2, 3};
  auto r = measure_overlap(world, opt);
  // DMA progresses while the cores crunch integers: near-perfect overlap.
  EXPECT_GT(r.ratio(), 0.7);
  EXPECT_LT(r.t_overlap, (r.t_comm + r.t_comp) * 0.95);
}

TEST(Overlap, MemoryBoundComputationDegradesOverlap) {
  auto ratio_with = [](const hw::KernelTraits& kernel, int cores) {
    Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
    World world(cluster, {{0, -1}, {1, -1}});
    OverlapOptions opt;
    opt.bytes = 8 << 20;
    opt.kernel = kernel;
    for (int c = 0; c < cores; ++c) opt.compute_cores.push_back(c);
    return measure_overlap(world, opt).ratio();
  };
  double cpu_bound = ratio_with(kernels::prime_traits(), 8);
  double mem_bound = ratio_with(kernels::triad_traits(), 8);
  // STREAM fights the DMA for the controller: overlap efficiency drops.
  EXPECT_LT(mem_bound, cpu_bound);
}

}  // namespace
}  // namespace cci::mpi
