// LogGP fitting: the extracted parameters must match the network model's
// construction (G ~ 1/asymptotic bandwidth; o scales with 1/f).
#include <gtest/gtest.h>

#include "mpi/loggp.hpp"

namespace cci::mpi {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

TEST(LogGP, GapMatchesAsymptoticBandwidth) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  World world(cluster, {{0, -1}, {1, -1}});
  std::vector<std::size_t> sizes{4, 1024, 1u << 20, 8u << 20, 32u << 20, 64u << 20};
  auto times = measure_one_way_times(world, sizes);
  auto p = fit_loggp(sizes, times);
  // G ~ 1 / 10.5 GB/s (max uncore engaged by the active comm cores).
  EXPECT_NEAR(1.0 / p.gap_per_byte, 10.4e9, 0.5e9);
  EXPECT_GT(p.latency + 2 * p.overhead, 1.3e-6);
  EXPECT_LT(p.latency + 2 * p.overhead, 2.2e-6);
  EXPECT_LT(p.fit_residual, 0.1e-3);
}

TEST(LogGP, TwoFrequencyFitSeparatesOverheadFromLatency) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  auto p = fit_loggp_two_frequencies(cluster, 1.0e9, 2.3e9, /*comm_core=*/35);
  // Construction: o_send+o_recv = 2300 cycles -> o ~ 1150 cycles.
  // At 2.3 GHz: o ~ 0.5 us; L is the frequency-independent remainder.
  EXPECT_NEAR(p.overhead, 0.5e-6, 0.15e-6);
  EXPECT_GT(p.latency, 0.5e-6);
  EXPECT_LT(p.latency, 1.2e-6);
  // Sanity: intercept reassembles to the measured small-message time.
  EXPECT_NEAR(p.latency + 2 * p.overhead, 1.84e-6, 0.25e-6);
}

TEST(LogGP, MeasuredTimesAreMonotoneInSize) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  World world(cluster, {{0, -1}, {1, -1}});
  std::vector<std::size_t> sizes{4, 64, 4096, 65536, 1u << 20, 16u << 20};
  auto times = measure_one_way_times(world, sizes);
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GE(times[i], times[i - 1] * 0.98) << i;
}

}  // namespace
}  // namespace cci::mpi
