// Engine fundamentals: clock, timers, process lifecycle, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace cci::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0.0);
}

TEST(Engine, CallbacksRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.call_at(2.0, [&] { order.push_back(2); });
  engine.call_at(1.0, [&] { order.push_back(1); });
  engine.call_at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(Engine, SameInstantCallbacksRunInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) engine.call_at(1.0, [&, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CancelledCallbackDoesNotRun) {
  Engine engine;
  bool ran = false;
  auto h = engine.call_at(1.0, [&] { ran = true; });
  h.cancel();
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine engine;
  bool late = false;
  engine.call_at(5.0, [&] { late = true; });
  Time t = engine.run(2.0);
  EXPECT_EQ(t, 2.0);
  EXPECT_FALSE(late);
  engine.run();
  EXPECT_TRUE(late);
}

Coro sleeper(Engine& engine, std::vector<Time>& wakes) {
  co_await engine.sleep(1.5);
  wakes.push_back(engine.now());
  co_await engine.sleep(0.5);
  wakes.push_back(engine.now());
}

TEST(Engine, ProcessSleepAdvancesClock) {
  Engine engine;
  std::vector<Time> wakes;
  engine.spawn(sleeper(engine, wakes));
  engine.run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_DOUBLE_EQ(wakes[0], 1.5);
  EXPECT_DOUBLE_EQ(wakes[1], 2.0);
  EXPECT_EQ(engine.live_processes(), 0);
}

Coro child(Engine& engine, int& counter) {
  co_await engine.sleep(1.0);
  ++counter;
}

Coro parent(Engine& engine, int& counter, Time& join_time) {
  auto ref = engine.spawn(child(engine, counter));
  co_await ref;
  join_time = engine.now();
  ++counter;
}

TEST(Engine, JoinWaitsForChildCompletion) {
  Engine engine;
  int counter = 0;
  Time join_time = -1.0;
  engine.spawn(parent(engine, counter, join_time));
  engine.run();
  EXPECT_EQ(counter, 2);
  EXPECT_DOUBLE_EQ(join_time, 1.0);
}

TEST(Engine, JoiningFinishedProcessDoesNotBlock) {
  Engine engine;
  int counter = 0;
  auto ref = engine.spawn(child(engine, counter));
  engine.run();
  ASSERT_TRUE(ref.done());
  Time join_time = -1.0;
  engine.spawn([](Engine& e, ProcessRef r, Time& jt) -> Coro {
    co_await r;
    jt = e.now();
  }(engine, ref, join_time));
  engine.run();
  EXPECT_DOUBLE_EQ(join_time, 1.0);  // joined instantly at current time
}

TEST(Engine, YieldRunsAfterEventsAtSameInstant) {
  Engine engine;
  std::vector<int> order;
  engine.spawn([](Engine& e, std::vector<int>& o) -> Coro {
    o.push_back(1);
    co_await e.yield();
    o.push_back(3);
  }(engine, order));
  engine.call_at(0.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, BlockedProcessIsReclaimedAtEngineDestruction) {
  // A process waiting forever must not leak (ASan would flag it).
  auto engine = std::make_unique<Engine>();
  auto forever = [](Engine& e) -> Coro { co_await e.sleep(kNever); };
  engine->spawn(forever(*engine));
  engine->run(10.0);
  EXPECT_EQ(engine->live_processes(), 1);
  engine.reset();  // must destroy the suspended frame
}

TEST(Engine, ManyProcessesDeterministicInterleaving) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      engine.spawn([](Engine& e, std::vector<int>& o, int id) -> Coro {
        co_await e.sleep(0.001 * (id % 7));
        o.push_back(id);
        co_await e.sleep(0.001 * (id % 3));
        o.push_back(100 + id);
      }(engine, order, i));
    }
    engine.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cci::sim
