// Collectives over the mini-MPI: completion, scaling shape, barriers.
#include <gtest/gtest.h>

#include <memory>

#include "mpi/collectives.hpp"

namespace cci::mpi {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

struct CollRig {
  explicit CollRig(int nodes)
      : cluster(MachineConfig::henri(), NetworkParams::ib_edr(), nodes) {
    std::vector<RankConfig> ranks;
    for (int n = 0; n < nodes; ++n) ranks.push_back({n, -1});
    world = std::make_unique<World>(cluster, ranks);
  }
  /// Run one collective on all ranks; returns completion time.
  template <typename Launch>
  double run_all(Launch&& launch) {
    std::vector<std::unique_ptr<sim::OneShotEvent>> done;
    for (int r = 0; r < world->size(); ++r) {
      done.push_back(std::make_unique<sim::OneShotEvent>(cluster.engine()));
      cluster.engine().spawn(launch(r, done.back().get()));
    }
    cluster.engine().run();
    for (auto& d : done) EXPECT_TRUE(d->is_set());
    return cluster.engine().now();
  }
  Cluster cluster;
  std::unique_ptr<World> world;
};

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BcastCompletesOnAllRanks) {
  CollRig rig(GetParam());
  Coll coll(*rig.world, 70000);
  rig.run_all([&](int r, sim::OneShotEvent* d) {
    return coll.bcast(r, 0, MsgView{64 * 1024, 0, 0}, d);
  });
}

TEST_P(CollectiveSizes, BcastFromNonZeroRoot) {
  CollRig rig(GetParam());
  Coll coll(*rig.world, 71000);
  int root = GetParam() - 1;
  rig.run_all([&](int r, sim::OneShotEvent* d) {
    return coll.bcast(r, root, MsgView{4096, 0, 0}, d);
  });
}

TEST_P(CollectiveSizes, AllgatherCompletes) {
  CollRig rig(GetParam());
  Coll coll(*rig.world, 72000);
  rig.run_all([&](int r, sim::OneShotEvent* d) {
    return coll.allgather(r, MsgView{8192, 0, 0}, d);
  });
}

TEST_P(CollectiveSizes, AllreduceCompletes) {
  CollRig rig(GetParam());
  Coll coll(*rig.world, 73000);
  rig.run_all([&](int r, sim::OneShotEvent* d) {
    return coll.allreduce(r, MsgView{4096, 0, 0}, d);
  });
}

TEST_P(CollectiveSizes, BarrierCompletes) {
  CollRig rig(GetParam());
  Coll coll(*rig.world, 74000);
  rig.run_all([&](int r, sim::OneShotEvent* d) { return coll.barrier(r, d); });
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveSizes, ::testing::Values(2, 3, 4, 5, 8));

TEST(Collectives, BcastScalesLogarithmically) {
  // Binomial tree: time grows ~log2(P), far below linear.
  auto time_for = [](int nodes) {
    CollRig rig(nodes);
    Coll coll(*rig.world, 75000);
    return rig.run_all([&](int r, sim::OneShotEvent* d) {
      return coll.bcast(r, 0, MsgView{4, 0, 0}, d);
    });
  };
  double t2 = time_for(2);
  double t8 = time_for(8);
  EXPECT_LT(t8, 5.0 * t2);  // log2(8)=3 rounds vs 1, plus pipeline effects
  EXPECT_GT(t8, t2);
}

TEST(Collectives, RingAllgatherTimeGrowsLinearly) {
  auto time_for = [](int nodes) {
    CollRig rig(nodes);
    Coll coll(*rig.world, 76000);
    return rig.run_all([&](int r, sim::OneShotEvent* d) {
      return coll.allgather(r, MsgView{1 << 20, 0, 0}, d);
    });
  };
  double t2 = time_for(2);
  double t6 = time_for(6);
  // 5 ring steps vs 1: within a factor ~2 of the step ratio (wire sharing).
  EXPECT_GT(t6 / t2, 2.5);
}

}  // namespace
}  // namespace cci::mpi
