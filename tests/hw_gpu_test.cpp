// GPU transfer model: copy timing, contention with compute and with the
// network DMA (the paper's future-work scenario, made measurable).
#include <gtest/gtest.h>

#include "hw/frequency_governor.hpp"
#include "hw/gpu.hpp"
#include "hw/workload.hpp"
#include "mpi/pingpong.hpp"
#include "trace/stats.hpp"

namespace cci::hw {
namespace {

struct GpuRig {
  GpuRig() : model(engine), machine(model, MachineConfig::henri()), gpu(machine, GpuConfig{}) {
    machine.governor().set_policy(CpuPolicy::kPerformance);
  }
  sim::Engine engine;
  sim::FlowModel model;
  Machine machine;
  GpuDevice gpu;
};

TEST(Gpu, QuietCopyRunsAtPcieSpeed) {
  GpuRig rig;
  auto act = rig.gpu.copy_async(GpuDevice::Direction::kHostToDevice, 1 << 30, 0);
  rig.engine.run();
  double bw = static_cast<double>(1 << 30) / act->duration();
  EXPECT_NEAR(bw, 12.5e9, 0.2e9);
}

TEST(Gpu, BlockingCopyAddsDriverOverhead) {
  GpuRig rig;
  sim::OneShotEvent done(rig.engine);
  sim::Time finished = -1;
  rig.engine.spawn([](GpuRig& r, sim::OneShotEvent& d, sim::Time& t) -> sim::Coro {
    auto child = r.engine.spawn(r.gpu.copy(GpuDevice::Direction::kDeviceToHost, 4096, 0, &d));
    co_await child;
    t = r.engine.now();
  }(rig, done, finished));
  rig.engine.run();
  EXPECT_TRUE(done.is_set());
  // Dominated by the 8 us overhead for a tiny copy.
  EXPECT_GT(finished, 8e-6);
  EXPECT_LT(finished, 12e-6);
}

TEST(Gpu, StreamTrafficSlowsTheCopy) {
  GpuRig rig;
  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  for (int c = 0; c < 9; ++c) {
    rig.machine.governor().core_busy(c, VectorClass::kSse);
    rig.model.start(make_compute_spec(rig.machine, c, 0, triad, 1e12));
  }
  auto act = rig.gpu.copy_async(GpuDevice::Direction::kHostToDevice, 1 << 30, 0);
  rig.engine.run(60.0);
  ASSERT_TRUE(act->finished());
  double bw = static_cast<double>(1 << 30) / act->duration();
  EXPECT_LT(bw, 9e9);  // well below the quiet 12.5 GB/s
}

TEST(Gpu, RemoteHostBufferCrossesTheSocketLink) {
  GpuRig rig;
  auto near = rig.gpu.copy_async(GpuDevice::Direction::kHostToDevice, 256 << 20, 0);
  rig.engine.run();
  auto far = rig.gpu.copy_async(GpuDevice::Direction::kHostToDevice, 256 << 20, 3);
  rig.engine.run();
  // Uncontended both complete at PCIe speed, but the far copy loads the
  // cross-socket link — visible under contention:
  EXPECT_NEAR(near->duration(), far->duration(), 1e-6);
  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  // Saturate the cross link with socket-0 cores reading NUMA 3.
  for (int c = 0; c < 9; ++c) {
    rig.machine.governor().core_busy(c, VectorClass::kSse);
    rig.model.start(make_compute_spec(rig.machine, c, 3, triad, 1e12));
  }
  auto far_loud = rig.gpu.copy_async(GpuDevice::Direction::kHostToDevice, 256 << 20, 3);
  rig.engine.run(60.0);
  ASSERT_TRUE(far_loud->finished());
  EXPECT_GT(far_loud->duration(), 1.5 * far->duration());
}

TEST(Gpu, GpuCopyAndNetworkDmaContendOnTheSameController) {
  // The three-way fight the paper's future work asks about: network DMA,
  // GPU copy and STREAM all share NUMA 0's controller.  Two DMA streams
  // alone fit in the controller (23 < 45 GB/s); scarcity needs the cores.
  net::Cluster cluster(MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  GpuDevice gpu(cluster.machine(0), GpuConfig{});

  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  for (int c = 0; c < 5; ++c) {
    cluster.machine(0).governor().core_busy(c, VectorClass::kSse);
    cluster.machine(0).model().start(make_compute_spec(cluster.machine(0), c, 0, triad, 1e13));
  }

  // Baseline: network + STREAM (no GPU traffic).
  mpi::PingPongOptions opt;
  opt.bytes = 64 << 20;
  opt.iterations = 4;
  opt.warmup = 1;
  opt.tag = 500;
  mpi::PingPong quiet(world, 0, 1, opt);
  quiet.start();
  cluster.engine().run(5.0);
  double base_bw = trace::Stats::of(quiet.bandwidths()).median;

  // Add continuous GPU copies: the network's share must shrink further.
  bool stop = false;
  cluster.engine().spawn([](GpuDevice& g, bool& s) -> sim::Coro {
    while (!s) co_await *g.copy_async(GpuDevice::Direction::kHostToDevice, 64 << 20, 0);
  }(gpu, stop));
  opt.tag = 600;
  mpi::PingPong loud(world, 0, 1, opt);
  loud.start();
  cluster.engine().spawn([](mpi::PingPong& pp, bool& s) -> sim::Coro {
    co_await pp.complete();
    s = true;
  }(loud, stop));
  cluster.engine().run(20.0);
  double loud_bw = trace::Stats::of(loud.bandwidths()).median;
  EXPECT_GT(base_bw, 0.0);
  EXPECT_LT(loud_bw, 0.9 * base_bw);
}

}  // namespace
}  // namespace cci::hw
