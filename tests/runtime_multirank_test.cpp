// Multi-rank distributed applications: completion, scaling shape, and
// constant communication volume.
#include <gtest/gtest.h>

#include "runtime/apps.hpp"

namespace cci::runtime {
namespace {

using hw::MachineConfig;
using net::NetworkParams;

class RankCounts : public ::testing::TestWithParam<int> {};

TEST_P(RankCounts, CgCompletesOnAnyRankCount) {
  CgAppOptions opt;
  opt.n = 8192;
  opt.iterations = 2;
  opt.workers = 4;
  opt.ranks = GetParam();
  auto r = run_cg_app(MachineConfig::henri(), NetworkParams::ib_edr(),
                      RuntimeConfig::for_machine("henri"), opt);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.sending_bw, 0.0);
  // Tasks per rank: iterations * (chunks*P gemv + 1 dot + 3 axpy + 2(P-1) comm).
  EXPECT_GT(r.tasks, opt.ranks * opt.iterations * 4);
}

TEST_P(RankCounts, GemmCompletesOnAnyRankCount) {
  GemmAppOptions opt;
  opt.m = 2048;
  opt.tile = 256;
  opt.workers = 4;
  opt.ranks = GetParam();
  auto r = run_gemm_app(MachineConfig::henri(), NetworkParams::ib_edr(),
                        RuntimeConfig::for_machine("henri"), opt);
  EXPECT_GT(r.makespan, 0.0);
  // Every rank computes its (m/P / tile) x (m / tile) tiles for all panels.
  int P = opt.ranks;
  int per_rank_tiles = static_cast<int>((2048 / P / 256) * (2048 / 256) * (2048 / 256));
  int comm_tasks_total = static_cast<int>(2048 / 256) * (P - 1) * 2;  // sends+recvs
  EXPECT_EQ(r.tasks, per_rank_tiles * P + comm_tasks_total);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCounts, ::testing::Values(2, 4, 8));

TEST(MultiRank, GemmStrongScalesWhileComputeDominates) {
  // Large enough matrix that computation dominates the panel broadcasts:
  // doubling the nodes must cut the makespan substantially.  (At small m
  // the broadcasts dominate and scaling inverts — node_scaling shows both.)
  auto time_for = [](int ranks) {
    GemmAppOptions opt;
    opt.m = 8192;
    opt.tile = 512;
    opt.workers = 16;
    opt.ranks = ranks;
    return run_gemm_app(MachineConfig::henri(), NetworkParams::ib_edr(),
                        RuntimeConfig::for_machine("henri"), opt)
        .makespan;
  };
  double t2 = time_for(2);
  double t4 = time_for(4);
  EXPECT_LT(t4, 0.8 * t2);
}

TEST(MultiRank, CgCommunicationGrowsWithRanks) {
  // Ring allgather: each rank does P-1 block transfers per iteration, so
  // more ranks = more (smaller) messages; the graph must stay deadlock-free
  // with chained ring steps.
  CgAppOptions opt;
  opt.n = 16384;
  opt.iterations = 3;
  opt.workers = 8;
  opt.ranks = 4;
  auto r = run_cg_app(MachineConfig::henri(), NetworkParams::ib_edr(),
                      RuntimeConfig::for_machine("henri"), opt);
  // comm tasks = 2*(P-1) per rank per iteration.
  int comm_tasks = 2 * 3 * 3 * 4;
  EXPECT_GE(r.tasks, comm_tasks);
}

}  // namespace
}  // namespace cci::runtime
