// Reliable transport under injected faults: retransmit, corruption
// detection, blackout recovery, bounded timeouts, deterministic replay.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "net/faults.hpp"
#include "obs/metrics.hpp"
#include "mpi/world.hpp"

namespace cci::mpi {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::FaultInjector;
using net::NetworkParams;

constexpr std::size_t kEagerBytes = 4 * 1024;     // below every eager threshold
constexpr std::size_t kRndvBytes = 1 << 20;       // rendezvous everywhere

struct Rig {
  Rig() : cluster(MachineConfig::henri(), NetworkParams::ib_edr()),
          world(cluster, {{0, -1}, {1, -1}}) {
    obs::Registry::global().set_enabled(true);
    obs::Registry::global().reset();
  }
  ~Rig() { obs::Registry::global().set_enabled(false); }

  /// Post `n` send/recv pairs of `bytes` each on distinct tags.
  void post_pairs(int n, std::size_t bytes, int tag0) {
    for (int i = 0; i < n; ++i) {
      recvs.push_back(world.irecv(1, 0, tag0 + i, MsgView{bytes, 0, 0}));
      sends.push_back(world.isend(0, 1, tag0 + i, MsgView{bytes, 0, 0}));
    }
  }

  static double counter(const std::string& name) {
    return obs::Registry::global().counter(name).value();
  }

  Cluster cluster;
  World world;
  std::vector<RequestPtr> sends, recvs;
};

TEST(Reliability, ForcedReliablePathDeliversEverythingOk) {
  Rig rig;
  rig.cluster.faults().force_reliable(true);
  rig.post_pairs(8, kEagerBytes, 100);
  rig.post_pairs(2, kRndvBytes, 200);
  rig.cluster.engine().run();
  for (const auto& r : rig.sends) EXPECT_TRUE(r->ok());
  for (const auto& r : rig.recvs) EXPECT_TRUE(r->ok());
  // No faults: the reliable protocol runs but never retries or times out.
  EXPECT_EQ(Rig::counter("mpi.retransmits"), 0.0);
  EXPECT_EQ(Rig::counter("mpi.timeouts"), 0.0);
  EXPECT_EQ(Rig::counter("net.messages_lost"), 0.0);
}

TEST(Reliability, LossyWireRetransmitsUntilDelivered) {
  Rig rig;
  FaultInjector faults(rig.cluster);
  faults.loss_window(0.2, 0.0);  // 20% loss, forever
  rig.post_pairs(16, kEagerBytes, 100);
  rig.post_pairs(4, kRndvBytes, 200);
  rig.cluster.engine().run();
  // Every message is eventually delivered (retry budget is ample at p=0.2).
  for (const auto& r : rig.sends) EXPECT_TRUE(r->ok());
  for (const auto& r : rig.recvs) EXPECT_TRUE(r->ok());
  EXPECT_GT(Rig::counter("net.messages_lost"), 0.0);
  EXPECT_GT(Rig::counter("mpi.retransmits"), 0.0);
  EXPECT_EQ(Rig::counter("mpi.timeouts"), 0.0);
}

TEST(Reliability, CorruptionIsDetectedAndRecovered) {
  Rig rig;
  FaultInjector faults(rig.cluster);
  faults.corrupt_window(0.4, 0.0);
  rig.post_pairs(8, kEagerBytes, 100);
  rig.post_pairs(2, kRndvBytes, 200);
  rig.cluster.engine().run();
  for (const auto& r : rig.sends) EXPECT_TRUE(r->ok());
  for (const auto& r : rig.recvs) EXPECT_TRUE(r->ok());
  EXPECT_GT(Rig::counter("net.messages_corrupted"), 0.0);
  EXPECT_GT(Rig::counter("mpi.retransmits"), 0.0);
}

TEST(Reliability, TotalLossTimesOutInsteadOfHanging) {
  Rig rig;
  FaultInjector faults(rig.cluster);
  faults.loss_window(1.0, 0.0);  // nothing ever gets through
  rig.post_pairs(1, kEagerBytes, 100);
  rig.post_pairs(1, kRndvBytes, 200);
  rig.cluster.engine().run();  // must drain, not hang
  for (const auto& r : rig.sends) {
    EXPECT_TRUE(r->done().is_set());
    EXPECT_EQ(r->status(), MpiStatus::kTimedOut);
  }
  for (const auto& r : rig.recvs) {
    EXPECT_TRUE(r->done().is_set());
    EXPECT_FALSE(r->ok());
  }
  EXPECT_GE(Rig::counter("mpi.timeouts"), 2.0);
}

TEST(Reliability, NicBlackoutCancelsDmaAndRecovers) {
  Rig rig;
  FaultInjector faults(rig.cluster);
  // Blackout opens mid-rendezvous: the in-flight DMA flow is cancelled,
  // the transfer retries after the NIC comes back.
  faults.blackout_nic(0, /*at=*/0.001, /*until=*/0.003);
  rig.post_pairs(1, 64u << 20, 300);  // ~6 ms transfer, spans the blackout
  rig.cluster.engine().run();
  for (const auto& r : rig.sends) EXPECT_TRUE(r->ok());
  for (const auto& r : rig.recvs) EXPECT_TRUE(r->ok());
  EXPECT_GT(Rig::counter("mpi.retransmits"), 0.0);
  EXPECT_GT(rig.cluster.engine().now(), 0.003);  // finished after the outage
}

TEST(Reliability, SeededScheduleReplaysBitIdentically) {
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("CCI_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);

  auto run_once = [seed] {
    obs::Registry::global().reset();
    Rig rig;
    rig.cluster.faults().force_reliable(true);
    net::FaultScheduleConfig cfg;
    cfg.seed = seed;
    cfg.horizon = 0.02;
    cfg.mean_interarrival = 0.004;
    net::FaultPlan plan = net::generate_fault_plan(cfg);
    FaultInjector faults(rig.cluster);
    faults.apply(plan);
    // Traffic spread over the fault horizon so the windows actually matter.
    for (int i = 0; i < 10; ++i) {
      rig.cluster.engine().call_at(i * 0.002, [&rig, i] {
        rig.recvs.push_back(rig.world.irecv(1, 0, 400 + i, MsgView{kEagerBytes, 0, 0}));
        rig.sends.push_back(rig.world.isend(0, 1, 400 + i, MsgView{kEagerBytes, 0, 0}));
      });
    }
    rig.cluster.engine().run();
    // The hard liveness guarantee: every request terminates.
    for (const auto& r : rig.sends) EXPECT_TRUE(r->done().is_set());
    for (const auto& r : rig.recvs) EXPECT_TRUE(r->done().is_set());
    return std::make_tuple(plan.serialize(), Rig::counter("mpi.retransmits"),
                           Rig::counter("mpi.timeouts"), Rig::counter("net.messages_lost"),
                           Rig::counter("net.messages_corrupted"),
                           rig.cluster.engine().now());
  };

  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cci::mpi
