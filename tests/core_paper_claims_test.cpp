// Integration tests for the paper's remaining textual claims, one per
// quoted assertion (complementing core_interference_test.cpp).
#include <gtest/gtest.h>

#include "core/interference_lab.hpp"
#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"

namespace cci::core {
namespace {

TEST(PaperClaims, Sec32_BandwidthSlightlyImprovedByCpuBoundComputation) {
  // §3.2: "the network bandwidth is very slightly improved when
  // computation is done at the same time (9097 MB/s vs 9063 MB/s)" — the
  // computing cores raise the NIC socket's uncore.
  Scenario s;
  s.kernel = kernels::prime_traits();
  s.computing_cores = 20;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 4;
  s.pingpong_warmup = 1;
  s.target_pass_seconds = 0.2;
  auto r = InterferenceLab(s).run();
  EXPECT_GE(r.comm_together.bandwidth.median, r.comm_alone.bandwidth.median);
  EXPECT_LT(r.comm_together.bandwidth.median, 1.1 * r.comm_alone.bandwidth.median);
}

TEST(PaperClaims, Sec32_LatencySlightlyBetterWithComputation) {
  // §3.2/3.3: latency is "always slightly better when computations are
  // done at the same time" (CPU-bound kernels).
  Scenario s;
  s.kernel = kernels::prime_traits();
  s.computing_cores = 20;
  s.message_bytes = 4;
  auto r = InterferenceLab(s).run();
  EXPECT_LE(r.comm_together.latency.median, r.comm_alone.latency.median * 1.01);
}

TEST(PaperClaims, Sec42_BoraImpactedLaterThanHenri) {
  // §4.2: "On bora nodes, the network bandwidth is impacted, but later:
  // from 20 computing cores" (vs ~3 on henri).
  auto ratio_at = [](const hw::MachineConfig& m, int cores) {
    Scenario s;
    s.machine = m;
    s.network = net::NetworkParams::for_machine(m.name);
    s.kernel = kernels::triad_traits();
    s.computing_cores = cores;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 5;
    s.pingpong_warmup = 1;
    auto r = InterferenceLab(s).run();
    return r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
  };
  // At 8 cores henri already degraded, bora not yet.
  EXPECT_LT(ratio_at(hw::MachineConfig::henri(), 8), 0.8);
  EXPECT_GT(ratio_at(hw::MachineConfig::bora(), 8), 0.9);
  // At full machine both degraded.
  EXPECT_LT(ratio_at(hw::MachineConfig::bora(), 35), 0.9);
}

TEST(PaperClaims, Sec44_FiveCoresDegradeOnlyLargeMessages) {
  // §4.4/Fig. 6a: with 5 computing cores, communications are degraded
  // from 64 KB upwards, not below.
  auto ratio_for = [](std::size_t bytes) {
    Scenario s;
    s.kernel = kernels::triad_traits();
    s.computing_cores = 5;
    s.message_bytes = bytes;
    s.pingpong_iterations = bytes >= (1u << 20) ? 4 : 15;
    s.pingpong_warmup = 2;
    auto r = InterferenceLab(s).run();
    return r.comm_together.latency.median / r.comm_alone.latency.median;
  };
  EXPECT_LT(ratio_for(4), 1.10);
  EXPECT_LT(ratio_for(1024), 1.10);
  EXPECT_GT(ratio_for(64 << 20), 1.10);
}

TEST(PaperClaims, Sec45_LatencyDoublesOnlyInMemoryBoundRegime) {
  // §4.5/Fig. 7a: below the AI boundary latency roughly doubles; above,
  // it returns to nominal.
  auto ratio_for = [](double ai) {
    Scenario s;
    int cursor = kernels::TunableTriad::cursor_for_intensity(ai);
    s.kernel = kernels::TunableTriad(16, cursor).traits();
    s.computing_cores = 35;
    s.message_bytes = 4;
    s.pingpong_iterations = 15;
    auto r = InterferenceLab(s).run();
    return r.comm_together.latency.median / r.comm_alone.latency.median;
  };
  EXPECT_GT(ratio_for(0.25), 1.35);
  EXPECT_LT(ratio_for(100.0), 1.10);
}

TEST(PaperClaims, Sec45_ComputationSlowedByLargeMessagesOnly) {
  // §4.5: in the memory-bound regime the computation is slowed by the
  // 64 MB transfers (~10%) but not by the 4 B latency ping-pong.
  auto slowdown_for = [](std::size_t bytes) {
    Scenario s;
    s.kernel = kernels::triad_traits();
    s.computing_cores = 35;
    s.message_bytes = bytes;
    s.pingpong_iterations = bytes >= (1u << 20) ? 4 : 20;
    s.pingpong_warmup = 1;
    auto r = InterferenceLab(s).run();
    return r.compute_together.pass_duration.median / r.compute_alone.pass_duration.median;
  };
  EXPECT_LT(slowdown_for(4), 1.02);
  EXPECT_GT(slowdown_for(64 << 20), 1.005);
}

TEST(PaperClaims, Sec6_StallFractionTracksArithmeticIntensity) {
  // §6: "the more there are computing cores, the more cores are spending
  // time to access the memory" — and stalls correlate with low AI.
  auto stall_for = [](double ai, int cores) {
    Scenario s;
    int cursor = kernels::TunableTriad::cursor_for_intensity(ai);
    s.kernel = kernels::TunableTriad(16, cursor).traits();
    s.computing_cores = cores;
    s.message_bytes = 4;
    s.pingpong_iterations = 5;
    auto r = InterferenceLab(s).run();
    return r.compute_alone.mem_stall_fraction;
  };
  double low_ai = stall_for(0.25, 20);
  double high_ai = stall_for(100.0, 20);
  EXPECT_GT(low_ai, 0.5);
  EXPECT_LT(high_ai, 0.1);
  // More cores -> more stalls at low AI.
  EXPECT_GE(stall_for(0.25, 30), stall_for(0.25, 4) - 0.02);
}

}  // namespace
}  // namespace cci::core
