// Machine topology, path resolution, contention pressure, latency model.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "hw/frequency_governor.hpp"
#include "hw/workload.hpp"

namespace cci::hw {
namespace {

class HenriMachine : public ::testing::Test {
 protected:
  HenriMachine() : model(engine), machine(model, MachineConfig::henri()) {}
  sim::Engine engine;
  sim::FlowModel model;
  Machine machine;
};

TEST_F(HenriMachine, TopologyCounts) {
  const auto& cfg = machine.config();
  EXPECT_EQ(cfg.total_cores(), 36);
  EXPECT_EQ(cfg.numa_count(), 4);
  EXPECT_EQ(cfg.numa_of_core(0), 0);
  EXPECT_EQ(cfg.numa_of_core(8), 0);
  EXPECT_EQ(cfg.numa_of_core(9), 1);
  EXPECT_EQ(cfg.numa_of_core(35), 3);
  EXPECT_EQ(cfg.socket_of_core(17), 0);
  EXPECT_EQ(cfg.socket_of_core(18), 1);
  EXPECT_EQ(cfg.socket_of_numa(1), 0);
  EXPECT_EQ(cfg.socket_of_numa(2), 1);
}

TEST_F(HenriMachine, AllPresetsAreSelfConsistent) {
  for (const auto& cfg : MachineConfig::all_presets()) {
    EXPECT_GT(cfg.total_cores(), 0) << cfg.name;
    EXPECT_GT(cfg.mem_bw_per_numa, 0.0) << cfg.name;
    EXPECT_GT(cfg.per_core_mem_bw, 0.0) << cfg.name;
    EXPECT_LE(cfg.core_freq_min_hz, cfg.core_freq_nominal_hz) << cfg.name;
    EXPECT_LE(cfg.uncore_freq_min_hz, cfg.uncore_freq_max_hz) << cfg.name;
    EXPECT_LT(cfg.nic_numa, cfg.numa_count()) << cfg.name;
    EXPECT_FALSE(cfg.turbo_scalar.empty()) << cfg.name;
    // Turbo tables must be monotone: more active cores, lower (or equal) clock.
    for (std::size_t i = 1; i < cfg.turbo_scalar.size(); ++i) {
      EXPECT_LT(cfg.turbo_scalar[i - 1].max_active_cores, cfg.turbo_scalar[i].max_active_cores);
      EXPECT_GE(cfg.turbo_scalar[i - 1].freq_hz, cfg.turbo_scalar[i].freq_hz);
    }
  }
}

TEST_F(HenriMachine, MemPathLocalCrossesOnlyController) {
  auto path = machine.mem_path(0, 0);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], machine.mem_ctrl(0));
}

TEST_F(HenriMachine, MemPathSameSocketCrossesMesh) {
  auto path = machine.mem_path(1, 0);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], machine.mem_ctrl(0));
  EXPECT_EQ(path[1], machine.intra_link(0));
}

TEST_F(HenriMachine, MemPathCrossSocketCrossesUpi) {
  auto path = machine.mem_path(3, 0);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], machine.mem_ctrl(0));
  EXPECT_EQ(path[1], machine.cross_link());
}

TEST_F(HenriMachine, UncontendedLatencyLowerThanRemote) {
  double local = machine.mem_access_latency(0, 0);
  double same_socket = machine.mem_access_latency(1, 0);
  double cross = machine.mem_access_latency(3, 0);
  EXPECT_LT(local, same_socket);
  EXPECT_LT(same_socket, cross);
}

TEST_F(HenriMachine, ContentionInflatesAccessLatency) {
  double quiet = machine.mem_access_latency(3, 0);
  // Saturate NUMA 0's controller with remote STREAM-like flows from socket 1.
  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  for (int c = 18; c < 27; ++c) {
    auto spec = make_compute_spec(machine, c, 0, triad, 1e12);
    model.start(spec);
  }
  engine.run(0.0);  // let allocation settle at t=0
  double loud = machine.mem_access_latency(3, 0);
  EXPECT_GT(loud, 1.3 * quiet);
}

TEST_F(HenriMachine, ComputeSpecRooflineMemoryBound) {
  // TRIAD on one core: per-core cap 12 GB/s over 24 B/iter -> 500 Miter/s.
  machine.governor().set_policy(CpuPolicy::kPerformance);
  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  auto spec = make_compute_spec(machine, 0, 0, triad, 500e6);
  auto act = model.start(spec);
  engine.run();
  EXPECT_NEAR(act->duration(), 1.0, 0.05);
}

TEST_F(HenriMachine, ComputeSpecCpuBoundScalesWithFrequency) {
  // Pure-flop kernel: duration == iters * cycles_per_iter / freq.
  machine.governor().pin_core_freq(1.0e9);
  KernelTraits flops{"flops", 8.0, 0.0, VectorClass::kScalar};  // 4 cycles/iter
  auto a = model.start(make_compute_spec(machine, 0, 0, flops, 1e9));
  engine.run();
  EXPECT_NEAR(a->duration(), 4.0, 1e-6);
  machine.governor().pin_core_freq(2.0e9);
  auto b = model.start(make_compute_spec(machine, 0, 0, flops, 1e9));
  engine.run();
  EXPECT_NEAR(b->duration(), 2.0, 1e-6);
}

TEST_F(HenriMachine, ManyCoresOnOneNumaShareTheController) {
  machine.governor().set_policy(CpuPolicy::kPerformance);
  KernelTraits triad{"triad", 2.0, 24.0, VectorClass::kSse};
  // 9 cores * 12 GB/s demand = 108 > 45 GB/s controller -> each ~5 GB/s.
  std::vector<sim::ActivityPtr> acts;
  double iters = 45e9 / 24.0 / 9.0;  // sized so total runtime ~1 s
  for (int c = 0; c < 9; ++c) {
    machine.governor().core_busy(c, VectorClass::kSse);  // raises uncore to max
    acts.push_back(model.start(make_compute_spec(machine, c, 0, triad, iters)));
  }
  engine.run();
  for (const auto& a : acts) EXPECT_NEAR(a->duration(), 1.0, 0.05);
}

// ---- frequency governor ---------------------------------------------------

class Governor : public ::testing::Test {
 protected:
  Governor() : model(engine), machine(model, MachineConfig::henri()) {}
  sim::Engine engine;
  sim::FlowModel model;
  Machine machine;
};

TEST_F(Governor, OndemandIdlesAtMinFrequency) {
  auto& gov = machine.governor();
  for (int c = 0; c < 36; ++c) EXPECT_DOUBLE_EQ(gov.core_freq(c), 1.0e9);
}

TEST_F(Governor, BusyCoreTurbosByActiveCount) {
  auto& gov = machine.governor();
  gov.core_busy(0, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 3.7e9);  // 1 active core
  gov.core_busy(1, VectorClass::kScalar);
  gov.core_busy(2, VectorClass::kScalar);
  gov.core_busy(3, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 3.5e9);  // 4 active cores
  for (int c = 4; c < 18; ++c) gov.core_busy(c, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 3.0e9);  // all 18 on socket 0
  // Socket 1 unaffected.
  gov.core_busy(18, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.core_freq(18), 3.7e9);
}

TEST_F(Governor, Avx512LicenceDownclocks) {
  auto& gov = machine.governor();
  for (int c = 0; c < 4; ++c) gov.core_busy(c, VectorClass::kAvx512);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 3.0e9);  // paper Fig. 3b
  for (int c = 4; c < 18; ++c) gov.core_busy(c, VectorClass::kAvx512);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 2.3e9);  // paper Fig. 3c
}

TEST_F(Governor, CommCoreHoldsStableFrequency) {
  auto& gov = machine.governor();
  gov.core_comm(35);
  double before = gov.core_freq(35);
  EXPECT_DOUBLE_EQ(before, 2.5e9);
  // Heavy AVX512 load on the *other* socket must not move the comm core.
  for (int c = 0; c < 18; ++c) gov.core_busy(c, VectorClass::kAvx512);
  EXPECT_DOUBLE_EQ(gov.core_freq(35), before);
}

TEST_F(Governor, TurboDisabledCapsAtNominal) {
  auto& gov = machine.governor();
  gov.set_turbo_enabled(false);
  gov.core_busy(0, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 2.3e9);
}

TEST_F(Governor, UserspacePinsEverything) {
  auto& gov = machine.governor();
  gov.pin_core_freq(1.0e9);
  gov.core_busy(0, VectorClass::kAvx512);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 1.0e9);
  EXPECT_DOUBLE_EQ(gov.core_freq(20), 1.0e9);
}

TEST_F(Governor, CoreResourceCapacityTracksFrequency) {
  auto& gov = machine.governor();
  gov.core_busy(5, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(machine.core(5)->capacity(), gov.core_freq(5));
  gov.core_idle(5);
  EXPECT_DOUBLE_EQ(machine.core(5)->capacity(), 1.0e9);
}

TEST_F(Governor, UncoreRisesWithSocketActivityAndScalesMemory) {
  auto& gov = machine.governor();
  EXPECT_DOUBLE_EQ(gov.uncore_freq(0), machine.config().uncore_freq_min_hz);
  double cap_idle = machine.mem_ctrl(0)->capacity();
  gov.core_busy(0, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.uncore_freq(0), machine.config().uncore_freq_max_hz);
  double cap_busy = machine.mem_ctrl(0)->capacity();
  EXPECT_GT(cap_busy, cap_idle);
  EXPECT_DOUBLE_EQ(cap_busy, machine.config().mem_bw_per_numa);
  EXPECT_NEAR(cap_idle / cap_busy, machine.config().uncore_min_mem_scale, 1e-12);
}

TEST_F(Governor, PinnedUncoreIgnoresActivity) {
  auto& gov = machine.governor();
  gov.pin_uncore_freq(1.2e9);
  gov.core_busy(0, VectorClass::kScalar);
  EXPECT_DOUBLE_EQ(gov.uncore_freq(0), 1.2e9);
}

TEST_F(Governor, TraceReportsTransitions) {
  auto& gov = machine.governor();
  std::vector<std::pair<int, double>> events;
  gov.set_trace([&](int core, double hz) { events.emplace_back(core, hz); });
  gov.core_busy(3, VectorClass::kScalar);
  bool saw_core3 = false;
  bool saw_uncore0 = false;
  for (auto& [core, hz] : events) {
    if (core == 3 && hz == 3.7e9) saw_core3 = true;
    if (core == -1 && hz == 2.4e9) saw_uncore0 = true;
  }
  EXPECT_TRUE(saw_core3);
  EXPECT_TRUE(saw_uncore0);
}

}  // namespace
}  // namespace cci::hw
