// Topology rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "hw/topology.hpp"

namespace cci::hw {
namespace {

TEST(Topology, HenriTreeListsAllNumaNodes) {
  std::ostringstream os;
  print_topology(os, MachineConfig::henri());
  std::string out = os.str();
  EXPECT_NE(out.find("Machine henri (36 cores, 4 NUMA nodes, 2 sockets)"), std::string::npos);
  EXPECT_NE(out.find("NUMA 0 [NIC]"), std::string::npos);
  EXPECT_NE(out.find("cores 27-35"), std::string::npos);
  EXPECT_EQ(out.find("NUMA 4"), std::string::npos);
}

TEST(Topology, EveryPresetRenders) {
  for (const auto& cfg : MachineConfig::all_presets()) {
    std::ostringstream os;
    print_topology(os, cfg);
    EXPECT_NE(os.str().find(cfg.name), std::string::npos) << cfg.name;
    EXPECT_NE(os.str().find("[NIC]"), std::string::npos) << cfg.name;
  }
}

TEST(Topology, PlacementDescriptionNamesSides) {
  auto cfg = MachineConfig::henri();
  std::string near = describe_placement(cfg, 8, 0);
  EXPECT_NE(near.find("near the NIC"), std::string::npos);
  EXPECT_NE(near.find("NUMA 0 (near)"), std::string::npos);
  std::string far = describe_placement(cfg, 35, 3);
  EXPECT_NE(far.find("far from the NIC"), std::string::npos);
  EXPECT_NE(far.find("NUMA 3 (far)"), std::string::npos);
}

}  // namespace
}  // namespace cci::hw
