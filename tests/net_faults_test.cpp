// Fault injection + DVFS transition latency.
#include <gtest/gtest.h>

#include "hw/frequency_governor.hpp"
#include "mpi/pingpong.hpp"
#include "net/faults.hpp"
#include "trace/stats.hpp"

namespace cci::net {
namespace {

using hw::MachineConfig;

double bw_with(const std::function<void(Cluster&, FaultInjector&)>& inject) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  inject(cluster, faults);
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = 64 << 20;
  opt.iterations = 8;
  opt.warmup = 1;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  return trace::Stats::of(pp.bandwidths()).median;
}

TEST(Faults, CrossbarDegradationBecomesTheBottleneck) {
  double healthy = bw_with([](Cluster&, FaultInjector&) {});
  double degraded = bw_with([](Cluster&, FaultInjector& f) { f.degrade_wire(0.0, 0.25); });
  // The 2-node switch core carries 2x the port rate; at 25% it caps flows
  // at 0.25 * 2 * 12.08 GB/s, below the NIC's 10.1 GB/s.
  EXPECT_NEAR(degraded, 0.25 * 2 * 12.08e9, 0.4e9);
  EXPECT_GT(healthy, 1.5 * degraded);
}

TEST(Faults, NicDegradationRecovers) {
  // Degrade early, recover mid-run: the sample spread must straddle both
  // regimes (deciles far apart), and the median sit between them.
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  faults.degrade_nic(0, 0.0, 0.3, /*recover_at=*/0.08);
  faults.degrade_nic(1, 0.0, 0.3, /*recover_at=*/0.08);
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = 64 << 20;
  opt.iterations = 16;
  opt.warmup = 0;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  auto stats = trace::Stats::of(pp.bandwidths());
  // Early samples ran on the degraded NIC (~3 GB/s), late ones at full
  // speed: the spread must straddle both regimes.
  EXPECT_GT(stats.max, 2.0 * stats.min);
  EXPECT_LT(stats.min, 5e9);
  EXPECT_GT(stats.max, 9e9);
}

TEST(Faults, MemCtrlFaultHitsOnlyItsNode) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  faults.degrade_mem_ctrl(0, 0, 0.0, 0.1);
  cluster.engine().run(0.001);  // deliver the scheduled injection
  EXPECT_NEAR(cluster.machine(0).mem_ctrl(0)->capacity(), 0.1 * 0.75 * 45e9, 1e9);
  EXPECT_GT(cluster.machine(1).mem_ctrl(0)->capacity(), 30e9);
}

TEST(Faults, ThrottledNodeSlowsSmallMessages) {
  double healthy = bw_with([](Cluster&, FaultInjector&) {});
  (void)healthy;
  // Latency version: throttling the sender's clocks stretches o.
  auto latency_with = [](bool throttle) {
    Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
    FaultInjector faults(cluster);
    if (throttle) {
      faults.throttle_node(0, 0.0);
      faults.throttle_node(1, 0.0);
    }
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    mpi::PingPongOptions opt;
    opt.bytes = 4;
    mpi::PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().run();
    return trace::Stats::of(pp.latencies()).median;
  };
  EXPECT_GT(latency_with(true), 1.5 * latency_with(false));
}

TEST(DvfsRamp, TransitionLatencyDelaysTurbo) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  MachineConfig cfg = MachineConfig::henri();
  cfg.dvfs_transition_latency = 50e-6;
  hw::Machine machine(model, cfg);
  auto& gov = machine.governor();
  engine.run(0.0);
  engine.call_at(1e-3, [&] { gov.core_busy(0, hw::VectorClass::kScalar); });
  engine.run(1e-3 + 10e-6);  // 10 us after the decision: still ramping
  EXPECT_DOUBLE_EQ(gov.core_freq(0), cfg.core_freq_min_hz);
  engine.run(1e-3 + 60e-6);  // past the 50 us ramp
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 3.7e9);
}

TEST(DvfsRamp, SupersededTransitionNeverLands) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  MachineConfig cfg = MachineConfig::henri();
  cfg.dvfs_transition_latency = 50e-6;
  hw::Machine machine(model, cfg);
  auto& gov = machine.governor();
  engine.call_at(1e-3, [&] { gov.core_busy(0, hw::VectorClass::kScalar); });
  engine.call_at(1e-3 + 20e-6, [&] { gov.core_idle(0); });  // cancel before ramp ends
  engine.run();
  EXPECT_DOUBLE_EQ(gov.core_freq(0), cfg.core_freq_min_hz);
}

}  // namespace
}  // namespace cci::net
