// Fault injection + DVFS transition latency.
#include <gtest/gtest.h>

#include <stdexcept>

#include "hw/frequency_governor.hpp"
#include "mpi/pingpong.hpp"
#include "net/faults.hpp"
#include "trace/stats.hpp"

namespace cci::net {
namespace {

using hw::MachineConfig;

double bw_with(const std::function<void(Cluster&, FaultInjector&)>& inject) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  inject(cluster, faults);
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = 64 << 20;
  opt.iterations = 8;
  opt.warmup = 1;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  return trace::Stats::of(pp.bandwidths()).median;
}

TEST(Faults, CrossbarDegradationBecomesTheBottleneck) {
  double healthy = bw_with([](Cluster&, FaultInjector&) {});
  double degraded = bw_with([](Cluster&, FaultInjector& f) { f.degrade_wire(0.0, 0.25); });
  // The 2-node switch core carries 2x the port rate; at 25% it caps flows
  // at 0.25 * 2 * 12.08 GB/s, below the NIC's 10.1 GB/s.
  EXPECT_NEAR(degraded, 0.25 * 2 * 12.08e9, 0.4e9);
  EXPECT_GT(healthy, 1.5 * degraded);
}

TEST(Faults, NicDegradationRecovers) {
  // Degrade early, recover mid-run: the sample spread must straddle both
  // regimes (deciles far apart), and the median sit between them.
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  faults.degrade_nic(0, 0.0, 0.3, /*recover_at=*/0.08);
  faults.degrade_nic(1, 0.0, 0.3, /*recover_at=*/0.08);
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = 64 << 20;
  opt.iterations = 16;
  opt.warmup = 0;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  auto stats = trace::Stats::of(pp.bandwidths());
  // Early samples ran on the degraded NIC (~3 GB/s), late ones at full
  // speed: the spread must straddle both regimes.
  EXPECT_GT(stats.max, 2.0 * stats.min);
  EXPECT_LT(stats.min, 5e9);
  EXPECT_GT(stats.max, 9e9);
}

TEST(Faults, MemCtrlFaultHitsOnlyItsNode) {
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  faults.degrade_mem_ctrl(0, 0, 0.0, 0.1);
  cluster.engine().run(0.001);  // deliver the scheduled injection
  EXPECT_NEAR(cluster.machine(0).mem_ctrl(0)->capacity(), 0.1 * 0.75 * 45e9, 1e9);
  EXPECT_GT(cluster.machine(1).mem_ctrl(0)->capacity(), 30e9);
}

TEST(Faults, ThrottledNodeSlowsSmallMessages) {
  double healthy = bw_with([](Cluster&, FaultInjector&) {});
  (void)healthy;
  // Latency version: throttling the sender's clocks stretches o.
  auto latency_with = [](bool throttle) {
    Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
    FaultInjector faults(cluster);
    if (throttle) {
      faults.throttle_node(0, 0.0);
      faults.throttle_node(1, 0.0);
    }
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    mpi::PingPongOptions opt;
    opt.bytes = 4;
    mpi::PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().run();
    return trace::Stats::of(pp.latencies()).median;
  };
  EXPECT_GT(latency_with(true), 1.5 * latency_with(false));
}

TEST(Faults, RestoreIsDeltaTrackedNotFactorScaled) {
  // Discriminator for the restore bug: an *absolute* capacity write lands
  // between inject and restore (the uncore refresh does exactly this).  A
  // `capacity / factor` restore would scale the external write; the delta
  // restore must add back exactly what the fault removed.
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  sim::Resource* wire = cluster.find_link("switch");
  const double c0 = wire->capacity();
  FaultInjector faults(cluster);
  faults.degrade_wire(/*at=*/1.0, /*factor=*/0.5, /*recover_at=*/3.0);
  cluster.engine().call_at(2.0, [&] { wire->set_capacity(0.25 * c0); });
  cluster.engine().run();
  // Fault removed 0.5*c0; external write set 0.25*c0; restore adds 0.5*c0.
  EXPECT_NEAR(wire->capacity(), 0.75 * c0, 1e-6 * c0);
}

TEST(Faults, OverlappingWindowsRestoreExactly) {
  // Two nested degradations of the same resource: each restore returns the
  // delta it took, so after both recoveries the capacity is bit-exact.
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  sim::Resource* wire = cluster.find_link("switch");
  const double c0 = wire->capacity();
  FaultInjector faults(cluster);
  faults.degrade_wire(1.0, 0.5, /*recover_at=*/4.0);
  faults.degrade_wire(2.0, 0.4, /*recover_at=*/3.0);  // nested inside
  cluster.engine().run(2.5);
  EXPECT_NEAR(wire->capacity(), 0.5 * 0.4 * c0, 1e-6 * c0);
  cluster.engine().run();
  EXPECT_DOUBLE_EQ(wire->capacity(), c0);
}

TEST(Faults, RestoreClocksReinstatesPriorPolicy) {
  // kPerformance before the throttle must come back as kPerformance, not
  // the historical hardcoded kOndemand.
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  auto& gov = cluster.machine(0).governor();
  gov.set_policy(hw::CpuPolicy::kPerformance);
  FaultInjector faults(cluster);
  faults.throttle_node(0, /*at=*/0.001, /*recover_at=*/0.002);
  cluster.engine().run();
  EXPECT_EQ(gov.policy(), hw::CpuPolicy::kPerformance);
}

TEST(Faults, RestoreClocksReinstatesUserspacePin) {
  // A userspace pin (the paper's fixed-frequency experiments) must return
  // to the pinned frequency, not just the policy enum.
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  auto& gov = cluster.machine(0).governor();
  gov.pin_core_freq(2.3e9);
  FaultInjector faults(cluster);
  faults.throttle_node(0, /*at=*/0.001, /*recover_at=*/0.002);
  cluster.engine().run(0.0015);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), MachineConfig::henri().core_freq_min_hz);
  cluster.engine().run();
  EXPECT_EQ(gov.policy(), hw::CpuPolicy::kUserspace);
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 2.3e9);
}

TEST(FaultPlans, GenerationIsDeterministic) {
  FaultScheduleConfig cfg;
  cfg.seed = 1234;
  cfg.horizon = 2.0;
  FaultPlan a = generate_fault_plan(cfg);
  FaultPlan b = generate_fault_plan(cfg);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  cfg.seed = 1235;
  EXPECT_FALSE(a == generate_fault_plan(cfg));
}

TEST(FaultPlans, SerializeParseRoundTripsBitForBit) {
  FaultScheduleConfig cfg;
  cfg.seed = 7;
  cfg.horizon = 1.0;
  cfg.interarrival = FaultScheduleConfig::Dist::kWeibull;
  FaultPlan plan = generate_fault_plan(cfg);
  ASSERT_FALSE(plan.empty());
  const std::string text = FaultPlan::parse(plan.serialize()).serialize();
  EXPECT_EQ(plan, FaultPlan::parse(text));
  EXPECT_EQ(text, plan.serialize());
  EXPECT_THROW(FaultPlan::parse("not-a-kind at=0"), std::runtime_error);
}

TEST(FaultPlans, InjectorRecordsWhatItApplies) {
  // Replay contract: applying a plan records a plan equal to the input.
  FaultScheduleConfig cfg;
  cfg.seed = 99;
  cfg.horizon = 0.5;
  FaultPlan plan = generate_fault_plan(cfg);
  ASSERT_FALSE(plan.empty());
  Cluster cluster(MachineConfig::henri(), NetworkParams::ib_edr());
  FaultInjector faults(cluster);
  faults.apply(plan);
  EXPECT_EQ(faults.plan(), plan);
  cluster.engine().run();  // scheduled events must also be consumable
}

TEST(FaultState, LossWindowsStack) {
  FaultState fs;
  EXPECT_DOUBLE_EQ(fs.loss_prob(), 0.0);
  fs.push_loss(0.5);
  fs.push_loss(0.5);
  EXPECT_DOUBLE_EQ(fs.loss_prob(), 0.75);  // 1 - (1-p1)(1-p2)
  fs.pop_loss(0.5);
  EXPECT_DOUBLE_EQ(fs.loss_prob(), 0.5);
  fs.pop_loss(0.5);
  EXPECT_DOUBLE_EQ(fs.loss_prob(), 0.0);
  // Quiet state draws must not consume RNG (jitter-stream neutrality).
  sim::Rng rng(1);
  sim::Rng ref(1);
  EXPECT_FALSE(fs.draw_loss(rng));
  EXPECT_FALSE(fs.draw_corrupt(rng));
  EXPECT_EQ(rng.next_u64(), ref.next_u64());
}

TEST(FaultState, BlackoutsNestPerNode) {
  FaultState fs;
  int onsets = 0;
  fs.on_blackout([&](int) { ++onsets; });
  fs.begin_blackout(1);
  fs.begin_blackout(1);
  EXPECT_TRUE(fs.blacked_out(1));
  EXPECT_FALSE(fs.blacked_out(0));
  EXPECT_EQ(onsets, 1);  // only the 0 -> 1 transition notifies
  fs.end_blackout(1);
  EXPECT_TRUE(fs.blacked_out(1));
  fs.end_blackout(1);
  EXPECT_FALSE(fs.blacked_out(1));
}

TEST(DvfsRamp, TransitionLatencyDelaysTurbo) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  MachineConfig cfg = MachineConfig::henri();
  cfg.dvfs_transition_latency = 50e-6;
  hw::Machine machine(model, cfg);
  auto& gov = machine.governor();
  engine.run(0.0);
  engine.call_at(1e-3, [&] { gov.core_busy(0, hw::VectorClass::kScalar); });
  engine.run(1e-3 + 10e-6);  // 10 us after the decision: still ramping
  EXPECT_DOUBLE_EQ(gov.core_freq(0), cfg.core_freq_min_hz);
  engine.run(1e-3 + 60e-6);  // past the 50 us ramp
  EXPECT_DOUBLE_EQ(gov.core_freq(0), 3.7e9);
}

TEST(DvfsRamp, SupersededTransitionNeverLands) {
  sim::Engine engine;
  sim::FlowModel model(engine);
  MachineConfig cfg = MachineConfig::henri();
  cfg.dvfs_transition_latency = 50e-6;
  hw::Machine machine(model, cfg);
  auto& gov = machine.governor();
  engine.call_at(1e-3, [&] { gov.core_busy(0, hw::VectorClass::kScalar); });
  engine.call_at(1e-3 + 20e-6, [&] { gov.core_idle(0); });  // cancel before ramp ends
  engine.run();
  EXPECT_DOUBLE_EQ(gov.core_freq(0), cfg.core_freq_min_hz);
}

}  // namespace
}  // namespace cci::net
