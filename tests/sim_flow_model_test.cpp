// FlowModel: fluid progress, sharing dynamics, capacity changes, stalls.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/flow_model.hpp"

namespace cci::sim {
namespace {

ActivitySpec flow_through(Resource* r, double work, double demand = 1.0) {
  ActivitySpec spec;
  spec.work = work;
  spec.demands = {{r, demand}};
  return spec;
}

TEST(FlowModel, SingleActivityFinishesAtWorkOverCapacity) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  auto act = model.start(flow_through(pipe, 50.0));
  engine.run();
  EXPECT_TRUE(act->finished());
  EXPECT_DOUBLE_EQ(act->finished_at(), 5.0);
}

TEST(FlowModel, TwoActivitiesHalveEachOthersRate) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  auto a = model.start(flow_through(pipe, 50.0));
  auto b = model.start(flow_through(pipe, 50.0));
  engine.run();
  // Both share 10 -> each at 5 -> both finish at t=10.
  EXPECT_DOUBLE_EQ(a->finished_at(), 10.0);
  EXPECT_DOUBLE_EQ(b->finished_at(), 10.0);
}

TEST(FlowModel, LateArrivalSlowsFirstFlow) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  auto a = model.start(flow_through(pipe, 100.0));
  ActivityPtr b;
  engine.call_at(5.0, [&] { b = model.start(flow_through(pipe, 25.0)); });
  engine.run();
  // a: 5s at rate 10 (50 done), then shares at 5 until b (25 work) finishes
  // at t=10; a has 75 done, finishes remaining 25 at rate 10 by t=12.5.
  EXPECT_NEAR(b->finished_at(), 10.0, 1e-9);
  EXPECT_NEAR(a->finished_at(), 12.5, 1e-9);
}

TEST(FlowModel, CompletionReleasesBandwidthToSurvivors) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 8.0);
  auto small = model.start(flow_through(pipe, 8.0));
  auto large = model.start(flow_through(pipe, 40.0));
  engine.run();
  EXPECT_NEAR(small->finished_at(), 2.0, 1e-9);   // 8 work at rate 4
  EXPECT_NEAR(large->finished_at(), 6.0, 1e-9);   // 8 done by t=2, 32 left at 8
}

TEST(FlowModel, CapacityDropStretchesCompletion) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  auto act = model.start(flow_through(pipe, 100.0));
  engine.call_at(4.0, [&] { pipe->set_capacity(2.0); });
  engine.run();
  // 40 done at t=4; remaining 60 at rate 2 -> t = 4 + 30 = 34.
  EXPECT_NEAR(act->finished_at(), 34.0, 1e-9);
}

TEST(FlowModel, ZeroCapacityStallsUntilRestored) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  auto act = model.start(flow_through(pipe, 100.0));
  engine.call_at(2.0, [&] { pipe->set_capacity(0.0); });
  engine.call_at(7.0, [&] { pipe->set_capacity(10.0); });
  engine.run();
  // 20 done by t=2, stalled 5s, 80 left at 10 -> t = 7 + 8 = 15.
  EXPECT_NEAR(act->finished_at(), 15.0, 1e-9);
}

TEST(FlowModel, RateCapLimitsUncontendedFlow) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 100.0);
  ActivitySpec spec = flow_through(pipe, 30.0);
  spec.rate_cap = 3.0;
  auto act = model.start(spec);
  engine.run();
  EXPECT_NEAR(act->finished_at(), 10.0, 1e-9);
  EXPECT_NEAR(act->rate(), 0.0, 1e-12);  // cleared after completion
}

TEST(FlowModel, ZeroWorkActivityCompletesImmediately) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 1.0);
  auto act = model.start(flow_through(pipe, 0.0));
  EXPECT_TRUE(act->finished());
  EXPECT_DOUBLE_EQ(act->finished_at(), 0.0);
}

TEST(FlowModel, CancelRemovesActivityWithoutCompletion) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  auto doomed = model.start(flow_through(pipe, 1000.0));
  auto other = model.start(flow_through(pipe, 50.0));
  engine.call_at(1.0, [&] { model.cancel(doomed); });
  engine.run();
  EXPECT_FALSE(doomed->finished());
  // other: 5 done at t=1 (shared), then full rate: (50-5)/10 -> t=5.5.
  EXPECT_NEAR(other->finished_at(), 5.5, 1e-9);
}

TEST(FlowModel, RooflineCoupledActivityTakesTheBindingResource) {
  // A compute chunk demanding both core flops and memory bytes advances at
  // min(core share / flops-per-unit, memory share / bytes-per-unit).
  Engine engine;
  FlowModel model(engine);
  Resource* core = model.add_resource("core", 10e9);  // 10 Gflop/s
  Resource* mem = model.add_resource("mem", 20e9);    // 20 GB/s

  // High arithmetic intensity: 10 flop per byte -> core-bound.
  ActivitySpec cpu_bound;
  cpu_bound.work = 1e9;  // units
  cpu_bound.demands = {{core, 10.0}, {mem, 1.0}};
  auto a = model.start(cpu_bound);
  engine.run();
  EXPECT_NEAR(a->duration(), 1.0, 1e-9);  // 1e9 units * 10 flop / 10e9

  // Low arithmetic intensity: 0.1 flop per byte -> memory-bound.
  ActivitySpec mem_bound;
  mem_bound.work = 1e9;
  mem_bound.demands = {{core, 0.1}, {mem, 1.0}};
  auto b = model.start(mem_bound);
  engine.run();
  EXPECT_NEAR(b->duration(), 1e9 / 20e9, 1e-12);
}

TEST(FlowModel, UtilizationTracksAllocatedLoad) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 10.0);
  ActivitySpec spec = flow_through(pipe, 1000.0);
  spec.rate_cap = 4.0;
  model.start(spec);
  engine.run(0.1);
  EXPECT_NEAR(pipe->load(), 4.0, 1e-9);
  EXPECT_NEAR(pipe->utilization(), 0.4, 1e-9);
}

Coro await_activity(Engine& engine, FlowModel& model, Resource* pipe, Time& done_at) {
  ActivitySpec spec;
  spec.work = 20.0;
  spec.demands = {{pipe, 1.0}};
  auto act = model.start(spec);
  co_await *act;
  done_at = engine.now();
}

TEST(FlowModel, ProcessCanAwaitActivityCompletion) {
  Engine engine;
  FlowModel model(engine);
  Resource* pipe = model.add_resource("pipe", 4.0);
  Time done_at = -1.0;
  engine.spawn(await_activity(engine, model, pipe, done_at));
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

}  // namespace
}  // namespace cci::sim
