// Analytical sharing models: sanity, asymptotics, and agreement with the
// discrete-event simulator on the Fig. 4b sweep.
#include <gtest/gtest.h>

#include "core/interference_lab.hpp"
#include "kernels/stream.hpp"
#include "model/analytic.hpp"

namespace cci::model {
namespace {

ContentionInputs fig4_inputs(int cores) {
  ContentionInputs in;  // henri + EDR + TRIAD defaults
  in.computing_cores = cores;
  return in;
}

TEST(Analytic, NoComputationMeansFullBandwidth) {
  auto mm = predict_max_min(fig4_inputs(0));
  auto pr = predict_proportional(fig4_inputs(0));
  EXPECT_NEAR(mm.network_bw, 10.5e9, 0.2e9);
  EXPECT_NEAR(pr.network_bw, 10.5e9, 0.2e9);
}

TEST(Analytic, NetworkShareMonotonicallyDecreases) {
  double prev_mm = 1e30, prev_pr = 1e30;
  for (int cores : {0, 2, 4, 8, 16, 24, 35}) {
    auto mm = predict_max_min(fig4_inputs(cores));
    auto pr = predict_proportional(fig4_inputs(cores));
    EXPECT_LE(mm.network_bw, prev_mm * (1 + 1e-9)) << cores;
    EXPECT_LE(pr.network_bw, prev_pr * (1 + 1e-9)) << cores;
    prev_mm = mm.network_bw;
    prev_pr = pr.network_bw;
  }
}

TEST(Analytic, ProportionalIsHarsherOnTheNicThanMaxMin) {
  // Max-min protects the (weighted) small flow; proportional does not.
  auto mm = predict_max_min(fig4_inputs(35));
  auto pr = predict_proportional(fig4_inputs(35));
  EXPECT_LT(pr.network_bw, mm.network_bw * 1.05);
}

TEST(Analytic, PerCoreBandwidthMatchesRooflineWhenUncontended) {
  auto mm = predict_max_min(fig4_inputs(1));
  EXPECT_NEAR(mm.per_core_bw, 12e9, 0.5e9);  // henri per-core cap
}

TEST(Analytic, CpuBoundKernelLeavesNetworkAlone) {
  ContentionInputs in = fig4_inputs(35);
  in.kernel = hw::KernelTraits{"flops", 8.0, 0.0, hw::VectorClass::kScalar};
  auto mm = predict_max_min(in);
  EXPECT_NEAR(mm.network_bw, 10.5e9, 0.2e9);
}

TEST(Analytic, MaxMinTracksSimulatorOnFig4bSweep) {
  // The static model should land within ~35% of the DES on every point of
  // the Fig. 4b sweep (it misses protocol dynamics, uncore, handshakes).
  for (int cores : {0, 4, 8, 16, 24, 35}) {
    auto mm = predict_max_min(fig4_inputs(cores));

    core::Scenario s;
    s.kernel = kernels::triad_traits();
    s.computing_cores = cores;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    core::InterferenceLab lab(s);
    core::ComputePhase compute;
    core::CommPhase comm;
    lab.run_compute_alone();
    lab.run_together(compute, comm);
    double sim_bw = comm.bandwidth.median;

    EXPECT_GT(mm.network_bw, 0.6 * sim_bw) << cores << " cores";
    EXPECT_LT(mm.network_bw, 1.5 * sim_bw) << cores << " cores";
  }
}

}  // namespace
}  // namespace cci::model
