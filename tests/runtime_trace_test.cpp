// Runtime execution traces: Gantt records and their invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "kernels/stream.hpp"
#include "runtime/runtime.hpp"

namespace cci::runtime {
namespace {

using hw::MachineConfig;
using net::Cluster;
using net::NetworkParams;

struct TraceRig {
  TraceRig() : cluster(MachineConfig::henri(), NetworkParams::ib_edr(), 2),
               world(cluster, {{0, -1}, {1, -1}}) {}
  Cluster cluster;
  mpi::World world;
};

TEST(ExecutionTrace, RecordsEveryComputeTaskExactlyOnce) {
  TraceRig rig;
  RuntimeConfig cfg;
  cfg.workers = 4;
  Runtime rt(rig.world, 0, cfg);
  rt.enable_execution_trace(true);
  hw::KernelTraits triad = kernels::triad_traits();
  for (int i = 0; i < 12; ++i) rt.add_task({"t" + std::to_string(i), triad, 1e6}, i % 4);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  ASSERT_EQ(rt.execution_trace().size(), 12u);
  // Each record well-formed; names unique.
  std::vector<std::string> names;
  for (const auto& rec : rt.execution_trace()) {
    EXPECT_LT(rec.start, rec.end);
    EXPECT_GE(rec.core, 0);
    names.push_back(rec.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(ExecutionTrace, TasksOnOneCoreNeverOverlap) {
  TraceRig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;  // force serialization
  Runtime rt(rig.world, 0, cfg);
  rt.enable_execution_trace(true);
  hw::KernelTraits triad = kernels::triad_traits();
  for (int i = 0; i < 10; ++i) rt.add_task({"t", triad, 1e6}, 0);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  // Group by core; intervals must be disjoint.
  for (int core : rt.worker_cores()) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& rec : rt.execution_trace())
      if (rec.core == core) spans.emplace_back(rec.start, rec.end);
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12);
  }
}

TEST(ExecutionTrace, DisabledByDefault) {
  TraceRig rig;
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(rig.world, 0, cfg);
  rt.add_task({"t", kernels::triad_traits(), 1e6}, 0);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  EXPECT_TRUE(rt.execution_trace().empty());
}

TEST(ExecutionTrace, DependentTasksAreOrderedInTime) {
  TraceRig rig;
  RuntimeConfig cfg;
  cfg.workers = 4;
  Runtime rt(rig.world, 0, cfg);
  rt.enable_execution_trace(true);
  hw::KernelTraits triad = kernels::triad_traits();
  Task* a = rt.add_task({"first", triad, 1e6}, 0);
  Task* b = rt.add_task({"second", triad, 1e6}, 1);
  Runtime::add_dependency(a, b);
  auto& done = rt.run();
  rig.cluster.engine().spawn([](Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
    co_await d;
    r.shutdown();
  }(rt, done));
  rig.cluster.engine().run();
  double end_first = 0, start_second = 0;
  for (const auto& rec : rt.execution_trace()) {
    if (rec.name == "first") end_first = rec.end;
    if (rec.name == "second") start_second = rec.start;
  }
  EXPECT_GE(start_second, end_first);
}

}  // namespace
}  // namespace cci::runtime
