// Calibration self-check: one binary that re-verifies every number the
// model is calibrated against (§2.2/§3 anchors) and prints PASS/FAIL —
// run after touching any machine or network parameter.
#include <cmath>

#include "bench/common.hpp"
#include "hw/frequency_governor.hpp"
#include "mpi/pingpong.hpp"

using namespace cci;

namespace {

int failures = 0;

void check(trace::Table& t, const char* what, double measured, double expected, double tol_rel) {
  bool ok = std::abs(measured - expected) <= tol_rel * expected;
  if (!ok) ++failures;
  char m[32], e[32];
  std::snprintf(m, sizeof(m), "%.4g", measured);
  std::snprintf(e, sizeof(e), "%.4g", expected);
  t.add_text_row({what, m, e, ok ? "PASS" : "FAIL"});
}

double latency_at(double core_hz, double uncore_hz, int comm_core) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  for (int n = 0; n < 2; ++n) {
    if (core_hz > 0) cluster.machine(n).governor().pin_core_freq(core_hz);
    if (uncore_hz > 0) cluster.machine(n).governor().pin_uncore_freq(uncore_hz);
  }
  mpi::World world(cluster, {{0, comm_core}, {1, comm_core}});
  mpi::PingPongOptions opt;
  opt.bytes = 4;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  return trace::Stats::of(pp.latencies()).median;
}

double bandwidth_at(double uncore_hz) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  if (uncore_hz > 0)
    for (int n = 0; n < 2; ++n) cluster.machine(n).governor().pin_uncore_freq(uncore_hz);
  mpi::World world(cluster, {{0, 35}, {1, 35}});
  mpi::PingPongOptions opt;
  opt.bytes = 64 << 20;
  opt.iterations = 5;
  opt.warmup = 1;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  return trace::Stats::of(pp.bandwidths()).median;
}

}  // namespace

int main() {
  bench::banner("Calibration", "anchor values the model is calibrated against");

  trace::Table t({"anchor", "measured", "paper", "status"});
  // §3.1 / Fig. 1a.
  check(t, "4B latency us, core 2300 MHz (far)", latency_at(2.3e9, 0, 35) * 1e6, 1.8, 0.10);
  check(t, "4B latency us, core 1000 MHz (far)", latency_at(1.0e9, 0, 35) * 1e6, 3.1, 0.10);
  // §4.3 quiet placements.
  check(t, "4B latency us, ondemand near NIC", latency_at(0, 0, 8) * 1e6, 1.39, 0.10);
  check(t, "4B latency us, ondemand far", latency_at(0, 0, 35) * 1e6, 1.67, 0.12);
  // Fig. 1b.
  check(t, "64MB bandwidth GB/s, uncore 2400", bandwidth_at(2.4e9) / 1e9, 10.5, 0.05);
  check(t, "64MB bandwidth GB/s, uncore 1200", bandwidth_at(1.2e9) / 1e9, 10.1, 0.05);
  // §3.3 turbo anchors.
  auto henri = hw::MachineConfig::henri();
  check(t, "AVX512 turbo GHz, 4 cores", henri.turbo_freq(hw::VectorClass::kAvx512, 4) / 1e9,
        3.0, 0.01);
  check(t, "AVX512 turbo GHz, 18 cores", henri.turbo_freq(hw::VectorClass::kAvx512, 18) / 1e9,
        2.3, 0.01);

  t.print(std::cout);
  std::cout << "\n" << (failures == 0 ? "ALL ANCHORS PASS" : "CALIBRATION DRIFT DETECTED")
            << " (" << failures << " failure(s))\n";
  return failures == 0 ? 0 : 1;
}
