// Fig. 10 — network sending bandwidth and memory-stall fraction of
// task-based CG and GEMM on two henri nodes, sweeping the worker count.
#include <algorithm>

#include "bench/common.hpp"
#include "runtime/apps.hpp"

using namespace cci;

int main() {
  bench::banner("Fig. 10", "CG and GEMM: sending bandwidth vs memory stalls, 2 nodes");
  bench::BenchObs obs("fig10_cg_gemm");

  auto machine = hw::MachineConfig::henri();
  auto np = net::NetworkParams::ib_edr();
  auto rt_cfg = runtime::RuntimeConfig::for_machine("henri");

  std::vector<int> workers{1, 2, 4, 8, 12, 16, 20, 24, 28, 34};

  std::vector<double> cg_bw, cg_stall, gemm_bw, gemm_stall;
  for (int w : workers) {
    runtime::CgAppOptions cg;
    cg.n = 32768;
    cg.iterations = 3;
    cg.workers = w;
    auto rc = runtime::run_cg_app(machine, np, rt_cfg, cg);
    cg_bw.push_back(rc.sending_bw);
    cg_stall.push_back(rc.stall_fraction);

    runtime::GemmAppOptions gm;
    gm.m = 4096;
    gm.tile = 512;
    gm.workers = w;
    auto rg = runtime::run_gemm_app(machine, np, rt_cfg, gm);
    gemm_bw.push_back(rg.sending_bw);
    gemm_stall.push_back(rg.stall_fraction);

    obs.write_record({{"workers", static_cast<double>(w)},
                      {"cg_send_Bps", rc.sending_bw},
                      {"cg_stall_fraction", rc.stall_fraction},
                      {"gemm_send_Bps", rg.sending_bw},
                      {"gemm_stall_fraction", rg.stall_fraction}});
  }

  double cg_max = *std::max_element(cg_bw.begin(), cg_bw.end());
  double gemm_max = *std::max_element(gemm_bw.begin(), gemm_bw.end());

  trace::Table t({"workers", "CG_norm_send_bw", "CG_stall_pct", "GEMM_norm_send_bw",
                  "GEMM_stall_pct"});
  for (std::size_t i = 0; i < workers.size(); ++i) {
    t.add_row({static_cast<double>(workers[i]), cg_bw[i] / cg_max, 100.0 * cg_stall[i],
               gemm_bw[i] / gemm_max, 100.0 * gemm_stall[i]});
  }
  t.print(std::cout);

  double cg_loss = 100.0 * (1.0 - cg_bw.back() / cg_max);
  double gemm_loss = 100.0 * (1.0 - gemm_bw.back() / gemm_max);
  std::cout << "\nMeasured at full machine: CG loses " << static_cast<int>(cg_loss)
            << "% of sending bandwidth, GEMM " << static_cast<int>(gemm_loss) << "%\n";
  std::cout << "Paper: CG loses up to 90% (70% of stalls from memory), GEMM at most\n"
               "20% (20% stalls) — CG is the memory-bound kernel, GEMM the dense one.\n";
  return 0;
}
