// Extension: communication/computation overlap efficiency (after the
// authors' earlier benchmark, reference [7]) as a function of the
// computation's arithmetic intensity and core count.
#include "bench/common.hpp"
#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"
#include "mpi/overlap.hpp"

using namespace cci;

namespace {

mpi::OverlapResult run_case(const hw::KernelTraits& kernel, int cores) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::OverlapOptions opt;
  opt.bytes = 8 << 20;
  opt.kernel = kernel;
  for (int c = 0; c < cores; ++c) opt.compute_cores.push_back(c);
  return measure_overlap(world, opt);
}

}  // namespace

int main() {
  bench::banner("Overlap", "isend/compute/wait overlap ratio (1.0 = perfect hiding)");

  trace::Table t({"kernel", "cores", "t_comm_ms", "t_comp_ms", "t_overlap_ms", "ratio"});
  struct Case {
    const char* label;
    hw::KernelTraits traits;
  };
  std::vector<Case> cases = {
      {"primes (CPU-bound)", kernels::prime_traits()},
      {"triad AI=6", kernels::TunableTriad(16, 72).traits()},
      {"stream triad (AI=0.08)", kernels::triad_traits()},
  };
  for (const Case& c : cases) {
    for (int cores : {2, 8, 16}) {
      auto r = run_case(c.traits, cores);
      t.add_text_row({c.label, std::to_string(cores),
                      trace::fmt(r.t_comm * 1e3, 2),
                      trace::fmt(r.t_comp * 1e3, 2),
                      trace::fmt(r.t_overlap * 1e3, 2),
                      trace::fmt(r.ratio(), 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nCPU-bound computation hides the DMA almost perfectly; memory-bound\n"
               "computation and the transfer serialize on the controller — the same\n"
               "interference the reproduced paper measures, seen through the overlap\n"
               "lens of its companion benchmark [7].\n";
  return 0;
}
