// Extension: full NetPIPE curves per machine (the measurement instrument
// behind every latency/bandwidth number in the paper).
#include "bench/common.hpp"
#include "mpi/netpipe.hpp"

using namespace cci;

int main() {
  bench::banner("NetPIPE", "latency/bandwidth curves per machine (quiet)");

  for (const auto& machine : hw::MachineConfig::all_presets()) {
    net::Cluster cluster(machine, net::NetworkParams::for_machine(machine.name));
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    mpi::NetpipeOptions opt;
    opt.perturbation = 0;
    opt.iterations = 8;
    auto curve = run_netpipe(world, opt);

    std::cout << "--- " << machine.name << " ("
              << net::NetworkParams::for_machine(machine.name).fabric << ") ---\n";
    trace::Table t({"bytes", "latency_us", "bandwidth_GBps"});
    for (const auto& p : curve.points)
      t.add_row({static_cast<double>(p.bytes), p.latency.median * 1e6, p.bandwidth / 1e9});
    t.print(std::cout);
    std::cout << "peak " << trace::format_bw(curve.peak_bandwidth()) << " at "
              << trace::format_bytes(static_cast<double>(curve.best_size())) << ", n1/2 = "
              << trace::format_bytes(static_cast<double>(curve.half_peak_size()))
              << ", cliffs: " << curve.latency_cliffs().size() << "\n\n";
  }
  return 0;
}
