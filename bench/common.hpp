// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/interference_lab.hpp"
#include "core/result_io.hpp"
#include "obs/session.hpp"
#include "trace/table.hpp"

namespace cci::bench {

/// Standard banner: which paper element this binary regenerates.
inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "=== " << figure << " — " << what << " ===\n";
  std::cout << "(simulated cluster; see EXPERIMENTS.md for paper-vs-measured)\n\n";
}

/// Computing-core counts used for the sweeps on a 36-core machine.
inline std::vector<int> core_sweep(int max_cores) {
  std::vector<int> cores{0, 1, 2, 3, 5, 8, 12, 16, 20, 24, 28, 32};
  std::vector<int> out;
  for (int c : cores)
    if (c < max_cores) out.push_back(c);
  out.push_back(max_cores);
  return out;
}

/// Message sizes for NetPIPE-style sweeps.
inline std::vector<std::size_t> size_sweep() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (64u << 20); s *= 4) sizes.push_back(s);
  return sizes;
}

/// Per-bench observability hookup, driven entirely by the environment:
///   CCI_TRACE=<path>    Chrome trace (written by the Session destructor)
///                       plus metrics; records land in "<path>.records.json"
///                       unless CCI_RESULTS overrides them.
///   CCI_METRICS=1       metrics only (no trace file).
///   CCI_RESULTS=<path>  append one JSON record per write_record() call.
/// With none of the variables set, everything is a no-op.
class BenchObs {
 public:
  explicit BenchObs(std::string bench_name)
      : bench_(std::move(bench_name)), session_(obs::Session::from_env()) {
    if (const char* results = std::getenv("CCI_RESULTS")) {
      results_path_ = results;
    } else if (session_.tracing()) {
      results_path_ = session_.path() + ".records.json";
    }
    if (!results_path_.empty()) obs::Registry::global().set_enabled(true);
  }

  /// Append one JSON record (bench name + fields + current metrics snapshot).
  void write_record(const std::vector<std::pair<std::string, double>>& fields) {
    if (results_path_.empty()) return;
    std::ofstream os(results_path_, std::ios::app);
    if (!os) return;
    auto snap = obs::Registry::global().snapshot();
    core::write_bench_json(os, bench_, fields, &snap);
    recorded_ = true;
  }

  ~BenchObs() {
    if (recorded_)
      std::cerr << "[cci-obs] bench records appended to " << results_path_ << "\n";
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

 private:
  std::string bench_;
  obs::Session session_;
  std::string results_path_;
  bool recorded_ = false;
};

}  // namespace cci::bench
