// Shared helpers for the figure-reproduction benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/interference_lab.hpp"
#include "trace/table.hpp"

namespace cci::bench {

/// Standard banner: which paper element this binary regenerates.
inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "=== " << figure << " — " << what << " ===\n";
  std::cout << "(simulated cluster; see EXPERIMENTS.md for paper-vs-measured)\n\n";
}

/// Computing-core counts used for the sweeps on a 36-core machine.
inline std::vector<int> core_sweep(int max_cores) {
  std::vector<int> cores{0, 1, 2, 3, 5, 8, 12, 16, 20, 24, 28, 32};
  std::vector<int> out;
  for (int c : cores)
    if (c < max_cores) out.push_back(c);
  out.push_back(max_cores);
  return out;
}

/// Message sizes for NetPIPE-style sweeps.
inline std::vector<std::size_t> size_sweep() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (64u << 20); s *= 4) sizes.push_back(s);
  return sizes;
}

}  // namespace cci::bench
