// Shared helpers for the figure-reproduction benches.
//
// The sweep value lists (core counts, message sizes) that used to live
// here moved into the spec layer: core::paper_core_counts() /
// core::paper_message_sizes() in core/campaign.hpp, where figure
// definitions declare *what* varies instead of hand-rolling loops.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/interference_lab.hpp"
#include "core/result_io.hpp"
#include "obs/session.hpp"
#include "trace/metrics_table.hpp"
#include "trace/table.hpp"

namespace cci::bench {

/// Standard banner: which paper element this binary regenerates.
inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "=== " << figure << " — " << what << " ===\n";
  std::cout << "(simulated cluster; see EXPERIMENTS.md for paper-vs-measured)\n\n";
}

/// Per-bench observability hookup, driven entirely by the environment:
///   CCI_TRACE=<path>    Chrome trace (written by the Session destructor)
///                       plus metrics; records land in "<path>.records.json"
///                       unless CCI_RESULTS overrides them.
///   CCI_METRICS=1       metrics only: the end-of-run metrics_table is
///                       printed on exit (no trace file needed).
///   CCI_RESULTS=<path>  append one JSON record per write_record() call.
/// With none of the variables set, everything is a no-op.
class BenchObs {
 public:
  explicit BenchObs(std::string bench_name)
      : bench_(std::move(bench_name)), session_(obs::Session::from_env()) {
    if (const char* results = std::getenv("CCI_RESULTS")) {
      results_path_ = results;
    } else if (session_.tracing()) {
      results_path_ = session_.path() + ".records.json";
    }
    if (!results_path_.empty()) obs::Registry::global().set_enabled(true);
  }

  /// Append one JSON record (bench name + fields + current metrics snapshot).
  void write_record(const std::vector<std::pair<std::string, double>>& fields) {
    if (results_path_.empty()) return;
    std::ofstream os(results_path_, std::ios::app);
    if (!os) return;
    auto snap = obs::Registry::global().snapshot();
    core::write_bench_json(os, bench_, fields, &snap);
    recorded_ = true;
  }

  ~BenchObs() {
    // CCI_METRICS=1 with no trace file and no results path used to enable
    // collection and then silently drop everything; now every bench emits
    // the end-of-run metrics_table so metrics-only runs have an output.
    if (session_.active() && !session_.tracing() && results_path_.empty() &&
        obs::Registry::global().enabled()) {
      std::cout << "\n[cci-obs] end-of-run metrics (" << bench_ << "):\n";
      trace::metrics_table(obs::Registry::global().snapshot()).print(std::cout);
    }
    if (recorded_)
      std::cerr << "[cci-obs] bench records appended to " << results_path_ << "\n";
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

 private:
  std::string bench_;
  obs::Session session_;
  std::string results_path_;
  bool recorded_ = false;
};

}  // namespace cci::bench
