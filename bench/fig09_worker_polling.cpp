// Fig. 9 — impact of polling workers on network latency (henri).
//
// Workers have no tasks and busy-poll the shared scheduler list with
// exponential backoff; a runtime-level ping-pong measures latency for the
// paper's four configurations.
#include "bench/common.hpp"
#include "runtime/rt_pingpong.hpp"

using namespace cci;

namespace {

double run_config(int backoff, bool paused, std::size_t bytes) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  runtime::RuntimeConfig cfg = runtime::RuntimeConfig::for_machine("henri");
  cfg.backoff_max_nops = backoff;
  cfg.workers_paused = paused;
  runtime::Runtime rt0(world, 0, cfg);
  runtime::Runtime rt1(world, 1, cfg);
  rt0.start_workers_idle();
  rt1.start_workers_idle();
  runtime::RtPingPongOptions opt;
  opt.bytes = bytes;
  opt.iterations = bytes >= (1u << 20) ? 5 : 20;
  runtime::RtPingPong pp(rt0, rt1, opt);
  pp.start();
  cluster.engine().run(10.0);  // workers poll forever: bounded horizon
  rt0.shutdown();  // flushes the poll-count integral into the registry
  rt1.shutdown();
  return trace::Stats::of(pp.latencies()).median;
}

}  // namespace

int main() {
  bench::banner("Fig. 9", "impact of worker polling (backoff) on network latency");
  bench::BenchObs obs("fig09_worker_polling");

  trace::Table t({"msg_bytes", "paused_us", "backoff_10000_us", "backoff_32_default_us",
                  "backoff_2_us"});
  for (std::size_t bytes : {4u, 64u, 1024u, 16384u, 262144u}) {
    double paused = run_config(32, true, bytes);
    double slow = run_config(10000, false, bytes);
    double dflt = run_config(32, false, bytes);
    double fast = run_config(2, false, bytes);
    t.add_row({static_cast<double>(bytes), sim::to_usec(paused), sim::to_usec(slow),
               sim::to_usec(dflt), sim::to_usec(fast)});
    obs.write_record({{"msg_bytes", static_cast<double>(bytes)},
                      {"paused_us", sim::to_usec(paused)},
                      {"backoff_32_default_us", sim::to_usec(dflt)}});
  }
  t.print(std::cout);
  std::cout << "\nPaper: latency is higher the more often workers poll; a very long\n"
               "backoff behaves like paused workers.  (On billy/pyxis the effect\n"
               "vanishes — different locking; modelled via lock_delay_per_worker=0.)\n";
  return 0;
}
