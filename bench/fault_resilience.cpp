// Fault-resilience sweep (google-benchmark): goodput and retransmit
// overhead of the reliable transport across loss rate x message size.
//
// The simulation is seeded and deterministic, so besides wall time the
// bench reports stable counters:
//   * retransmits_per_msg — retry pressure of the protocol (baselined by
//     tools/perf_guard.py: a structural regression in the retransmit path
//     shows up here, independent of runner speed);
//   * goodput_gbps — application-visible bandwidth under loss;
//   * delivered — fraction of messages that completed kOk.
// Loss 0 runs with force_reliable(true): same protocol, no faults — its
// retransmits_per_msg must stay exactly 0.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "mpi/pingpong.hpp"
#include "net/faults.hpp"
#include "obs/metrics.hpp"
#include "trace/stats.hpp"

using namespace cci;

namespace {

struct Outcome {
  double retransmits = 0.0;
  double goodput = 0.0;    // B/s, median over iterations
  double delivered = 1.0;  // fraction of sends that ended kOk
  int messages = 0;
};

Outcome run_sweep(double loss_prob, std::size_t bytes) {
  obs::Registry& reg = obs::Registry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();

  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  net::FaultInjector faults(cluster);
  if (loss_prob > 0.0)
    faults.loss_window(loss_prob, 0.0);
  else
    cluster.faults().force_reliable(true);  // identical protocol at loss 0

  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = bytes;
  opt.iterations = 16;
  opt.warmup = 0;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();

  Outcome out;
  out.messages = 2 * opt.iterations;  // each iteration is a there-and-back
  out.retransmits = reg.counter("mpi.retransmits").value();
  const double timeouts = reg.counter("mpi.timeouts").value();
  out.delivered = 1.0 - timeouts / out.messages;
  out.goodput = trace::Stats::of(pp.bandwidths()).median;
  reg.set_enabled(was_enabled);
  return out;
}

void BM_FaultResilience(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t bytes = std::size_t{1} << state.range(1);
  Outcome out;
  for (auto _ : state) out = run_sweep(loss, bytes);
  state.counters["retransmits_per_msg"] =
      out.retransmits / static_cast<double>(out.messages);
  state.counters["goodput_gbps"] = out.goodput / 1e9;
  state.counters["delivered"] = out.delivered;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * out.messages);
}

// Loss 0%, 5%, 20% x 4 KiB (eager), 1 MiB (rendezvous), 64 MiB (long DMA).
BENCHMARK(BM_FaultResilience)->ArgsProduct({{0, 5, 20}, {12, 20, 26}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
