// Real-kernel microbenchmarks (google-benchmark): the host-executed
// kernels whose traits parameterize the simulator.
#include <benchmark/benchmark.h>

#include "kernels/cg.hpp"
#include "kernels/dense.hpp"
#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"
#include "kernels/vecflops.hpp"

using namespace cci::kernels;

namespace {

void BM_StreamTriad(benchmark::State& state) {
  StreamArrays s(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) bytes += s.triad();
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StreamTriad)->Arg(1 << 16)->Arg(1 << 20);

void BM_StreamCopy(benchmark::State& state) {
  StreamArrays s(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) bytes += s.copy();
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StreamCopy)->Arg(1 << 20);

void BM_TunableTriad(benchmark::State& state) {
  TunableTriad t(1 << 16, static_cast<int>(state.range(0)));
  std::size_t flops = 0;
  for (auto _ : state) flops += t.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(flops));
  state.SetLabel("AI=" + std::to_string(t.arithmetic_intensity()) + " flop/B");
}
BENCHMARK(BM_TunableTriad)->Arg(1)->Arg(72)->Arg(1200);

void BM_PrimeCount(benchmark::State& state) {
  std::uint64_t count = 0;
  for (auto _ : state) count += count_primes(2, static_cast<std::uint64_t>(state.range(0)));
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_PrimeCount)->Arg(20000);

void BM_VecFlops(benchmark::State& state) {
  VecFlops v;
  double sum = 0;
  for (auto _ : state) sum += v.run(static_cast<std::size_t>(state.range(0)));
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_VecFlops)->Arg(100000);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a(n, n), b(n, n), c(n, n);
  a.randomize(1);
  b.randomize(2);
  for (auto _ : state) {
    gemm_blocked(a, b, c, 64);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(256);

void BM_CgSparseIteration(benchmark::State& state) {
  auto a = CsrMatrix::laplacian2d(static_cast<std::size_t>(state.range(0)));
  std::vector<double> b(a.n, 1.0);
  for (auto _ : state) {
    std::vector<double> x(a.n, 0.0);
    auto res = cg_solve_csr(a, b, x, 1e-6, 50);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_CgSparseIteration)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
