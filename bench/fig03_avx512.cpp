// Fig. 3 — impact of AVX512 computations on frequencies and latency
// (henri, turbo-boost enabled, weak scaling: same work per core).
#include "bench/common.hpp"
#include "core/compute_team.hpp"
#include "kernels/vecflops.hpp"
#include "mpi/pingpong.hpp"
#include "trace/freq_trace.hpp"

using namespace cci;

namespace {

struct Point {
  double compute_ms;
  double freq_ghz;        // computing-core frequency during the run
  double comm_freq_ghz;   // communication-core frequency
  double lat_alone_us;
  double lat_together_us;
};

Point run_point(int cores, bool want_trace, double trace_from = 0.0) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, 35}, {1, 35}});
  sim::Engine& engine = cluster.engine();
  std::unique_ptr<trace::FreqTrace> ft;
  if (want_trace) ft = std::make_unique<trace::FreqTrace>(cluster.machine(0));

  // Latency alone.
  mpi::PingPongOptions ppo;
  ppo.bytes = 4;
  ppo.iterations = 30;
  ppo.tag = 100;
  mpi::PingPong alone(world, 0, 1, ppo);
  alone.start();
  engine.run();

  // AVX512 burn, same flop budget per core (weak scaling, §3.3): sized so
  // 4 cores at 3.0 GHz take ~135 ms as in Fig. 3b.
  core::ComputeTeam::Options copt;
  for (int c = 0; c < cores; ++c) copt.cores.push_back(c);
  copt.data_numa = 0;
  copt.kernel = kernels::VecFlops::traits();
  copt.iters_per_pass = 0.135 * 3.0e9 / (16.0 / 32.0);  // iters = t*f/cycles_per_iter
  copt.repetitions = 3;
  core::ComputeTeam team(cluster.machine(0), copt, cluster.rng());
  core::ComputeTeam team1(cluster.machine(1), copt, cluster.rng());
  ppo.tag = 200;
  ppo.continuous = true;
  mpi::PingPong together(world, 0, 1, ppo);
  together.start();
  team.start();
  team1.start();
  engine.spawn([](core::ComputeTeam& t, mpi::PingPong& p) -> sim::Coro {
    co_await t.done();
    p.request_stop();
  }(team, together));
  engine.run();

  Point pt;
  pt.compute_ms = sim::to_msec(trace::Stats::of(team.pass_durations()).median);
  pt.freq_ghz = cluster.machine(0).governor().core_freq(0) / 1e9;  // post-run: idle
  pt.comm_freq_ghz = cluster.machine(0).governor().core_freq(35) / 1e9;
  pt.lat_alone_us = sim::to_usec(trace::Stats::of(alone.latencies()).median);
  pt.lat_together_us = sim::to_usec(trace::Stats::of(together.latencies()).median);

  if (want_trace) {
    std::cout << "frequency trace with " << cores << " AVX512 cores (GHz):\n";
    trace::Table t({"time_s", "avx_core0", "comm_core35"});
    auto sampled = ft->sample(trace_from, engine.now(), 0.05, 36);
    for (std::size_t i = 0; i < sampled.times.size(); ++i)
      t.add_row({sampled.times[i], sampled.core_freqs[0][i] / 1e9,
                 sampled.core_freqs[35][i] / 1e9});
    t.print(std::cout);
    std::cout << '\n';
  }
  // Frequency during compute: read from the governor's busy table.
  auto cfg = hw::MachineConfig::henri();
  int per_socket = std::min(cores, 18);
  pt.freq_ghz = cfg.turbo_freq(hw::VectorClass::kAvx512, per_socket) / 1e9;
  return pt;
}

}  // namespace

int main() {
  bench::banner("Fig. 3", "AVX512 computations: frequencies and network latency");

  std::cout << "--- Fig. 3a: computation time and latency vs computing cores ---\n";
  trace::Table table({"cores", "avx_freq_GHz", "compute_ms", "lat_alone_us", "lat_with_compute_us"});
  for (int cores : {2, 4, 8, 12, 16, 20, 24, 28, 32, 35}) {
    Point p = run_point(cores, false);
    table.add_row({static_cast<double>(cores), p.freq_ghz, p.compute_ms, p.lat_alone_us,
                   p.lat_together_us});
  }
  table.print(std::cout);
  std::cout << "\nPaper: 4 cores -> 3.0 GHz / 135 ms; 20 cores -> 2.3 GHz / 210 ms;\n"
               "latency always slightly better with computation (1.33 vs 1.49 us),\n"
               "comm core frequency unaffected by AVX512 neighbours.\n\n";

  std::cout << "--- Fig. 3b: trace with 4 AVX512 cores ---\n";
  run_point(4, true);
  std::cout << "--- Fig. 3c: trace with 20 AVX512 cores ---\n";
  run_point(20, true);
  return 0;
}
