// Campaign-engine microbench (google-benchmark): what does routing a
// sweep through CampaignEngine cost versus hand-rolling the loop, and
// what does the thread pool buy back?
//
// Two guarded counters (tools/perf_guard.py + baselines/
// micro_campaign_overhead.json):
//   * per_point_overhead_ratio — wall time of a 64-point campaign at
//     --jobs 1 over the same 64 points driven directly through
//     InterferenceLab.  Must stay ~1.0: the engine's expansion, seeding
//     and bookkeeping are noise next to even the quickest simulation.
//   * inv_speedup_jobs4 — jobs=4 wall time over jobs=1 wall time on the
//     same grid; only reported when the host has >= 4 hardware threads
//     (CI gates its guard step on nproc accordingly).  0.25 is perfect
//     scaling; the guard asserts >= 3x (counter <= ~0.33).
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "core/campaign.hpp"
#include "kernels/stream.hpp"

using namespace cci;

namespace {

// 64 points: 8 core counts x 8 message sizes, quick per-point settings.
core::Campaign quick_campaign() {
  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.pingpong_iterations = 2;
  base.pingpong_warmup = 0;
  base.compute_repetitions = 1;
  base.target_pass_seconds = 0.002;

  core::Campaign c("micro_campaign",
                   core::SweepSpec(base)
                       .cores("cores", {0, 1, 2, 4, 8, 16, 24, 32})
                       .message_bytes("msg_bytes", {4, 256, 4096, 65536, 262144, 1048576,
                                                    4194304, 16777216}));
  c.column("lat_together_us", core::Campaign::latency_together_us())
      .column("bw_ratio", core::Campaign::bandwidth_ratio());
  return c;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double run_engine(const core::Campaign& c, int jobs) {
  core::CampaignOptions opt;
  opt.jobs = jobs;
  core::CampaignEngine engine(opt);
  const auto t0 = std::chrono::steady_clock::now();
  auto run = engine.run(c);
  benchmark::DoNotOptimize(run.values);
  return seconds_since(t0);
}

void BM_CampaignPerPointOverhead(benchmark::State& state) {
  const core::Campaign c = quick_campaign();
  // Best-of-N on both sides: allocator warm-up and frequency ramping hit
  // whichever side runs first, and the min discards them — the ratio of
  // minima is what the guard can hold to a 5% tolerance.
  double t_direct = 1e300;
  double t_engine = 1e300;
  bool engine_first = false;
  for (auto _ : state) {
    const auto points = c.spec().expand();
    // Alternate the measurement order so cache/frequency drift cannot
    // systematically favour one side.
    if (engine_first) t_engine = std::min(t_engine, run_engine(c, 1));
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::SweepPoint& p : points) {
      core::SideBySideResult r = core::InterferenceLab(p.scenario).run();
      benchmark::DoNotOptimize(r);
    }
    t_direct = std::min(t_direct, seconds_since(t0));
    if (!engine_first) t_engine = std::min(t_engine, run_engine(c, 1));
    engine_first = !engine_first;
  }
  state.counters["per_point_overhead_ratio"] = t_direct > 0 ? t_engine / t_direct : 1.0;
  state.counters["points"] = static_cast<double>(c.spec().point_count() * state.iterations());
}

void BM_CampaignSpeedupJobs4(benchmark::State& state) {
  const core::Campaign c = quick_campaign();
  const bool can_measure = std::thread::hardware_concurrency() >= 4;
  double t1 = 1e300;
  double t4 = 1e300;
  for (auto _ : state) {
    if (!can_measure) continue;
    t1 = std::min(t1, run_engine(c, 1));
    t4 = std::min(t4, run_engine(c, 4));
  }
  // Only publish the guarded counter when the host can actually scale;
  // perf_guard's step for this key is skipped on small runners.
  if (can_measure && t1 < 1e299) state.counters["inv_speedup_jobs4"] = t4 / t1;
}

}  // namespace

BENCHMARK(BM_CampaignPerPointOverhead)->Unit(benchmark::kMillisecond)->Iterations(8);
BENCHMARK(BM_CampaignSpeedupJobs4)->Unit(benchmark::kMillisecond)->Iterations(8);

BENCHMARK_MAIN();
