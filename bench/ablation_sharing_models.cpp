// Ablation: discrete-event simulator vs static analytical baselines
// (weighted max-min snapshot; proportional sharing a la Langguth [12])
// on the Fig. 4b sweep.  Quantifies what the dynamics add.
#include "bench/common.hpp"
#include "core/campaign.hpp"
#include "kernels/stream.hpp"
#include "model/analytic.hpp"

using namespace cci;

int main() {
  bench::banner("Ablation", "DES simulator vs static sharing models (Fig. 4b sweep)");

  trace::Table t({"cores", "sim_GBps", "static_maxmin_GBps", "proportional_GBps",
                  "sim_stream_GBps", "maxmin_stream_GBps"});
  for (int cores : core::paper_core_counts(35)) {
    model::ContentionInputs in;
    in.computing_cores = cores;
    auto mm = model::predict_max_min(in);
    auto pr = model::predict_proportional(in);

    core::Scenario s;
    s.kernel = kernels::triad_traits();
    s.computing_cores = cores;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    core::InterferenceLab lab(s);
    core::ComputePhase compute;
    core::CommPhase comm;
    lab.run_compute_alone();
    lab.run_together(compute, comm);

    t.add_row({static_cast<double>(cores), comm.bandwidth.median / 1e9, mm.network_bw / 1e9,
               pr.network_bw / 1e9, compute.per_core_bandwidth.median / 1e9,
               mm.per_core_bw / 1e9});
  }
  t.print(std::cout);
  std::cout << "\nReading: the static max-min snapshot tracks the simulator's steady\n"
               "state; the proportional model (no flow protection) over-punishes the\n"
               "NIC.  The DES adds protocol dynamics (handshakes, uncore, latency\n"
               "inflation) that static models cannot express.\n";
  return 0;
}
