#include "bench/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#ifdef CCI_SCHED
#include "sched/explorer.hpp"
#endif

namespace cci::bench {

void FigureContext::print(const core::Campaign& campaign, const core::CampaignRun& run) {
  trace::Table table = run.table(campaign);
  table.print(out_);
  if (csv_ != nullptr) {
    *csv_ << "# campaign: " << campaign.name() << '\n';
    table.print_csv(*csv_);
  }
  if (timeline_ != nullptr && !run.timelines.empty()) {
    run.write_timeline_csv(*timeline_, campaign.name(), !timeline_header_written_);
    timeline_header_written_ = true;
  }
}

FigureRegistry& FigureRegistry::instance() {
  static FigureRegistry reg;
  return reg;
}

void FigureRegistry::add(FigureDef def) { defs_.push_back(std::move(def)); }

const FigureDef* FigureRegistry::find(const std::string& name) const {
  for (const FigureDef& d : defs_)
    if (d.name == name) return &d;
  return nullptr;
}

std::vector<const FigureDef*> FigureRegistry::all() const {
  std::vector<const FigureDef*> out;
  out.reserve(defs_.size());
  for (const FigureDef& d : defs_) out.push_back(&d);
  std::sort(out.begin(), out.end(),
            [](const FigureDef* a, const FigureDef* b) { return a->name < b->name; });
  return out;
}

FigureRegistrar::FigureRegistrar(std::string name, std::string title, std::string what,
                                 FigureFn fn, std::string obs_name) {
  FigureRegistry::instance().add({std::move(name), std::move(title), std::move(what),
                                  std::move(fn), std::move(obs_name)});
}

namespace {

void usage(std::ostream& os) {
  os << "usage: cci_bench <figure> [--jobs N] [--csv out.csv] [--cache dir]\n"
        "                 [--shard i/n] [--seed S] [--sim-shards N]\n"
        "                 [--timeline out.csv] [--timeline-period S]\n"
        "       cci_bench --list\n"
        "\n"
        "  --jobs N     run campaign points on N worker threads (default 1);\n"
        "               any N produces bitwise-identical tables\n"
        "  --csv PATH   append every campaign table to PATH as CSV\n"
        "  --cache DIR  content-addressed result cache: re-runs and other\n"
        "               shards skip already-solved points\n"
        "  --shard i/n  run only points with index %% n == i (0-based)\n"
        "  --seed S     override the base seed campaigns mix per-point seeds from\n"
        "  --sim-shards N  run each simulation on N conservative-window shard\n"
        "               threads (overrides CCI_SIM_SHARDS for this run; part\n"
        "               of the result-cache key, so cached points never mix\n"
        "               shard configurations)\n"
        "  --timeline PATH        sample metrics on a simulated-time grid and\n"
        "                         append tidy CSV (campaign,point,time,series,value);\n"
        "                         deterministic for any --jobs/--shard split\n"
        "  --timeline-period SEC  sampling period in simulated seconds\n"
        "                         (default 1e-3; implies nothing without --timeline)\n"
        "  --sched-record PATH    run under a controlled random schedule and save\n"
        "                         the decision trace (CCI_SCHED builds only)\n"
        "  --sched-replay PATH    replay a recorded schedule trace bit-for-bit\n"
        "                         (CCI_SCHED builds only)\n"
        "  --sched-seed S         seed for --sched-record's schedule (default 1)\n";
}

bool parse_int(const char* s, long long& out) {
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

/// Schedule-exploration CLI state.  Parsed unconditionally so the flags are
/// recognised (with a clear "rebuild with -DCCI_SCHED=ON" error) even in
/// uninstrumented builds.
struct SchedCli {
  std::string record_path;
  std::string replay_path;
  std::uint64_t seed = 1;
};

/// Parse the campaign flags; returns false (after printing a message) on
/// malformed input.  Unrecognised arguments are rejected so typos do not
/// silently run a full-size campaign.
bool parse_flags(int argc, char** argv, core::CampaignOptions& options,
                 std::string& csv_path, std::string& timeline_path, SchedCli& sched_cli) {
  double timeline_period = 1e-3;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cci_bench: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      const char* v = value("--jobs");
      long long n = 0;
      if (v == nullptr || !parse_int(v, n) || n < 1) {
        std::cerr << "cci_bench: --jobs wants a positive integer\n";
        return false;
      }
      options.jobs = static_cast<int>(n);
    } else if (arg == "--csv") {
      const char* v = value("--csv");
      if (v == nullptr) return false;
      csv_path = v;
    } else if (arg == "--cache") {
      const char* v = value("--cache");
      if (v == nullptr) return false;
      options.cache_dir = v;
    } else if (arg == "--shard") {
      const char* v = value("--shard");
      if (v == nullptr) return false;
      const char* slash = std::strchr(v, '/');
      long long idx = 0;
      long long count = 0;
      if (slash == nullptr || !parse_int(std::string(v, slash).c_str(), idx) ||
          !parse_int(slash + 1, count) || count < 1 || idx < 0 || idx >= count) {
        std::cerr << "cci_bench: --shard wants i/n with 0 <= i < n\n";
        return false;
      }
      options.shard_index = static_cast<int>(idx);
      options.shard_count = static_cast<int>(count);
    } else if (arg == "--seed") {
      const char* v = value("--seed");
      long long s = 0;
      if (v == nullptr || !parse_int(v, s)) {
        std::cerr << "cci_bench: --seed wants an integer\n";
        return false;
      }
      options.override_base_seed = true;
      options.base_seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--sim-shards") {
      const char* v = value("--sim-shards");
      long long n = 0;
      if (v == nullptr || !parse_int(v, n) || n < 1) {
        std::cerr << "cci_bench: --sim-shards wants a positive integer\n";
        return false;
      }
      // The shard machinery reads CCI_SIM_SHARDS at each simulation setup,
      // so a per-run override is just a process-local env write — it also
      // flows into core::cache_key() with no extra plumbing.
      setenv("CCI_SIM_SHARDS", v, 1);
    } else if (arg == "--timeline") {
      const char* v = value("--timeline");
      if (v == nullptr) return false;
      timeline_path = v;
    } else if (arg == "--timeline-period") {
      const char* v = value("--timeline-period");
      char* end = nullptr;
      const double p = v != nullptr ? std::strtod(v, &end) : 0.0;
      if (v == nullptr || end == v || *end != '\0' || !(p > 0.0)) {
        std::cerr << "cci_bench: --timeline-period wants a positive number of "
                     "simulated seconds\n";
        return false;
      }
      timeline_period = p;
    } else if (arg == "--sched-record") {
      const char* v = value("--sched-record");
      if (v == nullptr) return false;
      sched_cli.record_path = v;
    } else if (arg == "--sched-replay") {
      const char* v = value("--sched-replay");
      if (v == nullptr) return false;
      sched_cli.replay_path = v;
    } else if (arg == "--sched-seed") {
      const char* v = value("--sched-seed");
      long long s = 0;
      if (v == nullptr || !parse_int(v, s)) {
        std::cerr << "cci_bench: --sched-seed wants an integer\n";
        return false;
      }
      sched_cli.seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return false;
    } else {
      std::cerr << "cci_bench: unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return false;
    }
  }
  // The period only takes effect alongside --timeline: a period with no
  // sink would silently change campaign execution for nothing.
  if (!timeline_path.empty()) options.timeline_period = timeline_period;
  return true;
}

}  // namespace

int run_cli(const std::string& figure, int argc, char** argv) {
  const FigureDef* def = FigureRegistry::instance().find(figure);
  if (def == nullptr) {
    std::cerr << "cci_bench: unknown figure '" << figure << "' (try --list)\n";
    return 2;
  }
  core::CampaignOptions options;
  std::string csv_path;
  std::string timeline_path;
  SchedCli sched_cli;
  if (!parse_flags(argc, argv, options, csv_path, timeline_path, sched_cli)) return 2;
  if (!sched_cli.record_path.empty() && !sched_cli.replay_path.empty()) {
    std::cerr << "cci_bench: --sched-record and --sched-replay are exclusive\n";
    return 2;
  }
#ifndef CCI_SCHED
  if (!sched_cli.record_path.empty() || !sched_cli.replay_path.empty()) {
    std::cerr << "cci_bench: this binary was built without schedule hooks; "
                 "reconfigure with -DCCI_SCHED=ON to use --sched-record/"
                 "--sched-replay\n";
    return 2;
  }
#endif

  std::ofstream csv_file;
  std::ostream* csv = nullptr;
  if (!csv_path.empty()) {
    csv_file.open(csv_path, std::ios::app);
    if (!csv_file) {
      std::cerr << "cci_bench: cannot open --csv path " << csv_path << '\n';
      return 2;
    }
    csv = &csv_file;
  }
  std::ofstream timeline_file;
  std::ostream* timeline = nullptr;
  if (!timeline_path.empty()) {
    // Truncate rather than append: a timeline file is a single dataset with
    // one header, not a log; shard outputs are meant to be concatenated by
    // the caller after stripping the extra headers (or by using one file
    // per shard).
    timeline_file.open(timeline_path, std::ios::trunc);
    if (!timeline_file) {
      std::cerr << "cci_bench: cannot open --timeline path " << timeline_path << '\n';
      return 2;
    }
    timeline = &timeline_file;
  }

  BenchObs obs(def->obs_name.empty() ? def->name : def->obs_name);
  banner(def->title, def->what);
  core::CampaignEngine engine(options);
  FigureContext ctx(engine, obs, std::cout, csv, timeline);
#ifdef CCI_SCHED
  std::unique_ptr<sched::Session> sched_session;
  if (!sched_cli.record_path.empty()) {
    sched::Options so;
    so.mode = sched::Options::Mode::kRandom;
    so.seed = sched_cli.seed;
    sched_session = std::make_unique<sched::Session>(so);
  } else if (!sched_cli.replay_path.empty()) {
    sched::Options so;
    so.mode = sched::Options::Mode::kReplay;
    try {
      so.replay = sched::Trace::load(sched_cli.replay_path);
    } catch (const std::exception& e) {
      std::cerr << "cci_bench: " << e.what() << '\n';
      return 2;
    }
    sched_session = std::make_unique<sched::Session>(so);
  }
#endif
  const int rc = def->fn(ctx);
#ifdef CCI_SCHED
  if (sched_session != nullptr) {
    if (!sched_session->error().empty()) {
      std::cerr << "cci_bench: schedule aborted: " << sched_session->error() << '\n';
      return 3;
    }
    if (!sched_cli.record_path.empty()) {
      try {
        sched_session->trace().save(sched_cli.record_path);
      } catch (const std::exception& e) {
        std::cerr << "cci_bench: " << e.what() << '\n';
        return 2;
      }
      std::cerr << "[sched] recorded " << sched_session->decisions().size()
                << " decisions to " << sched_cli.record_path << '\n';
    }
    sched_session.reset();
  }
#endif

  std::cout << "\n[campaign] " << def->name << ": points total=" << engine.points_total()
            << " executed=" << engine.points_executed()
            << " cached=" << engine.points_cached() << " (jobs=" << options.jobs;
  if (options.shard_count > 1)
    std::cout << ", shard " << options.shard_index << "/" << options.shard_count;
  std::cout << ")\n";
  return rc;
}

int main_cli(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string first = argv[1];
  if (first == "--list") {
    for (const FigureDef* d : FigureRegistry::instance().all())
      std::cout << d->name << "\t" << d->title << " — " << d->what << '\n';
    return 0;
  }
  if (first == "--help" || first == "-h") {
    usage(std::cout);
    return 0;
  }
  return run_cli(first, argc - 2, argv + 2);
}

}  // namespace cci::bench
