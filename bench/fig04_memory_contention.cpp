// Fig. 4 — memory-bound computations (STREAM TRIAD) vs network
// performance on henri: data near the NIC, comm thread far from the NIC,
// sweeping the number of computing cores.
#include "bench/common.hpp"
#include "kernels/stream.hpp"

using namespace cci;

int main() {
  bench::banner("Fig. 4", "STREAM vs network performance (data near NIC, comm thread far)");
  bench::BenchObs obs("fig04_memory_contention");

  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.pingpong_iterations = 30;
  base.compute_repetitions = 5;
  base.target_pass_seconds = 0.02;

  std::cout << "--- Fig. 4a: network latency (4 B) and STREAM bandwidth/core ---\n";
  trace::Table lat({"cores", "lat_alone_us", "lat_together_us", "lat_d1_us", "lat_d9_us",
                    "stream_alone_GBps", "stream_together_GBps"});
  for (int cores : bench::core_sweep(35)) {
    core::Scenario s = base;
    s.computing_cores = cores;
    s.message_bytes = 4;
    auto r = core::InterferenceLab(s).run();
    lat.add_row({static_cast<double>(cores), sim::to_usec(r.comm_alone.latency.median),
                 sim::to_usec(r.comm_together.latency.median),
                 sim::to_usec(r.comm_together.latency.decile1),
                 sim::to_usec(r.comm_together.latency.decile9),
                 r.compute_alone.per_core_bandwidth.median / 1e9,
                 r.compute_together.per_core_bandwidth.median / 1e9});
    obs.write_record({{"cores", static_cast<double>(cores)},
                      {"msg_bytes", 4.0},
                      {"lat_together_us", sim::to_usec(r.comm_together.latency.median)}});
  }
  lat.print(std::cout);
  std::cout << "\nPaper: latency impacted from ~22 cores, up to 2x at 35; STREAM unaffected.\n\n";

  std::cout << "--- Fig. 4b: network bandwidth (64 MB) and STREAM bandwidth/core ---\n";
  trace::Table bw({"cores", "net_alone_GBps", "net_together_GBps",
                   "stream_alone_GBps", "stream_together_GBps"});
  for (int cores : bench::core_sweep(35)) {
    core::Scenario s = base;
    s.computing_cores = cores;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    auto r = core::InterferenceLab(s).run();
    bw.add_row({static_cast<double>(cores), r.comm_alone.bandwidth.median / 1e9,
                r.comm_together.bandwidth.median / 1e9,
                r.compute_alone.per_core_bandwidth.median / 1e9,
                r.compute_together.per_core_bandwidth.median / 1e9});
  }
  bw.print(std::cout);
  std::cout << "\nPaper: bandwidth impacted from ~3 cores, ~2/3 lost at 35; STREAM loses <=25%\n"
               "(worst around 5 cores).\n";
  return 0;
}
