// Extension (paper future work): interference between GPU transfers,
// network DMA and computation on the shared host memory system.
#include <memory>

#include "bench/common.hpp"
#include "hw/gpu.hpp"
#include "kernels/stream.hpp"
#include "mpi/pingpong.hpp"

using namespace cci;

namespace {

struct Point {
  double net_bw = 0.0;
  double gpu_bw = 0.0;
};

Point run_point(int stream_cores, bool with_gpu, bool with_net) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  hw::GpuDevice gpu(cluster.machine(0), hw::GpuConfig{});

  hw::KernelTraits triad = kernels::triad_traits();
  for (int c = 0; c < stream_cores; ++c) {
    cluster.machine(0).governor().core_busy(c, hw::VectorClass::kSse);
    cluster.machine(0).model().start(
        hw::make_compute_spec(cluster.machine(0), c, 0, triad, 1e12));
  }

  Point point;
  bool stop = false;
  double gpu_bytes = 0.0;
  sim::Time gpu_started = 0.0;
  if (with_gpu) {
    cluster.engine().spawn([](hw::GpuDevice& g, bool& s, double& bytes) -> sim::Coro {
      while (!s) {
        co_await *g.copy_async(hw::GpuDevice::Direction::kHostToDevice, 64 << 20, 0);
        bytes += 64 << 20;
      }
    }(gpu, stop, gpu_bytes));
  }

  if (with_net) {
    mpi::PingPongOptions opt;
    opt.bytes = 64 << 20;
    opt.iterations = 5;
    opt.warmup = 1;
    mpi::PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().spawn([](mpi::PingPong& p, bool& s) -> sim::Coro {
      co_await p.complete();
      s = true;
    }(pp, stop));
    cluster.engine().run(30.0);
    point.net_bw = trace::Stats::of(pp.bandwidths()).median;
  } else if (with_gpu) {
    cluster.engine().call_at(0.1, [&] { stop = true; });
    cluster.engine().run(30.0);
  }
  double elapsed = cluster.engine().now() - gpu_started;
  if (with_gpu && elapsed > 0) point.gpu_bw = gpu_bytes / elapsed;
  return point;
}

}  // namespace

int main() {
  bench::banner("GPU", "host<->device copies vs network DMA vs STREAM (future work)");

  trace::Table t({"stream_cores", "net_alone_GBps", "net_with_gpu_GBps", "gpu_alone_GBps",
                  "gpu_with_net_GBps"});
  for (int cores : {0, 2, 5, 9}) {
    Point net_only = run_point(cores, false, true);
    Point both = run_point(cores, true, true);
    Point gpu_only = run_point(cores, true, false);
    t.add_row({static_cast<double>(cores), net_only.net_bw / 1e9, both.net_bw / 1e9,
               gpu_only.gpu_bw / 1e9, both.gpu_bw / 1e9});
  }
  t.print(std::cout);
  std::cout << "\nThe GPU's PCIe stream is one more DMA client of the same controller:\n"
               "with enough computing cores, network, GPU and cores all squeeze each\n"
               "other — the three-way version of the paper's §4.\n";
  return 0;
}
