// Engine microbenchmarks (google-benchmark): solver and simulation
// throughput — not a paper figure, but the cost model of every experiment.
#include <benchmark/benchmark.h>

#include <vector>

#include "mpi/pingpong.hpp"
#include "net/cluster.hpp"
#include "sim/flow_model.hpp"
#include "sim/maxmin.hpp"
#include "sim/rng.hpp"

using namespace cci;

namespace {

void BM_MaxMinSolve(benchmark::State& state) {
  sim::Rng rng(7);
  sim::MaxMinProblem p;
  const auto n_res = static_cast<std::size_t>(state.range(0));
  const auto n_flows = static_cast<std::size_t>(state.range(1));
  for (std::size_t r = 0; r < n_res; ++r) p.capacity.push_back(rng.uniform(1.0, 100.0));
  for (std::size_t f = 0; f < n_flows; ++f) {
    sim::MaxMinFlow flow;
    flow.weight = rng.uniform(0.5, 2.0);
    for (int h = 0; h < 3; ++h)
      flow.entries.push_back({rng.below(n_res), rng.uniform(0.5, 2.0)});
    p.flows.push_back(std::move(flow));
  }
  for (auto _ : state) {
    auto sol = sim::solve_max_min(p);
    benchmark::DoNotOptimize(sol.rate.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_flows));
}
BENCHMARK(BM_MaxMinSolve)->Args({8, 16})->Args({32, 64})->Args({128, 256});

struct ChurnStats {
  std::uint64_t flow_visits = 0;
  std::uint64_t solves = 0;
};

/// Clustered flow churn through the full FlowModel: staggered activities over
/// disjoint resource groups, so every completion dirties one component only.
ChurnStats run_flow_churn(std::size_t clusters, std::size_t flows_per_cluster,
                          bool incremental) {
  constexpr std::size_t kResPerCluster = 3;
  sim::Rng rng(11);
  sim::Engine engine;
  sim::FlowModel model(engine);
  model.set_incremental(incremental);
  std::vector<sim::Resource*> res;
  for (std::size_t r = 0; r < clusters * kResPerCluster; ++r)
    res.push_back(model.add_resource("churn" + std::to_string(r), rng.uniform(5.0, 50.0)));
  std::vector<sim::ActivityPtr> acts;
  acts.reserve(clusters * flows_per_cluster);
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t f = 0; f < flows_per_cluster; ++f) {
      sim::ActivitySpec spec;
      spec.work = rng.uniform(10.0, 100.0);
      spec.weight = rng.uniform(0.5, 2.0);
      std::size_t hops = 1 + rng.below(2);
      for (std::size_t h = 0; h < hops; ++h)
        spec.demands.push_back({res[c * kResPerCluster + rng.below(kResPerCluster)],
                                rng.uniform(0.2, 2.0)});
      engine.call_at(rng.uniform(0.0, 2.0),
                     [&model, &acts, spec]() mutable { acts.push_back(model.start(spec)); });
    }
  }
  engine.run();
  return {model.solver().stats().flow_visits, model.solver().stats().solves};
}

void BM_FlowModelChurn(benchmark::State& state) {
  const auto clusters = static_cast<std::size_t>(state.range(0));
  const auto flows_per_cluster = static_cast<std::size_t>(state.range(1));
  // Untimed from-scratch reference run; deterministic, so once is enough.
  const ChurnStats full = run_flow_churn(clusters, flows_per_cluster, false);
  ChurnStats inc;
  for (auto _ : state) {
    inc = run_flow_churn(clusters, flows_per_cluster, true);
    benchmark::DoNotOptimize(inc.flow_visits);
  }
  // Each re-solve corresponds to one simulated change-point event.  These
  // counters are deterministic (fixed seed): the CI perf guard compares
  // visits_per_event against the checked-in baseline.
  const double inc_vpe =
      static_cast<double>(inc.flow_visits) / static_cast<double>(inc.solves);
  const double full_vpe =
      static_cast<double>(full.flow_visits) / static_cast<double>(full.solves);
  state.counters["flows"] = static_cast<double>(clusters * flows_per_cluster);
  state.counters["visits_per_event"] = inc_vpe;
  state.counters["visit_reduction"] = full_vpe / inc_vpe;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inc.solves));
}
BENCHMARK(BM_FlowModelChurn)->Args({8, 16})->Args({32, 32})->Args({64, 16});

/// Random all-to-all DMA churn over a 64-node fat_tree(16) fabric: every
/// flow crosses a 7-resource path (ports, leaf/spine crossbars, up/down
/// links), so components couple through the shared spines.  Proves the
/// incremental solver's partial re-solves scale past the single-crossbar
/// fabric the churn bench above models.
ChurnStats run_fat_tree_fanout(bool incremental) {
  constexpr int kNodes = 64;
  net::ClusterSpec cspec;
  cspec.topology = net::Topology::fat_tree(16, /*oversubscription=*/0.5);
  cspec.nodes = kNodes;
  cspec.seed = 17;
  net::Cluster cluster(cspec);
  cluster.model().set_incremental(incremental);
  sim::Rng rng(13);
  std::vector<sim::ActivityPtr> acts;
  acts.reserve(256);
  for (int f = 0; f < 256; ++f) {
    const int src = static_cast<int>(rng.below(kNodes));
    int dst = static_cast<int>(rng.below(kNodes));
    if (dst == src) dst = (dst + 1) % kNodes;
    sim::ActivitySpec spec;
    spec.work = rng.uniform(1e6, 64e6);  // bytes across GB/s-scale links
    for (sim::Resource* r : cluster.fabric_path(src, dst)) spec.demands.push_back({r, 1.0});
    cluster.engine().call_at(
        rng.uniform(0.0, 1e-3),
        [&cluster, &acts, spec]() mutable { acts.push_back(cluster.model().start(spec)); });
  }
  cluster.engine().run();
  return {cluster.model().solver().stats().flow_visits,
          cluster.model().solver().stats().solves};
}

void BM_FatTreeFanout(benchmark::State& state) {
  const ChurnStats full = run_fat_tree_fanout(false);
  ChurnStats inc{};
  for (auto _ : state) {
    inc = run_fat_tree_fanout(true);
    benchmark::DoNotOptimize(inc.flow_visits);
  }
  const double inc_vpe =
      static_cast<double>(inc.flow_visits) / static_cast<double>(inc.solves);
  const double full_vpe =
      static_cast<double>(full.flow_visits) / static_cast<double>(full.solves);
  state.counters["visits_per_event"] = inc_vpe;
  state.counters["visit_reduction"] = full_vpe / inc_vpe;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inc.solves));
}
BENCHMARK(BM_FatTreeFanout);

void BM_EngineTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i)
      engine.call_at(static_cast<double>(i) * 1e-6, [] {});
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EngineTimerChurn);

void BM_SimulatedPingPong(benchmark::State& state) {
  // How many simulated 4-byte ping-pong iterations per wall second.
  for (auto _ : state) {
    net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    mpi::PingPongOptions opt;
    opt.bytes = 4;
    opt.iterations = 100;
    mpi::PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().run();
    benchmark::DoNotOptimize(pp.latencies().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_SimulatedPingPong);

}  // namespace

BENCHMARK_MAIN();
