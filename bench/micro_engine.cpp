// Engine microbenchmarks (google-benchmark): solver and simulation
// throughput — not a paper figure, but the cost model of every experiment.
#include <benchmark/benchmark.h>

#include "mpi/pingpong.hpp"
#include "sim/maxmin.hpp"
#include "sim/rng.hpp"

using namespace cci;

namespace {

void BM_MaxMinSolve(benchmark::State& state) {
  sim::Rng rng(7);
  sim::MaxMinProblem p;
  const auto n_res = static_cast<std::size_t>(state.range(0));
  const auto n_flows = static_cast<std::size_t>(state.range(1));
  for (std::size_t r = 0; r < n_res; ++r) p.capacity.push_back(rng.uniform(1.0, 100.0));
  for (std::size_t f = 0; f < n_flows; ++f) {
    sim::MaxMinFlow flow;
    flow.weight = rng.uniform(0.5, 2.0);
    for (int h = 0; h < 3; ++h)
      flow.entries.push_back({rng.below(n_res), rng.uniform(0.5, 2.0)});
    p.flows.push_back(std::move(flow));
  }
  for (auto _ : state) {
    auto sol = sim::solve_max_min(p);
    benchmark::DoNotOptimize(sol.rate.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_flows));
}
BENCHMARK(BM_MaxMinSolve)->Args({8, 16})->Args({32, 64})->Args({128, 256});

void BM_EngineTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i)
      engine.call_at(static_cast<double>(i) * 1e-6, [] {});
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EngineTimerChurn);

void BM_SimulatedPingPong(benchmark::State& state) {
  // How many simulated 4-byte ping-pong iterations per wall second.
  for (auto _ : state) {
    net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    mpi::PingPongOptions opt;
    opt.bytes = 4;
    opt.iterations = 100;
    mpi::PingPong pp(world, 0, 1, opt);
    pp.start();
    cluster.engine().run();
    benchmark::DoNotOptimize(pp.latencies().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_SimulatedPingPong);

}  // namespace

BENCHMARK_MAIN();
