// Discrete-event core throughput and hot-path allocation pressure.
//
// Two benchmarks run the same fixed-seed churn workload — a handful of
// coroutine processes issuing flow-model activities back to back — once
// with the slab pools on (production configuration) and once with them
// forced off (every frame/state/activity from the global heap).  The
// wall-clock rows give events/sec for humans; two *deterministic*
// counters feed the CI perf guard:
//
//   allocs_per_event_steady  (pooled) — global operator-new calls per
//       dispatched event once warm.  Must be exactly 0: the zero baseline
//       in bench/baselines/micro_sim_throughput.json makes any hot-path
//       allocation a CI failure, on any machine, at any optimisation level.
//   allocs_per_event_malloc  (pools off) — the same count with pooling
//       disabled, i.e. the structural allocation rate of the event loop.
//       Guarded with a 10% tolerance: it rises when someone adds an
//       allocating construct to the dispatch path, independent of runner
//       speed — a machine-portable proxy for events/sec regressions.
//
// This binary replaces global operator new/delete with counting versions,
// so it must stay a standalone benchmark (never linked into another tool).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/flow_model.hpp"
#include "sim/pool.hpp"

// GCC cannot see that the counting operator new below is malloc-backed and
// flags the matching std::free(); with the replacement visible it also trips
// a vector::resize -Warray-bounds false positive.  Shim artifacts, not bugs.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace {
std::uint64_t g_allocs = 0;  // bumped by every global operator new below
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  const std::size_t size = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, size != 0 ? size : align)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

using namespace cci;

namespace {

constexpr int kProcs = 4;         ///< concurrent churn processes
constexpr int kResources = 4;     ///< shared contended resources
constexpr int kSteadyActs = 256;  ///< per process, per round.  The warm-up
                                  ///< round is the *same size* as the measured
                                  ///< one: solver component vectors grow to
                                  ///< per-round high-water marks, so an
                                  ///< identical warm round leaves zero growth
                                  ///< for the measured round.

sim::Coro churn(sim::Engine& engine, sim::FlowModel& model, sim::Resource* a,
                sim::Resource* b, sim::LabelId label, int acts) {
  for (int i = 0; i < acts; ++i) {
    sim::ActivitySpec spec;
    spec.label = label;
    spec.work = 1.0 + 0.25 * static_cast<double>(i % 4);
    spec.demands.push_back({a, 1.0});
    if (i % 2 != 0) spec.demands.push_back({b, 0.5});
    co_await *model.start(spec);
  }
  (void)engine;
}

/// One engine + model with kResources shared pipes; spawns kProcs churn
/// processes doing `acts` activities each and runs to the drain.
struct ChurnSim {
  sim::Engine engine;
  sim::FlowModel model{engine};
  sim::Resource* res[kResources] = {};
  sim::LabelId label = sim::kNoLabel;

  ChurnSim() {
    for (int r = 0; r < kResources; ++r)
      res[r] = model.add_resource("pipe" + std::to_string(r), 4.0 + r);
    label = engine.intern("churn");
  }

  void round(int acts) {
    for (int p = 0; p < kProcs; ++p)
      engine.spawn(churn(engine, model, res[p % kResources],
                         res[(p + 1) % kResources], label, acts));
    engine.run();
  }
};

/// Deterministic counter pass: operator-new calls per dispatched event over
/// a warmed steady-state round.  Independent of timing entirely.
double allocs_per_event(bool pooled) {
  sim::set_pools_enabled(pooled);
  ChurnSim s;
  s.round(kSteadyActs);  // warm: identical round, reaches all high-water marks
  const std::uint64_t events0 = s.engine.events_dispatched();
  const std::uint64_t allocs0 = g_allocs;
  s.round(kSteadyActs);
  const std::uint64_t events = s.engine.events_dispatched() - events0;
  const double ape =
      static_cast<double>(g_allocs - allocs0) / static_cast<double>(events);
  sim::set_pools_enabled(true);
  return ape;
}

void run_throughput(benchmark::State& state, bool pooled) {
  sim::set_pools_enabled(pooled);
  ChurnSim s;
  s.round(kSteadyActs);  // warm: identical round, reaches all high-water marks
  const std::uint64_t events0 = s.engine.events_dispatched();
  for (auto _ : state) {
    s.round(kSteadyActs);
    benchmark::DoNotOptimize(s.engine.now());
  }
  // items_per_second below is dispatched events per wall second.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(s.engine.events_dispatched() - events0));
  sim::set_pools_enabled(true);
}

void BM_SimThroughputPooled(benchmark::State& state) {
  run_throughput(state, true);
  state.counters["allocs_per_event_steady"] = allocs_per_event(true);
}
BENCHMARK(BM_SimThroughputPooled);

void BM_SimThroughputMalloc(benchmark::State& state) {
  run_throughput(state, false);
  state.counters["allocs_per_event_malloc"] = allocs_per_event(false);
}
BENCHMARK(BM_SimThroughputMalloc);

}  // namespace

BENCHMARK_MAIN();
