// Discrete-event core throughput and hot-path allocation pressure.
//
// Two benchmarks run the same fixed-seed churn workload — a handful of
// coroutine processes issuing flow-model activities back to back — once
// with the slab pools on (production configuration) and once with them
// forced off (every frame/state/activity from the global heap).  The
// wall-clock rows give events/sec for humans; two *deterministic*
// counters feed the CI perf guard:
//
//   allocs_per_event_steady  (pooled) — global operator-new calls per
//       dispatched event once warm.  Must be exactly 0: the zero baseline
//       in bench/baselines/micro_sim_throughput.json makes any hot-path
//       allocation a CI failure, on any machine, at any optimisation level.
//   allocs_per_event_malloc  (pools off) — the same count with pooling
//       disabled, i.e. the structural allocation rate of the event loop.
//       Guarded with a 10% tolerance: it rises when someone adds an
//       allocating construct to the dispatch path, independent of runner
//       speed — a machine-portable proxy for events/sec regressions.
//
// This binary replaces global operator new/delete with counting versions,
// so it must stay a standalone benchmark (never linked into another tool).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/fabric_lab.hpp"
#include "sim/flow_model.hpp"
#include "sim/pool.hpp"
#include "sim/shard.hpp"

// GCC cannot see that the counting operator new below is malloc-backed and
// flags the matching std::free(); with the replacement visible it also trips
// a vector::resize -Warray-bounds false positive.  Shim artifacts, not bugs.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace {
// Bumped by every global operator new below.  Atomic (relaxed) because the
// shard-scaling benchmark allocates from worker threads; the deterministic
// counters still read it from a single thread between barriers.
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto align = static_cast<std::size_t>(a);
  const std::size_t size = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, size != 0 ? size : align)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

using namespace cci;

namespace {

constexpr int kProcs = 4;         ///< concurrent churn processes
constexpr int kResources = 4;     ///< shared contended resources
constexpr int kSteadyActs = 256;  ///< per process, per round.  The warm-up
                                  ///< round is the *same size* as the measured
                                  ///< one: solver component vectors grow to
                                  ///< per-round high-water marks, so an
                                  ///< identical warm round leaves zero growth
                                  ///< for the measured round.

sim::Coro churn(sim::Engine& engine, sim::FlowModel& model, sim::Resource* a,
                sim::Resource* b, sim::LabelId label, int acts) {
  for (int i = 0; i < acts; ++i) {
    sim::ActivitySpec spec;
    spec.label = label;
    spec.work = 1.0 + 0.25 * static_cast<double>(i % 4);
    spec.demands.push_back({a, 1.0});
    if (i % 2 != 0) spec.demands.push_back({b, 0.5});
    co_await *model.start(spec);
  }
  (void)engine;
}

/// One engine + model with kResources shared pipes; spawns kProcs churn
/// processes doing `acts` activities each and runs to the drain.
struct ChurnSim {
  sim::Engine engine;
  sim::FlowModel model{engine};
  sim::Resource* res[kResources] = {};
  sim::LabelId label = sim::kNoLabel;

  ChurnSim() {
    for (int r = 0; r < kResources; ++r)
      res[r] = model.add_resource("pipe" + std::to_string(r), 4.0 + r);
    label = engine.intern("churn");
  }

  void round(int acts) {
    for (int p = 0; p < kProcs; ++p)
      engine.spawn(churn(engine, model, res[p % kResources],
                         res[(p + 1) % kResources], label, acts));
    engine.run();
  }
};

/// Deterministic counter pass: operator-new calls per dispatched event over
/// a warmed steady-state round.  Independent of timing entirely.
double allocs_per_event(bool pooled) {
  sim::set_pools_enabled(pooled);
  ChurnSim s;
  s.round(kSteadyActs);  // warm: identical round, reaches all high-water marks
  const std::uint64_t events0 = s.engine.events_dispatched();
  const std::uint64_t allocs0 = g_allocs;
  s.round(kSteadyActs);
  const std::uint64_t events = s.engine.events_dispatched() - events0;
  const double ape =
      static_cast<double>(g_allocs - allocs0) / static_cast<double>(events);
  sim::set_pools_enabled(true);
  return ape;
}

void run_throughput(benchmark::State& state, bool pooled) {
  sim::set_pools_enabled(pooled);
  ChurnSim s;
  s.round(kSteadyActs);  // warm: identical round, reaches all high-water marks
  const std::uint64_t events0 = s.engine.events_dispatched();
  for (auto _ : state) {
    s.round(kSteadyActs);
    benchmark::DoNotOptimize(s.engine.now());
  }
  // items_per_second below is dispatched events per wall second.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(s.engine.events_dispatched() - events0));
  sim::set_pools_enabled(true);
}

void BM_SimThroughputPooled(benchmark::State& state) {
  run_throughput(state, true);
  state.counters["allocs_per_event_steady"] = allocs_per_event(true);
}
BENCHMARK(BM_SimThroughputPooled);

void BM_SimThroughputMalloc(benchmark::State& state) {
  run_throughput(state, false);
  state.counters["allocs_per_event_malloc"] = allocs_per_event(false);
}
BENCHMARK(BM_SimThroughputMalloc);

// ---- conservative-window shard scaling --------------------------------------
//
// The same churn workload replicated over kShardGroups independent node
// groups — each group its own FlowModel and private resources, so the
// scenario is *shard-closed* (no cross-shard flows) — run on a ShardGroup
// at shards = 1/2/4.  A finite lookahead forces the real window machinery
// (horizon computation, barriers, mailbox drains) rather than the one-shot
// embarrassingly-parallel path.  Counters:
//
//   shard_windows       — synchronisation windows in one steady round; a
//       pure function of the fixed-seed workload, guarded at tolerance 0
//       (shards=1 is the serial fast path and must stay at exactly 0).
//   inv_speedup_shards4 — shards=4 wall time over shards=1 wall time,
//       perfect scaling = 0.25; only emitted on hosts with >= 4 hardware
//       threads, guarded so < 2.5x parallel speedup fails CI.

constexpr int kShardGroups = 4;          ///< independent node groups
constexpr sim::Time kShardLookahead = 5.0;  ///< forces multi-window execution

struct ShardChurnSim {
  sim::ShardGroup group;
  struct Group {
    std::unique_ptr<sim::FlowModel> model;
    sim::Resource* res[kResources] = {};
    sim::LabelId label = sim::kNoLabel;
  };
  Group groups[kShardGroups];

  explicit ShardChurnSim(int shards) : group(options(shards)) {
    for (int g = 0; g < kShardGroups; ++g) {
      Group& grp = groups[g];
      group.with_shard(shard_of(g), [&](sim::Engine& eng) {
        grp.model = std::make_unique<sim::FlowModel>(eng);
        for (int r = 0; r < kResources; ++r)
          grp.res[r] = grp.model->add_resource(
              "g" + std::to_string(g) + ".pipe" + std::to_string(r),
              4.0 + r);
        grp.label = eng.intern("churn");
      });
    }
  }
  ~ShardChurnSim() {
    // Shard-owned state dies where it lived: on the worker, while the
    // engine is still up (the group destroys engines after this).
    for (int g = 0; g < kShardGroups; ++g)
      group.with_shard(shard_of(g), [&](sim::Engine&) { groups[g].model.reset(); });
  }

  static sim::ShardGroup::Options options(int shards) {
    sim::ShardGroup::Options o;
    o.shards = shards;
    o.lookahead = kShardLookahead;
    return o;
  }
  [[nodiscard]] int shard_of(int g) const { return g % group.shards(); }

  void round(int acts) {
    for (int g = 0; g < kShardGroups; ++g) {
      Group& grp = groups[g];
      group.with_shard(shard_of(g), [&](sim::Engine& eng) {
        for (int p = 0; p < kProcs; ++p)
          eng.spawn(churn(eng, *grp.model, grp.res[p % kResources],
                          grp.res[(p + 1) % kResources], grp.label, acts));
      });
    }
    group.run();
  }
  std::uint64_t events() {
    std::uint64_t n = 0;
    for (int s = 0; s < group.shards(); ++s) n += group.engine(s).events_dispatched();
    return n;
  }
};

/// Deterministic counter pass: windows in one warmed steady round.
std::uint64_t shard_windows_one_round(int shards) {
  ShardChurnSim s(shards);
  s.round(kSteadyActs);  // warm
  const std::uint64_t w0 = s.group.stats().windows;
  s.round(kSteadyActs);
  return s.group.stats().windows - w0;
}

void BM_SimShardScaling(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ShardChurnSim s(shards);
  s.round(kSteadyActs);  // warm
  const std::uint64_t events0 = s.events();
  for (auto _ : state) {
    s.round(kSteadyActs);
    benchmark::DoNotOptimize(s.group.stats().windows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(s.events() - events0));
  state.counters["shard_windows"] =
      static_cast<double>(shard_windows_one_round(shards));
}
// UseRealTime: the work happens on shard workers while the coordinator
// blocks at window barriers, so main-thread CPU time (the rate default)
// would wildly overstate events/sec.
BENCHMARK(BM_SimShardScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SimShardSpeedup4(benchmark::State& state) {
  const bool can_measure = std::thread::hardware_concurrency() >= 4;
  if (!can_measure) {
    // Only publish the guarded counter when the host can actually scale;
    // perf_guard's step for this key is skipped on small runners.
    for (auto _ : state) {
    }
    return;
  }
  ShardChurnSim s1(1);
  ShardChurnSim s4(4);
  s1.round(kSteadyActs);
  s4.round(kSteadyActs);
  double t1 = 1e300;
  double t4 = 1e300;
  // Best-of-N on both sides, serial side first and last alternating, for
  // the same reasons as BM_CampaignSpeedupJobs4.
  bool parallel_first = false;
  for (auto _ : state) {
    const auto timed = [&](ShardChurnSim& s) {
      const auto t0 = std::chrono::steady_clock::now();
      s.round(kSteadyActs);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    if (parallel_first) t4 = std::min(t4, timed(s4));
    t1 = std::min(t1, timed(s1));
    if (!parallel_first) t4 = std::min(t4, timed(s4));
    parallel_first = !parallel_first;
  }
  if (t1 < 1e299 && t1 > 0.0) state.counters["inv_speedup_shards4"] = t4 / t1;
}
BENCHMARK(BM_SimShardSpeedup4)->Unit(benchmark::kMillisecond)->Iterations(8);

// ---- cross-shard fabric carve: 1k-node dragonfly ----------------------------
//
// The workload the boundary-proxy exchange exists for: FabricLab splitting a
// fabric-coupled scenario where every flow shares the global links, so the
// carve must cut resources (unlike ShardChurnSim's independent groups).
// 16 groups x 8 routers x 8 hosts = 1024 nodes, two interleaved ring tenants
// touching every router and a dense set of cross-group globals.  Counters:
//
//   shard_windows       — conservative windows of one sharded run; a pure
//       function of the scenario and shard count, guarded at tolerance 0
//       (shards=1 is the inline serial engine and must stay at exactly 0).
//   inv_speedup_shards4 — shards=4 over shards=1 wall time; emitted only on
//       hosts with >= 4 hardware threads and guarded so the carve keeps its
//       >= 2.5x payoff on the topology it was built for.

core::Scenario dragonfly_scenario() {
  core::Scenario s;
  s.topology = net::Topology::dragonfly(16, 8, 8);
  const int nodes = 16 * 8 * 8;
  core::JobSpec even;
  core::JobSpec odd;
  even.label = "even";
  odd.label = "odd";
  even.pattern = odd.pattern = core::TrafficPattern::kRing;
  even.iterations = odd.iterations = 2;
  for (int n = 0; n < nodes; n += 2) even.nodes.push_back(n);
  for (int n = 1; n < nodes; n += 2) odd.nodes.push_back(n);
  s.jobs = {even, odd};
  return s;
}

void BM_DragonflyShardScaling(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  core::FabricLab lab(dragonfly_scenario());
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const core::FabricReport r = lab.run_sharded(shards);
    windows = r.windows;
    events += r.events;
    benchmark::DoNotOptimize(r.elapsed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["shard_windows"] = static_cast<double>(windows);
}
// UseRealTime for the same reason as BM_SimShardScaling: the work happens on
// shard workers while the coordinator blocks at window barriers.
BENCHMARK(BM_DragonflyShardScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DragonflyShardSpeedup4(benchmark::State& state) {
  if (std::thread::hardware_concurrency() < 4) {
    // Only publish the guarded counter when the host can actually scale;
    // perf_guard's step for this key is skipped on small runners.
    for (auto _ : state) {
    }
    return;
  }
  core::FabricLab lab(dragonfly_scenario());
  (void)lab.run_sharded(1);  // warm label tables and allocator pools
  (void)lab.run_sharded(4);
  double t1 = 1e300;
  double t4 = 1e300;
  // Best-of-N on both sides, alternating which side goes first, for the
  // same reasons as BM_SimShardSpeedup4.
  bool parallel_first = false;
  for (auto _ : state) {
    const auto timed = [&](int shards) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(lab.run_sharded(shards).elapsed);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    if (parallel_first) t4 = std::min(t4, timed(4));
    t1 = std::min(t1, timed(1));
    if (!parallel_first) t4 = std::min(t4, timed(4));
    parallel_first = !parallel_first;
  }
  if (t1 < 1e299 && t1 > 0.0) state.counters["inv_speedup_shards4"] = t4 / t1;
}
BENCHMARK(BM_DragonflyShardSpeedup4)->Unit(benchmark::kMillisecond)->Iterations(4);

}  // namespace

BENCHMARK_MAIN();
