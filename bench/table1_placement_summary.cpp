// Table 1 — qualitative summary of data / comm-thread placement impact,
// derived from the same sweeps as Fig. 4/5 (onset detection + drop shape).
#include <cmath>

#include "bench/common.hpp"
#include "kernels/stream.hpp"

using namespace cci;

namespace {

struct Row {
  std::string data, thread;
  int latency_onset = -1;       // first core count with >15% latency increase
  double latency_factor = 1.0;  // at full machine
  double bw_ratio_mid = 1.0;    // bandwidth remaining at 12 cores
  double bw_ratio_full = 1.0;   // bandwidth remaining at 35 cores
};

Row measure(core::Placement data, core::Placement thread) {
  Row row;
  row.data = to_string(data);
  row.thread = to_string(thread);
  for (int cores : {0, 2, 4, 6, 9, 12, 16, 20, 25, 30, 35}) {
    core::Scenario s;
    s.kernel = kernels::triad_traits();
    s.data = data;
    s.comm_thread = thread;
    s.computing_cores = cores;
    s.message_bytes = 4;
    s.compute_repetitions = 3;
    s.target_pass_seconds = 0.01;
    auto r = core::InterferenceLab(s).run();
    double f = r.comm_together.latency.median / r.comm_alone.latency.median;
    if (cores > 0 && f > 1.08 && row.latency_onset < 0) row.latency_onset = cores;
    if (cores == 35) row.latency_factor = f;

    if (cores == 12 || cores == 35) {
      core::Scenario b = s;
      b.message_bytes = 64 << 20;
      b.pingpong_iterations = 4;
      b.pingpong_warmup = 1;
      auto rb = core::InterferenceLab(b).run();
      double ratio = rb.comm_together.bandwidth.median / rb.comm_alone.bandwidth.median;
      (cores == 12 ? row.bw_ratio_mid : row.bw_ratio_full) = ratio;
    }
  }
  return row;
}

std::string classify_latency(const Row& r) {
  if (r.latency_factor >= 1.5) return "increases highly (from " + std::to_string(r.latency_onset) + " cores)";
  if (r.latency_onset > 0) return "increases slightly (from " + std::to_string(r.latency_onset) + " cores)";
  return "stable";
}

std::string classify_bw(const Row& r) {
  // Abrupt = most of the final loss already present at 12 cores.
  double final_loss = 1.0 - r.bw_ratio_full;
  double mid_loss = 1.0 - r.bw_ratio_mid;
  if (final_loss < 0.1) return "unaffected";
  return mid_loss > 0.6 * final_loss ? "decreases abruptly" : "decreases steadily";
}

}  // namespace

int main() {
  bench::banner("Table 1", "summary of data and communication-thread placement impact");

  trace::Table t({"data", "comm_thread", "latency", "bandwidth", "lat_x_at_35", "bw_left_at_35"});
  for (auto data : {core::Placement::kNearNic, core::Placement::kFarFromNic})
    for (auto thread : {core::Placement::kNearNic, core::Placement::kFarFromNic}) {
      Row r = measure(data, thread);
      char latx[32], bwr[32];
      std::snprintf(latx, sizeof(latx), "%.2fx", r.latency_factor);
      std::snprintf(bwr, sizeof(bwr), "%.0f%%", 100.0 * r.bw_ratio_full);
      t.add_text_row({r.data, r.thread, classify_latency(r), classify_bw(r), latx, bwr});
    }
  t.print(std::cout);

  std::cout << "\nPaper's Table 1: latency increases slightly from ~6 cores (thread near)\n"
               "or highly from ~25 cores (thread far); bandwidth decreases steadily\n"
               "(data near) or abruptly (data far); STREAM impacted only by large\n"
               "transfers (see fig06_message_size).\n";
  return 0;
}
