// Fig. 1 — impact of constant core/uncore frequencies on network
// performance (henri, userspace governor, no computation).
//
// 1a: latency vs message size for the extreme core and uncore settings.
// 1b: bandwidth vs message size for the same grid.
#include "bench/common.hpp"
#include "hw/frequency_governor.hpp"
#include "mpi/pingpong.hpp"

using namespace cci;

namespace {

struct Setting {
  const char* label;
  double core_hz;
  double uncore_hz;
};

trace::Stats run_point(const Setting& s, std::size_t bytes) {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  for (int n = 0; n < 2; ++n) {
    cluster.machine(n).governor().pin_core_freq(s.core_hz);
    cluster.machine(n).governor().pin_uncore_freq(s.uncore_hz);
  }
  // Fig. 1 runs the plain MPI benchmark; comm thread far from the NIC.
  mpi::World world(cluster, {{0, 35}, {1, 35}});
  mpi::PingPongOptions opt;
  opt.bytes = bytes;
  opt.iterations = bytes >= (1u << 20) ? 6 : 30;
  opt.warmup = 2;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  return trace::Stats::of(pp.latencies());
}

}  // namespace

int main() {
  bench::banner("Fig. 1", "constant core/uncore frequencies vs network performance");

  const Setting settings[] = {
      {"core 2300 MHz / uncore 2400 MHz", 2.3e9, 2.4e9},
      {"core 2300 MHz / uncore 1200 MHz", 2.3e9, 1.2e9},
      {"core 1000 MHz / uncore 2400 MHz", 1.0e9, 2.4e9},
      {"core 1000 MHz / uncore 1200 MHz", 1.0e9, 1.2e9},
  };

  std::cout << "--- Fig. 1a: latency (us) vs message size ---\n";
  trace::Table lat({"bytes", "c2300/u2400", "c2300/u1200", "c1000/u2400", "c1000/u1200"});
  for (std::size_t bytes : {4u, 64u, 1024u, 16384u}) {
    std::vector<double> row{static_cast<double>(bytes)};
    for (const auto& s : settings) row.push_back(sim::to_usec(run_point(s, bytes).median));
    lat.add_row(row);
  }
  lat.print(std::cout);

  std::cout << "\nPaper reference points (4 B): 1.8 us at 2300 MHz vs 3.1 us at 1000 MHz\n";
  std::cout << "(+72% core effect; uncore effect ~+5%)\n\n";

  std::cout << "--- Fig. 1b: bandwidth (GB/s) vs message size ---\n";
  trace::Table bw({"bytes", "c2300/u2400", "c2300/u1200", "c1000/u2400", "c1000/u1200"});
  for (std::size_t bytes : {64u * 1024u, 1u << 20, 16u << 20, 64u << 20}) {
    std::vector<double> row{static_cast<double>(bytes)};
    for (const auto& s : settings) {
      auto st = run_point(s, bytes);
      row.push_back(static_cast<double>(bytes) / st.median / 1e9);
    }
    bw.add_row(row);
  }
  bw.print(std::cout);
  std::cout << "\nPaper reference (64 MB): 10.5 GB/s at uncore 2400 MHz vs 10.1 GB/s at 1200 MHz\n";
  return 0;
}
