// Thin shim kept for script compatibility: the figure moved to the
// campaign registry (bench/figures/fig06.cpp).  `cci_bench fig06` is the
// primary entry point; this binary forwards its arguments there.
#include "bench/registry.hpp"

int main(int argc, char** argv) { return cci::bench::run_cli("fig06", argc - 1, argv + 1); }
