// Fig. 6 — impact of the transmitted message size on memory contention,
// with 5 computing cores (6a) and 35 computing cores (6b) on henri.
#include "bench/common.hpp"
#include "kernels/stream.hpp"

using namespace cci;

namespace {

void run_panel(int cores) {
  std::cout << "--- Fig. 6" << (cores <= 5 ? 'a' : 'b') << ": " << cores
            << " computing cores ---\n";
  trace::Table t({"msg_bytes", "net_alone", "net_together", "stream_alone_GBps",
                  "stream_together_GBps", "net_unit"});
  for (std::size_t bytes : bench::size_sweep()) {
    core::Scenario s;
    s.kernel = kernels::triad_traits();
    s.comm_thread = core::Placement::kFarFromNic;
    s.data = core::Placement::kNearNic;
    s.computing_cores = cores;
    s.message_bytes = bytes;
    s.compute_repetitions = 4;
    s.target_pass_seconds = 0.02;
    s.pingpong_iterations = bytes >= (1u << 20) ? 4 : 20;
    s.pingpong_warmup = bytes >= (1u << 20) ? 1 : 3;
    auto r = core::InterferenceLab(s).run();
    bool small = bytes < 64 * 1024;
    double alone = small ? sim::to_usec(r.comm_alone.latency.median)
                         : r.comm_alone.bandwidth.median / 1e9;
    double together = small ? sim::to_usec(r.comm_together.latency.median)
                            : r.comm_together.bandwidth.median / 1e9;
    t.add_text_row({std::to_string(bytes),
                    trace::fmt(alone, 3),
                    trace::fmt(together, 3),
                    trace::fmt(r.compute_alone.per_core_bandwidth.median / 1e9, 2),
                    trace::fmt(r.compute_together.per_core_bandwidth.median / 1e9, 2),
                    small ? "us" : "GB/s"});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::banner("Fig. 6", "message-size sweep: who starts hurting whom, and when");
  run_panel(5);
  run_panel(35);
  std::cout << "Paper: with 5 cores, communications degrade from 64 KB and STREAM from\n"
               "4 KB messages; with 35 cores communications degrade from ~128 B and\n"
               "STREAM from 4 KB as well.\n";
  return 0;
}
