// Solver microbenchmark: component-structured max-min problems (K disjoint
// clusters x F flows), full re-solve vs incremental partial re-solve.
//
// The workload mimics the engine's change-point pattern: one flow in one
// cluster finishes and a replacement starts, while every other cluster is
// untouched.  The incremental solver should pay for the touched cluster
// only, so flow-visits per re-solve drop by ~K.
//
// Usage: micro_maxmin [out.json]
//   With a path, appends a machine-readable record (ns/re-solve is
//   host-dependent; flow-visits are deterministic and what the CI perf
//   guard keys on).  The checked-in BENCH_sim.json at the repo root is this
//   bench's output — the perf trajectory baseline for later PRs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/maxmin.hpp"
#include "sim/rng.hpp"
#include "trace/table.hpp"

using namespace cci;

namespace {

struct PathResult {
  double ns_per_resolve = 0.0;
  double visits_per_resolve = 0.0;
  std::uint64_t resolves = 0;
};

PathResult run_path(std::size_t clusters, std::size_t flows_per_cluster, bool incremental) {
  constexpr std::size_t kResPerCluster = 4;
  constexpr int kEvents = 2000;

  sim::Rng rng(42);
  sim::MaxMinSolver solver;
  for (std::size_t r = 0; r < clusters * kResPerCluster; ++r)
    solver.add_resource(rng.uniform(10.0, 100.0));

  auto make_entries = [&](std::size_t cluster) {
    std::vector<sim::MaxMinFlow::Entry> entries;
    std::size_t hops = 1 + rng.below(3);
    for (std::size_t h = 0; h < hops; ++h)
      entries.push_back(
          {cluster * kResPerCluster + rng.below(kResPerCluster), rng.uniform(0.2, 2.0)});
    return entries;
  };

  std::vector<std::vector<sim::MaxMinSolver::FlowId>> ids(clusters);
  for (std::size_t c = 0; c < clusters; ++c)
    for (std::size_t f = 0; f < flows_per_cluster; ++f)
      ids[c].push_back(solver.add_flow(rng.uniform(0.5, 2.0), 0.0, make_entries(c)));
  solver.solve();

  const std::uint64_t visits0 = solver.stats().flow_visits;
  const std::uint64_t solves0 = solver.stats().solves;
  auto wall0 = std::chrono::steady_clock::now();
  for (int e = 0; e < kEvents; ++e) {
    // One completion + one arrival in a single cluster: two change points.
    std::size_t c = rng.below(clusters);
    std::size_t k = rng.below(ids[c].size());
    solver.remove_flow(ids[c][k]);
    if (!incremental) solver.mark_all_dirty();
    solver.solve();
    ids[c][k] = solver.add_flow(rng.uniform(0.5, 2.0), 0.0, make_entries(c));
    if (!incremental) solver.mark_all_dirty();
    solver.solve();
  }
  auto wall1 = std::chrono::steady_clock::now();

  PathResult out;
  out.resolves = solver.stats().solves - solves0;
  out.ns_per_resolve =
      std::chrono::duration<double, std::nano>(wall1 - wall0).count() /
      static_cast<double>(out.resolves);
  out.visits_per_resolve =
      static_cast<double>(solver.stats().flow_visits - visits0) /
      static_cast<double>(out.resolves);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== micro_maxmin — incremental vs full max-min re-solves ===\n"
            << "(K disjoint clusters x F flows; one cluster churns per event)\n\n";

  struct Case {
    std::size_t clusters, flows_per_cluster;
  };
  const std::vector<Case> cases = {{1, 16}, {4, 16}, {16, 16}, {64, 16}, {64, 32}};

  trace::Table t({"clusters", "flows", "full ns/slv", "inc ns/slv", "full visits/slv",
                  "inc visits/slv", "visit x-reduction"});
  std::string json;
  for (const Case& c : cases) {
    PathResult full = run_path(c.clusters, c.flows_per_cluster, false);
    PathResult inc = run_path(c.clusters, c.flows_per_cluster, true);
    double reduction = full.visits_per_resolve / std::max(1.0, inc.visits_per_resolve);
    t.add_text_row({std::to_string(c.clusters),
                    std::to_string(c.clusters * c.flows_per_cluster),
                    trace::fmt(full.ns_per_resolve, 0), trace::fmt(inc.ns_per_resolve, 0),
                    trace::fmt(full.visits_per_resolve, 1),
                    trace::fmt(inc.visits_per_resolve, 1), trace::fmt(reduction, 1)});
    json += std::string(json.empty() ? "" : ",\n    ") + "{\"clusters\": " +
            std::to_string(c.clusters) +
            ", \"flows\": " + std::to_string(c.clusters * c.flows_per_cluster) +
            ", \"full_ns_per_resolve\": " + trace::fmt(full.ns_per_resolve, 0) +
            ", \"inc_ns_per_resolve\": " + trace::fmt(inc.ns_per_resolve, 0) +
            ", \"full_visits_per_resolve\": " + trace::fmt(full.visits_per_resolve, 2) +
            ", \"inc_visits_per_resolve\": " + trace::fmt(inc.visits_per_resolve, 2) +
            ", \"visit_reduction\": " + trace::fmt(reduction, 2) + "}";
  }
  t.print(std::cout);
  std::cout << "\nns/re-solve is host-dependent; visits/re-solve is deterministic\n"
               "(the CI perf guard keys on visit counts, not wall time).\n";

  if (argc > 1) {
    std::ofstream os(argv[1]);
    os << "{\n  \"bench\": \"micro_maxmin\",\n  \"cases\": [\n    " << json << "\n  ]\n}\n";
    std::cout << "\n[micro_maxmin] baseline written to " << argv[1] << "\n";
  }
  return 0;
}
