// Figure registry for the cci_bench multi-tool.
//
// Each paper figure registers one FigureDef: a name, banner metadata, and
// a run function written against the campaign API.  One binary
// (`cci_bench <figure> [--jobs N] [--csv out.csv] [--cache dir]
// [--shard i/n] [--seed S]`) drives them all; the historical per-figure
// binaries survive as thin shims that forward here (run_cli with a fixed
// figure name), so existing scripts keep working.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/campaign.hpp"

namespace cci::bench {

/// Everything a figure definition needs: the campaign engine (carrying
/// the CLI's jobs/cache/shard options), stdout, the optional CSV sink,
/// and the per-bench observability hookup.
class FigureContext {
 public:
  FigureContext(core::CampaignEngine& engine, BenchObs& obs, std::ostream& out,
                std::ostream* csv, std::ostream* timeline = nullptr)
      : engine_(engine), obs_(obs), out_(out), csv_(csv), timeline_(timeline) {}

  /// Run (the local shard of) a campaign through the engine.
  core::CampaignRun run(const core::Campaign& campaign) { return engine_.run(campaign); }

  /// Print a finished campaign's table to stdout and, when --csv was
  /// given, append the same table as CSV (prefixed by the campaign name).
  /// When --timeline was given, also appends the run's time-resolved
  /// samples (`campaign,point,time,series,value`; header once per file).
  void print(const core::Campaign& campaign, const core::CampaignRun& run);

  core::CampaignEngine& engine() { return engine_; }
  BenchObs& obs() { return obs_; }
  std::ostream& out() { return out_; }

 private:
  core::CampaignEngine& engine_;
  BenchObs& obs_;
  std::ostream& out_;
  std::ostream* csv_;
  std::ostream* timeline_ = nullptr;
  bool timeline_header_written_ = false;
};

using FigureFn = std::function<int(FigureContext&)>;

struct FigureDef {
  std::string name;      ///< CLI name: "fig04", "arch_sweep", ...
  std::string title;     ///< banner, e.g. "Fig. 4"
  std::string what;      ///< banner subtitle
  FigureFn fn;
  std::string obs_name;  ///< bench name in CCI_RESULTS records (default: name)
};

class FigureRegistry {
 public:
  static FigureRegistry& instance();
  void add(FigureDef def);
  [[nodiscard]] const FigureDef* find(const std::string& name) const;
  /// All registered figures, name-sorted.
  [[nodiscard]] std::vector<const FigureDef*> all() const;

 private:
  std::vector<FigureDef> defs_;
};

/// Static registrar: each bench/figures/*.cpp defines one at file scope.
/// obs_name keeps the historical bench name on CCI_RESULTS records for
/// figures whose shim binary had a different name than the CLI figure.
struct FigureRegistrar {
  FigureRegistrar(std::string name, std::string title, std::string what, FigureFn fn,
                  std::string obs_name = "");
};

/// Entry point shared by cci_bench (figure name from argv) and the
/// per-figure shims (fixed figure name): parses the campaign flags, sets
/// up BenchObs + engine, prints the banner, runs the figure, and reports
/// the campaign point totals.
int run_cli(const std::string& figure, int argc, char** argv);

/// cci_bench main: `cci_bench <figure> [flags]`, `cci_bench --list`.
int main_cli(int argc, char** argv);

}  // namespace cci::bench
