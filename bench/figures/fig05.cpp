// Fig. 5 — impact of communication-thread placement and data locality on
// henri (the remaining placement combinations; Fig. 4 covered
// data-near/thread-far).  Six panels: latency and bandwidth for each combo.
#include "bench/registry.hpp"
#include "kernels/stream.hpp"

namespace cci::bench {
namespace {

void run_panel(FigureContext& ctx, const char* campaign_name, const char* name,
               core::Placement data, core::Placement thread, std::size_t bytes) {
  using core::SweepPoint;
  using core::SideBySideResult;
  ctx.out() << "--- " << name << " (data " << to_string(data) << " NIC, comm thread "
            << to_string(thread) << " NIC, "
            << trace::format_bytes(static_cast<double>(bytes)) << ") ---\n";

  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.data = data;
  base.comm_thread = thread;
  base.message_bytes = bytes;
  base.compute_repetitions = 5;
  base.target_pass_seconds = 0.02;
  if (bytes > 4096) {
    base.pingpong_iterations = 4;
    base.pingpong_warmup = 1;
  } else {
    base.pingpong_iterations = 30;
  }

  const bool latency_panel = bytes <= 4096;
  core::Campaign c(campaign_name, core::SweepSpec(base)
                                      .seed_policy(core::SeedPolicy::kFixed)
                                      .cores("cores", core::paper_core_counts(35)));
  c.column("alone",
           [latency_panel](const SweepPoint&, const SideBySideResult& r) {
             return latency_panel ? sim::to_usec(r.comm_alone.latency.median)
                                  : r.comm_alone.bandwidth.median / 1e9;
           })
      .column("together",
              [latency_panel](const SweepPoint&, const SideBySideResult& r) {
                return latency_panel ? sim::to_usec(r.comm_together.latency.median)
                                     : r.comm_together.bandwidth.median / 1e9;
              })
      .column("stream_alone_GBps",
              [](const SweepPoint&, const SideBySideResult& r) {
                return r.compute_alone.per_core_bandwidth.median / 1e9;
              })
      .column("stream_together_GBps", core::Campaign::stream_per_core_gbps());
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  ctx.out() << '\n';
}

int run(FigureContext& ctx) {
  using core::Placement;
  ctx.out() << "(latency panels in us, bandwidth panels in GB/s)\n\n";

  run_panel(ctx, "fig05a", "Fig. 5a: latency", Placement::kNearNic, Placement::kNearNic, 4);
  run_panel(ctx, "fig05b", "Fig. 5b: latency", Placement::kFarFromNic, Placement::kNearNic, 4);
  run_panel(ctx, "fig05c", "Fig. 5c: latency", Placement::kFarFromNic, Placement::kFarFromNic,
            4);
  run_panel(ctx, "fig05d", "Fig. 5d: bandwidth", Placement::kNearNic, Placement::kNearNic,
            64 << 20);
  run_panel(ctx, "fig05e", "Fig. 5e: bandwidth", Placement::kFarFromNic, Placement::kNearNic,
            64 << 20);
  run_panel(ctx, "fig05f", "Fig. 5f: bandwidth", Placement::kFarFromNic,
            Placement::kFarFromNic, 64 << 20);

  ctx.out() << "Paper: thread near -> latency rises slightly from ~6 cores, plateaus ~2 us;\n"
               "thread far -> latency doubles from ~25 cores.  Data near -> bandwidth\n"
               "decreases steadily; data far -> bandwidth drops abruptly.\n";
  return 0;
}

const FigureRegistrar reg("fig05", "Fig. 5",
                          "placement grid: data x comm-thread near/far from the NIC", run,
                          "fig05_placement");

}  // namespace
}  // namespace cci::bench
