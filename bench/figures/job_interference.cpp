// Inter-job interference on a dragonfly: tenant-pair slowdown heatmap.
//
// Three tenants share a dragonfly(3 groups, 2 routers, 2 hosts) fabric on
// disjoint nodes: one is group-local traffic, two cross the same g1->g2
// global link.  Every (victim, aggressor) cell runs the victim alone and
// then with exactly that aggressor on the identical fabric (same
// placement, tags and routing state) and reports the victim's makespan
// ratio — the victim/aggressor slowdown matrix of "Characterizing the
// Impact of Congestion in Modern HPC Interconnects", here for whole jobs
// instead of workload classes.  Adaptive routing (threshold 0.7) lets the
// contending pair spill over the g0 detour, capping the slowdown.
#include "bench/registry.hpp"
#include "core/fabric_lab.hpp"

namespace cci::bench {
namespace {

/// Tenant labels in axis order.  g0.local pairs routers inside group 0;
/// the two g1g2 tenants each drive pair streams across the g1->g2 global
/// link — the shared bottleneck of the heatmap's hot cells.
const std::vector<std::string> kTenants = {"g0.local", "g1g2.a", "g1g2.b"};

core::Scenario matrix_base() {
  core::Scenario base;
  base.topology =
      net::Topology::dragonfly(/*groups=*/3, /*routers=*/2, /*hosts=*/2)
          .routing(net::RoutingPolicy::kAdaptive)
          .adaptive_threshold(0.7);
  core::JobSpec local;  // nodes 0..3 = group 0; pairs (0,2),(1,3) cross routers
  local.label = kTenants[0];
  local.nodes = {0, 2, 1, 3};
  core::JobSpec xa;  // g1 -> g2: pairs (4,8),(5,9)
  xa.label = kTenants[1];
  xa.nodes = {4, 8, 5, 9};
  core::JobSpec xb;  // g1 -> g2 as well: pairs (6,10),(7,11)
  xb.label = kTenants[2];
  xb.nodes = {6, 10, 7, 11};
  for (core::JobSpec* j : {&local, &xa, &xb}) {
    j->message_bytes = std::size_t{4} << 20;
    j->iterations = 5;
    j->pattern = core::TrafficPattern::kPairs;
  }
  base.jobs = {std::move(local), std::move(xa), std::move(xb)};
  return base;
}

int run(FigureContext& ctx) {
  using core::SweepPoint;

  ctx.out() << "--- Job interference: tenant-pair slowdown matrix (dragonfly) ---\n";
  core::SweepSpec spec(matrix_base());
  auto tenant_axis = [](core::SweepSpec& s, const char* label) -> core::SweepSpec& {
    return s.axis<std::size_t>(
        label, {0, 1, 2}, [](core::Scenario&, const std::size_t&) {},
        [](const std::size_t& i) { return kTenants[i]; },
        [](const std::size_t& i) { return static_cast<double>(i); });
  };
  spec.seed_policy(core::SeedPolicy::kFixed);
  tenant_axis(spec, "victim");
  tenant_axis(spec, "aggressor");

  core::Campaign c("job_interference", std::move(spec));
  c.column("slowdown", 3, core::Campaign::Metric{})
      .column("alone_ms", 3, core::Campaign::Metric{})
      .column("together_ms", 3, core::Campaign::Metric{})
      .evaluator("fabric_job_interference.v1",
                 [](const SweepPoint& p) -> std::vector<double> {
                   const std::string& victim =
                       kTenants[static_cast<std::size_t>(p.numeric[0])];
                   const std::string& aggressor =
                       kTenants[static_cast<std::size_t>(p.numeric[1])];
                   core::FabricLab lab(p.scenario);
                   core::FabricReport alone = lab.run(victim);
                   const double t_alone = alone.tenant(victim)->finish;
                   if (victim == aggressor)  // a job cannot aggress itself
                     return {1.0, t_alone * 1e3, t_alone * 1e3};
                   core::FabricReport both = lab.run({victim, aggressor});
                   const double t_both = both.tenant(victim)->finish;
                   return {t_alone > 0.0 ? t_both / t_alone : 1.0, t_alone * 1e3,
                           t_both * 1e3};
                 });
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  for (std::size_t i = 0; i < run.points.size(); ++i)
    ctx.obs().write_record({{"victim", run.points[i].numeric[0]},
                            {"aggressor", run.points[i].numeric[1]},
                            {"slowdown", run.values[i][0]}});
  ctx.out() << "\nslowdown = victim makespan with the aggressor / alone on the same\n"
               "fabric.  The g1g2 pair shares one global link and shows the hot\n"
               "cells; group-local traffic is a near-neutral aggressor.\n";
  return 0;
}

const FigureRegistrar reg("job_interference", "Job interference",
                          "tenant-pair slowdown heatmap for co-scheduled jobs "
                          "on a dragonfly fabric",
                          run);

}  // namespace
}  // namespace cci::bench
