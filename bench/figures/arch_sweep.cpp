// Cross-architecture sweep (§2.2/§4.2): the paper states results are
// similar on billy (AMD) and pyxis (ARM), while bora (Omni-Path, single
// NUMA per socket) shows later bandwidth onset and wider deviation.
//
// The summary table is assembled from two campaigns per machine (the
// bandwidth core-sweep and a full-machine latency point) instead of
// printing the campaigns directly.
#include "bench/registry.hpp"
#include "kernels/stream.hpp"

namespace cci::bench {
namespace {

int run(FigureContext& ctx) {
  using core::SweepPoint;
  using core::SideBySideResult;

  trace::Table t({"machine", "quiet_lat_us", "quiet_bw_GBps", "bw_onset_cores",
                  "bw_left_at_full", "lat_factor_at_full"});
  for (const auto& machine : hw::MachineConfig::all_presets()) {
    const auto np = net::NetworkParams::for_machine(machine.name);
    const int max_cores = machine.total_cores() - 1;

    std::vector<int> core_counts;
    for (int cores : {0, 2, 3, 5, 8, 12, 16, 24, 32, max_cores})
      if (cores <= max_cores) core_counts.push_back(cores);

    core::Scenario bw_base;
    bw_base.machine = machine;
    bw_base.network = np;
    bw_base.kernel = kernels::triad_traits();
    bw_base.message_bytes = 64 << 20;
    bw_base.pingpong_iterations = 4;
    bw_base.pingpong_warmup = 1;
    bw_base.compute_repetitions = 3;
    bw_base.target_pass_seconds = 0.02;
    core::Campaign bw("arch_sweep_bw:" + machine.name,
                      core::SweepSpec(bw_base)
                          .seed_policy(core::SeedPolicy::kFixed)
                          .cores("cores", core_counts));
    bw.column("bw_alone_GBps",
              [](const SweepPoint&, const SideBySideResult& r) {
                return r.comm_alone.bandwidth.median / 1e9;
              })
        .column("bw_ratio", [](const SweepPoint&, const SideBySideResult& r) {
          return r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
        });
    core::CampaignRun bw_run = ctx.run(bw);

    double quiet_bw_gbps = 0.0;
    int bw_onset_cores = -1;
    double bw_left_full = 0.0;
    for (std::size_t i = 0; i < bw_run.points.size(); ++i) {
      const int cores = static_cast<int>(bw_run.points[i].numeric[0]);
      const double ratio = bw_run.values[i][1];
      if (cores == 0) quiet_bw_gbps = bw_run.values[i][0];
      if (cores > 0 && ratio < 0.95 && bw_onset_cores < 0) bw_onset_cores = cores;
      if (cores == max_cores) bw_left_full = ratio;
    }

    core::Scenario lat_base;
    lat_base.machine = machine;
    lat_base.network = np;
    lat_base.kernel = kernels::triad_traits();
    lat_base.computing_cores = max_cores;
    lat_base.message_bytes = 4;
    lat_base.compute_repetitions = 3;
    lat_base.target_pass_seconds = 0.02;
    core::Campaign lat("arch_sweep_lat:" + machine.name,
                       core::SweepSpec(lat_base)
                           .seed_policy(core::SeedPolicy::kFixed)
                           .cores("cores", {max_cores}));
    lat.column("quiet_lat_us",
               [](const SweepPoint&, const SideBySideResult& r) {
                 return sim::to_usec(r.comm_alone.latency.median);
               })
        .column("lat_factor", core::Campaign::latency_ratio());
    core::CampaignRun lat_run = ctx.run(lat);

    t.add_text_row({machine.name, trace::fmt(lat_run.values[0][0], 2),
                    trace::fmt(quiet_bw_gbps, 2), std::to_string(bw_onset_cores),
                    trace::fmt(bw_left_full, 2), trace::fmt(lat_run.values[0][1], 2)});
  }
  t.print(ctx.out());
  ctx.out() << "\nPaper: billy and pyxis behave like henri; bora (one NUMA node per\n"
               "socket, higher controller capacity) is impacted later (~20 cores\n"
               "instead of 3) — visible here in the onset column.\n";
  return 0;
}

const FigureRegistrar reg("arch_sweep", "Architecture sweep",
                          "henri/bora/billy/pyxis (§2.2, §4.2 cross-checks)", run);

}  // namespace
}  // namespace cci::bench
