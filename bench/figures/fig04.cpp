// Fig. 4 — memory-bound computations (STREAM TRIAD) vs network
// performance on henri: data near the NIC, comm thread far from the NIC,
// sweeping the number of computing cores.
//
// Campaign-API port of the old fig04_memory_contention main; SeedPolicy::
// kFixed keeps the tables byte-for-byte identical to the hand-written
// loops (which ran every point with the base scenario's seed).
#include "bench/registry.hpp"
#include "kernels/stream.hpp"

namespace cci::bench {
namespace {

core::Scenario fig04_base() {
  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.pingpong_iterations = 30;
  base.compute_repetitions = 5;
  base.target_pass_seconds = 0.02;
  return base;
}

int run(FigureContext& ctx) {
  using core::SweepPoint;
  using core::SideBySideResult;

  ctx.out() << "--- Fig. 4a: network latency (4 B) and STREAM bandwidth/core ---\n";
  core::Scenario base_lat = fig04_base();
  base_lat.message_bytes = 4;
  core::Campaign lat("fig04a_latency",
                     core::SweepSpec(base_lat)
                         .seed_policy(core::SeedPolicy::kFixed)
                         .cores("cores", core::paper_core_counts(35)));
  lat.column("lat_alone_us",
             [](const SweepPoint&, const SideBySideResult& r) {
               return sim::to_usec(r.comm_alone.latency.median);
             })
      .column("lat_together_us",
              [](const SweepPoint&, const SideBySideResult& r) {
                return sim::to_usec(r.comm_together.latency.median);
              })
      .column("lat_d1_us",
              [](const SweepPoint&, const SideBySideResult& r) {
                return sim::to_usec(r.comm_together.latency.decile1);
              })
      .column("lat_d9_us",
              [](const SweepPoint&, const SideBySideResult& r) {
                return sim::to_usec(r.comm_together.latency.decile9);
              })
      .column("stream_alone_GBps",
              [](const SweepPoint&, const SideBySideResult& r) {
                return r.compute_alone.per_core_bandwidth.median / 1e9;
              })
      .column("stream_together_GBps", core::Campaign::stream_per_core_gbps());
  core::CampaignRun lat_run = ctx.run(lat);
  ctx.print(lat, lat_run);
  for (std::size_t i = 0; i < lat_run.points.size(); ++i)
    ctx.obs().write_record({{"cores", lat_run.points[i].numeric[0]},
                            {"msg_bytes", 4.0},
                            {"lat_together_us", lat_run.values[i][1]}});
  ctx.out() << "\nPaper: latency impacted from ~22 cores, up to 2x at 35; "
               "STREAM unaffected.\n\n";

  ctx.out() << "--- Fig. 4b: network bandwidth (64 MB) and STREAM bandwidth/core ---\n";
  core::Scenario base_bw = fig04_base();
  base_bw.message_bytes = 64 << 20;
  base_bw.pingpong_iterations = 4;
  base_bw.pingpong_warmup = 1;
  core::Campaign bw("fig04b_bandwidth",
                    core::SweepSpec(base_bw)
                        .seed_policy(core::SeedPolicy::kFixed)
                        .cores("cores", core::paper_core_counts(35)));
  bw.column("net_alone_GBps",
            [](const SweepPoint&, const SideBySideResult& r) {
              return r.comm_alone.bandwidth.median / 1e9;
            })
      .column("net_together_GBps", core::Campaign::bandwidth_together_gbps())
      .column("stream_alone_GBps",
              [](const SweepPoint&, const SideBySideResult& r) {
                return r.compute_alone.per_core_bandwidth.median / 1e9;
              })
      .column("stream_together_GBps", core::Campaign::stream_per_core_gbps());
  core::CampaignRun bw_run = ctx.run(bw);
  ctx.print(bw, bw_run);
  ctx.out() << "\nPaper: bandwidth impacted from ~3 cores, ~2/3 lost at 35; "
               "STREAM loses <=25%\n(worst around 5 cores).\n";
  return 0;
}

const FigureRegistrar reg(
    "fig04", "Fig. 4", "STREAM vs network performance (data near NIC, comm thread far)",
    run, "fig04_memory_contention");

}  // namespace
}  // namespace cci::bench
