// Fig. 7 — impact of memory pressure (tunable arithmetic intensity) on
// network performance: the cursor-modified TRIAD swept from memory-bound
// to CPU-bound, with 35 computing cores on henri.
#include "bench/registry.hpp"
#include "kernels/tunable_triad.hpp"

namespace cci::bench {
namespace {

void run_panel(FigureContext& ctx, const char* campaign_name, const char* name,
               std::size_t bytes) {
  using core::SweepPoint;
  using core::SideBySideResult;
  ctx.out() << "--- " << name << " ---\n";
  const bool latency_panel = bytes <= 4096;

  core::Scenario base;
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.computing_cores = 35;
  base.message_bytes = bytes;
  // Long enough that many ping-pong iterations overlap the computation
  // even in the CPU-bound regime (the 64 MB transfers take ~40 ms under
  // full contention).
  base.compute_repetitions = latency_panel ? 4 : 8;
  base.target_pass_seconds = latency_panel ? 0.02 : 0.08;
  base.pingpong_iterations = latency_panel ? 20 : 4;
  base.pingpong_warmup = latency_panel ? 3 : 1;

  core::Campaign c(
      campaign_name,
      core::SweepSpec(base)
          .seed_policy(core::SeedPolicy::kFixed)
          .values("ai_flop_per_B",
                  {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0, 40.0, 70.0, 100.0},
                  [](core::Scenario& s, double ai) {
                    s.kernel =
                        kernels::TunableTriad(
                            16, kernels::TunableTriad::cursor_for_intensity(ai))
                            .traits();
                  }));
  c.column("cursor",
           [](const SweepPoint& p, const SideBySideResult&) {
             return static_cast<double>(
                 kernels::TunableTriad::cursor_for_intensity(p.numeric[0]));
           })
      .column(latency_panel ? "lat_alone_us" : "bw_alone_GBps",
              [latency_panel](const SweepPoint&, const SideBySideResult& r) {
                return latency_panel ? sim::to_usec(r.comm_alone.latency.median)
                                     : r.comm_alone.bandwidth.median / 1e9;
              })
      .column(latency_panel ? "lat_together_us" : "bw_together_GBps",
              [latency_panel](const SweepPoint&, const SideBySideResult& r) {
                return latency_panel ? sim::to_usec(r.comm_together.latency.median)
                                     : r.comm_together.bandwidth.median / 1e9;
              })
      .column("compute_alone_ms",
              [](const SweepPoint&, const SideBySideResult& r) {
                return sim::to_msec(r.compute_alone.pass_duration.median);
              })
      .column("compute_together_ms",
              [](const SweepPoint&, const SideBySideResult& r) {
                return sim::to_msec(r.compute_together.pass_duration.median);
              });
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  ctx.out() << '\n';
}

int run(FigureContext& ctx) {
  run_panel(ctx, "fig07a", "Fig. 7a: latency (4 B messages)", 4);
  run_panel(ctx, "fig07b", "Fig. 7b: bandwidth (64 MB messages)", 64 << 20);
  ctx.out() << "Paper (henri): below ~6 flop/B the program is memory-bound — latency\n"
               "doubles, bandwidth drops ~60%, computation slowed ~10% by the 64 MB\n"
               "transfers; above 6 flop/B communication returns to nominal.\n";
  return 0;
}

const FigureRegistrar reg(
    "fig07", "Fig. 7", "memory pressure vs network performance (tunable-AI TRIAD, 35 cores)",
    run, "fig07_arithmetic_intensity");

}  // namespace
}  // namespace cci::bench
