// Extension: node-count scaling of the distributed applications — how the
// paper's 2-node interference picture extends to larger clusters.
//
// This campaign uses a custom evaluator (the runtime apps, not the
// InterferenceLab protocol); its id is part of every cache key, and the
// axes only label/number the points — ranks and app live outside Scenario.
#include <optional>

#include "bench/registry.hpp"
#include "core/fabric_lab.hpp"
#include "runtime/apps.hpp"

namespace cci::bench {
namespace {

struct AppChoice {
  const char* app;   // table cell: "CG" / "GEMM"
  const char* size;  // table cell: "n=32768" / "m=2048" / "m=8192"
};

constexpr int kFabricNodes[] = {256, 1024, 4096};

/// Smallest fabric of each family that carries `nodes` hosts: fat-tree
/// picks the smallest even k with k*(k/2) >= nodes; dragonfly steps
/// through fixed geometries (8x4x8, 16x8x8, 16x16x16).
net::Topology fabric_topology(int kind, int nodes) {
  if (kind == 0) {
    int k = 2;
    while (k * (k / 2) < nodes) k += 2;
    return net::Topology::fat_tree(k);
  }
  if (nodes <= 256) return net::Topology::dragonfly(8, 4, 8);
  if (nodes <= 1024) return net::Topology::dragonfly(16, 8, 8);
  return net::Topology::dragonfly(16, 16, 16);
}

int run(FigureContext& ctx) {
  // Count solver work across the whole sweep so the incremental engine's
  // partial/full re-solve split is visible alongside the scaling numbers.
  obs::Registry::global().set_enabled(true);

  const auto machine = hw::MachineConfig::henri();
  const auto np = net::NetworkParams::ib_edr();
  const auto cfg = runtime::RuntimeConfig::for_machine("henri");

  const std::vector<AppChoice> apps = {
      {"CG", "n=32768"}, {"GEMM", "m=2048"}, {"GEMM", "m=8192"}};

  core::SweepSpec spec { core::Scenario{} };
  spec.seed_policy(core::SeedPolicy::kFixed)
      .axis<int>(
          "ranks", {2, 4, 8}, [](core::Scenario&, const int&) {},
          [](const int& r) { return std::to_string(r); },
          [](const int& r) { return static_cast<double>(r); })
      .axis<std::size_t>(
          "app", {0, 1, 2}, [](core::Scenario&, const std::size_t&) {},
          [&apps](const std::size_t& i) {
            return std::string(apps[i].app) + " " + apps[i].size;
          },
          [](const std::size_t& i) { return static_cast<double>(i); });

  core::Campaign c("node_scaling", std::move(spec));
  c.column("makespan_ms", 3, core::Campaign::Metric{})
      .column("send_bw_GBps", 2, core::Campaign::Metric{})
      .column("stall_pct", 1, core::Campaign::Metric{})
      .evaluator("node_scaling_apps.v1",
                 [machine, np, cfg](const core::SweepPoint& p) -> std::vector<double> {
                   const int ranks = static_cast<int>(p.numeric[0]);
                   const int app = static_cast<int>(p.numeric[1]);
                   runtime::AppResult r;
                   if (app == 0) {
                     runtime::CgAppOptions cg;
                     cg.n = 32768;
                     cg.iterations = 3;
                     cg.workers = 16;
                     cg.ranks = ranks;
                     r = runtime::run_cg_app(machine, np, cfg, cg);
                   } else {
                     runtime::GemmAppOptions gm;
                     gm.m = app == 1 ? 2048 : 8192;
                     gm.tile = 512;
                     gm.workers = 16;
                     gm.ranks = ranks;
                     r = runtime::run_gemm_app(machine, np, cfg, gm);
                   }
                   return {r.makespan * 1e3, r.sending_bw / 1e9, 100 * r.stall_fraction};
                 });
  core::CampaignRun run = ctx.run(c);

  // Column order differs from the axis order (app, size, ranks), so the
  // table is assembled by hand instead of via CampaignRun::table().
  trace::Table t({"app", "size", "ranks", "makespan_ms", "send_bw_GBps", "stall_pct"});
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const AppChoice& a = apps[static_cast<std::size_t>(run.points[i].numeric[1])];
    t.add_text_row({a.app, a.size, run.points[i].labels[0],
                    trace::fmt(run.values[i][0], 3), trace::fmt(run.values[i][1], 2),
                    trace::fmt(run.values[i][2], 1)});
  }
  t.print(ctx.out());

  // try_value_of: under a warm cache (zero points executed in-process) the
  // solver counters were never registered — report them as absent rather
  // than as a table of fake zeros.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const std::optional<double> resolves = snap.try_value_of("sim.flow.resolves");
  const std::optional<double> partial = snap.try_value_of("sim.flow.resolves_partial");
  const std::optional<double> visits = snap.try_value_of("sim.flow.solver_flow_visits");
  auto cell = [](const std::optional<double>& v, int prec) {
    return v ? trace::fmt(*v, prec) : std::string("n/a");
  };
  ctx.out() << "\nSolver work across the sweep (incremental max-min engine):\n";
  trace::Table s({"re-solves", "full", "partial", "flow visits", "visits/re-solve"});
  s.add_text_row({cell(resolves, 0), cell(snap.try_value_of("sim.flow.resolves_full"), 0),
                  cell(partial, 0), cell(visits, 0),
                  resolves && visits && *resolves > 0
                      ? trace::fmt(*visits / *resolves, 2)
                      : std::string("n/a")});
  s.print(ctx.out());

  ctx.out() << "\nTwo regimes: at m=8192 computation dominates and GEMM strong-scales;\n"
               "at m=2048 the panel broadcasts dominate and adding nodes *hurts* —\n"
               "the communication/computation granularity crossover.  CG scales its\n"
               "GEMV but rides an ever-longer ring of latency-bound block exchanges.\n";

  // ---- scale-out: fabric-coupled topologies through the sharded engine ----
  //
  // The runtime apps stop at 8 ranks; the cross-shard carve is what reaches
  // real cluster sizes.  One ring tenant over every host keeps each router
  // and inter-group link hot, so the 4-shard carve must cut boundary links
  // and exchange proxy capacities at every window barrier — visits/event is
  // the per-shard solver work, windows/event the synchronisation overhead.
  core::SweepSpec fspec { core::Scenario{} };
  fspec.seed_policy(core::SeedPolicy::kFixed)
      .axis<int>(
          "topology", {0, 1}, [](core::Scenario&, const int&) {},
          [](const int& k) { return std::string(k == 0 ? "fat-tree" : "dragonfly"); },
          [](const int& k) { return static_cast<double>(k); })
      .axis<int>(
          "nodes", {0, 1, 2}, [](core::Scenario&, const int&) {},
          [](const int& i) { return std::to_string(kFabricNodes[i]); },
          [](const int& i) { return static_cast<double>(i); });

  core::Campaign fc("fabric_scaling", std::move(fspec));
  fc.column("shards_used", 0, core::Campaign::Metric{})
      .column("cut_links", 0, core::Campaign::Metric{})
      .column("visits_per_event", 3, core::Campaign::Metric{})
      .column("windows_per_event", 5, core::Campaign::Metric{})
      .evaluator("fabric_scaling.v1",
                 [](const core::SweepPoint& p) -> std::vector<double> {
                   const int kind = static_cast<int>(p.numeric[0]);
                   const int nodes =
                       kFabricNodes[static_cast<std::size_t>(p.numeric[1])];
                   core::Scenario s;
                   s.topology = fabric_topology(kind, nodes);
                   core::JobSpec ring;
                   ring.label = "ring";
                   ring.iterations = 1;
                   ring.pattern = core::TrafficPattern::kRing;
                   for (int n = 0; n < nodes; ++n) ring.nodes.push_back(n);
                   s.jobs = {ring};
                   core::FabricLab lab(std::move(s));
                   const core::FabricReport r = lab.run_sharded(4);
                   const double ev =
                       r.events > 0 ? static_cast<double>(r.events) : 1.0;
                   return {static_cast<double>(r.populated_shards),
                           static_cast<double>(r.boundary_links),
                           static_cast<double>(r.solver_flow_visits) / ev,
                           static_cast<double>(r.windows) / ev};
                 });
  core::CampaignRun frun = ctx.run(fc);
  ctx.out() << '\n';
  ctx.print(fc, frun);

  ctx.out() << "\nSolver work per event grows with the coupled component (the ring\n"
               "spans the whole fabric) but each shard only solves its own quarter\n"
               "of it, while windows/event falls ~8x from 256 to 4k nodes — the\n"
               "barriers amortise over ever more per-window work.  Falling sync\n"
               "overhead against per-shard solver savings is why the 4-shard\n"
               "speedup survives to 4k nodes.\n";
  return 0;
}

const FigureRegistrar reg("node_scaling", "Scaling",
                          "CG and GEMM across node counts (switched fabric)", run);

}  // namespace
}  // namespace cci::bench
