// Congestion onset on an oversubscribed fat-tree: the network analogue of
// the paper's Fig. 4 contention knee.  One ring tenant spans every leaf of
// a 2:1-oversubscribed fat_tree(4); sweeping the open-loop offered load
// from 5% to 100% of the wire rate traces delivered bandwidth and delivery
// latency through the knee where the uplinks saturate.  The routing axis
// contrasts minimal (static ECMP spine) with adaptive (least-loaded spine
// per flow registration): adaptive spreads the ring's collisions and moves
// the knee right, at the cost of RNG-tie-break reroutes.
#include <algorithm>

#include "bench/registry.hpp"
#include "core/fabric_lab.hpp"

namespace cci::bench {
namespace {

core::Scenario onset_base() {
  core::Scenario base;
  // 4-port fat-tree, uplinks at half rate: 4 leaves x 2 spines, 2 hosts
  // per leaf, 8 nodes.  The ring crosses a leaf boundary on every stream.
  base.topology = net::Topology::fat_tree(4, /*oversubscription=*/0.5);
  core::JobSpec ring;
  ring.label = "ring";
  ring.nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  ring.message_bytes = std::size_t{4} << 20;  // rendezvous DMA, on-fabric
  ring.iterations = 6;
  ring.pattern = core::TrafficPattern::kRing;
  base.jobs = {std::move(ring)};
  return base;
}

int run(FigureContext& ctx) {
  using core::SweepPoint;

  ctx.out() << "--- Congestion onset: offered-load sweep on an oversubscribed fat-tree ---\n";
  core::SweepSpec spec(onset_base());
  spec.seed_policy(core::SeedPolicy::kFixed)
      .axis<net::RoutingPolicy>(
          "routing", {net::RoutingPolicy::kMinimal, net::RoutingPolicy::kAdaptive},
          [](core::Scenario& s, const net::RoutingPolicy& p) { s.topology.routing(p); },
          [](const net::RoutingPolicy& p) { return std::string(net::to_string(p)); },
          [](const net::RoutingPolicy& p) { return static_cast<double>(p); })
      .values("offered_load", {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0},
              [](core::Scenario& s, double v) { s.jobs[0].offered_load = v; });

  core::Campaign c("congestion_onset", std::move(spec));
  c.column("agg_bw_GBps", 3, core::Campaign::Metric{})
      .column("lat_p50_ms", 3, core::Campaign::Metric{})
      .column("lat_p90_ms", 3, core::Campaign::Metric{})
      .column("max_link_util", 3, core::Campaign::Metric{})
      .column("reroutes", 0, core::Campaign::Metric{})
      .evaluator("fabric_congestion.v1", [](const SweepPoint& p) -> std::vector<double> {
        core::FabricLab lab(p.scenario);
        core::FabricReport r = lab.run();
        double peak = 0.0;
        for (const core::LinkReport& l : r.links) peak = std::max(peak, l.peak);
        const core::TenantReport& t = r.tenants.front();
        return {r.aggregate_bw / 1e9, t.delivery_latency.median * 1e3,
                t.delivery_latency.decile9 * 1e3, peak,
                static_cast<double>(r.reroutes)};
      });
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  for (std::size_t i = 0; i < run.points.size(); ++i)
    ctx.obs().write_record({{"routing", run.points[i].numeric[0]},
                            {"offered_load", run.points[i].numeric[1]},
                            {"agg_bw_GBps", run.values[i][0]},
                            {"lat_p90_ms", run.values[i][2]}});
  ctx.out() << "\nThe knee is where lat_p90 departs from the uncongested floor while\n"
               "agg_bw stops tracking the offered load; adaptive routing shifts it\n"
               "by rerouting around the loaded spine at registration time.\n";
  return 0;
}

const FigureRegistrar reg("congestion_onset", "Congestion onset",
                          "offered-load sweep to the knee on an oversubscribed "
                          "fat-tree, minimal vs adaptive routing",
                          run);

}  // namespace
}  // namespace cci::bench
