// Interference-attribution matrix: decompose each side-by-side run's
// busy time into isolated-capacity time vs contention delay, charged to
// the workload class holding the bottleneck (sim/attribution.hpp).  The
// table sweeps computing cores for a small and a large message, printing
// the victim/aggressor slowdown matrix entries the paper's Figs. 4/6
// explain qualitatively: communication slowed by compute's memory
// traffic, computation slowed by NIC DMA.
#include "bench/registry.hpp"
#include "kernels/stream.hpp"

namespace cci::bench {
namespace {

core::Scenario matrix_base() {
  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.pingpong_iterations = 10;
  base.compute_repetitions = 3;
  base.target_pass_seconds = 0.01;
  return base;
}

int run(FigureContext& ctx) {
  using core::SideBySideResult;
  using core::SweepPoint;

  ctx.out() << "--- Interference attribution: victim/aggressor slowdown matrix ---\n";
  core::Campaign c("interference_matrix",
                   core::SweepSpec(matrix_base())
                       .seed_policy(core::SeedPolicy::kFixed)
                       .cores("cores", {1, 4, 16, 35})
                       .message_bytes("msg_bytes", {4, 1 << 20, 64 << 20}));
  c.with_attribution();
  c.column("comm_slow_by_compute", core::Campaign::comm_slowdown_from_compute())
      .column("compute_slow_by_comm", core::Campaign::compute_slowdown_from_comm())
      .column("comm_contended_frac", core::Campaign::comm_contended_fraction())
      .column("compute_contended_frac", core::Campaign::compute_contended_fraction())
      .column("lat_together_us", core::Campaign::latency_together_us())
      .column("stream_GBps", core::Campaign::stream_per_core_gbps());
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  for (std::size_t i = 0; i < run.points.size(); ++i)
    ctx.obs().write_record({{"cores", run.points[i].numeric[0]},
                            {"msg_bytes", run.points[i].numeric[1]},
                            {"comm_slow_by_compute", run.values[i][0]},
                            {"compute_slow_by_comm", run.values[i][1]}});
  ctx.out() << "\nslowdown(v,a) = contention delay of class v charged to class a,\n"
               "as a fraction of v's isolated-capacity time; contended_frac is\n"
               "the share of v's busy time lost to any contention.\n";
  return 0;
}

const FigureRegistrar reg("interference_matrix", "Attribution matrix",
                          "victim/aggressor contention decomposition of the "
                          "side-by-side phase",
                          run);

}  // namespace
}  // namespace cci::bench
