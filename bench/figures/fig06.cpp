// Fig. 6 — impact of the transmitted message size on memory contention,
// with 5 computing cores (6a) and 35 computing cores (6b) on henri.
#include "bench/registry.hpp"
#include "kernels/stream.hpp"

namespace cci::bench {
namespace {

void run_panel(FigureContext& ctx, int cores) {
  using core::SweepPoint;
  using core::SideBySideResult;
  ctx.out() << "--- Fig. 6" << (cores <= 5 ? 'a' : 'b') << ": " << cores
            << " computing cores ---\n";

  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.computing_cores = cores;
  base.compute_repetitions = 4;
  base.target_pass_seconds = 0.02;

  // The message-size axis also switches the ping-pong measurement plan:
  // big transfers run fewer, longer iterations.
  core::SweepSpec spec(base);
  spec.seed_policy(core::SeedPolicy::kFixed)
      .axis<std::size_t>(
          "msg_bytes", core::paper_message_sizes(),
          [](core::Scenario& s, const std::size_t& bytes) {
            s.message_bytes = bytes;
            s.pingpong_iterations = bytes >= (1u << 20) ? 4 : 20;
            s.pingpong_warmup = bytes >= (1u << 20) ? 1 : 3;
          },
          [](const std::size_t& bytes) { return std::to_string(bytes); },
          [](const std::size_t& bytes) { return static_cast<double>(bytes); });

  auto small = [](const SweepPoint& p) { return p.scenario.message_bytes < 64 * 1024; };
  core::Campaign c(cores <= 5 ? "fig06a" : "fig06b", std::move(spec));
  c.column("net_alone", 3,
           [small](const SweepPoint& p, const SideBySideResult& r) {
             return small(p) ? sim::to_usec(r.comm_alone.latency.median)
                             : r.comm_alone.bandwidth.median / 1e9;
           })
      .column("net_together", 3,
              [small](const SweepPoint& p, const SideBySideResult& r) {
                return small(p) ? sim::to_usec(r.comm_together.latency.median)
                                : r.comm_together.bandwidth.median / 1e9;
              })
      .column("stream_alone_GBps", 2,
              [](const SweepPoint&, const SideBySideResult& r) {
                return r.compute_alone.per_core_bandwidth.median / 1e9;
              })
      .column("stream_together_GBps", 2,
              [](const SweepPoint&, const SideBySideResult& r) {
                return r.compute_together.per_core_bandwidth.median / 1e9;
              })
      .column("net_unit",
              core::Campaign::Formatter([small](const SweepPoint& p, double) {
                return std::string(small(p) ? "us" : "GB/s");
              }),
              [](const SweepPoint&, const SideBySideResult&) { return 0.0; });
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  ctx.out() << '\n';
}

int run(FigureContext& ctx) {
  run_panel(ctx, 5);
  run_panel(ctx, 35);
  ctx.out() << "Paper: with 5 cores, communications degrade from 64 KB and STREAM from\n"
               "4 KB messages; with 35 cores communications degrade from ~128 B and\n"
               "STREAM from 4 KB as well.\n";
  return 0;
}

const FigureRegistrar reg("fig06", "Fig. 6",
                          "message-size sweep: who starts hurting whom, and when", run,
                          "fig06_message_size");

}  // namespace
}  // namespace cci::bench
