// Smoke campaign: a small, fast grid exercising the whole campaign stack
// (typed axes, parallel execution, caching, sharding) in a few hundred
// milliseconds.  CI runs it twice against one cache directory and asserts
// the second run executes zero points.
#include "bench/registry.hpp"
#include "kernels/stream.hpp"

namespace cci::bench {
namespace {

int run(FigureContext& ctx) {
  core::Scenario base;
  base.kernel = kernels::triad_traits();
  base.comm_thread = core::Placement::kFarFromNic;
  base.data = core::Placement::kNearNic;
  base.pingpong_iterations = 3;
  base.pingpong_warmup = 1;
  base.compute_repetitions = 2;
  base.target_pass_seconds = 0.005;

  // Per-point seeding (the default policy) on purpose: the smoke test
  // covers the path real campaigns use.
  core::Campaign c("smoke",
                   core::SweepSpec(base)
                       .cores("cores", {0, 4, 16})
                       .message_bytes("msg_bytes", {4, 1 << 20}));
  c.column("lat_together_us", core::Campaign::latency_together_us())
      .column("bw_ratio", core::Campaign::bandwidth_ratio())
      .column("stream_GBps", core::Campaign::stream_per_core_gbps());
  core::CampaignRun run = ctx.run(c);
  ctx.print(c, run);
  return 0;
}

const FigureRegistrar reg("smoke", "Campaign smoke",
                          "tiny cores x message-size grid through the campaign engine", run);

}  // namespace
}  // namespace cci::bench
