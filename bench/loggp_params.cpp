// Extension: fitted LogGP parameters per machine (the model vocabulary the
// paper uses in §3.1 to explain its frequency results).
#include "bench/common.hpp"
#include "mpi/loggp.hpp"

using namespace cci;

int main() {
  bench::banner("LogGP", "fitted parameters per machine (two-frequency separation)");

  trace::Table t({"machine", "L_us", "o_us", "G_ns_per_KB", "asym_GBps"});
  for (const auto& machine : hw::MachineConfig::all_presets()) {
    net::Cluster cluster(machine, net::NetworkParams::for_machine(machine.name));
    auto p = mpi::fit_loggp_two_frequencies(cluster, machine.core_freq_min_hz,
                                            machine.core_freq_nominal_hz);
    t.add_text_row({machine.name,
                    trace::fmt(p.latency * 1e6, 2),
                    trace::fmt(p.overhead * 1e6, 2),
                    trace::fmt(p.gap_per_byte * 1e9 * 1024, 2),
                    trace::fmt(1.0 / p.gap_per_byte / 1e9, 2)});
  }
  t.print(std::cout);
  std::cout << "\no is the frequency-scaled software overhead the paper's §3 isolates:\n"
               "halving the comm-core frequency doubles o while L and G are untouched.\n";
  return 0;
}
