// Extension: collective operations under memory contention.
//
// The paper restricts itself to point-to-point ping-pongs (§2.1) and notes
// that collectives "would be beyond the scope of this article".  The suite
// supports them; this bench shows the same contention mechanisms acting on
// broadcast / allgather / allreduce across 4 nodes.
#include <memory>

#include "bench/common.hpp"
#include "core/compute_team.hpp"
#include "kernels/stream.hpp"
#include "mpi/collectives.hpp"

using namespace cci;

namespace {

double collective_time(const char* which, int computing_cores, std::size_t bytes) {
  const int nodes = 4;
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr(), nodes);
  std::vector<mpi::RankConfig> rc;
  for (int n = 0; n < nodes; ++n) rc.push_back({n, -1});
  mpi::World world(cluster, rc);

  // Background STREAM teams on every node.
  std::vector<std::unique_ptr<core::ComputeTeam>> teams;
  if (computing_cores > 0) {
    for (int n = 0; n < nodes; ++n) {
      core::ComputeTeam::Options opt;
      for (int c = 0; c < computing_cores; ++c) opt.cores.push_back(c);
      opt.data_numa = 0;
      opt.kernel = kernels::triad_traits();
      opt.iters_per_pass = 0.5e9;  // long enough to cover the collective
      opt.repetitions = 1;
      teams.push_back(std::make_unique<core::ComputeTeam>(cluster.machine(n), opt,
                                                          cluster.rng()));
      teams.back()->start();
    }
  }

  mpi::Coll coll(world, 70000);
  std::vector<std::unique_ptr<sim::OneShotEvent>> done;
  sim::Time t0 = cluster.engine().now();
  for (int r = 0; r < nodes; ++r) {
    done.push_back(std::make_unique<sim::OneShotEvent>(cluster.engine()));
    std::string op = which;
    if (op == "bcast") {
      cluster.engine().spawn(coll.bcast(r, 0, mpi::MsgView{bytes, 0, 0}, done.back().get()));
    } else if (op == "allgather") {
      cluster.engine().spawn(coll.allgather(r, mpi::MsgView{bytes, 0, 0}, done.back().get()));
    } else {
      cluster.engine().spawn(coll.allreduce(r, mpi::MsgView{bytes, 0, 0}, done.back().get()));
    }
  }
  // Run until the collective completed on all ranks (compute may continue).
  sim::Time finished = -1.0;
  cluster.engine().spawn([](net::Cluster& c, std::vector<std::unique_ptr<sim::OneShotEvent>>& d,
                            sim::Time& out) -> sim::Coro {
    for (auto& e : d) co_await e->wait();
    out = c.engine().now();
  }(cluster, done, finished));
  cluster.engine().run();
  return finished - t0;
}

}  // namespace

int main() {
  bench::banner("Collectives", "bcast/allgather/allreduce under memory contention (4 nodes)");

  trace::Table t({"collective", "bytes", "quiet_ms", "with_16_cores_ms", "slowdown"});
  for (const char* op : {"bcast", "allgather", "allreduce"}) {
    for (std::size_t bytes : {std::size_t{64} * 1024, std::size_t{8} << 20}) {
      double quiet = collective_time(op, 0, bytes);
      double loud = collective_time(op, 16, bytes);
      t.add_text_row({op, std::to_string(bytes), trace::fmt(quiet * 1e3, 3),
                      trace::fmt(loud * 1e3, 3),
                      trace::fmt(loud / quiet, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery step of a collective is a point-to-point transfer, so the\n"
               "paper's contention findings compound along the algorithm's critical\n"
               "path (log P rounds for bcast/allreduce, P-1 for the ring).\n";
  return 0;
}
