// Runtime microbenchmarks (google-benchmark): task throughput and
// scheduler overhead of the simulated runtime.
#include <benchmark/benchmark.h>

#include "runtime/apps.hpp"
#include "runtime/runtime.hpp"

using namespace cci;

namespace {

void BM_RuntimeTaskThroughput(benchmark::State& state) {
  // Wall-clock cost of simulating N independent tasks on W workers.
  const int tasks = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr(), 2);
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    runtime::RuntimeConfig cfg;
    cfg.workers = workers;
    runtime::Runtime rt(world, 0, cfg);
    hw::KernelTraits flops{"f", 8.0, 0.0, hw::VectorClass::kScalar};
    for (int i = 0; i < tasks; ++i) rt.add_task({"t", flops, 1e5}, i % 4);
    auto& done = rt.run();
    cluster.engine().spawn([](runtime::Runtime& r, sim::OneShotEvent& d) -> sim::Coro {
      co_await d;
      r.shutdown();
    }(rt, done));
    cluster.engine().run();
    benchmark::DoNotOptimize(rt.tasks_completed());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_RuntimeTaskThroughput)->Args({100, 8})->Args({1000, 32});

void BM_DistributedCgSimulation(benchmark::State& state) {
  // Cost of one full distributed-CG simulation (the Fig. 10 inner loop).
  for (auto _ : state) {
    runtime::CgAppOptions opt;
    opt.n = 8192;
    opt.iterations = 2;
    opt.workers = static_cast<int>(state.range(0));
    auto r = runtime::run_cg_app(hw::MachineConfig::henri(), net::NetworkParams::ib_edr(),
                                 runtime::RuntimeConfig::for_machine("henri"), opt);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_DistributedCgSimulation)->Arg(8)->Arg(34);

}  // namespace

BENCHMARK_MAIN();
