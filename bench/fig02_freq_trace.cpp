// Fig. 2 — frequency timeline during (A) only communications, (B) idle,
// (C) communications + 20 cores of CPU-bound computation (prime counting),
// on henri with the ondemand governor.
#include "bench/common.hpp"
#include "core/compute_team.hpp"
#include "kernels/primes.hpp"
#include "mpi/pingpong.hpp"
#include "trace/freq_trace.hpp"

using namespace cci;

int main() {
  bench::banner("Fig. 2", "frequency variations: (A) comm only, (B) idle, (C) comm+compute");

  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, 35}, {1, 35}});
  trace::FreqTrace trace(cluster.machine(0));
  sim::Engine& engine = cluster.engine();

  // Phase A [0, 0.3s): continuous latency ping-pong, nothing else.
  mpi::PingPongOptions ppo;
  ppo.bytes = 4;
  ppo.continuous = true;
  ppo.tag = 100;
  mpi::PingPong pp_a(world, 0, 1, ppo);
  pp_a.start();
  engine.call_at(0.3, [&] { pp_a.request_stop(); });
  engine.run(0.35);

  // Phase B [0.35, 0.65s): everything idle (governor drops to min).
  engine.call_at(0.65, [] {});
  engine.run(0.65);

  // Phase C [0.65s, ...): ping-pong + 20 cores counting primes.
  core::ComputeTeam::Options copt;
  for (int c = 0; c < 20; ++c) copt.cores.push_back(c);
  copt.data_numa = 0;
  copt.kernel = kernels::prime_traits();
  copt.iters_per_pass = 0.2 * 2.3e9 / 2.0;  // ~0.2 s of trial divisions
  copt.repetitions = 2;
  core::ComputeTeam team(cluster.machine(0), copt, cluster.rng());
  ppo.tag = 200;
  mpi::PingPong pp_c(world, 0, 1, ppo);
  pp_c.start();
  team.start();
  engine.spawn([](core::ComputeTeam& t, mpi::PingPong& p) -> sim::Coro {
    co_await t.done();
    p.request_stop();
  }(team, pp_c));
  engine.run();

  // Timeline: comm core (35), a computing core (0), an always-idle core (30).
  std::cout << "phase A = comm only, B = idle, C = comm + 20 computing cores\n\n";
  trace::Table table({"time_s", "comm_core35_GHz", "compute_core0_GHz", "idle_core30_GHz"});
  auto sampled = trace.sample(0.0, engine.now(), 0.05, 36);
  for (std::size_t i = 0; i < sampled.times.size(); ++i) {
    table.add_row({sampled.times[i], sampled.core_freqs[35][i] / 1e9,
                   sampled.core_freqs[0][i] / 1e9, sampled.core_freqs[30][i] / 1e9});
  }
  table.print(std::cout);

  std::cout << "\nLatency phase A: " << trace::format_time(trace::Stats::of(pp_a.latencies()).median)
            << "  phase C: " << trace::format_time(trace::Stats::of(pp_c.latencies()).median)
            << "   (paper: 1.7 us vs 1.52 us — slightly better with computation)\n";
  return 0;
}
