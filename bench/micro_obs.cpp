// Observability overhead guard (google-benchmark): the same simulated
// workload with the obs registry disabled, metrics-only, and full tracing.
//
// The contract documented in docs/OBSERVABILITY.md is that a disabled
// registry costs one predictable branch per instrumentation site — run
// BM_PingPong/disabled against BM_PingPong/baseline-era numbers (or the
// git history of this file) and the gap must stay below ~5%.
#include <benchmark/benchmark.h>

#include <optional>

#include "mpi/pingpong.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

using namespace cci;

namespace {

enum class ObsMode { kDisabled, kMetrics, kTracing };

void run_pingpong_workload() {
  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = 4;
  opt.iterations = 100;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  benchmark::DoNotOptimize(pp.latencies().data());
}

void BM_PingPong(benchmark::State& state) {
  auto mode = static_cast<ObsMode>(state.range(0));
  auto& reg = obs::Registry::global();
  reg.reset();
  reg.set_enabled(mode != ObsMode::kDisabled);
  reg.tracer().set_enabled(mode == ObsMode::kTracing);
  for (auto _ : state) {
    run_pingpong_workload();
    if (mode == ObsMode::kTracing) reg.tracer().clear();  // bound memory
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
  reg.reset();
  reg.set_enabled(false);
  reg.tracer().set_enabled(false);
}
BENCHMARK(BM_PingPong)
    ->Arg(static_cast<int>(ObsMode::kDisabled))
    ->Arg(static_cast<int>(ObsMode::kMetrics))
    ->Arg(static_cast<int>(ObsMode::kTracing))
    ->ArgNames({"mode(0=off,1=metrics,2=trace)"});

// Sampler overhead on the ping-pong workload.  mode 0: sampler detached —
// the engine pays one pointer test per event and the timeline must stay
// exactly empty (sampler_rows is a zero baseline in
// bench/baselines/micro_obs_sampler.json, guarded at tolerance 0).
// mode 1: sampler attached at a 10 us simulated period — sampler_rows is a
// fixed-seed deterministic row count; a growth means a metric started
// churning every tick (or the deny lists stopped filtering), not noise.
void BM_SamplerPingPong(benchmark::State& state) {
  const bool attached = state.range(0) != 0;
  auto& reg = obs::Registry::global();
  double rows = 0.0;
  double ticks = 0.0;
  for (auto _ : state) {
    // Reset totals every iteration so each one feeds the sampler the same
    // deltas — the row count is then identical across iterations.
    reg.reset();
    reg.set_enabled(true);
    net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
    mpi::World world(cluster, {{0, -1}, {1, -1}});
    mpi::PingPongOptions opt;
    opt.bytes = 4;
    opt.iterations = 100;
    mpi::PingPong pp(world, 0, 1, opt);
    obs::TimelineStore store;
    std::optional<obs::Sampler> sampler;
    if (attached) {
      obs::SamplerConfig sc;
      sc.period = 1e-5;
      sampler.emplace(reg, store, std::move(sc));
      cluster.engine().set_sampler(&*sampler);
    }
    pp.start();
    cluster.engine().run();
    rows = static_cast<double>(store.size());
    ticks = attached ? static_cast<double>(sampler->samples_taken()) : 0.0;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["sampler_rows"] = rows;
  state.counters["sampler_ticks"] = ticks;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
  reg.reset();
  reg.set_enabled(false);
}
BENCHMARK(BM_SamplerPingPong)->Arg(0)->Arg(1)->ArgNames({"sampler"});

void BM_CounterAdd(benchmark::State& state) {
  // The single-site cost: one branch + one add when enabled, one branch
  // when disabled.
  obs::Registry reg;
  reg.set_enabled(state.range(0) != 0);
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.add(1.0);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterAdd)->Arg(0)->Arg(1)->ArgNames({"enabled"});

void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Histogram& h = reg.histogram("bench.histogram");
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1.0 ? v * 1.001 : 1e-6;  // sweep buckets
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
