// Ablation: MadMPI-like vs OpenMPI-like stacks (§2.2: "we observed similar
// results with other MPI implementations, such as OpenMPI 4.0").
//
// Same fabric, different software parameters: the interference *shape* must
// be implementation-independent, which is the paper's point.
#include "bench/common.hpp"
#include "kernels/stream.hpp"

using namespace cci;

namespace {

struct Stack {
  const char* label;
  net::NetworkParams params;
};

}  // namespace

int main() {
  bench::banner("Ablation", "MPI stack comparison on the same EDR fabric");

  Stack stacks[] = {{"madmpi", net::NetworkParams::ib_edr()},
                    {"openmpi", net::NetworkParams::ib_edr_openmpi()}};

  trace::Table t({"stack", "cores", "lat_alone_us", "lat_together_us", "bw_alone_GBps",
                  "bw_together_GBps", "bw_ratio"});
  for (const Stack& stack : stacks) {
    for (int cores : {0, 5, 20, 35}) {
      core::Scenario s;
      s.network = stack.params;
      s.kernel = kernels::triad_traits();
      s.computing_cores = cores;
      s.message_bytes = 4;
      auto lat = core::InterferenceLab(s).run();

      s.message_bytes = 64 << 20;
      s.pingpong_iterations = 4;
      s.pingpong_warmup = 1;
      auto bw = core::InterferenceLab(s).run();
      double ratio = bw.comm_alone.bandwidth.median > 0
                         ? bw.comm_together.bandwidth.median / bw.comm_alone.bandwidth.median
                         : 1.0;
      t.add_text_row({stack.label, std::to_string(cores),
                      trace::fmt(sim::to_usec(lat.comm_alone.latency.median), 2),
                      trace::fmt(sim::to_usec(lat.comm_together.latency.median), 2),
                      trace::fmt(bw.comm_alone.bandwidth.median / 1e9, 2),
                      trace::fmt(bw.comm_together.bandwidth.median / 1e9, 2),
                      trace::fmt(ratio, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nAbsolute latencies differ (the OpenMPI-like stack has a longer\n"
               "software path), but the contention-driven ratios line up — the\n"
               "interference is a hardware phenomenon, as the paper argues.\n";
  return 0;
}
