// Thin shim kept for script compatibility: the figure moved to the
// campaign registry (bench/figures/arch_sweep.cpp).  `cci_bench
// arch_sweep` is the primary entry point; this binary forwards there.
#include "bench/registry.hpp"

int main(int argc, char** argv) {
  return cci::bench::run_cli("arch_sweep", argc - 1, argv + 1);
}
