// Cross-architecture sweep (§2.2/§4.2): the paper states results are
// similar on billy (AMD) and pyxis (ARM), while bora (Omni-Path, single
// NUMA per socket) shows later bandwidth onset and wider deviation.
#include "bench/common.hpp"
#include "kernels/stream.hpp"

using namespace cci;

namespace {

struct ArchRow {
  std::string name;
  double quiet_lat_us;
  double quiet_bw_gbps;
  int bw_onset_cores;     // first core count losing >5% bandwidth
  double bw_left_full;    // fraction left at full machine
  double lat_factor_full; // latency multiplier at full machine
};

ArchRow measure(const hw::MachineConfig& machine) {
  ArchRow row;
  row.name = machine.name;
  auto np = net::NetworkParams::for_machine(machine.name);
  const int max_cores = machine.total_cores() - 1;

  double quiet_bw = 0.0;
  row.bw_onset_cores = -1;
  for (int cores : {0, 2, 3, 5, 8, 12, 16, 24, 32, max_cores}) {
    if (cores > max_cores) continue;
    core::Scenario s;
    s.machine = machine;
    s.network = np;
    s.kernel = kernels::triad_traits();
    s.computing_cores = cores;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    s.compute_repetitions = 3;
    s.target_pass_seconds = 0.02;
    auto r = core::InterferenceLab(s).run();
    if (cores == 0) {
      quiet_bw = r.comm_alone.bandwidth.median;
      row.quiet_bw_gbps = quiet_bw / 1e9;
    }
    double ratio = r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
    if (cores > 0 && ratio < 0.95 && row.bw_onset_cores < 0) row.bw_onset_cores = cores;
    if (cores == max_cores) row.bw_left_full = ratio;
  }

  core::Scenario lat;
  lat.machine = machine;
  lat.network = np;
  lat.kernel = kernels::triad_traits();
  lat.computing_cores = max_cores;
  lat.message_bytes = 4;
  lat.compute_repetitions = 3;
  lat.target_pass_seconds = 0.02;
  auto r = core::InterferenceLab(lat).run();
  row.quiet_lat_us = sim::to_usec(r.comm_alone.latency.median);
  row.lat_factor_full = r.comm_together.latency.median / r.comm_alone.latency.median;
  return row;
}

}  // namespace

int main() {
  bench::banner("Architecture sweep", "henri/bora/billy/pyxis (§2.2, §4.2 cross-checks)");

  trace::Table t({"machine", "quiet_lat_us", "quiet_bw_GBps", "bw_onset_cores",
                  "bw_left_at_full", "lat_factor_at_full"});
  for (const auto& machine : hw::MachineConfig::all_presets()) {
    ArchRow row = measure(machine);
    t.add_text_row({row.name, trace::fmt(row.quiet_lat_us, 2),
                    trace::fmt(row.quiet_bw_gbps, 2),
                    std::to_string(row.bw_onset_cores),
                    trace::fmt(row.bw_left_full, 2),
                    trace::fmt(row.lat_factor_full, 2)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: billy and pyxis behave like henri; bora (one NUMA node per\n"
               "socket, higher controller capacity) is impacted later (~20 cores\n"
               "instead of 3) — visible here in the onset column.\n";
  return 0;
}
