// Thin shim kept for script compatibility: the figure moved to the
// campaign registry (bench/figures/node_scaling.cpp).  `cci_bench
// node_scaling` is the primary entry point; this binary forwards there.
#include "bench/registry.hpp"

int main(int argc, char** argv) {
  return cci::bench::run_cli("node_scaling", argc - 1, argv + 1);
}
