// Extension: node-count scaling of the distributed applications — how the
// paper's 2-node interference picture extends to larger clusters.
#include "bench/common.hpp"
#include "runtime/apps.hpp"

using namespace cci;

int main() {
  bench::banner("Scaling", "CG and GEMM across node counts (switched fabric)");
  // Count solver work across the whole sweep so the incremental engine's
  // partial/full re-solve split is visible alongside the scaling numbers.
  obs::Registry::global().set_enabled(true);

  auto machine = hw::MachineConfig::henri();
  auto np = net::NetworkParams::ib_edr();
  auto cfg = runtime::RuntimeConfig::for_machine("henri");

  trace::Table t({"app", "size", "ranks", "makespan_ms", "send_bw_GBps", "stall_pct"});
  for (int ranks : {2, 4, 8}) {
    runtime::CgAppOptions cg;
    cg.n = 32768;
    cg.iterations = 3;
    cg.workers = 16;
    cg.ranks = ranks;
    auto rc = runtime::run_cg_app(machine, np, cfg, cg);
    t.add_text_row({"CG", "n=32768", std::to_string(ranks),
                    trace::fmt(rc.makespan * 1e3, 3),
                    trace::fmt(rc.sending_bw / 1e9, 2),
                    trace::fmt(100 * rc.stall_fraction, 1)});

    // GEMM in both regimes: broadcast-bound (small m) and compute-bound.
    for (std::size_t m : {2048u, 8192u}) {
      runtime::GemmAppOptions gm;
      gm.m = m;
      gm.tile = 512;
      gm.workers = 16;
      gm.ranks = ranks;
      auto rg = runtime::run_gemm_app(machine, np, cfg, gm);
      t.add_text_row({"GEMM", "m=" + std::to_string(m), std::to_string(ranks),
                      trace::fmt(rg.makespan * 1e3, 3),
                      trace::fmt(rg.sending_bw / 1e9, 2),
                      trace::fmt(100 * rg.stall_fraction, 1)});
    }
  }
  t.print(std::cout);

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const double resolves = snap.value_of("sim.flow.resolves");
  const double partial = snap.value_of("sim.flow.resolves_partial");
  const double visits = snap.value_of("sim.flow.solver_flow_visits");
  std::cout << "\nSolver work across the sweep (incremental max-min engine):\n";
  trace::Table s({"re-solves", "full", "partial", "flow visits", "visits/re-solve"});
  s.add_text_row({trace::fmt(resolves, 0), trace::fmt(snap.value_of("sim.flow.resolves_full"), 0),
                  trace::fmt(partial, 0), trace::fmt(visits, 0),
                  trace::fmt(resolves > 0 ? visits / resolves : 0.0, 2)});
  s.print(std::cout);

  std::cout << "\nTwo regimes: at m=8192 computation dominates and GEMM strong-scales;\n"
               "at m=2048 the panel broadcasts dominate and adding nodes *hurts* —\n"
               "the communication/computation granularity crossover.  CG scales its\n"
               "GEMV but rides an ever-longer ring of latency-bound block exchanges.\n";
  return 0;
}
