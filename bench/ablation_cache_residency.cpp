// Ablation: LLC working-set residency — the missing axis of Fig. 10.
//
// The paper's CG streams a huge dense matrix (always DRAM-bound).  Sweeping
// the problem size through the LLC boundary shows interference switching
// off once the working set becomes cache-resident — the cache-aware
// refinement of §4.5's arithmetic-intensity law.
#include "bench/common.hpp"
#include "kernels/cg.hpp"

using namespace cci;

int main() {
  bench::banner("Ablation", "working-set residency vs network interference (CG-like kernel)");

  trace::Table t({"matrix_n", "working_set_MB", "dram_fraction", "net_bw_together_GBps",
                  "net_bw_ratio"});
  for (std::size_t n : {512u, 1024u, 1448u, 2048u, 4096u, 8192u, 16384u}) {
    core::Scenario s;
    s.kernel = kernels::cg_gemv_traits_for(n);
    s.computing_cores = 20;
    s.message_bytes = 64 << 20;
    s.pingpong_iterations = 4;
    s.pingpong_warmup = 1;
    s.compute_repetitions = 5;
    s.target_pass_seconds = 0.04;
    auto r = core::InterferenceLab(s).run();
    double ws_mb = s.kernel.working_set_bytes / 1e6;
    double ratio = r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
    t.add_row({static_cast<double>(n), ws_mb,
               s.kernel.dram_fraction(s.machine.llc_bytes_per_socket),
               r.comm_together.bandwidth.median / 1e9, ratio});
  }
  t.print(std::cout);
  std::cout << "\nBelow the 25 MB LLC (n <= ~1800) the GEMV never touches DRAM and the\n"
               "network keeps its full bandwidth; past it, interference ramps toward\n"
               "the streaming regime of Fig. 4/10.\n";
  return 0;
}
