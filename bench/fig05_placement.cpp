// Fig. 5 — impact of communication-thread placement and data locality on
// henri (the remaining placement combinations; Fig. 4 covered
// data-near/thread-far).  Six panels: latency and bandwidth for each combo.
#include "bench/common.hpp"
#include "kernels/stream.hpp"

using namespace cci;

namespace {

void run_panel(const char* name, core::Placement data, core::Placement thread,
               std::size_t bytes) {
  std::cout << "--- " << name << " (data " << to_string(data) << " NIC, comm thread "
            << to_string(thread) << " NIC, " << trace::format_bytes(static_cast<double>(bytes))
            << ") ---\n";
  trace::Table t({"cores", "alone", "together", "stream_alone_GBps", "stream_together_GBps"});
  for (int cores : bench::core_sweep(35)) {
    core::Scenario s;
    s.kernel = kernels::triad_traits();
    s.data = data;
    s.comm_thread = thread;
    s.computing_cores = cores;
    s.message_bytes = bytes;
    s.compute_repetitions = 5;
    s.target_pass_seconds = 0.02;
    if (bytes > 4096) {
      s.pingpong_iterations = 4;
      s.pingpong_warmup = 1;
    } else {
      s.pingpong_iterations = 30;
    }
    auto r = core::InterferenceLab(s).run();
    bool latency_panel = bytes <= 4096;
    double alone = latency_panel ? sim::to_usec(r.comm_alone.latency.median)
                                 : r.comm_alone.bandwidth.median / 1e9;
    double together = latency_panel ? sim::to_usec(r.comm_together.latency.median)
                                    : r.comm_together.bandwidth.median / 1e9;
    t.add_row({static_cast<double>(cores), alone, together,
               r.compute_alone.per_core_bandwidth.median / 1e9,
               r.compute_together.per_core_bandwidth.median / 1e9});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::banner("Fig. 5", "placement grid: data x comm-thread near/far from the NIC");
  std::cout << "(latency panels in us, bandwidth panels in GB/s)\n\n";

  run_panel("Fig. 5a: latency", core::Placement::kNearNic, core::Placement::kNearNic, 4);
  run_panel("Fig. 5b: latency", core::Placement::kFarFromNic, core::Placement::kNearNic, 4);
  run_panel("Fig. 5c: latency", core::Placement::kFarFromNic, core::Placement::kFarFromNic, 4);
  run_panel("Fig. 5d: bandwidth", core::Placement::kNearNic, core::Placement::kNearNic, 64 << 20);
  run_panel("Fig. 5e: bandwidth", core::Placement::kFarFromNic, core::Placement::kNearNic, 64 << 20);
  run_panel("Fig. 5f: bandwidth", core::Placement::kFarFromNic, core::Placement::kFarFromNic, 64 << 20);

  std::cout << "Paper: thread near -> latency rises slightly from ~6 cores, plateaus ~2 us;\n"
               "thread far -> latency doubles from ~25 cores.  Data near -> bandwidth\n"
               "decreases steadily; data far -> bandwidth drops abruptly.\n";
  return 0;
}
