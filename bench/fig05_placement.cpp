// Thin shim kept for script compatibility: the figure moved to the
// campaign registry (bench/figures/fig05.cpp).  `cci_bench fig05` is the
// primary entry point; this binary forwards its arguments there.
#include "bench/registry.hpp"

int main(int argc, char** argv) { return cci::bench::run_cli("fig05", argc - 1, argv + 1); }
