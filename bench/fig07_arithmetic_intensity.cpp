// Fig. 7 — impact of memory pressure (tunable arithmetic intensity) on
// network performance: the cursor-modified TRIAD swept from memory-bound
// to CPU-bound, with 35 computing cores on henri.
#include "bench/common.hpp"
#include "kernels/tunable_triad.hpp"

using namespace cci;

namespace {

void run_panel(const char* name, std::size_t bytes) {
  std::cout << "--- " << name << " ---\n";
  bool latency_panel = bytes <= 4096;
  trace::Table t({"ai_flop_per_B", "cursor", latency_panel ? "lat_alone_us" : "bw_alone_GBps",
                  latency_panel ? "lat_together_us" : "bw_together_GBps",
                  "compute_alone_ms", "compute_together_ms"});
  for (double ai : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0, 40.0, 70.0, 100.0}) {
    int cursor = kernels::TunableTriad::cursor_for_intensity(ai);
    core::Scenario s;
    s.kernel = kernels::TunableTriad(16, cursor).traits();
    s.comm_thread = core::Placement::kFarFromNic;
    s.data = core::Placement::kNearNic;
    s.computing_cores = 35;
    s.message_bytes = bytes;
    // Long enough that many ping-pong iterations overlap the computation
    // even in the CPU-bound regime (the 64 MB transfers take ~40 ms under
    // full contention).
    s.compute_repetitions = latency_panel ? 4 : 8;
    s.target_pass_seconds = latency_panel ? 0.02 : 0.08;
    s.pingpong_iterations = latency_panel ? 20 : 4;
    s.pingpong_warmup = latency_panel ? 3 : 1;
    auto r = core::InterferenceLab(s).run();
    double alone = latency_panel ? sim::to_usec(r.comm_alone.latency.median)
                                 : r.comm_alone.bandwidth.median / 1e9;
    double together = latency_panel ? sim::to_usec(r.comm_together.latency.median)
                                    : r.comm_together.bandwidth.median / 1e9;
    t.add_row({ai, static_cast<double>(cursor), alone, together,
               sim::to_msec(r.compute_alone.pass_duration.median),
               sim::to_msec(r.compute_together.pass_duration.median)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::banner("Fig. 7", "memory pressure vs network performance (tunable-AI TRIAD, 35 cores)");
  run_panel("Fig. 7a: latency (4 B messages)", 4);
  run_panel("Fig. 7b: bandwidth (64 MB messages)", 64 << 20);
  std::cout << "Paper (henri): below ~6 flop/B the program is memory-bound — latency\n"
               "doubles, bandwidth drops ~60%, computation slowed ~10% by the 64 MB\n"
               "transfers; above 6 flop/B communication returns to nominal.\n";
  return 0;
}
