// cci_bench — one multi-tool binary for every migrated paper figure:
//   cci_bench --list
//   cci_bench fig04 --jobs 8 --csv out.csv --cache ~/.cache/cci
// The per-figure binaries still exist as thin shims over the same registry.
#include "bench/registry.hpp"

int main(int argc, char** argv) { return cci::bench::main_cli(argc, argv); }
