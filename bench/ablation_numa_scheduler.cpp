// Ablation: the paper's future-work NUMA-aware task scheduler vs the
// default FIFO, on the distributed CG application.
#include "bench/common.hpp"
#include "runtime/apps.hpp"

using namespace cci;

int main() {
  bench::banner("Ablation", "NUMA-aware task scheduling vs FIFO (distributed CG)");

  auto machine = hw::MachineConfig::henri();
  auto np = net::NetworkParams::ib_edr();

  trace::Table t({"scheduler", "workers", "makespan_ms", "send_bw_GBps", "stall_pct"});
  for (int workers : {8, 16, 34}) {
    for (bool numa : {false, true}) {
      auto cfg = runtime::RuntimeConfig::for_machine("henri");
      cfg.numa_aware_scheduling = numa;
      runtime::CgAppOptions opt;
      opt.n = 32768;
      opt.iterations = 3;
      opt.workers = workers;
      auto r = runtime::run_cg_app(machine, np, cfg, opt);
      t.add_text_row({numa ? "numa-aware" : "fifo", std::to_string(workers),
                      trace::fmt(r.makespan * 1e3, 3),
                      trace::fmt(r.sending_bw / 1e9, 2),
                      trace::fmt(100.0 * r.stall_fraction, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe NUMA-aware scheduler keeps GEMV chunks on cores local to their\n"
               "rows, removing cross-socket traffic; the paper's conclusion proposes\n"
               "exactly this as a mitigation for the measured interference.\n";
  return 0;
}
