// Ablation: automatic worker-count selection (the paper's future-work
// proposal) on CG and GEMM.
#include "bench/common.hpp"
#include "runtime/advisor.hpp"
#include "runtime/apps.hpp"

using namespace cci;

int main() {
  bench::banner("Ablation", "automatic worker-count selection (future work of the paper)");

  auto machine = hw::MachineConfig::henri();
  auto np = net::NetworkParams::ib_edr();
  auto rt_cfg = runtime::RuntimeConfig::for_machine("henri");

  auto report_for = [&](const char* app, const std::function<double(int)>& makespan) {
    auto report = runtime::select_worker_count(makespan, 34);
    trace::Table t({"workers_tried", "makespan_ms"});
    for (const auto& s : report.samples)
      t.add_row({static_cast<double>(s.workers), s.makespan * 1e3});
    std::cout << "--- " << app << " ---\n";
    t.print(std::cout);
    std::cout << "chosen: " << report.best_workers << " workers ("
              << trace::format_time(report.best_makespan) << ")\n\n";
  };

  report_for("CG n=32768", [&](int workers) {
    runtime::CgAppOptions opt;
    opt.n = 32768;
    opt.iterations = 3;
    opt.workers = workers;
    return runtime::run_cg_app(machine, np, rt_cfg, opt).makespan;
  });
  report_for("GEMM m=4096", [&](int workers) {
    runtime::GemmAppOptions opt;
    opt.m = 4096;
    opt.tile = 512;
    opt.workers = workers;
    return runtime::run_gemm_app(machine, np, rt_cfg, opt).makespan;
  });

  std::cout << "CG saturates the memory bus early: extra workers past the knee add\n"
               "contention, not speed.  GEMM keeps scaling to the full machine.\n";
  return 0;
}
