// §5.2 + Fig. 8 — task-runtime overhead on communications, and the impact
// of data locality / comm-thread placement through the runtime.
#include "bench/common.hpp"
#include "mpi/pingpong.hpp"
#include "runtime/rt_pingpong.hpp"

using namespace cci;

namespace {

double median_of(std::vector<double> v) {
  return trace::Stats::of(std::move(v)).median;
}

double raw_latency(const hw::MachineConfig& m, const net::NetworkParams& np) {
  net::Cluster cluster(m, np);
  mpi::World world(cluster, {{0, -1}, {1, -1}});
  mpi::PingPongOptions opt;
  opt.bytes = 4;
  mpi::PingPong pp(world, 0, 1, opt);
  pp.start();
  cluster.engine().run();
  return median_of(pp.latencies());
}

double rt_latency(const hw::MachineConfig& m, const net::NetworkParams& np,
                  int comm_core = -1, int data_numa = 0) {
  net::Cluster cluster(m, np);
  mpi::World world(cluster, {{0, comm_core}, {1, comm_core}});
  runtime::RuntimeConfig cfg = runtime::RuntimeConfig::for_machine(m.name);
  cfg.workers_paused = true;  // isolate the stack overhead (§5.2)
  runtime::Runtime rt0(world, 0, cfg);
  runtime::Runtime rt1(world, 1, cfg);
  runtime::RtPingPongOptions opt;
  opt.bytes = 4;
  opt.data_numa_a = data_numa;
  opt.data_numa_b = data_numa;
  runtime::RtPingPong pp(rt0, rt1, opt);
  pp.start();
  cluster.engine().run();
  return median_of(pp.latencies());
}

}  // namespace

int main() {
  bench::banner("Fig. 8 / §5.2", "runtime software-stack overhead and locality, via the runtime");

  std::cout << "--- §5.2: latency overhead of the task runtime (us) ---\n";
  trace::Table t({"machine", "raw_MPI_us", "runtime_us", "overhead_us", "paper_overhead_us"});
  struct M { const char* name; hw::MachineConfig cfg; double paper; };
  M machines[] = {{"henri", hw::MachineConfig::henri(), 38.0},
                  {"billy", hw::MachineConfig::billy(), 23.0},
                  {"pyxis", hw::MachineConfig::pyxis(), 45.0}};
  for (auto& m : machines) {
    auto np = net::NetworkParams::for_machine(m.name);
    double raw = raw_latency(m.cfg, np);
    double rt = rt_latency(m.cfg, np);
    t.add_text_row({m.name, trace::fmt(sim::to_usec(raw), 2),
                    trace::fmt(sim::to_usec(rt), 2),
                    trace::fmt(sim::to_usec(rt - raw), 2),
                    trace::fmt(m.paper, 1)});
  }
  t.print(std::cout);

  std::cout << "\n--- Fig. 8: data locality x comm-thread placement (henri, runtime) ---\n";
  auto henri = hw::MachineConfig::henri();
  auto np = net::NetworkParams::ib_edr();
  trace::Table f8({"data", "comm_thread", "latency_us"});
  struct Combo { const char* d; const char* c; int numa; int core; };
  Combo combos[] = {{"close", "close", 0, 8},
                    {"close", "far", 0, 35},
                    {"far", "close", 3, 8},
                    {"far", "far", 3, 35}};
  for (auto& c : combos) {
    double lat = rt_latency(henri, np, c.core, c.numa);
    f8.add_text_row({c.d, c.c, trace::fmt(sim::to_usec(lat), 2)});
  }
  f8.print(std::cout);
  std::cout << "\nPaper: what matters most is that the data and the communication thread\n"
               "are on the same NUMA node; the runtime does not additionally degrade\n"
               "bandwidth.\n";
  return 0;
}
