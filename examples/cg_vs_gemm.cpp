// CG vs GEMM on a task runtime over two nodes (§6, Fig. 10): how the
// arithmetic intensity of the application kernel decides whether adding
// workers strangles the network.
#include <iostream>

#include "runtime/apps.hpp"
#include "trace/table.hpp"

int main() {
  using namespace cci;
  auto machine = hw::MachineConfig::henri();
  auto np = net::NetworkParams::ib_edr();
  auto rt_cfg = runtime::RuntimeConfig::for_machine("henri");

  std::cout << "Distributed CG vs GEMM on 2 simulated henri nodes\n"
               "(mini StarPU-like runtime: workers, polling, comm thread)\n\n";

  trace::Table t({"app", "workers", "makespan_ms", "send_bw_GBps", "mem_stall_pct", "tasks"});
  for (int workers : {4, 16, 34}) {
    runtime::CgAppOptions cg;
    cg.n = 32768;
    cg.iterations = 3;
    cg.workers = workers;
    auto rc = runtime::run_cg_app(machine, np, rt_cfg, cg);
    t.add_text_row({"CG", std::to_string(workers),
                    trace::fmt(rc.makespan * 1e3, 3),
                    trace::fmt(rc.sending_bw / 1e9, 2),
                    trace::fmt(100.0 * rc.stall_fraction, 1),
                    std::to_string(rc.tasks)});

    runtime::GemmAppOptions gm;
    gm.m = 4096;
    gm.tile = 512;
    gm.workers = workers;
    auto rg = runtime::run_gemm_app(machine, np, rt_cfg, gm);
    t.add_text_row({"GEMM", std::to_string(workers),
                    trace::fmt(rg.makespan * 1e3, 3),
                    trace::fmt(rg.sending_bw / 1e9, 2),
                    trace::fmt(100.0 * rg.stall_fraction, 1),
                    std::to_string(rg.tasks)});
  }
  t.print(std::cout);

  std::cout << "\nReading the table: CG (0.25 flop/B) saturates the memory bus as\n"
               "workers grow — stalls rise, the p-exchange bandwidth collapses.\n"
               "GEMM (~43 flop/B at 512 tiles) stays pipeline-bound: the panels\n"
               "ship at full speed no matter how many workers compute.\n";
  return 0;
}
