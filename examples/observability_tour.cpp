// Observability tour: the cross-layer metrics registry and span tracer
// (src/obs), plus the hardware counters (the pmu-tools substitute) and
// frequency residency — the instruments behind Fig. 2/3/10.
//
// The tour enables the global obs::Registry up front, runs a small
// task-DAG workload, dumps every metric the layers recorded, and writes
// a Chrome trace file (open it at https://ui.perfetto.dev).
#include <iostream>

#include "hw/counters.hpp"
#include "kernels/stream.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "trace/metrics_table.hpp"
#include "trace/table.hpp"

int main() {
  using namespace cci;
  // Turn on metrics + tracing before any instrumented object is built, so
  // constructors see the enabled registry and cache live handles.
  obs::Registry::global().set_enabled(true);
  obs::Registry::global().tracer().set_enabled(true);

  net::Cluster cluster(hw::MachineConfig::henri(), net::NetworkParams::ib_edr());
  mpi::World world(cluster, {{0, -1}, {1, -1}});

  hw::CounterSampler counters(cluster.machine(0), 0.5e-3);
  counters.start();

  runtime::RuntimeConfig cfg = runtime::RuntimeConfig::for_machine("henri");
  cfg.workers = 8;
  runtime::Runtime rt(world, 0, cfg);
  rt.enable_execution_trace(true);
  hw::KernelTraits triad = kernels::triad_traits();
  // A small diamond DAG: fan-out of STREAM chunks, then a join.
  runtime::Task* head = rt.add_task({"seed", triad, 5e6}, 0);
  std::vector<runtime::Task*> mids;
  for (int i = 0; i < 8; ++i) {
    runtime::Task* m = rt.add_task({"chunk" + std::to_string(i), triad, 2e7}, i % 4);
    runtime::Runtime::add_dependency(head, m);
    mids.push_back(m);
  }
  runtime::Task* tail = rt.add_task({"join", triad, 5e6}, 0);
  for (auto* m : mids) runtime::Runtime::add_dependency(m, tail);

  auto& done = rt.run();
  cluster.engine().spawn([](runtime::Runtime& r, sim::OneShotEvent& d,
                            hw::CounterSampler& c) -> sim::Coro {
    co_await d;
    r.shutdown();
    c.stop();
  }(rt, done, counters));
  cluster.engine().run();

  std::cout << "Task execution trace (Gantt rows):\n";
  trace::Table gantt({"task", "core", "data_numa", "start_ms", "end_ms"});
  for (const auto& rec : rt.execution_trace())
    gantt.add_text_row({rec.name, std::to_string(rec.core), std::to_string(rec.data_numa),
                        trace::fmt(rec.start * 1e3, 3),
                        trace::fmt(rec.end * 1e3, 3)});
  gantt.print(std::cout);

  std::cout << "\nMemory-controller counters (node 0):\n";
  trace::Table ctrl({"numa", "mean_util", "peak_pressure", "GB_moved"});
  for (int n = 0; n < 4; ++n) {
    auto s = counters.mem_ctrl_stats(n);
    ctrl.add_text_row({std::to_string(n), trace::fmt(s.mean_utilization, 2),
                       trace::fmt(s.peak_pressure, 2),
                       trace::fmt(s.bytes_transferred / 1e9, 3)});
  }
  ctrl.print(std::cout);

  std::cout << "\nFrequency residency of core 0 (seconds at each frequency):\n";
  for (auto& [freq, seconds] : counters.freq_residency(0))
    std::cout << "  " << freq / 1e9 << " GHz : " << trace::format_time(seconds) << "\n";

  // Everything above was also captured by the cross-layer registry: dump
  // it (name-sorted, deterministic) and export the span timeline.
  std::cout << "\nCross-layer metrics registry (obs::Registry snapshot):\n";
  trace::metrics_table(obs::Registry::global().snapshot()).print(std::cout);

  const std::string trace_path = "observability_tour.trace.json";
  obs::write_chrome_trace_file(trace_path, obs::Registry::global());
  const auto& tracer = obs::Registry::global().tracer();
  std::cout << "\nChrome trace: " << tracer.spans().size() << " spans on "
            << tracer.track_names().size() << " tracks -> " << trace_path
            << " (load in https://ui.perfetto.dev)\n";
  return 0;
}
