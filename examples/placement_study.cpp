// Placement study: where should the communication thread and the data
// live, relative to the NIC?  (The decision §4.3 / Table 1 informs.)
//
// Sweeps the four placement combinations for a user-supplied workload and
// recommends the binding with the best combined outcome.
#include <iostream>

#include "core/interference_lab.hpp"
#include "kernels/stream.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace cci;

  int cores = argc > 1 ? std::atoi(argv[1]) : 18;
  std::cout << "Placement study on simulated henri nodes, " << cores
            << " computing cores (pass a core count as argv[1])\n\n";

  trace::Table table({"data", "comm_thread", "latency_us", "bandwidth_GBps",
                      "stream_GBps_per_core"});
  double best_score = 0.0;
  std::string best;
  for (auto data : {core::Placement::kNearNic, core::Placement::kFarFromNic}) {
    for (auto thread : {core::Placement::kNearNic, core::Placement::kFarFromNic}) {
      core::Scenario s;
      s.kernel = kernels::triad_traits();
      s.computing_cores = cores;
      s.data = data;
      s.comm_thread = thread;
      s.message_bytes = 4;
      auto lat = core::InterferenceLab(s).run();

      s.message_bytes = 64 << 20;
      s.pingpong_iterations = 4;
      s.pingpong_warmup = 1;
      auto bw = core::InterferenceLab(s).run();

      double latency = lat.comm_together.latency.median;
      double bandwidth = bw.comm_together.bandwidth.median;
      double stream = bw.compute_together.per_core_bandwidth.median;
      table.add_text_row({to_string(data), to_string(thread),
                          trace::fmt(sim::to_usec(latency), 2),
                          trace::fmt(bandwidth / 1e9, 2),
                          trace::fmt(stream / 1e9, 2)});
      // Combined figure of merit: bandwidth and latency both matter.
      double score = bandwidth / 1e9 + 1.0 / sim::to_usec(latency) * 5.0 + stream / 1e9;
      if (score > best_score) {
        best_score = score;
        best = std::string("data ") + to_string(data) + " NIC, comm thread " +
               to_string(thread) + " NIC";
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nRecommended binding for this workload: " << best << "\n";
  std::cout << "(paper: keep the comm thread near the NIC for latency; keep the\n"
               "transferred data near the NIC for bandwidth)\n";
  return 0;
}
