// Real kernels demo: every workload that parameterizes the simulator is a
// genuine, runnable implementation.  This executes them on the host,
// verifies their results and prints the measured performance next to the
// traits handed to the simulator.
#include <chrono>
#include <cmath>
#include <iostream>

#include "kernels/cg.hpp"
#include "kernels/dense.hpp"
#include "kernels/primes.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"
#include "kernels/vecflops.hpp"
#include "trace/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace cci;
  using Clock = std::chrono::steady_clock;
  std::cout << "Host execution of the kernel library (values are this machine's,\n"
               "not the simulated cluster's):\n\n";
  trace::Table t({"kernel", "verified", "host_metric", "sim_traits (flops/B per iter)"});

  {
    kernels::StreamArrays s(1 << 22);
    auto t0 = Clock::now();
    std::size_t bytes = 0;
    for (int i = 0; i < 5; ++i) bytes += s.triad();
    double bw = static_cast<double>(bytes) / seconds_since(t0);
    t.add_text_row({"STREAM TRIAD", s.verify_triad() ? "yes" : "NO",
                    trace::format_bw(bw), "2 flop / 24 B"});
  }
  {
    kernels::TunableTriad tt(1 << 20, 72);  // AI = 6 flop/B, henri's boundary
    auto t0 = Clock::now();
    std::size_t flops = tt.run();
    double gf = static_cast<double>(flops) / seconds_since(t0) / 1e9;
    t.add_text_row({"TRIAD cursor=72", tt.verify() ? "yes" : "NO",
                    trace::fmt(gf, 2) + " Gflop/s", "144 flop / 24 B (AI 6)"});
  }
  {
    auto t0 = Clock::now();
    std::uint64_t primes = kernels::count_primes(2, 200000);
    double sec = seconds_since(t0);
    t.add_text_row({"prime counting", primes == 17984 ? "yes" : "NO",
                    trace::fmt(sec * 1e3, 2) + " ms for [2,2e5)",
                    "4 flop-eq / 0 B (CPU-bound)"});
  }
  {
    kernels::VecFlops v;
    auto t0 = Clock::now();
    double checksum = v.run(2'000'000);
    double gf = 2e6 * 16.0 / seconds_since(t0) / 1e9;
    t.add_text_row({"vector FMA burn", std::isfinite(checksum) ? "yes" : "NO",
                    trace::fmt(gf, 2) + " Gflop/s", "16 flop / 0 B (AVX512)"});
  }
  {
    const std::size_t n = 256;
    kernels::Matrix a(n, n), b(n, n), c1(n, n), c2(n, n);
    a.randomize(1);
    b.randomize(2);
    auto t0 = Clock::now();
    kernels::gemm_blocked(a, b, c1, 64);
    double gf = 2.0 * n * n * n / seconds_since(t0) / 1e9;
    kernels::gemm_naive(a, b, c2);
    bool ok = c1.frobenius_distance(c2) < 1e-9;
    t.add_text_row({"blocked GEMM", ok ? "yes" : "NO",
                    trace::fmt(gf, 2) + " Gflop/s",
                    "2t^3 flop / 24t^2 B per tile"});
  }
  {
    auto a = kernels::CsrMatrix::laplacian2d(96);
    std::vector<double> b(a.n, 1.0), x(a.n, 0.0);
    auto t0 = Clock::now();
    auto res = kernels::cg_solve_csr(a, b, x, 1e-8, 2000);
    double sec = seconds_since(t0);
    t.add_text_row({"CG (CSR Laplacian)", res.converged ? "yes" : "NO",
                    std::to_string(res.iterations) + " iters, " +
                        trace::fmt(sec * 1e3, 2) + " ms",
                    "2 flop / 8 B (GEMV, AI 0.25)"});
  }
  t.print(std::cout);
  std::cout << "\nThese traits are exactly what hw::make_compute_spec() feeds the\n"
               "roofline-coupled activities in the simulator.\n";
  return 0;
}
