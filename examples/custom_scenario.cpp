// Command-line scenario runner: compose your own interference experiment.
//
//   ./custom_scenario [--machine henri|bora|billy|pyxis]
//                     [--kernel triad|copy|primes|avx|stencil|ai=<flop/B>]
//                     [--cores N] [--bytes N]
//                     [--data near|far] [--comm-thread near|far]
//
// Runs the three-phase protocol and prints the full result record.
#include <cstring>
#include <iostream>
#include <string>

#include "core/interference_lab.hpp"
#include "kernels/primes.hpp"
#include "kernels/stencil.hpp"
#include "kernels/stream.hpp"
#include "kernels/tunable_triad.hpp"
#include "kernels/vecflops.hpp"
#include "trace/table.hpp"

namespace {

void print_phase(const char* name, const cci::core::CommPhase& comm) {
  std::cout << "  " << name << ": latency " << cci::trace::format_time(comm.latency.median)
            << " [" << cci::trace::format_time(comm.latency.decile1) << ", "
            << cci::trace::format_time(comm.latency.decile9) << "]  bandwidth "
            << cci::trace::format_bw(comm.bandwidth.median) << "\n";
}

int usage() {
  std::cerr << "usage: custom_scenario [--machine M] [--kernel K] [--cores N]\n"
               "                       [--bytes N] [--data near|far] [--comm-thread near|far]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cci;
  core::Scenario s;
  s.kernel = kernels::triad_traits();
  s.computing_cores = 16;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 6;
  s.pingpong_warmup = 2;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--machine") {
      std::string m = next();
      if (m == "henri") s.machine = hw::MachineConfig::henri();
      else if (m == "bora") s.machine = hw::MachineConfig::bora();
      else if (m == "billy") s.machine = hw::MachineConfig::billy();
      else if (m == "pyxis") s.machine = hw::MachineConfig::pyxis();
      else return usage();
      s.network = net::NetworkParams::for_machine(m);
    } else if (arg == "--kernel") {
      std::string k = next();
      if (k == "triad") s.kernel = kernels::triad_traits();
      else if (k == "copy") s.kernel = kernels::copy_traits();
      else if (k == "primes") s.kernel = kernels::prime_traits();
      else if (k == "avx") s.kernel = kernels::VecFlops::traits();
      else if (k == "stencil") s.kernel = kernels::Stencil3D::traits();
      else if (k.rfind("ai=", 0) == 0) {
        int cursor = kernels::TunableTriad::cursor_for_intensity(std::stod(k.substr(3)));
        s.kernel = kernels::TunableTriad(16, cursor).traits();
      } else return usage();
    } else if (arg == "--cores") {
      s.computing_cores = std::stoi(next());
    } else if (arg == "--bytes") {
      s.message_bytes = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--data") {
      s.data = next() == "far" ? core::Placement::kFarFromNic : core::Placement::kNearNic;
    } else if (arg == "--comm-thread") {
      s.comm_thread = next() == "far" ? core::Placement::kFarFromNic : core::Placement::kNearNic;
    } else {
      return usage();
    }
  }

  std::cout << "scenario: " << s.machine.name << ", kernel " << s.kernel.name << " (AI "
            << s.kernel.arithmetic_intensity() << " flop/B), " << s.computing_cores
            << " computing cores, " << trace::format_bytes(static_cast<double>(s.message_bytes))
            << " messages, data " << to_string(s.data) << " NIC, comm thread "
            << to_string(s.comm_thread) << " NIC\n\n";

  core::InterferenceLab lab(s);
  auto r = lab.run();
  std::cout << "communication:\n";
  print_phase("alone   ", r.comm_alone);
  print_phase("together", r.comm_together);
  std::cout << "computation:\n";
  std::cout << "  alone   : pass " << trace::format_time(r.compute_alone.pass_duration.median)
            << ", per-core bw " << trace::format_bw(r.compute_alone.per_core_bandwidth.median)
            << ", mem-stall " << static_cast<int>(100 * r.compute_alone.mem_stall_fraction)
            << "%\n";
  std::cout << "  together: pass " << trace::format_time(r.compute_together.pass_duration.median)
            << ", per-core bw " << trace::format_bw(r.compute_together.per_core_bandwidth.median)
            << ", mem-stall " << static_cast<int>(100 * r.compute_together.mem_stall_fraction)
            << "%\n";
  return 0;
}
