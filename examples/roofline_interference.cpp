// Roofline interference explorer: at what arithmetic intensity does your
// computation stop hurting the network?  (§4.5 made operational.)
//
// Bisects the tunable-TRIAD cursor to find the AI where communication
// recovers 90% of its nominal bandwidth, on any machine preset.
#include <iostream>

#include "core/interference_lab.hpp"
#include "kernels/tunable_triad.hpp"
#include "trace/table.hpp"

namespace {

double bandwidth_ratio(const cci::hw::MachineConfig& machine, double ai, int cores) {
  using namespace cci;
  core::Scenario s;
  s.machine = machine;
  s.network = net::NetworkParams::for_machine(machine.name);
  int cursor = kernels::TunableTriad::cursor_for_intensity(ai);
  s.kernel = kernels::TunableTriad(16, cursor).traits();
  s.computing_cores = cores;
  s.message_bytes = 64 << 20;
  s.pingpong_iterations = 4;
  s.pingpong_warmup = 1;
  s.compute_repetitions = 6;
  s.target_pass_seconds = 0.08;
  auto r = core::InterferenceLab(s).run();
  return r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median;
}

}  // namespace

int main() {
  using namespace cci;
  std::cout << "Roofline interference explorer: the arithmetic-intensity boundary\n"
               "where communications recover (>=90% of nominal bandwidth)\n\n";

  trace::Table table({"machine", "cores", "boundary_flop_per_B", "paper_flop_per_B"});
  struct Target { hw::MachineConfig cfg; double paper; };
  for (const Target& t : {Target{hw::MachineConfig::henri(), 6.0},
                          Target{hw::MachineConfig::billy(), 20.0}}) {
    int cores = t.cfg.total_cores() - 1;
    double lo = 0.25, hi = 256.0;
    // Bisection on log scale; ratio(ai) is monotone in this range.
    for (int step = 0; step < 12; ++step) {
      double mid = std::sqrt(lo * hi);
      if (bandwidth_ratio(t.cfg, mid, cores) >= 0.9) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    table.add_text_row({t.cfg.name, std::to_string(cores),
                        trace::fmt(hi, 2), trace::fmt(t.paper, 1)});
  }
  table.print(std::cout);
  std::cout << "\nKernels below the boundary (memory-bound) will fight your MPI traffic;\n"
               "above it they coexist.  The paper locates the boundary at ~6 flop/B on\n"
               "henri and ~20 flop/B on billy (§4.5).\n";
  return 0;
}
