// Quickstart: measure communication/computation interference on a
// simulated henri pair in ~30 lines of API.
//
//   $ ./quickstart
//
// Builds the paper's three-phase protocol (§2.1): computation alone,
// communication alone, both side by side — and prints how much each side
// loses to the other.
#include <iostream>

#include "core/interference_lab.hpp"
#include "kernels/stream.hpp"
#include "trace/table.hpp"

int main() {
  using namespace cci;

  core::Scenario scenario;                             // henri + InfiniBand EDR defaults
  scenario.kernel = kernels::triad_traits();           // STREAM TRIAD on the compute cores
  scenario.computing_cores = 35;                       // all cores but the comm core
  scenario.comm_thread = core::Placement::kFarFromNic; // §4.2 reference placement
  scenario.data = core::Placement::kNearNic;
  scenario.message_bytes = 64 << 20;                   // asymptotic bandwidth messages
  scenario.pingpong_iterations = 6;
  scenario.pingpong_warmup = 2;

  core::InterferenceLab lab(scenario);
  core::SideBySideResult r = lab.run();

  std::cout << "cci-lab quickstart — STREAM TRIAD vs 64 MB ping-pong on simulated "
            << scenario.machine.name << " nodes\n\n";
  std::cout << "network bandwidth alone    : "
            << trace::format_bw(r.comm_alone.bandwidth.median) << "\n";
  std::cout << "network bandwidth together : "
            << trace::format_bw(r.comm_together.bandwidth.median) << "  ("
            << static_cast<int>(100.0 * (1.0 - r.comm_together.bandwidth.median /
                                                   r.comm_alone.bandwidth.median))
            << "% lost to memory contention)\n\n";
  std::cout << "STREAM per-core bw alone    : "
            << trace::format_bw(r.compute_alone.per_core_bandwidth.median) << "\n";
  std::cout << "STREAM per-core bw together : "
            << trace::format_bw(r.compute_together.per_core_bandwidth.median) << "  ("
            << static_cast<int>(100.0 * (1.0 - r.compute_together.per_core_bandwidth.median /
                                                   r.compute_alone.per_core_bandwidth.median))
            << "% lost to the network)\n\n";
  std::cout << "Try: fewer computing cores, data/comm-thread placement "
               "(core::Placement), other machines (hw::MachineConfig::billy()...).\n";
  return 0;
}
