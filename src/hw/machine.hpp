// A simulated node: cores, NUMA memory controllers, on-chip links.
//
// Machine instantiates the config as FlowModel resources and provides path
// resolution (which resources a memory stream crosses) plus the
// queueing-delay model for individual memory transactions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/machine_config.hpp"
#include "sim/flow_model.hpp"

namespace cci::hw {

class FrequencyGovernor;

class Machine {
 public:
  /// Builds all resources inside `model`; `prefix` namespaces resource
  /// names so several nodes can share one model (e.g. "node0.").
  Machine(sim::FlowModel& model, MachineConfig config, std::string prefix = "");
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  sim::FlowModel& model() { return model_; }
  sim::Engine& engine() { return model_.engine(); }
  FrequencyGovernor& governor() { return *governor_; }

  /// Core resource: capacity is the core's current frequency in cycles/s.
  sim::Resource* core(int i) { return cores_.at(static_cast<std::size_t>(i)); }
  sim::Resource* mem_ctrl(int numa) { return mem_ctrls_.at(static_cast<std::size_t>(numa)); }
  /// Link between the two sockets (this model assumes dual-socket nodes).
  sim::Resource* cross_link() { return cross_link_; }
  /// Mesh between NUMA nodes of one socket; null when numa_per_socket == 1.
  sim::Resource* intra_link(int socket) {
    return intra_links_.empty() ? nullptr : intra_links_.at(static_cast<std::size_t>(socket));
  }

  /// Resources a sustained memory stream crosses from an agent on
  /// `from_numa` to data homed on `data_numa` (controller always included).
  [[nodiscard]] std::vector<sim::Resource*> mem_path(int from_numa, int data_numa);

  /// Latency of one dependent memory transaction from `from_numa` to data
  /// on `data_numa`, inflated by current demand pressure on the crossed
  /// resources.  This is the small-message/queueing side of contention.
  [[nodiscard]] double mem_access_latency(int from_numa, int data_numa) const;

  /// Queueing inflation factor for one resource: 1 + kappa*min(P,clamp)^2.
  [[nodiscard]] double inflation(const sim::Resource* r) const;

  /// Latency multiplier from the socket's current uncore frequency: 1.0 at
  /// max uncore, 1 + uncore_latency_penalty at min.
  [[nodiscard]] double uncore_latency_scale(int socket) const;

  /// Extra latency for crossing sockets (pressure-inflated), used by the
  /// PIO path when the communication thread is far from the NIC.
  [[nodiscard]] double cross_socket_hop_latency() const;

 private:
  friend class FrequencyGovernor;
  sim::FlowModel& model_;
  MachineConfig config_;
  std::string prefix_;
  std::vector<sim::Resource*> cores_;
  std::vector<sim::Resource*> mem_ctrls_;
  std::vector<sim::Resource*> intra_links_;
  sim::Resource* cross_link_ = nullptr;
  std::unique_ptr<FrequencyGovernor> governor_;
};

}  // namespace cci::hw
