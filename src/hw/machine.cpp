#include "hw/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hw/frequency_governor.hpp"

namespace cci::hw {

Machine::Machine(sim::FlowModel& model, MachineConfig config, std::string prefix)
    : model_(model), config_(std::move(config)), prefix_(std::move(prefix)) {
  assert(config_.sockets == 2 && "the node model assumes dual-socket machines");
  const int n_cores = config_.total_cores();
  cores_.reserve(static_cast<std::size_t>(n_cores));
  for (int i = 0; i < n_cores; ++i) {
    // Initial capacity: minimum frequency (idle, ondemand); the governor
    // re-applies policy immediately after construction.
    cores_.push_back(
        model_.add_resource(prefix_ + "core" + std::to_string(i), config_.core_freq_min_hz));
  }
  for (int n = 0; n < config_.numa_count(); ++n) {
    mem_ctrls_.push_back(
        model_.add_resource(prefix_ + "memctrl" + std::to_string(n), config_.mem_bw_per_numa));
  }
  if (config_.numa_per_socket > 1) {
    for (int s = 0; s < config_.sockets; ++s) {
      intra_links_.push_back(
          model_.add_resource(prefix_ + "mesh" + std::to_string(s), config_.intra_socket_bw));
    }
  }
  cross_link_ = model_.add_resource(prefix_ + "xsocket", config_.cross_socket_bw);
  governor_ = std::make_unique<FrequencyGovernor>(*this);
}

Machine::~Machine() = default;

std::vector<sim::Resource*> Machine::mem_path(int from_numa, int data_numa) {
  std::vector<sim::Resource*> path;
  path.push_back(mem_ctrl(data_numa));
  if (from_numa == data_numa) return path;
  if (config_.socket_of_numa(from_numa) == config_.socket_of_numa(data_numa)) {
    if (sim::Resource* mesh = intra_link(config_.socket_of_numa(from_numa))) path.push_back(mesh);
  } else {
    path.push_back(cross_link_);
  }
  return path;
}

double Machine::inflation(const sim::Resource* r) const {
  double p = std::min(r->pressure(), config_.queueing_pressure_clamp);
  return 1.0 + config_.queueing_kappa * p * p;
}

double Machine::uncore_latency_scale(int socket) const {
  double span = config_.uncore_freq_max_hz - config_.uncore_freq_min_hz;
  double u = governor_->uncore_freq(socket);
  double x = span > 0.0 ? (u - config_.uncore_freq_min_hz) / span : 1.0;
  x = std::clamp(x, 0.0, 1.0);
  return 1.0 + config_.uncore_latency_penalty * (1.0 - x);
}

double Machine::mem_access_latency(int from_numa, int data_numa) const {
  const sim::Resource* ctrl = mem_ctrls_.at(static_cast<std::size_t>(data_numa));
  // Controller/mesh queue pressure stretches accesses issued from the same
  // socket (they share the CHA ingress with the contending cores); remote
  // requesters feel contention through the inter-socket link instead.
  const bool same_socket =
      config_.socket_of_numa(from_numa) == config_.socket_of_numa(data_numa);
  double t = config_.mem_latency * (same_socket ? inflation(ctrl) : 1.0) *
             uncore_latency_scale(config_.socket_of_numa(data_numa));
  if (from_numa == data_numa) return t;
  if (same_socket) {
    // SNC hop: small constant, inflated by mesh pressure.
    const sim::Resource* mesh =
        intra_links_.at(static_cast<std::size_t>(config_.socket_of_numa(from_numa)));
    t += 0.25 * config_.cross_socket_latency * inflation(mesh);
  } else {
    t += config_.cross_socket_latency * inflation(cross_link_);
  }
  return t;
}

double Machine::cross_socket_hop_latency() const {
  return config_.cross_socket_latency * inflation(cross_link_);
}

}  // namespace cci::hw
