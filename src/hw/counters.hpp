// Hardware-counter sampling: the simulator's stand-in for pmu-tools (§6).
//
// A CounterSampler is a simulation process that periodically snapshots the
// machine's resources and governor, accumulating time-weighted histories:
// memory-controller utilization and pressure, link traffic, per-core
// frequency residency.  Experiments read the aggregates after the run,
// like `perf stat` counters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hw/frequency_governor.hpp"
#include "hw/machine.hpp"
#include "obs/metrics.hpp"

namespace cci::hw {

class CounterSampler {
 public:
  /// Samples every `period` seconds once start() is called.
  CounterSampler(Machine& machine, double period = 1e-3)
      : machine_(machine), period_(period) {}

  void start() {
    running_ = true;
    machine_.engine().spawn(sample_loop());
  }
  void stop() { running_ = false; }

  struct ResourceStats {
    double mean_utilization = 0.0;
    double mean_pressure = 0.0;
    double peak_pressure = 0.0;
    double bytes_transferred = 0.0;  ///< integral of load over time
  };

  [[nodiscard]] ResourceStats mem_ctrl_stats(int numa) const {
    return aggregate(ctrl_samples_.at(static_cast<std::size_t>(numa)));
  }
  [[nodiscard]] ResourceStats cross_link_stats() const { return aggregate(xlink_samples_); }

  /// Time-weighted frequency residency of one core: freq -> seconds.
  [[nodiscard]] std::map<double, double> freq_residency(int core) const;

  [[nodiscard]] std::size_t sample_count() const { return times_.size(); }

 private:
  struct Sample {
    double utilization;
    double pressure;
    double load;
  };

  sim::Coro sample_loop();
  [[nodiscard]] ResourceStats aggregate(const std::vector<Sample>& samples) const;

  Machine& machine_;
  double period_;
  bool running_ = false;
  std::vector<double> times_;
  std::vector<std::vector<Sample>> ctrl_samples_;  ///< [numa][sample]
  std::vector<Sample> xlink_samples_;
  std::vector<std::vector<double>> core_freqs_;  ///< [core][sample]

  // Observability: every sample also lands in the global registry (gauges
  // track the latest/peak pressure per controller; the tracer gets a
  // utilization counter series per controller).
  obs::Counter* obs_samples_ = nullptr;
  std::vector<obs::Gauge*> obs_ctrl_pressure_;
  std::vector<std::string> obs_ctrl_util_series_;
};

}  // namespace cci::hw
