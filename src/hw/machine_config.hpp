// Static description of a node type, calibrated from the paper's §2.2.
//
// Capacities are deliberately *plausible spec-sheet numbers*, not fitted
// constants: the reproduction targets shapes (onsets, crossovers, relative
// losses), which must emerge from the sharing model, not from tuning every
// figure independently.
#pragma once

#include <string>
#include <vector>

namespace cci::hw {

/// Instruction class executed by a core; selects the turbo licence and the
/// per-cycle flop throughput.
enum class VectorClass { kScalar, kSse, kAvx2, kAvx512, kNeon };

const char* to_string(VectorClass vc);

/// One row of a turbo table: with up to `max_active_cores` active cores on
/// the socket, cores running under this licence may clock at `freq_hz`.
struct TurboStep {
  int max_active_cores;
  double freq_hz;
};

struct MachineConfig {
  std::string name;

  // ---- topology ----------------------------------------------------------
  int sockets = 2;
  int numa_per_socket = 1;
  int cores_per_numa = 0;
  /// NUMA node to which the NIC's PCIe root is attached.
  int nic_numa = 0;

  // ---- core frequency ----------------------------------------------------
  double core_freq_min_hz = 0;      ///< lowest userspace setting
  double core_freq_nominal_hz = 0;  ///< base (non-turbo) frequency
  /// Turbo tables per licence, ordered by max_active_cores ascending.
  std::vector<TurboStep> turbo_scalar;
  std::vector<TurboStep> turbo_avx2;
  std::vector<TurboStep> turbo_avx512;
  /// The paper observes the communication core at a stable frequency (its
  /// duty cycle keeps the governor pinned); we reproduce that directly.
  double comm_core_freq_hz = 0;
  /// DVFS transition latency: time between a governor decision and the
  /// core actually clocking at the new frequency (voltage ramp; tens of
  /// microseconds on real parts).  0 = instantaneous (the default used by
  /// the figure benches; enable for ramp-delay studies).
  double dvfs_transition_latency = 0;

  // ---- uncore ------------------------------------------------------------
  double uncore_freq_min_hz = 0;
  double uncore_freq_max_hz = 0;
  /// Fraction of memory-controller capacity retained at minimum uncore
  /// frequency (LLC/mesh slowdown).
  double uncore_min_mem_scale = 0.75;
  /// Relative memory-latency penalty at minimum uncore frequency (LLC and
  /// mesh run slower, stretching each access).
  double uncore_latency_penalty = 0.25;

  // ---- flop throughput (per core, per cycle, double precision) -----------
  double flops_per_cycle_scalar = 2.0;   // 1 FMA pipe, scalar
  double flops_per_cycle_avx2 = 16.0;    // 2x 4-wide FMA
  double flops_per_cycle_avx512 = 32.0;  // 2x 8-wide FMA

  // ---- memory system -----------------------------------------------------
  /// Sustained STREAM-class bandwidth of one NUMA node's controller (B/s).
  double mem_bw_per_numa = 0;
  /// What a single core can pull on its own (MLP-limited), B/s.
  double per_core_mem_bw = 0;
  /// Inter-socket link (UPI / Infinity Fabric / CCPI), B/s.
  double cross_socket_bw = 0;
  /// Intra-socket link between NUMA nodes of one socket (SNC mesh), B/s.
  double intra_socket_bw = 0;
  /// Last-level cache per socket (bytes); working sets below this are
  /// served from cache (KernelTraits::dram_fraction).
  double llc_bytes_per_socket = 0;
  /// Uncontended DRAM access latency seen by a core or the NIC (s).
  double mem_latency = 0;
  /// Extra one-way latency when crossing the inter-socket link (s).
  double cross_socket_latency = 0;

  // ---- contention -> latency coupling ------------------------------------
  /// Queueing-delay inflation: a memory transaction crossing a resource
  /// with demand pressure P is stretched by 1 + kappa * min(P, clamp)^2.
  double queueing_kappa = 0.35;
  double queueing_pressure_clamp = 3.0;

  // ---- DMA weighting ------------------------------------------------------
  /// Sharing weight of NIC DMA flows against per-core memory streams
  /// (weight * demand = bytes/s per max-min scale unit; a core stream has
  /// weight*demand == 1).  1.2 puts the bandwidth-degradation onset at 3-4
  /// computing cores on henri, as in Fig. 4b; the asymptotic loss at full
  /// machine is then somewhat deeper than the paper's ~2/3 (weighted
  /// max-min cannot hit both ends at once — see DESIGN.md §5).
  double nic_dma_weight = 1.2;

  // ---- derived helpers ----------------------------------------------------
  [[nodiscard]] int numa_count() const { return sockets * numa_per_socket; }
  [[nodiscard]] int total_cores() const { return numa_count() * cores_per_numa; }
  [[nodiscard]] int socket_of_numa(int numa) const { return numa / numa_per_socket; }
  [[nodiscard]] int numa_of_core(int core) const { return core / cores_per_numa; }
  [[nodiscard]] int socket_of_core(int core) const { return socket_of_numa(numa_of_core(core)); }
  [[nodiscard]] double flops_per_cycle(VectorClass vc) const;
  /// Turbo frequency for `active` busy cores on a socket under `vc`.
  [[nodiscard]] double turbo_freq(VectorClass vc, int active) const;

  // ---- presets (paper §2.2) ------------------------------------------------
  /// Dual Xeon Gold 6140, 36 cores / 4 NUMA, InfiniBand ConnectX-4 EDR.
  static MachineConfig henri();
  /// Dual Xeon Gold 6240, 36 cores / 2 NUMA, Intel Omni-Path 100.
  static MachineConfig bora();
  /// Dual AMD EPYC 7502 (Zen2), 64 cores / 8 NUMA, InfiniBand ConnectX-6 HDR.
  static MachineConfig billy();
  /// Dual Cavium ThunderX2, 64 cores / 2 NUMA, InfiniBand ConnectX-6 EDR.
  static MachineConfig pyxis();
  /// All four presets, for sweeps across architectures.
  static std::vector<MachineConfig> all_presets();
};

}  // namespace cci::hw
