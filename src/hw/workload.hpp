// Kernel traits: the bridge between real kernels and simulated compute.
//
// A KernelTraits describes the per-iteration cost of an inner loop (flops,
// bytes moved to/from DRAM, instruction licence).  The kernels library
// derives these from its real implementations; make_compute_spec turns
// them into a roofline-coupled activity on a given core.
#pragma once

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "hw/machine.hpp"

namespace cci::hw {

struct KernelTraits {
  std::string name;
  double flops_per_iter = 0.0;
  /// DRAM traffic per iteration (bytes); zero for cache-resident kernels.
  double bytes_per_iter = 0.0;
  VectorClass vec = VectorClass::kScalar;
  /// Total working set (bytes).  0 = streaming/already-amortized traffic
  /// (bytes_per_iter hits DRAM as-is).  When set, the fraction of the
  /// working set that fits in the socket's LLC is served from cache and
  /// generates no bus traffic — see dram_fraction().
  double working_set_bytes = 0.0;

  [[nodiscard]] double arithmetic_intensity() const {
    return bytes_per_iter > 0.0 ? flops_per_iter / bytes_per_iter
                                : std::numeric_limits<double>::infinity();
  }

  /// Share of bytes_per_iter that actually reaches DRAM given an LLC of
  /// `llc_bytes`: 1 for streaming kernels, down to 0 when the working set
  /// is fully resident.
  [[nodiscard]] double dram_fraction(double llc_bytes) const {
    if (working_set_bytes <= 0.0 || llc_bytes <= 0.0) return 1.0;
    if (working_set_bytes <= llc_bytes) return 0.0;
    return 1.0 - llc_bytes / working_set_bytes;
  }
};

/// Core cycles needed per iteration: flop issue, floored by load/store
/// issue (a core cannot move more than ~64 B/cycle even with zero flops,
/// which is what prices pure-copy kernels).
inline double cycles_per_iter(const MachineConfig& cfg, const KernelTraits& k) {
  double flop_cycles = k.flops_per_iter / cfg.flops_per_cycle(k.vec);
  double lsu_cycles = k.bytes_per_iter / 64.0;
  return std::max({flop_cycles, lsu_cycles, 1e-3});
}

/// Build the activity spec for `iters` iterations of kernel `k` on `core`,
/// with its arrays homed on `data_numa`.  Progress couples the core's
/// cycle throughput with the memory path (roofline); the per-core memory
/// bandwidth cap models limited MLP of a single core.
inline sim::ActivitySpec make_compute_spec(Machine& machine, int core, int data_numa,
                                           const KernelTraits& k, double iters) {
  const MachineConfig& cfg = machine.config();
  sim::ActivitySpec spec;
  char label[96];
  std::snprintf(label, sizeof label, "%s@core%d", k.name.c_str(), core);
  spec.label = machine.engine().intern(label);
  spec.work = iters;
  spec.profile_class = sim::kClassCompute;
  spec.demands.push_back({machine.core(core), cycles_per_iter(cfg, k)});
  const double dram_bytes = k.bytes_per_iter * k.dram_fraction(cfg.llc_bytes_per_socket);
  if (dram_bytes > 0.0) {
    for (sim::Resource* r : machine.mem_path(cfg.numa_of_core(core), data_numa))
      spec.demands.push_back({r, dram_bytes});
    spec.rate_cap = cfg.per_core_mem_bw / dram_bytes;
    // Weight convention: weight * demand == bytes/s per unit of the max-min
    // scale, so one core's memory stream and one byte-granular transfer
    // flow with weight 1 receive equal DRAM shares under contention.
    spec.weight = 1.0 / dram_bytes;
  }
  return spec;
}

}  // namespace cci::hw
