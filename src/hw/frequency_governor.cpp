#include "hw/frequency_governor.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "hw/machine.hpp"

namespace cci::hw {

FrequencyGovernor::FrequencyGovernor(Machine& machine)
    : machine_(machine),
      state_(static_cast<std::size_t>(machine.config().total_cores()), CoreState::kIdle),
      vclass_(static_cast<std::size_t>(machine.config().total_cores()), VectorClass::kScalar),
      freq_(static_cast<std::size_t>(machine.config().total_cores()), 0.0),
      uncore_freq_(static_cast<std::size_t>(machine.config().sockets), 0.0),
      transition_gen_(static_cast<std::size_t>(machine.config().total_cores()), 0) {
  obs::Registry& reg = obs::Registry::global();
  char buf[128];
  obs_core_hz_.reserve(freq_.size());
  for (int c = 0; c < machine.config().total_cores(); ++c) {
    std::snprintf(buf, sizeof buf, "hw.freq.%score%d_hz", machine.prefix_.c_str(), c);
    obs_core_hz_.push_back(&reg.gauge(buf));
  }
  obs_uncore_hz_.reserve(uncore_freq_.size());
  for (int s = 0; s < machine.config().sockets; ++s) {
    std::snprintf(buf, sizeof buf, "hw.freq.%suncore%d_hz", machine.prefix_.c_str(), s);
    obs_uncore_hz_.push_back(&reg.gauge(buf));
  }
  recompute_all();
}

void FrequencyGovernor::set_policy(CpuPolicy policy) {
  policy_ = policy;
  recompute_all();
}

void FrequencyGovernor::set_turbo_enabled(bool enabled) {
  turbo_ = enabled;
  recompute_all();
}

void FrequencyGovernor::pin_core_freq(double hz) {
  policy_ = CpuPolicy::kUserspace;
  pinned_core_hz_ = hz;
  recompute_all();
}

void FrequencyGovernor::pin_uncore_freq(double hz) {
  pinned_uncore_hz_ = hz;
  recompute_all();
}

void FrequencyGovernor::core_busy(int core, VectorClass vc) {
  state_.at(static_cast<std::size_t>(core)) = CoreState::kBusy;
  vclass_.at(static_cast<std::size_t>(core)) = vc;
  recompute_socket(machine_.config().socket_of_core(core));
}

void FrequencyGovernor::core_idle(int core) {
  state_.at(static_cast<std::size_t>(core)) = CoreState::kIdle;
  recompute_socket(machine_.config().socket_of_core(core));
}

void FrequencyGovernor::core_comm(int core) {
  state_.at(static_cast<std::size_t>(core)) = CoreState::kComm;
  recompute_socket(machine_.config().socket_of_core(core));
}

int FrequencyGovernor::active_cores(int socket) const {
  const auto& cfg = machine_.config();
  int count = 0;
  for (int c = 0; c < cfg.total_cores(); ++c)
    if (cfg.socket_of_core(c) == socket && state_[static_cast<std::size_t>(c)] != CoreState::kIdle)
      ++count;
  return count;
}

void FrequencyGovernor::recompute_all() {
  for (int s = 0; s < machine_.config().sockets; ++s) recompute_socket(s);
}

void FrequencyGovernor::recompute_socket(int socket) {
  const auto& cfg = machine_.config();
  const int active = active_cores(socket);

  for (int c = 0; c < cfg.total_cores(); ++c) {
    if (cfg.socket_of_core(c) != socket) continue;
    const auto idx = static_cast<std::size_t>(c);
    double hz;
    if (policy_ == CpuPolicy::kUserspace) {
      hz = pinned_core_hz_ > 0.0 ? pinned_core_hz_ : cfg.core_freq_nominal_hz;
    } else {
      switch (state_[idx]) {
        case CoreState::kIdle:
          hz = policy_ == CpuPolicy::kPerformance ? cfg.core_freq_nominal_hz
                                                  : cfg.core_freq_min_hz;
          break;
        case CoreState::kComm:
          // Poll duty cycle holds the comm core at a stable mid frequency,
          // never above the socket's current turbo envelope.
          hz = std::min(cfg.comm_core_freq_hz,
                        turbo_ ? cfg.turbo_freq(VectorClass::kScalar, active)
                               : cfg.core_freq_nominal_hz);
          break;
        case CoreState::kBusy:
          hz = turbo_ ? cfg.turbo_freq(vclass_[idx], active)
                      : std::min(cfg.core_freq_nominal_hz,
                                 cfg.turbo_freq(vclass_[idx], active));
          break;
        default:
          hz = cfg.core_freq_nominal_hz;
      }
    }
    apply_core_freq(c, hz);
  }

  // Uncore: pinned, else ondemand on socket activity.
  double uhz = pinned_uncore_hz_ > 0.0
                   ? pinned_uncore_hz_
                   : (active > 0 ? cfg.uncore_freq_max_hz : cfg.uncore_freq_min_hz);
  apply_uncore(socket, uhz);
}

void FrequencyGovernor::apply_core_freq(int core, double hz) {
  auto idx = static_cast<std::size_t>(core);
  if (freq_[idx] == hz) {
    // Re-targeting the current operating point still cancels any ramp in
    // flight (e.g. busy->idle before the turbo transition landed).
    ++transition_gen_[idx];
    return;
  }
  const double ramp = machine_.config().dvfs_transition_latency;
  // Initial assignment (boot) is instantaneous; only runtime transitions ramp.
  if (ramp <= 0.0 || freq_[idx] == 0.0) {
    freq_[idx] = hz;
    machine_.core(core)->set_capacity(hz);
    obs_core_hz_[idx]->set(hz);
    if (trace_) trace_(core, hz);
    return;
  }
  // Voltage/frequency ramp: the new operating point lands after the
  // transition latency; a newer decision supersedes an in-flight one.
  const std::uint64_t gen = ++transition_gen_[idx];
  machine_.engine().call_in(ramp, [this, core, idx, hz, gen] {
    if (transition_gen_[idx] != gen) return;  // superseded
    freq_[idx] = hz;
    machine_.core(core)->set_capacity(hz);
    obs_core_hz_[idx]->set(hz);
    if (trace_) trace_(core, hz);
  });
}

void FrequencyGovernor::apply_uncore(int socket, double hz) {
  auto idx = static_cast<std::size_t>(socket);
  if (uncore_freq_[idx] == hz) return;
  uncore_freq_[idx] = hz;
  obs_uncore_hz_[idx]->set(hz);
  const auto& cfg = machine_.config();
  // Memory-controller capacity scales with uncore frequency.
  double span = cfg.uncore_freq_max_hz - cfg.uncore_freq_min_hz;
  double x = span > 0.0 ? (hz - cfg.uncore_freq_min_hz) / span : 1.0;
  x = std::clamp(x, 0.0, 1.0);
  double scale = cfg.uncore_min_mem_scale + (1.0 - cfg.uncore_min_mem_scale) * x;
  for (int n = 0; n < cfg.numa_count(); ++n) {
    if (cfg.socket_of_numa(n) != socket) continue;
    machine_.mem_ctrl(n)->set_capacity(cfg.mem_bw_per_numa * scale);
  }
  if (trace_) trace_(-1 - socket, hz);
}

}  // namespace cci::hw
