// Topology rendering: an lstopo-lite for simulated machines.
//
// The paper's placement discussion (§4.3, Table 1) is about where things
// sit relative to the NIC; this renders the machine tree (sockets, NUMA
// nodes, cores, NIC attachment) as text so scenarios can be eyeballed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hw/machine_config.hpp"

namespace cci::hw {

/// Render the machine tree:
///   Machine henri (36 cores, 4 NUMA nodes, 2 sockets)
///     Socket 0
///       NUMA 0 [NIC]  cores 0-8    mem 45.0 GB/s
///       ...
void print_topology(std::ostream& os, const MachineConfig& config);

/// One-line placement summary for a (comm core, data numa) choice, e.g.
/// "comm core 35 (socket 1, NUMA 3, far from NIC), data on NUMA 0 (near)".
std::string describe_placement(const MachineConfig& config, int comm_core, int data_numa);

}  // namespace cci::hw
