#include "hw/counters.hpp"

namespace cci::hw {

sim::Coro CounterSampler::sample_loop() {
  const auto& cfg = machine_.config();
  ctrl_samples_.resize(static_cast<std::size_t>(cfg.numa_count()));
  core_freqs_.resize(static_cast<std::size_t>(cfg.total_cores()));

  // The sampler is the registry's hardware feed: pmu-tools style counters
  // published under hw.* alongside the private aggregation vectors.
  obs::Registry& reg = obs::Registry::global();
  obs_samples_ = &reg.counter("hw.counters.samples");
  obs_ctrl_pressure_.clear();
  obs_ctrl_util_series_.clear();
  for (int n = 0; n < cfg.numa_count(); ++n) {
    const std::string name = machine_.mem_ctrl(n)->name();
    obs_ctrl_pressure_.push_back(&reg.gauge("hw." + name + ".pressure"));
    obs_ctrl_util_series_.push_back("hw." + name + ".utilization");
  }

  while (running_) {
    obs_samples_->add(1);
    times_.push_back(machine_.engine().now());
    for (int n = 0; n < cfg.numa_count(); ++n) {
      const sim::Resource* r = machine_.mem_ctrl(n);
      ctrl_samples_[static_cast<std::size_t>(n)].push_back(
          {r->utilization(), r->pressure(), r->load()});
      obs_ctrl_pressure_[static_cast<std::size_t>(n)]->set(r->pressure());
      reg.tracer().counter_sample(obs_ctrl_util_series_[static_cast<std::size_t>(n)],
                                  machine_.engine().now(), r->utilization());
    }
    const sim::Resource* x = machine_.cross_link();
    xlink_samples_.push_back({x->utilization(), x->pressure(), x->load()});
    for (int c = 0; c < cfg.total_cores(); ++c)
      core_freqs_[static_cast<std::size_t>(c)].push_back(machine_.governor().core_freq(c));
    co_await machine_.engine().sleep(period_);
  }
}

CounterSampler::ResourceStats CounterSampler::aggregate(
    const std::vector<Sample>& samples) const {
  ResourceStats out;
  if (samples.empty()) return out;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out.mean_utilization += samples[i].utilization;
    out.mean_pressure += samples[i].pressure;
    out.peak_pressure = std::max(out.peak_pressure, samples[i].pressure);
    if (i + 1 < samples.size())
      out.bytes_transferred += samples[i].load * (times_[i + 1] - times_[i]);
  }
  out.mean_utilization /= static_cast<double>(samples.size());
  out.mean_pressure /= static_cast<double>(samples.size());
  return out;
}

std::map<double, double> CounterSampler::freq_residency(int core) const {
  std::map<double, double> residency;
  const auto& freqs = core_freqs_.at(static_cast<std::size_t>(core));
  for (std::size_t i = 0; i + 1 < freqs.size(); ++i)
    residency[freqs[i]] += times_[i + 1] - times_[i];
  return residency;
}

}  // namespace cci::hw
