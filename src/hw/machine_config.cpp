#include "hw/machine_config.hpp"

#include <cassert>

namespace cci::hw {

const char* to_string(VectorClass vc) {
  switch (vc) {
    case VectorClass::kScalar: return "scalar";
    case VectorClass::kSse: return "sse";
    case VectorClass::kAvx2: return "avx2";
    case VectorClass::kAvx512: return "avx512";
    case VectorClass::kNeon: return "neon";
  }
  return "?";
}

double MachineConfig::flops_per_cycle(VectorClass vc) const {
  switch (vc) {
    case VectorClass::kScalar: return flops_per_cycle_scalar;
    case VectorClass::kSse: return flops_per_cycle_scalar * 2.0;
    case VectorClass::kAvx2: return flops_per_cycle_avx2;
    case VectorClass::kAvx512: return flops_per_cycle_avx512;
    case VectorClass::kNeon: return flops_per_cycle_avx2 / 2.0;
  }
  return flops_per_cycle_scalar;
}

double MachineConfig::turbo_freq(VectorClass vc, int active) const {
  const std::vector<TurboStep>* table = &turbo_scalar;
  if (vc == VectorClass::kAvx2) table = &turbo_avx2;
  if (vc == VectorClass::kAvx512) table = &turbo_avx512;
  if (table->empty()) return core_freq_nominal_hz;
  for (const TurboStep& step : *table)
    if (active <= step.max_active_cores) return step.freq_hz;
  return table->back().freq_hz;
}

MachineConfig MachineConfig::henri() {
  MachineConfig c;
  c.name = "henri";
  // Dual Intel Xeon Gold 6140 @ 2.3 GHz, 36 cores, sub-NUMA clustering on:
  // 4 NUMA nodes of 9 cores.  InfiniBand ConnectX-4 EDR on NUMA 0.
  c.sockets = 2;
  c.numa_per_socket = 2;
  c.cores_per_numa = 9;
  c.nic_numa = 0;
  c.core_freq_min_hz = 1.0e9;
  c.core_freq_nominal_hz = 2.3e9;
  c.turbo_scalar = {{2, 3.7e9}, {4, 3.5e9}, {8, 3.3e9}, {12, 3.1e9}, {18, 3.0e9}};
  c.turbo_avx2 = {{2, 3.5e9}, {4, 3.3e9}, {8, 3.0e9}, {12, 2.9e9}, {18, 2.8e9}};
  // Matches the paper's Fig. 3: 4 AVX512 cores run at 3.0 GHz, 20 at 2.3.
  c.turbo_avx512 = {{2, 3.5e9}, {4, 3.0e9}, {8, 2.7e9}, {18, 2.3e9}};
  c.comm_core_freq_hz = 2.5e9;  // observed stable in §3.3
  c.uncore_freq_min_hz = 1.2e9;
  c.uncore_freq_max_hz = 2.4e9;
  c.uncore_min_mem_scale = 0.75;
  c.flops_per_cycle_scalar = 2.0;
  c.flops_per_cycle_avx2 = 16.0;
  c.flops_per_cycle_avx512 = 32.0;
  // 6x DDR4-2666 per socket ~ 90 GB/s sustained; SNC halves it per node.
  c.mem_bw_per_numa = 45e9;
  c.per_core_mem_bw = 12e9;
  c.llc_bytes_per_socket = 25e6;  // 24.75 MB L3 (Skylake-SP 18c)
  c.cross_socket_bw = 38e9;  // 2x UPI 10.4 GT/s, sustained
  c.intra_socket_bw = 70e9;  // mesh between SNC halves
  c.mem_latency = 90e-9;
  c.cross_socket_latency = 70e-9;
  c.queueing_kappa = 0.35;
  c.queueing_pressure_clamp = 3.0;
  c.nic_dma_weight = 1.2;
  return c;
}

MachineConfig MachineConfig::bora() {
  MachineConfig c = henri();
  c.name = "bora";
  // Dual Intel Xeon Gold 6240 @ 2.6 GHz, 36 cores, 2 NUMA nodes.
  c.numa_per_socket = 1;
  c.cores_per_numa = 18;
  c.core_freq_nominal_hz = 2.6e9;
  c.turbo_scalar = {{2, 3.9e9}, {4, 3.7e9}, {8, 3.5e9}, {12, 3.3e9}, {18, 3.1e9}};
  c.turbo_avx2 = {{2, 3.7e9}, {4, 3.5e9}, {8, 3.2e9}, {12, 3.0e9}, {18, 2.9e9}};
  c.turbo_avx512 = {{2, 3.6e9}, {4, 3.1e9}, {8, 2.8e9}, {18, 2.4e9}};
  c.comm_core_freq_hz = 2.7e9;
  // Full socket behind one controller: contention onset moves later (the
  // paper sees bandwidth impact from ~20 cores instead of 3).
  c.mem_bw_per_numa = 100e9;
  c.per_core_mem_bw = 13e9;
  c.llc_bytes_per_socket = 25e6;
  c.intra_socket_bw = 100e9;  // unused (one NUMA per socket)
  return c;
}

MachineConfig MachineConfig::billy() {
  MachineConfig c;
  c.name = "billy";
  // Dual AMD EPYC 7502 (Zen2 Rome) @ 2.5 GHz, 64 cores, NPS4: 8 NUMA nodes.
  // InfiniBand ConnectX-6 HDR.
  c.sockets = 2;
  c.numa_per_socket = 4;
  c.cores_per_numa = 8;
  c.nic_numa = 0;
  c.core_freq_min_hz = 1.5e9;
  c.core_freq_nominal_hz = 2.5e9;
  c.turbo_scalar = {{4, 3.35e9}, {8, 3.2e9}, {16, 3.0e9}, {32, 2.8e9}};
  // Zen2 has no AVX512 and no licence throttling; AVX2 runs at full turbo.
  c.turbo_avx2 = c.turbo_scalar;
  c.turbo_avx512 = c.turbo_scalar;  // executed as 2x256-bit, same clocks
  c.comm_core_freq_hz = 2.7e9;
  c.uncore_freq_min_hz = 1.2e9;  // Infinity Fabric clock range
  c.uncore_freq_max_hz = 1.467e9;
  c.uncore_min_mem_scale = 0.85;
  c.flops_per_cycle_scalar = 2.0;
  c.flops_per_cycle_avx2 = 16.0;
  c.flops_per_cycle_avx512 = 16.0;  // double-pumped 256-bit units
  // 8x DDR4-3200 per socket ~ 120 GB/s sustained, NPS4 quarters it.
  c.mem_bw_per_numa = 30e9;
  c.per_core_mem_bw = 14e9;
  c.llc_bytes_per_socket = 128e6;  // 16x 8 MB CCX L3
  c.cross_socket_bw = 50e9;  // xGMI
  c.intra_socket_bw = 45e9;  // IF between quadrants
  c.mem_latency = 100e-9;
  c.cross_socket_latency = 110e-9;
  c.queueing_kappa = 0.35;
  c.queueing_pressure_clamp = 3.0;
  c.nic_dma_weight = 1.2;
  return c;
}

MachineConfig MachineConfig::pyxis() {
  MachineConfig c;
  c.name = "pyxis";
  // Dual Cavium ThunderX2 99xx @ 2.5 GHz, 64 cores, 2 NUMA nodes.
  // InfiniBand ConnectX-6 EDR.
  c.sockets = 2;
  c.numa_per_socket = 1;
  c.cores_per_numa = 32;
  c.nic_numa = 0;
  c.core_freq_min_hz = 1.0e9;
  c.core_freq_nominal_hz = 2.5e9;
  c.turbo_scalar = {{64, 2.5e9}};  // ThunderX2: no meaningful turbo range
  c.turbo_avx2 = c.turbo_scalar;
  c.turbo_avx512 = c.turbo_scalar;
  c.comm_core_freq_hz = 2.5e9;
  c.uncore_freq_min_hz = 1.0e9;
  c.uncore_freq_max_hz = 2.0e9;
  c.uncore_min_mem_scale = 0.85;
  // 128-bit NEON, 2 FMA pipes.
  c.flops_per_cycle_scalar = 2.0;
  c.flops_per_cycle_avx2 = 8.0;   // stands in for "widest vector" = NEON
  c.flops_per_cycle_avx512 = 8.0;
  // 8x DDR4-2666 per socket ~ 110 GB/s sustained.
  c.mem_bw_per_numa = 110e9;
  c.per_core_mem_bw = 10e9;
  c.llc_bytes_per_socket = 32e6;
  c.cross_socket_bw = 60e9;  // CCPI2
  c.intra_socket_bw = 110e9;
  c.mem_latency = 110e-9;
  c.cross_socket_latency = 120e-9;
  c.queueing_kappa = 0.35;
  c.queueing_pressure_clamp = 3.0;
  c.nic_dma_weight = 1.2;
  return c;
}

std::vector<MachineConfig> MachineConfig::all_presets() {
  return {henri(), bora(), billy(), pyxis()};
}

}  // namespace cci::hw
