// DVFS model: per-core frequency driven by load, licence class and policy.
//
// Responsibilities:
//  * core frequencies: ondemand (idle cores drop to min), performance
//    (idle cores hold nominal), userspace (operator-pinned, as with the
//    cpupower tool in the paper);
//  * turbo: busy cores clock to the turbo table entry for their socket's
//    active-core count and their instruction licence (AVX512 down-clocking);
//  * the communication core: its poll duty-cycle keeps it at a stable
//    frequency (paper §3.2/3.3), modelled as a dedicated pin;
//  * uncore: per-socket, ondemand (max when any core busy) or fixed; scales
//    the socket's memory-controller capacities (Likwid-style control).
//
// Every change is pushed into the FlowModel as a capacity update and
// reported to an optional trace sink (Fig. 2/3 frequency timelines).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/machine_config.hpp"
#include "obs/metrics.hpp"

namespace cci::hw {

class Machine;

enum class CpuPolicy { kOndemand, kPerformance, kUserspace };

class FrequencyGovernor {
 public:
  explicit FrequencyGovernor(Machine& machine);

  // ---- operator controls (BIOS / cpupower / Likwid equivalents) ----------
  void set_policy(CpuPolicy policy);
  void set_turbo_enabled(bool enabled);
  /// Pin all cores (userspace policy) to `hz`.
  void pin_core_freq(double hz);
  /// Pin the uncore of both sockets to `hz`; pass <= 0 to restore ondemand.
  void pin_uncore_freq(double hz);

  // ---- runtime notifications ---------------------------------------------
  /// A kernel with licence `vc` started executing on `core`.
  void core_busy(int core, VectorClass vc);
  /// The kernel on `core` finished; core returns to idle.
  void core_idle(int core);
  /// `core` runs a communication progress thread (stable duty cycle).
  void core_comm(int core);

  // ---- observations -------------------------------------------------------
  /// Active policy, as `cpupower frequency-info` would report it.  Fault
  /// injection saves this before throttling so recovery can restore the
  /// operator's configuration instead of assuming ondemand.
  [[nodiscard]] CpuPolicy policy() const { return policy_; }
  /// Operator-pinned core frequency (meaningful under kUserspace).
  [[nodiscard]] double pinned_core_freq() const { return pinned_core_hz_; }
  [[nodiscard]] double core_freq(int core) const {
    return freq_.at(static_cast<std::size_t>(core));
  }
  [[nodiscard]] double uncore_freq(int socket) const {
    return uncore_freq_.at(static_cast<std::size_t>(socket));
  }
  [[nodiscard]] int active_cores(int socket) const;

  /// Called as (core, new_freq_hz) at every core transition; (-1 - socket,
  /// hz) encodes uncore changes.  Timestamping is up to the sink.
  using TraceFn = std::function<void(int core, double freq_hz)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  enum class CoreState { kIdle, kBusy, kComm };
  void recompute_socket(int socket);
  void recompute_all();
  void apply_core_freq(int core, double hz);
  void apply_uncore(int socket, double hz);

  Machine& machine_;
  CpuPolicy policy_ = CpuPolicy::kOndemand;
  bool turbo_ = true;
  double pinned_core_hz_ = 0.0;
  double pinned_uncore_hz_ = 0.0;
  std::vector<CoreState> state_;
  std::vector<VectorClass> vclass_;
  std::vector<double> freq_;
  std::vector<double> uncore_freq_;
  std::vector<std::uint64_t> transition_gen_;  ///< per-core DVFS ramp epoch
  // Frequency timelines (`hw.freq.<prefix>core<N>_hz` / `...uncore<S>_hz`):
  // the machine prefix keeps multi-node clusters collision-free.  Updated at
  // the instant a transition *lands*, so the sampler sees the ramp latency.
  std::vector<obs::Gauge*> obs_core_hz_;
  std::vector<obs::Gauge*> obs_uncore_hz_;
  TraceFn trace_;
};

}  // namespace cci::hw
