#include "hw/topology.hpp"

#include <cstdio>
#include <ostream>

namespace cci::hw {

void print_topology(std::ostream& os, const MachineConfig& config) {
  char line[256];
  std::snprintf(line, sizeof(line), "Machine %s (%d cores, %d NUMA nodes, %d sockets)\n",
                config.name.c_str(), config.total_cores(), config.numa_count(),
                config.sockets);
  os << line;
  for (int s = 0; s < config.sockets; ++s) {
    os << "  Socket " << s << "  (uncore " << config.uncore_freq_min_hz / 1e9 << "-"
       << config.uncore_freq_max_hz / 1e9 << " GHz)\n";
    for (int n = 0; n < config.numa_count(); ++n) {
      if (config.socket_of_numa(n) != s) continue;
      int first = n * config.cores_per_numa;
      int last = first + config.cores_per_numa - 1;
      std::snprintf(line, sizeof(line), "    NUMA %d%s  cores %d-%d  mem %.1f GB/s\n", n,
                    n == config.nic_numa ? " [NIC]" : "      ", first, last,
                    config.mem_bw_per_numa / 1e9);
      os << line;
    }
  }
  std::snprintf(line, sizeof(line),
                "  links: cross-socket %.1f GB/s%s; core %.1f-%.1f GHz (nominal %.1f)\n",
                config.cross_socket_bw / 1e9,
                config.numa_per_socket > 1 ? ", intra-socket mesh" : "",
                config.core_freq_min_hz / 1e9,
                config.turbo_scalar.empty() ? config.core_freq_nominal_hz / 1e9
                                            : config.turbo_scalar.front().freq_hz / 1e9,
                config.core_freq_nominal_hz / 1e9);
  os << line;
}

std::string describe_placement(const MachineConfig& config, int comm_core, int data_numa) {
  const int comm_numa = config.numa_of_core(comm_core);
  const int comm_socket = config.socket_of_core(comm_core);
  const int nic_socket = config.socket_of_numa(config.nic_numa);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "comm core %d (socket %d, NUMA %d, %s the NIC), data on NUMA %d (%s)",
                comm_core, comm_socket, comm_numa,
                comm_socket == nic_socket ? "near" : "far from", data_numa,
                data_numa == config.nic_numa ? "near" : "far");
  return buf;
}

}  // namespace cci::hw
