// GPU transfer model — the paper's closing future-work item: "considering
// the impact of data movements between main memory and GPUs".
//
// A GpuDevice hangs off one NUMA node's PCIe root, like the NIC.  Host to
// device and device to host copies are DMA flows crossing [host memory
// controller (+ on-chip links), the GPU's PCIe link], so they contend with
// both computation *and* network DMA exactly the way the paper's
// mechanisms predict.  Device-side state is deliberately minimal: the
// interference story is entirely on the host side of the copy.
#pragma once

#include <memory>
#include <string>

#include "hw/machine.hpp"

namespace cci::hw {

struct GpuConfig {
  std::string name = "gpu0";
  /// NUMA node whose PCIe root hosts the GPU.
  int numa = 0;
  /// PCIe gen3 x16-class sustained copy bandwidth, per direction (B/s).
  double pcie_bw = 12.5e9;
  /// Driver/launch overhead per copy (s): cudaMemcpy setup, doorbell.
  double copy_overhead = 8e-6;
  /// Copies share host DRAM like NIC DMA: same scheduler weight semantics.
  double dma_weight = 1.2;
};

class GpuDevice {
 public:
  GpuDevice(Machine& machine, GpuConfig config)
      : machine_(machine),
        config_(std::move(config)),
        pcie_(machine.model().add_resource(config_.name + ".pcie", config_.pcie_bw)),
        label_h2d_(machine.engine().intern(config_.name + ".h2d")),
        label_d2h_(machine.engine().intern(config_.name + ".d2h")) {}

  [[nodiscard]] const GpuConfig& config() const { return config_; }
  sim::Resource* pcie() { return pcie_; }
  [[nodiscard]] int numa() const { return config_.numa; }

  enum class Direction { kHostToDevice, kDeviceToHost };

  /// Start an async copy of `bytes` between host memory on `host_numa`
  /// and the device.  Returns the flow activity; co_await it to "sync".
  sim::ActivityPtr copy_async(Direction dir, std::size_t bytes, int host_numa) {
    sim::ActivitySpec spec;
    spec.label = dir == Direction::kHostToDevice ? label_h2d_ : label_d2h_;
    // Staging copies belong to the accelerator's compute pipeline, not the
    // network: "comm" in the attribution matrix means MPI/NIC traffic.
    spec.profile_class = sim::kClassCompute;
    spec.work = static_cast<double>(bytes);
    spec.weight = config_.dma_weight;
    for (sim::Resource* r : machine_.mem_path(config_.numa, host_numa))
      spec.demands.push_back({r, 1.0});
    spec.demands.push_back({pcie_, 1.0});
    return machine_.model().start(spec);
  }

  /// Blocking copy usable from a simulation process: overhead + flow.
  sim::Coro copy(Direction dir, std::size_t bytes, int host_numa,
                 sim::OneShotEvent* done = nullptr) {
    co_await machine_.engine().sleep(config_.copy_overhead);
    co_await *copy_async(dir, bytes, host_numa);
    if (done) done->set();
  }

 private:
  Machine& machine_;
  GpuConfig config_;
  sim::Resource* pcie_;
  sim::LabelId label_h2d_;  ///< interned once; copies are hot
  sim::LabelId label_d2h_;
};

}  // namespace cci::hw
