#include "net/network_params.hpp"

namespace cci::net {

NetworkParams NetworkParams::ib_edr() {
  NetworkParams p;
  p.fabric = "ib-edr";
  p.wire_bw = 12.08e9;  // 100 Gb/s minus encoding/headers
  p.wire_latency = 0.25e-6;
  p.pio_base_latency = 0.10e-6;
  p.dma_bw_max_uncore = 10.5e9;  // Fig. 1b, uncore 2400 MHz
  p.dma_bw_min_uncore = 10.1e9;  // Fig. 1b, uncore 1200 MHz
  p.send_overhead_cycles = 1250;
  p.recv_overhead_cycles = 1050;
  p.pio_cycles_per_byte = 0.125;  // ~8 B/cycle store pipeline
  p.eager_threshold = 32 * 1024;
  p.pio_latency_cutoff = 512;
  p.pio_chunk = 64;
  p.pio_socket_crossings = 4;
  p.control_latency = 0.7e-6;
  p.registration_base = 50e-6;
  p.registration_per_byte = 0.1e-9;
  p.noise_rel = 0.03;
  return p;
}

NetworkParams NetworkParams::ib_hdr() {
  NetworkParams p = ib_edr();
  p.fabric = "ib-hdr";
  p.wire_bw = 24.2e9;  // 200 Gb/s class
  p.dma_bw_max_uncore = 23.0e9;
  p.dma_bw_min_uncore = 21.5e9;
  p.wire_latency = 0.28e-6;
  return p;
}

NetworkParams NetworkParams::opa100() {
  NetworkParams p = ib_edr();
  p.fabric = "opa-100";
  p.wire_bw = 11.0e9;
  p.dma_bw_max_uncore = 10.3e9;
  p.dma_bw_min_uncore = 10.0e9;
  p.wire_latency = 0.40e-6;
  // Omni-Path offloads less; its PIO path is used further up and the paper
  // reports a wide bandwidth deviation on bora -> more noise.
  p.eager_threshold = 64 * 1024;
  p.noise_rel = 0.12;
  return p;
}

NetworkParams NetworkParams::ib_edr_openmpi() {
  NetworkParams p = ib_edr();
  p.fabric = "ib-edr-openmpi";
  // openib/UCX defaults: smaller eager threshold, a longer request path.
  p.eager_threshold = 12 * 1024;
  p.send_overhead_cycles = 1600;
  p.recv_overhead_cycles = 1400;
  p.control_latency = 0.9e-6;
  return p;
}

NetworkParams NetworkParams::for_machine(const std::string& machine_name) {
  if (machine_name == "billy") return ib_hdr();
  if (machine_name == "bora") return opa100();
  return ib_edr();  // henri, pyxis
}

}  // namespace cci::net
