#include "net/faults.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cci::net {

// ---- FaultState ------------------------------------------------------------

FaultState::FaultState() {
  obs::Registry& reg = obs::Registry::global();
  obs_lost_ = &reg.counter("net.messages_lost");
  obs_corrupted_ = &reg.counter("net.messages_corrupted");
}

void FaultState::pop_loss(double p) {
  for (auto it = loss_.begin(); it != loss_.end(); ++it)
    if (*it == p) {
      loss_.erase(it);
      return;
    }
}

void FaultState::pop_corrupt(double p) {
  for (auto it = corrupt_.begin(); it != corrupt_.end(); ++it)
    if (*it == p) {
      corrupt_.erase(it);
      return;
    }
}

double FaultState::combined(const std::vector<double>& ps) {
  double survive = 1.0;
  for (double p : ps) survive *= 1.0 - p;
  return 1.0 - survive;
}

bool FaultState::draw_loss(sim::Rng& rng) {
  const double p = loss_prob();
  if (p <= 0.0) return false;
  if (rng.uniform() >= p) return false;
  obs_lost_->add(1);
  return true;
}

bool FaultState::draw_corrupt(sim::Rng& rng) {
  const double p = corrupt_prob();
  if (p <= 0.0) return false;
  if (rng.uniform() >= p) return false;
  obs_corrupted_->add(1);
  return true;
}

void FaultState::begin_blackout(int node) {
  const bool onset = ++blackout_depth_[node] == 1;
  if (!onset) return;
  for (const auto& fn : blackout_subs_) fn(node);
}

void FaultState::end_blackout(int node) {
  auto it = blackout_depth_.find(node);
  if (it == blackout_depth_.end() || it->second == 0) return;
  --it->second;
}

bool FaultState::blacked_out(int node) const {
  auto it = blackout_depth_.find(node);
  return it != blackout_depth_.end() && it->second > 0;
}

// ---- FaultPlan -------------------------------------------------------------

namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kWireDegrade: return "wire-degrade";
    case FaultEvent::Kind::kMemCtrlDegrade: return "memctrl-degrade";
    case FaultEvent::Kind::kNicDegrade: return "nic-degrade";
    case FaultEvent::Kind::kNicBlackout: return "nic-blackout";
    case FaultEvent::Kind::kNodeThrottle: return "node-throttle";
    case FaultEvent::Kind::kLossWindow: return "loss-window";
    case FaultEvent::Kind::kCorruptWindow: return "corrupt-window";
  }
  return "?";
}

bool kind_from_name(const std::string& name, FaultEvent::Kind& out) {
  using Kind = FaultEvent::Kind;
  for (Kind k : {Kind::kWireDegrade, Kind::kMemCtrlDegrade, Kind::kNicDegrade,
                 Kind::kNicBlackout, Kind::kNodeThrottle, Kind::kLossWindow,
                 Kind::kCorruptWindow})
    if (name == kind_name(k)) {
      out = k;
      return true;
    }
  return false;
}

}  // namespace

std::string FaultPlan::serialize() const {
  std::string out;
  char line[256];
  for (const FaultEvent& e : events_) {
    std::snprintf(line, sizeof(line), "%s at=%.17g until=%.17g node=%d numa=%d value=%.17g\n",
                  kind_name(e.kind), e.at, e.until, e.node, e.numa, e.value);
    out += line;
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    char kind_buf[64];
    FaultEvent e;
    if (std::sscanf(line.c_str(), "%63s at=%lg until=%lg node=%d numa=%d value=%lg",
                    kind_buf, &e.at, &e.until, &e.node, &e.numa, &e.value) != 6 ||
        !kind_from_name(kind_buf, e.kind))
      throw std::runtime_error("FaultPlan::parse: malformed line: " + line);
    plan.add(e);
  }
  return plan;
}

// ---- schedule generation ---------------------------------------------------

namespace {

double draw_interarrival(const FaultScheduleConfig& cfg, sim::Rng& rng) {
  double u = rng.uniform();
  if (u < 1e-12) u = 1e-12;
  if (cfg.interarrival == FaultScheduleConfig::Dist::kExponential)
    return -cfg.mean_interarrival * std::log(1.0 - u);
  // Weibull with the requested mean: scale = mean / Gamma(1 + 1/shape).
  const double scale = cfg.mean_interarrival / std::tgamma(1.0 + 1.0 / cfg.weibull_shape);
  return scale * std::pow(-std::log(1.0 - u), 1.0 / cfg.weibull_shape);
}

}  // namespace

FaultPlan generate_fault_plan(const FaultScheduleConfig& cfg) {
  FaultPlan plan;
  sim::Rng rng(cfg.seed);
  const double weights[] = {cfg.w_wire_degrade, cfg.w_nic_degrade, cfg.w_nic_blackout,
                            cfg.w_node_throttle, cfg.w_loss_window, cfg.w_corrupt_window};
  const FaultEvent::Kind kinds[] = {
      FaultEvent::Kind::kWireDegrade,  FaultEvent::Kind::kNicDegrade,
      FaultEvent::Kind::kNicBlackout,  FaultEvent::Kind::kNodeThrottle,
      FaultEvent::Kind::kLossWindow,   FaultEvent::Kind::kCorruptWindow};
  double total_w = 0.0;
  for (double w : weights) total_w += w;
  if (total_w <= 0.0) return plan;

  sim::Time t = 0.0;
  while (true) {
    t += draw_interarrival(cfg, rng);
    if (t >= cfg.horizon) break;
    double pick = rng.uniform() * total_w;
    std::size_t k = 0;
    for (; k + 1 < std::size(weights); ++k) {
      if (pick < weights[k]) break;
      pick -= weights[k];
    }
    FaultEvent e;
    e.kind = kinds[k];
    e.at = t;
    e.until = t + rng.uniform(cfg.duration_min, cfg.duration_max);
    switch (e.kind) {
      case FaultEvent::Kind::kWireDegrade:
        e.value = rng.uniform(cfg.factor_min, cfg.factor_max);
        break;
      case FaultEvent::Kind::kNicDegrade:
        e.node = static_cast<int>(rng.below(static_cast<std::uint64_t>(cfg.nodes)));
        e.value = rng.uniform(cfg.factor_min, cfg.factor_max);
        break;
      case FaultEvent::Kind::kNicBlackout:
      case FaultEvent::Kind::kNodeThrottle:
        e.node = static_cast<int>(rng.below(static_cast<std::uint64_t>(cfg.nodes)));
        break;
      case FaultEvent::Kind::kLossWindow:
        e.value = rng.uniform(cfg.loss_prob_min, cfg.loss_prob_max);
        break;
      case FaultEvent::Kind::kCorruptWindow:
        e.value = rng.uniform(cfg.corrupt_prob_min, cfg.corrupt_prob_max);
        break;
      case FaultEvent::Kind::kMemCtrlDegrade:
        break;  // not generated stochastically (needs a numa pick policy)
    }
    plan.add(e);
  }
  return plan;
}

// ---- FaultInjector ---------------------------------------------------------

void FaultInjector::schedule(sim::Resource* r, sim::Time at, double factor,
                             sim::Time recover_at) {
  // Delta tracking: remember how much capacity this fault removed and give
  // exactly that back.  `capacity / factor` restores double-count when a
  // second fault or an absolute capacity write lands inside the window.
  double* delta = &capacity_deltas_.emplace_back(0.0);
  cluster_.engine().call_at(at, [r, factor, delta] {
    *delta = r->capacity() * (1.0 - factor);
    r->set_capacity(r->capacity() - *delta);
  });
  if (recover_at >= 0.0)
    cluster_.engine().call_at(recover_at,
                              [r, delta] { r->set_capacity(r->capacity() + *delta); });
}

void FaultInjector::degrade_wire(sim::Time at, double factor, sim::Time recover_at) {
  plan_.add({FaultEvent::Kind::kWireDegrade, at, recover_at, -1, 0, factor});
  // Fabric-wide degradation: every crossbar and inter-switch link.  On the
  // single-switch topology this is exactly the one historical crossbar.
  for (sim::Resource* r : cluster_.fabric_resources()) schedule(r, at, factor, recover_at);
}

void FaultInjector::degrade_mem_ctrl(int node, int numa, sim::Time at, double factor,
                                     sim::Time recover_at) {
  plan_.add({FaultEvent::Kind::kMemCtrlDegrade, at, recover_at, node, numa, factor});
  schedule(cluster_.machine(node).mem_ctrl(numa), at, factor, recover_at);
}

void FaultInjector::degrade_nic(int node, sim::Time at, double factor, sim::Time recover_at) {
  plan_.add({FaultEvent::Kind::kNicDegrade, at, recover_at, node, 0, factor});
  cluster_.engine().call_at(
      at, [this, node, factor] { cluster_.nic(node).set_degradation(factor); });
  if (recover_at >= 0.0)
    cluster_.engine().call_at(recover_at,
                              [this, node] { cluster_.nic(node).set_degradation(1.0); });
}

void FaultInjector::throttle_node(int node, sim::Time at, sim::Time recover_at) {
  plan_.add({FaultEvent::Kind::kNodeThrottle, at, recover_at, node, 0, 1.0});
  cluster_.engine().call_at(at, [this, node] {
    auto& m = cluster_.machine(node);
    SavedClocks& saved = saved_clocks_[node];
    if (!saved.throttled) {  // nested throttles keep the original save
      saved.policy = m.governor().policy();
      saved.pinned_hz = m.governor().pinned_core_freq();
      saved.throttled = true;
    }
    m.governor().pin_core_freq(m.config().core_freq_min_hz);
  });
  if (recover_at >= 0.0) restore_clocks(node, recover_at);
}

void FaultInjector::restore_clocks(int node, sim::Time at) {
  cluster_.engine().call_at(at, [this, node] {
    auto& gov = cluster_.machine(node).governor();
    auto it = saved_clocks_.find(node);
    if (it == saved_clocks_.end() || !it->second.throttled) {
      gov.set_policy(hw::CpuPolicy::kOndemand);  // no save: legacy fallback
      return;
    }
    if (it->second.policy == hw::CpuPolicy::kUserspace)
      gov.pin_core_freq(it->second.pinned_hz);
    else
      gov.set_policy(it->second.policy);
    it->second.throttled = false;
  });
}

void FaultInjector::loss_window(double p, sim::Time at, sim::Time until) {
  plan_.add({FaultEvent::Kind::kLossWindow, at, until, -1, 0, p});
  cluster_.faults().arm();
  cluster_.engine().call_at(at, [this, p] { cluster_.faults().push_loss(p); });
  if (until >= 0.0)
    cluster_.engine().call_at(until, [this, p] { cluster_.faults().pop_loss(p); });
}

void FaultInjector::corrupt_window(double p, sim::Time at, sim::Time until) {
  plan_.add({FaultEvent::Kind::kCorruptWindow, at, until, -1, 0, p});
  cluster_.faults().arm();
  cluster_.engine().call_at(at, [this, p] { cluster_.faults().push_corrupt(p); });
  if (until >= 0.0)
    cluster_.engine().call_at(until, [this, p] { cluster_.faults().pop_corrupt(p); });
}

void FaultInjector::blackout_nic(int node, sim::Time at, sim::Time until) {
  plan_.add({FaultEvent::Kind::kNicBlackout, at, until, node, 0, 1.0});
  cluster_.faults().arm();
  cluster_.engine().call_at(at, [this, node] { cluster_.faults().begin_blackout(node); });
  if (until >= 0.0)
    cluster_.engine().call_at(until, [this, node] { cluster_.faults().end_blackout(node); });
}

void FaultInjector::apply(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.events()) {
    switch (e.kind) {
      case FaultEvent::Kind::kWireDegrade:
        degrade_wire(e.at, e.value, e.until);
        break;
      case FaultEvent::Kind::kMemCtrlDegrade:
        degrade_mem_ctrl(e.node, e.numa, e.at, e.value, e.until);
        break;
      case FaultEvent::Kind::kNicDegrade:
        degrade_nic(e.node, e.at, e.value, e.until);
        break;
      case FaultEvent::Kind::kNicBlackout:
        blackout_nic(e.node, e.at, e.until);
        break;
      case FaultEvent::Kind::kNodeThrottle:
        throttle_node(e.node, e.at, e.until);
        break;
      case FaultEvent::Kind::kLossWindow:
        loss_window(e.value, e.at, e.until);
        break;
      case FaultEvent::Kind::kCorruptWindow:
        corrupt_window(e.value, e.at, e.until);
        break;
    }
  }
}

}  // namespace cci::net
