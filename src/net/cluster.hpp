// Cluster: N simulated nodes joined by one fabric.
//
// Owns the engine, the flow model, the machines, their NICs and the shared
// wire resource.  This is the top-level object every experiment builds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "net/nic.hpp"
#include "net/network_params.hpp"
#include "sim/rng.hpp"

namespace cci::net {

class FaultState;

class Cluster {
 public:
  /// Switch model: each node has full-duplex uplink ports; the crossbar
  /// core can be oversubscribed (capacity = factor * sum of port rates).
  /// factor >= 1 keeps the fabric non-blocking (the default, matching the
  /// paper's small clusters); < 1 models oversubscribed production trees.
  struct FabricOptions {
    double oversubscription = 1.0;
  };

  /// `nodes` identical machines of type `config`, linked by `net`.
  Cluster(hw::MachineConfig config, NetworkParams net, int nodes = 2, std::uint64_t seed = 42)
      : Cluster(std::move(config), std::move(net), nodes, seed, FabricOptions()) {}
  Cluster(hw::MachineConfig config, NetworkParams net, int nodes, std::uint64_t seed,
          FabricOptions fabric);
  ~Cluster();

  sim::Engine& engine() { return engine_; }
  sim::FlowModel& model() { return model_; }
  sim::Rng& rng() { return rng_; }
  [[nodiscard]] int node_count() const { return static_cast<int>(machines_.size()); }
  hw::Machine& machine(int node) { return *machines_.at(static_cast<std::size_t>(node)); }
  Nic& nic(int node) { return *nics_.at(static_cast<std::size_t>(node)); }
  const NetworkParams& net() const { return net_; }

  /// Wire-unreliability state (loss/corruption windows, NIC blackouts) the
  /// transport consults per message.  Inert until a FaultInjector arms it.
  FaultState& faults();

  /// Legacy accessor: the switch crossbar resource (historically "wire").
  sim::Resource* wire() { return crossbar_; }
  /// Node uplink ports, one per direction (ingress/egress contention).
  sim::Resource* tx_port(int node) { return tx_ports_.at(static_cast<std::size_t>(node)); }
  sim::Resource* rx_port(int node) { return rx_ports_.at(static_cast<std::size_t>(node)); }
  /// Resources a bulk transfer src -> dst crosses on the fabric.
  [[nodiscard]] std::vector<sim::Resource*> fabric_path(int src, int dst) {
    return {tx_port(src), crossbar_, rx_port(dst)};
  }

 private:
  NetworkParams net_;
  sim::Engine engine_;
  sim::FlowModel model_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<sim::Resource*> tx_ports_;
  std::vector<sim::Resource*> rx_ports_;
  sim::Resource* crossbar_ = nullptr;
  std::unique_ptr<FaultState> faults_;
};

}  // namespace cci::net
