// Cluster: N simulated nodes joined by one fabric.
//
// Owns the engine, the flow model, the machines, their NICs and the fabric
// resources described by a net::Topology (per-node tx/rx ports, switch
// crossbars, inter-switch links).  This is the top-level object every
// experiment builds.  fabric_path() resolves the resource chain a bulk
// transfer crosses, delegating spine/gateway selection to the topology's
// RoutingPolicy (kAdaptive consults current link utilizations and breaks
// ties through the cluster RNG — deterministic for a given seed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hw/machine.hpp"
#include "net/nic.hpp"
#include "net/network_params.hpp"
#include "net/topology.hpp"
#include "sim/pool.hpp"
#include "sim/rng.hpp"

namespace cci::net {

class FaultState;

/// Everything a Cluster needs, in one spec — new fabric knobs extend this
/// struct instead of widening the constructor (same collapse `core::Sweep`
/// callers got with SweepSpec in PR 4).
struct ClusterSpec {
  hw::MachineConfig machine = hw::MachineConfig::henri();
  NetworkParams network = NetworkParams::ib_edr();
  Topology topology = Topology::single_switch();
  int nodes = 2;
  std::uint64_t seed = 42;
};

class Cluster {
 public:
  /// Legacy fabric knob, kept for the back-compat constructor below; new
  /// code selects `Topology::single_switch(oversubscription)` (or a real
  /// graph) through ClusterSpec::topology.
  struct FabricOptions {
    double oversubscription = 1.0;
  };

  /// Resource chain of one fabric traversal.  Inline up to the longest
  /// route any builder emits (dragonfly via an intermediate group: 13),
  /// so multi-hop paths never heap-allocate per message (PR 5 guard).
  using FabricPath = sim::SmallVec<sim::Resource*, 16>;

  explicit Cluster(ClusterSpec spec);

  // Thin back-compat overloads over ClusterSpec.
  Cluster(hw::MachineConfig config, NetworkParams net, int nodes = 2, std::uint64_t seed = 42)
      : Cluster(ClusterSpec{std::move(config), std::move(net), Topology::single_switch(),
                            nodes, seed}) {}
  Cluster(hw::MachineConfig config, NetworkParams net, int nodes, std::uint64_t seed,
          FabricOptions fabric)
      : Cluster(ClusterSpec{std::move(config), std::move(net),
                            Topology::single_switch(fabric.oversubscription), nodes, seed}) {}
  ~Cluster();

  sim::Engine& engine() { return engine_; }
  sim::FlowModel& model() { return model_; }
  sim::Rng& rng() { return rng_; }
  [[nodiscard]] int node_count() const { return static_cast<int>(machines_.size()); }
  hw::Machine& machine(int node) { return *machines_.at(static_cast<std::size_t>(node)); }
  Nic& nic(int node) { return *nics_.at(static_cast<std::size_t>(node)); }
  const NetworkParams& net() const { return net_; }
  const Topology& topology() const { return topology_; }

  /// Wire-unreliability state (loss/corruption windows, NIC blackouts) the
  /// transport consults per message.  Inert until a FaultInjector arms it.
  FaultState& faults();

  [[deprecated(
      "single-crossbar accessor from the pre-topology fabric; use "
      "find_link(\"switch\") for the single-switch crossbar, fabric_path() for "
      "the resources a transfer crosses, or fabric_resources() for the whole "
      "switch/link graph")]]
  sim::Resource* wire() {
    return switch_xbars_.front();
  }

  /// Node uplink ports, one per direction (ingress/egress contention).
  sim::Resource* tx_port(int node) { return tx_ports_.at(static_cast<std::size_t>(node)); }
  sim::Resource* rx_port(int node) { return rx_ports_.at(static_cast<std::size_t>(node)); }

  /// Every switch crossbar and inter-switch link of the fabric, creation
  /// order (crossbars first).  Single-switch: exactly the one crossbar.
  [[nodiscard]] const std::vector<sim::Resource*>& fabric_resources() const {
    return fabric_resources_;
  }
  /// Inter-switch link resources only (empty on single-switch).
  [[nodiscard]] const std::vector<sim::Resource*>& fabric_links() const { return link_res_; }
  /// Fabric resource by exact name ("switch", "switch.leaf0",
  /// "link.g0.r1-g1.r0"); nullptr when absent.
  [[nodiscard]] sim::Resource* find_link(std::string_view name) const;

  /// Resources a bulk transfer src -> dst crosses on the fabric, resolved
  /// under the topology's routing policy.  kAdaptive re-decides on every
  /// call — i.e. every flow (re)registration — from current utilizations.
  [[nodiscard]] FabricPath fabric_path(int src, int dst);

  /// One routing decision on a multi-switch fabric: `via` is the chosen
  /// spine (fat-tree) or intermediate group (dragonfly), -1 for the
  /// minimal route.  Recorded only while enable_route_trace(true).
  struct RouteChoice {
    int src = 0, dst = 0, via = -1;
  };
  void enable_route_trace(bool on) { route_trace_enabled_ = on; }
  /// The most recent route decisions in chronological order — a
  /// materialized copy of the ring (oldest first).  The ring keeps the
  /// last route_trace_capacity() decisions; older ones are counted in
  /// route_trace_dropped() instead of growing without bound (a 7-point
  /// offered-load sweep on a 1k-node fabric used to).  Byte-compare tests
  /// stay exact: at a fixed seed both runs drop the same prefix.
  [[nodiscard]] std::vector<RouteChoice> route_trace() const;
  /// Decisions evicted from the ring since construction (like the shard
  /// mailbox spill counter: nothing is lost silently).
  [[nodiscard]] std::uint64_t route_trace_dropped() const { return route_trace_dropped_; }
  [[nodiscard]] std::size_t route_trace_capacity() const { return route_trace_cap_; }
  /// Resize the ring (diagnostics that need deeper history); clears any
  /// recorded trace, so call it before traffic runs.
  void set_route_trace_capacity(std::size_t cap);

  // ---- parallel-simulation hints -------------------------------------------
  /// Topology group of every flow-model resource (index-aligned with the
  /// solver's resource table): node-local resources carry the node's group,
  /// shared fabric resources (spines, cross-group links) carry -1.  Feed to
  /// sim::shard_assignment to carve shards at topology group boundaries.
  [[nodiscard]] std::vector<int> resource_groups() const;
  /// Conservative cross-group PDES lookahead on this fabric
  /// (Topology::min_remote_delay over the cluster's NetworkParams).
  [[nodiscard]] double shard_lookahead() const {
    return topology_.min_remote_delay(net_);
  }

 private:
  /// Append the switch-traversal resources (crossbars + links) of the
  /// chosen route; tx/rx ports are added by fabric_path itself.
  void route_fat_tree(int src, int dst, FabricPath& path);
  void route_dragonfly(int src, int dst, FabricPath& path);
  /// Within-group dragonfly hop r1 -> r2 (xbar(r1) already pushed).
  void dragonfly_hop(int r1, int r2, FabricPath& path);
  [[nodiscard]] sim::Resource* link_between(int s1, int s2) const;
  [[nodiscard]] double link_utilization(int s1, int s2) const;
  void note_route(int src, int dst, int via);

  NetworkParams net_;
  Topology topology_;
  sim::Engine engine_;
  sim::FlowModel model_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<sim::Resource*> tx_ports_;
  std::vector<sim::Resource*> rx_ports_;
  std::vector<sim::Resource*> switch_xbars_;   ///< per switch, topology order
  std::vector<sim::Resource*> link_res_;       ///< per Topology::links() entry
  std::vector<sim::Resource*> fabric_resources_;  ///< xbars then links
  std::vector<int> link_at_;  ///< dense (s1 * S + s2) -> links() index, -1 none
  std::vector<std::size_t> node_res_begin_;  ///< solver index where node i starts
  std::size_t fabric_res_begin_ = 0;         ///< solver index of first xbar
  bool route_trace_enabled_ = false;
  // Route-trace ring: route_trace_ holds the last route_trace_cap_
  // decisions, route_trace_head_ is the slot the next one overwrites once
  // full, route_trace_dropped_ counts evictions.
  std::vector<RouteChoice> route_trace_;
  std::size_t route_trace_cap_ = 65536;
  std::size_t route_trace_head_ = 0;
  std::uint64_t route_trace_dropped_ = 0;
  // net.fabric.* counters; registered only on multi-switch topologies so
  // the single-switch metric surface stays byte-identical to pre-topology.
  obs::Counter* obs_routes_ = nullptr;
  obs::Counter* obs_reroutes_ = nullptr;
  std::unique_ptr<FaultState> faults_;
};

}  // namespace cci::net
