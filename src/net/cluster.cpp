#include "net/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/frequency_governor.hpp"
#include "net/faults.hpp"
#include "sim/flow_model.hpp"

namespace cci::net {

Cluster::Cluster(ClusterSpec spec)
    : net_(std::move(spec.network)),
      topology_(std::move(spec.topology)),
      model_(engine_),
      rng_(spec.seed) {
  const int nodes = spec.nodes;
  if (nodes < 1) throw std::invalid_argument("Cluster: nodes must be >= 1");
  if (topology_.max_hosts() > 0 && nodes > topology_.max_hosts())
    throw std::invalid_argument("Cluster: topology attaches at most " +
                                std::to_string(topology_.max_hosts()) + " hosts, got " +
                                std::to_string(nodes));
  node_res_begin_.reserve(static_cast<std::size_t>(nodes) + 1);
  for (int i = 0; i < nodes; ++i) {
    node_res_begin_.push_back(model_.solver().resource_count());
    std::string prefix = "node" + std::to_string(i) + ".";
    machines_.push_back(std::make_unique<hw::Machine>(model_, spec.machine, prefix));
    nics_.push_back(std::make_unique<Nic>(*machines_.back(), net_, prefix));
    tx_ports_.push_back(model_.add_resource(prefix + "tx", net_.wire_bw));
    rx_ports_.push_back(model_.add_resource(prefix + "rx", net_.wire_bw));
  }
  node_res_begin_.push_back(model_.solver().resource_count());
  fabric_res_begin_ = model_.solver().resource_count();

  // ---- fabric materialization ----------------------------------------------
  const int S = topology_.switch_count();
  if (topology_.kind() == Topology::Kind::kSingleSwitch) {
    // Bitwise-identical to the pre-topology fabric: one resource, same
    // name, same capacity expression, created at the same point.
    switch_xbars_.push_back(model_.add_resource(
        "switch",
        net_.wire_bw * static_cast<double>(nodes) * topology_.oversubscription()));
  } else {
    // Hosts actually attached per edge switch (capacity follows the built
    // cluster, not the topology's maximum).
    std::vector<int> hosts_at(static_cast<std::size_t>(S), 0);
    for (int n = 0; n < nodes; ++n) ++hosts_at[static_cast<std::size_t>(topology_.host_switch(n))];
    // Ingress link capacity per switch: crossbars are internally
    // non-blocking, congestion lives on ports and links.
    std::vector<double> ingress(static_cast<std::size_t>(S), 0.0);
    for (const Topology::Link& l : topology_.links())
      ingress[static_cast<std::size_t>(l.dst)] += l.bw_scale;
    for (int s = 0; s < S; ++s) {
      double ports = static_cast<double>(hosts_at[static_cast<std::size_t>(s)]) +
                     ingress[static_cast<std::size_t>(s)];
      switch_xbars_.push_back(model_.add_resource("switch." + topology_.switch_name(s),
                                                  net_.wire_bw * std::max(ports, 1.0)));
    }
    link_at_.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(S), -1);
    const auto& links = topology_.links();
    link_res_.reserve(links.size());
    for (std::size_t li = 0; li < links.size(); ++li) {
      const Topology::Link& l = links[li];
      link_res_.push_back(model_.add_resource(
          "link." + topology_.switch_name(l.src) + "-" + topology_.switch_name(l.dst),
          net_.wire_bw * l.bw_scale));
      link_at_[static_cast<std::size_t>(l.src) * static_cast<std::size_t>(S) +
               static_cast<std::size_t>(l.dst)] = static_cast<int>(li);
    }
    obs_routes_ = &obs::Registry::global().counter("net.fabric.routes");
    obs_reroutes_ = &obs::Registry::global().counter("net.fabric.adaptive_reroutes");
  }
  fabric_resources_ = switch_xbars_;
  fabric_resources_.insert(fabric_resources_.end(), link_res_.begin(), link_res_.end());
  faults_ = std::make_unique<FaultState>();
}

Cluster::~Cluster() = default;

FaultState& Cluster::faults() { return *faults_; }

sim::Resource* Cluster::find_link(std::string_view name) const {
  for (sim::Resource* r : fabric_resources_)
    if (r->name() == name) return r;
  return nullptr;
}

sim::Resource* Cluster::link_between(int s1, int s2) const {
  const int S = topology_.switch_count();
  const int li = link_at_[static_cast<std::size_t>(s1) * static_cast<std::size_t>(S) +
                          static_cast<std::size_t>(s2)];
  return link_res_[static_cast<std::size_t>(li)];
}

double Cluster::link_utilization(int s1, int s2) const {
  return link_between(s1, s2)->utilization();
}

void Cluster::note_route(int src, int dst, int via) {
  if (!route_trace_enabled_ || route_trace_cap_ == 0) return;
  if (route_trace_.size() < route_trace_cap_) {
    route_trace_.push_back({src, dst, via});
    return;
  }
  route_trace_[route_trace_head_] = {src, dst, via};
  route_trace_head_ = (route_trace_head_ + 1) % route_trace_cap_;
  ++route_trace_dropped_;
}

std::vector<Cluster::RouteChoice> Cluster::route_trace() const {
  std::vector<RouteChoice> out;
  out.reserve(route_trace_.size());
  // Oldest first: once the ring wrapped, head_ is the oldest slot.
  for (std::size_t i = 0; i < route_trace_.size(); ++i)
    out.push_back(route_trace_[(route_trace_head_ + i) % route_trace_.size()]);
  return out;
}

void Cluster::set_route_trace_capacity(std::size_t cap) {
  route_trace_cap_ = cap;
  route_trace_.clear();
  route_trace_head_ = 0;
  route_trace_dropped_ = 0;
}

Cluster::FabricPath Cluster::fabric_path(int src, int dst) {
  FabricPath path;
  path.push_back(tx_port(src));
  switch (topology_.kind()) {
    case Topology::Kind::kSingleSwitch:
      path.push_back(switch_xbars_.front());
      break;
    case Topology::Kind::kFatTree:
      obs_routes_->add(1);
      route_fat_tree(src, dst, path);
      break;
    case Topology::Kind::kDragonfly:
      obs_routes_->add(1);
      route_dragonfly(src, dst, path);
      break;
  }
  path.push_back(rx_port(dst));
  return path;
}

void Cluster::route_fat_tree(int src, int dst, FabricPath& path) {
  const int k = topology_.param_k();
  const int spines = k / 2;
  const int ls = topology_.host_switch(src);
  const int ld = topology_.host_switch(dst);
  path.push_back(switch_xbars_[static_cast<std::size_t>(ls)]);
  if (ls == ld) return;  // one-hop: stays inside the leaf crossbar
  // ECMP-style static spine: a pure function of the leaf pair.
  const int minimal = (ls + ld) % spines;
  int choice = minimal;
  if (topology_.routing() == RoutingPolicy::kAdaptive) {
    auto cost = [&](int s) {
      return std::max(link_utilization(ls, k + s), link_utilization(k + s, ld));
    };
    const double u_min = cost(minimal);
    if (u_min > topology_.threshold()) {
      double best = u_min;
      for (int s = 0; s < spines; ++s) best = std::min(best, cost(s));
      if (best < u_min) {
        // Deviate to the least-loaded spine; exact ties break through the
        // cluster RNG (deterministic per seed/schedule).
        sim::SmallVec<int, 16> ties;
        for (int s = 0; s < spines; ++s)
          if (cost(s) == best) ties.push_back(s);
        choice = ties[ties.size() == 1 ? 0 : rng_.below(ties.size())];
      }
    }
  }
  note_route(src, dst, choice);
  if (choice != minimal) obs_reroutes_->add(1);
  path.push_back(link_between(ls, k + choice));
  path.push_back(switch_xbars_[static_cast<std::size_t>(k + choice)]);
  path.push_back(link_between(k + choice, ld));
  path.push_back(switch_xbars_[static_cast<std::size_t>(ld)]);
}

void Cluster::dragonfly_hop(int r1, int r2, FabricPath& path) {
  if (r1 == r2) return;
  path.push_back(link_between(r1, r2));
  path.push_back(switch_xbars_[static_cast<std::size_t>(r2)]);
}

namespace {
/// Gateway router indices of the dragonfly builder's global link g -> h.
int gateway_out(int g, int h, int routers) { return (h + (h > g ? -1 : 0)) % routers; }
int gateway_in(int g, int h, int routers) { return (g + (g > h ? -1 : 0)) % routers; }
}  // namespace

void Cluster::route_dragonfly(int src, int dst, FabricPath& path) {
  const int R = topology_.param_routers();
  const int groups = topology_.param_groups();
  const int rs = topology_.host_switch(src);
  const int rd = topology_.host_switch(dst);
  const int g = rs / R;
  const int h = rd / R;
  path.push_back(switch_xbars_[static_cast<std::size_t>(rs)]);
  if (rs == rd) return;
  if (g == h) {
    note_route(src, dst, -1);
    dragonfly_hop(rs, rd, path);
    return;
  }
  // Cross-group: minimal is one global hop; adaptive may go Valiant via an
  // intermediate group when the minimal global link is congested.
  auto global_util = [&](int from_g, int to_g) {
    return link_utilization(from_g * R + gateway_out(from_g, to_g, R),
                            to_g * R + gateway_in(from_g, to_g, R));
  };
  int via = -1;
  if (topology_.routing() == RoutingPolicy::kAdaptive && groups > 2) {
    const double u_min = global_util(g, h);
    if (u_min > topology_.threshold()) {
      // Valiant detour doubles the global hops, so it must beat the
      // minimal link by 2x to win (UGAL-style comparison).
      double best = u_min;
      for (int k = 0; k < groups; ++k) {
        if (k == g || k == h) continue;
        best = std::min(best, 2.0 * std::max(global_util(g, k), global_util(k, h)));
      }
      if (best < u_min) {
        sim::SmallVec<int, 16> ties;
        for (int k = 0; k < groups; ++k) {
          if (k == g || k == h) continue;
          if (2.0 * std::max(global_util(g, k), global_util(k, h)) == best)
            ties.push_back(k);
        }
        via = ties[ties.size() == 1 ? 0 : rng_.below(ties.size())];
        obs_reroutes_->add(1);
      }
    }
  }
  note_route(src, dst, via);
  auto traverse = [&](int cur, int from_g, int to_g) {
    const int out = from_g * R + gateway_out(from_g, to_g, R);
    const int in = to_g * R + gateway_in(from_g, to_g, R);
    dragonfly_hop(cur, out, path);
    path.push_back(link_between(out, in));
    path.push_back(switch_xbars_[static_cast<std::size_t>(in)]);
    return in;
  };
  int cur = rs;
  if (via >= 0) cur = traverse(cur, g, via);
  cur = traverse(cur, via >= 0 ? via : g, h);
  dragonfly_hop(cur, rd, path);
}

std::vector<int> Cluster::resource_groups() const {
  std::vector<int> groups(model_.solver().resource_count(), -1);
  for (std::size_t n = 0; n + 1 < node_res_begin_.size(); ++n) {
    const int group = topology_.group_of_node(static_cast<int>(n));
    for (std::size_t i = node_res_begin_[n]; i < node_res_begin_[n + 1]; ++i)
      groups[i] = group;
  }
  const int S = topology_.switch_count();
  for (int s = 0; s < S; ++s)
    groups[fabric_res_begin_ + static_cast<std::size_t>(s)] = topology_.group_of_switch(s);
  const auto& links = topology_.links();
  for (std::size_t li = 0; li < links.size(); ++li) {
    const int ga = topology_.group_of_switch(links[li].src);
    const int gb = topology_.group_of_switch(links[li].dst);
    groups[fabric_res_begin_ + static_cast<std::size_t>(S) + li] =
        (ga == gb && ga >= 0) ? ga : -1;
  }
  return groups;
}

void Nic::refresh_dma_capacity() {
  const auto& cfg = machine_.config();
  double u = machine_.governor().uncore_freq(socket());
  double span = cfg.uncore_freq_max_hz - cfg.uncore_freq_min_hz;
  double x = span > 0.0 ? (u - cfg.uncore_freq_min_hz) / span : 1.0;
  x = x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  double bw = (params_.dma_bw_min_uncore +
               (params_.dma_bw_max_uncore - params_.dma_bw_min_uncore) * x) *
              degradation_;
  if (dma_engine_->capacity() != bw) dma_engine_->set_capacity(bw);
}

}  // namespace cci::net
