#include "net/cluster.hpp"

#include "hw/frequency_governor.hpp"
#include "net/faults.hpp"

namespace cci::net {

Cluster::Cluster(hw::MachineConfig config, NetworkParams net, int nodes, std::uint64_t seed,
                 FabricOptions fabric)
    : net_(std::move(net)), model_(engine_), rng_(seed) {
  for (int i = 0; i < nodes; ++i) {
    std::string prefix = "node" + std::to_string(i) + ".";
    machines_.push_back(std::make_unique<hw::Machine>(model_, config, prefix));
    nics_.push_back(std::make_unique<Nic>(*machines_.back(), net_, prefix));
    tx_ports_.push_back(model_.add_resource(prefix + "tx", net_.wire_bw));
    rx_ports_.push_back(model_.add_resource(prefix + "rx", net_.wire_bw));
  }
  crossbar_ = model_.add_resource(
      "switch", net_.wire_bw * static_cast<double>(nodes) * fabric.oversubscription);
  faults_ = std::make_unique<FaultState>();
}

Cluster::~Cluster() = default;

FaultState& Cluster::faults() { return *faults_; }

void Nic::refresh_dma_capacity() {
  const auto& cfg = machine_.config();
  double u = machine_.governor().uncore_freq(socket());
  double span = cfg.uncore_freq_max_hz - cfg.uncore_freq_min_hz;
  double x = span > 0.0 ? (u - cfg.uncore_freq_min_hz) / span : 1.0;
  x = x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  double bw = (params_.dma_bw_min_uncore +
               (params_.dma_bw_max_uncore - params_.dma_bw_min_uncore) * x) *
              degradation_;
  if (dma_engine_->capacity() != bw) dma_engine_->set_capacity(bw);
}

}  // namespace cci::net
