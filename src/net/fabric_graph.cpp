#include "net/fabric_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "sim/flow_model.hpp"
#include "sim/maxmin.hpp"
#include "sim/resource.hpp"

namespace cci::net {

namespace {
/// Gateway router indices of the dragonfly builder's global link g -> h
/// (same arithmetic as Cluster's router; kept local to each to avoid a
/// header for two one-liners).
int gateway_out(int g, int h, int routers) { return (h + (h > g ? -1 : 0)) % routers; }
int gateway_in(int g, int h, int routers) { return (g + (g > h ? -1 : 0)) % routers; }
}  // namespace

FabricGraph::FabricGraph(const Topology& topo, const NetworkParams& net, int nodes)
    : topo_(topo), nodes_(nodes), switch_count_(topo.switch_count()),
      link_count_(topo.links().size()) {
  if (nodes < 1) throw std::invalid_argument("FabricGraph: nodes must be >= 1");
  if (topo.max_hosts() > 0 && nodes > topo.max_hosts())
    throw std::invalid_argument("FabricGraph: topology attaches at most " +
                                std::to_string(topo.max_hosts()) + " hosts, got " +
                                std::to_string(nodes));
  if (topo.routing() != RoutingPolicy::kMinimal)
    throw std::invalid_argument(
        "FabricGraph: adaptive routing needs global utilization and the "
        "cluster RNG; sharded fabrics route minimally");
  const int S = switch_count_;
  const auto& links = topo_.links();
  link_at_.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(S), -1);
  for (std::size_t li = 0; li < links.size(); ++li)
    link_at_[static_cast<std::size_t>(links[li].src) * static_cast<std::size_t>(S) +
             static_cast<std::size_t>(links[li].dst)] = static_cast<int>(li);

  // Base capacities and names mirror Cluster's materialization exactly
  // (tests compare them), in key order: tx ports, rx ports, switch
  // crossbars, links.
  base_cap_.reserve(static_cast<std::size_t>(key_count()));
  names_.reserve(static_cast<std::size_t>(key_count()));
  for (int n = 0; n < nodes_; ++n) {
    base_cap_.push_back(net.wire_bw);
    names_.push_back("node" + std::to_string(n) + ".tx");
  }
  for (int n = 0; n < nodes_; ++n) {
    base_cap_.push_back(net.wire_bw);
    names_.push_back("node" + std::to_string(n) + ".rx");
  }
  if (topo_.kind() == Topology::Kind::kSingleSwitch) {
    base_cap_.push_back(net.wire_bw * static_cast<double>(nodes_) *
                        topo_.oversubscription());
    names_.push_back("switch");
  } else {
    std::vector<int> hosts_at(static_cast<std::size_t>(S), 0);
    for (int n = 0; n < nodes_; ++n)
      ++hosts_at[static_cast<std::size_t>(topo_.host_switch(n))];
    std::vector<double> ingress(static_cast<std::size_t>(S), 0.0);
    for (const Topology::Link& l : links)
      ingress[static_cast<std::size_t>(l.dst)] += l.bw_scale;
    for (int s = 0; s < S; ++s) {
      const double ports = static_cast<double>(hosts_at[static_cast<std::size_t>(s)]) +
                           ingress[static_cast<std::size_t>(s)];
      base_cap_.push_back(net.wire_bw * std::max(ports, 1.0));
      names_.push_back("switch." + topo_.switch_name(s));
    }
  }
  for (const Topology::Link& l : links) {
    base_cap_.push_back(net.wire_bw * l.bw_scale);
    names_.push_back("link." + topo_.switch_name(l.src) + "-" +
                     topo_.switch_name(l.dst));
  }
  res_.assign(static_cast<std::size_t>(key_count()), nullptr);
}

void FabricGraph::materialize(sim::FlowModel& model) {
  assert(model.solver().resource_count() == 0 &&
         "FabricGraph::materialize: model must be empty so index == key");
  for (int k = 0; k < key_count(); ++k)
    res_[static_cast<std::size_t>(k)] =
        model.add_resource(names_[static_cast<std::size_t>(k)],
                           base_cap_[static_cast<std::size_t>(k)]);
}

void FabricGraph::minimal_path(int src, int dst, std::vector<int>& keys) const {
  keys.push_back(tx_key(src));
  switch (topo_.kind()) {
    case Topology::Kind::kSingleSwitch:
      keys.push_back(xbar_key(0));
      break;
    case Topology::Kind::kFatTree: {
      const int k = topo_.param_k();
      const int spines = k / 2;
      const int ls = topo_.host_switch(src);
      const int ld = topo_.host_switch(dst);
      keys.push_back(xbar_key(ls));
      if (ls != ld) {
        const int spine = k + (ls + ld) % spines;
        keys.push_back(link_key(link_index(ls, spine)));
        keys.push_back(xbar_key(spine));
        keys.push_back(link_key(link_index(spine, ld)));
        keys.push_back(xbar_key(ld));
      }
      break;
    }
    case Topology::Kind::kDragonfly: {
      const int R = topo_.param_routers();
      const int rs = topo_.host_switch(src);
      const int rd = topo_.host_switch(dst);
      const int g = rs / R;
      const int h = rd / R;
      keys.push_back(xbar_key(rs));
      if (rs == rd) break;
      if (g == h) {
        keys.push_back(link_key(link_index(rs, rd)));
        keys.push_back(xbar_key(rd));
        break;
      }
      const int out = g * R + gateway_out(g, h, R);
      const int in = h * R + gateway_in(g, h, R);
      if (rs != out) {
        keys.push_back(link_key(link_index(rs, out)));
        keys.push_back(xbar_key(out));
      }
      keys.push_back(link_key(link_index(out, in)));
      keys.push_back(xbar_key(in));
      if (in != rd) {
        keys.push_back(link_key(link_index(in, rd)));
        keys.push_back(xbar_key(rd));
      }
      break;
    }
  }
  keys.push_back(rx_key(dst));
}

}  // namespace cci::net
