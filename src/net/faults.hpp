// Fault injection: planned degradations for robustness studies.
//
// Real clusters see link flaps, switch congestion from other jobs, and
// thermally throttled sockets.  The injector schedules capacity
// degradations (and recoveries) on cluster resources so experiments can
// measure how interference conclusions shift under faults.
#pragma once

#include <vector>

#include "hw/frequency_governor.hpp"
#include "net/cluster.hpp"

namespace cci::net {

class FaultInjector {
 public:
  explicit FaultInjector(Cluster& cluster) : cluster_(cluster) {}

  /// Scale the wire capacity by `factor` at time `at`; restore at
  /// `recover_at` (skip restore if negative).
  void degrade_wire(sim::Time at, double factor, sim::Time recover_at = -1.0) {
    schedule(cluster_.wire(), at, factor, recover_at);
  }

  /// Degrade one node's NUMA memory controller (e.g. faulty DIMM channel).
  void degrade_mem_ctrl(int node, int numa, sim::Time at, double factor,
                        sim::Time recover_at = -1.0) {
    schedule(cluster_.machine(node).mem_ctrl(numa), at, factor, recover_at);
  }

  /// Degrade a node's NIC DMA engine (PCIe link retraining to a lower
  /// width, a classic production fault).  Goes through the NIC's health
  /// factor so the lazy uncore refresh cannot silently undo the fault.
  void degrade_nic(int node, sim::Time at, double factor, sim::Time recover_at = -1.0) {
    cluster_.engine().call_at(at,
                              [this, node, factor] { cluster_.nic(node).set_degradation(factor); });
    if (recover_at >= 0.0) {
      cluster_.engine().call_at(recover_at,
                                [this, node] { cluster_.nic(node).set_degradation(1.0); });
    }
  }

  /// Thermal throttle: pin every core of `node` to the machine's minimum
  /// frequency at `at` (no automatic recovery; call restore_clocks).
  void throttle_node(int node, sim::Time at) {
    cluster_.engine().call_at(at, [this, node] {
      auto& m = cluster_.machine(node);
      m.governor().pin_core_freq(m.config().core_freq_min_hz);
    });
  }
  void restore_clocks(int node, sim::Time at) {
    cluster_.engine().call_at(at, [this, node] {
      cluster_.machine(node).governor().set_policy(hw::CpuPolicy::kOndemand);
    });
  }

 private:
  void schedule(sim::Resource* r, sim::Time at, double factor, sim::Time recover_at) {
    cluster_.engine().call_at(at, [r, factor] { r->set_capacity(r->capacity() * factor); });
    if (recover_at >= 0.0) {
      cluster_.engine().call_at(recover_at,
                                [r, factor] { r->set_capacity(r->capacity() / factor); });
    }
  }

  Cluster& cluster_;
};

}  // namespace cci::net
