// Fault model: planned degradations, lossy/corrupting wire windows, NIC
// blackouts, and reproducible stochastic fault schedules.
//
// Real clusters see link flaps, switch congestion from other jobs, PCIe
// retraining, thermally throttled sockets, and plain packet loss.  Three
// pieces model them:
//
//  * FaultState — the live wire-unreliability state the transport consults
//    per message (loss/corruption probabilities from stacked windows,
//    per-node NIC blackouts).  Owned by the Cluster; inert until armed, so
//    healthy runs take the exact legacy message path.
//  * FaultPlan — an ordered record of every injected fault event, with a
//    line-oriented text serialization.  A plan generated from a seed, a
//    plan parsed from text, and the plan an injector records while applying
//    either all compare equal — deterministic replay is an equality check.
//  * FaultInjector — schedules fault events on a cluster's engine.
//    Capacity faults track the *applied delta* per fault (not a restore
//    factor), so overlapping faults and absolute capacity writes from other
//    subsystems (uncore refresh) restore correctly; clock throttles save
//    the prior governor policy and pinned frequency and restore those.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/frequency_governor.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace cci::net {

// ---- live wire-unreliability state ----------------------------------------

/// Consulted by the transport on every message attempt.  Loss/corruption
/// windows stack: the effective probability is 1 - prod(1 - p_i).  NIC
/// blackouts nest per node.  `wire_active()` flips permanently the moment
/// any wire-unreliability fault is *scheduled* (not when its window opens),
/// so one run uses one protocol throughout — keeping the healthy path
/// bitwise-identical to a build without the fault subsystem.
class FaultState {
 public:
  FaultState();

  /// Retransmit policy for the reliable transport (mini-MPI reads these).
  struct ReliabilityParams {
    int max_retries = 8;       ///< attempts beyond the first before giving up
    double rto_safety = 3.0;   ///< initial RTO = safety x LogGP round trip
    double rto_max = 0.05;     ///< exponential-backoff cap (s)
  };
  ReliabilityParams reliability;

  /// Arm the reliable transport without any fault (overhead measurements).
  void force_reliable(bool on) { forced_ = on; }
  [[nodiscard]] bool wire_active() const { return armed_ || forced_; }
  /// Called by the injector when any wire-unreliability fault is scheduled.
  void arm() { armed_ = true; }

  // ---- loss / corruption windows (stacked) --------------------------------
  void push_loss(double p) { loss_.push_back(p); }
  void pop_loss(double p);
  void push_corrupt(double p) { corrupt_.push_back(p); }
  void pop_corrupt(double p);
  [[nodiscard]] double loss_prob() const { return combined(loss_); }
  [[nodiscard]] double corrupt_prob() const { return combined(corrupt_); }

  /// Per-attempt fate draws.  Consume RNG only while a window is open, so a
  /// reliable-but-quiet phase leaves the jitter stream untouched.  Draws
  /// that come up true bump net.messages_lost / net.messages_corrupted.
  bool draw_loss(sim::Rng& rng);
  bool draw_corrupt(sim::Rng& rng);

  // ---- NIC blackouts -------------------------------------------------------
  void begin_blackout(int node);
  void end_blackout(int node);
  [[nodiscard]] bool blacked_out(int node) const;
  /// Subscribe to blackout onsets (the transport cancels in-flight DMA
  /// flows through this).  Subscribers must outlive the simulation run.
  void on_blackout(std::function<void(int node)> fn) {
    blackout_subs_.push_back(std::move(fn));
  }

 private:
  [[nodiscard]] static double combined(const std::vector<double>& ps);

  std::vector<double> loss_;
  std::vector<double> corrupt_;
  std::map<int, int> blackout_depth_;
  std::vector<std::function<void(int)>> blackout_subs_;
  bool armed_ = false;
  bool forced_ = false;
  obs::Counter* obs_lost_ = nullptr;
  obs::Counter* obs_corrupted_ = nullptr;
};

// ---- fault plans -----------------------------------------------------------

/// One injected fault.  `until < 0` means no scheduled recovery.
struct FaultEvent {
  enum class Kind {
    kWireDegrade,     ///< crossbar capacity x value over [at, until]
    kMemCtrlDegrade,  ///< node/numa memory controller x value
    kNicDegrade,      ///< node NIC health factor = value
    kNicBlackout,     ///< node NIC passes no traffic over [at, until]
    kNodeThrottle,    ///< node cores pinned to minimum frequency
    kLossWindow,      ///< wire drops each message with prob. value
    kCorruptWindow,   ///< wire corrupts each message with prob. value
  };
  Kind kind = Kind::kWireDegrade;
  sim::Time at = 0.0;
  sim::Time until = -1.0;
  int node = -1;  ///< -1 for cluster-wide events (wire, loss, corruption)
  int numa = 0;   ///< kMemCtrlDegrade only
  double value = 1.0;  ///< capacity factor or probability, per kind

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Ordered record of injected events, with a text round trip for replay.
class FaultPlan {
 public:
  void add(const FaultEvent& event) { events_.push_back(event); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// One line per event; doubles printed with %.17g so parse(serialize())
  /// reproduces the plan bit-for-bit.
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws std::runtime_error on malformed input.
  static FaultPlan parse(const std::string& text);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

/// Seeded stochastic fault schedules: inter-arrival times drawn from an
/// exponential (memoryless link flaps) or Weibull (wear-out / bursty,
/// shape != 1) distribution, event kinds from a weighted mix.  Same config
/// -> same plan, always.
struct FaultScheduleConfig {
  std::uint64_t seed = 42;
  sim::Time horizon = 1.0;  ///< generate events with at < horizon

  enum class Dist { kExponential, kWeibull };
  Dist interarrival = Dist::kExponential;
  double mean_interarrival = 0.05;  ///< s between fault onsets
  double weibull_shape = 1.5;       ///< <1 bursty, >1 wear-out clustering

  int nodes = 2;

  /// Mix weights; 0 disables a kind.
  double w_wire_degrade = 1.0;
  double w_nic_degrade = 1.0;
  double w_nic_blackout = 0.5;
  double w_node_throttle = 0.5;
  double w_loss_window = 1.0;
  double w_corrupt_window = 0.5;

  double duration_min = 0.005, duration_max = 0.05;        ///< window length (s)
  double factor_min = 0.1, factor_max = 0.8;               ///< capacity factors
  double loss_prob_min = 0.01, loss_prob_max = 0.3;
  double corrupt_prob_min = 0.01, corrupt_prob_max = 0.1;
};

FaultPlan generate_fault_plan(const FaultScheduleConfig& config);

// ---- injector --------------------------------------------------------------

/// Schedules fault events on the cluster's engine and records everything it
/// injects into a FaultPlan.  The injector must outlive the simulation run
/// (scheduled callbacks reference it).
class FaultInjector {
 public:
  explicit FaultInjector(Cluster& cluster) : cluster_(cluster) {}

  // ---- capacity faults (delta-tracked restore) ----------------------------
  /// Scale the wire capacity by `factor` at time `at`; restore at
  /// `recover_at` (skip restore if negative).
  void degrade_wire(sim::Time at, double factor, sim::Time recover_at = -1.0);
  /// Degrade one node's NUMA memory controller (e.g. faulty DIMM channel).
  void degrade_mem_ctrl(int node, int numa, sim::Time at, double factor,
                        sim::Time recover_at = -1.0);
  /// Degrade a node's NIC DMA engine (PCIe link retraining to a lower
  /// width, a classic production fault).  Goes through the NIC's health
  /// factor so the lazy uncore refresh cannot silently undo the fault.
  void degrade_nic(int node, sim::Time at, double factor, sim::Time recover_at = -1.0);

  // ---- clock faults (policy-saving restore) -------------------------------
  /// Thermal throttle: pin every core of `node` to the machine's minimum
  /// frequency at `at`.  The governor policy active just before the
  /// throttle is saved; restore_clocks (or `recover_at`) reinstates it.
  void throttle_node(int node, sim::Time at, sim::Time recover_at = -1.0);
  void restore_clocks(int node, sim::Time at);

  // ---- wire unreliability --------------------------------------------------
  /// Drop each message with probability `p` over [at, until] (until < 0 =
  /// forever).  Arms the reliable transport immediately.
  void loss_window(double p, sim::Time at, sim::Time until = -1.0);
  /// Corrupt each message with probability `p` (detected by the receiver's
  /// CRC check and retransmitted).
  void corrupt_window(double p, sim::Time at, sim::Time until = -1.0);
  /// NIC passes no traffic over [at, until]; in-flight DMA flows touching
  /// the node are cancelled at onset.
  void blackout_nic(int node, sim::Time at, sim::Time until = -1.0);

  // ---- plans ---------------------------------------------------------------
  /// Inject every event of a plan (generated or parsed).  The injector's
  /// own plan() records them again, so replays compare equal to the input.
  void apply(const FaultPlan& plan);
  /// Everything this injector has scheduled, in scheduling order.
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Capacity degradation with delta-tracked restore: the injection
  /// captures the capacity it removed, recovery adds exactly that back —
  /// correct under overlapping faults and absolute capacity writes from
  /// other subsystems, where a `capacity / factor` restore double-counts.
  void schedule(sim::Resource* r, sim::Time at, double factor, sim::Time recover_at);

  Cluster& cluster_;
  FaultPlan plan_;
  struct SavedClocks {
    bool throttled = false;
    hw::CpuPolicy policy = hw::CpuPolicy::kOndemand;
    double pinned_hz = 0.0;
  };
  std::map<int, SavedClocks> saved_clocks_;
  /// Removed-capacity records for delta-tracked restores.  A deque keeps
  /// element addresses stable, so the onset/recovery events capture a raw
  /// pointer instead of a shared_ptr control block per fault.  The injector
  /// already must outlive its scheduled events (they capture `this` in the
  /// NIC/clock paths), so the storage lives exactly long enough.
  std::deque<double> capacity_deltas_;
};

}  // namespace cci::net
