// Topology: declarative switch/link graph descriptions for the fabric.
//
// The paper measures a 2-node cluster whose fabric is one crossbar; this
// API generalizes that to multi-level switch graphs so congestion onset
// and inter-job interference (ROADMAP item 2, "Modeling and Analysis of
// Application Interference on Dragonfly+", "Characterizing the Impact of
// Congestion in Modern HPC Interconnects") can be studied under the same
// flow model.  A Topology is a pure *description* — switches, directed
// links, host attachment, routing policy — that Cluster materializes into
// sim::Resources and routes over.  Three builders:
//
//  * single_switch(oversub)       — the historical model and the default:
//    every node's tx/rx port feeds one crossbar whose capacity is
//    oversub * sum of port rates.  Bitwise-identical to the pre-topology
//    fabric (same resources, same names, same order, same paths).
//  * fat_tree(k, oversub)         — two-level folded Clos: k leaf switches
//    with k/2 host ports each, k/2 spines, one up and one down link per
//    (leaf, spine) pair.  oversub scales uplink capacity (< 1 models the
//    oversubscribed production trees of §"FabricOptions").
//  * dragonfly(groups, routers, hosts) — groups of fully-meshed routers
//    ("hosts" hosts each), one global link per ordered group pair attached
//    at a deterministic gateway router.  Global links carry a latency
//    scale > 1, which feeds the per-link-class PDES lookahead.
//
// Routing is a pluggable policy resolved per flow registration:
//  * kMinimal  — deterministic shortest path; ECMP-style spine/gateway
//    selection is a pure function of (src, dst).  Never draws the RNG.
//  * kAdaptive — congestion-aware: the route is re-chosen every time a
//    flow (re)registers, from the *current* link utilizations of the flow
//    model; ties break through the cluster RNG, so decisions are
//    deterministic for a given seed and schedule.  This is adaptive
//    routing as flow re-registration, the granularity the fluid model
//    supports exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/partition.hpp"

namespace cci::net {

struct NetworkParams;

/// What a fabric link connects; drives naming, capacity and the
/// conservative-lookahead scale of events crossing it.
enum class LinkClass : std::uint8_t {
  kUp,      ///< fat-tree leaf -> spine
  kDown,    ///< fat-tree spine -> leaf
  kLocal,   ///< dragonfly intra-group router <-> router
  kGlobal,  ///< dragonfly inter-group (longer wire: latency scale > 1)
};

[[nodiscard]] const char* to_string(LinkClass c);

/// How paths across the graph are chosen (see header comment).
enum class RoutingPolicy : std::uint8_t { kMinimal, kAdaptive };

[[nodiscard]] const char* to_string(RoutingPolicy p);

class Topology {
 public:
  enum class Kind : std::uint8_t { kSingleSwitch, kFatTree, kDragonfly };

  /// One directed inter-switch link of the graph.
  struct Link {
    int src = 0;  ///< switch index
    int dst = 0;  ///< switch index
    LinkClass cls = LinkClass::kLocal;
    double bw_scale = 1.0;  ///< capacity = bw_scale * NetworkParams::wire_bw
  };

  /// The historical fabric: one crossbar, capacity
  /// oversubscription * nodes * wire_bw.  The default everywhere.
  static Topology single_switch(double oversubscription = 1.0);
  /// Two-level folded Clos of k-port switches (k even, >= 2): k leaves x
  /// k/2 spines, k/2 host ports per leaf.  Uplink capacity is
  /// oversubscription * wire_bw per (leaf, spine) link.
  static Topology fat_tree(int k, double oversubscription = 1.0);
  /// groups fully-connected groups of `routers` fully-meshed routers with
  /// `hosts` hosts each; one global link per ordered group pair.
  static Topology dragonfly(int groups, int routers, int hosts);

  /// Select the routing policy (builder-style; default kMinimal).
  Topology& routing(RoutingPolicy p) {
    routing_ = p;
    return *this;
  }
  /// Utilization on the minimal route above which kAdaptive considers
  /// deviating (fat-tree: to another spine, dragonfly: via an intermediate
  /// group).  Builder-style; default 0.0 = always take the least-loaded
  /// candidate.
  Topology& adaptive_threshold(double u) {
    adaptive_threshold_ = u;
    return *this;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] RoutingPolicy routing() const { return routing_; }
  [[nodiscard]] double threshold() const { return adaptive_threshold_; }
  [[nodiscard]] double oversubscription() const { return oversubscription_; }

  // ---- graph shape ----------------------------------------------------------
  [[nodiscard]] int switch_count() const { return switch_count_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  /// Human name of switch `s` ("switch", "leaf3", "g1.r2").
  [[nodiscard]] std::string switch_name(int s) const;
  /// Hosts the topology can attach (kSingleSwitch: unbounded, returns 0).
  [[nodiscard]] int max_hosts() const { return max_hosts_; }
  /// Edge switch node `n` plugs into.
  [[nodiscard]] int host_switch(int node) const;

  // ---- groups (PDES carve boundaries) ---------------------------------------
  /// Topology groups are the units parallel simulation may carve at:
  /// dragonfly groups, fat-tree leaves, the single switch.  Cross-group
  /// traffic always crosses a link whose class has latency_scale >= 1, so
  /// the conservative lookahead between groups is
  /// min_remote_delay(net) >= net.min_remote_delay().
  [[nodiscard]] int group_count() const { return group_count_; }
  [[nodiscard]] int group_of_switch(int s) const;
  [[nodiscard]] int group_of_node(int node) const { return group_of_switch(host_switch(node)); }

  /// Extra one-way latency of a link class, as a multiple of the fabric's
  /// base wire latency (global dragonfly links are physically longer).
  [[nodiscard]] static double latency_scale(LinkClass c) {
    return c == LinkClass::kGlobal ? 3.0 : 1.0;
  }
  /// Conservative cross-*group* delivery floor on this topology: the base
  /// fabric floor scaled by the cheapest link class that can cross a group
  /// boundary.  Single-group topologies fall back to the fabric floor.
  [[nodiscard]] double min_remote_delay(const NetworkParams& net) const;

  /// Condensed group graph for sim::partition_groups with `nodes` hosts
  /// attached: one vertex per carve group weighted by attached hosts, one
  /// undirected edge per inter-group coupling, capacities in units of
  /// wire_bw (summed bw_scale).  Direct group-to-group links (dragonfly
  /// globals) accumulate onto their pair's edge; links through shared
  /// switches that belong to no group (fat-tree spines) couple *every*
  /// group pair, so their total capacity is spread as a uniform clique —
  /// any balanced carve of a fat tree cuts the same spine capacity, which
  /// is exactly right.
  [[nodiscard]] sim::GroupGraph group_graph(int nodes) const;
  /// Indices into links() of the links a shard map cuts: a link is cut
  /// when its endpoint groups land on different shards, and every link
  /// touching a group-less shared switch (fat-tree spine) is cut as soon
  /// as the map uses more than one shard — the spine couples all of them.
  [[nodiscard]] std::vector<int> cut_links(const std::vector<int>& group_shard) const;
  /// Conservative window for a concrete cut: the base fabric floor scaled
  /// by the *cheapest link class actually cut* — a dragonfly carve that
  /// only severs global links (latency scale 3) may run windows 3x longer
  /// than the generic floor and stay conservative, because congestion
  /// state needs a global-wire time to propagate between shards.  An empty
  /// cut falls back to min_remote_delay(net).
  [[nodiscard]] double min_cut_delay(const NetworkParams& net,
                                     const std::vector<int>& cut) const;

  /// Canonical `key=value;` serialization for campaign cache keys (doubles
  /// as %.17g).  Everything that can change a route or a capacity is here.
  void serialize(std::ostream& os) const;

  // ---- builder-internal shape parameters (read-only) ------------------------
  [[nodiscard]] int param_k() const { return k_; }
  [[nodiscard]] int param_groups() const { return groups_; }
  [[nodiscard]] int param_routers() const { return routers_; }
  [[nodiscard]] int param_hosts() const { return hosts_; }

 private:
  Topology() = default;

  Kind kind_ = Kind::kSingleSwitch;
  RoutingPolicy routing_ = RoutingPolicy::kMinimal;
  double adaptive_threshold_ = 0.0;
  double oversubscription_ = 1.0;
  int switch_count_ = 1;
  int max_hosts_ = 0;      ///< 0 = unbounded (single switch)
  int group_count_ = 1;
  int k_ = 0;              ///< fat-tree port count
  int groups_ = 0, routers_ = 0, hosts_ = 0;  ///< dragonfly shape
  std::vector<Link> links_;
};

}  // namespace cci::net
