// NIC model: DMA engine resource, registration cache, NUMA attachment.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "hw/machine.hpp"
#include "net/network_params.hpp"

namespace cci::net {

class Nic {
 public:
  Nic(hw::Machine& machine, const NetworkParams& params, const std::string& prefix)
      : machine_(machine),
        params_(params),
        dma_engine_(machine.model().add_resource(prefix + "nic-dma", params.dma_bw_max_uncore)),
        obs_queue_depth_(
            &obs::Registry::global().gauge("net." + prefix + "nic-dma.queue_depth")) {}

  hw::Machine& machine() { return machine_; }
  const NetworkParams& params() const { return params_; }
  /// NUMA node the NIC's PCIe root complex hangs off.
  [[nodiscard]] int numa() const { return machine_.config().nic_numa; }
  [[nodiscard]] int socket() const { return machine_.config().socket_of_numa(numa()); }

  /// The PCIe/uncore-limited DMA path; shared by all transfers of this NIC.
  sim::Resource* dma_engine() { return dma_engine_; }

  /// Transfer bracketing for the `net.<prefix>nic-dma.queue_depth` gauge:
  /// number of copies/DMAs concurrently in flight on this engine, sampled
  /// into per-resource timelines by the obs::Sampler.
  void dma_begin() { obs_queue_depth_->set(static_cast<double>(++dma_inflight_)); }
  void dma_end() { obs_queue_depth_->set(static_cast<double>(--dma_inflight_)); }
  [[nodiscard]] int dma_inflight() const { return dma_inflight_; }

  /// Re-derive DMA capacity from the current uncore frequency of the NIC's
  /// socket.  Called lazily at transfer start: uncore settings change only
  /// between experiment phases.
  void refresh_dma_capacity();

  /// Health factor multiplied into the DMA capacity (fault injection:
  /// PCIe retraining, firmware throttling).  1.0 = healthy.
  void set_degradation(double factor) {
    degradation_ = factor;
    refresh_dma_capacity();
  }
  [[nodiscard]] double degradation() const { return degradation_; }

  /// Registration cache (pin-down cache [20] in the paper): first use of a
  /// buffer pays the pinning cost, recycled buffers do not.
  [[nodiscard]] bool registered(std::uint64_t buffer_id) const {
    return reg_cache_.contains(buffer_id);
  }
  void register_buffer(std::uint64_t buffer_id) { reg_cache_.insert(buffer_id); }
  [[nodiscard]] double registration_cost(std::size_t bytes) const {
    return params_.registration_base +
           params_.registration_per_byte * static_cast<double>(bytes);
  }
  void clear_registration_cache() { reg_cache_.clear(); }

 private:
  hw::Machine& machine_;
  NetworkParams params_;
  sim::Resource* dma_engine_;
  obs::Gauge* obs_queue_depth_;
  int dma_inflight_ = 0;
  double degradation_ = 1.0;
  std::unordered_set<std::uint64_t> reg_cache_;
};

}  // namespace cci::net
