#include "net/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "net/network_params.hpp"

namespace cci::net {

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kUp: return "up";
    case LinkClass::kDown: return "down";
    case LinkClass::kLocal: return "local";
    case LinkClass::kGlobal: return "global";
  }
  return "?";
}

const char* to_string(RoutingPolicy p) {
  return p == RoutingPolicy::kMinimal ? "minimal" : "adaptive";
}

Topology Topology::single_switch(double oversubscription) {
  if (oversubscription <= 0.0)
    throw std::invalid_argument("Topology::single_switch: oversubscription must be > 0");
  Topology t;
  t.kind_ = Kind::kSingleSwitch;
  t.oversubscription_ = oversubscription;
  t.switch_count_ = 1;
  t.max_hosts_ = 0;  // any node count: the crossbar scales with it
  t.group_count_ = 1;
  return t;
}

Topology Topology::fat_tree(int k, double oversubscription) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument("Topology::fat_tree: k must be even and >= 2");
  if (oversubscription <= 0.0)
    throw std::invalid_argument("Topology::fat_tree: oversubscription must be > 0");
  Topology t;
  t.kind_ = Kind::kFatTree;
  t.oversubscription_ = oversubscription;
  t.k_ = k;
  const int leaves = k;
  const int spines = k / 2;
  t.switch_count_ = leaves + spines;  // switches [0, k) are leaves, then spines
  t.max_hosts_ = leaves * (k / 2);
  t.group_count_ = leaves;  // PDES carve unit: one leaf + its hosts
  t.links_.reserve(static_cast<std::size_t>(leaves) * spines * 2);
  // Deterministic order: for each leaf, its uplinks then nothing else; the
  // down direction follows immediately so a (leaf, spine) pair's resources
  // are adjacent.
  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      t.links_.push_back({l, leaves + s, LinkClass::kUp, oversubscription});
      t.links_.push_back({leaves + s, l, LinkClass::kDown, oversubscription});
    }
  }
  return t;
}

Topology Topology::dragonfly(int groups, int routers, int hosts) {
  if (groups < 1 || routers < 1 || hosts < 1)
    throw std::invalid_argument("Topology::dragonfly: groups/routers/hosts must be >= 1");
  Topology t;
  t.kind_ = Kind::kDragonfly;
  t.groups_ = groups;
  t.routers_ = routers;
  t.hosts_ = hosts;
  t.switch_count_ = groups * routers;  // switch id = g * routers + r
  t.max_hosts_ = groups * routers * hosts;
  t.group_count_ = groups;
  // Intra-group full mesh, both directions, group-major then (r1, r2).
  for (int g = 0; g < groups; ++g)
    for (int r1 = 0; r1 < routers; ++r1)
      for (int r2 = 0; r2 < routers; ++r2) {
        if (r1 == r2) continue;
        t.links_.push_back(
            {g * routers + r1, g * routers + r2, LinkClass::kLocal, 1.0});
      }
  // One global link per ordered group pair, attached at deterministic
  // gateway routers (see gateway_router below).
  for (int g = 0; g < groups; ++g)
    for (int h = 0; h < groups; ++h) {
      if (g == h) continue;
      const int src_r = (h + (h > g ? -1 : 0)) % routers;
      const int dst_r = (g + (g > h ? -1 : 0)) % routers;
      t.links_.push_back(
          {g * routers + src_r, h * routers + dst_r, LinkClass::kGlobal, 1.0});
    }
  return t;
}

std::string Topology::switch_name(int s) const {
  switch (kind_) {
    case Kind::kSingleSwitch:
      return "switch";
    case Kind::kFatTree:
      return s < k_ ? "leaf" + std::to_string(s) : "spine" + std::to_string(s - k_);
    case Kind::kDragonfly:
      return "g" + std::to_string(s / routers_) + ".r" + std::to_string(s % routers_);
  }
  return "?";
}

int Topology::host_switch(int node) const {
  switch (kind_) {
    case Kind::kSingleSwitch:
      return 0;
    case Kind::kFatTree:
      return node / (k_ / 2);
    case Kind::kDragonfly:
      return node / hosts_;
  }
  return 0;
}

int Topology::group_of_switch(int s) const {
  switch (kind_) {
    case Kind::kSingleSwitch:
      return 0;
    case Kind::kFatTree:
      return s < k_ ? s : -1;  // spines are shared by every group
    case Kind::kDragonfly:
      return s / routers_;
  }
  return 0;
}

double Topology::min_remote_delay(const NetworkParams& net) const {
  if (group_count_ <= 1) return net.min_remote_delay();
  // Cheapest link class that can cross a group boundary.
  double scale = 1.0;
  switch (kind_) {
    case Kind::kFatTree:
      // leaf -> spine -> leaf: two fabric hops, each at base latency.
      scale = latency_scale(LinkClass::kUp);
      break;
    case Kind::kDragonfly:
      scale = latency_scale(LinkClass::kGlobal);
      break;
    case Kind::kSingleSwitch:
      break;
  }
  return net.min_remote_delay() * scale;
}

sim::GroupGraph Topology::group_graph(int nodes) const {
  sim::GroupGraph graph;
  graph.groups = group_count_;
  graph.load.assign(static_cast<std::size_t>(group_count_), 0.0);
  for (int n = 0; n < nodes; ++n) {
    const int g = group_of_node(n);
    if (g >= 0) graph.load[static_cast<std::size_t>(g)] += 1.0;
  }
  if (group_count_ <= 1) return graph;
  const std::size_t G = static_cast<std::size_t>(group_count_);
  std::vector<double> pair_cap(G * G, 0.0);
  double shared_cap = 0.0;  ///< capacity into/out of group-less switches
  for (const Link& l : links_) {
    const int ga = group_of_switch(l.src);
    const int gb = group_of_switch(l.dst);
    if (ga >= 0 && gb >= 0) {
      if (ga == gb) continue;
      const std::size_t lo = static_cast<std::size_t>(std::min(ga, gb));
      const std::size_t hi = static_cast<std::size_t>(std::max(ga, gb));
      pair_cap[lo * G + hi] += l.bw_scale;
    } else {
      shared_cap += l.bw_scale;
    }
  }
  // Shared-switch capacity couples every pair uniformly (half of it is the
  // return direction, but a uniform clique only needs relative weights).
  const double pairs = static_cast<double>(G) * static_cast<double>(G - 1) / 2.0;
  const double share = pairs > 0.0 ? shared_cap / pairs : 0.0;
  for (std::size_t a = 0; a < G; ++a)
    for (std::size_t b = a + 1; b < G; ++b) {
      const double cap = pair_cap[a * G + b] + share;
      if (cap > 0.0)
        graph.edges.push_back(
            {static_cast<int>(a), static_cast<int>(b), cap});
    }
  return graph;
}

std::vector<int> Topology::cut_links(const std::vector<int>& group_shard) const {
  std::vector<int> cut;
  bool multi = false;
  for (std::size_t g = 1; g < group_shard.size(); ++g)
    if (group_shard[g] != group_shard[0]) multi = true;
  if (!multi) return cut;
  auto shard_of = [&](int group) {
    return group >= 0 && group < static_cast<int>(group_shard.size())
               ? group_shard[static_cast<std::size_t>(group)]
               : -1;
  };
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const int ga = group_of_switch(links_[li].src);
    const int gb = group_of_switch(links_[li].dst);
    // A group-less endpoint (fat-tree spine) is shared fabric: its links
    // are boundary links whenever the carve is non-trivial.
    if (ga < 0 || gb < 0 || shard_of(ga) != shard_of(gb))
      cut.push_back(static_cast<int>(li));
  }
  return cut;
}

double Topology::min_cut_delay(const NetworkParams& net,
                               const std::vector<int>& cut) const {
  if (cut.empty()) return min_remote_delay(net);
  double scale = latency_scale(LinkClass::kGlobal);
  for (int li : cut)
    scale = std::min(scale, latency_scale(links_[static_cast<std::size_t>(li)].cls));
  return net.min_remote_delay() * scale;
}

void Topology::serialize(std::ostream& os) const {
  auto put_d = [&os](const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << key << '=' << buf << ';';
  };
  os << "t.kind=" << static_cast<int>(kind_) << ';';
  os << "t.routing=" << to_string(routing_) << ';';
  put_d("t.threshold", adaptive_threshold_);
  put_d("t.oversub", oversubscription_);
  os << "t.k=" << k_ << ';';
  os << "t.groups=" << groups_ << ';';
  os << "t.routers=" << routers_ << ';';
  os << "t.hosts=" << hosts_ << ';';
}

}  // namespace cci::net
