// FabricGraph: per-shard fluid replica of a Cluster's fabric resources.
//
// Cross-shard fabric simulation (core::FabricLab::run_sharded) runs every
// stream as one fluid activity on its source node's shard, over that
// shard's *own* copy of the fabric — tx/rx ports, switch crossbars, links
// — built by this class with exactly the Cluster's names, capacities and
// registration order.  Resources the static routes of several shards
// share become boundary proxies (sim::ShardGroup::add_boundary_link):
// their replicas exchange capacity at every window barrier, so each
// shard's local max-min solve sees the remote load as reduced capacity at
// most one window stale.
//
// Keys are shard-independent integers (a pure function of the topology
// shape), so the coordinator can plan routes and boundary sets before any
// shard exists, and every shard's replica of key k sits at resource index
// k in its own FlowModel:
//
//     tx(n) = n            rx(n) = N + n
//     xbar(s) = 2N + s     link(li) = 2N + S + li
//
// Routing is kMinimal only — adaptive routing reads *global* link
// utilization and draws the cluster RNG, neither of which exists once the
// fabric is split; run_sharded rejects adaptive scenarios.
#pragma once

#include <vector>

#include "net/network_params.hpp"
#include "net/topology.hpp"

namespace cci::sim {
class FlowModel;
class Resource;
}  // namespace cci::sim

namespace cci::net {

class FabricGraph {
 public:
  /// Shape-only construction: key space, minimal routes and base
  /// capacities, no resources.  Usable from the coordinator for planning.
  FabricGraph(const Topology& topo, const NetworkParams& net, int nodes);

  /// Materialize every key as a resource of `model`, in key order, with
  /// the Cluster's names and capacities.  The model must be empty so that
  /// resource index == key (asserted); call inside ShardGroup::with_shard
  /// so pooled state binds to the worker thread.
  void materialize(sim::FlowModel& model);

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int key_count() const {
    return 2 * nodes_ + switch_count_ + static_cast<int>(link_count_);
  }
  [[nodiscard]] int tx_key(int node) const { return node; }
  [[nodiscard]] int rx_key(int node) const { return nodes_ + node; }
  [[nodiscard]] int xbar_key(int s) const { return 2 * nodes_ + s; }
  [[nodiscard]] int link_key(int li) const { return 2 * nodes_ + switch_count_ + li; }

  /// Capacity the Cluster would give this resource (wire_bw scaled).
  [[nodiscard]] double base_capacity(int key) const {
    return base_cap_[static_cast<std::size_t>(key)];
  }
  /// Cluster-identical resource name for this key.
  [[nodiscard]] const std::string& name(int key) const {
    return names_[static_cast<std::size_t>(key)];
  }
  /// Materialized resource for `key` (nullptr before materialize()).
  [[nodiscard]] sim::Resource* at(int key) const {
    return res_[static_cast<std::size_t>(key)];
  }

  /// Append the minimal-route key sequence src -> dst (tx, xbars/links,
  /// rx).  A pure function of the topology shape: never reads utilization,
  /// never draws an RNG, identical on every shard and the coordinator.
  void minimal_path(int src, int dst, std::vector<int>& keys) const;

 private:
  [[nodiscard]] int link_index(int s1, int s2) const {
    return link_at_[static_cast<std::size_t>(s1) *
                        static_cast<std::size_t>(switch_count_) +
                    static_cast<std::size_t>(s2)];
  }

  Topology topo_;
  int nodes_ = 0;
  int switch_count_ = 0;
  std::size_t link_count_ = 0;
  std::vector<int> link_at_;  ///< link_at_[src * S + dst], -1 = no link
  std::vector<double> base_cap_;
  std::vector<std::string> names_;
  std::vector<sim::Resource*> res_;
};

}  // namespace cci::net
