// Fabric parameters: LogGP-style constants for each network in §2.2.
//
// Calibration notes (henri, InfiniBand ConnectX-4 EDR):
//  * Fig. 1a pins the core frequency with the userspace governor and sees
//    1.8 us at 2300 MHz vs 3.1 us at 1000 MHz for 4 B messages.  The
//    frequency-dependent part is software overhead: o_send + o_recv =
//    2300 cycles reproduces both points with a 0.45 us fixed wire/NIC part
//    plus the NUMA terms supplied by the machine model.
//  * Fig. 1b: asymptotic bandwidth 10.5 GB/s at max uncore, 10.1 GB/s at
//    min uncore -> the DMA/uncore engine is the binding resource, slightly
//    below the 12.08 GB/s EDR wire rate.
#pragma once

#include <cstddef>
#include <string>

namespace cci::net {

struct NetworkParams {
  std::string fabric;

  // ---- wire ---------------------------------------------------------------
  double wire_bw = 0;       ///< payload rate on the wire (B/s)
  double wire_latency = 0;  ///< one-way fixed HW latency: NIC + switch (s)

  // ---- DMA engine (PCIe + uncore path) -------------------------------------
  double dma_bw_max_uncore = 0;  ///< DMA rate with uncore at max (B/s)
  double dma_bw_min_uncore = 0;  ///< DMA rate with uncore at min (B/s)

  // ---- CPU (software) costs, in comm-core cycles ---------------------------
  double send_overhead_cycles = 0;  ///< post-send path (o_s of LogP)
  double recv_overhead_cycles = 0;  ///< completion/matching path (o_r)
  double pio_cycles_per_byte = 0;   ///< eager copy cost (CPU-driven)

  // ---- protocol -------------------------------------------------------------
  std::size_t eager_threshold = 0;    ///< rendezvous above this size
  std::size_t pio_latency_cutoff = 0; ///< below: pure latency path (no flow)
  std::size_t pio_chunk = 64;         ///< bytes per dependent PIO transaction
  int pio_socket_crossings = 4;       ///< doorbell+payload+completion hops
  /// Fixed PIO/doorbell processing latency, inflated by pressure on the
  /// NIC-side memory controller (the path into the PCIe root shares it).
  double pio_base_latency = 0;
  double control_latency = 0;         ///< RTS/CTS one-way (s)

  // ---- registration cache (pin-down) ----------------------------------------
  double registration_base = 0;      ///< per-buffer registration cost (s)
  double registration_per_byte = 0;  ///< pinning cost per byte (s/B)

  // ---- reliability (only charged when the fault model is armed) -------------
  /// Receiver-side CRC/checksum verification cost per payload byte, in
  /// comm-core cycles.  Software CRC32C sits around 0.4 cycles/B.
  double crc_cycles_per_byte = 0.4;

  // ---- run-to-run noise ------------------------------------------------------
  double noise_rel = 0.0;  ///< relative jitter on latency components

  /// Conservative PDES lookahead for events crossing between nodes on this
  /// fabric: the one-way wire/NIC latency plus the DMA engine's per-byte
  /// floor (the time even a 1-byte payload spends in the uncore path).  Any
  /// cross-node effect of an event at time t lands at or after
  /// t + min_remote_delay(), so shards separated by this fabric may advance
  /// that far past each other without ever seeing a message from the past.
  [[nodiscard]] double min_remote_delay() const {
    const double dma_floor =
        dma_bw_max_uncore > 0 ? 1.0 / dma_bw_max_uncore : 0.0;
    return wire_latency + dma_floor;
  }

  static NetworkParams ib_edr();   ///< henri / pyxis
  static NetworkParams ib_hdr();   ///< billy
  static NetworkParams opa100();   ///< bora (wide bandwidth deviation, §3.2)
  /// OpenMPI-flavoured stack on the same EDR fabric (§2.2: "we observed
  /// similar results with other MPI implementations, such as OpenMPI
  /// 4.0"): lower eager threshold, heavier software path.
  static NetworkParams ib_edr_openmpi();
  /// Fabric used by a machine preset name ("henri", "bora", ...).
  static NetworkParams for_machine(const std::string& machine_name);
};

}  // namespace cci::net
