// Summary statistics in the paper's reporting style (§2.1): curves are
// medians, shaded areas span the first and last deciles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cci::trace {

struct Stats {
  std::size_t n = 0;
  double median = 0.0;
  double decile1 = 0.0;  ///< 10th percentile
  double decile9 = 0.0;  ///< 90th percentile
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Stats of(std::vector<double> samples) {
    Stats s;
    s.n = samples.size();
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    s.median = quantile_sorted(samples, 0.5);
    s.decile1 = quantile_sorted(samples, 0.1);
    s.decile9 = quantile_sorted(samples, 0.9);
    double sum = 0.0;
    for (double v : samples) sum += v;
    s.mean = sum / static_cast<double>(samples.size());
    return s;
  }

  /// Linear-interpolated quantile of an ascending-sorted vector.
  static double quantile_sorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    if (sorted.size() == 1) return sorted[0];
    double pos = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
};

}  // namespace cci::trace
