// Render an obs::Snapshot as a trace::Table (terminal + CSV export path).
//
// One row per metric, name-sorted (the snapshot's order), so a registry
// dump diffed across two runs lines up metric-for-metric.
#pragma once

#include "obs/metrics.hpp"
#include "trace/table.hpp"

namespace cci::trace {

/// Columns: metric, kind, value (counter total / gauge value / histogram
/// mean), count, p50, p90, max.
Table metrics_table(const obs::Snapshot& snapshot);

}  // namespace cci::trace
