#include "trace/freq_trace.hpp"

namespace cci::trace {

FreqTrace::FreqTrace(hw::Machine& machine) : machine_(machine) {
  const auto& cfg = machine.config();
  double now = machine.engine().now();
  for (int c = 0; c < cfg.total_cores(); ++c)
    events_.push_back({now, c, machine.governor().core_freq(c)});
  for (int s = 0; s < cfg.sockets; ++s)
    events_.push_back({now, -1 - s, machine.governor().uncore_freq(s)});
  machine.governor().set_trace([this](int core, double hz) {
    events_.push_back({machine_.engine().now(), core, hz});
  });
}

double FreqTrace::freq_at(int core, double t) const {
  double freq = 0.0;
  for (const Event& e : events_) {
    if (e.time > t) break;
    if (e.core == core) freq = e.freq_hz;
  }
  return freq;
}

FreqTrace::Sampled FreqTrace::sample(double t0, double t1, double dt, int cores) const {
  Sampled out;
  for (double t = t0; t <= t1 + 1e-12; t += dt) out.times.push_back(t);
  out.core_freqs.assign(static_cast<std::size_t>(cores),
                        std::vector<double>(out.times.size(), 0.0));
  // Single sweep: events are time-ordered by construction.
  std::vector<double> current(static_cast<std::size_t>(cores), 0.0);
  std::size_t ev = 0;
  for (std::size_t ti = 0; ti < out.times.size(); ++ti) {
    while (ev < events_.size() && events_[ev].time <= out.times[ti]) {
      if (events_[ev].core >= 0 && events_[ev].core < cores)
        current[static_cast<std::size_t>(events_[ev].core)] = events_[ev].freq_hz;
      ++ev;
    }
    for (int c = 0; c < cores; ++c)
      out.core_freqs[static_cast<std::size_t>(c)][ti] = current[static_cast<std::size_t>(c)];
  }
  return out;
}

}  // namespace cci::trace
