#include "trace/table.hpp"

#include <cstdio>
#include <ostream>

namespace cci::trace {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string fmt(double value, int digits) {
  if (digits < 0) digits = 0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

void Table::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt_g(v));
  rows_.push_back(std::move(cells));
}

void Table::add_text_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_time(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

std::string format_bw(double bytes_per_sec) {
  char buf[64];
  if (bytes_per_sec >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_sec / 1e9);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_sec / 1e6);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%.0f MB", bytes / (1 << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f KB", bytes / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

}  // namespace cci::trace
