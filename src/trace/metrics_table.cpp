#include "trace/metrics_table.hpp"

namespace cci::trace {

Table metrics_table(const obs::Snapshot& snapshot) {
  Table t({"metric", "kind", "value", "count", "p50", "p90", "max"});
  for (const auto& e : snapshot.entries) {
    using Kind = obs::Snapshot::Entry::Kind;
    switch (e.kind) {
      case Kind::kCounter:
        t.add_text_row({e.name, "counter", fmt(e.value, 3), "", "", "", ""});
        break;
      case Kind::kGauge:
        t.add_text_row({e.name, "gauge", fmt(e.value, 3), "", "", "", fmt(e.max, 3)});
        break;
      case Kind::kHistogram:
        t.add_text_row({e.name, "histogram", fmt(e.value, 6),
                        std::to_string(e.count), fmt(e.p50, 6), fmt(e.p90, 6),
                        fmt(e.max, 6)});
        break;
    }
  }
  return t;
}

}  // namespace cci::trace
