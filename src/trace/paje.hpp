// Paje trace export: the format StarPU's own offline tools (and ViTE)
// consume.  Exports runtime task-execution traces and governor frequency
// timelines so simulated runs can be inspected with the same visual
// workflow the paper's authors use.
//
// The dialect is the minimal, self-describing Paje header + events subset:
// containers per core, state changes per task, variables for frequencies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/freq_trace.hpp"

namespace cci::trace {

class PajeWriter {
 public:
  explicit PajeWriter(std::ostream& os);

  /// Emit the event-definition header (must be first).
  void write_header();
  /// Declare the container/state/variable type hierarchy and `cores`
  /// worker containers.
  void define_machine(const std::string& machine_name, int cores);

  /// One task execution as a Paje state interval on its core's container.
  void task_state(int core, const std::string& task_name, double start, double end);
  /// Frequency timeline as a Paje variable on the core's container.
  void core_frequency(int core, double time, double freq_hz);

  /// Convenience: dump a whole frequency trace.  (Runtime execution
  /// traces are dumped by looping Runtime::execution_trace() over
  /// task_state() — see examples/observability_tour.)
  void write_freq_trace(const FreqTrace& trace);

 private:
  std::ostream& os_;
  bool header_done_ = false;
};

}  // namespace cci::trace
