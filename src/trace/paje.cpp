#include "trace/paje.hpp"

#include <ostream>

namespace cci::trace {

PajeWriter::PajeWriter(std::ostream& os) : os_(os) {}

void PajeWriter::write_header() {
  if (header_done_) return;
  header_done_ = true;
  os_ << "%EventDef PajeDefineContainerType 0\n"
         "% Alias string\n% Type string\n% Name string\n"
         "%EndEventDef\n"
         "%EventDef PajeDefineStateType 1\n"
         "% Alias string\n% Type string\n% Name string\n"
         "%EndEventDef\n"
         "%EventDef PajeDefineVariableType 2\n"
         "% Alias string\n% Type string\n% Name string\n% Color color\n"
         "%EndEventDef\n"
         "%EventDef PajeCreateContainer 3\n"
         "% Time date\n% Alias string\n% Type string\n% Container string\n% Name string\n"
         "%EndEventDef\n"
         "%EventDef PajeSetState 4\n"
         "% Time date\n% Type string\n% Container string\n% Value string\n"
         "%EndEventDef\n"
         "%EventDef PajeSetVariable 5\n"
         "% Time date\n% Type string\n% Container string\n% Value double\n"
         "%EndEventDef\n";
}

void PajeWriter::define_machine(const std::string& machine_name, int cores) {
  write_header();
  os_ << "0 M 0 Machine\n";
  os_ << "0 C M Core\n";
  os_ << "1 S C WorkerState\n";
  os_ << "2 F C Frequency \"0.0 0.5 1.0\"\n";
  os_ << "3 0.000000 m M 0 " << machine_name << "\n";
  for (int c = 0; c < cores; ++c)
    os_ << "3 0.000000 c" << c << " C m core" << c << "\n";
}

void PajeWriter::task_state(int core, const std::string& task_name, double start, double end) {
  os_ << "4 " << start << " S c" << core << " " << task_name << "\n";
  os_ << "4 " << end << " S c" << core << " idle\n";
}

void PajeWriter::core_frequency(int core, double time, double freq_hz) {
  os_ << "5 " << time << " F c" << core << " " << freq_hz / 1e9 << "\n";
}

void PajeWriter::write_freq_trace(const FreqTrace& trace) {
  for (const auto& ev : trace.events())
    if (ev.core >= 0) core_frequency(ev.core, ev.time, ev.freq_hz);
}

}  // namespace cci::trace
