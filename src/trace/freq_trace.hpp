// Frequency timeline recorder for Fig. 2 / Fig. 3b-c style plots.
//
// Hooks a machine's governor trace callback and timestamps every core and
// uncore transition with the simulated clock; can resample the timeline on
// a fixed grid for plotting.
#pragma once

#include <map>
#include <vector>

#include "hw/frequency_governor.hpp"
#include "hw/machine.hpp"

namespace cci::trace {

class FreqTrace {
 public:
  /// Attaches to the machine's governor (replaces any existing trace fn)
  /// and snapshots the initial state.
  explicit FreqTrace(hw::Machine& machine);

  struct Event {
    double time;
    int core;  ///< core id, or -1-socket for uncore transitions
    double freq_hz;
  };
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Frequency of `core` at time `t` (step function between events).
  [[nodiscard]] double freq_at(int core, double t) const;

  /// Sampled timeline: one row per grid point, one column per core.
  struct Sampled {
    std::vector<double> times;
    std::vector<std::vector<double>> core_freqs;  ///< [core][time index]
  };
  [[nodiscard]] Sampled sample(double t0, double t1, double dt, int cores) const;

 private:
  hw::Machine& machine_;
  std::vector<Event> events_;
};

}  // namespace cci::trace
