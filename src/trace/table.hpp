// Plain-text table/series output for the benchmark harness.
//
// Each bench binary prints the series behind one of the paper's figures;
// Table renders them column-aligned for the terminal and can also emit
// CSV for replotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cci::trace {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; values are formatted with %.4g unless added as text.
  void add_row(const std::vector<double>& values);
  void add_text_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Column-aligned rendering with a header rule.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting: fmt(3.14159, 3) == "3.142".  The
/// replacement for the to_string().substr() truncation idiom — rounds
/// instead of chopping and never emits a dangling '.'.
std::string fmt(double value, int digits = 4);

/// The Table's default numeric cell rendering (%.4g), exposed so layers
/// that build text rows (the campaign engine) match add_row() exactly.
std::string fmt_g(double value);

/// Format seconds as the most readable unit (ns/us/ms/s).
std::string format_time(double seconds);
/// Format bytes/s as MB/s or GB/s.
std::string format_bw(double bytes_per_sec);
/// Format a byte count (B/KB/MB).
std::string format_bytes(double bytes);

}  // namespace cci::trace
