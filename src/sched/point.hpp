// Schedule-exploration hook points for the concurrent host layers.
//
// The concurrent host code (work-stealing CampaignEngine, thread-local obs
// registries with commutative merge, ShardGroup mailbox lanes) promises
// bitwise determinism: jobs=8 == jobs=1, shards=4 run-to-run identical.
// Those promises are tested only under whatever interleavings CI hardware
// happens to produce — until a controlled scheduler can *choose* the
// interleaving.  This header is the instrumentation half of that scheduler:
// a `CCI_SCHED_POINT(kind, id)` macro placed at every scheduling-relevant
// operation (deque pop/steal, registry merge, cache read/write/rename,
// mailbox post/drain, window-barrier arrival).
//
// Provenance pattern (mirrors CCI_OBS_DISABLE / CCI_SIM_POOLS): the macros
// compile to nothing unless the build defines CCI_SCHED, so default builds
// are byte-identical in behaviour — no branch, no function call, no symbol
// reference into cci_sched from the instrumented hot paths.  The runtime
// functions below always exist (the sched library is always built), so the
// explorer's own unit tests can drive hand-made threads through sched::point
// calls even in a default build.
//
// Runtime semantics when CCI_SCHED is defined but no sched::Session is
// installed: every call is a cheap early-out on one relaxed atomic load.
// With a Session installed, registered threads stop at each point and a
// central policy (seeded random, PCT priorities, bounded-exhaustive DFS, or
// trace replay) decides who proceeds — see sched/explorer.hpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cci::sched {

/// What kind of scheduling-relevant operation a hook point marks.  The kind
/// (plus a small integer id: worker index, shard index, lane index, cache
/// key low bits) names the step in recorded traces, so a minimized failing
/// trace reads as a story: "worker 1 stole from 0, then merged, then ...".
enum class Kind : std::uint8_t {
  kThreadBegin,    ///< a registered thread's first stop (ThreadScope ctor)
  kThreadEnd,      ///< a registered thread is about to finish (ThreadScope dtor)
  kQueuePop,       ///< CampaignEngine worker pops its own deque front
  kQueueSteal,     ///< CampaignEngine worker tries to steal a victim's back
  kRegistryMerge,  ///< obs::Registry::merge_from is about to fold a registry
  kCacheRead,      ///< result-cache entry load
  kCacheWrite,     ///< result-cache tmp-file write
  kCacheRename,    ///< result-cache tmp -> final rename (the publish step)
  kMailboxPost,    ///< ShardGroup cross-shard lane push
  kMailboxDrain,   ///< ShardGroup coordinator drains one lane at the barrier
  kBarrierArrive,  ///< ShardGroup worker arrives at the window barrier
  kCondWait,       ///< controlled condition re-check (cv_wait / await loops)
  kBlockedExit,    ///< thread re-enters the controlled world after a native wait
};

/// Stable lowercase token for a Kind (trace files, diagnostics).
const char* kind_name(Kind k);
/// Inverse of kind_name; returns false when `token` names no Kind.
bool kind_from_name(const char* token, Kind& out);

/// A scheduling point.  No-op unless the calling thread is registered with
/// an installed Session; otherwise the thread blocks here until the session
/// policy grants it the right to proceed.
void point(Kind kind, std::uint64_t id);

/// Declare, from an already-controlled thread, that a new controlled thread
/// named `name` is about to be spawned.  The session defers scheduling
/// decisions until every expected thread has registered (ThreadScope), which
/// makes the runnable set — and therefore every decision — independent of OS
/// thread-startup timing.  No-op without an active session.
void expect_thread(const char* name);

/// True while a Session is installed (any thread).
bool active();

/// True when the *calling thread* is registered with an active session —
/// i.e. its scheduling is currently under explorer control.
bool controlled();

/// Park the calling thread at a kCondWait point.  Unlike a plain point, a
/// condition re-check is *throttled*: the thread only rejoins the runnable
/// set after at least one other decision has been granted, so a waiter
/// whose predicate cannot change yet is never spun on.  Used by cv_wait()
/// and await_thread_exit(); no-op for uncontrolled threads.
///
/// `after_work` tells the deadlock detector whether the thread ran real
/// code since its last park (the *first* park of a wait loop) or is merely
/// re-checking a predicate after an unlock/park/lock cycle that cannot have
/// changed any shared state (every later park of the same loop).  The
/// single-argument form is the re-check: correct for hand-rolled loops
/// whose body is only the predicate load, like cv_wait()'s.
void yield_wait(std::uint64_t id, bool after_work);
void yield_wait(std::uint64_t id);

/// Wait (controlled) until no registered thread named `name` remains, then
/// return.  Call immediately before std::thread::join() on a controlled
/// thread: the join itself then completes without needing any grant, so it
/// can sit inside a BlockedScope without stalling the schedule.  Matches
/// the name passed to ThreadScope (duplicate-suffix-insensitive).  No-op
/// for uncontrolled threads.
void await_thread_exit(const char* name);

/// Controlled replacement for `cv.wait(lk, pred)`.  Uncontrolled threads
/// take the native wait; controlled threads re-check the predicate in a
/// yield loop so that both the wait and every wake-up are explicit
/// scheduling decisions — this is what keeps the runnable set (and thus
/// recorded traces) independent of OS wake timing.  The predicate is only
/// ever evaluated with `lk` held, exactly like the native form.
template <class Pred>
void cv_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
             std::uint64_t id, Pred pred) {
  if (!controlled()) {
    cv.wait(lk, pred);
    return;
  }
  // The first park follows whatever the thread did since its last point (a
  // progress event for the deadlock detector); every later park of this
  // loop only re-checked the predicate.
  bool first = true;
  while (!pred()) {
    lk.unlock();
    yield_wait(id, first);
    first = false;
    lk.lock();
  }
}

/// RAII registration of the calling thread with the active session under a
/// stable `name` ("main", "campaign.worker.0", "sim.shard.1", ...).  The
/// constructor blocks at a kThreadBegin point; the destructor announces
/// kThreadEnd and deregisters.  Constructed with no session active, the
/// scope is inert (and stays inert even if a session appears later — threads
/// born outside a session are never captured mid-flight).
class ThreadScope {
 public:
  explicit ThreadScope(const char* name);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  bool registered_ = false;
};

/// RAII marker around a native wait that completes *autonomously* — one
/// that needs no further grant to any controlled thread, such as a
/// std::thread::join() issued after await_thread_exit() reported the
/// target gone.  The calling thread leaves the runnable set, and the
/// session defers all decisions until the scope exits and the thread
/// re-parks (kBlockedExit) — deferral is what keeps the schedule
/// independent of how long the OS takes to retire the joined thread.  Do
/// NOT wrap a wait that depends on another controlled thread's progress
/// (use cv_wait for those): decisions are frozen for the scope's lifetime,
/// so such a wait would stall until the session watchdog aborts.  Inert
/// for unregistered threads.
class BlockedScope {
 public:
  BlockedScope();
  ~BlockedScope();
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  bool marked_ = false;
};

}  // namespace cci::sched

// The hooks themselves.  `CCI_SCHED_POINT` may sit in allocation-free hot
// paths: when CCI_SCHED is off it must (and does) expand to a no-op
// expression with zero code size.
#ifdef CCI_SCHED
#define CCI_SCHED_POINT(kind, id) ::cci::sched::point(::cci::sched::Kind::kind, (id))
#define CCI_SCHED_EXPECT_THREAD(name) ::cci::sched::expect_thread(name)
#define CCI_SCHED_THREAD_SCOPE(name) ::cci::sched::ThreadScope cci_sched_thread_scope(name)
#define CCI_SCHED_BLOCKED_SCOPE() ::cci::sched::BlockedScope cci_sched_blocked_scope
#define CCI_SCHED_CV_WAIT(cv, lk, id, ...) ::cci::sched::cv_wait((cv), (lk), (id), __VA_ARGS__)
#else
#define CCI_SCHED_POINT(kind, id) ((void)0)
#define CCI_SCHED_EXPECT_THREAD(name) ((void)0)
#define CCI_SCHED_THREAD_SCOPE(name) ((void)0)
#define CCI_SCHED_BLOCKED_SCOPE() ((void)0)
#define CCI_SCHED_CV_WAIT(cv, lk, id, ...) (cv).wait((lk), __VA_ARGS__)
#endif
