#include "sched/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <thread>

namespace cci::sched {

// ---- kind names -------------------------------------------------------------

namespace {

constexpr const char* kKindNames[] = {
    "thread_begin", "thread_end",    "queue_pop",     "queue_steal",
    "registry_merge", "cache_read",  "cache_write",   "cache_rename",
    "mailbox_post", "mailbox_drain", "barrier_arrive", "cond_wait",
    "blocked_exit",
};
constexpr std::size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

}  // namespace

const char* kind_name(Kind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kKindCount ? kKindNames[i] : "unknown";
}

bool kind_from_name(const char* token, Kind& out) {
  for (std::size_t i = 0; i < kKindCount; ++i)
    if (std::strcmp(token, kKindNames[i]) == 0) {
      out = static_cast<Kind>(i);
      return true;
    }
  return false;
}

// ---- session state machine --------------------------------------------------

namespace {

struct ThreadState {
  std::string name;  ///< unique within the session ("sim.shard.0#2" on reuse)
  std::string base;  ///< the name passed to ThreadScope
  enum class St { kRunning, kParked, kBlockedNative } st = St::kRunning;
  Kind kind = Kind::kThreadBegin;  ///< pending point while kParked
  std::uint64_t id = 0;
  std::size_t parked_step = 0;  ///< step at which a kCondWait park happened
  std::uint64_t recheck_gen = 0;  ///< progress_gen as of the last cond re-check
};

}  // namespace

/// All session state lives under one mutex.  Decisions are made passively
/// in the context of whichever thread's state change unblocked them — there
/// is no separate scheduler thread.
struct Session::Impl {
  explicit Impl(Options o) : opts(std::move(o)), rng(opts.seed) {
    if (opts.mode == Options::Mode::kPct) {
      // PCT change points: d-1 steps at which the top-priority thread is
      // demoted below everyone.  Sampled over a generous step range; steps
      // past the range simply see no more inversions.
      const int d = opts.pct_depth > 1 ? opts.pct_depth : 1;
      for (int i = 0; i < d - 1; ++i)
        change_steps.insert(static_cast<std::size_t>(rng() % 4096));
    }
  }

  Options opts;
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::thread::id, ThreadState> threads;
  std::multiset<std::string> expected;       ///< announced, not yet registered
  std::map<std::string, int> name_counts;    ///< for duplicate-name suffixes
  std::thread::id running{};
  bool has_running = false;
  int native_blocked = 0;  ///< BlockedScope depth across all threads
  std::size_t step = 0;
  std::string last_granted;
  std::vector<Decision> decisions;
  std::uint64_t uncontrolled = 0;
  /// Bumped on every event that can change a wait predicate: a non-cond
  /// park (the thread ran real code to get there), a registration, an
  /// unregistration, a native-wait completion.  A cond-waiter re-checks its
  /// predicate immediately before every park, so a waiter whose
  /// `recheck_gen` equals the current generation has seen the latest state.
  std::uint64_t progress_gen = 0;
  bool aborted = false;
  bool closing = false;
  std::string error;
  std::mt19937_64 rng;
  std::map<std::string, long long> priority;  ///< PCT priorities by name
  std::set<std::size_t> change_steps;
  long long demote_next = -1;
  std::atomic<int> users{0};  ///< threads currently inside an API call

  void abort_locked(std::string msg) {
    if (!aborted) {
      aborted = true;
      error = std::move(msg);
    }
    cv.notify_all();
  }

  [[nodiscard]] bool eligible(const ThreadState& ts) const {
    if (ts.st != ThreadState::St::kParked) return false;
    // Condition re-checks are throttled: a waiter only becomes runnable
    // again after some other decision has been granted, so a predicate
    // that cannot have changed is never re-polled.
    return ts.kind != Kind::kCondWait || step > ts.parked_step;
  }

  static bool order_before(const ThreadState& a, const ThreadState& b) {
    const bool ac = a.kind == Kind::kCondWait;
    const bool bc = b.kind == Kind::kCondWait;
    if (ac != bc) return bc;  // non-cond-wait threads sort first
    return a.name < b.name;
  }

  /// Pick and grant the next thread if a decision is currently possible.
  /// Call whenever the runnable/running sets change; must hold `mu`.
  void decide_locked() {
    if (has_running || aborted || closing) return;
    if (!expected.empty()) return;      // wait for announced registrations
    if (native_blocked > 0) return;     // decisions frozen under BlockedScope
    if (step >= opts.max_steps) {
      abort_locked("sched: schedule exceeded max_steps=" +
                   std::to_string(opts.max_steps));
      return;
    }
    std::vector<std::thread::id> elig;
    std::vector<std::thread::id> parked;
    for (auto& [tid, ts] : threads) {
      if (ts.st == ThreadState::St::kParked) parked.push_back(tid);
      if (eligible(ts)) elig.push_back(tid);
    }
    // All parked but throttled (every thread in a cond-wait it just
    // re-checked): re-enable them — the throttle must never wedge the
    // session, only stop busy re-polls while better options exist.
    if (elig.empty()) elig = parked;
    if (elig.empty()) return;  // nothing parked; workload is between points
    // Cond-waiters are only schedulable when nothing else is: a waiter's
    // predicate can only change when some other thread runs, so granting a
    // re-check while a real point is pending explores nothing new — it just
    // multiplies every genuine interleaving by the wait-loop spins.
    bool any_non_cond = false;
    for (auto tid : elig)
      if (threads.at(tid).kind != Kind::kCondWait) any_non_cond = true;
    if (any_non_cond)
      elig.erase(std::remove_if(elig.begin(), elig.end(),
                                [this](std::thread::id tid) {
                                  return threads.at(tid).kind == Kind::kCondWait;
                                }),
                 elig.end());
    std::sort(elig.begin(), elig.end(), [this](auto a, auto b) {
      return order_before(threads.at(a), threads.at(b));
    });
    if (!any_non_cond) {
      // Every controlled thread is a cond-waiter.  Each re-checked its
      // predicate immediately before parking; if every one of those checks
      // happened after the last progress event, no predicate can have
      // changed since it was seen false — and only cond re-checks remain to
      // grant, which change nothing.  That is a condition deadlock, exactly:
      // any thread that ran real code since its last park bumped the
      // generation when it next parked (after_work), so a waiter with a
      // stale recheck_gen always gets re-granted before this can fire.
      bool stuck = true;
      for (const auto& [tid, ts] : threads)
        if (ts.st != ThreadState::St::kParked || ts.kind != Kind::kCondWait ||
            ts.recheck_gen != progress_gen)
          stuck = false;
      if (stuck) {
        std::string who;
        for (auto tid : elig) who += (who.empty() ? "" : ", ") + threads.at(tid).name;
        abort_locked(
            "sched: condition-wait deadlock — every controlled thread is "
            "waiting on a predicate no other thread can change (" + who + ")");
        return;
      }
    }
    std::vector<std::string> names;
    names.reserve(elig.size());
    for (auto tid : elig) names.push_back(threads.at(tid).name);
    std::size_t choice = 0;
    if (!choose_locked(elig, names, choice)) return;  // aborted inside
    const std::thread::id tid = elig[choice];
    ThreadState& ts = threads.at(tid);
    decisions.push_back(Decision{step, ts.name, ts.kind, ts.id, names});
    last_granted = ts.name;
    ++step;
    running = tid;
    has_running = true;
    cv.notify_all();
  }

  /// Default deterministic policy: first by the (non-cond-wait first, then
  /// name) ordering `elig` is already sorted in.
  static std::size_t default_choice() { return 0; }

  bool choose_locked(const std::vector<std::thread::id>& elig,
                     const std::vector<std::string>& names, std::size_t& out) {
    using Mode = Options::Mode;
    switch (opts.mode) {
      case Mode::kRandom:
        out = static_cast<std::size_t>(rng() % elig.size());
        return true;
      case Mode::kPct: {
        if (change_steps.count(step) != 0) {
          std::size_t top = top_priority(names);
          priority[names[top]] = demote_next--;
        }
        out = top_priority(names);
        return true;
      }
      case Mode::kReplay: {
        if (step >= opts.replay.steps.size()) {
          abort_locked("sched replay: trace exhausted at step " +
                       std::to_string(step) + " (workload diverged from recording)");
          return false;
        }
        const Decision& rec = opts.replay.steps[step];
        const auto it = std::find(names.begin(), names.end(), rec.thread);
        if (it == names.end()) {
          abort_locked("sched replay: divergence at step " + std::to_string(step) +
                       " — recorded thread '" + rec.thread + "' is not runnable");
          return false;
        }
        out = static_cast<std::size_t>(it - names.begin());
        const ThreadState& ts = threads.at(elig[out]);
        if (ts.kind != rec.kind || ts.id != rec.id) {
          abort_locked("sched replay: divergence at step " + std::to_string(step) +
                       " — thread '" + rec.thread + "' is parked at " +
                       kind_name(ts.kind) + "/" + std::to_string(ts.id) +
                       ", trace recorded " + kind_name(rec.kind) + "/" +
                       std::to_string(rec.id));
          return false;
        }
        return true;
      }
      case Mode::kOverrides: {
        const auto it = opts.replay.overrides.find(step);
        if (it == opts.replay.overrides.end()) {
          out = default_choice();
          return true;
        }
        const auto pos = std::find(names.begin(), names.end(), it->second);
        if (pos == names.end()) {
          abort_locked("sched overrides: step " + std::to_string(step) +
                       " names thread '" + it->second + "' which is not runnable");
          return false;
        }
        out = static_cast<std::size_t>(pos - names.begin());
        return true;
      }
      case Mode::kPrefix: {
        if (step < opts.prefix.size()) {
          const auto pos = std::find(names.begin(), names.end(), opts.prefix[step]);
          if (pos == names.end()) {
            abort_locked("sched prefix: step " + std::to_string(step) +
                         " names thread '" + opts.prefix[step] +
                         "' which is not runnable");
            return false;
          }
          out = static_cast<std::size_t>(pos - names.begin());
          return true;
        }
        // Free suffix: run-to-completion — continue the last granted thread
        // while it stays runnable (keeps the DFS frontier small), else the
        // default policy.
        const auto pos = std::find(names.begin(), names.end(), last_granted);
        out = pos != names.end() ? static_cast<std::size_t>(pos - names.begin())
                                 : default_choice();
        return true;
      }
    }
    out = default_choice();
    return true;
  }

  std::size_t top_priority(const std::vector<std::string>& names) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < names.size(); ++i)
      if (priority[names[i]] > priority[names[best]]) best = i;
    return best;
  }

  /// Wait until this thread holds the token.  Returns false on abort or
  /// shutdown (the caller then free-runs).  Must hold `mu` via `lk`.
  bool wait_for_grant_locked(std::unique_lock<std::mutex>& lk, std::thread::id tid) {
    const auto deadline = std::chrono::steady_clock::now() + opts.timeout;
    for (;;) {
      if (aborted || closing) return false;
      if (has_running && running == tid) return true;
      if (cv.wait_until(lk, deadline) == std::cv_status::timeout) {
        if (aborted || closing) return false;
        if (has_running && running == tid) return true;
        abort_locked("sched: thread '" + threads.at(tid).name + "' waited " +
                     std::to_string(opts.timeout.count()) +
                     "ms for a grant — native deadlock, missing BlockedScope/"
                     "cv_wait instrumentation, or a wedged workload");
        return false;
      }
    }
  }

  void at_point(Kind kind, std::uint64_t id, bool after_work) {
    std::unique_lock<std::mutex> lk(mu);
    const auto tid = std::this_thread::get_id();
    const auto it = threads.find(tid);
    if (it == threads.end()) {
      ++uncontrolled;
      return;
    }
    if (aborted || closing) return;
    ThreadState& ts = it->second;
    ts.st = ThreadState::St::kParked;
    ts.kind = kind;
    ts.id = id;
    if (after_work) ++progress_gen;
    if (kind == Kind::kCondWait) {
      ts.parked_step = step;
      ts.recheck_gen = progress_gen;
    }
    if (has_running && running == tid) has_running = false;
    decide_locked();
    wait_for_grant_locked(lk, tid);
    ts.st = ThreadState::St::kRunning;
  }

  bool register_thread(const char* base_name) {
    std::unique_lock<std::mutex> lk(mu);
    if (aborted || closing) return false;
    const auto tid = std::this_thread::get_id();
    if (threads.count(tid) != 0) return false;  // double registration
    const std::string base(base_name);
    const auto e = expected.find(base);
    if (e != expected.end()) expected.erase(e);
    const int n = ++name_counts[base];
    ThreadState ts;
    ts.base = base;
    ts.name = n == 1 ? base : base + "#" + std::to_string(n);
    ts.st = ThreadState::St::kParked;
    ts.kind = Kind::kThreadBegin;
    ts.id = 0;
    priority.emplace(ts.name, static_cast<long long>(rng() >> 1));
    const auto it = threads.emplace(tid, std::move(ts)).first;
    ++progress_gen;
    decide_locked();
    wait_for_grant_locked(lk, tid);
    it->second.st = ThreadState::St::kRunning;
    return true;
  }

  void unregister_thread() {
    std::unique_lock<std::mutex> lk(mu);
    const auto tid = std::this_thread::get_id();
    const auto it = threads.find(tid);
    if (it == threads.end()) return;
    if (!aborted && !closing) {
      ThreadState& ts = it->second;
      ts.st = ThreadState::St::kParked;
      ts.kind = Kind::kThreadEnd;
      ts.id = 0;
      if (has_running && running == tid) has_running = false;
      decide_locked();
      wait_for_grant_locked(lk, tid);
    }
    if (has_running && running == tid) has_running = false;
    threads.erase(it);
    ++progress_gen;
    decide_locked();
    cv.notify_all();
  }

  bool enter_native() {
    std::unique_lock<std::mutex> lk(mu);
    const auto tid = std::this_thread::get_id();
    const auto it = threads.find(tid);
    if (it == threads.end() || aborted || closing) return false;
    it->second.st = ThreadState::St::kBlockedNative;
    ++native_blocked;
    if (has_running && running == tid) has_running = false;
    return true;
  }

  void exit_native() {
    std::unique_lock<std::mutex> lk(mu);
    const auto tid = std::this_thread::get_id();
    const auto it = threads.find(tid);
    if (it == threads.end()) return;
    --native_blocked;
    if (aborted || closing) {
      it->second.st = ThreadState::St::kRunning;
      return;
    }
    ThreadState& ts = it->second;
    ts.st = ThreadState::St::kParked;
    ts.kind = Kind::kBlockedExit;
    ts.id = 0;
    ++progress_gen;
    decide_locked();
    wait_for_grant_locked(lk, tid);
    ts.st = ThreadState::St::kRunning;
  }

  void announce(const char* name) {
    std::lock_guard<std::mutex> lk(mu);
    if (aborted || closing) return;
    expected.insert(std::string(name));
  }

  bool any_named(const char* base) {
    std::lock_guard<std::mutex> lk(mu);
    if (aborted || closing) return false;
    for (const auto& [tid, ts] : threads)
      if (ts.base == base && tid != std::this_thread::get_id()) return true;
    // A thread announced but not yet registered also counts: joining its
    // std::thread before it checks in would deadlock the registration.
    return expected.count(base) != 0;
  }

  [[nodiscard]] bool is_controlled() {
    std::lock_guard<std::mutex> lk(mu);
    return !aborted && !closing && threads.count(std::this_thread::get_id()) != 0;
  }
};

// ---- global installation ----------------------------------------------------

namespace {

std::mutex g_install_mu;
Session::Impl* g_impl = nullptr;       // guarded by g_install_mu
std::atomic<bool> g_active{false};     // fast pre-check for hook sites
std::atomic<bool> g_mutation_merge{false};

Session::Impl* acquire() {
  if (!g_active.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard<std::mutex> lk(g_install_mu);
  if (g_impl == nullptr) return nullptr;
  g_impl->users.fetch_add(1, std::memory_order_acq_rel);
  return g_impl;
}

void release(Session::Impl* s) { s->users.fetch_sub(1, std::memory_order_acq_rel); }

}  // namespace

// ---- public hook API --------------------------------------------------------

bool active() { return g_active.load(std::memory_order_acquire); }

void point(Kind kind, std::uint64_t id) {
  Session::Impl* s = acquire();
  if (s == nullptr) return;
  s->at_point(kind, id, /*after_work=*/true);
  release(s);
}

void yield_wait(std::uint64_t id, bool after_work) {
  Session::Impl* s = acquire();
  if (s == nullptr) return;
  s->at_point(Kind::kCondWait, id, after_work);
  release(s);
}

void yield_wait(std::uint64_t id) { yield_wait(id, /*after_work=*/false); }

void expect_thread(const char* name) {
  Session::Impl* s = acquire();
  if (s == nullptr) return;
  s->announce(name);
  release(s);
}

bool controlled() {
  Session::Impl* s = acquire();
  if (s == nullptr) return false;
  const bool r = s->is_controlled();
  release(s);
  return r;
}

void await_thread_exit(const char* name) {
  bool first = true;
  for (;;) {
    Session::Impl* s = acquire();
    if (s == nullptr) return;
    const bool self = s->is_controlled();
    const bool present = self && s->any_named(name);
    release(s);
    if (!present) return;
    yield_wait(0, first);
    first = false;
  }
}

ThreadScope::ThreadScope(const char* name) {
  Session::Impl* s = acquire();
  if (s == nullptr) return;
  registered_ = s->register_thread(name);
  release(s);
}

ThreadScope::~ThreadScope() {
  if (!registered_) return;
  Session::Impl* s = acquire();
  if (s == nullptr) return;  // session already torn down
  s->unregister_thread();
  release(s);
}

BlockedScope::BlockedScope() {
  Session::Impl* s = acquire();
  if (s == nullptr) return;
  marked_ = s->enter_native();
  release(s);
}

BlockedScope::~BlockedScope() {
  if (!marked_) return;
  Session::Impl* s = acquire();
  if (s == nullptr) return;
  s->exit_native();
  release(s);
}

// ---- Session ----------------------------------------------------------------

Session::Session(Options opts) : impl_(new Impl(std::move(opts))) {
  {
    std::lock_guard<std::mutex> lk(g_install_mu);
    if (g_impl != nullptr) {
      delete impl_;
      impl_ = nullptr;
      throw std::logic_error("sched: a Session is already installed");
    }
    g_impl = impl_;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    ThreadState ts;
    ts.base = ts.name = "main";
    ts.st = ThreadState::St::kRunning;
    ++impl_->name_counts["main"];
    impl_->priority.emplace("main", static_cast<long long>(impl_->rng() >> 1));
    const auto tid = std::this_thread::get_id();
    impl_->threads.emplace(tid, std::move(ts));
    impl_->running = tid;
    impl_->has_running = true;
    impl_->last_granted = "main";
  }
  g_active.store(true, std::memory_order_release);
}

Session::~Session() {
  {
    std::lock_guard<std::mutex> lk(g_install_mu);
    g_impl = nullptr;
    g_active.store(false, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->closing = true;
    const auto it = impl_->threads.find(std::this_thread::get_id());
    if (it != impl_->threads.end()) {
      if (impl_->has_running && impl_->running == it->first) impl_->has_running = false;
      impl_->threads.erase(it);
    }
    impl_->cv.notify_all();
  }
  // Stragglers woke on `closing` and are draining out of the API; the
  // workload should have joined its threads before destroying the session,
  // so this loop is normally zero iterations.
  while (impl_->users.load(std::memory_order_acquire) != 0) std::this_thread::yield();
  delete impl_;
}

const std::vector<Decision>& Session::decisions() const { return impl_->decisions; }

Trace Session::trace() const {
  Trace t;
  std::lock_guard<std::mutex> lk(impl_->mu);
  t.steps = impl_->decisions;
  return t;
}

const std::string& Session::error() const { return impl_->error; }

std::uint64_t Session::uncontrolled_points() const { return impl_->uncontrolled; }

void Session::finish() const {
  std::string err;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    err = impl_->error;
  }
  if (!err.empty()) throw ScheduleError(err);
}

// ---- trace text format ------------------------------------------------------

std::string Trace::serialize() const {
  std::ostringstream os;
  os << "cci-sched-trace v1 " << (sparse ? "overrides" : "full") << '\n';
  if (sparse) {
    for (const auto& [s, thread] : overrides) os << "override " << s << ' ' << thread << '\n';
  } else {
    for (const Decision& d : steps) {
      os << "step " << d.step << ' ' << d.thread << ' ' << kind_name(d.kind) << ' '
         << d.id << ' ';
      for (std::size_t i = 0; i < d.runnable.size(); ++i)
        os << (i ? "," : "") << d.runnable[i];
      os << '\n';
    }
  }
  os << "end\n";
  return os.str();
}

Trace Trace::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("sched trace: empty input");
  std::istringstream header(line);
  std::string magic;
  std::string version;
  std::string shape;
  header >> magic >> version >> shape;
  if (magic != "cci-sched-trace" || version != "v1" ||
      (shape != "full" && shape != "overrides"))
    throw std::runtime_error("sched trace: bad header '" + line + "'");
  Trace t;
  t.sparse = shape == "overrides";
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "override") {
      std::size_t s = 0;
      std::string thread;
      if (!(ls >> s >> thread))
        throw std::runtime_error("sched trace: bad override line '" + line + "'");
      t.overrides[s] = thread;
    } else if (tag == "step") {
      Decision d;
      std::string kind_tok;
      std::string runnable_tok;
      if (!(ls >> d.step >> d.thread >> kind_tok >> d.id >> runnable_tok))
        throw std::runtime_error("sched trace: bad step line '" + line + "'");
      if (!kind_from_name(kind_tok.c_str(), d.kind))
        throw std::runtime_error("sched trace: unknown kind '" + kind_tok + "'");
      std::istringstream rs(runnable_tok);
      std::string name;
      while (std::getline(rs, name, ','))
        if (!name.empty()) d.runnable.push_back(name);
      t.steps.push_back(std::move(d));
    } else {
      throw std::runtime_error("sched trace: unknown line '" + line + "'");
    }
  }
  if (!saw_end) throw std::runtime_error("sched trace: truncated (no 'end' line)");
  return t;
}

void Trace::save(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("sched trace: cannot open '" + path + "' for writing");
  os << serialize();
  if (!os) throw std::runtime_error("sched trace: short write to '" + path + "'");
}

Trace Trace::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("sched trace: cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << is.rdbuf();
  return parse(buffer.str());
}

Trace to_overrides(const Trace& full) {
  Trace t;
  t.sparse = true;
  for (const Decision& d : full.steps)
    if (!d.runnable.empty() && d.thread != d.runnable.front())
      t.overrides[d.step] = d.thread;
  return t;
}

// ---- minimization -----------------------------------------------------------

Trace minimize_trace(const Trace& failing,
                     const std::function<bool(const Trace&)>& fails) {
  Trace cur = failing.sparse ? failing : to_overrides(failing);
  const auto still_fails = [&fails](const Trace& cand) {
    try {
      return fails(cand);
    } catch (...) {
      return false;  // candidate did not even reproduce the run shape
    }
  };
  for (;;) {
    bool dropped = false;
    std::vector<std::size_t> keys;
    keys.reserve(cur.overrides.size());
    for (const auto& [s, thread] : cur.overrides) keys.push_back(s);
    for (const std::size_t s : keys) {
      Trace cand = cur;
      cand.overrides.erase(s);
      if (still_fails(cand)) {
        cur = std::move(cand);
        dropped = true;
      }
    }
    if (!dropped) break;
  }
  return cur;
}

// ---- bounded exhaustive enumeration -----------------------------------------

namespace {

int count_preemptions(const std::vector<std::string>& prefix,
                      const std::vector<Decision>& ds) {
  int p = 0;
  for (std::size_t j = 1; j < prefix.size() && j < ds.size(); ++j) {
    if (prefix[j] == prefix[j - 1]) continue;
    const auto& runnable = ds[j].runnable;
    if (std::find(runnable.begin(), runnable.end(), prefix[j - 1]) != runnable.end())
      ++p;  // switched away from a thread that could have continued
  }
  return p;
}

}  // namespace

ExhaustiveResult explore_exhaustive(
    int preemption_bound, int max_schedules, const std::function<void()>& body,
    const std::function<bool(const Session&)>& on_schedule) {
  ExhaustiveResult res;
  std::vector<std::vector<std::string>> frontier;
  frontier.emplace_back();  // the empty prefix: pure run-to-completion
  while (!frontier.empty()) {
    if (res.schedules >= max_schedules) return res;  // budget hit, not exhausted
    const std::vector<std::string> prefix = std::move(frontier.back());
    frontier.pop_back();
    Options o;
    o.mode = Options::Mode::kPrefix;
    o.prefix = prefix;
    std::vector<Decision> ds;
    std::string err;
    {
      Session session(o);
      body();
      ds = session.decisions();
      err = session.error();
      ++res.schedules;
      if (on_schedule && !on_schedule(session)) {
        res.stopped = true;
        return res;
      }
    }
    if (!err.empty()) continue;  // do not expand schedules that did not complete
    // Stateless DFS: branch only in the free suffix (steps >= |prefix|) —
    // alternatives inside the prefix were enqueued when its parent ran.
    for (std::size_t i = prefix.size(); i < ds.size(); ++i) {
      for (const std::string& alt : ds[i].runnable) {
        if (alt == ds[i].thread) continue;
        std::vector<std::string> child;
        child.reserve(i + 1);
        for (std::size_t j = 0; j < i; ++j) child.push_back(ds[j].thread);
        child.push_back(alt);
        if (count_preemptions(child, ds) <= preemption_bound)
          frontier.push_back(std::move(child));
      }
    }
  }
  res.exhausted = true;
  return res;
}

// ---- test-only mutations ----------------------------------------------------

bool mutation_merge_overwrite() {
  return g_mutation_merge.load(std::memory_order_relaxed);
}

void set_mutation_merge_overwrite(bool on) {
  g_mutation_merge.store(on, std::memory_order_relaxed);
}

}  // namespace cci::sched
