// Controlled scheduler over the sched::point() hook points: seeded random
// and PCT-style schedules, bounded exhaustive enumeration, and text-trace
// record/replay with greedy minimization.
//
// Model (CHESS-style serializing scheduler): while a Session is installed,
// at most one registered thread runs between scheduling points.  A thread
// arriving at a point parks; the session policy picks the next thread from
// the *runnable set* — registered threads parked at a point, excluding
// threads inside a BlockedScope (native cv waits / joins) and threads that
// were announced via expect_thread() but have not yet registered.  Because
// decisions are deferred until every expected thread has checked in, the
// runnable set at each step — and therefore the whole schedule — is a pure
// function of (workload, policy, seed), independent of OS timing.  One
// schedule is the sequence of grant decisions; it serializes to a small
// text trace that replays bit-for-bit.
//
// Failure handling: policy-level problems (a wait that outlives the
// timeout, a replay that diverges from its trace, an override naming a
// thread that is not runnable) never throw from arbitrary instrumented
// threads — that would terminate worker loops that do not expect
// exceptions.  Instead the session *aborts*: every parked thread is
// released, further points pass through uncontrolled, and the error string
// is reported via Session::error() / thrown from Session::finish() on the
// owning thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/point.hpp"

namespace cci::sched {

/// One grant decision: at `step`, thread `thread` (parked at `kind`/`id`)
/// was allowed to proceed, chosen out of `runnable` (name-sorted).
struct Decision {
  std::size_t step = 0;
  std::string thread;
  Kind kind = Kind::kThreadBegin;
  std::uint64_t id = 0;
  std::vector<std::string> runnable;
};

/// A serializable schedule.  Two shapes:
///  * full — every decision, with its runnable set; replays exactly and
///    verifies each granted thread is parked at the recorded (kind, id);
///  * overrides — a sparse set of (step -> thread) exceptions over the
///    deterministic default policy (lexicographically smallest runnable
///    thread).  This is what the minimizer produces: a three-line override
///    trace reads as "the bug needs worker 1 to merge before worker 0".
struct Trace {
  bool sparse = false;
  std::vector<Decision> steps;                   ///< full shape
  std::map<std::size_t, std::string> overrides;  ///< sparse shape

  [[nodiscard]] std::size_t size() const {
    return sparse ? overrides.size() : steps.size();
  }

  /// Versioned plain-text round-trip (the schedule analogue of the %.17g
  /// result-cache contract: what is written is exactly what replays).
  [[nodiscard]] std::string serialize() const;
  static Trace parse(const std::string& text);  ///< throws std::runtime_error
  void save(const std::string& path) const;     ///< throws on I/O failure
  static Trace load(const std::string& path);   ///< throws on I/O or parse failure
};

/// Convert a full trace to the equivalent sparse override trace: keep only
/// the steps where the recorded choice differs from the default policy.
Trace to_overrides(const Trace& full);

struct Options {
  enum class Mode {
    kRandom,     ///< uniform choice among runnable threads (seeded)
    kPct,        ///< PCT: random priorities + `pct_depth - 1` change points
    kReplay,     ///< follow a full trace exactly; divergence aborts
    kOverrides,  ///< default policy with sparse overrides; bad override aborts
    kPrefix,     ///< follow `prefix`, then run-to-completion default (DFS leg)
  };
  Mode mode = Mode::kRandom;
  std::uint64_t seed = 1;
  /// PCT depth d: schedules with <= d-1 priority-inversion points are
  /// covered with known probability; small d finds most real bugs.
  int pct_depth = 3;
  Trace replay;                      ///< kReplay / kOverrides input
  std::vector<std::string> prefix;   ///< kPrefix input (thread name per step)
  /// Per-wait watchdog: a registered thread parked longer than this aborts
  /// the session (missing BlockedScope or a genuine native deadlock) rather
  /// than hanging CI.
  std::chrono::milliseconds timeout{20000};
  /// Hard cap on decisions per schedule — a backstop against policy-induced
  /// livelock (e.g. a random schedule starving the thread that would end
  /// the workload), far above any legitimate test workload.
  std::size_t max_steps = 1u << 20;
};

/// Thrown by Session::finish() when the schedule could not be driven to
/// completion (timeout, replay divergence, unrunnable override).
class ScheduleError : public std::runtime_error {
 public:
  explicit ScheduleError(const std::string& what) : std::runtime_error(what) {}
};

/// One controlled schedule.  Construction installs the session process-wide
/// (at most one at a time) and registers the calling thread as "main",
/// holding the token; destruction releases any stragglers and uninstalls.
/// Typical use:
///
///   sched::Options o;  o.mode = sched::Options::Mode::kRandom;  o.seed = 42;
///   sched::Session session(o);
///   run_workload();            // hits CCI_SCHED_POINT sites
///   session.finish();          // throws ScheduleError on abort
///   sched::Trace t = session.trace();
class Session {
 public:
  explicit Session(Options opts);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Decisions recorded so far (call after the workload has joined its
  /// threads; reading mid-run from other threads is a race).
  [[nodiscard]] const std::vector<Decision>& decisions() const;
  /// Full-shape trace of the recorded decisions.
  [[nodiscard]] Trace trace() const;
  /// Empty when the schedule ran to completion; otherwise the abort reason.
  [[nodiscard]] const std::string& error() const;
  /// Points hit by threads the session does not control (threads created
  /// before the session, or never wrapped in a ThreadScope).
  [[nodiscard]] std::uint64_t uncontrolled_points() const;
  /// Throws ScheduleError when error() is non-empty.
  void finish() const;

  struct Impl;  ///< public only so file-local helpers can name it

 private:
  Impl* impl_;
};

/// Greedy trace minimization: convert `failing` (full shape) to overrides,
/// then repeatedly try dropping each override, keeping the drop whenever
/// `fails(candidate)` still returns true.  `fails` must replay the workload
/// under a kOverrides session and report whether the bug reproduced; a
/// throw from `fails` counts as "did not reproduce" (the candidate is
/// rejected and the override kept).  Returns the smallest sparse trace that
/// still fails — often empty, meaning the default schedule alone fails.
Trace minimize_trace(const Trace& failing,
                     const std::function<bool(const Trace&)>& fails);

/// Bounded exhaustive schedule enumeration (stateless DFS by prefix
/// re-execution).  Runs `body` once per schedule under a kPrefix session;
/// after each schedule calls `on_schedule(session)` — return false to stop
/// (e.g. the oracle found a divergence).  Alternatives that would exceed
/// `preemption_bound` context switches (switching away from a still-
/// runnable thread) are pruned, which is what makes small campaigns and
/// 2-shard groups tractable.
struct ExhaustiveResult {
  int schedules = 0;   ///< schedules actually executed
  bool stopped = false;  ///< on_schedule returned false
  bool exhausted = false;  ///< frontier emptied within max_schedules
};
ExhaustiveResult explore_exhaustive(
    int preemption_bound, int max_schedules, const std::function<void()>& body,
    const std::function<bool(const Session&)>& on_schedule);

/// Test-only planted bug ("mutation"): when on, obs::Registry::merge_from
/// overwrites counter values instead of adding them (last writer wins), so
/// any multi-worker merge becomes schedule- and partition-dependent.  The
/// mutation test proves the explorer catches exactly this class of bug
/// within a bounded schedule budget.  Read by instrumented code only in
/// CCI_SCHED builds; always-off otherwise.
bool mutation_merge_overwrite();
void set_mutation_merge_overwrite(bool on);

}  // namespace cci::sched
