#include "sim/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace cci::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative slack when deciding that a flow participates in the current
// bottleneck; absorbs round-off in the ratio computations.
constexpr double kSlack = 1e-12;
constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
}  // namespace

// ---- resources and partition ----------------------------------------------

std::size_t MaxMinSolver::add_resource(double capacity) {
  assert(capacity >= 0.0);
  const std::size_t r = capacity_.size();
  capacity_.push_back(capacity);
  load_.push_back(0.0);
  pressure_.push_back(0.0);
  parent_.push_back(r);
  comp_size_.push_back(1);
  comp_flows_.emplace_back();
  comp_unsorted_.push_back(0);
  comp_res_.push_back({r});
  dirty_.push_back(0);
  return r;
}

void MaxMinSolver::set_capacity(std::size_t resource, double capacity) {
  assert(capacity >= 0.0);
  capacity_[resource] = capacity;
  const std::size_t root = find_root(resource);
  // Cached pressure contributions reference this capacity; every flow that
  // can touch the resource lives in its component (a superset after
  // removals, which only over-invalidates).
  for (FlowId id : comp_flows_[root]) flows_[id].pressure_valid = false;
  mark_dirty(root);
}

std::size_t MaxMinSolver::component_root(std::size_t resource) const {
  std::size_t r = resource;
  while (parent_[r] != r) r = parent_[r];
  return r;
}

std::size_t MaxMinSolver::find_root(std::size_t r) {
  std::size_t root = r;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[r] != root) {  // path compression
    std::size_t next = parent_[r];
    parent_[r] = root;
    r = next;
  }
  return root;
}

void MaxMinSolver::mark_dirty(std::size_t root) {
  if (!dirty_[root]) {
    dirty_[root] = 1;
    dirty_roots_.push_back(root);
  }
}

std::size_t MaxMinSolver::unite(std::size_t a, std::size_t b) {
  if (a == b) return a;
  if (comp_size_[a] < comp_size_[b]) std::swap(a, b);
  parent_[b] = a;
  comp_size_[a] += comp_size_[b];
  // Concatenation only keeps the seq order when every flow of b registered
  // after every flow of a; otherwise flag the merged list for a lazy
  // re-sort at the next solve.
  if (comp_unsorted_[b] ||
      (!comp_flows_[a].empty() && !comp_flows_[b].empty() &&
       flows_[comp_flows_[b].front()].seq < flows_[comp_flows_[a].back()].seq))
    comp_unsorted_[a] = 1;
  comp_unsorted_[b] = 0;
  for (FlowId id : comp_flows_[b]) {
    flows_[id].comp_pos = comp_flows_[a].size();
    comp_flows_[a].push_back(id);
  }
  comp_flows_[b].clear();
  comp_res_[a].insert(comp_res_[a].end(), comp_res_[b].begin(), comp_res_[b].end());
  comp_res_[b].clear();
  if (dirty_[b]) {
    dirty_[b] = 0;
    mark_dirty(a);
  }
  return a;
}

// ---- flows ------------------------------------------------------------------

MaxMinSolver::FlowId MaxMinSolver::add_flow(double weight, double rate_cap,
                                            const std::vector<MaxMinFlow::Entry>& entries) {
  assert(weight > 0.0);
  FlowId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = flows_.size();
    flows_.emplace_back();
  }
  FlowRec& rec = flows_[id];
  rec.weight = weight;
  rec.rate_cap = rate_cap;
  rec.rate = 0.0;
  rec.cap_lambda = rate_cap > 0.0 ? rate_cap / weight : kInf;
  rec.seq = next_seq_++;
  rec.entries = entries;
  rec.live = true;
  rec.comp_pos = kNoPos;
  rec.pressure_valid = false;
  if (entries.empty()) {
    // No shared resource: the flow is only limited by its own cap.  Solved
    // eagerly; it never joins (or dirties) a component.
    rec.rate = rate_cap > 0.0 ? rate_cap : kInf;
    entryless_changed_.push_back(id);
    return id;
  }
  std::size_t root = find_root(entries.front().resource);
  for (std::size_t i = 1; i < entries.size(); ++i)
    root = unite(root, find_root(entries[i].resource));
  rec.comp_pos = comp_flows_[root].size();
  comp_flows_[root].push_back(id);
  ++live_flows_;
  mark_dirty(root);
  return id;
}

void MaxMinSolver::remove_flow(FlowId id) {
  FlowRec& rec = flows_[id];
  assert(rec.live);
  rec.live = false;
  rec.rate = 0.0;
  if (!rec.entries.empty()) {
    const std::size_t root = find_root(rec.entries.front().resource);
    auto& list = comp_flows_[root];
    const std::size_t pos = rec.comp_pos;
    // Ordered erase (not swap-with-back): keeps the list seq-sorted so the
    // solve that follows every removal can skip its sort.
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(pos));
    for (std::size_t i = pos; i < list.size(); ++i) flows_[list[i]].comp_pos = i;
    mark_dirty(root);
    --live_flows_;
    ++removals_since_rebuild_;
  }
  rec.entries.clear();
  rec.comp_pos = kNoPos;
  free_slots_.push_back(id);
}

void MaxMinSolver::rebuild_partition() {
  // Removals leave the union-find over-merged (a superset component is
  // still solved correctly, just wastefully).  Rebuilding from the live
  // flows restores the tight partition; dirty marks are carried across by
  // remembering which *resources* sat in dirty components.
  ++stats_.partition_rebuilds;
  removals_since_rebuild_ = 0;
  const std::size_t n_res = capacity_.size();
  std::vector<char>& res_dirty = rebuild_res_dirty_;  // reused scratch, no alloc
  res_dirty.assign(n_res, 0);
  for (std::size_t r = 0; r < n_res; ++r) res_dirty[r] = dirty_[find_root(r)];
  for (std::size_t r = 0; r < n_res; ++r) {
    parent_[r] = r;
    comp_size_[r] = 1;
    comp_flows_[r].clear();
    comp_unsorted_[r] = 0;
    comp_res_[r].clear();
    comp_res_[r].push_back(r);
    dirty_[r] = 0;
  }
  dirty_roots_.clear();
  for (FlowId id = 0; id < flows_.size(); ++id) {
    FlowRec& rec = flows_[id];
    if (!rec.live || rec.entries.empty()) continue;
    std::size_t root = find_root(rec.entries.front().resource);
    for (std::size_t i = 1; i < rec.entries.size(); ++i)
      root = unite(root, find_root(rec.entries[i].resource));
    auto& list = comp_flows_[root];
    // Iteration is in slot order, which differs from seq order once slots
    // have been recycled; flag any inversion for the lazy re-sort.
    if (!list.empty() && flows_[list.back()].seq > rec.seq) comp_unsorted_[root] = 1;
    rec.comp_pos = list.size();
    list.push_back(id);
  }
  for (std::size_t r = 0; r < n_res; ++r)
    if (res_dirty[r]) mark_dirty(find_root(r));
}

// ---- solving ----------------------------------------------------------------

void MaxMinSolver::mark_all_dirty() {
  for (std::size_t r = 0; r < capacity_.size(); ++r) mark_dirty(find_root(r));
}

void MaxMinSolver::solve() {
  ++stats_.solves;
  changed_flows_.clear();
  touched_resources_.clear();
  for (FlowId id : entryless_changed_) changed_flows_.push_back(id);
  entryless_changed_.clear();

  if (removals_since_rebuild_ > 64 && removals_since_rebuild_ > live_flows_)
    rebuild_partition();

  std::size_t solved_flows = 0;
  for (std::size_t i = 0; i < dirty_roots_.size(); ++i) {
    const std::size_t root = dirty_roots_[i];
    if (parent_[root] != root || !dirty_[root]) continue;  // merged or stale
    dirty_[root] = 0;
    solved_flows += comp_flows_[root].size();
    ++stats_.components_solved;
    solve_component(root);
  }
  dirty_roots_.clear();
  if (solved_flows >= live_flows_)
    ++stats_.full_solves;
  else
    ++stats_.partial_solves;
}

void MaxMinSolver::solve_component(std::size_t root) {
  const std::vector<std::size_t>& res_list = comp_res_[root];
  const std::size_t n_res = res_list.size();

  // Solve order is registration order (seq), independent of how the
  // component was assembled — this keeps floating-point accumulation order
  // identical between a partial re-solve and a from-scratch solve.  The
  // list is seq-sorted by invariant; only a merge or a partition rebuild
  // leaves it unsorted, so the steady-state solve skips the sort entirely.
  if (comp_unsorted_[root]) {
    auto& list = comp_flows_[root];
    std::sort(list.begin(), list.end(),
              [this](FlowId a, FlowId b) { return flows_[a].seq < flows_[b].seq; });
    for (std::size_t i = 0; i < list.size(); ++i) flows_[list[i]].comp_pos = i;
    comp_unsorted_[root] = 0;
  }
  const std::vector<FlowId>& comp_flow_list = comp_flows_[root];
  const std::size_t n_flows = comp_flow_list.size();

  // Dense local resource indices.
  if (res_local_.size() < capacity_.size()) res_local_.resize(capacity_.size());
  for (std::size_t i = 0; i < n_res; ++i)
    res_local_[res_list[i]] = static_cast<std::uint32_t>(i);

  sc_cap_left_.assign(n_res, 0.0);
  sc_load_.assign(n_res, 0.0);
  sc_pressure_.assign(n_res, 0.0);
  for (std::size_t i = 0; i < n_res; ++i) sc_cap_left_[i] = capacity_[res_list[i]];

  // Gather the per-flow hot data into dense scratch, flattening the demand
  // entries (with pre-resolved local resource indices and pre-multiplied
  // weighted demands — the same products the rounds used to recompute).
  // FlowRecs are scattered through flows_, so this is the one
  // latency-bound pass: prefetch ahead, then the filling rounds below run
  // on contiguous arrays and never touch a FlowRec again until publish.
  for (std::size_t f = 0; f < n_flows; ++f)
    __builtin_prefetch(&flows_[comp_flow_list[f]]);
  sc_cap_lambda_.resize(n_flows);
  sc_weight_.resize(n_flows);
  sc_fixed_.assign(n_flows, 0);
  sc_ent_begin_.resize(n_flows + 1);
  sc_ent_local_.clear();
  sc_ent_demand_.clear();
  sc_ent_wdem_.clear();
  sc_ent_press_.clear();
  std::size_t n_fixed = 0;
  for (std::size_t f = 0; f < n_flows; ++f) {
    FlowRec& rec = flows_[comp_flow_list[f]];
    sc_cap_lambda_[f] = rec.cap_lambda;
    sc_weight_[f] = rec.weight;
    sc_ent_begin_[f] = static_cast<std::uint32_t>(sc_ent_local_.size());
    if (!rec.pressure_valid) {
      // Demand pressure: what the flow would push if it ran alone.  Cached
      // per entry (same expressions, same order, so the accumulation below
      // is bitwise identical to a fresh computation); zero-capacity entries
      // cache 0.0, which adds exactly nothing to a non-negative accumulator.
      double solo = rec.rate_cap > 0.0 ? rec.rate_cap : kInf;
      for (const auto& e : rec.entries) {
        if (e.demand <= 0.0) continue;
        solo = std::min(solo, capacity_[e.resource] / e.demand);
      }
      rec.pressure_contrib.clear();
      if (std::isfinite(solo))
        for (const auto& e : rec.entries)
          rec.pressure_contrib.push_back(
              capacity_[e.resource] > 0.0 ? solo * e.demand / capacity_[e.resource] : 0.0);
      rec.pressure_valid = true;
    }
    const bool has_press = !rec.pressure_contrib.empty();
    for (std::size_t i = 0; i < rec.entries.size(); ++i) {
      const MaxMinFlow::Entry& e = rec.entries[i];
      sc_ent_local_.push_back(res_local_[e.resource]);
      sc_ent_demand_.push_back(e.demand);
      sc_ent_wdem_.push_back(rec.weight * e.demand);
      sc_ent_press_.push_back(has_press ? rec.pressure_contrib[i] : 0.0);
    }
  }
  sc_ent_begin_[n_flows] = static_cast<std::uint32_t>(sc_ent_local_.size());

  sc_weighted_demand_.resize(std::max(sc_weighted_demand_.size(), n_res));
  sc_bottleneck_.resize(std::max(sc_bottleneck_.size(), n_res));
  sc_rate_.assign(n_flows, 0.0);
  std::vector<double>& rate_out = sc_rate_;

  while (n_fixed < n_flows) {
    // Total weighted demand of unfixed flows per resource.
    std::fill(sc_weighted_demand_.begin(), sc_weighted_demand_.begin() + static_cast<std::ptrdiff_t>(n_res), 0.0);
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (sc_fixed_[f]) continue;
      ++stats_.flow_visits;
      for (std::size_t k = sc_ent_begin_[f]; k < sc_ent_begin_[f + 1]; ++k)
        sc_weighted_demand_[sc_ent_local_[k]] += sc_ent_wdem_[k];
    }

    // Candidate lambda: tightest resource or tightest flow cap.
    double lambda = kInf;
    for (std::size_t r = 0; r < n_res; ++r) {
      if (sc_weighted_demand_[r] <= 0.0) continue;
      lambda = std::min(lambda, std::max(0.0, sc_cap_left_[r]) / sc_weighted_demand_[r]);
    }
    for (std::size_t f = 0; f < n_flows; ++f)
      if (!sc_fixed_[f]) lambda = std::min(lambda, sc_cap_lambda_[f]);

    if (!std::isfinite(lambda)) {
      // Unfixed flows touch only zero-demand resources and have no caps.
      for (std::size_t f = 0; f < n_flows; ++f)
        if (!sc_fixed_[f]) {
          rate_out[f] = kInf;
          sc_fixed_[f] = 1;
          ++n_fixed;
        }
      break;
    }

    // Freeze every flow that is saturated at this lambda: either its own
    // cap binds, or it crosses a resource that just became a bottleneck.
    bool froze_any = false;
    std::fill(sc_bottleneck_.begin(), sc_bottleneck_.begin() + static_cast<std::ptrdiff_t>(n_res), char{0});
    for (std::size_t r = 0; r < n_res; ++r) {
      if (sc_weighted_demand_[r] <= 0.0) continue;
      double ratio = std::max(0.0, sc_cap_left_[r]) / sc_weighted_demand_[r];
      if (ratio <= lambda * (1.0 + kSlack) + kSlack) sc_bottleneck_[r] = 1;
    }
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (sc_fixed_[f]) continue;
      bool saturated = sc_cap_lambda_[f] <= lambda * (1.0 + kSlack);
      if (!saturated)
        for (std::size_t k = sc_ent_begin_[f]; k < sc_ent_begin_[f + 1]; ++k)
          if (sc_bottleneck_[sc_ent_local_[k]] && sc_ent_demand_[k] > 0.0) {
            saturated = true;
            break;
          }
      if (!saturated) continue;
      double rate = sc_weight_[f] * std::min(lambda, sc_cap_lambda_[f]);
      rate_out[f] = rate;
      for (std::size_t k = sc_ent_begin_[f]; k < sc_ent_begin_[f + 1]; ++k) {
        const double used = rate * sc_ent_demand_[k];
        sc_cap_left_[sc_ent_local_[k]] -= used;
        sc_load_[sc_ent_local_[k]] += used;
      }
      sc_fixed_[f] = 1;
      ++n_fixed;
      froze_any = true;
    }
    // Progressive filling must freeze at least one flow per round; if slack
    // comparisons ever fail to, freeze everything at lambda to terminate.
    if (!froze_any) {
      for (std::size_t f = 0; f < n_flows; ++f) {
        if (sc_fixed_[f]) continue;
        double rate = sc_weight_[f] * std::min(lambda, sc_cap_lambda_[f]);
        rate_out[f] = rate;
        for (std::size_t k = sc_ent_begin_[f]; k < sc_ent_begin_[f + 1]; ++k) {
          const double used = rate * sc_ent_demand_[k];
          sc_cap_left_[sc_ent_local_[k]] -= used;
          sc_load_[sc_ent_local_[k]] += used;
        }
        sc_fixed_[f] = 1;
        ++n_fixed;
      }
    }
  }

  // Demand pressure: one dense pass over the flattened per-entry
  // contributions gathered above (flow order, then entry order — the same
  // accumulation order as the per-flow loop it replaces).
  const std::size_t n_entries = sc_ent_local_.size();
  for (std::size_t k = 0; k < n_entries; ++k)
    sc_pressure_[sc_ent_local_[k]] += sc_ent_press_[k];

  // Publish: rates that actually changed (bitwise), loads/pressures of all
  // member resources.
  for (std::size_t f = 0; f < n_flows; ++f) {
    FlowRec& rec = flows_[comp_flow_list[f]];
    if (rate_out[f] != rec.rate) {
      rec.rate = rate_out[f];
      changed_flows_.push_back(comp_flow_list[f]);
    }
  }
  for (std::size_t i = 0; i < n_res; ++i) {
    load_[res_list[i]] = sc_load_[i];
    pressure_[res_list[i]] = sc_pressure_[i];
    touched_resources_.push_back(res_list[i]);
  }
}

// ---- pure wrapper -----------------------------------------------------------

MaxMinSolution solve_max_min(const MaxMinProblem& problem) {
  MaxMinSolver solver;
  for (double c : problem.capacity) solver.add_resource(c);
  for (const auto& flow : problem.flows)
    solver.add_flow(flow.weight, flow.rate_cap, flow.entries);
  solver.solve();
  MaxMinSolution out;
  out.rate.resize(problem.flows.size());
  out.load.resize(problem.capacity.size());
  for (std::size_t f = 0; f < problem.flows.size(); ++f) out.rate[f] = solver.rate(f);
  for (std::size_t r = 0; r < problem.capacity.size(); ++r) out.load[r] = solver.load(r);
  return out;
}

}  // namespace cci::sim
