#include "sim/maxmin.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace cci::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative slack when deciding that a flow participates in the current
// bottleneck; absorbs round-off in the ratio computations.
constexpr double kSlack = 1e-12;
}  // namespace

MaxMinSolution solve_max_min(const MaxMinProblem& problem) {
  const std::size_t n_res = problem.capacity.size();
  const std::size_t n_flows = problem.flows.size();

  MaxMinSolution out;
  out.rate.assign(n_flows, 0.0);
  out.load.assign(n_res, 0.0);

  std::vector<double> cap_left = problem.capacity;
  std::vector<char> fixed(n_flows, 0);
  std::size_t n_fixed = 0;

  // Effective cap in "lambda units" (rate / weight); kInf when uncapped.
  std::vector<double> cap_lambda(n_flows);
  for (std::size_t f = 0; f < n_flows; ++f) {
    const auto& flow = problem.flows[f];
    assert(flow.weight > 0.0);
    cap_lambda[f] = flow.rate_cap > 0.0 ? flow.rate_cap / flow.weight : kInf;
    if (flow.entries.empty()) {
      // No shared resource: the flow is only limited by its own cap.
      out.rate[f] = flow.rate_cap > 0.0 ? flow.rate_cap : kInf;
      fixed[f] = 1;
      ++n_fixed;
    }
  }

  std::vector<double> weighted_demand(n_res);
  while (n_fixed < n_flows) {
    // Total weighted demand of unfixed flows per resource.
    weighted_demand.assign(n_res, 0.0);
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (fixed[f]) continue;
      for (const auto& e : problem.flows[f].entries)
        weighted_demand[e.resource] += problem.flows[f].weight * e.demand;
    }

    // Candidate lambda: tightest resource or tightest flow cap.
    double lambda = kInf;
    for (std::size_t r = 0; r < n_res; ++r) {
      if (weighted_demand[r] <= 0.0) continue;
      lambda = std::min(lambda, std::max(0.0, cap_left[r]) / weighted_demand[r]);
    }
    for (std::size_t f = 0; f < n_flows; ++f)
      if (!fixed[f]) lambda = std::min(lambda, cap_lambda[f]);

    if (!std::isfinite(lambda)) {
      // Unfixed flows touch only zero-demand resources and have no caps.
      for (std::size_t f = 0; f < n_flows; ++f)
        if (!fixed[f]) {
          out.rate[f] = kInf;
          fixed[f] = 1;
          ++n_fixed;
        }
      break;
    }

    // Freeze every flow that is saturated at this lambda: either its own
    // cap binds, or it crosses a resource that just became a bottleneck.
    bool froze_any = false;
    std::vector<char> bottleneck(n_res, 0);
    for (std::size_t r = 0; r < n_res; ++r) {
      if (weighted_demand[r] <= 0.0) continue;
      double ratio = std::max(0.0, cap_left[r]) / weighted_demand[r];
      if (ratio <= lambda * (1.0 + kSlack) + kSlack) bottleneck[r] = 1;
    }
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (fixed[f]) continue;
      bool saturated = cap_lambda[f] <= lambda * (1.0 + kSlack);
      if (!saturated)
        for (const auto& e : problem.flows[f].entries)
          if (bottleneck[e.resource] && e.demand > 0.0) {
            saturated = true;
            break;
          }
      if (!saturated) continue;
      double rate = problem.flows[f].weight * std::min(lambda, cap_lambda[f]);
      out.rate[f] = rate;
      for (const auto& e : problem.flows[f].entries) {
        cap_left[e.resource] -= rate * e.demand;
        out.load[e.resource] += rate * e.demand;
      }
      fixed[f] = 1;
      ++n_fixed;
      froze_any = true;
    }
    // Progressive filling must freeze at least one flow per round; if slack
    // comparisons ever fail to, freeze everything at lambda to terminate.
    if (!froze_any) {
      for (std::size_t f = 0; f < n_flows; ++f) {
        if (fixed[f]) continue;
        double rate = problem.flows[f].weight * std::min(lambda, cap_lambda[f]);
        out.rate[f] = rate;
        for (const auto& e : problem.flows[f].entries) {
          cap_left[e.resource] -= rate * e.demand;
          out.load[e.resource] += rate * e.demand;
        }
        fixed[f] = 1;
        ++n_fixed;
      }
    }
  }
  return out;
}

}  // namespace cci::sim
