#include "sim/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace cci::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative slack when deciding that a flow participates in the current
// bottleneck; absorbs round-off in the ratio computations.
constexpr double kSlack = 1e-12;
constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
}  // namespace

// ---- resources and partition ----------------------------------------------

std::size_t MaxMinSolver::add_resource(double capacity) {
  assert(capacity >= 0.0);
  const std::size_t r = capacity_.size();
  capacity_.push_back(capacity);
  load_.push_back(0.0);
  pressure_.push_back(0.0);
  parent_.push_back(r);
  comp_size_.push_back(1);
  comp_flows_.emplace_back();
  comp_res_.push_back({r});
  dirty_.push_back(0);
  return r;
}

void MaxMinSolver::set_capacity(std::size_t resource, double capacity) {
  assert(capacity >= 0.0);
  capacity_[resource] = capacity;
  mark_dirty(find_root(resource));
}

std::size_t MaxMinSolver::find_root(std::size_t r) {
  std::size_t root = r;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[r] != root) {  // path compression
    std::size_t next = parent_[r];
    parent_[r] = root;
    r = next;
  }
  return root;
}

void MaxMinSolver::mark_dirty(std::size_t root) {
  if (!dirty_[root]) {
    dirty_[root] = 1;
    dirty_roots_.push_back(root);
  }
}

std::size_t MaxMinSolver::unite(std::size_t a, std::size_t b) {
  if (a == b) return a;
  if (comp_size_[a] < comp_size_[b]) std::swap(a, b);
  parent_[b] = a;
  comp_size_[a] += comp_size_[b];
  for (FlowId id : comp_flows_[b]) {
    flows_[id].comp_pos = comp_flows_[a].size();
    comp_flows_[a].push_back(id);
  }
  comp_flows_[b].clear();
  comp_res_[a].insert(comp_res_[a].end(), comp_res_[b].begin(), comp_res_[b].end());
  comp_res_[b].clear();
  if (dirty_[b]) {
    dirty_[b] = 0;
    mark_dirty(a);
  }
  return a;
}

// ---- flows ------------------------------------------------------------------

MaxMinSolver::FlowId MaxMinSolver::add_flow(double weight, double rate_cap,
                                            const std::vector<MaxMinFlow::Entry>& entries) {
  assert(weight > 0.0);
  FlowId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = flows_.size();
    flows_.emplace_back();
  }
  FlowRec& rec = flows_[id];
  rec.weight = weight;
  rec.rate_cap = rate_cap;
  rec.rate = 0.0;
  rec.seq = next_seq_++;
  rec.entries = entries;
  rec.live = true;
  rec.comp_pos = kNoPos;
  if (entries.empty()) {
    // No shared resource: the flow is only limited by its own cap.  Solved
    // eagerly; it never joins (or dirties) a component.
    rec.rate = rate_cap > 0.0 ? rate_cap : kInf;
    entryless_changed_.push_back(id);
    return id;
  }
  std::size_t root = find_root(entries.front().resource);
  for (std::size_t i = 1; i < entries.size(); ++i)
    root = unite(root, find_root(entries[i].resource));
  rec.comp_pos = comp_flows_[root].size();
  comp_flows_[root].push_back(id);
  ++live_flows_;
  mark_dirty(root);
  return id;
}

void MaxMinSolver::remove_flow(FlowId id) {
  FlowRec& rec = flows_[id];
  assert(rec.live);
  rec.live = false;
  rec.rate = 0.0;
  if (!rec.entries.empty()) {
    const std::size_t root = find_root(rec.entries.front().resource);
    auto& list = comp_flows_[root];
    const std::size_t pos = rec.comp_pos;
    list[pos] = list.back();
    flows_[list[pos]].comp_pos = pos;
    list.pop_back();
    mark_dirty(root);
    --live_flows_;
    ++removals_since_rebuild_;
  }
  rec.entries.clear();
  rec.comp_pos = kNoPos;
  free_slots_.push_back(id);
}

void MaxMinSolver::rebuild_partition() {
  // Removals leave the union-find over-merged (a superset component is
  // still solved correctly, just wastefully).  Rebuilding from the live
  // flows restores the tight partition; dirty marks are carried across by
  // remembering which *resources* sat in dirty components.
  ++stats_.partition_rebuilds;
  removals_since_rebuild_ = 0;
  const std::size_t n_res = capacity_.size();
  std::vector<char> res_dirty(n_res, 0);
  for (std::size_t r = 0; r < n_res; ++r) res_dirty[r] = dirty_[find_root(r)];
  for (std::size_t r = 0; r < n_res; ++r) {
    parent_[r] = r;
    comp_size_[r] = 1;
    comp_flows_[r].clear();
    comp_res_[r].clear();
    comp_res_[r].push_back(r);
    dirty_[r] = 0;
  }
  dirty_roots_.clear();
  for (FlowId id = 0; id < flows_.size(); ++id) {
    FlowRec& rec = flows_[id];
    if (!rec.live || rec.entries.empty()) continue;
    std::size_t root = find_root(rec.entries.front().resource);
    for (std::size_t i = 1; i < rec.entries.size(); ++i)
      root = unite(root, find_root(rec.entries[i].resource));
    rec.comp_pos = comp_flows_[root].size();
    comp_flows_[root].push_back(id);
  }
  for (std::size_t r = 0; r < n_res; ++r)
    if (res_dirty[r]) mark_dirty(find_root(r));
}

// ---- solving ----------------------------------------------------------------

void MaxMinSolver::mark_all_dirty() {
  for (std::size_t r = 0; r < capacity_.size(); ++r) mark_dirty(find_root(r));
}

void MaxMinSolver::solve() {
  ++stats_.solves;
  changed_flows_.clear();
  touched_resources_.clear();
  for (FlowId id : entryless_changed_) changed_flows_.push_back(id);
  entryless_changed_.clear();

  if (removals_since_rebuild_ > 64 && removals_since_rebuild_ > live_flows_)
    rebuild_partition();

  std::size_t solved_flows = 0;
  for (std::size_t i = 0; i < dirty_roots_.size(); ++i) {
    const std::size_t root = dirty_roots_[i];
    if (parent_[root] != root || !dirty_[root]) continue;  // merged or stale
    dirty_[root] = 0;
    solved_flows += comp_flows_[root].size();
    ++stats_.components_solved;
    solve_component(root);
  }
  dirty_roots_.clear();
  if (solved_flows >= live_flows_)
    ++stats_.full_solves;
  else
    ++stats_.partial_solves;
}

void MaxMinSolver::solve_component(std::size_t root) {
  const std::vector<std::size_t>& res_list = comp_res_[root];
  const std::size_t n_res = res_list.size();

  // Solve order is registration order (seq), independent of how the
  // component was assembled — this keeps floating-point accumulation order
  // identical between a partial re-solve and a from-scratch solve.
  scratch_flows_.assign(comp_flows_[root].begin(), comp_flows_[root].end());
  std::sort(scratch_flows_.begin(), scratch_flows_.end(),
            [this](FlowId a, FlowId b) { return flows_[a].seq < flows_[b].seq; });
  const std::size_t n_flows = scratch_flows_.size();

  // Dense local resource indices.
  if (res_local_.size() < capacity_.size()) res_local_.resize(capacity_.size());
  for (std::size_t i = 0; i < n_res; ++i)
    res_local_[res_list[i]] = static_cast<std::uint32_t>(i);

  sc_cap_left_.assign(n_res, 0.0);
  sc_load_.assign(n_res, 0.0);
  sc_pressure_.assign(n_res, 0.0);
  for (std::size_t i = 0; i < n_res; ++i) sc_cap_left_[i] = capacity_[res_list[i]];

  sc_cap_lambda_.assign(n_flows, kInf);
  sc_fixed_.assign(n_flows, 0);
  std::size_t n_fixed = 0;
  for (std::size_t f = 0; f < n_flows; ++f) {
    const FlowRec& rec = flows_[scratch_flows_[f]];
    if (rec.rate_cap > 0.0) sc_cap_lambda_[f] = rec.rate_cap / rec.weight;
  }

  sc_weighted_demand_.resize(std::max(sc_weighted_demand_.size(), n_res));
  sc_bottleneck_.resize(std::max(sc_bottleneck_.size(), n_res));
  sc_rate_.assign(n_flows, 0.0);
  std::vector<double>& rate_out = sc_rate_;

  while (n_fixed < n_flows) {
    // Total weighted demand of unfixed flows per resource.
    std::fill(sc_weighted_demand_.begin(), sc_weighted_demand_.begin() + static_cast<std::ptrdiff_t>(n_res), 0.0);
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (sc_fixed_[f]) continue;
      ++stats_.flow_visits;
      const FlowRec& rec = flows_[scratch_flows_[f]];
      for (const auto& e : rec.entries)
        sc_weighted_demand_[res_local_[e.resource]] += rec.weight * e.demand;
    }

    // Candidate lambda: tightest resource or tightest flow cap.
    double lambda = kInf;
    for (std::size_t r = 0; r < n_res; ++r) {
      if (sc_weighted_demand_[r] <= 0.0) continue;
      lambda = std::min(lambda, std::max(0.0, sc_cap_left_[r]) / sc_weighted_demand_[r]);
    }
    for (std::size_t f = 0; f < n_flows; ++f)
      if (!sc_fixed_[f]) lambda = std::min(lambda, sc_cap_lambda_[f]);

    if (!std::isfinite(lambda)) {
      // Unfixed flows touch only zero-demand resources and have no caps.
      for (std::size_t f = 0; f < n_flows; ++f)
        if (!sc_fixed_[f]) {
          rate_out[f] = kInf;
          sc_fixed_[f] = 1;
          ++n_fixed;
        }
      break;
    }

    // Freeze every flow that is saturated at this lambda: either its own
    // cap binds, or it crosses a resource that just became a bottleneck.
    bool froze_any = false;
    std::fill(sc_bottleneck_.begin(), sc_bottleneck_.begin() + static_cast<std::ptrdiff_t>(n_res), char{0});
    for (std::size_t r = 0; r < n_res; ++r) {
      if (sc_weighted_demand_[r] <= 0.0) continue;
      double ratio = std::max(0.0, sc_cap_left_[r]) / sc_weighted_demand_[r];
      if (ratio <= lambda * (1.0 + kSlack) + kSlack) sc_bottleneck_[r] = 1;
    }
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (sc_fixed_[f]) continue;
      const FlowRec& rec = flows_[scratch_flows_[f]];
      bool saturated = sc_cap_lambda_[f] <= lambda * (1.0 + kSlack);
      if (!saturated)
        for (const auto& e : rec.entries)
          if (sc_bottleneck_[res_local_[e.resource]] && e.demand > 0.0) {
            saturated = true;
            break;
          }
      if (!saturated) continue;
      double rate = rec.weight * std::min(lambda, sc_cap_lambda_[f]);
      rate_out[f] = rate;
      for (const auto& e : rec.entries) {
        sc_cap_left_[res_local_[e.resource]] -= rate * e.demand;
        sc_load_[res_local_[e.resource]] += rate * e.demand;
      }
      sc_fixed_[f] = 1;
      ++n_fixed;
      froze_any = true;
    }
    // Progressive filling must freeze at least one flow per round; if slack
    // comparisons ever fail to, freeze everything at lambda to terminate.
    if (!froze_any) {
      for (std::size_t f = 0; f < n_flows; ++f) {
        if (sc_fixed_[f]) continue;
        const FlowRec& rec = flows_[scratch_flows_[f]];
        double rate = rec.weight * std::min(lambda, sc_cap_lambda_[f]);
        rate_out[f] = rate;
        for (const auto& e : rec.entries) {
          sc_cap_left_[res_local_[e.resource]] -= rate * e.demand;
          sc_load_[res_local_[e.resource]] += rate * e.demand;
        }
        sc_fixed_[f] = 1;
        ++n_fixed;
      }
    }
  }

  // Demand pressure: what each flow would push if it ran alone.
  for (std::size_t f = 0; f < n_flows; ++f) {
    const FlowRec& rec = flows_[scratch_flows_[f]];
    double solo = rec.rate_cap > 0.0 ? rec.rate_cap : kInf;
    for (const auto& e : rec.entries) {
      if (e.demand <= 0.0) continue;
      solo = std::min(solo, capacity_[e.resource] / e.demand);
    }
    if (!std::isfinite(solo)) continue;
    for (const auto& e : rec.entries) {
      if (capacity_[e.resource] > 0.0)
        sc_pressure_[res_local_[e.resource]] += solo * e.demand / capacity_[e.resource];
    }
  }

  // Publish: rates that actually changed (bitwise), loads/pressures of all
  // member resources.
  for (std::size_t f = 0; f < n_flows; ++f) {
    FlowRec& rec = flows_[scratch_flows_[f]];
    if (rate_out[f] != rec.rate) {
      rec.rate = rate_out[f];
      changed_flows_.push_back(scratch_flows_[f]);
    }
  }
  for (std::size_t i = 0; i < n_res; ++i) {
    load_[res_list[i]] = sc_load_[i];
    pressure_[res_list[i]] = sc_pressure_[i];
    touched_resources_.push_back(res_list[i]);
  }
}

// ---- pure wrapper -----------------------------------------------------------

MaxMinSolution solve_max_min(const MaxMinProblem& problem) {
  MaxMinSolver solver;
  for (double c : problem.capacity) solver.add_resource(c);
  for (const auto& flow : problem.flows)
    solver.add_flow(flow.weight, flow.rate_cap, flow.entries);
  solver.solve();
  MaxMinSolution out;
  out.rate.resize(problem.flows.size());
  out.load.resize(problem.capacity.size());
  for (std::size_t f = 0; f < problem.flows.size(); ++f) out.rate[f] = solver.rate(f);
  for (std::size_t r = 0; r < problem.capacity.size(); ++r) out.load[r] = solver.load(r);
  return out;
}

}  // namespace cci::sim
