// Synchronisation primitives for simulation processes.
//
// All wake-ups are funneled through Engine::resume_soon so resumption order
// is serialized by the event queue (deterministic, no nested resumes).
//
// Hot-path memory: waiter lists live in inline small-vectors (0–1 waiters is
// the overwhelmingly common case) and the when_any/when_all combinators park
// a pooled, intrusively refcounted WaitNode on each event instead of a
// heap-allocated std::function closure — libstdc++'s std::function small-
// object optimisation only inlines trivially-copyable callables, so any
// refcounting capture would defeat it.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <functional>
#include <initializer_list>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/pool.hpp"

namespace cci::sim {

/// One-shot level-triggered event: once set, all current and future waiters
/// proceed immediately.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine& engine) : engine_(&engine) {}

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_->resume_soon(h);
    waiters_.clear();
    for (auto& node : watchers_) notify(std::move(node));
    watchers_.clear();
    if (!callbacks_.empty()) {
      auto callbacks = std::move(callbacks_);
      callbacks_.clear();
      for (auto& fn : callbacks) fn();
    }
  }
  [[nodiscard]] bool is_set() const { return set_; }

  /// Invoke `fn` when the event fires (immediately if already set).
  void on_set(std::function<void()> fn) {
    if (set_) {
      fn();
    } else {
      callbacks_.push_back(std::move(fn));
    }
  }

  /// Park a combinator wait node on this event (notified immediately if
  /// already set).  The event keeps a reference until it fires or dies, so
  /// a node whose combinator already resumed (when_any's losers) is simply
  /// released when its last event goes away.
  void add_watcher(RcPtr<WaitNode> node) {
    if (set_) {
      notify(std::move(node));
    } else {
      watchers_.push_back(std::move(node));
    }
  }

  struct Awaiter {
    OneShotEvent* event;
    bool await_ready() const noexcept { return event->set_; }
    void await_suspend(std::coroutine_handle<> h) { event->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }
  Awaiter operator co_await() { return Awaiter{this}; }

 private:
  /// The notification that drives `remaining` to zero resumes the waiting
  /// coroutine; later ones (when_any has exactly one winner) are no-ops.
  void notify(RcPtr<WaitNode> node) {
    if (node->remaining != 0 && --node->remaining == 0)
      engine_->resume_soon(node->h);
  }

  Engine* engine_;
  bool set_ = false;
  SmallVec<std::coroutine_handle<>, 2> waiters_;
  SmallVec<RcPtr<WaitNode>, 2> watchers_;
  std::vector<std::function<void()>> callbacks_;
};

/// Awaitable that resumes when ANY of the given events is set.  The caller
/// must keep the events alive until resumption.
struct WhenAny {
  Engine* engine;
  SmallVec<OneShotEvent*, 4> events;

  bool await_ready() const noexcept {
    for (auto* e : events)
      if (e->is_set()) return true;
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    RcPtr<WaitNode> node = engine->make_wait_node();
    node->remaining = 1;  // first event to fire wins, the rest are no-ops
    node->h = h;
    for (auto* e : events) e->add_watcher(node);
  }
  void await_resume() const noexcept {}
};

inline WhenAny when_any(Engine& engine, std::initializer_list<OneShotEvent*> events) {
  WhenAny w{&engine, {}};
  for (auto* e : events) w.events.push_back(e);
  return w;
}
inline WhenAny when_any(Engine& engine, const std::vector<OneShotEvent*>& events) {
  WhenAny w{&engine, {}};
  for (auto* e : events) w.events.push_back(e);
  return w;
}

/// Awaitable that resumes when ALL of the given events are set.
struct WhenAll {
  Engine* engine;
  SmallVec<OneShotEvent*, 4> events;

  bool await_ready() const noexcept {
    for (auto* e : events)
      if (!e->is_set()) return false;
    return true;
  }
  void await_suspend(std::coroutine_handle<> h) {
    std::uint32_t remaining = 0;
    for (auto* e : events)
      if (!e->is_set()) ++remaining;
    if (remaining == 0) {  // raced: everything fired since await_ready
      engine->resume_soon(h);
      return;
    }
    RcPtr<WaitNode> node = engine->make_wait_node();
    node->remaining = remaining;
    node->h = h;
    for (auto* e : events)
      if (!e->is_set()) e->add_watcher(node);
  }
  void await_resume() const noexcept {}
};

inline WhenAll when_all(Engine& engine, std::initializer_list<OneShotEvent*> events) {
  WhenAll w{&engine, {}};
  for (auto* e : events) w.events.push_back(e);
  return w;
}
inline WhenAll when_all(Engine& engine, const std::vector<OneShotEvent*>& events) {
  WhenAll w{&engine, {}};
  for (auto* e : events) w.events.push_back(e);
  return w;
}

/// Unbounded FIFO channel between processes.  Multiple producers and
/// consumers are supported; each put wakes exactly one waiter and reserves
/// the item for it, so no waiter can observe an empty queue after wake-up.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(&engine) {}

  void put(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      ++reserved_;
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->resume_soon(h);
    }
  }

  /// Items visible to a non-blocking probe (excludes reserved ones).
  [[nodiscard]] std::size_t available() const { return items_.size() - reserved_; }
  [[nodiscard]] bool empty() const { return available() == 0; }

  /// Non-blocking receive; returns true and fills `out` if an unreserved
  /// item was present.  The first `reserved_` items belong (in FIFO order)
  /// to already-woken waiters and are skipped.
  bool try_get(T& out) {
    if (available() == 0) return false;
    auto it = items_.begin() + static_cast<std::ptrdiff_t>(reserved_);
    out = std::move(*it);
    items_.erase(it);
    return true;
  }

  struct GetAwaiter {
    Mailbox* box;
    bool suspended = false;
    bool await_ready() const noexcept { return box->available() > 0; }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      box->waiters_.push_back(h);
    }
    T await_resume() {
      if (suspended) {
        // Woken by a put() that reserved the oldest item for us.
        --box->reserved_;
        T v = std::move(box->items_.front());
        box->items_.pop_front();
        return v;
      }
      // Ready path: take the first item not reserved for a woken waiter.
      auto it = box->items_.begin() + static_cast<std::ptrdiff_t>(box->reserved_);
      T v = std::move(*it);
      box->items_.erase(it);
      return v;
    }
  };
  /// `co_await box.get()` — receive, suspending until an item arrives.
  GetAwaiter get() { return GetAwaiter{this}; }

 private:
  Engine* engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t reserved_ = 0;
};

/// Counting semaphore with direct hand-off on release.
class SimSemaphore {
 public:
  SimSemaphore(Engine& engine, std::size_t initial) : engine_(&engine), count_(initial) {}

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->resume_soon(h);  // permit handed directly to the waiter
    } else {
      ++count_;
    }
  }

  struct AcquireAwaiter {
    SimSemaphore* sem;
    bool suspended = false;
    bool await_ready() const noexcept { return sem->count_ > 0; }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      sem->waiters_.push_back(h);
    }
    void await_resume() {
      if (!suspended) --sem->count_;
      // else: the permit was transferred by release() without touching count_.
    }
  };
  AcquireAwaiter acquire() { return AcquireAwaiter{this}; }

  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  Engine* engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace cci::sim
