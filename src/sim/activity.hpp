// Activities: units of fluid work advancing through shared resources.
//
// An Activity models anything whose *rate* is set by resource sharing — a
// DMA transfer crossing memory controllers and the wire, or a compute chunk
// coupling a core's flop throughput with its memory traffic (the roofline).
// Activities are created from a spec and driven by the FlowModel.
//
// Hot-path memory: the spec carries a 4-byte interned LabelId (intern via
// Engine::intern, read back with Engine::label_str) instead of a string, and
// its demand list has 4 inline slots; Activity objects themselves come from
// the FlowModel's slab pool behind an intrusive RcPtr, so starting and
// completing an activity touches no allocator at steady state.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "sim/attribution.hpp"
#include "sim/label.hpp"
#include "sim/pool.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace cci::sim {

class FlowModel;
class Resource;

/// Declarative description of an activity, filled by the caller.
struct ActivitySpec {
  LabelId label = kNoLabel;  ///< for traces and debugging (Engine::intern)
  /// Total work in abstract units (bytes for transfers, iterations for
  /// compute chunks).  Must be >= 0; zero-work activities complete at once.
  double work = 0.0;
  double weight = 1.0;    ///< sharing weight (see solve_max_min)
  double rate_cap = 0.0;  ///< intrinsic rate limit; <= 0 means none
  /// Workload class for the interference profiler (sim/attribution.hpp).
  /// Purely diagnostic: never consulted by the solver or the scheduler.
  ProfileClass profile_class = kClassOther;
  struct Demand {
    Resource* resource;
    double amount;  ///< resource units consumed per unit of rate
  };
  SmallVec<Demand, 4> demands;
};

class Activity : public RcPooled<Activity> {
 public:
  Activity(Engine& engine, ActivitySpec spec)
      : spec_(std::move(spec)),
        done_(engine),
        engine_(&engine),
        base_time_(engine.now()),
        started_at_(engine.now()) {}

  [[nodiscard]] const ActivitySpec& spec() const { return spec_; }
  /// Progress is kept lazily: work done is extrapolated from the last rate
  /// change (rates are constant between change points, so this is exact and
  /// lets the model skip untouched activities entirely).
  [[nodiscard]] double work_done() const {
    if (rate_ == 0.0) return work_base_;
    if (!std::isfinite(rate_)) return spec_.work;
    double w = work_base_ + rate_ * (engine_->now() - base_time_);
    return w > spec_.work ? spec_.work : w;
  }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] bool finished() const { return done_.is_set(); }
  [[nodiscard]] Time started_at() const { return started_at_; }
  [[nodiscard]] Time finished_at() const { return finished_at_; }
  /// Wall (simulated) duration; valid after completion.
  [[nodiscard]] Time duration() const { return finished_at_ - started_at_; }

  /// Completion event; `co_await *activity` suspends until done.
  OneShotEvent& done() { return done_; }
  auto operator co_await() { return done_.wait(); }

 private:
  friend class FlowModel;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  ActivitySpec spec_;
  OneShotEvent done_;
  Engine* engine_;
  double work_base_ = 0.0;  ///< work done as of base_time_
  Time base_time_ = 0.0;    ///< last rate change (progress materialization)
  double rate_ = 0.0;
  double solo_rate_ = 0.0;  ///< isolated rate (profiler only; 0 when detached)
  Time started_at_ = 0.0;
  Time finished_at_ = kNever;
  // FlowModel bookkeeping: O(1) cancel and incremental re-solves.
  std::uint64_t seq_ = 0;               ///< start order (deterministic ties)
  std::size_t run_slot_ = kNoSlot;      ///< index in FlowModel::running_
  std::size_t flow_id_ = kNoSlot;       ///< MaxMinSolver flow id
  std::size_t heap_pos_ = kNoSlot;      ///< position in the completion heap
  Time predicted_finish_ = kNever;      ///< completion-heap key
};

/// Intrusive, pool-recycling shared pointer to an Activity.
using ActivityPtr = RcPtr<Activity>;

}  // namespace cci::sim
