// Activities: units of fluid work advancing through shared resources.
//
// An Activity models anything whose *rate* is set by resource sharing — a
// DMA transfer crossing memory controllers and the wire, or a compute chunk
// coupling a core's flop throughput with its memory traffic (the roofline).
// Activities are created from a spec and driven by the FlowModel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace cci::sim {

class FlowModel;
class Resource;

/// Declarative description of an activity, filled by the caller.
struct ActivitySpec {
  std::string label;  ///< for traces and debugging
  /// Total work in abstract units (bytes for transfers, iterations for
  /// compute chunks).  Must be >= 0; zero-work activities complete at once.
  double work = 0.0;
  double weight = 1.0;    ///< sharing weight (see solve_max_min)
  double rate_cap = 0.0;  ///< intrinsic rate limit; <= 0 means none
  struct Demand {
    Resource* resource;
    double amount;  ///< resource units consumed per unit of rate
  };
  std::vector<Demand> demands;
};

class Activity {
 public:
  Activity(Engine& engine, ActivitySpec spec)
      : spec_(std::move(spec)), done_(engine), started_at_(engine.now()) {}

  [[nodiscard]] const ActivitySpec& spec() const { return spec_; }
  [[nodiscard]] double work_done() const { return work_done_; }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] bool finished() const { return done_.is_set(); }
  [[nodiscard]] Time started_at() const { return started_at_; }
  [[nodiscard]] Time finished_at() const { return finished_at_; }
  /// Wall (simulated) duration; valid after completion.
  [[nodiscard]] Time duration() const { return finished_at_ - started_at_; }

  /// Completion event; `co_await *activity` suspends until done.
  OneShotEvent& done() { return done_; }
  auto operator co_await() { return done_.wait(); }

 private:
  friend class FlowModel;
  ActivitySpec spec_;
  OneShotEvent done_;
  double work_done_ = 0.0;
  double rate_ = 0.0;
  Time started_at_ = 0.0;
  Time finished_at_ = kNever;
};

using ActivityPtr = std::shared_ptr<Activity>;

}  // namespace cci::sim
