// Watchdog diagnostics: structured reports for simulations that stop
// making progress.
//
// A discrete-event simulation has three silent failure modes:
//  * runaway event storms (a bug reschedules forever, time advances),
//  * livelocks (events keep firing at one instant, time never advances),
//  * deadlocks (the queue drains while coroutine processes are still
//    blocked on events nobody will set — e.g. an activity stalled at rate
//    zero, or a receive whose sender died).
// The engine's watchdog converts each into a thrown SimStalled carrying
// the blocked-activity descriptions collected from registered stall
// inspectors, instead of an infinite loop or a silently-short run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace cci::sim {

/// Watchdog limits; zero/false fields are disabled.  Off by default so
/// existing runs are untouched; tests and long experiments opt in.
struct WatchdogConfig {
  /// Trip after this many events in one Engine::run call (0 = unlimited).
  std::uint64_t max_events = 0;
  /// Trip after this many events at a single simulated instant — the
  /// livelock detector (0 = unlimited).
  std::uint64_t max_events_per_instant = 0;
  /// Trip when the queue drains while spawned processes are still blocked
  /// (the deadlock form: everything waits, nothing is scheduled).
  bool report_blocked_on_drain = false;

  [[nodiscard]] bool any() const {
    return max_events != 0 || max_events_per_instant != 0 || report_blocked_on_drain;
  }
};

enum class StallReason {
  kEventBudget,       ///< max_events exceeded (runaway simulation)
  kNoProgress,        ///< max_events_per_instant exceeded (livelock)
  kBlockedProcesses,  ///< queue drained with live blocked processes (deadlock)
};

/// Thrown by Engine::run when the watchdog trips.  Never thrown from inside
/// a coroutine process (exceptions escaping a process terminate), only from
/// the run loop itself.
class SimStalled : public std::runtime_error {
 public:
  SimStalled(StallReason reason, Time at, std::uint64_t events, int live_processes,
             std::vector<std::string> blocked)
      : std::runtime_error(format(reason, at, events, live_processes, blocked)),
        reason_(reason),
        at_(at),
        events_(events),
        live_processes_(live_processes),
        blocked_(std::move(blocked)) {}

  [[nodiscard]] StallReason reason() const { return reason_; }
  [[nodiscard]] Time at() const { return at_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] int live_processes() const { return live_processes_; }
  /// Human-readable descriptions of what was blocked, collected from the
  /// engine's stall inspectors (flow model, transport, runtime).
  [[nodiscard]] const std::vector<std::string>& blocked() const { return blocked_; }

 private:
  static std::string format(StallReason reason, Time at, std::uint64_t events,
                            int live_processes, const std::vector<std::string>& blocked) {
    std::string msg = "simulation stalled (";
    switch (reason) {
      case StallReason::kEventBudget:
        msg += "event budget exceeded";
        break;
      case StallReason::kNoProgress:
        msg += "no progress: event storm at one instant";
        break;
      case StallReason::kBlockedProcesses:
        msg += "deadlock: event queue drained with blocked processes";
        break;
    }
    msg += ") at t=" + std::to_string(at) + "s after " + std::to_string(events) +
           " events, " + std::to_string(live_processes) + " live processes";
    if (!blocked.empty()) {
      msg += "; blocked:";
      for (const std::string& b : blocked) msg += "\n  - " + b;
    }
    return msg;
  }

  StallReason reason_;
  Time at_;
  std::uint64_t events_;
  int live_processes_;
  std::vector<std::string> blocked_;
};

}  // namespace cci::sim
