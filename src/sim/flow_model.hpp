// FlowModel: drives all fluid activities over shared resources.
//
// The model keeps the set of running activities; whenever the set or any
// resource capacity changes it (1) harvests activities whose predicted
// completion instant has arrived, (2) re-solves the weighted bottleneck
// max-min allocation *incrementally* — only the resource components touched
// by the change are re-run; rates and loads elsewhere carry over verbatim —
// and (3) retimes one engine timer to the earliest predicted completion.
// Between change points all rates are constant, so progress is exactly
// linear — the classic fluid-flow DES, with change-point cost proportional
// to the touched component instead of the whole machine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/activity.hpp"
#include "sim/attribution.hpp"
#include "sim/engine.hpp"
#include "sim/maxmin.hpp"
#include "sim/pool.hpp"
#include "sim/resource.hpp"

namespace cci::sim {

class FlowModel {
 public:
  explicit FlowModel(Engine& engine);
  ~FlowModel();
  FlowModel(const FlowModel&) = delete;
  FlowModel& operator=(const FlowModel&) = delete;

  Engine& engine() { return engine_; }

  /// Create a resource owned by this model.  Pointers remain valid for the
  /// model's lifetime.
  Resource* add_resource(std::string name, double capacity);

  /// Start an activity; it completes after spec.work units of progress.
  /// The returned pointer stays valid at least until completion.
  ActivityPtr start(ActivitySpec spec);

  /// Abort a running activity; its completion event is NOT set.  O(1).
  void cancel(const ActivityPtr& activity);

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }

  /// Toggle connected-component partial re-solves (on by default).  The
  /// CCI_SIM_INCREMENTAL=0 environment variable forces the from-scratch
  /// reference path; useful for A/B determinism checks.
  void set_incremental(bool on) { incremental_ = on; }
  [[nodiscard]] bool incremental() const { return incremental_; }

  /// Read-only view of the underlying solver (perf counters for benches).
  [[nodiscard]] const MaxMinSolver& solver() const { return solver_; }

  /// Union-find component root of `r` in the solver's resource partition.
  /// Two resources share a root iff some chain of flows couples them — the
  /// connectivity signal sim::shard_assignment() partitions scenarios with.
  /// `r` must belong to this model.
  [[nodiscard]] std::size_t resource_component(const Resource* r) const;

  /// Attach (or detach, with nullptr) an interference profiler.  While
  /// attached, every change-point interval is decomposed exactly into
  /// isolated-equivalent time and contention delay per activity class (see
  /// sim/attribution.hpp for the model).  Attaching mid-run is safe: the
  /// open interval is closed under the previous attachment state first.
  /// Costs O(running activities x demands) per change point when attached,
  /// strictly zero extra work when detached.
  void set_profiler(InterferenceProfiler* profiler);
  [[nodiscard]] InterferenceProfiler* profiler() const { return profiler_; }

  /// Maximum utilization over a set of resources — the congestion signal
  /// used by the latency-inflation model for small messages.
  static double max_utilization(const std::vector<Resource*>& path) {
    double u = 0.0;
    for (const Resource* r : path) u = std::max(u, r->utilization());
    return u;
  }

 private:
  friend class Resource;
  void on_capacity_changed(Resource* resource);
  /// Accumulate the per-resource work-unit integrals up to engine_.now()
  /// (loads are constant since the last change point, so load * dt is
  /// exact).  Activity progress itself is lazy — see Activity::work_done().
  void advance();
  /// Harvest due completions, re-solve dirty components, retime the timer.
  void reallocate();

  /// Attribution bookkeeping for the closed interval [now - dt, now]
  /// (profiler attached, dt > 0): split each running activity's dt into
  /// isolated vs contended time and charge the contended share to the
  /// classes loading its bottleneck resource.
  void profile_advance(Time dt);
  /// Recompute an activity's isolated rate min(rate_cap, cap_j / demand_j)
  /// from current capacities (profiler attached only).
  void refresh_solo_rate(Activity& act) const;

  /// Completion instant implied by the current rate; kNever while stalled.
  [[nodiscard]] Time predicted_finish(const Activity& act) const;

  /// Remove `act` from running_ (swap-erase, O(1)); returns the owning ptr.
  ActivityPtr detach_running(Activity* act);

  // ---- completion heap: running activities with a finite predicted finish,
  // ordered by (predicted_finish_, seq_).  Positions live in the Activity so
  // a rate change updates one entry in O(log n) instead of rescanning all.
  [[nodiscard]] bool heap_before(const Activity* a, const Activity* b) const {
    if (a->predicted_finish_ != b->predicted_finish_)
      return a->predicted_finish_ < b->predicted_finish_;
    return a->seq_ < b->seq_;
  }
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  void heap_set(Activity* act, Time finish);  ///< insert/update/remove
  void heap_erase(Activity* act);

  /// Completed/cancelled activities become tracer spans on the track of
  /// their first demanded resource.
  void trace_activity(const Activity& act, const char* suffix);

  Engine& engine_;
  MaxMinSolver solver_;
  SlabPool<Activity> activity_pool_;  ///< stats: sim.pool.activity.*
  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<ActivityPtr> running_;       ///< unordered; slot in Activity
  std::vector<Activity*> flow_act_;        ///< solver FlowId -> activity
  std::vector<Activity*> completion_heap_;
  std::vector<Activity*> harvest_;         ///< scratch, reused
  std::vector<MaxMinFlow::Entry> entries_scratch_;
  EventQueue::Handle timer_;
  Time last_advance_ = 0.0;
  std::uint64_t next_activity_seq_ = 0;
  bool incremental_ = true;
  InterferenceProfiler* profiler_ = nullptr;

  obs::Registry* obs_reg_;
  obs::Counter* obs_resolves_;
  obs::Counter* obs_resolves_full_;
  obs::Counter* obs_resolves_partial_;
  obs::Counter* obs_flow_visits_;
  obs::Counter* obs_components_solved_;
  obs::Counter* obs_started_;
  obs::Histogram* obs_solve_wall_us_;
  // Solver-stat baselines so counters receive per-solve deltas.
  std::uint64_t last_full_solves_ = 0;
  std::uint64_t last_partial_solves_ = 0;
  std::uint64_t last_flow_visits_ = 0;
  std::uint64_t last_components_solved_ = 0;
};

}  // namespace cci::sim
