// FlowModel: drives all fluid activities over shared resources.
//
// The model keeps the set of running activities; whenever the set or any
// resource capacity changes it (1) advances every activity's progress to
// the current time at the previously computed rates, (2) re-solves the
// weighted bottleneck max-min allocation, and (3) schedules one engine
// timer at the earliest completion.  Between change points all rates are
// constant, so progress is exactly linear — the classic fluid-flow DES.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/activity.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace cci::sim {

class FlowModel {
 public:
  explicit FlowModel(Engine& engine);
  FlowModel(const FlowModel&) = delete;
  FlowModel& operator=(const FlowModel&) = delete;

  Engine& engine() { return engine_; }

  /// Create a resource owned by this model.  Pointers remain valid for the
  /// model's lifetime.
  Resource* add_resource(std::string name, double capacity);

  /// Start an activity; it completes after spec.work units of progress.
  /// The returned pointer stays valid at least until completion.
  ActivityPtr start(ActivitySpec spec);

  /// Abort a running activity; its completion event is NOT set.
  void cancel(const ActivityPtr& activity);

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }

  /// Maximum utilization over a set of resources — the congestion signal
  /// used by the latency-inflation model for small messages.
  static double max_utilization(const std::vector<Resource*>& path) {
    double u = 0.0;
    for (const Resource* r : path) u = std::max(u, r->utilization());
    return u;
  }

 private:
  friend class Resource;
  void on_capacity_changed();
  /// Advance work_done of all running activities to engine_.now().
  void advance();
  /// Re-solve rates, harvest completions, reschedule the timer.
  void reallocate();

  /// Completed/cancelled activities become tracer spans on the track of
  /// their first demanded resource.
  void trace_activity(const Activity& act, const char* suffix);

  Engine& engine_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<ActivityPtr> running_;
  EventQueue::Handle timer_;
  Time last_advance_ = 0.0;
  obs::Registry* obs_reg_;
  obs::Counter* obs_resolves_;
  obs::Counter* obs_started_;
  obs::Histogram* obs_solve_wall_us_;
};

}  // namespace cci::sim
