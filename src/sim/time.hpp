// Simulated-time definitions shared by the whole simulator.
//
// All simulated durations are expressed in seconds as double-precision
// floats.  Helper literals/constructors are provided so call sites can say
// `usec(1.7)` instead of sprinkling 1.7e-6 around.
#pragma once

#include <limits>

namespace cci::sim {

/// Simulated time in seconds since the start of the simulation.
using Time = double;

/// Sentinel for "no scheduled time" / unreachable completion.
inline constexpr Time kNever = std::numeric_limits<Time>::infinity();

/// Smallest time step the engine distinguishes; used to absorb floating
/// point round-off when comparing completion times.
inline constexpr Time kTimeEpsilon = 1e-15;

constexpr Time sec(double s) { return s; }
constexpr Time msec(double ms) { return ms * 1e-3; }
constexpr Time usec(double us) { return us * 1e-6; }
constexpr Time nsec(double ns) { return ns * 1e-9; }

constexpr double to_usec(Time t) { return t * 1e6; }
constexpr double to_msec(Time t) { return t * 1e3; }
constexpr double to_nsec(Time t) { return t * 1e9; }

}  // namespace cci::sim
