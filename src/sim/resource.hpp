// A shared, capacity-limited resource (memory controller, link, core, NIC).
#pragma once

#include <cassert>
#include <cstddef>
#include <string>

#include "obs/metrics.hpp"

namespace cci::sim {

class FlowModel;

class Resource {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  /// Total usage allocated by the last max-min solve.
  [[nodiscard]] double load() const { return load_; }
  /// Fraction of capacity in use, in [0, 1] (clamped).
  [[nodiscard]] double utilization() const {
    if (capacity_ <= 0.0) return load_ > 0.0 ? 1.0 : 0.0;
    double u = load_ / capacity_;
    return u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u);
  }
  /// Demand pressure: sum over flows of the usage they would generate if
  /// running alone (solo rate x demand), divided by capacity.  Unlike
  /// utilization this can exceed 1 and keeps growing with the number of
  /// contenders, which is what queueing delay responds to.
  [[nodiscard]] double pressure() const { return pressure_; }
  /// Change capacity (e.g. a frequency transition); triggers reallocation.
  void set_capacity(double capacity);
  /// Position in the owning model's resource table (registration order).
  [[nodiscard]] std::size_t index() const { return index_; }

 private:
  friend class FlowModel;
  Resource(FlowModel* model, std::size_t index, std::string name, double capacity)
      : model_(model), index_(index), name_(std::move(name)), capacity_(capacity) {
    assert(capacity >= 0.0);
  }

  FlowModel* model_;
  std::size_t index_;  ///< position in the owning model's resource table
  std::string name_;
  double capacity_;
  double load_ = 0.0;
  double pressure_ = 0.0;
  // Observability: work-unit integral (bytes for links/controllers, cycles
  // for cores) plus the cached names of the load counter-sample series and
  // the span track activities are traced on (built once at add_resource, so
  // tracing never concatenates on the hot path).
  obs::Counter* obs_work_ = nullptr;
  obs::Gauge* obs_util_ = nullptr;      ///< sim.resource.<name>.utilization
  obs::Gauge* obs_pressure_ = nullptr;  ///< sim.resource.<name>.pressure
  std::string obs_load_series_;
  std::string obs_track_series_;
  double obs_last_sampled_load_ = -1.0;
};

}  // namespace cci::sim
