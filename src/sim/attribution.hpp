// Interference attribution: who slowed whom down, and by how much.
//
// The fluid model makes this exact rather than statistical.  Between change
// points every activity advances at a constant granted rate r, while its
// *isolated* rate r_solo — the rate it would sustain with the machine to
// itself — is fixed by its rate cap and the capacities of the resources it
// demands: r_solo = min(rate_cap, min_j capacity_j / demand_j).  Over an
// interval dt the activity therefore makes r * dt units of progress that
// would have taken (r / r_solo) * dt seconds in isolation; the difference
//
//   contended_dt = dt * (1 - r / r_solo)
//
// is contention delay, attributable at the activity's bottleneck resource
// (the demanded resource with the highest load/capacity; ties break to the
// first demand in spec order) to the other activities loading it, in
// proportion to their share of that load.  Summing per profile class gives
// the victim/aggressor matrix: contended[v][a] is the simulated seconds
// class v lost to class a.  The identity
//
//   busy[v] = isolated[v] + sum_a contended[v][a]
//
// holds exactly (up to fp rounding), so slowdown factors decompose:
// busy[v] / isolated[v] = 1 + sum_a contended[v][a] / isolated[v].
//
// The profiler is opt-in (FlowModel::set_profiler): attached, the model
// closes the accumulation interval at every change point — O(running
// activities) per event — so it stays off the default hot path and the
// 0-allocs/event guard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cci::sim {

/// Workload class carried by ActivitySpec::profile_class.  Small and fixed:
/// the paper's protocol only ever opposes computation and communication,
/// and a dense matrix keeps the profiler allocation- and hash-free.
using ProfileClass = std::uint8_t;
inline constexpr ProfileClass kClassOther = 0;    ///< untagged activities
inline constexpr ProfileClass kClassCompute = 1;  ///< kernels, GPU, runtime tasks
inline constexpr ProfileClass kClassComm = 2;     ///< MPI copies and DMA
inline constexpr std::size_t kProfileClasses = 3;

[[nodiscard]] inline const char* profile_class_name(ProfileClass c) {
  switch (c) {
    case kClassCompute: return "compute";
    case kClassComm: return "comm";
    default: return "other";
  }
}

/// Aggregated decomposition, in activity-seconds per class.
struct AttributionReport {
  double busy[kProfileClasses] = {};      ///< running time (rate constant > 0 or stalled)
  double isolated[kProfileClasses] = {};  ///< isolated-equivalent time
  double contended[kProfileClasses][kProfileClasses] = {};  ///< [victim][aggressor]

  /// Victim v's slowdown contribution from aggressor class a:
  /// contended[v][a] / isolated[v] (0 when v never ran).
  [[nodiscard]] double slowdown(ProfileClass v, ProfileClass a) const {
    return isolated[v] > 0.0 ? contended[v][a] / isolated[v] : 0.0;
  }
  /// Victim v's total slowdown factor busy[v] / isolated[v] (1 when idle).
  [[nodiscard]] double total_slowdown(ProfileClass v) const {
    return isolated[v] > 0.0 ? busy[v] / isolated[v] : 1.0;
  }
  /// Fraction of v's busy time lost to contention (0 when idle).
  [[nodiscard]] double contended_fraction(ProfileClass v) const {
    return busy[v] > 0.0 ? (busy[v] - isolated[v]) / busy[v] : 0.0;
  }

  AttributionReport& operator+=(const AttributionReport& o) {
    for (std::size_t v = 0; v < kProfileClasses; ++v) {
      busy[v] += o.busy[v];
      isolated[v] += o.isolated[v];
      for (std::size_t a = 0; a < kProfileClasses; ++a)
        contended[v][a] += o.contended[v][a];
    }
    return *this;
  }
};

/// Attachment point for the FlowModel (set_profiler).  Owns the aggregated
/// report plus the per-resource class-load scratch the model fills at each
/// change point.  Plain data by design: all accumulation logic lives in
/// FlowModel::profile_advance, next to the solver state it reads.
class InterferenceProfiler {
 public:
  [[nodiscard]] const AttributionReport& report() const { return report_; }
  void reset() { report_ = {}; }

 private:
  friend class FlowModel;
  AttributionReport report_;
  std::vector<double> class_load_;  ///< scratch: [resource * kProfileClasses]
};

}  // namespace cci::sim
