// Deterministic pseudo-random numbers for the simulator.
//
// Benchmarks in the paper report medians and first/last deciles over many
// runs; the simulator reproduces that spread by adding small stochastic
// jitter (OS noise, cache state) drawn from this RNG.  xoshiro256** seeded
// via splitmix64 — fast, high quality, and fully reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace cci::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Multiplicative log-normal-ish jitter: mean ~1, relative spread `rel`.
  /// Clamped positive; used to model run-to-run system noise.
  double jitter(double rel) {
    double j = 1.0 + rel * normal();
    return j < 0.05 ? 0.05 : j;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace cci::sim
