// Interned activity/resource labels.
//
// Hot-path structs (ActivitySpec, spans) carry a 4-byte LabelId instead of a
// std::string; the Engine owns a SymbolTable mapping ids back to text for
// traces, stall reports, and assertions.  Interning the same text twice
// returns the same id, and lookup is heterogeneous (std::string_view keys,
// no temporary std::string).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cci::sim {

/// Index into a SymbolTable.  Id 0 is always the empty string, so a
/// value-initialized LabelId means "unlabelled".
using LabelId = std::uint32_t;
inline constexpr LabelId kNoLabel = 0;

class SymbolTable {
 public:
  SymbolTable() { strings_.emplace_back(); }  // id 0 = ""

  /// Intern `text`, returning its stable id (existing id if seen before).
  LabelId intern(std::string_view text) {
    if (text.empty()) return kNoLabel;
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<LabelId>(strings_.size());
    strings_.emplace_back(text);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Text for an id.  Ids come only from intern(), so this never fails.
  [[nodiscard]] const std::string& str(LabelId id) const { return strings_[id]; }

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  // Interning is cold (labels are cached as ids at call sites), so the
  // duplicate key storage is irrelevant; std::less<> gives string_view
  // lookups without a temporary std::string.
  std::map<std::string, LabelId, std::less<>> ids_;
};

}  // namespace cci::sim
