#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include <cmath>

#include "sched/point.hpp"
#include "sim/maxmin.hpp"
#include "sim/resource.hpp"
#include "sim/stall.hpp"

#ifdef CCI_SCHED
namespace {
std::string shard_thread_name(int index) {
  return "sim.shard." + std::to_string(index);
}
}  // namespace
#endif

namespace cci::sim {

int configured_shards() {
  const char* env = std::getenv("CCI_SIM_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 1;
  return static_cast<int>(v);
}

std::vector<int> shard_assignment(const MaxMinSolver& solver, int shards) {
  const std::size_t n_res = solver.resource_count();
  std::vector<int> out(n_res, 0);
  if (shards <= 1) return out;
  // Rank roots by smallest member: scanning resources in index order, the
  // first time a root appears is at its minimum member, so ranks — and the
  // resulting deal — are a pure function of the flow structure.
  std::vector<int> root_rank(n_res, -1);
  int next_rank = 0;
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::size_t root = solver.component_root(r);
    if (root_rank[root] < 0) root_rank[root] = next_rank++;
    out[r] = root_rank[root] % shards;
  }
  return out;
}

std::vector<int> shard_assignment(const MaxMinSolver& solver, int shards,
                                  const std::vector<int>& resource_group) {
  const std::size_t n_res = solver.resource_count();
  std::vector<int> out(n_res, 0);
  if (shards <= 1) return out;
  // Pass 1: per component root, the smallest pinned topology group of any
  // member (a component spanning two groups — a cross-group flow live at
  // carve time — collapses to the smaller group, deterministically).
  std::vector<int> root_group(n_res, -1);
  const std::size_t n_grouped = std::min(n_res, resource_group.size());
  for (std::size_t r = 0; r < n_grouped; ++r) {
    const int g = resource_group[r];
    if (g < 0) continue;
    const std::size_t root = solver.component_root(r);
    if (root_group[root] < 0 || g < root_group[root]) root_group[root] = g;
  }
  // Pass 2: pinned components follow their topology group; free components
  // are dealt round-robin by first-appearance rank as above.
  std::vector<int> root_rank(n_res, -1);
  int next_rank = 0;
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::size_t root = solver.component_root(r);
    if (root_group[root] >= 0) {
      out[r] = root_group[root] % shards;
      continue;
    }
    if (root_rank[root] < 0) root_rank[root] = next_rank++;
    out[r] = root_rank[root] % shards;
  }
  return out;
}

ShardGroup::ShardGroup() : ShardGroup(Options{}) {}

ShardGroup::ShardGroup(Options opts) : opts_(opts) {
  n_ = opts_.shards > 0 ? opts_.shards : configured_shards();
  if (opts_.lookahead <= 0.0)
    throw std::invalid_argument("ShardGroup: lookahead must be > 0");
  shards_.reserve(static_cast<std::size_t>(n_));
  if (n_ == 1) {
    // Serial special case: one engine on the caller's thread, caller's
    // registry, no worker — indistinguishable from using Engine directly.
    auto sh = std::make_unique<Shard>();
    sh->engine = std::make_unique<Engine>();
    sh->busy = false;
    shards_.push_back(std::move(sh));
    return;
  }
  lanes_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  const bool obs_on = obs::Registry::global().enabled();
  obs_windows_ = &obs::Registry::global().counter("sim.shard.windows");
  obs_messages_ = &obs::Registry::global().counter("sim.shard.messages");
  obs_spills_ = &obs::Registry::global().counter("sim.shard.spills");
  obs_exchanges_ = &obs::Registry::global().counter("sim.shard.exchanges");
  for (int s = 0; s < n_; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->index = s;
    sh->registry = std::make_unique<obs::Registry>();
    sh->registry->set_enabled(obs_on);
    shards_.push_back(std::move(sh));
  }
  for (int s = 0; s < n_; ++s) {
    Shard* sh = shards_[static_cast<std::size_t>(s)].get();
    CCI_SCHED_EXPECT_THREAD(shard_thread_name(s).c_str());
    sh->thread = std::thread(&ShardGroup::worker_main, this, sh);
  }
  // Engines come up on the workers (busy starts true, cleared after
  // construction); wait so engine(s) is valid once the ctor returns.
  for (auto& sh : shards_) wait(*sh);
  try {
    rethrow_any();
  } catch (...) {
    stop_workers();  // the dtor will not run for a throwing ctor
    throw;
  }
}

ShardGroup::~ShardGroup() { stop_workers(); }

void ShardGroup::stop_workers() {
  if (n_ == 1) return;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mutex);
    sh->stop = true;
    sh->cv.notify_all();
  }
#ifdef CCI_SCHED
  for (auto& sh : shards_)
    sched::await_thread_exit(shard_thread_name(sh->index).c_str());
#endif
  CCI_SCHED_BLOCKED_SCOPE();
  for (auto& sh : shards_)
    if (sh->thread.joinable()) sh->thread.join();
}

ShardGroup::Shard& ShardGroup::shard_at(int s) {
  assert(s >= 0 && s < n_);
  return *shards_[static_cast<std::size_t>(s)];
}

obs::Registry& ShardGroup::registry(int s) {
  if (n_ == 1) return obs::Registry::global();
  return *shard_at(s).registry;
}

void ShardGroup::worker_main(ShardGroup* group, Shard* shard) {
  // The shard registry is this thread's Registry::global() for the whole
  // worker lifetime: the engine's metric handles, every FlowModel built via
  // with_shard(), and all pool-stat channels bind into it.  The engine is
  // built and destroyed here so coroutine frames stay in this thread's
  // FrameArena from first allocation to final free.
  obs::Registry::ScopedThreadLocal scope(*shard->registry);
#ifdef CCI_SCHED
  sched::ThreadScope sched_scope(shard_thread_name(shard->index).c_str());
#endif
  try {
    shard->engine = std::make_unique<Engine>();
  } catch (...) {
    std::lock_guard<std::mutex> lk(shard->mutex);
    shard->error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(shard->mutex);
    shard->busy = false;
    shard->cv.notify_all();
  }
  [[maybe_unused]] const auto idle_id = static_cast<std::uint64_t>(shard->index);
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(shard->mutex);
      CCI_SCHED_CV_WAIT(shard->cv, lk, idle_id,
                        [shard] { return shard->stop || shard->busy; });
      if (shard->busy) {
        job = std::move(shard->job);
        shard->job = nullptr;
      } else {
        break;  // stop requested with no pending job
      }
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    CCI_SCHED_POINT(kBarrierArrive, idle_id);
    {
      std::lock_guard<std::mutex> lk(shard->mutex);
      if (error) shard->error = error;
      shard->busy = false;
      shard->cv.notify_all();
    }
  }
  shard->engine.reset();
  (void)group;
}

void ShardGroup::submit(Shard& sh, std::function<void()> job) {
  std::lock_guard<std::mutex> lk(sh.mutex);
  assert(!sh.busy && sh.job == nullptr);
  sh.job = std::move(job);
  sh.busy = true;
  sh.cv.notify_all();
}

void ShardGroup::wait(Shard& sh) {
  std::unique_lock<std::mutex> lk(sh.mutex);
  CCI_SCHED_CV_WAIT(sh.cv, lk, static_cast<std::uint64_t>(sh.index),
                    [&sh] { return !sh.busy; });
}

void ShardGroup::rethrow_any() {
  for (auto& sh : shards_) {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lk(sh->mutex);
      error = sh->error;
      sh->error = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }
}

void ShardGroup::with_shard(int s, const std::function<void(Engine&)>& fn) {
  Shard& sh = shard_at(s);
  if (n_ == 1) {
    fn(*sh.engine);
    return;
  }
  submit(sh, [&sh, &fn] { fn(*sh.engine); });
  wait(sh);
  rethrow_any();
}

void ShardGroup::post(int from, int to, Time at, EventQueue::Callback fn) {
  assert(from >= 0 && from < n_ && to >= 0 && to < n_);
  if (n_ == 1 || from == to) {
    shard_at(to).engine->call_at(at, std::move(fn));
    return;
  }
  if (opts_.lookahead == kNever)
    throw std::logic_error(
        "ShardGroup: cross-shard post in a shard-closed group "
        "(construct with a finite lookahead)");
  // The conservative contract: the sender may not reach closer than one
  // lookahead to the delivery time, or the window proof breaks down.
  assert(at >= shard_at(from).engine->now() + opts_.lookahead - kTimeEpsilon);
  CCI_SCHED_POINT(kMailboxPost, static_cast<std::uint64_t>(from) *
                                        static_cast<std::uint64_t>(n_) +
                                    static_cast<std::uint64_t>(to));
  Lane& lane = lanes_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                      static_cast<std::size_t>(to)];
  if (lane.mail.size() >= opts_.mailbox_capacity) ++lane.spills;
  lane.mail.push_back(Mail{at, std::move(fn)});
}

void ShardGroup::drain_mail() {
  // Deterministic delivery: (receiver asc, sender asc, FIFO within lane).
  // The receiving queue stamps its own sequence numbers in this order, so
  // same-instant ties resolve identically run after run.
  for (int to = 0; to < n_; ++to) {
    Engine& dst = *shard_at(to).engine;
    for (int from = 0; from < n_; ++from) {
      CCI_SCHED_POINT(kMailboxDrain, static_cast<std::uint64_t>(from) *
                                             static_cast<std::uint64_t>(n_) +
                                         static_cast<std::uint64_t>(to));
      Lane& lane = lanes_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                          static_cast<std::size_t>(to)];
      stats_.messages += lane.mail.size();
      stats_.spills += lane.spills;
      lane.spills = 0;
      for (Mail& m : lane.mail) dst.call_at(m.at, std::move(m.fn));
      lane.mail.clear();  // keeps capacity: steady-state lanes do not allocate
    }
  }
}

Time ShardGroup::run(Time until) {
  if (n_ == 1) return shard_at(0).engine->run(until);
  const auto run_window = [this](Time horizon) {
    const std::uint64_t window = stats_.windows;
    for (auto& sh : shards_) {
      Shard* p = sh.get();
      submit(*p, [p, horizon, window] {
        try {
          p->engine->run(horizon);
        } catch (const SimStalled& stalled) {
          // Re-throw with the shard/window context prepended: the engine's
          // own inspectors name blocked activities but cannot know which
          // shard or conservative window they were wedged in.
          std::vector<std::string> blocked;
          blocked.reserve(stalled.blocked().size() + 1);
          blocked.push_back("shard " + std::to_string(p->index) +
                            " wedged in window " + std::to_string(window) +
                            " (horizon t=" + std::to_string(horizon) + "s)");
          blocked.insert(blocked.end(), stalled.blocked().begin(),
                         stalled.blocked().end());
          throw SimStalled(stalled.reason(), stalled.at(), stalled.events(),
                           stalled.live_processes(), std::move(blocked));
        }
      });
    }
    for (auto& sh : shards_) wait(*sh);
    rethrow_any();
  };
  for (;;) {
    drain_mail();
    Time tmin = kNever;
    for (auto& sh : shards_) tmin = std::min(tmin, sh->engine->next_event_time());
    if (tmin == kNever || tmin > until) {
      // Nothing left below the caller's horizon: advance every clock (and
      // sampler) to `until` and stop.  No events run, so no new mail.
      run_window(until);
      break;
    }
    const Time horizon =
        opts_.lookahead == kNever ? until : std::min(until, tmin + opts_.lookahead);
    run_window(horizon);
    ++stats_.windows;
    // Workers are parked at the barrier: exchange boundary capacities and
    // let the lab observe the global fabric state before the next window.
    if (!boundaries_.empty()) exchange_boundaries(horizon);
    if (barrier_probe_) barrier_probe_(horizon);
  }
  publish_stats();
  Time t = 0.0;
  for (auto& sh : shards_) t = std::max(t, sh->engine->now());
  return t;
}

void ShardGroup::merge_obs(obs::Registry& dst) {
  if (n_ == 1) return;
  for (auto& sh : shards_) {
    dst.merge_from(*sh->registry);
    sh->registry->reset();
  }
}

int ShardGroup::add_boundary_link(std::string name, double base_capacity) {
  Boundary b;
  b.name = std::move(name);
  b.base = base_capacity;
  boundaries_.push_back(std::move(b));
  return static_cast<int>(boundaries_.size()) - 1;
}

void ShardGroup::bind_boundary(int link, int shard, Resource* replica) {
  assert(link >= 0 && link < static_cast<int>(boundaries_.size()));
  assert(shard >= 0 && shard < n_);
  Boundary& b = boundaries_[static_cast<std::size_t>(link)];
  b.replicas.push_back({shard, replica, b.base});
}

void ShardGroup::exchange_boundaries(Time barrier) {
  for (Boundary& b : boundaries_) {
    double total = 0.0;
    for (const Boundary::Replica& r : b.replicas) total += r.res->load();
    // Small positive floor so a replica starved by remote load still makes
    // progress (and its load stays observable for the next exchange).
    const double floor = b.base / 1024.0;
    // Once within tolerance, snap to the target exactly: otherwise the
    // damped iteration approaches it forever, posting a capacity event at
    // every barrier and dragging empty trailing windows behind the run.
    const double tol = 1e-6 * b.base;
    for (Boundary::Replica& r : b.replicas) {
      const double others = total - r.res->load();
      double target = b.base - others;
      if (target < floor) target = floor;
      const double next =
          std::fabs(target - r.cap) <= tol ? target : r.cap + 0.5 * (target - r.cap);
      if (next == r.cap) continue;
      r.cap = next;
      Resource* res = r.res;
      shard_at(r.shard).engine->call_at(
          barrier, [res, next] { res->set_capacity(next); });
      ++stats_.exchanges;
    }
  }
}

void ShardGroup::publish_stats() {
  const auto flush = [](obs::Counter* c, std::uint64_t now, std::uint64_t& last) {
    if (now != last) {
      c->add(static_cast<double>(now - last));
      last = now;
    }
  };
  flush(obs_windows_, stats_.windows, published_.windows);
  flush(obs_messages_, stats_.messages, published_.messages);
  flush(obs_spills_, stats_.spills, published_.spills);
  flush(obs_exchanges_, stats_.exchanges, published_.exchanges);
}

}  // namespace cci::sim
