// Coroutine process type for the discrete-event engine.
//
// A simulated thread of control is a C++20 coroutine returning `Coro`.
// Processes are spawned with `Engine::spawn(...)`, which takes ownership of
// the coroutine frame and resumes it from the event loop.  A process
// suspends by `co_await`-ing engine awaitables (sleep, activity completion,
// mailbox receive, ...) and terminates by returning; the engine destroys the
// frame at final suspension and wakes any joiner.
//
// Hot-path memory (see docs/PERFORMANCE.md):
//  * coroutine frames come from the thread-local FrameArena via the custom
//    operator new/delete on promise_type — recycled, not malloc'd;
//  * the ProcessState completion record is slab-pooled and intrusively
//    refcounted (RcPtr); it is created lazily at spawn time, because the
//    promise is constructed before any engine is known and unspawned
//    coroutines never need one;
//  * live processes form an intrusive doubly-linked list through their
//    promises, so the engine tracks them without a hash set.
//
// Exceptions must not escape a process: the simulation models hardware, and
// an escaped exception is a bug in the model, so we terminate loudly.
#pragma once

#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "sim/pool.hpp"

namespace cci::sim {

class Engine;

/// Shared completion record that outlives the coroutine frame, so joiners
/// holding a ProcessRef can still observe completion after frame destruction.
/// Pooled by the engine; 2 inline joiner slots cover the common 0–1 case.
struct ProcessState : RcPooled<ProcessState> {
  bool done = false;
  SmallVec<std::coroutine_handle<>, 2> joiners;
};

class Coro {
 public:
  struct promise_type {
    Engine* engine = nullptr;
    /// Created by Engine::spawn from its state pool; empty until then.
    RcPtr<ProcessState> state;
    /// Intrusive links in the engine's live-process list (valid once
    /// spawned; the engine destroys still-live frames at teardown).
    promise_type* live_prev = nullptr;
    promise_type* live_next = nullptr;

    /// Frames recycle through the per-thread arena instead of malloc.
    static void* operator new(std::size_t size) {
      return FrameArena::local().allocate(size);
    }
    static void operator delete(void* p, std::size_t) noexcept {
      FrameArena::local().deallocate(p);
    }
    static void operator delete(void* p) noexcept {
      FrameArena::local().deallocate(p);
    }

    Coro get_return_object() {
      return Coro(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      // Defined in engine.hpp (needs Engine): notifies the engine, which
      // wakes joiners and destroys the frame.
      inline void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      std::fputs("cci::sim: exception escaped a simulation process\n", stderr);
      std::terminate();
    }
  };

  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Coro() { destroy(); }

 private:
  friend class Engine;
  explicit Coro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  /// Transfers frame ownership to the engine at spawn time.
  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, {}); }

  std::coroutine_handle<promise_type> handle_;
};

/// Lightweight reference to a spawned process; `co_await ref` joins it.
class ProcessRef {
 public:
  ProcessRef() = default;

  [[nodiscard]] bool done() const { return !state_ || state_->done; }

  struct JoinAwaiter {
    RcPtr<ProcessState> state;
    bool await_ready() const noexcept { return !state || state->done; }
    void await_suspend(std::coroutine_handle<> h) { state->joiners.push_back(h); }
    void await_resume() const noexcept {}
  };
  JoinAwaiter operator co_await() const { return JoinAwaiter{state_}; }

 private:
  friend class Engine;
  explicit ProcessRef(RcPtr<ProcessState> s) : state_(std::move(s)) {}
  RcPtr<ProcessState> state_;
};

}  // namespace cci::sim
