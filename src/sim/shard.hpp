// Conservative-window parallel discrete-event simulation.
//
// A ShardGroup runs N independent sim::Engine instances — one per worker
// thread — over a scenario partitioned into *shards* (node groups whose
// resources never share a flow).  Shard-local events run lock-free on the
// shard's own EventQueue, pools and obs registry; the only synchronisation
// is a barrier at conservative *window horizons*:
//
//     W = min over shards of (earliest pending event) + lookahead
//
// where `lookahead` is the minimum cross-shard delivery delay — for node
// groups separated by a fabric, NetworkParams::min_remote_delay() (LogGP
// wire latency plus the DMA engine's per-byte floor).  Every shard may
// process all events with t <= W: a cross-shard message sent from an event
// at time t has delivery >= t + lookahead >= W, so it can never land in a
// receiver's past.  Cross-shard sends go through per-(sender, receiver)
// mailbox lanes drained at the barrier in deterministic (receiver,
// sender, FIFO) order, which makes multi-shard runs bitwise reproducible.
//
// Thread/memory discipline (this is what keeps the pooled hot path of PR 5
// safe): each shard's Engine is constructed, run, and destroyed on its
// worker thread, with the shard's private obs::Registry installed as the
// thread's Registry::global() for the worker's whole lifetime.  Coroutine
// frames therefore live and die in the worker's thread-local FrameArena,
// and metric handles bind into the shard registry.  Build and tear down
// shard-owned scenario state (FlowModel, activities, processes) inside
// with_shard() for the same reason.
//
// shards == 1 is special-cased to *no* parallel machinery at all: the one
// Engine is constructed inline on the caller's thread, with the caller's
// registry, no worker, no mailbox, no extra counters — byte-for-byte the
// serial engine, which is what makes `CCI_SIM_SHARDS=1` bitwise-identical
// to pre-shard behaviour.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace cci::sim {

class MaxMinSolver;
class Resource;

/// Shard count requested via the CCI_SIM_SHARDS environment variable
/// (re-read on every call, like CCI_SIM_POOLS).  Unset, empty, or
/// unparsable values mean 1 — the serial engine.
int configured_shards();

/// Deterministic partition of a solver's resources across `shards` shards,
/// seeded by the union-find connected components: resources coupled by any
/// chain of flows land in the same shard.  Components are ranked by their
/// smallest member resource index and dealt round-robin (rank % shards),
/// so the assignment depends only on the registered flow structure — never
/// on pointer values or hashing.  Returns one shard index per resource.
std::vector<int> shard_assignment(const MaxMinSolver& solver, int shards);

/// Topology-aware partition: `resource_group[r]` pins resource r to a
/// topology group (net::Cluster::resource_groups() — fat-tree leaves,
/// dragonfly groups) or leaves it free (-1, shared fabric such as spines
/// and cross-group links).  Components containing any pinned resource land
/// on (smallest pinned group) % shards, so a topology group — and every
/// flow chain coupled to it — never splits across shards; fully unpinned
/// components are dealt round-robin exactly as the ungrouped overload.
/// The safe cross-shard window for the result is the cluster's
/// shard_lookahead() (Topology::min_remote_delay per link class).
std::vector<int> shard_assignment(const MaxMinSolver& solver, int shards,
                                  const std::vector<int>& resource_group);

class ShardGroup {
 public:
  struct Options {
    /// Number of shards; 0 means "take configured_shards()".
    int shards = 0;
    /// Minimum cross-shard delivery delay (window size).  kNever declares
    /// the scenario shard-closed: no cross-shard messages are allowed and
    /// every shard runs to the horizon in a single window.  Must be > 0.
    Time lookahead = kNever;
    /// Soft per-lane mailbox bound: exceeding it is recorded as a spill
    /// (sim.shard.spills / Stats::spills) for capacity diagnostics, but
    /// messages are never dropped — that would change the simulation.
    std::size_t mailbox_capacity = 4096;
  };

  ShardGroup();  ///< defaulted Options (defined out-of-line: GCC rejects
                 ///< `Options opts = {}` while the enclosing class is open)
  explicit ShardGroup(Options opts);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;
  ~ShardGroup();

  [[nodiscard]] int shards() const { return n_; }
  [[nodiscard]] Time lookahead() const { return opts_.lookahead; }

  /// Run `fn(engine)` on shard s's worker thread (inline on the caller's
  /// thread when shards() == 1) and wait for it.  All construction and
  /// destruction of shard-owned state — FlowModel, resources, spawned
  /// processes — must happen here so pooled frames and metric handles bind
  /// to the worker's thread-locals.  Exceptions propagate to the caller.
  void with_shard(int s, const std::function<void(Engine&)>& fn);

  /// Shard s's engine.  Safe to *read* from the coordinator between runs;
  /// mutate only from with_shard() (or freely when shards() == 1).
  [[nodiscard]] Engine& engine(int s) { return *shard_at(s).engine; }

  /// Shard s's private metrics registry (the caller's global registry when
  /// shards() == 1).
  [[nodiscard]] obs::Registry& registry(int s);

  /// Cross-shard message: run `fn` on shard `to` at absolute time `at`.
  /// Same-shard posts collapse to a plain Engine::call_at.  Cross-shard
  /// posts are only legal from shard `from`'s worker during a window, need
  /// a finite lookahead, and must honour it: at >= sender now + lookahead.
  void post(int from, int to, Time at, EventQueue::Callback fn);

  /// Conservative-window loop: repeatedly compute the horizon, run every
  /// shard up to it in parallel, and drain cross-shard mailboxes at the
  /// barrier, until all queues drain or `until` is reached.  A SimStalled
  /// (or any exception) thrown inside a shard aborts the run after the
  /// window barrier and is rethrown in shard-index order — deterministic
  /// even when several shards trip in the same window.  Returns the
  /// maximum shard time.
  Time run(Time until = kNever);

  /// Fold every shard registry into `dst` (commutative merge_from) and
  /// reset the shard registries.  No-op when shards() == 1 — metrics
  /// already accrued to the caller's registry.
  void merge_obs(obs::Registry& dst);

  // ---- boundary proxies (cross-shard fabric) --------------------------------
  /// Register one cut fabric resource (global link, spine port) that flows
  /// on several shards share.  Each sharing shard models it with a local
  /// *proxy replica* in its own FlowModel, attached via bind_boundary();
  /// replicas must start at `base_capacity`.  At every window barrier the
  /// coordinator reads each replica's allocated load (workers are parked),
  /// computes a damped residual-capacity target
  ///     cap' = cap + 1/2 * ((base - other shards' load) - cap)
  /// clamped to a small positive floor, and delivers the update as an
  /// engine event at the barrier time — so Resource::set_capacity(), which
  /// may resume coroutines, runs on the owning worker in the next window.
  /// Staleness is bounded by one window (the lookahead), and links and
  /// replicas are visited in registration order, so multi-shard runs stay
  /// bitwise deterministic at a fixed shard count.  Returns the link id.
  int add_boundary_link(std::string name, double base_capacity);
  /// Attach shard `shard`'s replica for boundary link `link`.  Call from
  /// the coordinator between with_shard() setup calls (never during run).
  void bind_boundary(int link, int shard, Resource* replica);
  [[nodiscard]] int boundary_links() const {
    return static_cast<int>(boundaries_.size());
  }

  /// Coordinator hook invoked after every window barrier (workers parked),
  /// with the barrier time: labs sample cross-shard peaks here.  Never
  /// called when shards() == 1 — the serial path has no barriers.
  void set_barrier_probe(std::function<void(Time)> probe) {
    barrier_probe_ = std::move(probe);
  }

  struct Stats {
    std::uint64_t windows = 0;    ///< synchronisation windows executed
    std::uint64_t messages = 0;   ///< cross-shard messages delivered
    std::uint64_t spills = 0;     ///< lane pushes beyond mailbox_capacity
    std::uint64_t exchanges = 0;  ///< boundary capacity updates delivered
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Mail {
    Time at = 0.0;
    EventQueue::Callback fn;
  };
  /// One direction of one (sender, receiver) pair.  Written only by the
  /// sender's worker during a window, drained only by the coordinator at
  /// the barrier; the job-slot mutex handoff orders the two.
  struct Lane {
    std::vector<Mail> mail;
    std::uint64_t spills = 0;
  };
  struct Shard {
    int index = 0;  ///< position in shards_; names the worker in diagnostics
    std::unique_ptr<obs::Registry> registry;
    std::unique_ptr<Engine> engine;  ///< built/destroyed on the worker
    std::thread thread;
    // Job slot: coordinator submits, worker executes, coordinator waits.
    std::mutex mutex;
    std::condition_variable cv;
    std::function<void()> job;
    std::exception_ptr error;
    bool busy = true;  ///< set until the worker finishes engine construction
    bool stop = false;
  };

  Shard& shard_at(int s);
  void stop_workers();
  void submit(Shard& sh, std::function<void()> job);
  void wait(Shard& sh);
  static void worker_main(ShardGroup* group, Shard* shard);
  /// Rethrow the first stored worker exception (lowest shard index).
  void rethrow_any();
  /// Deliver all mailbox lanes into the receiving engines; runs on the
  /// coordinator while every worker is parked at the barrier.
  void drain_mail();
  /// Damped residual-capacity exchange over every boundary link; runs on
  /// the coordinator at the window barrier, posting set_capacity events at
  /// `barrier` into the replicas' engines.
  void exchange_boundaries(Time barrier);
  void publish_stats();

  /// One cut fabric resource and its per-shard proxy replicas.
  struct Boundary {
    struct Replica {
      int shard = 0;
      Resource* res = nullptr;
      double cap = 0.0;  ///< capacity last delivered (coordinator's view)
    };
    std::string name;
    double base = 0.0;
    std::vector<Replica> replicas;
  };

  Options opts_;
  int n_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Lane> lanes_;  ///< lanes_[from * n_ + to], multi-shard only
  std::vector<Boundary> boundaries_;
  std::function<void(Time)> barrier_probe_;
  Stats stats_;
  Stats published_;  ///< counters already flushed to obs
  // sim.shard.* counters in the coordinator's registry; multi-shard only.
  obs::Counter* obs_windows_ = nullptr;
  obs::Counter* obs_messages_ = nullptr;
  obs::Counter* obs_spills_ = nullptr;
  obs::Counter* obs_exchanges_ = nullptr;
};

}  // namespace cci::sim
