// Slab pools for the discrete-event hot path.
//
// Everything the steady-state event loop touches per event — coroutine
// frames, process-completion records, activities, combinator wake-up nodes —
// comes from the typed recyclers in this header instead of the global heap:
//
//  * SlabPool<T>   — fixed-type slab allocator with an intrusive free list.
//    Objects are handed out as intrusively refcounted RcPtr<T> (no separate
//    control block) and return to the pool the instant the last reference
//    drops.  A pool may die before its stragglers: slabs with live objects
//    are orphaned and the final release frees them, so long-lived refs
//    (an ActivityPtr outliving its FlowModel) stay safe.
//  * FrameArena    — size-bucketed recycler for coroutine frames, installed
//    via a custom operator new/delete on Coro::promise_type.  One arena per
//    thread, so campaign workers never contend and frames recycle across
//    engine instances.
//  * SmallVec<T,N> — inline small-vector for joiner/waiter/demand lists
//    whose overwhelmingly common size is 0–2 entries.
//
// CCI_SIM_POOLS=0 (or set_pools_enabled(false)) routes every request to the
// global heap instead — the A/B reference path for the throughput bench and
// for leak triage.  Provenance is carried per object/block, so the toggle
// may flip between runs without confusing deallocation.
//
// Stat counters (allocated/reused/live/slabs/slab bytes) are exported
// through obs as `sim.pool.<name>.*` by Engine::run — see
// docs/PERFORMANCE.md and docs/OBSERVABILITY.md.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <new>
#include <utility>
#include <vector>

namespace cci::sim {

/// Runtime kill switch for every pool in this header.  Read once from
/// CCI_SIM_POOLS at first use; benches flip it per run for A/B timing.
inline bool& pools_enabled_flag() {
  static bool enabled = [] {
    const char* env = std::getenv("CCI_SIM_POOLS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}
inline bool pools_enabled() { return pools_enabled_flag(); }
inline void set_pools_enabled(bool on) { pools_enabled_flag() = on; }

/// Common stats facade; Engine publishes registered pools through obs.
class PoolBase {
 public:
  struct Stats {
    std::uint64_t allocated = 0;   ///< total requests served
    std::uint64_t reused = 0;      ///< requests served from a free list
    std::uint64_t live = 0;        ///< pooled objects currently in use
    std::uint64_t slabs = 0;       ///< slabs carved so far
    std::uint64_t slab_bytes = 0;  ///< bytes held in slabs
  };

  explicit PoolBase(const char* name) : name_(name) {}
  PoolBase(const PoolBase&) = delete;
  PoolBase& operator=(const PoolBase&) = delete;

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Monotonic-field deltas since the previous call (live is a level and is
  /// returned as-is).  The publish baseline lives here so several engines
  /// sharing one pool (the per-thread frame arena) never double-count.
  Stats take_delta() {
    Stats d;
    d.allocated = stats_.allocated - published_.allocated;
    d.reused = stats_.reused - published_.reused;
    d.live = stats_.live;
    d.slabs = stats_.slabs - published_.slabs;
    d.slab_bytes = stats_.slab_bytes - published_.slab_bytes;
    published_ = stats_;
    return d;
  }

 protected:
  ~PoolBase() = default;
  const char* name_;
  Stats stats_;

 private:
  Stats published_;
};

namespace pool_detail {
/// Per-slab header: live-object count plus the owner backlink that release
/// paths consult.  A destroyed pool nulls `owner` (orphaning the slab); the
/// last object released from an orphaned slab frees it.
struct SlabHdr {
  void* owner = nullptr;
  std::size_t live = 0;
  SlabHdr* next = nullptr;
};
}  // namespace pool_detail

template <class T>
class SlabPool;
template <class T>
class RcPtr;

/// CRTP base for intrusively refcounted, slab-pooled objects.  `slab_` is
/// null for objects allocated with the pools disabled (plain new/delete).
template <class T>
class RcPooled {
 protected:
  RcPooled() = default;
  ~RcPooled() = default;

 private:
  friend class SlabPool<T>;
  friend class RcPtr<T>;
  std::uint32_t rc_ = 0;
  pool_detail::SlabHdr* slab_ = nullptr;
};

/// Intrusive shared pointer over RcPooled<T> objects.  Drop-in for the
/// shared_ptr roles in the sim hot path: copyable, movable, boolean-testable.
/// Releasing the last reference recycles the object into its pool (or frees
/// it directly once the pool is gone).  Not thread-safe — the simulator is
/// single-threaded by construction.
template <class T>
class RcPtr {
 public:
  RcPtr() = default;
  RcPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  explicit RcPtr(T* p) : p_(p) {
    if (p_ != nullptr) ++static_cast<RcPooled<T>*>(p_)->rc_;
  }
  RcPtr(const RcPtr& o) : p_(o.p_) {
    if (p_ != nullptr) ++static_cast<RcPooled<T>*>(p_)->rc_;
  }
  RcPtr(RcPtr&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}
  RcPtr& operator=(const RcPtr& o) {
    RcPtr tmp(o);
    std::swap(p_, tmp.p_);
    return *this;
  }
  RcPtr& operator=(RcPtr&& o) noexcept {
    if (this != &o) {
      release();
      p_ = std::exchange(o.p_, nullptr);
    }
    return *this;
  }
  ~RcPtr() { release(); }

  void reset() { release(); }
  [[nodiscard]] T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const RcPtr& a, const RcPtr& b) { return a.p_ == b.p_; }
  friend bool operator!=(const RcPtr& a, const RcPtr& b) { return a.p_ != b.p_; }
  friend bool operator==(const RcPtr& a, std::nullptr_t) { return a.p_ == nullptr; }
  friend bool operator!=(const RcPtr& a, std::nullptr_t) { return a.p_ != nullptr; }

 private:
  // GCC's -Wuse-after-free fires when two release() calls inline into one
  // function: it sees the `delete p` of one copy and the `--b->rc_` of a
  // later copy against the same object, but cannot model that the refcount
  // makes the deleting release the *last* one.  Classic refcount false
  // positive (shared_ptr escapes it only because its control-block ops are
  // opaque); the ASan job covers the real property.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif
  void release() {
    if (p_ == nullptr) return;
    auto* b = static_cast<RcPooled<T>*>(p_);
    T* p = std::exchange(p_, nullptr);
    if (--b->rc_ != 0) return;
    pool_detail::SlabHdr* slab = b->slab_;
    if (slab == nullptr) {
      delete p;  // allocated with pools disabled
    } else if (slab->owner != nullptr) {
      static_cast<SlabPool<T>*>(slab->owner)->recycle(p);
    } else {
      SlabPool<T>::orphan_destroy(p, slab);
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  T* p_ = nullptr;
};

/// Fixed-type slab allocator.  make() serves from the free list, then the
/// bump region of the current slab, then a fresh slab; recycle() runs the
/// destructor and pushes the node back.  No per-object malloc at steady
/// state.
template <class T>
class SlabPool : public PoolBase {
 public:
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "SlabPool does not support over-aligned types");

  explicit SlabPool(const char* name, std::size_t objs_per_slab = 64)
      : PoolBase(name), objs_per_slab_(objs_per_slab) {}

  ~SlabPool() {
    // Slabs still holding live objects are orphaned (freed by the last
    // RcPtr release); empty ones die now.  The free list dies with us.
    pool_detail::SlabHdr* s = slabs_;
    while (s != nullptr) {
      pool_detail::SlabHdr* next = s->next;
      s->owner = nullptr;
      if (s->live == 0) ::operator delete(static_cast<void*>(s));
      s = next;
    }
  }

  template <class... Args>
  RcPtr<T> make(Args&&... args) {
    ++stats_.allocated;
    T* obj;
    if (!pools_enabled()) {
      obj = new T(std::forward<Args>(args)...);
      // slab_ stays null: released with plain delete.
    } else if (free_ != nullptr) {
      FreeNode* n = free_;
      free_ = n->next;
      pool_detail::SlabHdr* slab = n->slab;
      ++stats_.reused;
      ++stats_.live;
      obj = new (static_cast<void*>(n)) T(std::forward<Args>(args)...);
      static_cast<RcPooled<T>*>(obj)->slab_ = slab;
      ++slab->live;
    } else {
      if (bump_ == bump_end_) grow();
      void* mem = bump_;
      bump_ += node_bytes();
      ++stats_.live;
      obj = new (mem) T(std::forward<Args>(args)...);
      static_cast<RcPooled<T>*>(obj)->slab_ = current_;
      ++current_->live;
    }
    return RcPtr<T>(obj);
  }

 private:
  friend class RcPtr<T>;

  struct FreeNode {
    FreeNode* next;
    pool_detail::SlabHdr* slab;
  };

  static constexpr std::size_t node_bytes() {
    constexpr std::size_t raw =
        sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
    constexpr std::size_t a = alignof(std::max_align_t);
    return (raw + a - 1) / a * a;
  }
  static constexpr std::size_t hdr_bytes() {
    constexpr std::size_t a = alignof(std::max_align_t);
    return (sizeof(pool_detail::SlabHdr) + a - 1) / a * a;
  }

  void grow() {
    const std::size_t bytes = hdr_bytes() + node_bytes() * objs_per_slab_;
    void* mem = ::operator new(bytes);
    auto* hdr = new (mem) pool_detail::SlabHdr;
    hdr->owner = this;
    hdr->next = slabs_;
    slabs_ = hdr;
    current_ = hdr;
    bump_ = static_cast<char*>(mem) + hdr_bytes();
    bump_end_ = bump_ + node_bytes() * objs_per_slab_;
    ++stats_.slabs;
    stats_.slab_bytes += bytes;
  }

  void recycle(T* obj) {
    pool_detail::SlabHdr* slab = static_cast<RcPooled<T>*>(obj)->slab_;
    obj->~T();
    --slab->live;
    --stats_.live;
    auto* n = reinterpret_cast<FreeNode*>(obj);
    n->next = free_;
    n->slab = slab;
    free_ = n;
  }

  /// Release path for objects that outlived their pool.
  static void orphan_destroy(T* obj, pool_detail::SlabHdr* slab) {
    obj->~T();
    if (--slab->live == 0) ::operator delete(static_cast<void*>(slab));
  }

  std::size_t objs_per_slab_;
  pool_detail::SlabHdr* slabs_ = nullptr;
  pool_detail::SlabHdr* current_ = nullptr;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  FreeNode* free_ = nullptr;
};

/// Size-bucketed recycler for coroutine frames.  Frame sizes are decided by
/// the compiler and cluster around a handful of values per binary, so blocks
/// are bucketed at 64-byte granularity and recycled forever; each block
/// carries a 16-byte header recording its bucket (0 = heap passthrough for
/// oversized frames or pools-disabled allocations).  One arena per thread:
/// campaign workers get private arenas and frames recycle across engines.
class FrameArena : public PoolBase {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxBucketBytes = 16384;
  static constexpr std::size_t kFramesPerSlab = 8;

  FrameArena() : PoolBase("frames") {}
  ~FrameArena() {
    // All engines on this thread are gone by the time thread-locals die, so
    // every frame should be back; if not, leak rather than dangle.
    if (stats_.live != 0) return;
    for (void* s : slab_mem_) ::operator delete(s);
  }

  static FrameArena& local() {
    static thread_local FrameArena arena;
    return arena;
  }

  void* allocate(std::size_t size) {
    ++stats_.allocated;
    const std::size_t total = size + sizeof(Header);
    if (!pools_enabled() || total > kMaxBucketBytes) {
      auto* block = static_cast<char*>(::operator new(total));
      new (block) Header{0};
      return block + sizeof(Header);
    }
    const std::size_t bytes = (total + kGranularity - 1) / kGranularity * kGranularity;
    const std::size_t bucket = bytes / kGranularity - 1;
    ++stats_.live;
    if (free_[bucket] != nullptr) {
      ++stats_.reused;
      auto* block = static_cast<char*>(free_[bucket]);
      free_[bucket] = next_of(block);
      return block + sizeof(Header);
    }
    // Carve a slab of identical blocks; the first is returned, the rest
    // seed the bucket's free list.
    auto* slab = static_cast<char*>(::operator new(bytes * kFramesPerSlab));
    slab_mem_.push_back(slab);
    ++stats_.slabs;
    stats_.slab_bytes += bytes * kFramesPerSlab;
    for (std::size_t i = 1; i < kFramesPerSlab; ++i) {
      char* block = slab + i * bytes;
      new (block) Header{static_cast<std::uint32_t>(bytes)};
      next_of(block) = free_[bucket];
      free_[bucket] = block;
    }
    new (slab) Header{static_cast<std::uint32_t>(bytes)};
    return slab + sizeof(Header);
  }

  void deallocate(void* p) {
    auto* block = static_cast<char*>(p) - sizeof(Header);
    const std::uint32_t bytes = reinterpret_cast<Header*>(block)->bucket_bytes;
    if (bytes == 0) {
      ::operator delete(block);
      return;
    }
    --stats_.live;
    const std::size_t bucket = bytes / kGranularity - 1;
    next_of(block) = free_[bucket];
    free_[bucket] = block;
  }

 private:
  struct alignas(16) Header {
    std::uint32_t bucket_bytes;  ///< 0 = plain operator new passthrough
  };
  static_assert(sizeof(Header) == 16, "frame payload must stay 16-aligned");

  /// Free-list link, stored in the (dead) payload area of a free block.
  static void*& next_of(char* block) {
    return *reinterpret_cast<void**>(block + sizeof(Header));
  }

  void* free_[kMaxBucketBytes / kGranularity] = {};  ///< per-bucket free lists
  std::vector<void*> slab_mem_;  ///< slab base pointers, for teardown
};

/// Vector with N inline slots; spills to the heap only past N elements.
/// Covers the joiner/waiter/demand lists whose common size is 0–2.
template <class T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  SmallVec(const SmallVec& o) {
    reserve(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) new (data_ + i) T(o.data_[i]);
    size_ = o.size_;
  }
  SmallVec(SmallVec&& o) noexcept { steal(std::move(o)); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      clear();
      reserve(o.size_);
      for (std::size_t i = 0; i < o.size_; ++i) new (data_ + i) T(o.data_[i]);
      size_ = o.size_;
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      destroy();
      data_ = inline_data();
      cap_ = N;
      size_ = 0;
      steal(std::move(o));
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    clear();
    for (const T& v : init) push_back(v);
    return *this;
  }
  ~SmallVec() { destroy(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }
  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }
  void pop_back() {
    --size_;
    data_[size_].~T();
  }
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }
  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

 private:
  [[nodiscard]] T* inline_data() { return reinterpret_cast<T*>(inline_); }
  [[nodiscard]] bool is_inline() const {
    return data_ == reinterpret_cast<const T*>(inline_);
  }

  // GCC's -Warray-bounds misreads data_ as a pointer into the zero-length
  // remainder of inline_ once the move loop is inlined into a caller; the
  // accesses are bounded by size_ <= cap_ by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
  void grow(std::size_t n) {
    if (n < cap_ * 2) n = cap_ * 2;
    T* heap = static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      new (heap + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(data_, std::align_val_t{alignof(T)});
    data_ = heap;
    cap_ = n;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  void destroy() {
    clear();
    if (!is_inline()) ::operator delete(data_, std::align_val_t{alignof(T)});
  }

  /// Move-from for construction/assignment into a fresh (inline, empty) state.
  void steal(SmallVec&& o) {
    if (o.is_inline()) {
      for (std::size_t i = 0; i < o.size_; ++i) {
        new (data_ + i) T(std::move(o.data_[i]));
        o.data_[i].~T();
      }
      size_ = o.size_;
      o.size_ = 0;
    } else {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_data();
      o.cap_ = N;
      o.size_ = 0;
    }
  }

  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

/// Pooled wake-up record shared between the when_any/when_all combinators
/// and the events they watch.  `remaining` counts unfired events; the
/// notification that drives it to zero resumes `h`, later ones are no-ops.
struct WaitNode : RcPooled<WaitNode> {
  std::uint32_t remaining = 0;
  std::coroutine_handle<> h{};
};

}  // namespace cci::sim
