// Bottleneck (weighted) max-min fair allocation.
//
// This is the fluid bandwidth-sharing model used throughout the simulator:
// every concurrent transfer/computation is a *flow* with a demand vector
// over shared *resources* (memory controllers, inter-socket links, NIC
// ports, cores).  A flow advancing at rate r consumes r * demand[j] on each
// resource j it touches.  Rates are the classic progressive-filling
// solution: all flows grow at a common weighted scale until a resource (or
// a flow's own rate cap) saturates; saturated flows freeze; repeat.
//
// Two entry points:
//
//  * solve_max_min() — the original pure function over plain structs,
//    trivially property-testable in isolation from the engine.  It is a
//    thin wrapper over the incremental solver below.
//
//  * MaxMinSolver — persistent solver state for the engine's hot path.
//    Flows are registered once and updated in place; resources linked by
//    shared flows are grouped into connected components via a union-find,
//    and a change (flow added/removed, capacity changed) dirty-marks only
//    the touched component.  solve() then re-runs progressive filling on
//    the dirty components only — rates, loads and pressures of untouched
//    components carry over verbatim (bitwise), which is what makes partial
//    re-solves indistinguishable from full ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cci::sim {

struct MaxMinFlow {
  /// Relative weight for sharing; a flow's rate in each filling round is
  /// weight * lambda.  Must be > 0.
  double weight = 1.0;
  /// Intrinsic rate cap (e.g. a single core's copy speed); infinity if none.
  double rate_cap = 0.0;  // <= 0 means "no cap"
  struct Entry {
    std::size_t resource;  ///< index into MaxMinProblem::capacity
    double demand;         ///< resource units consumed per unit of rate
  };
  std::vector<Entry> entries;
};

struct MaxMinProblem {
  std::vector<double> capacity;   ///< per-resource capacity (units/s)
  std::vector<MaxMinFlow> flows;  ///< concurrent flows to allocate
};

struct MaxMinSolution {
  std::vector<double> rate;  ///< per-flow allocated rate
  std::vector<double> load;  ///< per-resource total usage (<= capacity)
};

/// Solve the weighted bottleneck max-min problem by progressive filling.
/// Complexity O(F * R * rounds); rounds <= F.  Flows with empty demand
/// vectors get their rate cap (or +inf with no cap).
MaxMinSolution solve_max_min(const MaxMinProblem& problem);

/// Incremental solver: persistent flow records + connected-component
/// partial re-solves.  Not thread-safe (the engine is single-threaded).
class MaxMinSolver {
 public:
  using FlowId = std::size_t;
  static constexpr FlowId kNoFlow = static_cast<FlowId>(-1);

  // ---- problem mutation (each call dirty-marks the touched component) ----

  /// Register a resource; returns its index.  Indices are dense and stable.
  std::size_t add_resource(double capacity);
  void set_capacity(std::size_t resource, double capacity);

  /// Register a flow.  Slots are recycled, so FlowIds of removed flows may
  /// be reused; relative solve order follows registration order (a
  /// monotonic sequence number), never slot order.
  FlowId add_flow(double weight, double rate_cap,
                  const std::vector<MaxMinFlow::Entry>& entries);
  void remove_flow(FlowId id);

  // ---- solving ----------------------------------------------------------

  /// Re-solve every dirty component.  After the call, changed_flows() lists
  /// flows whose rate differs bitwise from before, and touched_resources()
  /// lists the members of solved components (their load/pressure are
  /// freshly written; untouched resources keep their previous values).
  void solve();

  /// Force the next solve() to re-solve every component (the "from-scratch"
  /// reference path used for A/B determinism checks).
  void mark_all_dirty();

  [[nodiscard]] const std::vector<FlowId>& changed_flows() const { return changed_flows_; }
  [[nodiscard]] const std::vector<std::size_t>& touched_resources() const {
    return touched_resources_;
  }

  // ---- state accessors --------------------------------------------------

  [[nodiscard]] double rate(FlowId id) const { return flows_[id].rate; }
  [[nodiscard]] double load(std::size_t resource) const { return load_[resource]; }
  [[nodiscard]] double capacity(std::size_t resource) const { return capacity_[resource]; }
  /// Demand pressure: sum over the resource's flows of solo-rate * demand /
  /// capacity — see Resource::pressure().
  [[nodiscard]] double pressure(std::size_t resource) const { return pressure_[resource]; }
  [[nodiscard]] std::size_t resource_count() const { return capacity_.size(); }
  [[nodiscard]] std::size_t live_flow_count() const { return live_flows_; }

  /// Root of the union-find component containing `resource`.  Resources
  /// answering the same root are (transitively) coupled by shared flows —
  /// the grouping the shard partitioner seeds from.  Const: walks parent
  /// links without path compression, so calling it never perturbs solver
  /// state (bitwise determinism of subsequent solves is preserved).
  [[nodiscard]] std::size_t component_root(std::size_t resource) const;

  /// Cumulative work/quality counters, for perf guards and benches.
  struct Stats {
    std::uint64_t solves = 0;            ///< solve() calls
    std::uint64_t full_solves = 0;       ///< solves that visited every live flow
    std::uint64_t partial_solves = 0;    ///< solves that skipped >= 1 clean component
    std::uint64_t components_solved = 0; ///< dirty components re-solved
    std::uint64_t flow_visits = 0;       ///< flow scans inside filling rounds
    std::uint64_t partition_rebuilds = 0;///< union-find rebuilds after removals
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct FlowRec {
    double weight = 1.0;
    double rate_cap = 0.0;
    double rate = 0.0;
    /// rate_cap / weight (+inf when uncapped), precomputed at registration —
    /// weight and cap are immutable, so the filling rounds never divide.
    double cap_lambda = 0.0;
    std::uint64_t seq = 0;    ///< registration order; solve order within a component
    std::vector<MaxMinFlow::Entry> entries;
    /// Per-entry demand-pressure contribution (solo-rate * demand / capacity),
    /// cached because it only depends on this flow and the capacities it
    /// touches: recomputed lazily after a set_capacity() on the component.
    /// Empty with pressure_valid set means the solo rate is unbounded.
    std::vector<double> pressure_contrib;
    std::size_t comp_pos = 0; ///< position inside its component's flow list
    bool live = false;
    bool pressure_valid = false;
  };

  std::size_t find_root(std::size_t r);
  /// Union the components of a and b; returns the surviving root.
  std::size_t unite(std::size_t a, std::size_t b);
  void mark_dirty(std::size_t root);
  void rebuild_partition();
  void solve_component(std::size_t root);

  // Resources.
  std::vector<double> capacity_;
  std::vector<double> load_;
  std::vector<double> pressure_;

  // Union-find over resources (merged on flow registration; removals leave
  // the partition over-merged, which is conservative-but-correct, and a
  // rebuild is scheduled once removals pile up).
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> comp_size_;              ///< valid at roots
  // comp_flows_ is kept sorted by FlowRec::seq (registration order) as an
  // invariant: appends are monotone in seq and removals erase in place, so
  // the common case needs no per-solve sort.  Merges and partition rebuilds
  // may break the order; they set comp_unsorted_ and solve_component()
  // restores it lazily.
  std::vector<std::vector<FlowId>> comp_flows_;     ///< valid at roots
  std::vector<char> comp_unsorted_;                 ///< valid at roots
  std::vector<std::vector<std::size_t>> comp_res_;  ///< valid at roots
  std::vector<char> dirty_;                         ///< valid at roots
  std::vector<std::size_t> dirty_roots_;

  // Flows.
  std::vector<FlowRec> flows_;
  std::vector<FlowId> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_flows_ = 0;           ///< live flows with >= 1 demand entry
  std::size_t removals_since_rebuild_ = 0;
  std::vector<FlowId> entryless_changed_;  ///< demandless flows solved at add

  // Solve outputs and reusable scratch (never shrunk: zero steady-state
  // allocation on the hot path).
  std::vector<FlowId> changed_flows_;
  std::vector<std::size_t> touched_resources_;
  std::vector<char> rebuild_res_dirty_;        ///< rebuild_partition scratch
  std::vector<std::uint32_t> res_local_;       ///< global res -> local slot
  std::vector<std::size_t> scratch_res_;       ///< component resources
  // Dense per-solve gather of the component's flows: per-flow weights plus
  // flattened demand entries (local resource slot, raw and weighted demand,
  // cached pressure contribution), indexed by sc_ent_begin_[f]..[f+1].
  std::vector<double> sc_weight_;
  std::vector<std::uint32_t> sc_ent_begin_;
  std::vector<std::uint32_t> sc_ent_local_;
  std::vector<double> sc_ent_demand_;
  std::vector<double> sc_ent_wdem_;
  std::vector<double> sc_ent_press_;
  std::vector<double> sc_cap_left_;
  std::vector<double> sc_weighted_demand_;
  std::vector<char> sc_bottleneck_;
  std::vector<double> sc_load_;
  std::vector<double> sc_pressure_;
  std::vector<double> sc_cap_lambda_;
  std::vector<char> sc_fixed_;
  std::vector<double> sc_rate_;

  Stats stats_;
};

}  // namespace cci::sim
