// Bottleneck (weighted) max-min fair allocation.
//
// This is the fluid bandwidth-sharing model used throughout the simulator:
// every concurrent transfer/computation is a *flow* with a demand vector
// over shared *resources* (memory controllers, inter-socket links, NIC
// ports, cores).  A flow advancing at rate r consumes r * demand[j] on each
// resource j it touches.  Rates are the classic progressive-filling
// solution: all flows grow at a common weighted scale until a resource (or
// a flow's own rate cap) saturates; saturated flows freeze; repeat.
//
// Kept as a free function over plain structs so it is trivially
// property-testable in isolation from the engine.
#pragma once

#include <cstddef>
#include <vector>

namespace cci::sim {

struct MaxMinFlow {
  /// Relative weight for sharing; a flow's rate in each filling round is
  /// weight * lambda.  Must be > 0.
  double weight = 1.0;
  /// Intrinsic rate cap (e.g. a single core's copy speed); infinity if none.
  double rate_cap = 0.0;  // <= 0 means "no cap"
  struct Entry {
    std::size_t resource;  ///< index into MaxMinProblem::capacity
    double demand;         ///< resource units consumed per unit of rate
  };
  std::vector<Entry> entries;
};

struct MaxMinProblem {
  std::vector<double> capacity;   ///< per-resource capacity (units/s)
  std::vector<MaxMinFlow> flows;  ///< concurrent flows to allocate
};

struct MaxMinSolution {
  std::vector<double> rate;  ///< per-flow allocated rate
  std::vector<double> load;  ///< per-resource total usage (<= capacity)
};

/// Solve the weighted bottleneck max-min problem by progressive filling.
/// Complexity O(F * R * rounds); rounds <= F.  Flows with empty demand
/// vectors get their rate cap (or +inf with no cap).
MaxMinSolution solve_max_min(const MaxMinProblem& problem);

}  // namespace cci::sim
