// The discrete-event simulation engine.
//
// The engine owns the virtual clock and the event queue; everything else in
// the simulator (flows, machines, networks, runtimes) schedules callbacks or
// suspends coroutine processes on it.  Determinism: events at equal times
// run in scheduling order, and nothing in the engine consults wall-clock
// time or global RNG state.
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/stall.hpp"
#include "sim/time.hpp"

namespace cci::sim {

class Engine {
 public:
  Engine() {
    obs::Registry& reg = obs::Registry::global();
    obs_events_ = &reg.counter("sim.engine.events_dispatched");
    obs_spawns_ = &reg.counter("sim.engine.processes_spawned");
    obs_heap_depth_ = &reg.histogram("sim.engine.heap_depth");
    obs_watchdog_trips_ = &reg.counter("sim.watchdog_trips");
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() {
    // Destroy frames of processes that never ran to completion (e.g. servers
    // still blocked on a mailbox when the simulation ended).
    for (void* addr : live_handles_)
      std::coroutine_handle<Coro::promise_type>::from_address(addr).destroy();
  }

  /// Current simulated time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule a plain callback at absolute time `t` (>= now()).
  EventQueue::Handle call_at(Time t, EventQueue::Callback fn) {
    assert(t >= now_ - kTimeEpsilon);
    return queue_.schedule(t, std::move(fn));
  }
  /// Schedule a plain callback `dt` seconds from now.
  EventQueue::Handle call_in(Time dt, EventQueue::Callback fn) {
    return call_at(now_ + dt, std::move(fn));
  }

  /// Move a still-pending callback to time `t` (fresh FIFO sequence, same
  /// ordering semantics as cancel + call_at, but without abandoning a heap
  /// node).  Returns false if the handle already fired or was cancelled —
  /// the caller must then call_at() a fresh event.
  bool retime(const EventQueue::Handle& h, Time t) {
    assert(t >= now_ - kTimeEpsilon);
    return queue_.retime(h, t);
  }

  /// Spawn a process: the coroutine starts from the event loop at the
  /// current time (or at `start_at` if given).  Returns a joinable ref.
  ProcessRef spawn(Coro coro, Time start_at = -1.0) {
    auto h = coro.release();
    h.promise().engine = this;
    auto state = h.promise().state;
    call_at(start_at < 0 ? now_ : start_at, [h] { h.resume(); });
    obs_spawns_->add(1);
    ++live_processes_;
    live_handles_.insert(h.address());
    return ProcessRef(state);
  }

  /// Opt into watchdog limits for subsequent run() calls.  When a limit is
  /// hit, run() throws SimStalled (never from inside a process).
  void set_watchdog(WatchdogConfig config) { watchdog_ = config; }
  [[nodiscard]] const WatchdogConfig& watchdog() const { return watchdog_; }

  /// Register a callback that appends human-readable descriptions of
  /// currently-blocked work (stalled activities, pending receives, ...) to a
  /// SimStalled report.  The registrant must outlive every run() call — in
  /// practice inspectors are registered by objects (FlowModel, World) that
  /// live as long as the engine they drive.
  using StallInspector = std::function<void(std::vector<std::string>&)>;
  void add_stall_inspector(StallInspector fn) {
    stall_inspectors_.push_back(std::move(fn));
  }

  /// Run until the event queue drains or the optional horizon is reached.
  /// Returns the final simulated time.
  Time run(Time until = kNever) {
    const bool guarded = watchdog_.any();
    std::uint64_t run_events = 0;
    std::uint64_t instant_events = 0;
    Time instant = now_;
    while (!queue_.empty()) {
      Time t = queue_.next_time();
      if (t > until) {
        now_ = until;
        return now_;
      }
      if (guarded) {
        if (t > instant + kTimeEpsilon) {
          instant = t;
          instant_events = 0;
        }
        if (watchdog_.max_events != 0 && run_events >= watchdog_.max_events) {
          now_ = std::max(now_, t);
          trip(StallReason::kEventBudget, run_events);
        }
        if (watchdog_.max_events_per_instant != 0 &&
            instant_events >= watchdog_.max_events_per_instant) {
          now_ = std::max(now_, t);
          trip(StallReason::kNoProgress, run_events);
        }
        ++run_events;
        ++instant_events;
      }
      auto [time, fn] = queue_.pop();
      assert(time >= now_ - kTimeEpsilon);
      now_ = std::max(now_, time);
      obs_events_->add(1);
      obs_heap_depth_->record(static_cast<double>(queue_.size_estimate()));
      fn();
    }
    if (guarded && watchdog_.report_blocked_on_drain && live_processes_ > 0)
      trip(StallReason::kBlockedProcesses, run_events);
    return now_;
  }

  /// Number of spawned processes that have not yet terminated.
  [[nodiscard]] int live_processes() const { return live_processes_; }

  // ---- awaitables -------------------------------------------------------

  /// `co_await engine.sleep(dt)` — suspend the calling process for `dt`
  /// simulated seconds.
  auto sleep(Time dt) { return SleepAwaiter{this, now_ + dt}; }
  /// `co_await engine.sleep_until(t)` — suspend until absolute time `t`.
  auto sleep_until(Time t) { return SleepAwaiter{this, t}; }
  /// `co_await engine.yield()` — reschedule at the current time, after all
  /// events already queued for this instant.
  auto yield() { return SleepAwaiter{this, now_}; }

  struct SleepAwaiter {
    Engine* engine;
    Time wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->call_at(wake_at, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  /// Resume a suspended coroutine from the event loop at the current time.
  /// Used by synchronisation primitives so wake-ups are serialized through
  /// the queue instead of nesting resumes.
  void resume_soon(std::coroutine_handle<> h) {
    call_at(now_, [h] { h.resume(); });
  }

 private:
  [[noreturn]] void trip(StallReason reason, std::uint64_t run_events) {
    obs_watchdog_trips_->add(1);
    std::vector<std::string> blocked;
    for (const StallInspector& fn : stall_inspectors_) fn(blocked);
    throw SimStalled(reason, now_, run_events, live_processes_, std::move(blocked));
  }

  friend struct Coro::promise_type::FinalAwaiter;
  void on_process_done(std::coroutine_handle<Coro::promise_type> h) {
    auto state = h.promise().state;
    state->done = true;
    for (auto joiner : state->joiners) resume_soon(joiner);
    state->joiners.clear();
    --live_processes_;
    live_handles_.erase(h.address());
    h.destroy();
  }

  Time now_ = 0.0;
  EventQueue queue_;
  int live_processes_ = 0;
  std::unordered_set<void*> live_handles_;
  WatchdogConfig watchdog_;
  std::vector<StallInspector> stall_inspectors_;
  obs::Counter* obs_events_ = nullptr;
  obs::Counter* obs_spawns_ = nullptr;
  obs::Histogram* obs_heap_depth_ = nullptr;
  obs::Counter* obs_watchdog_trips_ = nullptr;
};

inline void Coro::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<Coro::promise_type> h) noexcept {
  h.promise().engine->on_process_done(h);
}

}  // namespace cci::sim
