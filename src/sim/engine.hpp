// The discrete-event simulation engine.
//
// The engine owns the virtual clock and the event queue; everything else in
// the simulator (flows, machines, networks, runtimes) schedules callbacks or
// suspends coroutine processes on it.  Determinism: events at equal times
// run in scheduling order, and nothing in the engine consults wall-clock
// time or global RNG state.
//
// Memory: the engine also owns the slab pools behind the hot path —
// process-completion records, combinator wait nodes — plus the symbol table
// that interns activity/resource labels to 4-byte ids.  Pool stats are
// published through obs as `sim.pool.*` when a run() drains.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/label.hpp"
#include "sim/pool.hpp"
#include "sim/stall.hpp"
#include "sim/time.hpp"

namespace cci::sim {

class Engine {
 public:
  Engine()
      : state_pool_("process_state"), wait_pool_("wait_node") {
    obs::Registry& reg = obs::Registry::global();
    obs_events_ = &reg.counter("sim.engine.events_dispatched");
    obs_spawns_ = &reg.counter("sim.engine.processes_spawned");
    obs_heap_depth_ = &reg.histogram("sim.engine.heap_depth");
    obs_watchdog_trips_ = &reg.counter("sim.watchdog_trips");
    register_pool(&state_pool_);
    register_pool(&wait_pool_);
    register_pool(&FrameArena::local());
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() {
    // Destroy frames of processes that never ran to completion (e.g. servers
    // still blocked on a mailbox when the simulation ended).  The list is
    // intrusive through the promises, so destruction unlinks as it goes.
    while (live_head_ != nullptr) {
      Coro::promise_type* p = live_head_;
      live_head_ = p->live_next;
      std::coroutine_handle<Coro::promise_type>::from_promise(*p).destroy();
    }
  }

  /// Current simulated time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Time of the earliest pending event, or kNever if the queue is empty.
  /// The shard scheduler uses this to compute conservative window horizons.
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

  /// Events actually pending (excludes lazily-cancelled heap slots).
  [[nodiscard]] std::size_t queue_live_size() const { return queue_.live_size(); }

  /// Schedule a plain callback at absolute time `t` (>= now()).
  EventQueue::Handle call_at(Time t, EventQueue::Callback fn) {
    assert(t >= now_ - kTimeEpsilon);
    return queue_.schedule(t, std::move(fn));
  }
  /// Schedule a plain callback `dt` seconds from now.
  EventQueue::Handle call_in(Time dt, EventQueue::Callback fn) {
    return call_at(now_ + dt, std::move(fn));
  }

  /// Move a still-pending callback to time `t` (fresh FIFO sequence, same
  /// ordering semantics as cancel + call_at, but without abandoning a heap
  /// node).  Returns false if the handle already fired or was cancelled —
  /// the caller must then call_at() a fresh event.
  bool retime(const EventQueue::Handle& h, Time t) {
    assert(t >= now_ - kTimeEpsilon);
    return queue_.retime(h, t);
  }

  /// Spawn a process: the coroutine starts from the event loop at the
  /// current time (or at `start_at` if given).  Returns a joinable ref.
  ProcessRef spawn(Coro coro, Time start_at = -1.0) {
    auto h = coro.release();
    Coro::promise_type& p = h.promise();
    p.engine = this;
    p.state = state_pool_.make();
    call_at(start_at < 0 ? now_ : start_at, [h] { h.resume(); });
    obs_spawns_->add(1);
    ++live_processes_;
    p.live_prev = nullptr;
    p.live_next = live_head_;
    if (live_head_ != nullptr) live_head_->live_prev = &p;
    live_head_ = &p;
    return ProcessRef(p.state);
  }

  /// Opt into watchdog limits for subsequent run() calls.  When a limit is
  /// hit, run() throws SimStalled (never from inside a process).
  void set_watchdog(WatchdogConfig config) { watchdog_ = config; }
  [[nodiscard]] const WatchdogConfig& watchdog() const { return watchdog_; }

  /// Attach (or detach, with nullptr) a simulated-time metrics sampler.
  /// run() then advances it *before* dispatching each event, so a sample at
  /// tick T reflects exactly the events strictly before T — independent of
  /// how events happen to batch within a run() call.  Detached, the cost is
  /// one pointer test per event; no coroutine is involved, so the sampler
  /// never keeps the queue alive and run() still drains naturally.
  void set_sampler(obs::Sampler* sampler) { sampler_ = sampler; }
  [[nodiscard]] obs::Sampler* sampler() const { return sampler_; }

  /// Register a callback that appends human-readable descriptions of
  /// currently-blocked work (stalled activities, pending receives, ...) to a
  /// SimStalled report.  The registrant must outlive every run() call — in
  /// practice inspectors are registered by objects (FlowModel, World) that
  /// live as long as the engine they drive.
  using StallInspector = std::function<void(std::vector<std::string>&)>;
  void add_stall_inspector(StallInspector fn) {
    stall_inspectors_.push_back(std::move(fn));
  }

  /// Run until the event queue drains or the optional horizon is reached.
  /// Returns the final simulated time.
  Time run(Time until = kNever) {
    const bool guarded = watchdog_.any();
    std::uint64_t run_events = 0;
    std::uint64_t instant_events = 0;
    Time instant = now_;
    while (!queue_.empty()) {
      Time t = queue_.next_time();
      if (t > until) {
        now_ = until;
        if (sampler_ != nullptr) sampler_->advance_to(now_);
        publish_pool_stats();
        return now_;
      }
      if (sampler_ != nullptr) sampler_->advance_to(t);
      if (guarded) {
        if (t > instant + kTimeEpsilon) {
          instant = t;
          instant_events = 0;
        }
        if (watchdog_.max_events != 0 && run_events >= watchdog_.max_events) {
          now_ = std::max(now_, t);
          trip(StallReason::kEventBudget, run_events);
        }
        if (watchdog_.max_events_per_instant != 0 &&
            instant_events >= watchdog_.max_events_per_instant) {
          now_ = std::max(now_, t);
          trip(StallReason::kNoProgress, run_events);
        }
        ++run_events;
        ++instant_events;
        // Piggyback the O(n) queue-invariant audit on the watchdog: cheap
        // enough amortized (every 4096 events), and it catches live_size()
        // drift — e.g. a compaction path forgetting n_cancelled_ — long
        // before it would surface as a bogus stall report.
        if ((run_events & 4095u) == 0) queue_.check_live_size();
      }
      auto [time, fn] = queue_.pop();
      assert(time >= now_ - kTimeEpsilon);
      now_ = std::max(now_, time);
      ++events_dispatched_;
      obs_events_->add(1);
      obs_heap_depth_->record(static_cast<double>(queue_.size_estimate()));
      fn();
    }
    if (guarded && watchdog_.report_blocked_on_drain && live_processes_ > 0)
      trip(StallReason::kBlockedProcesses, run_events);
    if (sampler_ != nullptr) sampler_->advance_to(now_);
    publish_pool_stats();
    return now_;
  }

  /// Number of spawned processes that have not yet terminated.
  [[nodiscard]] int live_processes() const { return live_processes_; }

  /// Raw events dispatched over this engine's lifetime (bench throughput
  /// denominator; independent of the obs enabled flag).
  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }

  // ---- labels -----------------------------------------------------------

  /// Intern a label; ids are stable for the engine's lifetime.
  LabelId intern(std::string_view text) { return symbols_.intern(text); }
  /// Text of an interned label ("" for kNoLabel).
  [[nodiscard]] const std::string& label_str(LabelId id) const {
    return symbols_.str(id);
  }

  // ---- pools ------------------------------------------------------------

  /// Pooled wait node for the when_any/when_all combinators.
  RcPtr<WaitNode> make_wait_node() { return wait_pool_.make(); }

  /// Track a pool's stats: published as `sim.pool.<name>.*` when run()
  /// drains.  Registrants (e.g. a FlowModel's activity pool) must
  /// unregister before they die.
  void register_pool(PoolBase* pool) {
    PoolChannel ch;
    ch.pool = pool;
    char name[96];
    auto bind = [&](const char* field) -> obs::Counter* {
      std::snprintf(name, sizeof name, "sim.pool.%s.%s", pool->name(), field);
      return &obs::Registry::global().counter(name);
    };
    ch.allocated = bind("allocated");
    ch.reused = bind("reused");
    ch.slabs = bind("slabs");
    ch.slab_bytes = bind("slab_bytes");
    std::snprintf(name, sizeof name, "sim.pool.%s.live", pool->name());
    ch.live = &obs::Registry::global().gauge(name);
    pool_channels_.push_back(ch);
  }
  void unregister_pool(PoolBase* pool) {
    for (std::size_t i = 0; i < pool_channels_.size(); ++i) {
      if (pool_channels_[i].pool == pool) {
        pool_channels_.erase(pool_channels_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  // ---- awaitables -------------------------------------------------------

  /// `co_await engine.sleep(dt)` — suspend the calling process for `dt`
  /// simulated seconds.
  auto sleep(Time dt) { return SleepAwaiter{this, now_ + dt}; }
  /// `co_await engine.sleep_until(t)` — suspend until absolute time `t`.
  auto sleep_until(Time t) { return SleepAwaiter{this, t}; }
  /// `co_await engine.yield()` — reschedule at the current time, after all
  /// events already queued for this instant.
  auto yield() { return SleepAwaiter{this, now_}; }

  struct SleepAwaiter {
    Engine* engine;
    Time wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->call_at(wake_at, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  /// Resume a suspended coroutine from the event loop at the current time.
  /// Used by synchronisation primitives so wake-ups are serialized through
  /// the queue instead of nesting resumes.
  void resume_soon(std::coroutine_handle<> h) {
    call_at(now_, [h] { h.resume(); });
  }

 private:
  [[noreturn]] void trip(StallReason reason, std::uint64_t run_events) {
    obs_watchdog_trips_->add(1);
    std::vector<std::string> blocked;
    for (const StallInspector& fn : stall_inspectors_) fn(blocked);
    throw SimStalled(reason, now_, run_events, live_processes_, std::move(blocked));
  }

  /// Flush pool-stat deltas to obs.  Off the hot path: once per drained
  /// run(), not per event.
  void publish_pool_stats() {
    for (PoolChannel& ch : pool_channels_) {
      const PoolBase::Stats d = ch.pool->take_delta();
      if (d.allocated != 0) ch.allocated->add(static_cast<double>(d.allocated));
      if (d.reused != 0) ch.reused->add(static_cast<double>(d.reused));
      if (d.slabs != 0) ch.slabs->add(static_cast<double>(d.slabs));
      if (d.slab_bytes != 0) ch.slab_bytes->add(static_cast<double>(d.slab_bytes));
      ch.live->set(static_cast<double>(d.live));
    }
  }

  friend struct Coro::promise_type::FinalAwaiter;
  void on_process_done(std::coroutine_handle<Coro::promise_type> h) {
    Coro::promise_type& p = h.promise();
    // Move the ref out so the state drops back to the pool with the last
    // outside ProcessRef (or right here if nobody joined).
    RcPtr<ProcessState> state = std::move(p.state);
    state->done = true;
    for (auto joiner : state->joiners) resume_soon(joiner);
    state->joiners.clear();
    --live_processes_;
    if (p.live_prev != nullptr)
      p.live_prev->live_next = p.live_next;
    else
      live_head_ = p.live_next;
    if (p.live_next != nullptr) p.live_next->live_prev = p.live_prev;
    h.destroy();
  }

  struct PoolChannel {
    PoolBase* pool = nullptr;
    obs::Counter* allocated = nullptr;
    obs::Counter* reused = nullptr;
    obs::Counter* slabs = nullptr;
    obs::Counter* slab_bytes = nullptr;
    obs::Gauge* live = nullptr;
  };

  Time now_ = 0.0;
  EventQueue queue_;
  int live_processes_ = 0;
  std::uint64_t events_dispatched_ = 0;
  Coro::promise_type* live_head_ = nullptr;  ///< intrusive live-process list
  WatchdogConfig watchdog_;
  obs::Sampler* sampler_ = nullptr;
  std::vector<StallInspector> stall_inspectors_;
  SlabPool<ProcessState> state_pool_;
  SlabPool<WaitNode> wait_pool_;
  SymbolTable symbols_;
  std::vector<PoolChannel> pool_channels_;
  obs::Counter* obs_events_ = nullptr;
  obs::Counter* obs_spawns_ = nullptr;
  obs::Histogram* obs_heap_depth_ = nullptr;
  obs::Counter* obs_watchdog_trips_ = nullptr;
};

inline void Coro::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<Coro::promise_type> h) noexcept {
  h.promise().engine->on_process_done(h);
}

}  // namespace cci::sim
