#include "sim/flow_model.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace cci::sim {

namespace {
/// Completion slack: absorbs linear-progress round-off.  Activities whose
/// total work is below this threshold complete at start without ever
/// entering the solver.
double completion_eps(double work) { return std::max(1.0, work) * 1e-9; }
}  // namespace

FlowModel::FlowModel(Engine& engine) : engine_(engine), activity_pool_("activity") {
  engine_.register_pool(&activity_pool_);
  obs_reg_ = &obs::Registry::global();
  obs_resolves_ = &obs_reg_->counter("sim.flow.resolves");
  obs_resolves_full_ = &obs_reg_->counter("sim.flow.resolves_full");
  obs_resolves_partial_ = &obs_reg_->counter("sim.flow.resolves_partial");
  obs_flow_visits_ = &obs_reg_->counter("sim.flow.solver_flow_visits");
  obs_components_solved_ = &obs_reg_->counter("sim.flow.components_solved");
  obs_started_ = &obs_reg_->counter("sim.flow.activities_started");
  obs_solve_wall_us_ = &obs_reg_->histogram("sim.flow.solve_wall_us");
  if (const char* env = std::getenv("CCI_SIM_INCREMENTAL"))
    incremental_ = !(env[0] == '0' && env[1] == '\0');
  // Watchdog support: when a run stalls, name every activity still in
  // flight — a rate of zero marks the flows the deadlock is stuck on
  // (capacity gone, blackout, ...).  Registered once; the model outlives
  // every run() of the engine it drives.
  engine_.add_stall_inspector([this](std::vector<std::string>& out) {
    for (const ActivityPtr& act : running_) {
      const double total = act->spec().work;
      const double done = act->work_done();
      std::string desc = "activity '" + engine_.label_str(act->spec().label) + "'";
      desc += act->rate() == 0.0 ? " STALLED (rate 0)"
                                 : " rate=" + std::to_string(act->rate());
      desc += ", work " + std::to_string(done) + "/" + std::to_string(total);
      if (!act->spec().demands.empty() && act->spec().demands.front().resource != nullptr)
        desc += ", first resource '" + act->spec().demands.front().resource->name() + "'";
      out.push_back(std::move(desc));
    }
  });
}

FlowModel::~FlowModel() {
  // The engine keeps publishing registered pool stats at run() ends; drop
  // ours before the pool dies.  (Activities still referenced elsewhere are
  // handled by the pool's orphan-slab path.)
  engine_.unregister_pool(&activity_pool_);
}

void Resource::set_capacity(double capacity) {
  assert(capacity >= 0.0);
  if (capacity == capacity_) return;
  // Close the work/attribution integrals under the *outgoing* capacity
  // first: rates and loads stay those of the old allocation until the
  // re-solve below, and advance() is idempotent (the one inside
  // reallocate() then sees dt == 0).
  model_->advance();
  capacity_ = capacity;
  model_->on_capacity_changed(this);
}

Resource* FlowModel::add_resource(std::string name, double capacity) {
  resources_.push_back(std::unique_ptr<Resource>(
      new Resource(this, resources_.size(), std::move(name), capacity)));
  Resource* r = resources_.back().get();
  const std::size_t solver_index = solver_.add_resource(capacity);
  assert(solver_index == r->index_);
  (void)solver_index;
  // Metric names assembled in a stack buffer; the registry's heterogeneous
  // string_view lookup means no temporary std::string on re-registration.
  char buf[192];
  std::snprintf(buf, sizeof buf, "sim.resource.%s.work_units", r->name().c_str());
  r->obs_work_ = &obs_reg_->counter(buf);
  std::snprintf(buf, sizeof buf, "sim.resource.%s.utilization", r->name().c_str());
  r->obs_util_ = &obs_reg_->gauge(buf);
  std::snprintf(buf, sizeof buf, "sim.resource.%s.pressure", r->name().c_str());
  r->obs_pressure_ = &obs_reg_->gauge(buf);
  r->obs_load_series_ = "sim.resource." + r->name() + ".load";
  r->obs_track_series_ = "sim.res." + r->name();
  return r;
}

ActivityPtr FlowModel::start(ActivitySpec spec) {
  ActivityPtr act = activity_pool_.make(engine_, std::move(spec));
  Activity* a = act.get();
  a->seq_ = next_activity_seq_++;
  a->run_slot_ = running_.size();
  running_.push_back(act);
  obs_started_->add(1);
  if (a->spec_.work <= completion_eps(a->spec_.work)) {
    // Degenerate work: completes in the harvest pass of the reallocate()
    // below, without ever registering a solver flow.
    heap_set(a, engine_.now());
  } else {
    entries_scratch_.clear();
    entries_scratch_.reserve(a->spec_.demands.size());
    for (const auto& d : a->spec_.demands)
      entries_scratch_.push_back({d.resource->index_, d.amount});
    a->flow_id_ = solver_.add_flow(a->spec_.weight, a->spec_.rate_cap, entries_scratch_);
    if (flow_act_.size() <= a->flow_id_)
      flow_act_.resize(std::max(flow_act_.size() * 2, a->flow_id_ + 1), nullptr);
    flow_act_[a->flow_id_] = a;
  }
  if (profiler_ != nullptr) refresh_solo_rate(*a);
  reallocate();
  return act;
}

void FlowModel::cancel(const ActivityPtr& activity) {
  Activity* a = activity.get();
  if (!a || a->run_slot_ == Activity::kNoSlot || a->run_slot_ >= running_.size() ||
      running_[a->run_slot_].get() != a)
    return;
  advance();
  const Time now = engine_.now();
  // Freeze progress at the cancellation instant.
  double w = a->work_done();
  a->work_base_ = w;
  a->base_time_ = now;
  a->rate_ = 0.0;
  heap_erase(a);
  if (a->flow_id_ != Activity::kNoSlot) {
    flow_act_[a->flow_id_] = nullptr;
    solver_.remove_flow(a->flow_id_);
    a->flow_id_ = Activity::kNoSlot;
  }
  ActivityPtr owned = detach_running(a);
  trace_activity(*a, " (cancelled)");
  reallocate();
}

void FlowModel::trace_activity(const Activity& act, const char* suffix) {
  obs::Tracer& tracer = obs_reg_->tracer();
  if (!tracer.on()) return;
  const auto& spec = act.spec();
  static const std::string kUnbound = "sim.res.unbound";
  const std::string& series = spec.demands.empty()
                                  ? kUnbound
                                  : spec.demands.front().resource->obs_track_series_;
  obs::TrackId track = tracer.track(series);
  const std::string& name = engine_.label_str(spec.label);
  std::string label = name.empty() ? "activity" : name;
  tracer.span(track, label + suffix, act.started_at(), engine_.now());
}

std::size_t FlowModel::resource_component(const Resource* r) const {
  assert(r != nullptr && r->model_ == this);
  return solver_.component_root(r->index_);
}

void FlowModel::on_capacity_changed(Resource* resource) {
  solver_.set_capacity(resource->index_, resource->capacity_);
  // Isolated rates depend only on capacities and the activity's own spec,
  // so a capacity change invalidates them all at once.  Capacity changes
  // (DVFS transitions, failovers) are rare next to flow churn, so the
  // O(running) sweep is off the hot path.
  if (profiler_ != nullptr)
    for (const ActivityPtr& act : running_) refresh_solo_rate(*act);
  reallocate();
}

void FlowModel::advance() {
  const Time now = engine_.now();
  const Time dt = now - last_advance_;
  if (dt > 0.0 && obs_reg_->enabled()) {
    // Work-unit integral per resource: loads were constant since the last
    // change point, so load * dt is exact (bytes moved per controller).
    for (auto& r : resources_)
      if (r->load_ > 0.0) r->obs_work_->add(r->load_ * dt);
  }
  if (dt > 0.0 && profiler_ != nullptr) profile_advance(dt);
  last_advance_ = now;
}

void FlowModel::set_profiler(InterferenceProfiler* profiler) {
  advance();  // close the open interval under the previous attachment state
  profiler_ = profiler;
  if (profiler_ != nullptr)
    for (const ActivityPtr& act : running_) refresh_solo_rate(*act);
}

void FlowModel::refresh_solo_rate(Activity& act) const {
  double solo = act.spec_.rate_cap > 0.0 ? act.spec_.rate_cap
                                         : std::numeric_limits<double>::infinity();
  for (const auto& d : act.spec_.demands)
    if (d.amount > 0.0) solo = std::min(solo, d.resource->capacity_ / d.amount);
  act.solo_rate_ = solo;
}

void FlowModel::profile_advance(Time dt) {
  const Time now = engine_.now();
  AttributionReport& rep = profiler_->report_;
  std::vector<double>& cl = profiler_->class_load_;
  cl.assign(resources_.size() * kProfileClasses, 0.0);
  // Pass 1: decompose each resource's load by activity class.  rate x
  // demand is exactly the usage the solver granted on that resource, so the
  // class shares sum to the resource's load.
  for (const ActivityPtr& act : running_) {
    const Activity& a = *act;
    if (!(a.rate_ > 0.0) || !std::isfinite(a.rate_)) continue;
    for (const auto& d : a.spec_.demands)
      cl[d.resource->index_ * kProfileClasses + a.spec_.profile_class] +=
          a.rate_ * d.amount;
  }
  // Pass 2: split each activity's dt.  Activities started exactly at the
  // interval's end (start() pushes to running_ before the reallocate that
  // closes the interval) did not run during it and are skipped; everything
  // older was running for the whole interval, because starting an activity
  // is itself a change point.
  for (const ActivityPtr& act : running_) {
    const Activity& a = *act;
    if (a.started_at_ >= now) continue;
    const ProfileClass v = a.spec_.profile_class;
    rep.busy[v] += dt;
    double iso_dt = dt;
    if (std::isfinite(a.rate_) && std::isfinite(a.solo_rate_) && a.solo_rate_ > 0.0 &&
        a.rate_ < a.solo_rate_)
      iso_dt = dt * (a.rate_ / a.solo_rate_);
    rep.isolated[v] += iso_dt;
    const double contended_dt = dt - iso_dt;
    if (!(contended_dt > 0.0)) continue;
    // Bottleneck: the demanded resource with the highest utilization (a
    // zero-capacity resource carrying load counts as saturated); ties break
    // to the first demand in spec order, deterministically.
    const Resource* bottleneck = nullptr;
    double worst = -1.0;
    for (const auto& d : a.spec_.demands) {
      if (d.amount <= 0.0) continue;
      const Resource* r = d.resource;
      const double u = r->capacity_ > 0.0
                           ? r->load_ / r->capacity_
                           : (r->load_ > 0.0 ? std::numeric_limits<double>::infinity() : 0.0);
      if (u > worst) {
        worst = u;
        bottleneck = r;
      }
    }
    if (bottleneck == nullptr) {
      rep.contended[v][v] += contended_dt;  // rate-cap interactions only
      continue;
    }
    // Charge the delay to the classes loading the bottleneck, minus the
    // victim's own contribution, in proportion to their shares.
    const double* shares = &cl[bottleneck->index_ * kProfileClasses];
    double own = 0.0;
    if (a.rate_ > 0.0 && std::isfinite(a.rate_))
      for (const auto& d : a.spec_.demands)
        if (d.resource == bottleneck) own += a.rate_ * d.amount;
    double total = 0.0;
    double others[kProfileClasses];
    for (std::size_t c = 0; c < kProfileClasses; ++c) {
      double s = shares[c];
      if (c == v) s = std::max(0.0, s - own);
      others[c] = s;
      total += s;
    }
    if (total > 0.0) {
      for (std::size_t c = 0; c < kProfileClasses; ++c)
        if (others[c] > 0.0) rep.contended[v][c] += contended_dt * (others[c] / total);
    } else {
      // Nobody else loads the bottleneck (e.g. self-saturation of a
      // degraded resource): the class keeps its own delay.
      rep.contended[v][v] += contended_dt;
    }
  }
}

Time FlowModel::predicted_finish(const Activity& act) const {
  if (!std::isfinite(act.rate_)) return act.base_time_;  // unconstrained: done now
  if (act.rate_ <= 0.0) return kNever;  // stalled until some change point
  const double remaining = act.spec_.work - act.work_base_;
  if (remaining <= 0.0) return act.base_time_;
  return act.base_time_ + remaining / act.rate_;
}

ActivityPtr FlowModel::detach_running(Activity* act) {
  const std::size_t slot = act->run_slot_;
  ActivityPtr owned = std::move(running_[slot]);
  if (slot != running_.size() - 1) {
    running_[slot] = std::move(running_.back());
    running_[slot]->run_slot_ = slot;
  }
  running_.pop_back();
  act->run_slot_ = Activity::kNoSlot;
  return owned;
}

void FlowModel::reallocate() {
  advance();
  const Time now = engine_.now();

  // Harvest activities whose predicted completion instant has arrived.
  // Rates are constant between change points, so the prediction is exact:
  // no O(running) completion scan.  Same-instant completions are processed
  // in start order (seq), matching the insertion-ordered scan this replaces.
  harvest_.clear();
  while (!completion_heap_.empty() && completion_heap_.front()->predicted_finish_ <= now) {
    Activity* a = completion_heap_.front();
    heap_erase(a);
    harvest_.push_back(a);
  }
  if (harvest_.size() > 1)
    std::sort(harvest_.begin(), harvest_.end(),
              [](const Activity* a, const Activity* b) { return a->seq_ < b->seq_; });
  for (Activity* a : harvest_) {
    a->work_base_ = a->spec_.work;
    a->base_time_ = now;
    a->finished_at_ = now;
    a->rate_ = 0.0;
    if (a->flow_id_ != Activity::kNoSlot) {
      flow_act_[a->flow_id_] = nullptr;
      solver_.remove_flow(a->flow_id_);
      a->flow_id_ = Activity::kNoSlot;
    }
    ActivityPtr done = detach_running(a);
    trace_activity(*done, "");
    done->done_.set();
  }

  // Re-solve the dirty components (all of them on the reference path).
  obs_resolves_->add(1);
  if (!incremental_) solver_.mark_all_dirty();
  if (obs_reg_->enabled()) {
    auto wall0 = std::chrono::steady_clock::now();
    solver_.solve();
    obs_solve_wall_us_->record(
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - wall0)
            .count());
  } else {
    solver_.solve();
  }
  const MaxMinSolver::Stats& st = solver_.stats();
  obs_resolves_full_->add(static_cast<double>(st.full_solves - last_full_solves_));
  obs_resolves_partial_->add(static_cast<double>(st.partial_solves - last_partial_solves_));
  obs_flow_visits_->add(static_cast<double>(st.flow_visits - last_flow_visits_));
  obs_components_solved_->add(
      static_cast<double>(st.components_solved - last_components_solved_));
  last_full_solves_ = st.full_solves;
  last_partial_solves_ = st.partial_solves;
  last_flow_visits_ = st.flow_visits;
  last_components_solved_ = st.components_solved;

  // Publish loads/pressures of solved components; untouched resources keep
  // their previous values verbatim.  Sampled granted rates: one
  // counter-track point per resource whose load changed at this re-solve
  // (Perfetto renders these as step curves).
  obs::Tracer& tracer = obs_reg_->tracer();
  const bool tracing = tracer.on();
  const bool obs_on = obs_reg_->enabled();
  for (std::size_t ridx : solver_.touched_resources()) {
    Resource* r = resources_[ridx].get();
    r->load_ = solver_.load(ridx);
    r->pressure_ = solver_.pressure(ridx);
    if (obs_on) {
      // Utilization/pressure gauges feed the time-resolved sampler; gated
      // here (not just inside set()) so the disabled hot path skips the
      // division too.
      r->obs_util_->set(r->utilization());
      r->obs_pressure_->set(r->pressure_);
    }
    if (tracing && r->load_ != r->obs_last_sampled_load_) {
      tracer.counter_sample(r->obs_load_series_, now, r->load_);
      r->obs_last_sampled_load_ = r->load_;
    }
  }

  // Only activities whose rate actually changed get their progress
  // materialized and their completion prediction recomputed.
  for (MaxMinSolver::FlowId f : solver_.changed_flows()) {
    Activity* a = flow_act_[f];
    if (!a) continue;
    if (a->base_time_ != now) {
      double w = !std::isfinite(a->rate_)
                     ? a->spec_.work
                     : a->work_base_ + a->rate_ * (now - a->base_time_);
      a->work_base_ = w > a->spec_.work ? a->spec_.work : w;
      a->base_time_ = now;
    }
    a->rate_ = solver_.rate(f);
    heap_set(a, predicted_finish(*a));
  }

  // One engine timer at the earliest predicted completion.  retime() gives
  // the event a fresh FIFO sequence (identical ordering semantics to the
  // cancel-and-reschedule pattern it replaces) without abandoning a node.
  const Time next =
      completion_heap_.empty() ? kNever : completion_heap_.front()->predicted_finish_;
  if (next < kNever) {
    if (!engine_.retime(timer_, next))
      timer_ = engine_.call_at(next, [this] { reallocate(); });
  } else {
    timer_.cancel();
  }
}

// ---- completion heap --------------------------------------------------------

void FlowModel::heap_sift_up(std::size_t i) {
  Activity* a = completion_heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_before(a, completion_heap_[parent])) break;
    completion_heap_[i] = completion_heap_[parent];
    completion_heap_[i]->heap_pos_ = i;
    i = parent;
  }
  completion_heap_[i] = a;
  a->heap_pos_ = i;
}

void FlowModel::heap_sift_down(std::size_t i) {
  Activity* a = completion_heap_[i];
  const std::size_t n = completion_heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_before(completion_heap_[child + 1], completion_heap_[child]))
      ++child;
    if (!heap_before(completion_heap_[child], a)) break;
    completion_heap_[i] = completion_heap_[child];
    completion_heap_[i]->heap_pos_ = i;
    i = child;
  }
  completion_heap_[i] = a;
  a->heap_pos_ = i;
}

void FlowModel::heap_set(Activity* act, Time finish) {
  act->predicted_finish_ = finish;
  if (!(finish < kNever)) {  // stalled: no completion to schedule
    heap_erase(act);
    return;
  }
  if (act->heap_pos_ == Activity::kNoSlot) {
    act->heap_pos_ = completion_heap_.size();
    completion_heap_.push_back(act);
    heap_sift_up(act->heap_pos_);
  } else {
    heap_sift_up(act->heap_pos_);
    heap_sift_down(act->heap_pos_);
  }
}

void FlowModel::heap_erase(Activity* act) {
  const std::size_t i = act->heap_pos_;
  if (i == Activity::kNoSlot) return;
  act->heap_pos_ = Activity::kNoSlot;
  Activity* last = completion_heap_.back();
  completion_heap_.pop_back();
  if (last != act) {
    completion_heap_[i] = last;
    last->heap_pos_ = i;
    heap_sift_up(i);
    heap_sift_down(i);
  }
}

}  // namespace cci::sim
