#include "sim/flow_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/maxmin.hpp"

namespace cci::sim {

namespace {
/// Completion slack: absorbs linear-progress round-off.
double completion_eps(double work) { return std::max(1.0, work) * 1e-9; }
}  // namespace

void Resource::set_capacity(double capacity) {
  assert(capacity >= 0.0);
  if (capacity == capacity_) return;
  capacity_ = capacity;
  model_->on_capacity_changed();
}

Resource* FlowModel::add_resource(std::string name, double capacity) {
  resources_.push_back(std::unique_ptr<Resource>(
      new Resource(this, resources_.size(), std::move(name), capacity)));
  return resources_.back().get();
}

ActivityPtr FlowModel::start(ActivitySpec spec) {
  auto act = std::make_shared<Activity>(engine_, std::move(spec));
  running_.push_back(act);
  reallocate();
  return act;
}

void FlowModel::cancel(const ActivityPtr& activity) {
  auto it = std::find(running_.begin(), running_.end(), activity);
  if (it == running_.end()) return;
  advance();
  running_.erase(it);
  reallocate();
}

void FlowModel::on_capacity_changed() { reallocate(); }

void FlowModel::advance() {
  const Time now = engine_.now();
  const Time dt = now - last_advance_;
  if (dt > 0.0) {
    for (auto& act : running_) {
      if (!std::isfinite(act->rate_)) {
        act->work_done_ = act->spec_.work;
      } else {
        act->work_done_ = std::min(act->spec_.work, act->work_done_ + act->rate_ * dt);
      }
    }
  }
  last_advance_ = now;
}

void FlowModel::reallocate() {
  advance();
  const Time now = engine_.now();

  // Harvest activities that have completed their work.
  for (std::size_t i = 0; i < running_.size();) {
    auto& act = running_[i];
    if (act->work_done_ + completion_eps(act->spec_.work) >= act->spec_.work) {
      act->work_done_ = act->spec_.work;
      act->finished_at_ = now;
      act->rate_ = 0.0;
      ActivityPtr done = std::move(act);
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      done->done_.set();
    } else {
      ++i;
    }
  }

  // Re-solve the allocation for the surviving set.
  MaxMinProblem problem;
  problem.capacity.reserve(resources_.size());
  for (const auto& r : resources_) problem.capacity.push_back(r->capacity());
  problem.flows.reserve(running_.size());
  for (const auto& act : running_) {
    MaxMinFlow flow;
    flow.weight = act->spec_.weight;
    flow.rate_cap = act->spec_.rate_cap;
    flow.entries.reserve(act->spec_.demands.size());
    for (const auto& d : act->spec_.demands)
      flow.entries.push_back({d.resource->index_, d.amount});
    problem.flows.push_back(std::move(flow));
  }
  MaxMinSolution sol = solve_max_min(problem);
  for (std::size_t i = 0; i < resources_.size(); ++i) resources_[i]->load_ = sol.load[i];
  for (std::size_t i = 0; i < running_.size(); ++i) running_[i]->rate_ = sol.rate[i];

  // Demand pressure: what each flow would push if it ran alone.
  for (auto& r : resources_) r->pressure_ = 0.0;
  for (const auto& act : running_) {
    double solo = act->spec_.rate_cap > 0.0 ? act->spec_.rate_cap
                                            : std::numeric_limits<double>::infinity();
    for (const auto& d : act->spec_.demands) {
      if (d.amount <= 0.0) continue;
      solo = std::min(solo, d.resource->capacity() / d.amount);
    }
    if (!std::isfinite(solo)) continue;
    for (const auto& d : act->spec_.demands) {
      Resource* r = d.resource;
      if (r->capacity() > 0.0) r->pressure_ += solo * d.amount / r->capacity();
    }
  }

  // Schedule the next completion.
  Time next = kNever;
  for (const auto& act : running_) {
    double remaining = act->spec_.work - act->work_done_;
    if (!std::isfinite(act->rate_)) {
      next = now;  // unconstrained activity finishes immediately
    } else if (act->rate_ > 0.0) {
      next = std::min(next, now + remaining / act->rate_);
    }
    // rate == 0 with remaining work: stalled until some change point.
  }
  timer_.cancel();
  if (next < kNever) timer_ = engine_.call_at(next, [this] { reallocate(); });
}

}  // namespace cci::sim
