#include "sim/flow_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "sim/maxmin.hpp"

namespace cci::sim {

namespace {
/// Completion slack: absorbs linear-progress round-off.
double completion_eps(double work) { return std::max(1.0, work) * 1e-9; }
}  // namespace

FlowModel::FlowModel(Engine& engine) : engine_(engine) {
  obs_reg_ = &obs::Registry::global();
  obs_resolves_ = &obs_reg_->counter("sim.flow.resolves");
  obs_started_ = &obs_reg_->counter("sim.flow.activities_started");
  obs_solve_wall_us_ = &obs_reg_->histogram("sim.flow.solve_wall_us");
}

void Resource::set_capacity(double capacity) {
  assert(capacity >= 0.0);
  if (capacity == capacity_) return;
  capacity_ = capacity;
  model_->on_capacity_changed();
}

Resource* FlowModel::add_resource(std::string name, double capacity) {
  resources_.push_back(std::unique_ptr<Resource>(
      new Resource(this, resources_.size(), std::move(name), capacity)));
  Resource* r = resources_.back().get();
  r->obs_work_ = &obs_reg_->counter("sim.resource." + r->name() + ".work_units");
  r->obs_load_series_ = "sim.resource." + r->name() + ".load";
  return r;
}

ActivityPtr FlowModel::start(ActivitySpec spec) {
  auto act = std::make_shared<Activity>(engine_, std::move(spec));
  running_.push_back(act);
  obs_started_->add(1);
  reallocate();
  return act;
}

void FlowModel::cancel(const ActivityPtr& activity) {
  auto it = std::find(running_.begin(), running_.end(), activity);
  if (it == running_.end()) return;
  advance();
  running_.erase(it);
  trace_activity(*activity, " (cancelled)");
  reallocate();
}

void FlowModel::trace_activity(const Activity& act, const char* suffix) {
  obs::Tracer& tracer = obs_reg_->tracer();
  if (!tracer.on()) return;
  const auto& spec = act.spec();
  const std::string& where =
      spec.demands.empty() ? "unbound" : spec.demands.front().resource->name();
  obs::TrackId track = tracer.track("sim.res." + where);
  std::string label = spec.label.empty() ? "activity" : spec.label;
  tracer.span(track, label + suffix, act.started_at(), engine_.now());
}

void FlowModel::on_capacity_changed() { reallocate(); }

void FlowModel::advance() {
  const Time now = engine_.now();
  const Time dt = now - last_advance_;
  if (dt > 0.0) {
    if (obs_reg_->enabled()) {
      // Work-unit integral per resource: loads were constant since the last
      // change point, so load * dt is exact (bytes moved per controller).
      for (auto& r : resources_)
        if (r->load_ > 0.0) r->obs_work_->add(r->load_ * dt);
    }
    for (auto& act : running_) {
      if (!std::isfinite(act->rate_)) {
        act->work_done_ = act->spec_.work;
      } else {
        act->work_done_ = std::min(act->spec_.work, act->work_done_ + act->rate_ * dt);
      }
    }
  }
  last_advance_ = now;
}

void FlowModel::reallocate() {
  advance();
  const Time now = engine_.now();

  // Harvest activities that have completed their work.
  for (std::size_t i = 0; i < running_.size();) {
    auto& act = running_[i];
    if (act->work_done_ + completion_eps(act->spec_.work) >= act->spec_.work) {
      act->work_done_ = act->spec_.work;
      act->finished_at_ = now;
      act->rate_ = 0.0;
      ActivityPtr done = std::move(act);
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      trace_activity(*done, "");
      done->done_.set();
    } else {
      ++i;
    }
  }

  // Re-solve the allocation for the surviving set.
  MaxMinProblem problem;
  problem.capacity.reserve(resources_.size());
  for (const auto& r : resources_) problem.capacity.push_back(r->capacity());
  problem.flows.reserve(running_.size());
  for (const auto& act : running_) {
    MaxMinFlow flow;
    flow.weight = act->spec_.weight;
    flow.rate_cap = act->spec_.rate_cap;
    flow.entries.reserve(act->spec_.demands.size());
    for (const auto& d : act->spec_.demands)
      flow.entries.push_back({d.resource->index_, d.amount});
    problem.flows.push_back(std::move(flow));
  }
  obs_resolves_->add(1);
  MaxMinSolution sol;
  if (obs_reg_->enabled()) {
    auto wall0 = std::chrono::steady_clock::now();
    sol = solve_max_min(problem);
    obs_solve_wall_us_->record(
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - wall0)
            .count());
  } else {
    sol = solve_max_min(problem);
  }
  for (std::size_t i = 0; i < resources_.size(); ++i) resources_[i]->load_ = sol.load[i];
  for (std::size_t i = 0; i < running_.size(); ++i) running_[i]->rate_ = sol.rate[i];

  // Sampled granted rates: one counter-track point per resource whose load
  // changed at this re-solve (Perfetto renders these as step curves).
  obs::Tracer& tracer = obs_reg_->tracer();
  if (tracer.on()) {
    for (auto& r : resources_) {
      if (r->load_ != r->obs_last_sampled_load_) {
        tracer.counter_sample(r->obs_load_series_, now, r->load_);
        r->obs_last_sampled_load_ = r->load_;
      }
    }
  }

  // Demand pressure: what each flow would push if it ran alone.
  for (auto& r : resources_) r->pressure_ = 0.0;
  for (const auto& act : running_) {
    double solo = act->spec_.rate_cap > 0.0 ? act->spec_.rate_cap
                                            : std::numeric_limits<double>::infinity();
    for (const auto& d : act->spec_.demands) {
      if (d.amount <= 0.0) continue;
      solo = std::min(solo, d.resource->capacity() / d.amount);
    }
    if (!std::isfinite(solo)) continue;
    for (const auto& d : act->spec_.demands) {
      Resource* r = d.resource;
      if (r->capacity() > 0.0) r->pressure_ += solo * d.amount / r->capacity();
    }
  }

  // Schedule the next completion.
  Time next = kNever;
  for (const auto& act : running_) {
    double remaining = act->spec_.work - act->work_done_;
    if (!std::isfinite(act->rate_)) {
      next = now;  // unconstrained activity finishes immediately
    } else if (act->rate_ > 0.0) {
      next = std::min(next, now + remaining / act->rate_);
    }
    // rate == 0 with remaining work: stalled until some change point.
  }
  timer_.cancel();
  if (next < kNever) timer_ = engine_.call_at(next, [this] { reallocate(); });
}

}  // namespace cci::sim
