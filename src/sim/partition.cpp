#include "sim/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace cci::sim {

namespace {

/// Capacity between group g and each shard under `shard_of` (scratch is
/// reused across calls to stay allocation-light).
void edge_weight_to_shards(const GroupGraph& graph, const std::vector<int>& shard_of,
                           int g, std::vector<double>& weight) {
  std::fill(weight.begin(), weight.end(), 0.0);
  for (const GroupGraph::Edge& e : graph.edges) {
    if (e.a == g)
      weight[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(e.b)])] +=
          e.capacity;
    else if (e.b == g)
      weight[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(e.a)])] +=
          e.capacity;
  }
}

}  // namespace

double cut_capacity(const GroupGraph& graph, const std::vector<int>& shard_of) {
  double cut = 0.0;
  for (const GroupGraph::Edge& e : graph.edges)
    if (shard_of[static_cast<std::size_t>(e.a)] != shard_of[static_cast<std::size_t>(e.b)])
      cut += e.capacity;
  return cut;
}

double max_shard_load(const GroupGraph& graph, const std::vector<int>& shard_of) {
  double worst = 0.0;
  std::vector<double> load;
  for (int s : shard_of)
    if (static_cast<std::size_t>(s) >= load.size())
      load.resize(static_cast<std::size_t>(s) + 1, 0.0);
  for (std::size_t g = 0; g < shard_of.size(); ++g)
    load[static_cast<std::size_t>(shard_of[g])] +=
        g < graph.load.size() ? graph.load[g] : 0.0;
  for (double l : load) worst = std::max(worst, l);
  return worst;
}

std::vector<int> partition_groups(const GroupGraph& graph, int shards) {
  const int groups = graph.groups;
  std::vector<int> shard_of(static_cast<std::size_t>(std::max(groups, 0)), 0);
  if (groups <= 0 || shards <= 1) return shard_of;
  if (groups <= shards) {
    for (int g = 0; g < groups; ++g) shard_of[static_cast<std::size_t>(g)] = g;
    return shard_of;
  }

  // Contiguous-by-load seed: boundary s ends at the smallest prefix whose
  // load reaches (s+1)/shards of the total, while leaving enough groups for
  // the remaining shards.  Group order is the topology's builder order, so
  // dragonfly groups / fat-tree leaves that are physically adjacent start
  // on the same shard.
  double total = 0.0;
  for (int g = 0; g < groups; ++g)
    total += g < static_cast<int>(graph.load.size())
                 ? graph.load[static_cast<std::size_t>(g)]
                 : 0.0;
  double prefix = 0.0;
  int shard = 0;
  for (int g = 0; g < groups; ++g) {
    const int remaining_groups = groups - g;
    const int remaining_shards = shards - shard;
    if (remaining_groups == remaining_shards && shard < shards - 1 &&
        g > 0 && shard_of[static_cast<std::size_t>(g - 1)] == shard)
      ++shard;  // exactly one group left per remaining shard
    shard_of[static_cast<std::size_t>(g)] = shard;
    prefix += g < static_cast<int>(graph.load.size())
                  ? graph.load[static_cast<std::size_t>(g)]
                  : 0.0;
    // At most one advance per group: a group heavy enough to cross several
    // thresholds at once must not skip shards (each subsequent group then
    // opens the next shard, so none is left empty).
    if (shard < shards - 1 &&
        prefix >= total * (static_cast<double>(shard) + 1.0) /
                      static_cast<double>(shards) &&
        groups - (g + 1) > shards - (shard + 1))
      ++shard;
    if (shard < shards - 1 && groups - (g + 1) == shards - (shard + 1)) ++shard;
  }

  // Bounded refinement: move a group to an adjacent shard when that
  // strictly lowers the cut without emptying its shard or worsening the
  // max load.  Scans are in group order and pick the deterministic best
  // candidate, so the result is a pure function of the graph.
  std::vector<double> shard_load(static_cast<std::size_t>(shards), 0.0);
  std::vector<int> shard_count(static_cast<std::size_t>(shards), 0);
  for (int g = 0; g < groups; ++g) {
    const int s = shard_of[static_cast<std::size_t>(g)];
    shard_load[static_cast<std::size_t>(s)] +=
        g < static_cast<int>(graph.load.size())
            ? graph.load[static_cast<std::size_t>(g)]
            : 0.0;
    ++shard_count[static_cast<std::size_t>(s)];
  }
  std::vector<double> weight(static_cast<std::size_t>(shards), 0.0);
  const int max_passes = 2 * groups;
  for (int pass = 0; pass < max_passes; ++pass) {
    bool moved = false;
    for (int g = 0; g < groups; ++g) {
      const int from = shard_of[static_cast<std::size_t>(g)];
      if (shard_count[static_cast<std::size_t>(from)] <= 1) continue;
      edge_weight_to_shards(graph, shard_of, g, weight);
      const double gl = g < static_cast<int>(graph.load.size())
                            ? graph.load[static_cast<std::size_t>(g)]
                            : 0.0;
      const double max_before =
          *std::max_element(shard_load.begin(), shard_load.end());
      int best_to = -1;
      double best_gain = 0.0;
      for (int to = 0; to < shards; ++to) {
        if (to == from) continue;
        // Moving g from `from` to `to` changes the cut by
        // (weight to current shard mates) - (weight to `to`).
        const double gain = weight[static_cast<std::size_t>(to)] -
                            weight[static_cast<std::size_t>(from)];
        if (gain <= best_gain) continue;
        const double to_load = shard_load[static_cast<std::size_t>(to)] + gl;
        if (to_load > max_before) continue;  // never worsen balance
        best_gain = gain;
        best_to = to;
      }
      if (best_to < 0) continue;
      shard_of[static_cast<std::size_t>(g)] = best_to;
      shard_load[static_cast<std::size_t>(from)] -= gl;
      shard_load[static_cast<std::size_t>(best_to)] += gl;
      --shard_count[static_cast<std::size_t>(from)];
      ++shard_count[static_cast<std::size_t>(best_to)];
      moved = true;
    }
    if (!moved) break;
  }
  return shard_of;
}

}  // namespace cci::sim
