// A cancellable timer queue: the single ordering structure of the engine.
//
// Entries are (time, sequence, callback).  Cancellation is lazy: a cancelled
// entry stays in the heap but is skipped when popped.  Sequence numbers give
// deterministic FIFO ordering among entries scheduled for the same instant,
// which is what makes whole simulations reproducible run-to-run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace cci::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Handle used to cancel or retime a scheduled event.  Default-constructed
  /// handles are inert; cancelling twice is harmless.
  class Handle {
   public:
    Handle() = default;
    /// True if the event is still pending (not fired, not cancelled).
    [[nodiscard]] bool pending() const { return entry_ && !entry_->cancelled && !entry_->fired; }
    void cancel() {
      if (entry_) entry_->cancelled = true;
    }

   private:
    friend class EventQueue;
    struct Entry {
      Time time = kNever;
      std::uint64_t seq = 0;
      Callback fn;
      bool cancelled = false;
      bool fired = false;
    };
    explicit Handle(std::shared_ptr<Entry> e) : entry_(std::move(e)) {}
    std::shared_ptr<Entry> entry_;
  };

  /// Schedule `fn` to run at absolute time `t`.
  Handle schedule(Time t, Callback fn) {
    auto entry = std::make_shared<Handle::Entry>();
    entry->time = t;
    entry->seq = next_seq_++;
    entry->fn = std::move(fn);
    heap_.push(entry);
    return Handle(entry);
  }

  [[nodiscard]] bool empty() const {
    prune();
    return heap_.empty();
  }

  /// Time of the earliest live event, or kNever if none.
  [[nodiscard]] Time next_time() const {
    prune();
    return heap_.empty() ? kNever : heap_.top()->time;
  }

  /// Pop and return the earliest live event's callback, marking it fired.
  /// Precondition: !empty().
  std::pair<Time, Callback> pop() {
    prune();
    auto entry = heap_.top();
    heap_.pop();
    entry->fired = true;
    return {entry->time, std::move(entry->fn)};
  }

  [[nodiscard]] std::size_t size_estimate() const { return heap_.size(); }

 private:
  using EntryPtr = std::shared_ptr<Handle::Entry>;
  struct Later {
    bool operator()(const EntryPtr& a, const EntryPtr& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  /// Drop cancelled entries sitting at the top so next_time()/pop() see a
  /// live event.
  void prune() const {
    while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
  }

  mutable std::priority_queue<EntryPtr, std::vector<EntryPtr>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cci::sim
