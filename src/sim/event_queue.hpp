// A cancellable timer queue: the single ordering structure of the engine.
//
// Entries are (time, sequence, callback) nodes in an index-tracked binary
// heap.  Sequence numbers give deterministic FIFO ordering among entries
// scheduled for the same instant, which is what makes whole simulations
// reproducible run-to-run.
//
// Churn control (the engine's re-solve loop retimes one timer per change
// point, thousands of times per simulated second):
//
//  * retime() repositions a pending entry in place — no abandoned node is
//    left behind, unlike the classic cancel-and-reschedule pattern;
//  * entry nodes are pooled on an intrusive free-list and recycled as soon
//    as they fire or get pruned, so steady-state operation performs no
//    allocation;
//  * cancellation is lazy (the entry is skipped when it surfaces), but a
//    compaction pass eagerly sweeps cancelled entries whenever they exceed
//    half the heap, bounding the heap to <= 2x its live size.
//
// Handles are small (pointer + generation) and may be freely copied.  They
// must not outlive the owning queue (in practice: the Engine).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace cci::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Handle used to cancel or retime a scheduled event.  Default-constructed
  /// handles are inert; cancelling twice is harmless.
  class Handle {
   public:
    Handle() = default;
    /// True if the event is still pending (not fired, not cancelled).
    [[nodiscard]] bool pending() const {
      return entry_ && entry_->gen == gen_ && entry_->state == State::kPending;
    }
    void cancel() {
      if (pending()) entry_->owner->cancel_entry(entry_);
    }

   private:
    friend class EventQueue;
    enum class State : std::uint8_t { kFree, kPending, kCancelled, kFired };
    struct Entry {
      Time time = kNever;
      std::uint64_t seq = 0;
      std::uint64_t gen = 0;  ///< bumped on recycle; stale handles go inert
      Callback fn;
      EventQueue* owner = nullptr;
      Entry* next_free = nullptr;  ///< intrusive free-list link
      std::size_t heap_pos = 0;
      State state = State::kFree;
    };
    Handle(Entry* e, std::uint64_t gen) : entry_(e), gen_(gen) {}
    Entry* entry_ = nullptr;
    std::uint64_t gen_ = 0;
  };

  /// Schedule `fn` to run at absolute time `t`.
  Handle schedule(Time t, Callback fn) {
    Entry* e = alloc_entry();
    e->time = t;
    e->seq = next_seq_++;
    e->fn = std::move(fn);
    e->state = Handle::State::kPending;
    e->heap_pos = heap_.size();
    heap_.push_back(e);
    sift_up(e->heap_pos);
    return Handle(e, e->gen);
  }

  /// Move a pending event to time `t`, keeping its callback.  The event is
  /// re-sequenced as if freshly scheduled, so same-instant FIFO ordering is
  /// identical to a cancel-and-reschedule (but with zero heap garbage).
  /// Returns false (and does nothing) if the handle is not pending.
  bool retime(const Handle& h, Time t) {
    if (!h.pending() || h.entry_->owner != this) return false;
    // Pops shrink the heap without sweeping, so the cancelled fraction can
    // drift past the half bound between cancellations; retime bursts (the
    // flow model's per-change-point timer moves) would then sift through a
    // bloated heap thousands of times.  Re-check the bound here too.
    maybe_compact();
    Entry* e = h.entry_;
    e->time = t;
    e->seq = next_seq_++;
    sift_up(e->heap_pos);
    sift_down(e->heap_pos);
    return true;
  }

  [[nodiscard]] bool empty() const {
    prune();
    return heap_.empty();
  }

  /// Time of the earliest live event, or kNever if none.
  [[nodiscard]] Time next_time() const {
    prune();
    return heap_.empty() ? kNever : heap_.front()->time;
  }

  /// Pop and return the earliest live event's callback, marking it fired.
  /// Precondition: !empty().
  std::pair<Time, Callback> pop() {
    prune();
    Entry* e = heap_.front();
    remove_at(0);
    std::pair<Time, Callback> out{e->time, std::move(e->fn)};
    e->state = Handle::State::kFired;
    free_entry(e);
    return out;
  }

  /// Heap slots currently occupied (live + not-yet-swept cancelled).
  [[nodiscard]] std::size_t size_estimate() const { return heap_.size(); }
  /// Events that are actually pending.
  [[nodiscard]] std::size_t live_size() const { return heap_.size() - n_cancelled_; }

  /// Invariant audit (O(n)): every heap entry's backlink is correct, only
  /// pending/cancelled entries occupy heap slots, and the cancelled count
  /// backing live_size() matches the heap contents.  Throws std::logic_error
  /// on violation.  Run by the engine under the watchdog; not a hot path.
  void check_live_size() const {
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const Entry* e = heap_[i];
      if (e->heap_pos != i)
        throw std::logic_error("EventQueue: heap_pos backlink out of sync");
      if (e->state == Handle::State::kCancelled)
        ++cancelled;
      else if (e->state != Handle::State::kPending)
        throw std::logic_error("EventQueue: freed/fired entry still in heap");
    }
    if (cancelled != n_cancelled_)
      throw std::logic_error("EventQueue: live_size() out of sync with heap");
  }

 private:
  using Entry = Handle::Entry;

  Entry* alloc_entry() {
    Entry* e;
    if (free_head_) {
      e = free_head_;
      free_head_ = e->next_free;
      e->next_free = nullptr;
    } else {
      pool_.emplace_back();
      e = &pool_.back();
      e->owner = this;
    }
    return e;
  }

  void free_entry(Entry* e) {
    ++e->gen;  // invalidate outstanding handles
    e->fn = nullptr;
    e->state = Handle::State::kFree;
    e->next_free = free_head_;
    free_head_ = e;
  }

  void cancel_entry(Entry* e) {
    e->state = Handle::State::kCancelled;
    ++n_cancelled_;
    maybe_compact();
  }

  /// Eager sweep: never let cancelled entries exceed half the heap.
  void maybe_compact() {
    if (heap_.size() >= 16 && n_cancelled_ * 2 > heap_.size()) compact();
  }

  [[nodiscard]] bool before(const Entry* a, const Entry* b) const {
    if (a->time != b->time) return a->time < b->time;
    return a->seq < b->seq;
  }

  void sift_up(std::size_t i) const {
    Entry* e = heap_[i];
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      heap_[i]->heap_pos = i;
      i = parent;
    }
    heap_[i] = e;
    e->heap_pos = i;
  }

  void sift_down(std::size_t i) const {
    Entry* e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], e)) break;
      heap_[i] = heap_[child];
      heap_[i]->heap_pos = i;
      i = child;
    }
    heap_[i] = e;
    e->heap_pos = i;
  }

  /// Remove the entry at heap position i (does not free it).
  void remove_at(std::size_t i) const {
    Entry* last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      heap_[i] = last;
      last->heap_pos = i;
      sift_up(i);
      sift_down(i);
    }
  }

  /// Drop cancelled entries sitting at the top so next_time()/pop() see a
  /// live event.
  void prune() const {
    while (!heap_.empty() && heap_.front()->state == Handle::State::kCancelled) {
      Entry* e = heap_.front();
      remove_at(0);
      --n_cancelled_;
      const_cast<EventQueue*>(this)->free_entry(e);
    }
  }

  /// Sweep every cancelled entry and re-heapify in O(n).
  void compact() {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      Entry* e = heap_[i];
      if (e->state == Handle::State::kCancelled) {
        free_entry(e);
      } else {
        heap_[keep] = e;
        e->heap_pos = keep;
        ++keep;
      }
    }
    heap_.resize(keep);
    n_cancelled_ = 0;
    for (std::size_t i = keep / 2; i-- > 0;) sift_down(i);
  }

  mutable std::vector<Entry*> heap_;
  mutable std::size_t n_cancelled_ = 0;
  std::deque<Entry> pool_;  ///< stable storage; nodes recycled via free-list
  Entry* free_head_ = nullptr;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cci::sim
