// Topology-group partitioning for cross-shard fabric simulation.
//
// shard_assignment() (shard.hpp) refuses to cut a solver component: flows
// coupled through a hot fabric all land on one shard, which on a
// thousand-node fat-tree/dragonfly degenerates ShardGroup to serial.  This
// module is the other half of the carve: given the *topology group graph*
// (groups as vertices weighted by host count, inter-group links as edges
// weighted by capacity), partition_groups() maps every group to a shard,
// cutting at minimum-boundary-capacity edges while keeping per-shard host
// load balanced.  The cut links become boundary proxy resources
// (ShardGroup::add_boundary_link) whose capacities are exchanged at every
// window barrier; the smaller the cut capacity, the less proxy traffic and
// the weaker the cross-shard coupling the exchange has to track.
//
// Determinism: the partition is a pure function of the GroupGraph — a
// contiguous-by-load initial split refined by bounded, strictly-improving
// boundary moves scanned in vertex order.  No RNG, no pointers, no
// hashing, so a fixed shard count always produces the same carve.
#pragma once

#include <vector>

namespace cci::sim {

/// Condensed topology: one vertex per carve-eligible group (dragonfly
/// group, fat-tree leaf), one undirected edge per inter-group coupling.
/// Shared fabric that belongs to no group (fat-tree spines) is modelled by
/// the edges it induces, not as a vertex.
struct GroupGraph {
  struct Edge {
    int a = 0;
    int b = 0;
    double capacity = 0.0;  ///< summed bandwidth of links cut if a, b split
  };
  int groups = 0;
  std::vector<double> load;  ///< per-group weight (hosts attached)
  std::vector<Edge> edges;
};

/// Deterministic map group -> shard for `shards` shards (all >= 1 even if
/// some end up empty; callers assert >1 *populated* shard where it
/// matters).  groups <= shards degenerates to the identity.  Otherwise:
/// contiguous runs of groups with near-equal total load seed the split,
/// then a bounded refinement pass moves boundary groups between adjacent
/// shards whenever the move strictly lowers total cut capacity without
/// worsening the maximum shard load.  Every group is assigned a shard in
/// [0, shards); with groups > shards no shard is left empty.
std::vector<int> partition_groups(const GroupGraph& graph, int shards);

/// Total capacity of edges whose endpoints land on different shards.
double cut_capacity(const GroupGraph& graph, const std::vector<int>& shard_of);

/// Largest per-shard load sum under `shard_of`.
double max_shard_load(const GroupGraph& graph, const std::vector<int>& shard_of);

}  // namespace cci::sim
