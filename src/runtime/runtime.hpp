// Mini task-based runtime (StarPU-like, §5).
//
// Per rank: a scheduler list, worker threads bound one-per-core, one
// reserved main core and one reserved communication core (StarPU's default
// resource split).  Modelled mechanisms, each traceable to a paper section:
//
//  * software-stack overhead on the message path (§5.2): submit -> worker
//    -> communication thread hops, one fixed cost per machine;
//  * worker busy-polling with exponential backoff (§5.4): idle workers
//    hammer the shared task list.  Two effects: steady coherence traffic
//    on the NUMA node holding the list (a standing flow whose rate follows
//    the backoff period) and lock contention that delays the comm thread's
//    progression (added to the world's progress overhead).  Both scale
//    with the number of polling workers and vanish when workers are paused;
//  * task execution: roofline-coupled activities on worker cores, with
//    memory-stall accounting (the pmu-tools counter of Fig. 10).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/workload.hpp"
#include "mpi/world.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/sync.hpp"

namespace cci::runtime {

struct RuntimeConfig {
  /// Worker count; -1 = all cores minus the reserved main + comm cores.
  int workers = -1;
  /// Exponential-backoff polling bounds, in nop instructions (§5.4: the
  /// default maximum is 32; "huge" 10000 approximates paused workers).
  int backoff_min_nops = 1;
  int backoff_max_nops = 32;
  bool workers_paused = false;
  /// NUMA node holding the scheduler list.
  int list_numa = 0;
  /// Cache-line bytes a poll moves on the list's NUMA node (DRAM-visible
  /// coherence share of the poll; most polls stay in LLC).
  double poll_dram_bytes = 8.0;
  /// Extra cycles per poll beyond the nops (lock + list inspection).
  double poll_cost_cycles = 40.0;
  /// One-way runtime software-stack overhead added to each message (§5.2:
  /// +38 us on henri, +23 us on billy, +45 us on pyxis).
  double message_overhead = 38e-6;
  /// Future-work feature from the paper's conclusion: schedule tasks to
  /// workers whose core shares the task data's NUMA node, minimising
  /// cross-node traffic.  Off = plain FIFO (StarPU eager-like).
  bool numa_aware_scheduling = false;
  /// Comm-thread delay per message per polling worker at full polling rate
  /// (lock contention).  Zero on machines whose locking showed no effect
  /// (§5.4: billy, pyxis).
  double lock_delay_per_worker = 60e-9;

  static RuntimeConfig for_machine(const std::string& machine_name);
};

/// What a task runs: kernel traits plus the amount of work.
struct Codelet {
  std::string name;
  hw::KernelTraits traits;
  double iters = 0.0;
};

class Runtime;

/// Node of the per-rank task DAG.  Build with Runtime::add_task /
/// add_send / add_recv, connect with add_dependency, then run().
class Task {
 public:
  enum class Kind { kCompute, kSend, kRecv };

 private:
  friend class Runtime;
  Kind kind = Kind::kCompute;
  Codelet codelet;
  int data_numa = 0;
  // Communication tasks:
  int peer = -1;
  int tag = 0;
  mpi::MsgView msg;
  // Dependencies:
  int pending = 0;
  std::vector<Task*> successors;
  bool queued = false;
};

class Runtime {
 public:
  Runtime(mpi::World& world, int rank, RuntimeConfig config);
  ~Runtime();

  [[nodiscard]] int rank() const { return rank_; }
  mpi::World& world() { return world_; }
  sim::Engine& engine() { return world_.engine(); }
  [[nodiscard]] int worker_count() const { return static_cast<int>(worker_cores_.size()); }
  [[nodiscard]] const std::vector<int>& worker_cores() const { return worker_cores_; }
  const RuntimeConfig& config() const { return config_; }

  // ---- graph construction -------------------------------------------------
  Task* add_task(Codelet codelet, int data_numa);
  Task* add_send(int peer, int tag, mpi::MsgView msg);
  Task* add_recv(int peer, int tag, mpi::MsgView msg);
  /// `after` cannot start until `before` completed.
  static void add_dependency(Task* before, Task* after);

  // ---- execution ------------------------------------------------------------
  /// Start workers + comm thread and release all ready tasks; the returned
  /// event fires when every submitted task has completed.
  sim::OneShotEvent& run();
  /// Graphless mode for §5.4: start the workers so they poll, without any
  /// tasks.  Use world-level ping-pongs to measure the latency impact.
  void start_workers_idle();
  /// Stop workers after the current graph drained (paused-workers mode
  /// simply never starts them).
  void shutdown();

  // ---- failover (fault model) -----------------------------------------------
  /// Opt into worker-death handling: running tasks are executed under an
  /// abortable wait so fail_worker() can reclaim them.  Off by default —
  /// the unarmed hot path is bitwise-identical to the pre-failover runtime.
  void arm_failover() { failover_armed_ = true; }
  [[nodiscard]] bool failover_armed() const { return failover_armed_; }
  /// Kill one worker: cancel its running task (re-enqueued for another
  /// worker), wake it if idle, and keep it out of scheduling forever.
  void fail_worker(std::size_t slot);
  /// Schedule a worker death at an absolute simulation time (arms failover).
  void kill_worker_at(int worker, double at);
  /// Whole-rank death: every worker fails, the comm thread stops, orphaned
  /// tasks are NOT re-executed (the rank is gone, not degraded).
  void halt();
  [[nodiscard]] bool halted() const { return halted_; }
  /// Tasks reclaimed from dead workers and run again elsewhere.
  [[nodiscard]] int tasks_reexecuted() const { return reexecuted_; }

  // ---- §5.2 message path -----------------------------------------------------
  /// One-way runtime overhead currently in effect for this rank's messages
  /// (software stack + polling lock contention).
  [[nodiscard]] double message_overhead() const;

  // ---- metrics ---------------------------------------------------------------
  [[nodiscard]] double mem_stall_fraction() const {
    return stall_samples_ > 0 ? stall_sum_ / static_cast<double>(stall_samples_) : 0.0;
  }
  [[nodiscard]] int tasks_completed() const { return completed_; }
  /// Per-task execution record (Gantt data), collected when tracing is on.
  struct ExecRecord {
    std::string name;
    int core;
    int data_numa;
    double start;
    double end;
  };
  void enable_execution_trace(bool on) { trace_enabled_ = on; }
  [[nodiscard]] const std::vector<ExecRecord>& execution_trace() const { return exec_trace_; }

  /// Fraction of compute tasks that ran on a core of a different NUMA node
  /// than their data (the traffic the NUMA-aware scheduler removes).
  [[nodiscard]] double remote_task_fraction() const {
    return compute_executed_ > 0
               ? static_cast<double>(remote_executed_) / static_cast<double>(compute_executed_)
               : 0.0;
  }

 private:
  sim::Coro worker_loop(std::size_t slot);
  sim::Coro comm_loop();
  void enqueue(Task* task);
  void on_task_done(Task* task);
  /// Queue index a compute task lands in (per-NUMA when numa-aware).
  [[nodiscard]] std::size_t queue_of(const Task* task) const;
  /// Pop the best queued task for a worker (locality first when
  /// numa-aware, FIFO otherwise); nullptr if none.
  Task* pop_for(std::size_t slot);
  /// Steady-state polling period (s) for the current backoff setting.
  [[nodiscard]] double poll_period() const;
  /// Re-derive the standing polling-pressure flow and the comm thread's
  /// lock-contention overhead from the number of currently polling workers.
  void update_polling_pressure();

  mpi::World& world_;
  int rank_;
  RuntimeConfig config_;
  hw::Machine& machine_;
  std::vector<int> worker_cores_;
  int main_core_;

  /// Put a reclaimed task back on the ready queue (counts as re-execution).
  void reexecute(Task* task);

  std::vector<std::unique_ptr<Task>> tasks_;
  /// Per-worker hand-off boxes (idle workers block here).
  struct WorkerSlot {
    int core = -1;
    std::unique_ptr<sim::Mailbox<Task*>> box;
    bool idle = false;
    // Failover state: a dead worker never schedules again; `current` marks
    // the task it holds (for reclamation), `abort` wakes an armed wait.
    bool dead = false;
    Task* current = nullptr;
    sim::ActivityPtr running_act;
    std::unique_ptr<sim::OneShotEvent> abort;
  };
  std::vector<WorkerSlot> slots_;
  /// Ready queues: one per NUMA node when numa-aware, else a single FIFO.
  std::vector<std::deque<Task*>> queues_;
  std::deque<std::size_t> idle_order_;  ///< FIFO of idle worker slots
  std::unique_ptr<sim::Mailbox<Task*>> comm_box_;
  std::unique_ptr<sim::OneShotEvent> all_done_;
  int completed_ = 0;
  int submitted_ = 0;
  bool started_ = false;
  bool shutdown_ = false;
  bool failover_armed_ = false;
  bool halted_ = false;
  int reexecuted_ = 0;

  int polling_workers_ = 0;
  sim::ActivityPtr polling_flow_;

  double stall_sum_ = 0.0;
  int stall_samples_ = 0;
  int compute_executed_ = 0;
  int remote_executed_ = 0;
  bool trace_enabled_ = false;
  std::vector<ExecRecord> exec_trace_;

  // Observability: worker/task/comm metrics plus tracer tracks (one per
  // worker core, one for the comm thread).  Counters aggregate over ranks;
  // gauges and counter-sample series are per rank.
  obs::Registry* obs_reg_ = nullptr;
  obs::Counter* obs_tasks_done_ = nullptr;
  obs::Counter* obs_msgs_ = nullptr;
  obs::Counter* obs_polls_ = nullptr;
  obs::Counter* obs_idle_transitions_ = nullptr;
  obs::Counter* obs_reexec_ = nullptr;
  obs::Gauge* obs_polling_workers_ = nullptr;
  obs::Gauge* obs_lock_delay_ = nullptr;
  obs::Histogram* obs_task_dur_ = nullptr;
  std::vector<obs::TrackId> obs_core_tracks_;
  obs::TrackId obs_comm_track_ = 0;
  obs::TrackId obs_pollers_track_ = 0;
  std::string obs_pollers_series_;
  /// Poll-count time integral: polls = sum over intervals of
  /// (workers polling) * dt / poll_period.
  double obs_polls_last_change_ = 0.0;
  int obs_prev_polling_workers_ = 0;
};

}  // namespace cci::runtime
