#include "runtime/distributed.hpp"

#include <utility>

namespace cci::runtime {

DistributedRuntime::DistributedRuntime(mpi::World& world, const RuntimeConfig& config,
                                       DistributedOptions options)
    : world_(world), opts_(options), coll_(world) {
  for (int r = 0; r < world.size(); ++r)
    rt_.push_back(std::make_unique<Runtime>(world, r, config));
  failure_ = std::make_unique<sim::OneShotEvent>(engine());
  stop_ = std::make_unique<sim::OneShotEvent>(engine());
  last_heard_.assign(static_cast<std::size_t>(ranks()), 0.0);
  dead_.assign(static_cast<std::size_t>(ranks()), false);
}

void DistributedRuntime::declare_dead(int r, const std::string& why) {
  if (dead_.at(static_cast<std::size_t>(r))) return;
  dead_[static_cast<std::size_t>(r)] = true;
  if (dead_rank_ < 0) dead_rank_ = r;
  diagnostic_ = "rank " + std::to_string(r) + ": " + why + " (declared at t=" +
                std::to_string(engine().now()) + "s)";
  failure_->set();
}

void DistributedRuntime::kill_rank(int r, double at) {
  failure_armed_ = true;
  rt_.at(static_cast<std::size_t>(r))->arm_failover();
  engine().call_at(at, [this, r] {
    rt_[static_cast<std::size_t>(r)]->halt();
    if (opts_.heartbeat_interval <= 0.0)
      declare_dead(r, "killed (no heartbeat detection armed)");
  });
}

// ---- heartbeats ------------------------------------------------------------

sim::Coro DistributedRuntime::hb_sender(int r) {
  const double dt = opts_.heartbeat_interval;
  while (!stop_->is_set() && !rt_[static_cast<std::size_t>(r)]->halted()) {
    co_await engine().sleep(dt);
    if (stop_->is_set() || rt_[static_cast<std::size_t>(r)]->halted()) break;
    // Fire-and-forget liveness message; a dead rank simply goes silent.
    world_.isend(r, 0, opts_.heartbeat_tag_base + r, mpi::MsgView{8, 0, 0});
  }
}

sim::Coro DistributedRuntime::hb_monitor(int r) {
  while (!stop_->is_set()) {
    mpi::RequestPtr req = world_.irecv(0, r, opts_.heartbeat_tag_base + r, mpi::MsgView{8, 0, 0});
    sim::WhenAny beat_or_stop = sim::when_any(engine(), {&req->done(), stop_.get()});
    co_await beat_or_stop;
    if (!req->done().is_set()) break;  // stopping; the posted recv is abandoned
    last_heard_[static_cast<std::size_t>(r)] = engine().now();
  }
}

sim::Coro DistributedRuntime::hb_checker() {
  const double timeout = opts_.failure_timeout_factor * opts_.heartbeat_interval;
  while (!stop_->is_set() && !failure_->is_set()) {
    co_await engine().sleep(opts_.heartbeat_interval);
    if (stop_->is_set()) break;
    for (int r = 1; r < ranks(); ++r) {
      if (dead_[static_cast<std::size_t>(r)]) continue;
      const double silent = engine().now() - last_heard_[static_cast<std::size_t>(r)];
      if (silent > timeout)
        declare_dead(r, "no heartbeat for " + std::to_string(silent) + "s (timeout " +
                            std::to_string(timeout) + "s)");
    }
  }
}

void DistributedRuntime::start_heartbeats() {
  if (hb_started_ || opts_.heartbeat_interval <= 0.0) return;
  hb_started_ = true;
  const double now = engine().now();
  for (auto& t : last_heard_) t = now;  // grace period: nobody is late yet
  for (int r = 1; r < ranks(); ++r) {
    engine().spawn(hb_sender(r));
    engine().spawn(hb_monitor(r));
  }
  engine().spawn(hb_checker());
}

// ---- join ------------------------------------------------------------------

sim::Coro DistributedRuntime::legacy_join(std::vector<sim::OneShotEvent*> events) {
  for (auto* e : events) co_await e->wait();
  for (auto& r : rt_) r->shutdown();
}

sim::Coro DistributedRuntime::failure_aware_join(std::vector<sim::OneShotEvent*> events) {
  for (auto* e : events) {
    sim::WhenAny done_or_fail = sim::when_any(engine(), {e, failure_.get()});
    co_await done_or_fail;
    if (failure_->is_set()) break;  // abort: stop waiting on the dead
  }
  stop_->set();
  for (auto& r : rt_)
    if (!r->halted()) r->shutdown();
}

DistributedRuntime::Report DistributedRuntime::run_to_completion() {
  start_heartbeats();
  const double t0 = engine().now();
  std::vector<sim::OneShotEvent*> done;
  done.reserve(rt_.size());
  for (auto& r : rt_) done.push_back(&r->run());
  // The unarmed, heartbeat-free joiner is the historical one — same single
  // spawned process, same sequential awaits, same shutdown order — so
  // healthy runs stay bitwise-identical.
  const bool legacy = !failure_armed_ && opts_.heartbeat_interval <= 0.0;
  engine().spawn(legacy ? legacy_join(std::move(done)) : failure_aware_join(std::move(done)));
  engine().run();

  Report rep;
  rep.completed = !failure_->is_set();
  rep.dead_rank = dead_rank_;
  rep.diagnostic = diagnostic_;
  rep.makespan = engine().now() - t0;
  return rep;
}

// ---- barrier ---------------------------------------------------------------

sim::Coro DistributedRuntime::barrier(int rank, sim::OneShotEvent* done, bool* aborted) {
  barrier_events_.push_back(std::make_unique<sim::OneShotEvent>(engine()));
  sim::OneShotEvent* inner = barrier_events_.back().get();
  engine().spawn(coll_.barrier(rank, inner));
  sim::WhenAny done_or_fail = sim::when_any(engine(), {inner, failure_.get()});
  co_await done_or_fail;
  if (aborted != nullptr) *aborted = !inner->is_set();
  if (done != nullptr) done->set();
}

}  // namespace cci::runtime
