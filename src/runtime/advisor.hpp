// Worker-count advisor — the paper's concluding future-work item:
// "task-based runtime systems could select (automatically) the optimal
// number of workers which reduces memory contention and maximizes
// performances for the whole program execution."
//
// Given a callable that runs the application with N workers and returns
// its makespan, the advisor samples power-of-two counts, then refines
// around the best one.  Deterministic and budget-bounded.
#pragma once

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

namespace cci::runtime {

struct WorkerCountSample {
  int workers;
  double makespan;
};

struct AdvisorReport {
  int best_workers = 1;
  double best_makespan = 0.0;
  std::vector<WorkerCountSample> samples;  ///< in evaluation order
};

/// `makespan_of(n)` must be deterministic for a given n.
inline AdvisorReport select_worker_count(const std::function<double(int)>& makespan_of,
                                         int max_workers) {
  AdvisorReport report;
  std::set<int> tried;
  auto evaluate = [&](int n) {
    n = std::clamp(n, 1, max_workers);
    if (!tried.insert(n).second) return;
    double t = makespan_of(n);
    report.samples.push_back({n, t});
    if (report.best_makespan == 0.0 || t < report.best_makespan) {
      report.best_makespan = t;
      report.best_workers = n;
    }
  };

  // Coarse pass: powers of two plus the extremes.
  for (int n = 1; n < max_workers; n *= 2) evaluate(n);
  evaluate(max_workers);
  // Refine around the current best: halfway to each power-of-two neighbour.
  int b = report.best_workers;
  evaluate(b + std::max(1, b / 2));
  evaluate(b - std::max(1, b / 4));
  evaluate(b + std::max(1, b / 4));
  return report;
}

}  // namespace cci::runtime
