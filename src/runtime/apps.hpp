// Distributed task-graph applications for §6 / Fig. 10.
//
// Dense CG and tiled GEMM over two ranks, built as dependency graphs on the
// mini runtime.  The experiment sweeps the number of workers and records:
//  * the sending-side network bandwidth (profiling-utility metric of §6),
//  * the memory-stall fraction of the computation (pmu-tools counter),
//  * the makespan.
//
// The amount of communication is constant across worker counts, exactly as
// the paper fixes matrix sizes and iteration counts (§6).
#pragma once

#include <cstddef>

#include "hw/machine_config.hpp"
#include "net/network_params.hpp"
#include "runtime/runtime.hpp"

namespace cci::runtime {

struct AppResult {
  double makespan = 0.0;        ///< s
  double sending_bw = 0.0;      ///< B/s, averaged over the two ranks (§6)
  double stall_fraction = 0.0;  ///< mean memory-stall share of compute time
  int tasks = 0;                ///< total tasks executed (both ranks)
};

struct CgAppOptions {
  std::size_t n = 32768;  ///< unknowns (dense matrix row-distributed)
  int iterations = 4;
  int workers = -1;
  int chunks_per_rank = 16;  ///< GEMV row-chunk tasks per iteration
  int ranks = 2;             ///< nodes; p exchanged by a ring allgather
};

struct GemmAppOptions {
  std::size_t m = 4096;     ///< square matrix dimension
  std::size_t tile = 512;   ///< C tile / k-panel width
  int workers = -1;
  int ranks = 2;            ///< nodes; B panels broadcast by their owner
};

/// Run the distributed dense CG task graph on a fresh cluster of
/// `options.ranks` nodes.
AppResult run_cg_app(const hw::MachineConfig& machine, const net::NetworkParams& net,
                     RuntimeConfig rt_config, const CgAppOptions& options);

/// Run the distributed tiled GEMM task graph on a fresh cluster of
/// `options.ranks` nodes.
AppResult run_gemm_app(const hw::MachineConfig& machine, const net::NetworkParams& net,
                       RuntimeConfig rt_config, const GemmAppOptions& options);

}  // namespace cci::runtime
