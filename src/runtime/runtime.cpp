#include "runtime/runtime.hpp"

#include <algorithm>
#include <cassert>

#include "hw/frequency_governor.hpp"

namespace cci::runtime {

namespace {
/// Time the scheduler lock is held per poll; drives contention scaling.
constexpr double kLockHold = 20e-9;
/// Standing work for the aggregated polling-pressure flow ("forever").
constexpr double kForeverWork = 1e18;
}  // namespace

RuntimeConfig RuntimeConfig::for_machine(const std::string& machine_name) {
  RuntimeConfig c;
  if (machine_name == "billy") {
    c.message_overhead = 23e-6;
    c.lock_delay_per_worker = 0.0;  // §5.4: no polling effect observed
  } else if (machine_name == "pyxis") {
    c.message_overhead = 45e-6;
    c.lock_delay_per_worker = 0.0;
  } else if (machine_name == "bora") {
    c.message_overhead = 30e-6;
  }
  return c;  // henri defaults otherwise
}

Runtime::Runtime(mpi::World& world, int rank, RuntimeConfig config)
    : world_(world), rank_(rank), config_(config), machine_(world.machine_of(rank)) {
  sim::Engine& engine = machine_.engine();
  comm_box_ = std::make_unique<sim::Mailbox<Task*>>(engine);
  all_done_ = std::make_unique<sim::OneShotEvent>(engine);

  const int total = machine_.config().total_cores();
  const int comm_core = world_.comm_core(rank_);
  // StarPU's default split: one core for the comm thread, one for the main
  // (submission) thread, workers on the rest.
  main_core_ = comm_core == total - 1 ? total - 2 : total - 1;
  int want = config_.workers < 0 ? total - 2 : config_.workers;
  for (int c = 0; c < total && static_cast<int>(worker_cores_.size()) < want; ++c)
    if (c != comm_core && c != main_core_) worker_cores_.push_back(c);

  for (int core : worker_cores_) {
    WorkerSlot slot;
    slot.core = core;
    slot.box = std::make_unique<sim::Mailbox<Task*>>(engine);
    slot.abort = std::make_unique<sim::OneShotEvent>(engine);
    slots_.push_back(std::move(slot));
  }
  queues_.resize(config_.numa_aware_scheduling
                     ? static_cast<std::size_t>(machine_.config().numa_count())
                     : 1);

  obs_reg_ = &obs::Registry::global();
  obs_tasks_done_ = &obs_reg_->counter("runtime.sched.tasks_completed");
  obs_msgs_ = &obs_reg_->counter("runtime.comm.messages");
  obs_polls_ = &obs_reg_->counter("runtime.worker.polls");
  obs_idle_transitions_ = &obs_reg_->counter("runtime.worker.idle_transitions");
  obs_reexec_ = &obs_reg_->counter("runtime.tasks_reexecuted");
  const std::string rank_tag = "runtime.rank" + std::to_string(rank_);
  obs_polling_workers_ = &obs_reg_->gauge(rank_tag + ".polling_workers");
  obs_lock_delay_ = &obs_reg_->gauge(rank_tag + ".lock_delay_s");
  obs_task_dur_ = &obs_reg_->histogram("runtime.task.duration_s");
  obs::Tracer& tracer = obs_reg_->tracer();
  obs_core_tracks_.reserve(worker_cores_.size());
  for (int core : worker_cores_)
    obs_core_tracks_.push_back(
        tracer.track("rt.rank" + std::to_string(rank_) + ".core" + std::to_string(core)));
  obs_comm_track_ = tracer.track("rt.rank" + std::to_string(rank_) + ".comm");
  obs_pollers_track_ = tracer.track("rt.rank" + std::to_string(rank_) + ".pollers");
  obs_pollers_series_ = rank_tag + ".polling_workers";
}

std::size_t Runtime::queue_of(const Task* task) const {
  return config_.numa_aware_scheduling ? static_cast<std::size_t>(task->data_numa) : 0;
}

Task* Runtime::pop_for(std::size_t slot) {
  if (!config_.numa_aware_scheduling) {
    if (queues_[0].empty()) return nullptr;
    Task* t = queues_[0].front();
    queues_[0].pop_front();
    return t;
  }
  // Locality first: the worker's own NUMA queue, then steal from the
  // fullest other queue (work conservation beats locality when starving).
  auto own = static_cast<std::size_t>(
      machine_.config().numa_of_core(slots_[slot].core));
  if (!queues_[own].empty()) {
    Task* t = queues_[own].front();
    queues_[own].pop_front();
    return t;
  }
  std::size_t best = queues_.size();
  for (std::size_t q = 0; q < queues_.size(); ++q)
    if (!queues_[q].empty() && (best == queues_.size() || queues_[q].size() > queues_[best].size()))
      best = q;
  if (best == queues_.size()) return nullptr;
  Task* t = queues_[best].front();
  queues_[best].pop_front();
  return t;
}

Runtime::~Runtime() = default;

Task* Runtime::add_task(Codelet codelet, int data_numa) {
  auto task = std::make_unique<Task>();
  task->kind = Task::Kind::kCompute;
  task->codelet = std::move(codelet);
  task->data_numa = data_numa;
  tasks_.push_back(std::move(task));
  ++submitted_;
  return tasks_.back().get();
}

Task* Runtime::add_send(int peer, int tag, mpi::MsgView msg) {
  auto task = std::make_unique<Task>();
  task->kind = Task::Kind::kSend;
  task->peer = peer;
  task->tag = tag;
  task->msg = msg;
  tasks_.push_back(std::move(task));
  ++submitted_;
  return tasks_.back().get();
}

Task* Runtime::add_recv(int peer, int tag, mpi::MsgView msg) {
  Task* t = add_send(peer, tag, msg);
  t->kind = Task::Kind::kRecv;
  return t;
}

void Runtime::add_dependency(Task* before, Task* after) {
  before->successors.push_back(after);
  ++after->pending;
}

double Runtime::poll_period() const {
  double f = machine_.config().core_freq_nominal_hz;
  return (static_cast<double>(config_.backoff_max_nops) + config_.poll_cost_cycles) / f;
}

double Runtime::message_overhead() const { return config_.message_overhead; }

void Runtime::update_polling_pressure() {
  // Poll-count integral: between change points, `prev` workers each polled
  // once per poll_period (the §5.4 list-hammering the registry reports).
  const double now = machine_.engine().now();
  if (obs_prev_polling_workers_ > 0 && !config_.workers_paused) {
    obs_polls_->add((now - obs_polls_last_change_) *
                    static_cast<double>(obs_prev_polling_workers_) / poll_period());
    // One span per steady polling regime: the Perfetto row shows when the
    // §5.4 list-hammering was active and how many workers took part.
    if (obs_reg_->tracer().on())
      obs_reg_->tracer().span(obs_pollers_track_,
                              "poll x" + std::to_string(obs_prev_polling_workers_),
                              obs_polls_last_change_, now);
  }
  obs_polls_last_change_ = now;
  obs_prev_polling_workers_ = polling_workers_;
  obs_polling_workers_->set(polling_workers_);
  obs_reg_->tracer().counter_sample(obs_pollers_series_, now,
                                    static_cast<double>(polling_workers_));

  if (polling_flow_) {
    machine_.model().cancel(polling_flow_);
    polling_flow_.reset();
  }
  double lock_delay = 0.0;
  if (polling_workers_ > 0 && !config_.workers_paused) {
    double period = poll_period();
    double rate = static_cast<double>(polling_workers_) * config_.poll_dram_bytes / period;
    sim::ActivitySpec spec;
    // Interning is a heterogeneous map hit after the first call — no
    // allocation on this (worker-count-change) path.
    spec.label = machine_.engine().intern("worker-polling");
    spec.profile_class = sim::kClassCompute;
    spec.work = kForeverWork;
    spec.rate_cap = rate;
    spec.demands = {{machine_.mem_ctrl(config_.list_numa), 1.0}};
    polling_flow_ = machine_.model().start(spec);
    // Lock contention on the shared request/task lists delays every
    // progression step of the communication thread.
    lock_delay = static_cast<double>(polling_workers_) * config_.lock_delay_per_worker *
                 (kLockHold / period);
  }
  obs_lock_delay_->set(lock_delay);
  world_.set_progress_overhead(rank_, lock_delay);
}

void Runtime::enqueue(Task* task) {
  assert(!task->queued);
  task->queued = true;
  if (task->kind != Task::Kind::kCompute) {
    comm_box_->put(task);
    return;
  }
  // Hand directly to an idle worker if any (NUMA-matched first when the
  // locality scheduler is on); otherwise queue.
  if (!idle_order_.empty()) {
    std::size_t chosen = idle_order_.size();
    if (config_.numa_aware_scheduling) {
      for (std::size_t i = 0; i < idle_order_.size(); ++i) {
        int core = slots_[idle_order_[i]].core;
        if (machine_.config().numa_of_core(core) == task->data_numa) {
          chosen = i;
          break;
        }
      }
    }
    if (chosen == idle_order_.size()) chosen = 0;  // FIFO fallback
    std::size_t slot = idle_order_[chosen];
    idle_order_.erase(idle_order_.begin() + static_cast<std::ptrdiff_t>(chosen));
    slots_[slot].idle = false;
    slots_[slot].box->put(task);
    return;
  }
  queues_[queue_of(task)].push_back(task);
}

void Runtime::on_task_done(Task* task) {
  ++completed_;
  obs_tasks_done_->add(1);
  for (Task* next : task->successors)
    if (--next->pending == 0) enqueue(next);
  if (completed_ == submitted_ && submitted_ > 0) all_done_->set();
}

sim::Coro Runtime::worker_loop(std::size_t slot) {
  sim::Engine& engine = machine_.engine();
  auto& gov = machine_.governor();
  const int core = slots_[slot].core;
  // Busy-waiting keeps the core active even without tasks.
  gov.core_busy(core, hw::VectorClass::kScalar);
  while (!shutdown_ && !slots_[slot].dead) {
    Task* task = pop_for(slot);
    if (task == nullptr) {
      // Go idle: register for direct hand-off and poll (the §5.4 traffic).
      slots_[slot].idle = true;
      idle_order_.push_back(slot);
      ++polling_workers_;
      obs_idle_transitions_->add(1);
      update_polling_pressure();
      task = co_await slots_[slot].box->get();
      --polling_workers_;
      update_polling_pressure();
      // enqueue() already removed us from idle_order_ unless shutting down.
      if (task == nullptr) break;  // shutdown / worker-death sentinel
    }
    slots_[slot].current = task;  // reclaimable until completed
    // Reaction latency: on average half a backoff period elapses between
    // the push and the successful poll.
    co_await engine.sleep(poll_period() / 2.0);
    if (slots_[slot].dead) break;  // died holding an unstarted task

    ++compute_executed_;
    if (machine_.config().numa_of_core(core) != task->data_numa) ++remote_executed_;
    gov.core_busy(core, task->codelet.traits.vec);
    const double cyc = hw::cycles_per_iter(machine_.config(), task->codelet.traits);
    const double cpu_rate = gov.core_freq(core) / cyc;
    auto act = machine_.model().start(hw::make_compute_spec(
        machine_, core, task->data_numa, task->codelet.traits, task->codelet.iters));
    if (failover_armed_) {
      // Abortable wait: fail_worker() cancels the activity (its completion
      // never fires) and sets the abort event instead.
      slots_[slot].running_act = act;
      sim::WhenAny done_or_abort =
          sim::when_any(engine, {&act->done(), slots_[slot].abort.get()});
      co_await done_or_abort;
      slots_[slot].running_act.reset();
    } else {
      co_await *act;
    }
    gov.core_busy(core, hw::VectorClass::kScalar);
    if (slots_[slot].dead) break;  // cancelled mid-task; fail_worker reclaimed it
    slots_[slot].current = nullptr;

    if (trace_enabled_)
      exec_trace_.push_back({task->codelet.name, core, task->data_numa, act->started_at(),
                             act->finished_at()});
    // The execution trace and the unified tracer see the same spans: one
    // Gantt row per worker core.
    obs_task_dur_->record(act->duration());
    if (obs_reg_->tracer().on())
      obs_reg_->tracer().span(obs_core_tracks_[slot], task->codelet.name, act->started_at(),
                              act->finished_at());

    double wall = act->duration();
    if (wall > 0.0 && cpu_rate > 0.0) {
      double cpu_only = task->codelet.iters / cpu_rate;
      stall_sum_ += std::clamp(1.0 - cpu_only / wall, 0.0, 1.0);
      ++stall_samples_;
    }
    on_task_done(task);
  }
  if (slots_[slot].dead) {
    // Dying with a task in hand (fail_worker may have reclaimed it already).
    Task* orphan = slots_[slot].current;
    slots_[slot].current = nullptr;
    if (orphan != nullptr && !halted_) reexecute(orphan);
  }
  gov.core_idle(core);
}

sim::Coro Runtime::comm_loop() {
  sim::Engine& engine = machine_.engine();
  while (!shutdown_) {
    Task* task = co_await comm_box_->get();
    if (task == nullptr) break;
    // §5.2: the runtime's software stack on the message path (lists,
    // worker hand-off, callbacks).  Serialized on the comm thread.
    const sim::Time post_t0 = engine.now();
    co_await engine.sleep(message_overhead());
    mpi::RequestPtr req = task->kind == Task::Kind::kSend
                              ? world_.isend(rank_, task->peer, task->tag, task->msg)
                              : world_.irecv(rank_, task->peer, task->tag, task->msg);
    obs_msgs_->add(1);
    if (obs_reg_->tracer().on())
      obs_reg_->tracer().span(obs_comm_track_,
                              std::string(task->kind == Task::Kind::kSend ? "post-send tag="
                                                                          : "post-recv tag=") +
                                  std::to_string(task->tag),
                              post_t0, engine.now());
    // Progression of the transfer itself overlaps with later operations.
    engine.spawn([](Runtime* rt, mpi::RequestPtr r, Task* t) -> sim::Coro {
      co_await *r;
      rt->on_task_done(t);
    }(this, req, task));
  }
}

sim::OneShotEvent& Runtime::run() {
  start_workers_idle();
  for (auto& task : tasks_)
    if (task->pending == 0 && !task->queued) enqueue(task.get());
  return *all_done_;
}

void Runtime::start_workers_idle() {
  if (started_) return;
  started_ = true;
  sim::Engine& engine = machine_.engine();
  if (!config_.workers_paused)
    for (std::size_t s = 0; s < slots_.size(); ++s) engine.spawn(worker_loop(s));
  engine.spawn(comm_loop());
}

void Runtime::shutdown() {
  update_polling_pressure();  // flush the poll-count integral
  shutdown_ = true;
  for (auto& slot : slots_) slot.box->put(nullptr);
  comm_box_->put(nullptr);
}

// ---- failover ---------------------------------------------------------------

void Runtime::reexecute(Task* task) {
  task->queued = false;
  ++reexecuted_;
  obs_reexec_->add(1);
  enqueue(task);
}

void Runtime::fail_worker(std::size_t slot) {
  WorkerSlot& s = slots_.at(slot);
  if (s.dead) return;
  s.dead = true;
  if (s.idle) {
    // Blocked in the hand-off box: never hand it work again, wake it with
    // the sentinel so it exits (and stops polling).
    for (auto it = idle_order_.begin(); it != idle_order_.end(); ++it)
      if (*it == slot) {
        idle_order_.erase(it);
        break;
      }
    s.idle = false;
    s.box->put(nullptr);
  }
  // Reclaim the task it was holding; another worker runs it again.
  Task* orphan = s.current;
  s.current = nullptr;
  if (s.running_act && !s.running_act->finished()) machine_.model().cancel(s.running_act);
  s.running_act.reset();
  s.abort->set();
  if (orphan != nullptr && !halted_) reexecute(orphan);
}

void Runtime::kill_worker_at(int worker, double at) {
  arm_failover();
  machine_.engine().call_at(at, [this, worker] {
    fail_worker(static_cast<std::size_t>(worker));
  });
}

void Runtime::halt() {
  if (halted_) return;
  halted_ = true;
  shutdown_ = true;
  update_polling_pressure();  // flush the poll-count integral
  for (std::size_t s = 0; s < slots_.size(); ++s) fail_worker(s);
  comm_box_->put(nullptr);
}

}  // namespace cci::runtime
