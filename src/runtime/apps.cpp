#include "runtime/apps.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "kernels/cg.hpp"
#include "net/cluster.hpp"
#include "runtime/distributed.hpp"

namespace cci::runtime {

namespace {

/// Shared experiment scaffolding: P-node cluster, world, one runtime/rank
/// orchestrated by a DistributedRuntime (its healthy join path reproduces
/// the historical joiner event-for-event).
struct MultiRankApp {
  MultiRankApp(const hw::MachineConfig& machine, const net::NetworkParams& net,
               const RuntimeConfig& rt_config, int workers, int ranks) {
    cluster = std::make_unique<net::Cluster>(machine, net, ranks);
    std::vector<mpi::RankConfig> rc;
    for (int r = 0; r < ranks; ++r) rc.push_back({r, -1});
    world = std::make_unique<mpi::World>(*cluster, rc);
    RuntimeConfig cfg = rt_config;
    cfg.workers = workers;
    drt = std::make_unique<DistributedRuntime>(*world, cfg);
  }

  Runtime& rt(int r) { return drt->runtime(r); }

  AppResult finish() {
    DistributedRuntime::Report rep = drt->run_to_completion();

    AppResult res;
    res.makespan = rep.makespan;
    for (int r = 0; r < drt->ranks(); ++r) {
      res.sending_bw += world->send_stats(r).sending_bw();
      res.stall_fraction += drt->runtime(r).mem_stall_fraction();
      res.tasks += drt->runtime(r).tasks_completed();
    }
    res.sending_bw /= static_cast<double>(drt->ranks());
    res.stall_fraction /= static_cast<double>(drt->ranks());
    return res;
  }

  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<mpi::World> world;
  std::unique_ptr<DistributedRuntime> drt;
};

/// Round-robin NUMA home for task data: first-touch by workers spreads
/// allocations over the nodes (§5.3).
int rr_numa(const hw::MachineConfig& cfg, int i) { return i % cfg.numa_count(); }

}  // namespace

AppResult run_cg_app(const hw::MachineConfig& machine, const net::NetworkParams& net,
                     RuntimeConfig rt_config, const CgAppOptions& options) {
  const int P = std::max(2, options.ranks);
  MultiRankApp app(machine, net, rt_config, options.workers, P);
  const auto n = static_cast<double>(options.n);
  const std::size_t block_bytes = options.n / static_cast<std::size_t>(P) * sizeof(double);
  // At least one chunk per worker, so the GEMV sweep actually occupies all
  // computing cores (as the parallel loop of the real kernel would).
  const int chunks = std::max(options.chunks_per_rank, app.rt(0).worker_count());

  const hw::KernelTraits gemv = kernels::cg_gemv_traits_for(options.n);
  const hw::KernelTraits dot{"cg-dot", 2.0, 16.0, hw::VectorClass::kSse};
  const hw::KernelTraits axpy{"cg-axpy", 2.0, 24.0, hw::VectorClass::kSse};

  // q = A_r p: rows n/P, columns in P blocks; the local block overlaps the
  // ring allgather of p, remote blocks wait for their ring step.
  const double gemv_iters_per_block = (n / P) * (n / P) / chunks;
  auto ring_tag = [&](int it, int step, int sender) {
    return 1000 + (it * (P + 2) + step) * 64 + sender;
  };

  for (int r = 0; r < P; ++r) {
    Runtime& rt = app.rt(r);
    const int right = (r + 1) % P;
    const int left = (r - 1 + P) % P;
    std::vector<Task*> prev_barrier;
    for (int it = 0; it < options.iterations; ++it) {
      std::vector<Task*> gemv_tasks;
      // Local column block: runs as soon as the previous iteration ended.
      for (int c = 0; c < chunks; ++c) {
        Task* t = rt.add_task({"gemv-local", gemv, gemv_iters_per_block}, rr_numa(machine, c));
        for (Task* dep : prev_barrier) Runtime::add_dependency(dep, t);
        gemv_tasks.push_back(t);
      }
      // Ring allgather: P-1 chained steps; each received block unlocks its
      // GEMV chunk tasks while later steps continue — comm/compute overlap.
      Task* prev_send = nullptr;
      Task* prev_recv = nullptr;
      for (int step = 0; step < P - 1; ++step) {
        // Buffer homes follow the first-touch of the p blocks: they rotate
        // across NUMA nodes with the iteration and ring position.
        Task* send = rt.add_send(right, ring_tag(it, step, r),
                                 mpi::MsgView{block_bytes, rr_numa(machine, it + step),
                                              0x100u + static_cast<std::uint64_t>(r)});
        Task* recv = rt.add_recv(left, ring_tag(it, step, left),
                                 mpi::MsgView{block_bytes, rr_numa(machine, it + step + 1),
                                              0x200u + static_cast<std::uint64_t>(r)});
        if (step == 0) {
          for (Task* dep : prev_barrier) {
            Runtime::add_dependency(dep, send);
            Runtime::add_dependency(dep, recv);
          }
        } else {
          Runtime::add_dependency(prev_send, send);
          Runtime::add_dependency(prev_recv, send);  // forward what arrived
          Runtime::add_dependency(prev_recv, recv);
        }
        prev_send = send;
        prev_recv = recv;
        for (int c = 0; c < chunks; ++c) {
          Task* t = rt.add_task({"gemv-remote", gemv, gemv_iters_per_block},
                                rr_numa(machine, c + step));
          Runtime::add_dependency(recv, t);
          gemv_tasks.push_back(t);
        }
      }

      // alpha = rho / (p . q): one reduction over the local rows.
      Task* dots = rt.add_task({"dot", dot, n / P}, rr_numa(machine, it));
      for (Task* t : gemv_tasks) Runtime::add_dependency(t, dots);

      // x += alpha p ; r -= alpha q ; p = r + beta p.
      std::vector<Task*> updates;
      for (int u = 0; u < 3; ++u) {
        Task* t = rt.add_task({"axpy", axpy, n / P}, rr_numa(machine, u));
        Runtime::add_dependency(dots, t);
        updates.push_back(t);
      }
      prev_barrier = updates;
    }
  }
  return app.finish();
}

AppResult run_gemm_app(const hw::MachineConfig& machine, const net::NetworkParams& net,
                       RuntimeConfig rt_config, const GemmAppOptions& options) {
  const int P = std::max(2, options.ranks);
  MultiRankApp app(machine, net, rt_config, options.workers, P);
  const std::size_t m = options.m;
  const std::size_t tile = options.tile;
  const std::size_t panels = m / tile;             // k-panels of B
  const std::size_t rows_per_rank = m / static_cast<std::size_t>(P);
  const std::size_t row_tiles = rows_per_rank / tile;  // C row tiles per rank
  const std::size_t col_tiles = m / tile;              // C column tiles
  const std::size_t panel_bytes = tile * m * sizeof(double);

  const hw::KernelTraits tile_traits = kernels::gemm_tile_traits(tile);

  for (int r = 0; r < P; ++r) {
    Runtime& rt = app.rt(r);
    // C-tile accumulation chains: tile (i,j) across panels must serialize.
    std::vector<Task*> last_writer(row_tiles * col_tiles, nullptr);
    Task* prev_comm = nullptr;  // panels are submitted (and sent) in order
    for (std::size_t k = 0; k < panels; ++k) {
      // B's k-panel lives on the rank owning those rows; the owner sends
      // it to every peer, peers receive it.
      const int owner = static_cast<int>(k * tile / rows_per_rank);
      const int tag = 2000 + static_cast<int>(k) * (P + 1);
      Task* gate = nullptr;  // what the tile tasks of this panel wait on
      if (owner == r) {
        for (int peer = 0; peer < P; ++peer) {
          if (peer == r) continue;
          Task* send = rt.add_send(peer, tag + peer,
                                   mpi::MsgView{panel_bytes,
                                                rr_numa(machine, static_cast<int>(k)),
                                                0x300u + k});
          if (prev_comm != nullptr) Runtime::add_dependency(prev_comm, send);
          prev_comm = send;
        }
      } else {
        Task* recv = rt.add_recv(owner, tag + r,
                                 mpi::MsgView{panel_bytes,
                                              rr_numa(machine, static_cast<int>(k)),
                                              0x400u + k});
        if (prev_comm != nullptr) Runtime::add_dependency(prev_comm, recv);
        prev_comm = recv;
        gate = recv;
      }
      for (std::size_t i = 0; i < row_tiles; ++i)
        for (std::size_t j = 0; j < col_tiles; ++j) {
          Task* t = rt.add_task({"gemm-tile", tile_traits, 1.0},
                                rr_numa(machine, static_cast<int>(i * col_tiles + j)));
          if (gate != nullptr) Runtime::add_dependency(gate, t);
          Task*& prev = last_writer[i * col_tiles + j];
          if (prev != nullptr) Runtime::add_dependency(prev, t);
          prev = t;
        }
    }
  }
  return app.finish();
}

}  // namespace cci::runtime
