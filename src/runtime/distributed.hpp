// Multi-rank orchestration with failure detection (fault model, §robustness).
//
// DistributedRuntime owns one Runtime per rank of a World and runs the whole
// job to completion.  On the healthy path it reproduces the historical
// joiner event-for-event (bitwise-identical simulations).  With faults
// armed it adds:
//
//  * heartbeats: every rank isends a small liveness message to rank 0 at a
//    fixed interval; rank 0 tracks the last time it heard from each peer;
//  * failure detection: a peer silent for failure_timeout_factor intervals
//    is declared dead, with a diagnostic naming the rank and the silence;
//  * graceful degradation: the join aborts instead of hanging, surviving
//    ranks shut down cleanly, and run_to_completion() reports who died;
//  * abortable barriers: barrier() completes normally or aborts with the
//    failure diagnostic the moment a death is declared — never hangs.
//
// Worker-level deaths inside one rank (Runtime::fail_worker) are handled
// below this layer: tasks re-execute on surviving workers and the job still
// completes.  This layer handles whole-rank deaths (Runtime::halt).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mpi/collectives.hpp"
#include "runtime/runtime.hpp"

namespace cci::runtime {

struct DistributedOptions {
  /// Heartbeat period (s); 0 disables detection (legacy behaviour).
  double heartbeat_interval = 0.0;
  /// A rank is dead after this many silent heartbeat intervals.
  double failure_timeout_factor = 3.0;
  /// Tag namespace for heartbeat messages (kept away from app tags).
  int heartbeat_tag_base = 900000;
};

class DistributedRuntime {
 public:
  DistributedRuntime(mpi::World& world, const RuntimeConfig& config,
                     DistributedOptions options = {});

  [[nodiscard]] int ranks() const { return static_cast<int>(rt_.size()); }
  Runtime& runtime(int r) { return *rt_.at(static_cast<std::size_t>(r)); }
  mpi::World& world() { return world_; }
  sim::Engine& engine() { return world_.engine(); }

  /// Outcome of a run: completed == false means a rank died mid-job and the
  /// join aborted; `diagnostic` says who and why.
  struct Report {
    bool completed = true;
    int dead_rank = -1;
    std::string diagnostic;
    double makespan = 0.0;
  };

  /// Kill a whole rank at time `at`: its runtime halts (workers die, comm
  /// thread stops, no re-execution).  With heartbeats on, rank 0 notices
  /// the silence and declares the death; with them off the death is
  /// declared immediately at `at` (there is nothing to detect it with).
  void kill_rank(int r, double at);

  /// Start heartbeat senders/monitor/checker processes (idempotent; no-op
  /// when heartbeat_interval == 0).  run_to_completion() calls this.
  void start_heartbeats();

  /// Run every rank's task graph and the engine until the job finishes or a
  /// failure aborts it.  Healthy, unarmed runs reproduce the historical
  /// sequential joiner exactly.
  Report run_to_completion();

  /// Abortable barrier: completes when the collective does, or as soon as a
  /// failure is declared (then `*aborted` is set).  Spawn one per rank.
  sim::Coro barrier(int rank, sim::OneShotEvent* done, bool* aborted = nullptr);

  /// Failure state, observable mid-run (the barrier and join consult it).
  [[nodiscard]] bool failed() const { return failure_->is_set(); }
  [[nodiscard]] int dead_rank() const { return dead_rank_; }
  [[nodiscard]] const std::string& diagnostic() const { return diagnostic_; }
  sim::OneShotEvent& failure_event() { return *failure_; }

 private:
  sim::Coro hb_sender(int r);
  sim::Coro hb_monitor(int r);
  sim::Coro hb_checker();
  sim::Coro legacy_join(std::vector<sim::OneShotEvent*> events);
  sim::Coro failure_aware_join(std::vector<sim::OneShotEvent*> events);
  void declare_dead(int r, const std::string& why);

  mpi::World& world_;
  DistributedOptions opts_;
  std::vector<std::unique_ptr<Runtime>> rt_;
  mpi::Coll coll_;
  std::unique_ptr<sim::OneShotEvent> failure_;  ///< set on first declared death
  std::unique_ptr<sim::OneShotEvent> stop_;     ///< stops heartbeat processes
  std::vector<double> last_heard_;
  std::vector<bool> dead_;
  int dead_rank_ = -1;
  std::string diagnostic_;
  bool failure_armed_ = false;  ///< a kill is scheduled: use the aware join
  bool hb_started_ = false;
  /// Keeps barrier inner-completion events alive while collectives that
  /// will never finish (peer died) still reference them.
  std::vector<std::unique_ptr<sim::OneShotEvent>> barrier_events_;
};

}  // namespace cci::runtime
