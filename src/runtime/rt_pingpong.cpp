#include "runtime/rt_pingpong.hpp"

namespace cci::runtime {

RtPingPong::RtPingPong(Runtime& a, Runtime& b, RtPingPongOptions options)
    : a_(a), b_(b), opt_(options) {
  complete_ = std::make_unique<sim::OneShotEvent>(a_.engine());
}

void RtPingPong::start() {
  a_.engine().spawn(side_a());
  a_.engine().spawn(side_b());
}

sim::Coro RtPingPong::side_a() {
  sim::Engine& engine = a_.engine();
  mpi::World& world = a_.world();
  mpi::MsgView msg{opt_.bytes, opt_.data_numa_a,
                   0xA7000 + static_cast<std::uint64_t>(opt_.tag)};
  for (int iter = 0; iter < opt_.warmup + opt_.iterations; ++iter) {
    sim::Time t0 = engine.now();
    co_await engine.sleep(a_.message_overhead());  // runtime stack, send path
    co_await *world.isend(a_.rank(), b_.rank(), opt_.tag, msg);
    co_await *world.irecv(a_.rank(), b_.rank(), opt_.tag + 1, msg);
    if (iter >= opt_.warmup) latencies_.push_back((engine.now() - t0) / 2.0);
  }
  complete_->set();
}

sim::Coro RtPingPong::side_b() {
  mpi::World& world = b_.world();
  mpi::MsgView msg{opt_.bytes, opt_.data_numa_b,
                   0xB7000 + static_cast<std::uint64_t>(opt_.tag)};
  while (true) {
    co_await *world.irecv(b_.rank(), a_.rank(), opt_.tag, msg);
    co_await b_.engine().sleep(b_.message_overhead());  // runtime stack, reply
    co_await *world.isend(b_.rank(), a_.rank(), opt_.tag + 1, msg);
  }
}

}  // namespace cci::runtime
