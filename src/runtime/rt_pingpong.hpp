// Ping-pong through the task runtime's message path (§5.2, §5.3, Fig. 8-9).
//
// Each message pays the runtime's software-stack overhead on the sending
// side, and the comm threads suffer whatever lock contention the polling
// workers are currently generating (via the world's progress overhead).
#pragma once

#include <memory>
#include <vector>

#include "runtime/runtime.hpp"

namespace cci::runtime {

struct RtPingPongOptions {
  std::size_t bytes = 4;
  int iterations = 30;
  int warmup = 3;
  int tag = 5000;
  /// NUMA home of the transferred data handle on each side (§5.3: with
  /// first-touch allocation by workers, handles end up on many nodes).
  int data_numa_a = 0;
  int data_numa_b = 0;
};

class RtPingPong {
 public:
  RtPingPong(Runtime& a, Runtime& b, RtPingPongOptions options);

  void start();
  sim::OneShotEvent& complete() { return *complete_; }
  [[nodiscard]] const std::vector<double>& latencies() const { return latencies_; }

 private:
  sim::Coro side_a();
  sim::Coro side_b();

  Runtime& a_;
  Runtime& b_;
  RtPingPongOptions opt_;
  std::vector<double> latencies_;
  std::unique_ptr<sim::OneShotEvent> complete_;
};

}  // namespace cci::runtime
