#include "core/compute_team.hpp"

#include <algorithm>

namespace cci::core {

sim::Coro ComputeTeam::run() {
  sim::Engine& engine = machine_.engine();
  auto& gov = machine_.governor();
  for (int core : opt_.cores) gov.core_busy(core, opt_.kernel.vec);

  const double cyc = hw::cycles_per_iter(machine_.config(), opt_.kernel);
  for (int rep = 0; rep < opt_.repetitions; ++rep) {
    const sim::Time t0 = engine.now();
    std::vector<sim::ActivityPtr> acts;
    std::vector<double> iters_of;
    std::vector<double> cpu_rate_of;  // pipeline-only rate at pass start
    acts.reserve(opt_.cores.size());
    for (int core : opt_.cores) {
      double iters = opt_.iters_per_pass * rng_.jitter(opt_.noise_rel);
      acts.push_back(
          machine_.model().start(hw::make_compute_spec(machine_, core, opt_.data_numa,
                                                       opt_.kernel, iters)));
      iters_of.push_back(iters);
      cpu_rate_of.push_back(gov.core_freq(core) / cyc);
    }
    for (auto& act : acts) co_await *act;
    const double pass = engine.now() - t0;
    durations_.push_back(pass);

    if (opt_.kernel.bytes_per_iter > 0.0 && pass > 0.0) {
      double mean_iters = 0.0;
      for (double it : iters_of) mean_iters += it;
      mean_iters /= static_cast<double>(iters_of.size());
      bandwidths_.push_back(mean_iters * opt_.kernel.bytes_per_iter / pass);
    }

    // Memory-stall fraction: compare each core's wall time against the time
    // its pipeline alone would have needed at the frequency it started with.
    for (std::size_t i = 0; i < acts.size(); ++i) {
      double wall = acts[i]->duration();
      if (wall <= 0.0 || cpu_rate_of[i] <= 0.0) continue;
      double cpu_only = iters_of[i] / cpu_rate_of[i];
      stall_sum_ += std::clamp(1.0 - cpu_only / wall, 0.0, 1.0);
      ++stall_samples_;
    }
  }

  for (int core : opt_.cores) gov.core_idle(core);
  done_->set();
}

}  // namespace cci::core
